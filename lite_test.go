package lite

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: train on a couple of workloads, recommend, simulate.
func TestFacadeEndToEnd(t *testing.T) {
	apps := []*App{WorkloadByName("WordCount"), WorkloadByName("Terasort")}
	opts := DefaultTrainOptions()
	opts.NECS.Epochs = 5
	opts.Collect.ConfigsPerInstance = 6
	tuner, ds := Train(apps, opts)
	if tuner == nil || ds == nil {
		t.Fatal("Train returned nil")
	}

	app := WorkloadByName("Terasort")
	data := app.Spec.MakeData(app.Sizes.Test)
	rec := tuner.Recommend(app.Spec, data, ClusterC)
	if len(rec.Ranked) == 0 {
		t.Fatal("no ranked candidates")
	}

	def := Simulate(app.Spec, data, ClusterC, DefaultConfig())
	got := Simulate(app.Spec, data, ClusterC, rec.Config)
	if def.Seconds <= 0 || got.Seconds <= 0 {
		t.Fatal("simulation returned nonpositive times")
	}
	if got.Seconds >= def.Seconds {
		t.Fatalf("recommendation (%.0f s) should beat default (%.0f s)", got.Seconds, def.Seconds)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(Workloads()) != 15 {
		t.Fatalf("expected 15 workloads, got %d", len(Workloads()))
	}
	if WorkloadByName("PR") == nil || WorkloadByName("PageRank") == nil {
		t.Fatal("lookup by name and abbreviation must work")
	}
	if WorkloadByName("nope") != nil {
		t.Fatal("unknown workload should be nil")
	}
}

func TestFacadeClusters(t *testing.T) {
	if ClusterA.Nodes != 1 || ClusterB.Nodes != 3 || ClusterC.Nodes != 8 {
		t.Fatal("cluster definitions do not match Table III")
	}
}
