module lite

go 1.22
