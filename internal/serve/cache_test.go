package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheTTLExpiry(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	c := newTTLCache(10*time.Second, now)
	calls := 0
	fn := func() (RecommendResponse, error) {
		calls++
		return RecommendResponse{Tier: "necs"}, nil
	}
	if _, hit, _, _ := c.getOrDo(context.Background(), "k", fn); hit {
		t.Fatal("first call must miss")
	}
	if _, hit, _, _ := c.getOrDo(context.Background(), "k", fn); !hit {
		t.Fatal("second call must hit")
	}
	advance(11 * time.Second)
	if _, hit, _, _ := c.getOrDo(context.Background(), "k", fn); hit {
		t.Fatal("expired entry must miss")
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2", calls)
	}
	c.flush(0)
	c.getOrDo(context.Background(), "k", fn)
	if calls != 3 {
		t.Fatalf("flush did not evict (calls=%d)", calls)
	}
}

// TestCacheStaleGenerationNotInserted models a compute that straddles a
// model hot-swap: flush(newGen) lands while the compute is in flight, so
// the previous-generation result must be returned to its waiters but never
// cached.
func TestCacheStaleGenerationNotInserted(t *testing.T) {
	c := newTTLCache(time.Minute, time.Now)
	calls := 0
	stale := func() (RecommendResponse, error) {
		calls++
		c.flush(1) // hot-swap to generation 1 mid-compute
		return RecommendResponse{Tier: "necs", Generation: 0}, nil
	}
	if _, hit, _, err := c.getOrDo(context.Background(), "k", stale); err != nil || hit {
		t.Fatalf("leader compute: hit=%v err=%v", hit, err)
	}
	if c.len() != 0 {
		t.Fatalf("stale-generation entry was cached (%d entries)", c.len())
	}
	fresh := func() (RecommendResponse, error) {
		calls++
		return RecommendResponse{Tier: "necs", Generation: 1}, nil
	}
	if _, hit, _, _ := c.getOrDo(context.Background(), "k", fresh); hit {
		t.Fatal("stale entry served after flush")
	}
	if _, hit, _, _ := c.getOrDo(context.Background(), "k", fresh); !hit {
		t.Fatal("current-generation entry must be cached")
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2", calls)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := newTTLCache(time.Minute, time.Now)
	var calls atomic.Int32
	gate := make(chan struct{})
	fn := func() (RecommendResponse, error) {
		calls.Add(1)
		<-gate
		return RecommendResponse{Tier: "necs"}, nil
	}

	const n = 16
	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			_, hit, shared, err := c.getOrDo(context.Background(), "k", fn)
			if err != nil {
				t.Error(err)
			}
			if hit {
				t.Error("no entry existed yet; hit impossible")
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give followers a moment to park on the in-flight call, then release.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("stampede computed %d times, want exactly 1", got)
	}
	if sharedCount.Load() != n-1 {
		t.Fatalf("%d callers shared, want %d", sharedCount.Load(), n-1)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newTTLCache(time.Minute, time.Now)
	calls := 0
	fail := func() (RecommendResponse, error) { calls++; return RecommendResponse{}, ErrQueueFull }
	c.getOrDo(context.Background(), "k", fail)
	c.getOrDo(context.Background(), "k", fail)
	if calls != 2 {
		t.Fatalf("error result was cached (calls=%d)", calls)
	}
	if c.len() != 0 {
		t.Fatalf("cache holds %d entries after errors, want 0", c.len())
	}
}
