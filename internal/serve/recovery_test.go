package serve

// Crash/recovery tests (DESIGN.md §9): in-process equivalents of the
// scripts/chaos_smoke.sh harness. "Crash" here means abandoning a server
// without Shutdown — its goroutines are parked but its fsynced WAL state is
// exactly what a SIGKILL would leave behind; a second server on the same
// directories then plays the role of the restarted process.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lite/internal/core"
	"lite/internal/wal"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// shutdownServer is a clean Shutdown with a generous deadline.
func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	done := make(chan struct{})
	go func() { time.Sleep(120 * time.Second); close(done) }()
	if err := s.Shutdown(done); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// crashServer abandons a server the way SIGKILL would: no final retrain, no
// WAL close, no fsync beyond what already happened. The stop channel is only
// closed at test end so the leaked goroutines unwind.
func crashServer(t *testing.T, s *Server) {
	t.Helper()
	t.Cleanup(func() { s.stopOnce.Do(func() { close(s.stopCh) }) })
}

func feedbackN(t *testing.T, s *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Feedback(FeedbackRequest{App: "WordCount", SizeMB: 64, Cluster: "C"}); err != nil {
			t.Fatalf("feedback %d: %v", i, err)
		}
	}
}

// TestWALReplaysFeedbackAfterCrash is the core durability loop: feedback
// fsynced by a crashed server must be recovered, replayed ahead of new
// traffic, folded into the next generation, and then never replayed again.
func TestWALReplaysFeedbackAfterCrash(t *testing.T) {
	tuner, source := testTuner(t)
	dir := t.TempDir()
	base := Options{
		SourceSample: source,
		WALDir:       filepath.Join(dir, "wal"),
		SnapshotPath: filepath.Join(dir, "model.json"),
		WALSyncEvery: 1, WALSyncInterval: -1,
	}

	// Server A: batch size too large to ever retrain, so when it "crashes"
	// its feedback exists only in the WAL.
	aOpts := base
	aOpts.UpdateBatch = 100
	a := New(tuner.CloneForUpdate(1), aOpts)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	crashServer(t, a)

	const n = 5
	for i := 0; i < n; i++ {
		resp, err := a.Feedback(FeedbackRequest{App: "WordCount", SizeMB: 64, Cluster: "C"})
		if err != nil {
			t.Fatalf("feedback %d: %v", i, err)
		}
		if resp.Seq != uint64(i+1) {
			t.Fatalf("feedback %d: seq = %d, want %d", i, resp.Seq, i+1)
		}
	}

	// The crash always leaves a loadable snapshot: generation 0 is persisted
	// at Start, before any traffic.
	f, err := os.Open(base.SnapshotPath)
	if err != nil {
		t.Fatalf("no snapshot after crash: %v", err)
	}
	if _, err := core.LoadTuner(f, 1); err != nil {
		t.Fatalf("snapshot left by crashed server not loadable: %v", err)
	}
	f.Close()

	// Server B (the restart): recovers all n fsynced records and folds them
	// into generation 1.
	bOpts := base
	bOpts.UpdateBatch = n
	b := New(tuner.CloneForUpdate(1), bOpts)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if got := b.Metrics().Counter("lite_wal_recovered_records_total").Value(); got != n {
		t.Fatalf("recovered records = %d, want %d", got, n)
	}
	waitUntil(t, 60*time.Second, "replayed feedback to fold into generation 1", func() bool {
		return b.Snapshot().Gen >= 1
	})
	// The folded counter is incremented after the snapshot store (the WAL
	// cursor write sits between them), so poll rather than assert instantly.
	waitUntil(t, 60*time.Second, "folded counter to reach the replayed batch", func() bool {
		return b.Metrics().Counter("lite_feedback_folded_total").Value() == n
	})
	shutdownServer(t, b)

	// Folded records must not replay a second time.
	w, recs, stats, err := wal.Open(wal.Options{Dir: base.WALDir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != 0 || stats.Recovered != 0 {
		t.Fatalf("after fold: %d records would replay (stats %+v), want 0", len(recs), stats)
	}
}

// TestServerSkipsTornWALTail: a torn tail (the unfsynced bytes a crash can
// leave) is discarded and counted; every whole record ahead of it replays.
func TestServerSkipsTornWALTail(t *testing.T) {
	tuner, source := testTuner(t)
	walDir := t.TempDir()

	w, _, _, err := wal.Open(wal.Options{Dir: walDir, SyncEvery: 1, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(FeedbackRequest{App: "WordCount", SizeMB: 64, Cluster: "C"})
	for i := 0; i < 3; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(walDir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A partial frame header: what a crash mid-append leaves behind.
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := New(tuner.CloneForUpdate(1), Options{
		SourceSample: source, WALDir: walDir,
		UpdateBatch: 3, WALSyncEvery: 1, WALSyncInterval: -1,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Counter("lite_wal_corrupt_records_total").Value(); got != 1 {
		t.Fatalf("corrupt tails = %d, want 1", got)
	}
	if got := s.Metrics().Counter("lite_wal_recovered_records_total").Value(); got != 3 {
		t.Fatalf("recovered records = %d, want 3", got)
	}
	waitUntil(t, 60*time.Second, "recovered feedback to fold into generation 1", func() bool {
		return s.Snapshot().Gen >= 1
	})
	shutdownServer(t, s)
}

// TestValidationGateRejectsPoisonedCandidate: a retrain whose candidate
// cannot score the held-out set (chaos-poisoned weights) must be rejected —
// the live generation keeps serving, the batch is quarantined, backoff arms,
// and the quarantined feedback never replays.
func TestValidationGateRejectsPoisonedCandidate(t *testing.T) {
	tuner, source := testTuner(t)
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	s := New(tuner.CloneForUpdate(1), Options{
		SourceSample: source,
		WALDir:       walDir,
		SnapshotPath: filepath.Join(dir, "model.json"),
		WALSyncEvery: 1, WALSyncInterval: -1,
		UpdateBatch:        2,
		Validation:         ValidationOptions{Enable: true, Cases: 2, Candidates: 4},
		ChaosCorruptEveryN: 1,
		RetrainBackoffMin:  time.Millisecond,
		RetrainBackoffMax:  4 * time.Millisecond,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	feedbackN(t, s, 2)
	waitUntil(t, 60*time.Second, "hot-swap rejection", func() bool {
		return s.Metrics().Counter("lite_hotswap_rejected_total").Value() >= 1
	})

	if gen := s.Snapshot().Gen; gen != 0 {
		t.Fatalf("generation = %d after rejected swap, want 0 (old model keeps serving)", gen)
	}
	if _, err := s.Recommend(RecommendRequest{App: "WordCount", SizeMB: 64, Cluster: "C"}); err != nil {
		t.Fatalf("serving broken after rejected swap: %v", err)
	}
	if got := s.Metrics().Counter("lite_feedback_quarantined_total").Value(); got != 2 {
		t.Fatalf("quarantined feedback = %d, want 2", got)
	}
	if got := s.Metrics().Gauge("lite_retrain_backoff_seconds").Value(); got <= 0 {
		t.Fatalf("retrain backoff gauge = %g, want > 0 after rejection", got)
	}

	// The quarantine sidecar names the batch: reason, seqs and raw records.
	qdata, err := os.ReadFile(filepath.Join(walDir, "quarantine.jsonl"))
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	var entry quarantineEntry
	line := strings.SplitN(strings.TrimSpace(string(qdata)), "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("quarantine line not JSON: %v", err)
	}
	if entry.Reason == "" || len(entry.Records) != 2 || len(entry.Seqs) != 2 {
		t.Fatalf("quarantine entry incomplete: %+v", entry)
	}

	shutdownServer(t, s)

	// Quarantined feedback is folded out of the WAL: a restart must not
	// replay the poisoned batch into the model.
	w, recs, _, err := wal.Open(wal.Options{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("%d quarantined records would replay on restart, want 0", len(recs))
	}
}

// TestUpdateLoopPanicRestarts: a panicking retrain must not kill the update
// loop — the supervisor restarts it (counted) while serving continues, and
// the in-memory batches the panics destroyed stay durable in the WAL.
func TestUpdateLoopPanicRestarts(t *testing.T) {
	tuner, source := testTuner(t)
	walDir := t.TempDir()
	s := New(tuner.CloneForUpdate(1), Options{
		SourceSample: source,
		WALDir:       walDir,
		WALSyncEvery: 1, WALSyncInterval: -1,
		UpdateBatch:       1,
		ChaosPanicEveryN:  1,
		RetrainBackoffMin: time.Millisecond,
		RetrainBackoffMax: 2 * time.Millisecond,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 3
	feedbackN(t, s, n)
	waitUntil(t, 60*time.Second, "update loop restarts", func() bool {
		return s.Metrics().Counter("lite_update_loop_restarts_total").Value() >= n
	})
	if gen := s.Snapshot().Gen; gen != 0 {
		t.Fatalf("generation = %d, want 0 (no retrain ever completed)", gen)
	}
	if _, err := s.Recommend(RecommendRequest{App: "WordCount", SizeMB: 64, Cluster: "C"}); err != nil {
		t.Fatalf("serving broken while update loop crash-loops: %v", err)
	}
	shutdownServer(t, s)

	// Each panic lost its in-memory batch; all of it is still in the WAL.
	w, recs, _, err := wal.Open(wal.Options{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != n {
		t.Fatalf("WAL holds %d unfolded records after panic-lost batches, want %d", len(recs), n)
	}
}

// TestValidationGateAcceptsHealthySwap: with generous slack and no chaos,
// the gate publishes the retrained generation and exports its scores.
func TestValidationGateAcceptsHealthySwap(t *testing.T) {
	s := newTestServer(t, Options{
		UpdateBatch: 2,
		Validation: ValidationOptions{
			Enable: true, Cases: 2, Candidates: 4,
			// Mechanics under test, not model quality: any finite candidate
			// passes.
			NDCGSlack: 1, RegretSlack: regretCap,
		},
	})
	feedbackN(t, s, 2)
	waitUntil(t, 60*time.Second, "gated hot-swap to publish generation 1", func() bool {
		return s.Snapshot().Gen >= 1
	})
	if got := s.Metrics().Counter("lite_hotswap_accepted_total").Value(); got != 1 {
		t.Fatalf("accepted swaps = %d, want 1", got)
	}
	if got := s.Metrics().Counter("lite_hotswap_rejected_total").Value(); got != 0 {
		t.Fatalf("rejected swaps = %d, want 0", got)
	}
}
