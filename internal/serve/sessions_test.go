package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lite/pkg/api"
	"lite/pkg/client"
)

// newSessionServer spins up a started server plus an httptest frontend and
// a typed client against it — the exact stack a real consumer uses.
func newSessionServer(t *testing.T, opts Options) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s := newTestServer(t, opts)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv, client.New(srv.URL)
}

func TestSessionLifecycleHTTP(t *testing.T) {
	_, _, cl := newSessionServer(t, Options{})
	ctx := context.Background()

	sess, err := cl.CreateSession(ctx, api.CreateSessionRequest{
		App: "WordCount", Cluster: "C", Strategy: "moderate", MaxTrials: 4,
	})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if sess.State != "active" || sess.MaxTrials != 4 || sess.SizeMB <= 0 {
		t.Fatalf("created session = %+v", sess)
	}

	// Trial 0 measures the baseline; its guard-rail is still unset.
	p0, err := cl.NextProposal(ctx, sess.ID)
	if err != nil {
		t.Fatalf("NextProposal: %v", err)
	}
	if p0.Trial != 0 || p0.Source != "baseline" || p0.AbortAfterSeconds != 0 {
		t.Fatalf("trial 0 = %+v", p0)
	}
	if _, err := cl.ReportResult(ctx, sess.ID, api.ReportResultRequest{Trial: 0, Seconds: 100}); err != nil {
		t.Fatalf("ReportResult: %v", err)
	}

	// Every later proposal carries the guard-rail and spends budget until
	// the typed budget_exhausted error.
	trials := 1
	for {
		p, err := cl.NextProposal(ctx, sess.ID)
		if client.ErrorCode(err) == api.CodeBudgetExhausted {
			break
		}
		if err != nil {
			t.Fatalf("NextProposal: %v", err)
		}
		if want := sess.SafetyBound * 100; p.AbortAfterSeconds != want {
			t.Fatalf("AbortAfterSeconds = %g, want %g", p.AbortAfterSeconds, want)
		}
		if _, err := cl.ReportResult(ctx, sess.ID, api.ReportResultRequest{Trial: p.Trial, Seconds: 95}); err != nil {
			t.Fatalf("ReportResult: %v", err)
		}
		trials++
	}
	if trials != 4 {
		t.Fatalf("ran %d trials, want the budget of 4", trials)
	}

	got, err := cl.GetSession(ctx, sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrialsUsed != 4 || len(got.Trials) != 4 || got.BaselineSeconds != 100 {
		t.Fatalf("GET session = %+v", got)
	}

	list, err := cl.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sess.ID {
		t.Fatalf("list = %+v", list)
	}

	closed, err := cl.CloseSession(ctx, sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if closed.State != "closed" || closed.ClosedAt == "" {
		t.Fatalf("closed session = %+v", closed)
	}
	// Closing again is idempotent, and the resource stays readable.
	if _, err := cl.CloseSession(ctx, sess.ID); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := cl.GetSession(ctx, sess.ID); err != nil {
		t.Fatalf("GET after close: %v", err)
	}
}

// TestSessionErrorEnvelopes walks every handler failure path and asserts
// each answers with the unified envelope: JSON content type, the expected
// stable code, the expected status.
func TestSessionErrorEnvelopes(t *testing.T) {
	_, srv, cl := newSessionServer(t, Options{})
	ctx := context.Background()

	sess, err := cl.CreateSession(ctx, api.CreateSessionRequest{App: "WordCount", Cluster: "C", MaxTrials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.NextProposal(ctx, sess.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReportResult(ctx, sess.ID, api.ReportResultRequest{Trial: 0, Seconds: 100}); err != nil {
		t.Fatal(err)
	}

	closedSess, err := cl.CreateSession(ctx, api.CreateSessionRequest{App: "WordCount", Cluster: "C"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CloseSession(ctx, closedSess.ID); err != nil {
		t.Fatal(err)
	}

	do := func(method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"create bad json", "POST", "/v1/tuning/sessions", "{", 400, api.CodeInvalidArgument},
		{"create unknown field", "POST", "/v1/tuning/sessions", `{"bogus":1}`, 400, api.CodeInvalidArgument},
		{"create unknown app", "POST", "/v1/tuning/sessions", `{"app":"NoSuchApp","cluster":"C"}`, 400, api.CodeInvalidArgument},
		{"create unknown strategy", "POST", "/v1/tuning/sessions", `{"app":"WordCount","cluster":"C","strategy":"yolo"}`, 400, api.CodeInvalidArgument},
		{"create bad bound", "POST", "/v1/tuning/sessions", `{"app":"WordCount","cluster":"C","safety_bound":0.5}`, 400, api.CodeInvalidArgument},
		{"collection bad method", "PUT", "/v1/tuning/sessions", "", 405, api.CodeMethodNotAllowed},
		{"item not found", "GET", "/v1/tuning/sessions/none.1.C.00000000", "", 404, api.CodeNotFound},
		{"item bad method", "PATCH", "/v1/tuning/sessions/" + sess.ID, "", 405, api.CodeMethodNotAllowed},
		{"proposal bad method", "GET", "/v1/tuning/sessions/" + sess.ID + "/proposal", "", 405, api.CodeMethodNotAllowed},
		{"proposal not found", "POST", "/v1/tuning/sessions/none.1.C.00000000/proposal", "", 404, api.CodeNotFound},
		{"proposal budget exhausted", "POST", "/v1/tuning/sessions/" + sess.ID + "/proposal", "", 409, api.CodeBudgetExhausted},
		{"proposal on closed", "POST", "/v1/tuning/sessions/" + closedSess.ID + "/proposal", "", 409, api.CodeSessionClosed},
		{"result bad json", "POST", "/v1/tuning/sessions/" + sess.ID + "/result", "{", 400, api.CodeInvalidArgument},
		{"result unknown trial", "POST", "/v1/tuning/sessions/" + sess.ID + "/result", `{"trial":7,"seconds":10}`, 400, api.CodeUnknownTrial},
		{"result already reported", "POST", "/v1/tuning/sessions/" + sess.ID + "/result", `{"trial":0,"seconds":10}`, 409, api.CodeTrialAlreadyReported},
		{"result bad seconds", "POST", "/v1/tuning/sessions/" + sess.ID + "/result", `{"trial":0,"seconds":-1}`, 400, api.CodeInvalidArgument},
		{"result on closed", "POST", "/v1/tuning/sessions/" + closedSess.ID + "/result", `{"trial":0,"seconds":10}`, 409, api.CodeSessionClosed},
		{"unknown v1 path", "GET", "/v1/tuning/nope", "", 404, api.CodeNotFound},
		{"recommend bad json", "POST", "/v1/recommend", "{", 400, api.CodeInvalidArgument},
		{"recommend bad method", "GET", "/v1/recommend", "", 405, api.CodeMethodNotAllowed},
		{"feedback bad json", "POST", "/v1/feedback", "{", 400, api.CodeInvalidArgument},
		{"healthz bad method", "POST", "/v1/healthz", "", 405, api.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := do(tc.method, tc.path, tc.body)
			defer res.Body.Close()
			if res.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", res.StatusCode, tc.status)
			}
			if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want JSON envelope", ct)
			}
			var env api.ErrorResponse
			if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
				t.Fatalf("decode envelope: %v", err)
			}
			if env.Error.Code != tc.code {
				t.Fatalf("code = %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Fatal("empty envelope message")
			}
			if tc.status == 405 && res.Header.Get("Allow") == "" {
				t.Fatal("405 without Allow header")
			}
		})
	}

	// The typed client surfaces the same envelope as *client.APIError.
	_, err = cl.GetSession(ctx, "none.1.C.00000000")
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 404 || ae.Code != api.CodeNotFound {
		t.Fatalf("client error = %v, want APIError{404, not_found}", err)
	}
}

// TestLegacyShimEquivalence proves the unversioned routes are the same
// handlers as /v1 — same answers — plus deprecation signals and the legacy
// counter, which the /v1 routes must never touch.
func TestLegacyShimEquivalence(t *testing.T) {
	s, srv, _ := newSessionServer(t, Options{})

	body := `{"app":"WordCount","size_mb":512,"cluster":"C"}`
	post := func(path string) (*http.Response, RecommendResponse) {
		t.Helper()
		res, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != 200 {
			t.Fatalf("POST %s: status %d", path, res.StatusCode)
		}
		var out RecommendResponse
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return res, out
	}

	legacyRes, legacyOut := post("/recommend")
	v1Res, v1Out := post("/v1/recommend")

	if legacyOut.Tier != v1Out.Tier || len(legacyOut.Config) != len(v1Out.Config) {
		t.Fatalf("shim answer differs: legacy %+v vs v1 %+v", legacyOut, v1Out)
	}
	if legacyRes.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy route missing Deprecation header")
	}
	if link := legacyRes.Header.Get("Link"); !strings.Contains(link, "/v1/recommend") {
		t.Fatalf("legacy Link = %q, want successor-version /v1/recommend", link)
	}
	if v1Res.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 route answered with a Deprecation header")
	}

	if got := s.reg.Counter(`lite_http_legacy_requests_total{endpoint="recommend"}`).Value(); got != 1 {
		t.Fatalf("legacy counter = %d after one legacy + one v1 call, want 1", got)
	}

	// Same equivalence for healthz, incl. error-path equivalence: both
	// reject POST with the envelope.
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		res, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorResponse
		if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
			t.Fatalf("POST %s: envelope decode: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != 405 || env.Error.Code != api.CodeMethodNotAllowed {
			t.Fatalf("POST %s = (%d, %q), want (405, method_not_allowed)", path, res.StatusCode, env.Error.Code)
		}
	}
}

// TestSessionsConcurrent drives many sessions in parallel through the full
// HTTP stack (run under -race). Invariants checked per session: budget
// accounting is monotone and never exceeds MaxTrials, no trial violates the
// safety bound when clients honor the abort guard-rail, and every promoted
// win went through the feedback path exactly once.
func TestSessionsConcurrent(t *testing.T) {
	s, _, cl := newSessionServer(t, Options{})
	ctx := context.Background()

	const nSessions = 6
	const maxTrials = 6

	var wg sync.WaitGroup
	ids := make([]string, nSessions)
	errs := make([]error, nSessions)
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			app := "WordCount"
			if i%2 == 1 {
				app = "KMeans"
			}
			sess, err := cl.CreateSession(ctx, api.CreateSessionRequest{
				App: app, Cluster: "C", Strategy: "moderate", MaxTrials: maxTrials,
			})
			if err != nil {
				errs[i] = fmt.Errorf("create: %w", err)
				return
			}
			ids[i] = sess.ID
			lastBudget := maxTrials + 1
			for {
				p, err := cl.NextProposal(ctx, sess.ID)
				if client.ErrorCode(err) == api.CodeBudgetExhausted {
					return
				}
				if err != nil {
					errs[i] = fmt.Errorf("proposal: %w", err)
					return
				}
				if p.BudgetRemaining >= lastBudget {
					errs[i] = fmt.Errorf("budget not monotone: %d then %d", lastBudget, p.BudgetRemaining)
					return
				}
				lastBudget = p.BudgetRemaining
				// Deterministic "measurement": the baseline takes 100s, every
				// later trial is a strict improvement — and would honor the
				// abort guard-rail if it weren't.
				seconds := 100 - float64(p.Trial)
				if p.AbortAfterSeconds > 0 && seconds > p.AbortAfterSeconds {
					seconds = p.AbortAfterSeconds
				}
				if _, err := cl.ReportResult(ctx, sess.ID, api.ReportResultRequest{
					Trial: p.Trial, Seconds: seconds,
				}); err != nil {
					errs[i] = fmt.Errorf("report: %w", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	totalPromoted := 0
	for _, id := range ids {
		sess, err := cl.GetSession(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if sess.TrialsUsed != maxTrials {
			t.Fatalf("session %s used %d trials, want %d", id, sess.TrialsUsed, maxTrials)
		}
		if sess.Violations != 0 {
			t.Fatalf("session %s reported %d violations with guard-rail honored", id, sess.Violations)
		}
		promotedTrials := 0
		for _, tr := range sess.Trials {
			if tr.Promoted {
				promotedTrials++
			}
		}
		if promotedTrials != sess.Promotions {
			t.Fatalf("session %s: %d promoted trials vs Promotions=%d", id, promotedTrials, sess.Promotions)
		}
		totalPromoted += promotedTrials
	}
	if totalPromoted == 0 {
		t.Fatal("no promotions across strictly-improving sessions")
	}

	// Exactly-once through the AMU path: every promotion either entered the
	// feedback queue (promotions_total) or was explicitly counted as dropped
	// — never both, never silently.
	fed := s.reg.Counter("lite_session_promotions_total").Value()
	dropped := s.reg.Counter("lite_session_promotions_dropped_total").Value()
	if int(fed+dropped) != totalPromoted {
		t.Fatalf("promotions fed=%d dropped=%d, want sum %d", fed, dropped, totalPromoted)
	}
	if dropped != 0 {
		t.Fatalf("%d promotions dropped with an idle queue", dropped)
	}
	if v := s.reg.Counter("lite_session_violations_total").Value(); v != 0 {
		t.Fatalf("violations counter = %d, want 0", v)
	}
}
