package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lite/internal/core"
	"lite/internal/instrument"
	"lite/internal/retrieval"
	"lite/internal/sparksim"
	"lite/internal/workload"
	"lite/pkg/api"
)

// testStore builds a retrieval store from one measured run per named app.
func testStore(t *testing.T, apps ...string) *retrieval.Store {
	t.Helper()
	env := sparksim.ClusterC
	var runs []instrument.AppInstance
	for _, name := range apps {
		app := workload.ByName(name)
		if app == nil {
			t.Fatalf("unknown workload %q", name)
		}
		run := instrument.Run(app.Spec, app.Spec.MakeData(512), env, sparksim.DefaultConfig())
		if run.Result.Failed {
			t.Fatalf("seed run for %s failed", name)
		}
		runs = append(runs, run)
	}
	return retrieval.BuildFromRuns(runs)
}

// specFeatures extracts a wire-shaped feature payload from a registered
// app's spec — what a client would send for an application this server has
// never heard of.
func specFeatures(app *workload.App) *api.AppFeatures {
	var code strings.Builder
	var ops []string
	for i := range app.Spec.Stages {
		st := &app.Spec.Stages[i]
		code.WriteString(st.Code)
		code.WriteString("\n")
		ops = append(ops, st.Ops...)
	}
	return &api.AppFeatures{Code: code.String(), Ops: ops}
}

// TestDegradedTierCacheNotPinned is the regression test for the cache
// pinning bug: a non-NECS answer must expire on the short degraded TTL,
// not stay pinned for the full CacheTTL. On the old behaviour (full TTL
// for every tier) the third request below is still a hit and the test
// fails.
func TestDegradedTierCacheNotPinned(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	// A gutted tuner answers every request from the safe-default tier —
	// the permanently degraded worst case.
	s := New(&core.Tuner{}, Options{DisableBatcher: true, CacheTTL: 30 * time.Second, Now: clock})

	req := RecommendRequest{App: "WordCount", SizeMB: 512, Cluster: "C"}
	r1, err := s.RecommendCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tier != string(core.TierSafeDefault) {
		t.Fatalf("tier = %q, want safe-default", r1.Tier)
	}
	if r1.Cached {
		t.Fatal("first request must not be a cache hit")
	}

	// Within the degraded TTL the answer is still served from cache.
	advance(time.Second)
	r2, err := s.RecommendCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("request 1s after a degraded answer should hit the cache")
	}

	// Past the degraded TTL but well within CacheTTL: the entry must be
	// gone, so the request re-scores against the (possibly recovered)
	// model instead of replaying the demoted answer.
	advance(3 * time.Second)
	r3, err := s.RecommendCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("degraded-tier answer was pinned past its short TTL (old caching behaviour)")
	}
}

// TestNECSTierStillCachesFullTTL pins the other half of the contract: a
// healthy NECS answer keeps the long TTL.
func TestNECSTierStillCachesFullTTL(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	tuner, _ := testTuner(t)
	s := New(tuner.CloneForUpdate(1), Options{DisableBatcher: true, CacheTTL: 30 * time.Second, Now: clock})
	req := RecommendRequest{App: "WordCount", SizeMB: 512, Cluster: "C"}
	r1, err := s.RecommendCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tier != string(core.TierNECS) {
		t.Skipf("test tuner did not answer from NECS (tier %q)", r1.Tier)
	}
	advance(10 * time.Second) // far beyond degradedCacheTTL, inside CacheTTL
	r2, err := s.RecommendCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("NECS answer must stay cached for the full TTL")
	}
}

func TestFaultProfileFingerprintsDistinct(t *testing.T) {
	env := sparksim.ClusterC
	p1 := &sparksim.FaultProfile{TaskFailureProb: 0.01, StragglerProb: 0.05, StragglerMult: 3, MaxTaskFailures: 4, MaxStageAttempts: 2, Seed: 1}
	p2 := &sparksim.FaultProfile{TaskFailureProb: 0.20, StragglerProb: 0.05, StragglerMult: 3, MaxTaskFailures: 4, MaxStageAttempts: 2, Seed: 1}
	k0 := requestKey("WordCount", 512, env)
	k1 := requestKey("WordCount", 512, env.WithFaults(p1))
	k2 := requestKey("WordCount", 512, env.WithFaults(p2))
	if k0 == k1 || k0 == k2 {
		t.Fatalf("faulty and clean environments share a key: %q", k1)
	}
	if k1 == k2 {
		t.Fatalf("two distinct fault profiles share the request key %q — cache/batcher/routing entries collapse", k1)
	}
}

func TestUnseenAppServedFromRetrievalTier(t *testing.T) {
	store := testStore(t, "WordCount", "Terasort")
	s := New(&core.Tuner{}, Options{DisableBatcher: true, Retrieval: store})

	req := RecommendRequest{
		App:      "BrandNewWordCountLike",
		SizeMB:   2048,
		Cluster:  "C",
		Features: specFeatures(workload.ByName("WordCount")),
	}
	resp, err := s.RecommendCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tier != string(core.TierRetrieval) {
		t.Fatalf("tier = %q, want retrieval", resp.Tier)
	}
	if resp.App != "BrandNewWordCountLike" || resp.SizeMB != 2048 {
		t.Fatalf("response echoes app=%q size=%g", resp.App, resp.SizeMB)
	}
	cfg, err := ConfigFromMap(resp.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !sparksim.Feasible(cfg, sparksim.ClusterC) {
		t.Fatal("cold recommendation infeasible")
	}

	// Unknown app without features stays a 400-class request error.
	_, err = s.RecommendCtx(context.Background(), RecommendRequest{App: "Mystery", SizeMB: 512, Cluster: "C"})
	var reqErr *RequestError
	if err == nil || !isRequestError(err, &reqErr) {
		t.Fatalf("featureless unknown app: err = %v, want RequestError", err)
	}

	// Unknown cluster still rejects even with features.
	req.Cluster = "Z"
	if _, err := s.RecommendCtx(context.Background(), req); err == nil {
		t.Fatal("unknown cluster must stay a request error")
	}
}

// isRequestError unwraps err into target, mirroring errors.As without
// importing it twice in this file's tests.
func isRequestError(err error, target **RequestError) bool {
	re, ok := err.(*RequestError)
	if ok {
		*target = re
	}
	return ok
}

// TestUnseenAppHTTP drives the full wire path: POST /v1/recommend for an
// unregistered app with features answers 200 with tier "retrieval".
func TestUnseenAppHTTP(t *testing.T) {
	store := testStore(t, "WordCount", "KMeans")
	s := newTestServer(t, Options{Retrieval: store})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(RecommendRequest{
		App:      "NeverRegistered",
		SizeMB:   1024,
		Cluster:  "C",
		Features: specFeatures(workload.ByName("KMeans")),
	})
	res, err := http.Post(srv.URL+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", res.StatusCode)
	}
	var resp RecommendResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tier != string(core.TierRetrieval) {
		t.Fatalf("tier = %q, want retrieval", resp.Tier)
	}

	// And without features the same app is still a 400.
	body, _ = json.Marshal(RecommendRequest{App: "NeverRegistered", SizeMB: 1024, Cluster: "C"})
	res2, err := http.Post(srv.URL+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if res2.StatusCode != http.StatusBadRequest {
		t.Fatalf("featureless status = %d, want 400", res2.StatusCode)
	}
}

func TestRoutingKeyUnknownApp(t *testing.T) {
	key, err := RoutingKey("NeverSeen", 0, "C")
	if err != nil {
		t.Fatalf("unknown app must still place consistently, got err %v", err)
	}
	want := requestKey("NeverSeen", coldDefaultSizeMB, sparksim.ClusterC)
	if key != want {
		t.Fatalf("key = %q, want %q", key, want)
	}
	// Stated sizes bucket exactly like registered apps.
	k1, _ := RoutingKey("NeverSeen", 900, "C")
	k2, _ := RoutingKey("NeverSeen", 1000, "C")
	if k1 != k2 {
		t.Fatalf("same-bucket sizes routed apart: %q vs %q", k1, k2)
	}
	// Unknown cluster is still an error: there is no environment to
	// fingerprint, so no meaningful placement exists.
	if _, err := RoutingKey("NeverSeen", 512, "Z"); err == nil {
		t.Fatal("unknown cluster must error")
	}
}
