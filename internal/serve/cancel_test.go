package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lite/internal/metrics"
)

// --- cache cancellation semantics ---

// TestCacheWaiterDetachOnCancel: a waiter whose context is cancelled while
// parked on another caller's computation detaches with ctx.Err() without
// killing the leader — the leader's result still lands in the cache.
func TestCacheWaiterDetachOnCancel(t *testing.T) {
	c := newTTLCache(time.Minute, time.Now)
	gate := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := c.getOrDo(context.Background(), "k", func() (RecommendResponse, error) {
			<-gate
			return RecommendResponse{Tier: "necs"}, nil
		})
		leaderDone <- err
	}()
	// Wait for the leader to register its in-flight call.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.inflight["k"] != nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, _, err := c.getOrDo(ctx, "k", func() (RecommendResponse, error) {
			t.Error("detached waiter must not compute")
			return RecommendResponse{}, nil
		})
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park on call.done
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter did not detach")
	}

	close(gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	if _, hit, _, _ := c.getOrDo(context.Background(), "k", nil); !hit {
		t.Fatal("leader result was not cached after waiter detached")
	}
}

// TestCacheLeaderCancelledWaiterRetries: a waiter must not inherit the
// *leader's* cancellation — when the shared result is a context error and
// the waiter's own context is still live, it retries and becomes the new
// leader.
func TestCacheLeaderCancelledWaiterRetries(t *testing.T) {
	c := newTTLCache(time.Minute, time.Now)
	gate := make(chan struct{})
	go func() {
		// Leader whose own context was cancelled mid-compute: its fn
		// surfaces the context error.
		c.getOrDo(context.Background(), "k", func() (RecommendResponse, error) {
			<-gate
			return RecommendResponse{}, context.Canceled
		})
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.inflight["k"] != nil
	})

	var retried atomic.Int32
	waiterDone := make(chan struct{})
	var resp RecommendResponse
	var shared bool
	var werr error
	go func() {
		defer close(waiterDone)
		resp, _, shared, werr = c.getOrDo(context.Background(), "k", func() (RecommendResponse, error) {
			retried.Add(1)
			return RecommendResponse{Tier: "necs"}, nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate) // leader hands its cancellation to the waiter

	select {
	case <-waiterDone:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung after leader cancellation")
	}
	if werr != nil {
		t.Fatalf("waiter err = %v, want success from its own retry", werr)
	}
	if shared {
		t.Fatal("waiter reported shared result; it must have recomputed")
	}
	if resp.Tier != "necs" || retried.Load() != 1 {
		t.Fatalf("retry compute: tier=%q calls=%d", resp.Tier, retried.Load())
	}
	if _, hit, _, _ := c.getOrDo(context.Background(), "k", nil); !hit {
		t.Fatal("retried result was not cached")
	}
}

// TestCacheSingleflightErrorShared: when the leader fails with an ordinary
// (non-context) error, every concurrent sharer receives that same error,
// nothing is cached, and the next request recomputes.
func TestCacheSingleflightErrorShared(t *testing.T) {
	c := newTTLCache(time.Minute, time.Now)
	sentinel := fmt.Errorf("model exploded")
	var calls atomic.Int32
	gate := make(chan struct{})
	fn := func() (RecommendResponse, error) {
		calls.Add(1)
		<-gate
		return RecommendResponse{}, sentinel
	}

	const n = 8
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, err := c.getOrDo(context.Background(), "k", fn)
			errs <- err
		}()
	}
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.inflight["k"] != nil
	})
	time.Sleep(20 * time.Millisecond) // let followers park
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("error stampede computed %d times, want exactly 1", got)
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, sentinel) {
			t.Fatalf("sharer err = %v, want the leader's error", err)
		}
	}
	if c.len() != 0 {
		t.Fatalf("error result cached (%d entries)", c.len())
	}
	gate2 := make(chan struct{})
	close(gate2)
	if _, _, _, err := c.getOrDo(context.Background(), "k", func() (RecommendResponse, error) {
		return RecommendResponse{Tier: "necs"}, nil
	}); err != nil {
		t.Fatalf("post-error recompute err = %v", err)
	}
}

// --- batcher cancellation semantics ---

// TestBatcherRejectsDoomedDeadline: a request whose remaining budget cannot
// outlive the collection window is rejected up front instead of queueing
// work that is guaranteed to miss its deadline.
func TestBatcherRejectsDoomedDeadline(t *testing.T) {
	b := newBatcher(64, time.Hour, metrics.NewRegistry())
	b.start()
	defer b.stop()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.submit(ctx, "k", func(context.Context) (RecommendResponse, error) {
		t.Error("doomed request must not compute")
		return RecommendResponse{}, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("doomed request took %v to reject", d)
	}
}

// TestBatcherWaiterDetachOnCancel: a request cancelled while parked in the
// collection window returns ctx.Err() promptly; its slot in the batch later
// computes under the (cancelled) group context and the result is dropped
// into the buffered channel, so nothing hangs at shutdown.
func TestBatcherWaiterDetachOnCancel(t *testing.T) {
	b := newBatcher(64, time.Hour, metrics.NewRegistry())
	b.start()

	var sawCancelled atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.submit(ctx, "k", func(gctx context.Context) (RecommendResponse, error) {
			if gctx.Err() != nil {
				sawCancelled.Store(true)
			}
			return RecommendResponse{}, gctx.Err()
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // enqueue + park in the hour-long window
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled submit did not detach from the batch window")
	}

	// stop() flushes the pending batch; the abandoned request's compute runs
	// under its cancelled context and must not block shutdown.
	stopped := make(chan struct{})
	go func() { b.stop(); close(stopped) }()
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("stop() hung on an abandoned request")
	}
	if !sawCancelled.Load() {
		t.Fatal("abandoned slot's compute did not observe the cancellation")
	}
}

// TestBatcherStopMidFlight: requests already collected when stop() lands
// are flushed and answered; requests racing in after stop compute directly.
// Either way every waiter completes — none hang.
func TestBatcherStopMidFlight(t *testing.T) {
	b := newBatcher(64, time.Hour, metrics.NewRegistry())
	b.start()

	const n = 8
	var computes atomic.Int32
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := b.submit(context.Background(), fmt.Sprintf("k%d", i),
				func(context.Context) (RecommendResponse, error) {
					computes.Add(1)
					return RecommendResponse{Tier: "necs"}, nil
				})
			errs <- err
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the submits enqueue into pending

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	b.stop()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters hung across stop()")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("mid-flight request err = %v", err)
		}
	}
	if got := computes.Load(); got != n {
		t.Fatalf("%d computes for %d distinct keys", got, n)
	}

	// A submit after stop short-circuits to direct computation.
	resp, err := b.submit(context.Background(), "late", func(context.Context) (RecommendResponse, error) {
		return RecommendResponse{Tier: "necs"}, nil
	})
	if err != nil || resp.Tier != "necs" {
		t.Fatalf("post-stop submit: resp=%+v err=%v", resp, err)
	}
}

// TestGroupContext: the group's compute context is cancelled only when
// every sharer has cancelled; an uncancellable member pins it alive.
func TestGroupContext(t *testing.T) {
	mkReq := func(ctx context.Context) *batchReq { return &batchReq{ctx: ctx, key: "k"} }

	t.Run("all background", func(t *testing.T) {
		gctx, release := groupContext([]*batchReq{mkReq(context.Background()), mkReq(context.Background())})
		defer release()
		if gctx.Done() != nil {
			t.Fatal("uncancellable group must get an uncancellable context")
		}
	})

	t.Run("single member shares its context", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		gctx, release := groupContext([]*batchReq{mkReq(ctx)})
		defer release()
		cancel()
		if gctx.Err() == nil {
			t.Fatal("sole member's cancellation must cancel the compute")
		}
	})

	t.Run("one of two cancels: compute survives", func(t *testing.T) {
		ctx1, cancel1 := context.WithCancel(context.Background())
		ctx2, cancel2 := context.WithCancel(context.Background())
		defer cancel2()
		gctx, release := groupContext([]*batchReq{mkReq(ctx1), mkReq(ctx2)})
		defer release()
		cancel1()
		select {
		case <-gctx.Done():
			t.Fatal("one impatient caller killed the shared compute")
		case <-time.After(50 * time.Millisecond):
		}
	})

	t.Run("all cancel: compute cancelled", func(t *testing.T) {
		ctx1, cancel1 := context.WithCancel(context.Background())
		ctx2, cancel2 := context.WithCancel(context.Background())
		gctx, release := groupContext([]*batchReq{mkReq(ctx1), mkReq(ctx2)})
		defer release()
		cancel1()
		cancel2()
		select {
		case <-gctx.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("group context not cancelled after every sharer cancelled")
		}
	})

	t.Run("background member pins compute alive", func(t *testing.T) {
		ctx1, cancel1 := context.WithCancel(context.Background())
		gctx, release := groupContext([]*batchReq{mkReq(ctx1), mkReq(context.Background())})
		defer release()
		cancel1()
		if gctx.Done() != nil {
			t.Fatal("background member must make the group uncancellable")
		}
	})
}

// waitFor polls cond until true or fails the test after a generous timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
