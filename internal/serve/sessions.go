package serve

import (
	"math"
	"net/http"
	"path/filepath"
	"sync/atomic"

	"lite/internal/core"
	"lite/internal/session"
	"lite/internal/sparksim"
	"lite/internal/workload"
	"lite/pkg/api"
)

// Tuning sessions (/v1/tuning/sessions, DESIGN.md §11). The subsystem
// itself lives in internal/session; this file wires it into the server:
// the store is opened in Start (persisting under Options.SessionDir
// through the same WAL/snapshot seam as the model), proposals are scored
// against the live published snapshot, and winning results are promoted
// through the ordinary feedback path — on a trainer they enter the
// adaptive-update queue, on a follower they are acknowledged locally and
// carried to the trainer by the fleet router (the trainer owns promotion).

// sessionsPtr is the store handle; atomic because handlers may race Start
// in tests that spin the handler up concurrently.
type sessionsPtr = atomic.Pointer[session.Store]

func (s *Server) sessionStore() *session.Store { return s.sessions.Load() }

// openSessions builds the session store (called from Start). Persistence
// defaults to <WALDir>/sessions when a WAL directory is configured;
// without one, sessions are in-memory and die with the process.
func (s *Server) openSessions() error {
	dir := s.opts.SessionDir
	if dir == "" && s.opts.WALDir != "" {
		dir = filepath.Join(s.opts.WALDir, "sessions")
	}
	st, err := session.Open(session.Options{
		Dir:           dir,
		FS:            s.opts.WALFS,
		SyncEvery:     s.opts.WALSyncEvery,
		SyncInterval:  s.opts.WALSyncInterval,
		SnapshotEvery: s.opts.SessionSnapshotEvery,
		DefaultBound:  s.opts.SessionDefaultBound,
		Seed:          s.opts.Seed,
		Now:           s.opts.Now,
	})
	if err != nil {
		return err
	}
	s.sessions.Store(st)
	s.reg.GaugeFunc("lite_sessions_active", func() float64 {
		return float64(st.Active())
	})
	if st.RecoveredEvents > 0 || st.RecoveredSessions > 0 {
		s.reg.Counter("lite_session_recovered_events_total").Add(uint64(st.RecoveredEvents))
	}
	return nil
}

// SessionRoutingKey derives the fleet sharding key from a session ID
// alone: the identifying (app, datasize, cluster) fields are embedded in
// the ID precisely so a router can place /v1/tuning/sessions/{id}/...
// requests on the owning shard without a lookup table. The key is the same
// (app, datasize bucket, env fingerprint) string /v1/recommend hashes, so
// a session lives on the shard whose cache is hot for its keyspace slice.
func SessionRoutingKey(id string) (string, error) {
	app, sizeMB, cluster, err := session.ParseID(id)
	if err != nil {
		return "", badRequest("malformed session id %q", id)
	}
	return RoutingKey(app, sizeMB, cluster)
}

// snapshotScorer adapts one published model snapshot to the session
// subsystem's Scorer: candidate screening sees exactly what /v1/recommend
// would predict, at the session's exact datasize.
type snapshotScorer struct {
	scorer interface {
		Score(cfg sparksim.Config) float64
	}
	env sparksim.Environment
}

func (sc snapshotScorer) Score(cfg sparksim.Config) float64 { return sc.scorer.Score(cfg) }

func (sc snapshotScorer) Feasible(cfg sparksim.Config) bool {
	return sparksim.Feasible(cfg, sc.env)
}

// handleSessions is the collection route: POST creates, GET lists.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	st := s.sessionStore()
	if st == nil {
		s.writeAPIError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "session store not started", 1000)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.writeJSON(w, http.StatusOK, api.SessionListResponse{Sessions: st.List()})
	case http.MethodPost:
		s.handleSessionCreate(w, r, st)
	default:
		s.requireMethod(w, r, http.MethodGet, http.MethodPost)
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request, st *session.Store) {
	var req api.CreateSessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	app, env, err := s.resolve(req.App, req.Cluster)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if req.SizeMB <= 0 {
		req.SizeMB = app.Sizes.Test
	}
	// The baseline is the static safe recommendation at the session's
	// exact size — the config the session must never regress past by more
	// than the bound, and the anchor trial 0 measures.
	snap := s.snap.Load()
	data := app.Spec.MakeData(req.SizeMB)
	sr, err := snap.Tuner.RecommendSafeCtx(ctx, app.Spec, data, env)
	if err != nil {
		s.writeError(w, err)
		return
	}
	baseCfg, basePred := s.warmStartBaseline(snap, app, data, env, sr)
	sess, err := st.Create(app.Spec.Name, req.SizeMB, env.Name,
		session.Strategy(req.Strategy), req.MaxTrials, req.SafetyBound,
		baseCfg, basePred)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.Counter("lite_sessions_created_total").Inc()
	s.writeJSON(w, http.StatusCreated, sess)
}

// warmStartBaseline picks the session's starting configuration: the static
// safe recommendation, unless the retrieval store knows a neighbour whose
// adapted best-known config the live model scores strictly better — then
// the session starts exploring from the neighbour instead of re-learning
// it. Only a NECS-tier recommendation is challenged: degraded tiers either
// already are the retrieval answer or carry no estimate to compare.
func (s *Server) warmStartBaseline(snap *Snapshot, app *workload.App, data sparksim.DataSpec, env sparksim.Environment, sr core.SafeRecommendation) (sparksim.Config, float64) {
	if sr.Tier != core.TierNECS || snap.Tuner.Model == nil {
		return sr.Config, sr.PredictedSeconds
	}
	anchor, ok := snap.Tuner.RetrievalAnchor(app.Spec, data, env)
	if !ok {
		return sr.Config, sr.PredictedSeconds
	}
	scorer := snap.Tuner.Model.NewAppScorer(app.Spec, data, env)
	pred, finite := scorer.ScoreChecked(anchor)
	if !finite || math.IsNaN(pred) || math.IsInf(pred, 0) || pred >= sr.PredictedSeconds {
		return sr.Config, sr.PredictedSeconds
	}
	s.reg.Counter("lite_session_retrieval_warmstarts_total").Inc()
	return anchor, pred
}

// handleSessionByID is the item route: GET reads (with trial history),
// DELETE closes (idempotent; the closed resource stays readable).
func (s *Server) handleSessionByID(w http.ResponseWriter, r *http.Request) {
	st := s.sessionStore()
	if st == nil {
		s.writeAPIError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "session store not started", 1000)
		return
	}
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		sess, err := st.Get(id, true)
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, sess)
	case http.MethodDelete:
		sess, err := st.CloseSession(id)
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.reg.Counter("lite_sessions_closed_total").Inc()
		s.writeJSON(w, http.StatusOK, sess)
	default:
		s.requireMethod(w, r, http.MethodGet, http.MethodDelete)
	}
}

// handleSessionProposal issues the next trial's configuration. The
// proposal is screened against the live snapshot; re-requesting before
// reporting returns the same trial without spending budget.
func (s *Server) handleSessionProposal(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	st := s.sessionStore()
	if st == nil {
		s.writeAPIError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "session store not started", 1000)
		return
	}
	id := r.PathValue("id")
	meta, err := st.Get(id, false)
	if err != nil {
		s.writeError(w, err)
		return
	}
	app, env, err := s.resolve(meta.App, meta.Cluster)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// One snapshot load for the whole proposal: the generation reported
	// back is exactly the model every candidate was screened against.
	snap := s.snap.Load()
	scorer := snap.Tuner.Model.NewAppScorer(app.Spec, app.Spec.MakeData(meta.SizeMB), env)
	prop, err := st.NextProposal(id, snapshotScorer{scorer: scorer, env: env})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.Counter("lite_session_proposals_total{source=\"" + prop.Source + "\"}").Inc()
	resp := api.ProposalResponse{
		SessionID:         prop.SessionID,
		Trial:             prop.Trial,
		Config:            session.ConfigMap(prop.Config),
		Source:            prop.Source,
		BudgetRemaining:   prop.BudgetRemaining,
		Generation:        snap.Gen,
		AbortAfterSeconds: prop.AbortAfterSeconds,
	}
	if !math.IsNaN(prop.Predicted) && !math.IsInf(prop.Predicted, 0) {
		p := prop.Predicted
		resp.PredictedSeconds = &p
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSessionResult records a trial's measured outcome, exactly once per
// trial, and promotes new session bests into the model through the
// feedback path. The promoted body is also echoed in the response
// (Promotion) so a fleet router can tee it to the trainer shard when this
// instance is a follower.
func (s *Server) handleSessionResult(w http.ResponseWriter, r *http.Request) {
	st := s.sessionStore()
	if st == nil {
		s.writeAPIError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "session store not started", 1000)
		return
	}
	var req api.ReportResultRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	meta, err := st.Get(id, false)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out, err := st.Report(id, req.Trial, req.Seconds, req.Failed)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if out.Violation {
		s.reg.Counter("lite_session_violations_total").Inc()
	}
	resp := api.ReportResultResponse{
		SessionID:       id,
		Trial:           req.Trial,
		Improved:        out.Improved,
		Promoted:        out.Promote,
		Violation:       out.Violation,
		BestSeconds:     out.BestSeconds,
		BaselineSeconds: out.BaselineSeconds,
		BudgetRemaining: out.BudgetRemaining,
	}
	if out.Promote {
		fb := api.FeedbackRequest{
			App:     meta.App,
			SizeMB:  meta.SizeMB,
			Cluster: meta.Cluster,
			Config:  session.ConfigMap(out.Config),
		}
		resp.Promotion = &fb
		ctx, cancel := s.requestContext(r)
		if _, ferr := s.FeedbackCtx(ctx, fb); ferr != nil {
			// The result itself is recorded (and durable); a full feedback
			// queue only delays the model learning this win. Count it —
			// the session can re-discover the config, and a fleet router
			// still tees resp.Promotion to the trainer.
			s.reg.Counter("lite_session_promotions_dropped_total").Inc()
		} else {
			s.reg.Counter("lite_session_promotions_total").Inc()
		}
		cancel()
	}
	s.writeJSON(w, http.StatusOK, resp)
}
