// Package serve turns the LITE tuner into a long-running, concurrent
// recommendation service (the deployment shape the paper's online phase
// assumes: recommendations are served continuously while execution
// feedback flows back into the model).
//
// Architecture:
//
//   - An immutable model *snapshot* (tuner + generation) is published
//     through an atomic pointer. Readers load the pointer once per request
//     and never block on training.
//   - A background *adaptive-update loop* consumes a feedback queue,
//     retrains a clone of the current model off the hot path
//     (core.Tuner.CloneForUpdate + AdaptiveModelUpdate) and hot-swaps the
//     snapshot atomically.
//   - Concurrent requests are *micro-batched*: requests arriving within a
//     small window coalesce into one batch, and requests for the same
//     (app, datasize bucket, env) key inside a batch are scored once.
//   - A TTL *recommendation cache* with singleflight deduplication absorbs
//     repeated-key traffic; a stampede on a cold key computes once.
//
// The HTTP/JSON API lives in http.go; cmd/liteserve runs it and
// cmd/liteload benchmarks it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"
	"hash/fnv"

	"lite/internal/core"
	"lite/internal/metrics"
	"lite/internal/retrieval"
	"lite/internal/sparksim"
	"lite/internal/wal"
	"lite/internal/workload"
	"lite/pkg/api"
)

// Options configures the server. The zero value enables the cache and the
// batcher with the defaults below.
type Options struct {
	// CacheTTL bounds how long a recommendation is served from cache
	// (default 30s). The cache is also flushed on every model hot-swap.
	CacheTTL time.Duration
	// DisableCache bypasses the recommendation cache (every request goes
	// to the batcher / model).
	DisableCache bool

	// BatchMax is the most requests coalesced into one inference batch
	// (default 16); BatchWindow is how long the batcher waits for
	// stragglers after the first request arrives (default 2ms).
	BatchMax    int
	BatchWindow time.Duration
	// DisableBatcher scores every request individually.
	DisableBatcher bool

	// MaxInFlight bounds how many recommendation requests may be inside
	// the serving pipeline at once. Excess load is shed immediately with
	// ErrOverloaded (HTTP 503 + Retry-After) instead of queueing without
	// bound — under overload, fail fast beats pile up. 0 disables the
	// limiter.
	MaxInFlight int

	// RequestTimeout caps how long one HTTP request may spend in the
	// pipeline: the handler derives a deadline from it, and every stage
	// (cache wait, batcher queue, candidate scoring) observes the
	// cancellation. 0 means no server-imposed deadline (the client's
	// context still applies).
	RequestTimeout time.Duration

	// UpdateBatch is how many feedback runs trigger one adaptive model
	// update (default 8). FeedbackQueue bounds the pending-feedback queue
	// (default 256); a full queue rejects new feedback rather than block
	// the handler.
	UpdateBatch   int
	FeedbackQueue int

	// SourceSample is a sample of source-domain (offline training)
	// instances mixed into every adaptive update so the model does not
	// drift off the training distribution. Optional.
	SourceSample []*core.Encoded

	// ScoreWorkers resizes the process-wide candidate-scoring pool
	// (core.SetScoreWorkers) at construction: recommendations fan their
	// 64-candidate NECS scoring across this many goroutines, and the
	// batcher scores distinct keys of one batch concurrently under the
	// same bound. 0 leaves the pool at its default, GOMAXPROCS; 1 forces
	// serial scoring. Rankings are deterministic at any width.
	ScoreWorkers int

	// FitWorkers is the number of data-parallel replicas each adaptive
	// model update trains with (core.AMUConfig.Workers). 0 keeps the
	// serial update; 1 is bit-identical to serial through the parallel
	// engine; K > 1 is statistically equivalent and ~K× faster on ≥ K
	// cores.
	FitWorkers int

	// SnapshotPath, when set, persists every published snapshot's tuner
	// there (write-to-temp + fsync + rename + dir fsync), so a restarted
	// server can reload the adapted model with core.LoadTuner. Persist
	// failures are retried with exponential backoff (PersistRetries /
	// PersistRetryBackoff), and the seconds since the last successful
	// persist are exported as the lite_snapshot_age_seconds gauge.
	SnapshotPath string

	// PersistRetries is how many times one snapshot persist is retried
	// after the first failure (default 3); PersistRetryBackoff is the
	// first retry's delay, doubling per attempt (default 50ms).
	PersistRetries      int
	PersistRetryBackoff time.Duration

	// WALDir, when set, enables the feedback write-ahead log: accepted
	// /feedback is appended (length+CRC32-framed) before it is enqueued,
	// fsynced every WALSyncEvery appends and every WALSyncInterval, and
	// replayed into the update loop on the next Start after a crash.
	// Records fold out of the log once the snapshot absorbing them is
	// durable, so WALDir is designed to be paired with SnapshotPath.
	WALDir          string
	WALSyncEvery    int           // default 8 appends per fsync; 1 = sync every ack
	WALSyncInterval time.Duration // default 50ms; <0 disables the interval syncer
	WALSegmentBytes int64         // segment rotation bound, default 4 MiB
	// WALFS overrides the WAL's filesystem (fault-injection tests).
	WALFS wal.FS

	// Validation configures the hot-swap gate (see ValidationOptions): a
	// retrained candidate that regresses held-out ranking quality is
	// rejected, its feedback batch quarantined, and retrains back off. The
	// zero value disables the gate; cmd/liteserve enables it by default.
	Validation ValidationOptions

	// RetrainBackoffMin/Max bound the exponential backoff applied after a
	// rejected hot-swap and after an update-loop panic restart (defaults
	// 1s and 5m).
	RetrainBackoffMin time.Duration
	RetrainBackoffMax time.Duration

	// QuarantinePath overrides where rejected feedback batches are
	// appended (JSON lines). Default: <WALDir>/quarantine.jsonl, else
	// <SnapshotPath>.quarantine.jsonl, else quarantine is disabled.
	QuarantinePath string

	// SessionDir persists tuning sessions (/v1/tuning/sessions) through
	// their own WAL + snapshot in that directory, so open sessions survive
	// a crash-restart. Default: <WALDir>/sessions when WALDir is set, else
	// sessions are in-memory only. SessionSnapshotEvery folds the session
	// WAL into its snapshot after that many mutation events (default 64);
	// SessionDefaultBound is the safety bound applied when a create
	// request does not set one (default 1.5).
	SessionDir           string
	SessionSnapshotEvery int
	SessionDefaultBound  float64

	// Follower runs the server as a fleet follower (DESIGN.md §10): the
	// adaptive-update loop is not started, accepted feedback is WAL-logged
	// (when WALDir is set) and acknowledged but never enqueued for local
	// retraining, and the model only advances when a fleet coordinator
	// flips it to a published snapshot via FlipTo / POST /admin/flip.
	// Follower implies EnableAdmin.
	Follower bool

	// EnableAdmin registers the /admin/flip endpoint (fleet-coordinated
	// hot-swap). Off by default: a standalone liteserve should not expose a
	// "replace my model with this file" surface.
	EnableAdmin bool

	// Float32 enables float32 serving (DESIGN.md §12): every tuner this
	// server publishes — the boot tuner, each validated retrain clone, and
	// snapshots adopted via FlipTo — is compiled to a packed float32
	// inference plan after it passes validation, so the hot path runs the
	// tower in float32 while training, validation, and persistence stay
	// float64.
	Float32 bool

	// ChaosCorruptEveryN and ChaosPanicEveryN are chaos-engineering
	// failpoints (0 = off, the production setting): every Nth retrain
	// attempt respectively poisons the candidate's weights with NaNs
	// (exercising the validation gate's rejection path) or panics inside
	// the update loop (exercising the supervisor's restart path). The
	// chaos harness (scripts/chaos_smoke.sh, recovery tests) drives both.
	ChaosCorruptEveryN int
	ChaosPanicEveryN   int

	// Retrieval is the zero-execution cold-start store shared by every
	// tuner generation this server publishes (boot, retrain clones, FlipTo
	// adoptions). When nil, the boot tuner's own store (if any) is adopted;
	// when both are nil the retrieval tier is disabled and unseen-app
	// requests degrade to the safe default. The store also grows online:
	// every successfully absorbed feedback run is folded in.
	Retrieval *retrieval.Store

	// Seed drives the retrain RNG chain; each update uses Seed+generation.
	Seed int64

	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.CacheTTL <= 0 {
		o.CacheTTL = 30 * time.Second
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 16
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.UpdateBatch <= 0 {
		o.UpdateBatch = 8
	}
	if o.FeedbackQueue <= 0 {
		o.FeedbackQueue = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Follower {
		o.EnableAdmin = true
	}
	if o.PersistRetries <= 0 {
		o.PersistRetries = 3
	}
	if o.PersistRetryBackoff <= 0 {
		o.PersistRetryBackoff = 50 * time.Millisecond
	}
	if o.RetrainBackoffMin <= 0 {
		o.RetrainBackoffMin = time.Second
	}
	if o.RetrainBackoffMax <= 0 {
		o.RetrainBackoffMax = 5 * time.Minute
	}
	return o
}

// Snapshot is one immutable published model generation. The Tuner inside a
// snapshot is never mutated after publication — updates clone, retrain and
// swap — so any number of readers may use it without coordination beyond
// loading the pointer.
type Snapshot struct {
	Tuner *core.Tuner
	// Gen counts hot-swaps since boot (the offline model is generation 0).
	Gen uint64
	// CreatedAt is when this generation was published.
	CreatedAt time.Time
	// Feedbacks is the cumulative number of feedback runs folded into the
	// model across all generations.
	Feedbacks int
}

// Server is the concurrent LITE recommendation service. All exported
// methods are safe for concurrent use; the hot path (Recommend) reads an
// immutable snapshot and never blocks on training.
type Server struct {
	opts Options
	snap atomic.Pointer[Snapshot]
	// publishMu serializes snapshot publication (the update loop's retrain
	// and an admin-initiated FlipTo can otherwise interleave and regress the
	// generation); readers never take it — they load the atomic pointer.
	publishMu sync.Mutex
	cache     *ttlCache
	batch     *batcher
	reg       *metrics.Registry
	// inflight is the admission-control semaphore (nil when
	// Options.MaxInFlight is 0): a slot is held for a request's whole stay
	// in the pipeline, and a request that cannot get one immediately is
	// shed with ErrOverloaded.
	inflight chan struct{}

	feedbackCh chan feedbackItem
	stopOnce   sync.Once
	stopCh     chan struct{}
	wg         sync.WaitGroup
	started    atomic.Bool

	// Durability and self-healing state (DESIGN.md §9). wal and recovered
	// are set by Start; validator is nil when the gate is disabled. The
	// liveVal/backoff/retrain fields below are owned by the update-loop
	// goroutine chain (superviseUpdateLoop runs its restarts sequentially),
	// so they need no lock.
	wal       *wal.WAL
	recovered []feedbackItem
	validator *validator

	liveVal          valScore
	liveValGen       uint64
	liveValSet       bool
	retrainAttempts  uint64
	retrainFailures  int
	backoffUntil     time.Time
	lastPersistNanos atomic.Int64
	walErrOnce       sync.Once

	// sessions is the tuning-session store (sessions.go), set by Start.
	sessions sessionsPtr

	// retrieval is the cold-start store every published tuner shares; nil
	// disables the retrieval tier. The store is internally synchronized, so
	// the hot path reads it lock-free while feedback absorption grows it.
	retrieval *retrieval.Store
}

type feedbackItem struct {
	app *workload.App
	req FeedbackRequest
	cfg sparksim.Config
	env sparksim.Environment
	// seq is the WAL sequence number (0 when the WAL is off or the append
	// failed); the update loop folds the log up to the batch's max seq.
	seq uint64
}

// New builds a server around an offline-trained tuner (generation 0).
// Call Start to launch the adaptive-update loop, and Shutdown to stop.
// The returned server's exported methods are all safe for concurrent use.
func New(tuner *core.Tuner, opts Options) *Server {
	opts = opts.withDefaults()
	if opts.ScoreWorkers > 0 {
		core.SetScoreWorkers(opts.ScoreWorkers)
	}
	s := &Server{
		opts:       opts,
		reg:        metrics.NewRegistry(),
		feedbackCh: make(chan feedbackItem, opts.FeedbackQueue),
		stopCh:     make(chan struct{}),
	}
	if opts.Float32 {
		tuner.EnableF32Serving()
	}
	// One retrieval store serves every generation: prefer the injected one,
	// else adopt whatever the boot tuner carries, and reattach on every
	// publish (retrain clones share the pointer; FlipTo reattaches after
	// loading, since snapshots do not serialize the store).
	s.retrieval = opts.Retrieval
	if s.retrieval == nil {
		s.retrieval = tuner.Retrieval
	}
	tuner.Retrieval = s.retrieval
	if s.retrieval != nil {
		s.reg.GaugeFunc("lite_retrieval_entries", func() float64 {
			return float64(s.retrieval.Len())
		})
	}
	s.snap.Store(&Snapshot{Tuner: tuner, Gen: 0, CreatedAt: opts.Now()})
	s.cache = newTTLCache(opts.CacheTTL, opts.Now)
	s.batch = newBatcher(opts.BatchMax, opts.BatchWindow, s.reg)
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	s.reg.Gauge("lite_snapshot_generation").Set(0)
	s.reg.GaugeFunc("lite_inflight", func() float64 {
		return float64(len(s.inflight))
	})
	// Scoring-pool depth and utilization, evaluated at scrape time.
	s.reg.GaugeFunc("lite_score_pool_workers", func() float64 {
		return float64(core.ScorePoolStats().Workers)
	})
	s.reg.GaugeFunc("lite_score_pool_busy", func() float64 {
		return float64(core.ScorePoolStats().Busy)
	})
	s.reg.GaugeFunc("lite_score_pool_utilization", func() float64 {
		return core.ScorePoolStats().Utilization
	})
	s.reg.GaugeFunc("lite_score_pool_items_total", func() float64 {
		return float64(core.ScorePoolStats().Items)
	})
	return s
}

// Metrics returns the server's metrics registry. Safe for concurrent use.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Snapshot returns the currently published model snapshot; the returned
// value is immutable and safe to read from any goroutine.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Start launches the background adaptive-update loop and the batcher.
// When Options.WALDir is set it first recovers the feedback WAL — torn and
// corrupt tails are skipped and counted, unfolded records are queued for
// replay ahead of new traffic — and when Options.Validation.Enable is set
// it freezes the held-out validation set the hot-swap gate scores against.
// A non-nil error means the durability layer could not be brought up; the
// server has not started.
func (s *Server) Start() error {
	if s.started.Swap(true) {
		return nil
	}
	if s.opts.WALDir != "" {
		w, recs, stats, err := wal.Open(wal.Options{
			Dir:             s.opts.WALDir,
			SegmentMaxBytes: s.opts.WALSegmentBytes,
			SyncEvery:       s.opts.WALSyncEvery,
			SyncInterval:    s.opts.WALSyncInterval,
			FS:              s.opts.WALFS,
		})
		if err != nil {
			s.started.Store(false)
			return fmt.Errorf("serve: opening feedback WAL: %w", err)
		}
		s.wal = w
		s.reg.Counter("lite_wal_corrupt_records_total").Add(uint64(stats.CorruptTails))
		s.reg.Counter("lite_wal_recovered_records_total").Add(uint64(stats.Recovered))
		skipped := 0
		for _, rec := range recs {
			item, ok := s.replayItem(rec)
			if !ok {
				skipped++
				continue
			}
			s.recovered = append(s.recovered, item)
		}
		if skipped > 0 {
			// A record that no longer resolves (app/cluster renamed across
			// an upgrade, garbage payload behind a valid CRC) is dropped
			// visibly, not fatally.
			s.reg.Counter("lite_wal_replay_skipped_total").Add(uint64(skipped))
		}
		s.reg.GaugeFunc("lite_wal_last_seq", func() float64 { return float64(s.wal.Stats().LastSeq) })
		s.reg.GaugeFunc("lite_wal_synced_seq", func() float64 { return float64(s.wal.Stats().SyncedSeq) })
		s.reg.GaugeFunc("lite_wal_folded_seq", func() float64 { return float64(s.wal.Stats().Folded) })
		s.reg.GaugeFunc("lite_wal_segments", func() float64 { return float64(s.wal.Stats().Segments) })
		s.reg.GaugeFunc("lite_wal_fsyncs", func() float64 { return float64(s.wal.Stats().Fsyncs) })
	}
	if s.opts.Validation.Enable {
		s.validator = newValidator(s.snap.Load().Tuner, s.opts.Validation.withDefaults(s.opts.Seed))
	}
	if s.opts.SnapshotPath != "" {
		s.reg.GaugeFunc("lite_snapshot_age_seconds", func() float64 {
			last := s.lastPersistNanos.Load()
			if last == 0 {
				return -1 // never persisted — alertable on its own
			}
			return time.Duration(s.opts.Now().UnixNano() - last).Seconds()
		})
		// Persist generation 0 up front: from the first served request on,
		// a crash always has a loadable snapshot to restart from.
		s.persistSnapshot(s.snap.Load().Tuner)
	}
	if err := s.openSessions(); err != nil {
		s.started.Store(false)
		return fmt.Errorf("serve: opening session store: %w", err)
	}
	s.batch.start()
	if s.opts.Follower {
		// A follower never retrains: its model advances only through FlipTo.
		// WAL-recovered feedback (accepted before a crash, never folded here)
		// is intentionally left unfolded — the fleet trainer owns training.
		return nil
	}
	s.wg.Add(1)
	go s.superviseUpdateLoop()
	return nil
}

// FlipTo loads a published tuner snapshot from path and publishes it as
// generation gen — the follower half of the fleet's publish-then-flip
// hot-swap protocol (DESIGN.md §10): a trainer persists and validates the
// snapshot first, then the coordinator flips every follower to it, so all
// shards serve the same weights under the same generation number. A flip
// to a generation at or below the live one is a no-op (replayed or
// reordered flips must not regress the model); the recommendation cache is
// flushed so no pre-flip answer outlives the swap. Safe for concurrent use
// with serving and with the local update loop.
func (s *Server) FlipTo(path string, gen uint64) (uint64, error) {
	if cur := s.snap.Load(); gen <= cur.Gen {
		return cur.Gen, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return s.snap.Load().Gen, fmt.Errorf("serve: flip: opening snapshot: %w", err)
	}
	defer f.Close()
	tuner, err := core.LoadTuner(f, s.opts.Seed)
	if err != nil {
		// A snapshot that does not load must never replace a serving model.
		return s.snap.Load().Gen, fmt.Errorf("serve: flip: loading snapshot %s: %w", path, err)
	}
	if s.opts.Float32 {
		// Snapshots persist float64 weights only; the float32 serving plan
		// is recompiled at every adoption (DESIGN.md §12).
		tuner.EnableF32Serving()
	}
	// Snapshots do not serialize the retrieval store either; the adopted
	// tuner keeps serving this server's live store.
	tuner.Retrieval = s.retrieval
	s.publishMu.Lock()
	defer s.publishMu.Unlock()
	cur := s.snap.Load()
	if gen <= cur.Gen {
		return cur.Gen, nil
	}
	next := &Snapshot{Tuner: tuner, Gen: gen, CreatedAt: s.opts.Now(), Feedbacks: cur.Feedbacks}
	s.snap.Store(next)
	s.cache.flush(next.Gen)
	s.reg.Counter("lite_flips_total").Inc()
	s.reg.Gauge("lite_snapshot_generation").Set(float64(next.Gen))
	return next.Gen, nil
}

// replayItem turns one recovered WAL record back into a queued feedback
// item, re-running the same validation as the /feedback handler.
func (s *Server) replayItem(rec wal.Record) (feedbackItem, bool) {
	var req FeedbackRequest
	if err := json.Unmarshal(rec.Data, &req); err != nil {
		return feedbackItem{}, false
	}
	app, env, err := s.resolve(req.App, req.Cluster)
	if err != nil {
		return feedbackItem{}, false
	}
	if req.SizeMB <= 0 {
		req.SizeMB = app.Sizes.Test
	}
	cfg, err := ConfigFromMap(req.Config)
	if err != nil {
		return feedbackItem{}, false
	}
	return feedbackItem{app: app, req: req, cfg: core.ForceFeasible(cfg, env), env: env, seq: rec.Seq}, true
}

// Shutdown stops the batcher and the update loop, waiting for an in-flight
// retrain to finish (bounded by the deadline, if any, on done), then closes
// the WAL (final fsync included). It is safe to call more than once.
func (s *Server) Shutdown(done <-chan struct{}) error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.batch.stop()
	finished := make(chan struct{})
	go func() { s.wg.Wait(); close(finished) }()
	select {
	case <-finished:
		if st := s.sessions.Swap(nil); st != nil {
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "serve: closing session store: %v\n", err)
			}
		}
		if s.wal != nil {
			return s.wal.Close()
		}
		return nil
	case <-done:
		// The update loop may still be using the WAL; leave it open rather
		// than race a close under it (the OS reclaims it on exit, and the
		// unfsynced tail is exactly the loss bound recovery advertises).
		return fmt.Errorf("serve: shutdown deadline exceeded with update loop still running")
	}
}

// RecommendRequest is one /v1/recommend call. The wire shape lives in
// pkg/api (the single definition clients share); the alias keeps the
// serving layer's historical names working.
type RecommendRequest = api.RecommendRequest

// RecommendResponse is the JSON answer to /v1/recommend (see
// api.RecommendResponse).
type RecommendResponse = api.RecommendResponse

// ErrOverloaded is returned when the in-flight limiter (Options.
// MaxInFlight) is at capacity: the request is shed immediately rather than
// queued behind work that would blow its deadline. HTTP maps it to
// 503 + Retry-After.
var ErrOverloaded = errors.New("serve: overloaded: in-flight request limit reached, retry later")

// RequestError is a client error (unknown app/cluster, bad payload).
type RequestError struct{ msg string }

// Error implements the error interface.
func (e *RequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// sizeBucket quantizes a datasize into its cache bucket: one bucket per
// power of two of megabytes, so 900 MB and 1000 MB share an entry but
// 1 GB and 100 GB do not.
func sizeBucket(sizeMB float64) int {
	if sizeMB <= 1 {
		return 0
	}
	b := 0
	for v := sizeMB; v > 1; v /= 2 {
		b++
	}
	return b
}

// bucketSizeMB is the canonical size every request in bucket b is scored
// at: the bucket's inclusive upper bound (2^b MB). Scoring at one
// representative size per bucket means a response shared through the cache
// or the batcher corresponds to the same computation for every caller,
// rather than to whichever caller happened to lead.
func bucketSizeMB(b int) float64 { return math.Exp2(float64(b)) }

// envFingerprint identifies an environment for cache keying: the hardware
// profile plus the active fault profile's actual knobs — two clusters
// injecting different fault intensities must never share cache, batcher or
// routing entries. It is the retrieval store's fingerprint, so cache keys
// and retrieval entries agree on environment identity.
func envFingerprint(env sparksim.Environment) string {
	return retrieval.EnvFingerprint(env)
}

func requestKey(appName string, sizeMB float64, env sparksim.Environment) string {
	return fmt.Sprintf("%s|b%d|%s", appName, sizeBucket(sizeMB), envFingerprint(env))
}

// coldDefaultSizeMB is the datasize assumed for an unseen-app request that
// does not state one (registered apps default to their catalogued test
// size, which an unregistered app does not have).
const coldDefaultSizeMB = 1024

// RoutingKey is the sharding key a fleet router hashes to place a request:
// the same (app, datasize bucket, env fingerprint) string the cache and the
// batcher key on, so routing by it keeps each shard's cache and batcher hot
// on its slice of the keyspace. sizeMB <= 0 defaults to the app's test
// size, exactly as the serving path does. An app absent from the workload
// registry still gets a well-formed key over its raw (name, size bucket,
// env) fields — unseen-app traffic served by the retrieval tier must land
// on one consistent shard, not scatter its cache fleet-wide. An
// unresolvable cluster returns an error; the router may still forward such
// a request (the shard answers 400), it just cannot place it better than
// arbitrarily.
func RoutingKey(appName string, sizeMB float64, cluster string) (string, error) {
	env, ok := ClusterByName(cluster)
	if !ok {
		return "", badRequest("unknown cluster %q", cluster)
	}
	if app := workload.ByName(appName); app != nil {
		if sizeMB <= 0 {
			sizeMB = app.Sizes.Test
		}
		return requestKey(app.Spec.Name, sizeMB, env), nil
	}
	if sizeMB <= 0 {
		sizeMB = coldDefaultSizeMB
	}
	return requestKey(appName, sizeMB, env), nil
}

// ClusterByName resolves a cluster name (case-insensitive) to its
// environment.
func ClusterByName(name string) (sparksim.Environment, bool) {
	for _, e := range sparksim.AllClusters {
		if strings.EqualFold(e.Name, name) {
			return e, true
		}
	}
	return sparksim.Environment{}, false
}

func (s *Server) resolve(appName, cluster string) (*workload.App, sparksim.Environment, error) {
	app := workload.ByName(appName)
	if app == nil {
		return nil, sparksim.Environment{}, badRequest("unknown application %q", appName)
	}
	env, ok := ClusterByName(cluster)
	if !ok {
		return nil, sparksim.Environment{}, badRequest("unknown cluster %q", cluster)
	}
	return app, env, nil
}

// Recommend serves one recommendation request through the cache, the
// batcher and the current model snapshot. It is safe for concurrent use.
// It never times out on its own; callers that want a deadline use
// RecommendCtx.
func (s *Server) Recommend(req RecommendRequest) (RecommendResponse, error) {
	return s.RecommendCtx(context.Background(), req)
}

// RecommendCtx is Recommend under a caller-supplied context: the deadline
// and cancellation flow through admission control, the cache's
// singleflight wait, the batcher's queue and the NECS candidate-scoring
// pass, so an abandoned request stops consuming the pipeline promptly.
// Typed failures: ErrOverloaded when the in-flight limit sheds the
// request, ctx.Err() (context.Canceled / context.DeadlineExceeded) when
// the caller's budget ran out first.
func (s *Server) RecommendCtx(ctx context.Context, req RecommendRequest) (RecommendResponse, error) {
	start := s.opts.Now()
	resp, err := s.recommend(ctx, req)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			s.reg.Counter("lite_requests_shed_total").Inc()
		case errors.Is(err, context.DeadlineExceeded):
			s.reg.Counter("lite_requests_deadline_exceeded_total").Inc()
		case errors.Is(err, context.Canceled):
			s.reg.Counter("lite_requests_cancelled_total").Inc()
		}
		return RecommendResponse{}, err
	}
	resp.OverheadMS = float64(s.opts.Now().Sub(start)) / float64(time.Millisecond)
	return resp, nil
}

func (s *Server) recommend(ctx context.Context, req RecommendRequest) (RecommendResponse, error) {
	// Admission control first: when the pipeline is full, shedding must be
	// cheap — no resolution, no cache probe, no queueing.
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			return RecommendResponse{}, ErrOverloaded
		}
	}
	if err := ctx.Err(); err != nil {
		return RecommendResponse{}, err // dead on arrival
	}

	env, ok := ClusterByName(req.Cluster)
	if !ok {
		return RecommendResponse{}, badRequest("unknown cluster %q", req.Cluster)
	}
	app := workload.ByName(req.App)
	if app == nil {
		// Never-seen application: serve it from the retrieval cold-start
		// tier when the request carries enough features to embed; reject
		// with guidance otherwise.
		if hasEmbeddableFeatures(req.Features) {
			return s.recommendCold(ctx, req, env)
		}
		return RecommendResponse{}, badRequest(
			"unknown application %q (send features.code and/or features.ops to serve it from the retrieval tier)", req.App)
	}
	if req.SizeMB <= 0 {
		req.SizeMB = app.Sizes.Test
	}
	key := requestKey(app.Spec.Name, req.SizeMB, env)

	// Score at the bucket's canonical size, not the (leader's) exact size:
	// every request sharing this key gets an answer computed for the same
	// input, and SizeMB is restored to the caller's value below.
	scoreReq := req
	scoreReq.SizeMB = bucketSizeMB(sizeBucket(req.SizeMB))

	compute := func() (RecommendResponse, error) {
		if s.opts.DisableBatcher {
			return s.score(ctx, app, scoreReq, env)
		}
		return s.batch.submit(ctx, key, func(bctx context.Context) (RecommendResponse, error) {
			return s.score(bctx, app, scoreReq, env)
		})
	}

	var resp RecommendResponse
	var err error
	if s.opts.DisableCache {
		resp, err = compute()
	} else {
		var hit, shared bool
		resp, hit, shared, err = s.cache.getOrDo(ctx, key, compute)
		if err == nil {
			resp.Cached = hit
			resp.Coalesced = resp.Coalesced || shared
			if hit {
				s.reg.Counter("lite_cache_hits_total").Inc()
			} else {
				s.reg.Counter("lite_cache_misses_total").Inc()
			}
		}
	}
	if err != nil {
		return RecommendResponse{}, err
	}
	// resp may be shared with other callers in the same bucket; it is a
	// value copy, so restoring this caller's size does not leak across.
	resp.SizeMB = req.SizeMB
	return resp, nil
}

// hasEmbeddableFeatures reports whether a feature payload carries enough
// signal to embed (code tokens and/or DAG ops).
func hasEmbeddableFeatures(f *api.AppFeatures) bool {
	return f != nil && (strings.TrimSpace(f.Code) != "" || len(f.Ops) > 0)
}

// recommendCold serves an application absent from the workload registry
// through the retrieval tier: embed the request's features, look up the
// nearest historical neighbour, adapt its best-known config. The path
// shares the cache and the batcher with warm requests, keyed by the
// feature content hash as well as the app name — two apps reusing a name
// with different code must not share an answer.
func (s *Server) recommendCold(ctx context.Context, req RecommendRequest, env sparksim.Environment) (RecommendResponse, error) {
	if req.SizeMB <= 0 {
		req.SizeMB = coldDefaultSizeMB
	}
	emb := retrieval.EmbedCode(req.Features.Code, req.Features.Ops)
	key := fmt.Sprintf("cold:%s|%x|b%d|%s",
		req.App, featureHash(req.Features), sizeBucket(req.SizeMB), envFingerprint(env))
	scoreSize := bucketSizeMB(sizeBucket(req.SizeMB))

	compute := func() (RecommendResponse, error) {
		if s.opts.DisableBatcher {
			return s.scoreCold(ctx, req.App, emb, scoreSize, env)
		}
		return s.batch.submit(ctx, key, func(bctx context.Context) (RecommendResponse, error) {
			return s.scoreCold(bctx, req.App, emb, scoreSize, env)
		})
	}

	var resp RecommendResponse
	var err error
	if s.opts.DisableCache {
		resp, err = compute()
	} else {
		var hit, shared bool
		resp, hit, shared, err = s.cache.getOrDo(ctx, key, compute)
		if err == nil {
			resp.Cached = hit
			resp.Coalesced = resp.Coalesced || shared
			if hit {
				s.reg.Counter("lite_cache_hits_total").Inc()
			} else {
				s.reg.Counter("lite_cache_misses_total").Inc()
			}
		}
	}
	if err != nil {
		return RecommendResponse{}, err
	}
	resp.SizeMB = req.SizeMB
	return resp, nil
}

// featureHash fingerprints a feature payload for cache/batch keying.
func featureHash(f *api.AppFeatures) uint64 {
	h := fnv.New64a()
	h.Write([]byte(f.Code))
	for _, op := range f.Ops {
		h.Write([]byte{0})
		h.Write([]byte(op))
	}
	return h.Sum64()
}

// scoreCold answers an unseen-app request against the current snapshot via
// the retrieval → safe-default chain (there is no NECS tier for an app the
// estimator has never instrumented).
func (s *Server) scoreCold(ctx context.Context, appName string, emb []float64, sizeMB float64, env sparksim.Environment) (RecommendResponse, error) {
	snap := s.snap.Load()
	sr, err := snap.Tuner.RecommendColdCtx(ctx, emb, sizeMB, env)
	if err != nil {
		if isCtxErr(err) {
			return RecommendResponse{}, err
		}
		return RecommendResponse{}, fmt.Errorf("serve: no feasible configuration: %w", err)
	}
	s.reg.Counter("lite_recommendations_total{tier=\"" + string(sr.Tier) + "\"}").Inc()
	s.reg.Counter("lite_cold_requests_total{tier=\"" + string(sr.Tier) + "\"}").Inc()
	return RecommendResponse{
		App:        appName,
		SizeMB:     sizeMB,
		Cluster:    env.Name,
		Config:     configByName(sr.Config),
		Tier:       string(sr.Tier),
		Generation: snap.Gen,
		BatchSize:  1,
	}, nil
}

// score runs the actual model inference against the current snapshot. The
// snapshot pointer is loaded exactly once, so a hot-swap mid-request can
// never mix two generations in one answer.
func (s *Server) score(ctx context.Context, app *workload.App, req RecommendRequest, env sparksim.Environment) (RecommendResponse, error) {
	snap := s.snap.Load()
	data := app.Spec.MakeData(req.SizeMB)
	sr, err := snap.Tuner.RecommendSafeCtx(ctx, app.Spec, data, env)
	if err != nil {
		if isCtxErr(err) {
			return RecommendResponse{}, err
		}
		return RecommendResponse{}, fmt.Errorf("serve: no feasible configuration: %w", err)
	}
	s.reg.Counter("lite_recommendations_total{tier=\"" + string(sr.Tier) + "\"}").Inc()
	resp := RecommendResponse{
		App:        app.Spec.Name,
		SizeMB:     req.SizeMB,
		Cluster:    env.Name,
		Config:     configByName(sr.Config),
		Tier:       string(sr.Tier),
		Generation: snap.Gen,
		BatchSize:  1,
	}
	if !isNaN(sr.PredictedSeconds) {
		p := sr.PredictedSeconds
		resp.PredictedSeconds = &p
	}
	return resp, nil
}

func isNaN(v float64) bool { return v != v }

// configByName renders a Config as a knob-name → value map.
func configByName(cfg sparksim.Config) map[string]float64 {
	out := make(map[string]float64, sparksim.NumKnobs)
	for i, k := range sparksim.Knobs {
		out[k.Name] = cfg[i]
	}
	return out
}

// ConfigFromMap builds a Config from a knob-name → value map, starting
// from the default configuration for unspecified knobs. Unknown knob names
// are an error.
func ConfigFromMap(m map[string]float64) (sparksim.Config, error) {
	cfg := sparksim.DefaultConfig()
	if len(m) == 0 {
		return cfg, nil
	}
	index := make(map[string]int, sparksim.NumKnobs)
	for i, k := range sparksim.Knobs {
		index[k.Name] = i
	}
	for name, v := range m {
		i, ok := index[name]
		if !ok {
			return cfg, badRequest("unknown knob %q", name)
		}
		cfg[i] = v
	}
	return cfg.Clamp(), nil
}
