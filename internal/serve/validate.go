package serve

// Validation-gated hot-swap (DESIGN.md §9): before a retrained candidate
// snapshot is published, it is scored on a held-out validation set of
// (app, datasize, env) tuples with simulator ground truth. A candidate
// whose ranking quality regresses past the configured slack — or that
// cannot even score the set finitely — is rejected: the live generation
// keeps serving, the offending feedback batch is quarantined, and retrain
// attempts back off exponentially. The online-tuning invariant is "never
// regress past the safe baseline"; this gate is its serving-side enforcer.

import (
	"fmt"
	"math"
	"math/rand"

	"lite/internal/core"
	"lite/internal/metrics"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// ValidationOptions configures the hot-swap gate. The zero value disables
// it (library users and pre-existing tests keep the ungated behaviour);
// cmd/liteserve enables it by default.
type ValidationOptions struct {
	// Enable turns the gate on.
	Enable bool
	// Cases is how many (app, datasize, env) validation tuples to hold out
	// (default 6).
	Cases int
	// Candidates is the fixed candidate-set size per case (default 8).
	Candidates int
	// TopK is the NDCG@K cutoff (default 3).
	TopK int
	// NDCGSlack is how much mean NDCG@K the candidate may lose versus the
	// live model before the swap is rejected (default 0.05).
	NDCGSlack float64
	// RegretSlack is how much mean top-1 regret the candidate may add
	// versus the live model before the swap is rejected (default 0.25).
	RegretSlack float64
	// Seed drives validation-set sampling (default Options.Seed+101).
	Seed int64
}

func (o ValidationOptions) withDefaults(seed int64) ValidationOptions {
	if o.Cases <= 0 {
		o.Cases = 6
	}
	if o.Candidates <= 0 {
		o.Candidates = 8
	}
	if o.TopK <= 0 {
		o.TopK = 3
	}
	if o.NDCGSlack <= 0 {
		o.NDCGSlack = 0.05
	}
	if o.RegretSlack <= 0 {
		o.RegretSlack = 0.25
	}
	if o.Seed == 0 {
		o.Seed = seed + 101
	}
	return o
}

// regretCap bounds one case's top-1 regret so a single catastrophic pick
// (picking a FailCap config where the best finishes in seconds) saturates
// instead of drowning the mean.
const regretCap = 10.0

// valCase is one held-out validation tuple: a fixed candidate set with
// simulator ground-truth execution times and the implied gold ranking.
type valCase struct {
	app   *workload.App
	data  sparksim.DataSpec
	env   sparksim.Environment
	cands []sparksim.Config
	truth []float64
	gold  []int
}

// valScore is one model's quality on the validation set.
type valScore struct {
	// NDCG is mean NDCG@K of the model's ranking against the gold ranking.
	NDCG float64
	// Regret is the mean capped top-1 regret:
	// (truth(model's pick) − truth(best)) / truth(best).
	Regret float64
	// NonFinite counts candidate predictions that were NaN/Inf — a model
	// that cannot score the held-out set finitely is never published.
	NonFinite int
}

type validator struct {
	cases []valCase
	k     int
	opts  ValidationOptions
}

// newValidator builds the held-out set: round-robin over applications and
// clusters, candidates drawn once from the tuner's ACG region (falling back
// to feasible random configs), ground truth from one simulator execution
// per candidate. The set is frozen for the server's lifetime so scores are
// comparable across generations.
func newValidator(t *core.Tuner, opts ValidationOptions) *validator {
	rng := rand.New(rand.NewSource(opts.Seed))
	apps := workload.All()
	v := &validator{k: opts.TopK, opts: opts}
	for i := 0; len(v.cases) < opts.Cases; i++ {
		app := apps[i%len(apps)]
		env := sparksim.AllClusters[i%len(sparksim.AllClusters)]
		sizeMB := app.Sizes.Test
		if i%2 == 1 && len(app.Sizes.Train) > 0 {
			sizeMB = app.Sizes.Train[len(app.Sizes.Train)-1]
		}
		data := app.Spec.MakeData(sizeMB)
		cands := sampleValidationCands(t, app, data, env, opts.Candidates, rng)
		truth := make([]float64, len(cands))
		for j, c := range cands {
			truth[j] = sparksim.Simulate(app.Spec, data, env, c).Seconds
		}
		v.cases = append(v.cases, valCase{
			app: app, data: data, env: env,
			cands: cands, truth: truth, gold: metrics.RankByScore(truth),
		})
	}
	return v
}

// sampleValidationCands draws a candidate set anchored on the safe default:
// ACG-region samples when the generator covers the app, feasible random
// configs otherwise.
func sampleValidationCands(t *core.Tuner, app *workload.App, data sparksim.DataSpec, env sparksim.Environment, n int, rng *rand.Rand) []sparksim.Config {
	cands := []sparksim.Config{core.ForceFeasible(sparksim.DefaultConfig(), env)}
	cands = append(cands, acgSample(t, app.Spec.Name, data, env, n/2, rng)...)
	for len(cands) < n {
		cands = append(cands, core.ForceFeasible(sparksim.RandomConfig(rng), env))
	}
	return cands[:n]
}

// acgSample is SampleFeasible behind a recover guard: an app the generator
// has never seen must degrade to random candidates, not kill the server.
func acgSample(t *core.Tuner, appName string, data sparksim.DataSpec, env sparksim.Environment, n int, rng *rand.Rand) (out []sparksim.Config) {
	defer func() { recover() }()
	if t.ACG == nil || n <= 0 {
		return nil
	}
	return t.ACG.SampleFeasible(appName, data, env, n, rng)
}

// score evaluates one tuner (live or candidate) on the frozen set. It never
// panics: a model broken enough to blow up mid-score reports the worst
// possible score instead.
func (v *validator) score(t *core.Tuner) (s valScore) {
	defer func() {
		if r := recover(); r != nil {
			s = valScore{NDCG: 0, Regret: regretCap, NonFinite: 1}
		}
	}()
	if len(v.cases) == 0 {
		return s
	}
	for _, c := range v.cases {
		scorer := t.Model.NewAppScorer(c.app.Spec, c.data, c.env)
		preds := make([]float64, len(c.cands))
		for i, cand := range c.cands {
			// ScoreChecked, not Score: the clamp makes a NaN-poisoned model
			// look like a finite (and constant) one, which would slip past
			// both the finiteness check and the ranking comparison.
			pred, finite := scorer.ScoreChecked(cand)
			preds[i] = pred
			if !finite || math.IsNaN(pred) || math.IsInf(pred, 0) {
				s.NonFinite++
			}
		}
		rank := metrics.RankByScore(preds)
		s.NDCG += metrics.NDCGAtK(rank, c.gold, v.k)
		best := c.truth[c.gold[0]]
		picked := c.truth[rank[0]]
		if best > 0 {
			s.Regret += math.Min((picked-best)/best, regretCap)
		} else if picked > best {
			s.Regret += regretCap
		}
	}
	n := float64(len(v.cases))
	s.NDCG /= n
	s.Regret /= n
	return s
}

// judge decides whether the candidate may replace the live model. An empty
// reason means accept.
func (v *validator) judge(cand, live valScore) (reason string) {
	switch {
	case cand.NonFinite > 0:
		return fmt.Sprintf("candidate scored %d validation predictions non-finite", cand.NonFinite)
	case cand.NDCG < live.NDCG-v.opts.NDCGSlack:
		return fmt.Sprintf("NDCG@%d regressed %.3f -> %.3f (slack %.3f)", v.k, live.NDCG, cand.NDCG, v.opts.NDCGSlack)
	case cand.Regret > live.Regret+v.opts.RegretSlack:
		return fmt.Sprintf("top-1 regret regressed %.3f -> %.3f (slack %.3f)", live.Regret, cand.Regret, v.opts.RegretSlack)
	}
	return ""
}
