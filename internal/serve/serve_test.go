package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

var (
	testOnce   sync.Once
	testTunerV *core.Tuner
	testSource []*core.Encoded
)

// testTuner trains one deliberately tiny tuner shared by the whole test
// suite (training dominates test runtime; every test clones or snapshots
// what it needs and never mutates the shared instance in place).
func testTuner(t *testing.T) (*core.Tuner, []*core.Encoded) {
	t.Helper()
	testOnce.Do(func() {
		apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("KMeans")}
		opts := core.DefaultTrainOptions()
		opts.Collect.ConfigsPerInstance = 2
		opts.Collect.Sizes = []int{0}
		opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterC}
		opts.NECS.Epochs = 2
		tuner, ds := core.Train(apps, opts)
		tuner.NumCandidates = 6
		testTunerV = tuner
		testSource = core.EncodeAll(tuner.Model.Encoder, ds.Instances[:24])
	})
	return testTunerV, testSource
}

// newTestServer builds a started server around a clone of the shared tuner.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	tuner, source := testTuner(t)
	if opts.SourceSample == nil {
		opts.SourceSample = source
	}
	s := New(tuner.CloneForUpdate(1), opts)
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		done := make(chan struct{})
		go func() { time.Sleep(120 * time.Second); close(done) }()
		if err := s.Shutdown(done); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestRecommendEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(RecommendRequest{App: "WordCount", SizeMB: 512, Cluster: "C"})
	res, err := http.Post(srv.URL+"/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", res.StatusCode)
	}
	var resp RecommendResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tier == "" {
		t.Fatal("empty tier")
	}
	if len(resp.Config) != sparksim.NumKnobs {
		t.Fatalf("config has %d knobs, want %d", len(resp.Config), sparksim.NumKnobs)
	}
	cfg, err := ConfigFromMap(resp.Config)
	if err != nil {
		t.Fatal(err)
	}
	env, _ := ClusterByName("C")
	if !sparksim.Feasible(cfg, env) {
		t.Fatal("recommended configuration infeasible")
	}

	// Same key again: must be a cache hit.
	res2, err := http.Post(srv.URL+"/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var resp2 RecommendResponse
	if err := json.NewDecoder(res2.Body).Decode(&resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("second identical request not served from cache")
	}
	if got := s.Metrics().Counter("lite_cache_hits_total").Value(); got == 0 {
		t.Fatal("cache hit counter not incremented")
	}
}

func TestRecommendBadRequests(t *testing.T) {
	s := newTestServer(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"unknown app", `{"app":"Nope","cluster":"C"}`, http.StatusBadRequest},
		{"unknown cluster", `{"app":"WordCount","cluster":"Z"}`, http.StatusBadRequest},
		{"bad json", `{"app":`, http.StatusBadRequest},
		{"unknown field", `{"app":"WordCount","cluster":"C","nope":1}`, http.StatusBadRequest},
	} {
		res, err := http.Post(srv.URL+"/recommend", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, res.StatusCode, tc.want)
		}
	}
	res, err := http.Get(srv.URL + "/recommend")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /recommend: status = %d, want 405", res.StatusCode)
	}
}

func TestFeedbackHealthzMetricsEndpoints(t *testing.T) {
	s := newTestServer(t, Options{UpdateBatch: 100}) // never triggers a retrain here
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	res, err := http.Post(srv.URL+"/feedback", "application/json",
		strings.NewReader(`{"app":"WordCount","size_mb":512,"cluster":"C"}`))
	if err != nil {
		t.Fatal(err)
	}
	var fb FeedbackResponse
	if err := json.NewDecoder(res.Body).Decode(&fb); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !fb.Queued {
		t.Fatalf("feedback: status=%d queued=%v", res.StatusCode, fb.Queued)
	}

	res, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: status=%d body=%+v", res.StatusCode, h)
	}

	res, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(res.Body)
	res.Body.Close()
	out := buf.String()
	for _, want := range []string{"lite_feedback_total", "lite_snapshot_generation", "lite_http_requests_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestFeedbackQueueFull(t *testing.T) {
	tuner, source := testTuner(t)
	// Unstarted server: the queue fills because nothing drains it.
	s := New(tuner.CloneForUpdate(2), Options{FeedbackQueue: 2, SourceSample: source})
	req := FeedbackRequest{App: "WordCount", SizeMB: 128, Cluster: "C"}
	for i := 0; i < 2; i++ {
		if _, err := s.Feedback(req); err != nil {
			t.Fatalf("feedback %d: %v", i, err)
		}
	}
	if _, err := s.Feedback(req); err != ErrQueueFull {
		t.Fatalf("overflow feedback error = %v, want ErrQueueFull", err)
	}
}

// TestBucketSharersGetConsistentAnswers: two different sizes in one bucket
// must receive the same config/prediction (computed at the bucket's
// canonical size), while each response's size_mb echoes what its caller
// asked for — never the leader's size.
func TestBucketSharersGetConsistentAnswers(t *testing.T) {
	s := newTestServer(t, Options{})
	r600, err := s.Recommend(RecommendRequest{App: "WordCount", SizeMB: 600, Cluster: "C"})
	if err != nil {
		t.Fatal(err)
	}
	r1000, err := s.Recommend(RecommendRequest{App: "WordCount", SizeMB: 1000, Cluster: "C"})
	if err != nil {
		t.Fatal(err)
	}
	if !r1000.Cached {
		t.Fatal("1000 MB shares 600 MB's bucket and must hit its cache entry")
	}
	if r600.SizeMB != 600 || r1000.SizeMB != 1000 {
		t.Fatalf("size_mb must echo the caller's request: got %g and %g", r600.SizeMB, r1000.SizeMB)
	}
	for name, v := range r600.Config {
		if r1000.Config[name] != v {
			t.Fatalf("bucket sharers disagree on knob %s: %g vs %g", name, v, r1000.Config[name])
		}
	}
	if (r600.PredictedSeconds == nil) != (r1000.PredictedSeconds == nil) {
		t.Fatal("bucket sharers disagree on prediction presence")
	}
	if r600.PredictedSeconds != nil && *r600.PredictedSeconds != *r1000.PredictedSeconds {
		t.Fatalf("bucket sharers disagree on prediction: %g vs %g", *r600.PredictedSeconds, *r1000.PredictedSeconds)
	}
}

func TestSizeBucketAndKeys(t *testing.T) {
	if sizeBucket(900) != sizeBucket(1000) {
		t.Fatal("900 MB and 1000 MB should share a bucket")
	}
	if got := bucketSizeMB(sizeBucket(600)); got != 1024 {
		t.Fatalf("canonical size for the 600 MB bucket = %g, want 1024", got)
	}
	if got := bucketSizeMB(sizeBucket(512)); got != 512 {
		t.Fatalf("powers of two are their own canonical size: got %g for 512", got)
	}
	if sizeBucket(1024) == sizeBucket(100*1024) {
		t.Fatal("1 GB and 100 GB must not share a bucket")
	}
	envC, _ := ClusterByName("C")
	envA, _ := ClusterByName("A")
	if requestKey("X", 512, envC) == requestKey("X", 512, envA) {
		t.Fatal("different clusters must not share cache keys")
	}
	faulty := envC.WithFaults(sparksim.ScaledFaults(1, 3))
	if requestKey("X", 512, envC) == requestKey("X", 512, faulty) {
		t.Fatal("faulty and clean environments must not share cache keys")
	}
}
