package serve

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// TestSnapshotPersistRoundTrip drives the serve loop until it publishes and
// persists an adapted snapshot, then reloads the file with core.LoadTuner
// and checks the reloaded tuner produces bit-for-bit identical rankings on
// a fixed candidate set — the restart path must serve exactly what the
// crashed server was serving.
func TestSnapshotPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.json")
	s := newTestServer(t, Options{
		UpdateBatch:  2,
		SnapshotPath: path,
		Seed:         11,
	})

	for i := 0; i < 2; i++ {
		if _, err := s.Feedback(FeedbackRequest{App: "KMeans", SizeMB: 64, Cluster: "C"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for s.Snapshot().Gen == 0 {
		if time.Now().After(deadline) {
			t.Fatal("serve loop never published generation 1")
		}
		time.Sleep(10 * time.Millisecond)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("persisted snapshot missing: %v", err)
	}
	loaded, err := core.LoadTuner(f, 1)
	f.Close()
	if err != nil {
		t.Fatalf("loading persisted snapshot: %v", err)
	}

	// Fixed candidate set on a fixed seed: scores must agree bit-for-bit.
	live := s.Snapshot().Tuner
	app := workload.ByName("WordCount")
	env, _ := ClusterByName("C")
	data := app.Spec.MakeData(512)
	rng := rand.New(rand.NewSource(42))
	cands := []sparksim.Config{sparksim.DefaultConfig()}
	for i := 0; i < 7; i++ {
		cands = append(cands, core.ForceFeasible(sparksim.RandomConfig(rng), env))
	}

	recLive := live.RecommendFrom(app.Spec, data, env, cands)
	recLoaded := loaded.RecommendFrom(app.Spec, data, env, cands)
	if len(recLive.Ranked) != len(recLoaded.Ranked) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(recLive.Ranked), len(recLoaded.Ranked))
	}
	for i := range recLive.Ranked {
		a, b := recLive.Ranked[i], recLoaded.Ranked[i]
		if a.Config != b.Config {
			t.Fatalf("rank %d: configs diverge after reload", i)
		}
		if math.Float64bits(a.Predicted) != math.Float64bits(b.Predicted) {
			t.Fatalf("rank %d: score %v != %v (not bit-for-bit)", i, a.Predicted, b.Predicted)
		}
	}
	if recLive.Config != recLoaded.Config {
		t.Fatal("winning configuration diverges after reload")
	}
}
