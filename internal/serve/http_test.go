package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"lite/internal/metrics"
)

// bareServer builds an unstarted Server with just enough state for the
// HTTP plumbing under test — no tuner, no background loops.
func bareServer() *Server {
	return &Server{reg: metrics.NewRegistry()}
}

// flushTracker is the "real" ResponseWriter underneath the instrumented
// recorder; it records whether Flush reached it.
type flushTracker struct {
	http.ResponseWriter
	flushed bool
}

func (f *flushTracker) Flush() { f.flushed = true }

// TestStatusRecorderUnwrapFlush: statusRecorder wraps the ResponseWriter for
// every instrumented endpoint but does not itself implement http.Flusher —
// http.ResponseController must reach the underlying writer through Unwrap,
// or streaming handlers silently stop flushing.
func TestStatusRecorderUnwrapFlush(t *testing.T) {
	s := bareServer()
	under := &flushTracker{ResponseWriter: httptest.NewRecorder()}
	h := s.instrument("flushy", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("Flush through the instrumented writer: %v", err)
		}
		w.WriteHeader(http.StatusOK)
	}))
	h.ServeHTTP(under, httptest.NewRequest(http.MethodGet, "/x", nil))
	if !under.flushed {
		t.Fatal("Flush did not reach the underlying ResponseWriter (Unwrap broken)")
	}
	// The recorder still captured the status for metrics.
	if c := s.reg.Counter(`lite_http_requests_total{endpoint="flushy",code="200"}`).Value(); c != 1 {
		t.Fatalf("status counter = %d, want 1", c)
	}
}

// TestWriteJSONEncodeErrorCounted: an encode failure after the status is
// committed cannot reach the client, so it must land in
// lite_http_encode_errors_total instead of vanishing.
func TestWriteJSONEncodeErrorCounted(t *testing.T) {
	s := bareServer()
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, math.NaN()) // json: unsupported value
	if c := s.reg.Counter("lite_http_encode_errors_total").Value(); c != 1 {
		t.Fatalf("encode error counter = %d, want 1", c)
	}
	s.writeJSON(rec, http.StatusOK, math.Inf(1))
	if c := s.reg.Counter("lite_http_encode_errors_total").Value(); c != 2 {
		t.Fatalf("encode error counter = %d, want 2 after second failure", c)
	}
	// A well-formed value does not move the counter.
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]int{"ok": 1})
	if c := s.reg.Counter("lite_http_encode_errors_total").Value(); c != 2 {
		t.Fatalf("encode error counter = %d after a successful encode, want 2", c)
	}
}
