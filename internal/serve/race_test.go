package serve

import (
	"sync"
	"testing"
	"time"

	"lite/internal/sparksim"
)

// TestConcurrentServingOverlapsHotSwap is the acceptance test for the
// serving subsystem: 16 goroutines of /recommend traffic overlap
// background retrains and hot-swaps driven by concurrent /feedback, and
// every response must come from one consistent snapshot — no torn reads,
// no panics, feasible configurations, monotonically reasonable
// generations. Run with -race.
func TestConcurrentServingOverlapsHotSwap(t *testing.T) {
	s := newTestServer(t, Options{
		// Cache off so every request exercises the model under swap; tiny
		// update batch so retrains actually happen during the traffic; a
		// small queue bounds the shutdown drain under the race detector.
		DisableCache:  true,
		UpdateBatch:   2,
		BatchWindow:   time.Millisecond,
		FeedbackQueue: 8,
	})
	envC, _ := ClusterByName("C")

	var wg, pumpWG sync.WaitGroup
	stop := make(chan struct{})

	// Feedback pump: keeps triggering retrain + hot-swap in the background.
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, err := s.Feedback(FeedbackRequest{App: "KMeans", SizeMB: 64, Cluster: "C"})
			if err != nil && err != ErrQueueFull {
				t.Errorf("feedback: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Readers hammer /recommend until at least one hot-swap has landed, so
	// recommendation traffic provably overlaps retrain + swap.
	stopReaders := make(chan struct{})
	var mu sync.Mutex
	gens := map[uint64]int{}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []float64{64, 512, 4096}
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				resp, err := s.Recommend(RecommendRequest{
					App:     "WordCount",
					SizeMB:  sizes[(g+i)%len(sizes)],
					Cluster: "C",
				})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if resp.Tier == "" {
					t.Errorf("goroutine %d: empty tier (torn response?)", g)
				}
				cfg, err := ConfigFromMap(resp.Config)
				if err != nil {
					t.Errorf("goroutine %d: bad config in response: %v", g, err)
				} else if !sparksim.Feasible(cfg, envC) {
					t.Errorf("goroutine %d: infeasible config served", g)
				}
				mu.Lock()
				gens[resp.Generation]++
				mu.Unlock()
			}
		}(g)
	}

	// Wait for at least two generations to publish while traffic flows.
	deadline := time.Now().Add(120 * time.Second)
	for s.Snapshot().Gen < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no hot-swap happened while traffic was flowing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stopReaders)
	wg.Wait()
	close(stop)
	pumpWG.Wait()
	if len(gens) < 2 {
		t.Logf("note: all responses saw one generation (gens=%v); swap raced past traffic", gens)
	}
	t.Logf("served across generations %v, final gen %d, feedbacks folded %d",
		gens, s.Snapshot().Gen, s.Snapshot().Feedbacks)
}

// TestGracefulShutdownDrainsFeedback verifies accepted feedback is folded
// into a final update during shutdown instead of being dropped.
func TestGracefulShutdownDrainsFeedback(t *testing.T) {
	tuner, source := testTuner(t)
	s := New(tuner.CloneForUpdate(3), Options{UpdateBatch: 100, SourceSample: source})
	s.Start()
	for i := 0; i < 3; i++ {
		if _, err := s.Feedback(FeedbackRequest{App: "WordCount", SizeMB: 64, Cluster: "C"}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { time.Sleep(60 * time.Second); close(done) }()
	if err := s.Shutdown(done); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Gen != 1 || snap.Feedbacks != 3 {
		t.Fatalf("after drain: gen=%d feedbacks=%d, want gen=1 feedbacks=3", snap.Gen, snap.Feedbacks)
	}
}
