package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// saveTestSnapshot writes the shared test tuner to a file the flip tests
// can load, standing in for the trainer's published snapshot.
func saveTestSnapshot(t *testing.T) string {
	t.Helper()
	tuner, _ := testTuner(t)
	path := filepath.Join(t.TempDir(), "snapshot.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFlipTo: a flip to a newer generation swaps the snapshot and renumbers
// it; flips to the current or an older generation are no-ops; a snapshot
// that cannot be opened or parsed never replaces the serving model.
func TestFlipTo(t *testing.T) {
	s := newTestServer(t, Options{EnableAdmin: true})
	snap := saveTestSnapshot(t)

	gen, err := s.FlipTo(snap, 5)
	if err != nil || gen != 5 {
		t.Fatalf("FlipTo(5) = (%d, %v), want (5, nil)", gen, err)
	}
	if got := s.Snapshot().Gen; got != 5 {
		t.Fatalf("live generation %d after flip, want 5", got)
	}

	// Stale flip: monotonic no-op, the live model is untouched.
	gen, err = s.FlipTo(snap, 3)
	if err != nil || gen != 5 {
		t.Fatalf("stale FlipTo(3) = (%d, %v), want (5, nil)", gen, err)
	}

	// Missing path: error, generation unchanged.
	if _, err := s.FlipTo(filepath.Join(t.TempDir(), "nope.json"), 9); err == nil {
		t.Fatal("FlipTo on a missing snapshot did not error")
	}
	if got := s.Snapshot().Gen; got != 5 {
		t.Fatalf("generation %d after failed flip, want 5", got)
	}

	// Corrupt snapshot: error, generation unchanged.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FlipTo(bad, 9); err == nil {
		t.Fatal("FlipTo on a corrupt snapshot did not error")
	}
	if got := s.Snapshot().Gen; got != 5 {
		t.Fatalf("generation %d after corrupt flip, want 5", got)
	}
	if got := s.Metrics().Counter("lite_flips_total").Value(); got != 1 {
		t.Fatalf("lite_flips_total = %d, want 1 (only the real flip counts)", got)
	}
}

// TestFlipEndpoint: /admin/flip exists only when enabled, validates its
// body, and flips the shard.
func TestFlipEndpoint(t *testing.T) {
	snap := saveTestSnapshot(t)

	// Without -admin the endpoint must not exist.
	plain := newTestServer(t, Options{})
	srv := httptest.NewServer(plain.Handler())
	res, err := http.Post(srv.URL+"/admin/flip", "application/json",
		strings.NewReader(`{"snapshot_path":"x","generation":1}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	srv.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("/admin/flip without EnableAdmin: status %d, want 404", res.StatusCode)
	}

	s := newTestServer(t, Options{EnableAdmin: true})
	srv = httptest.NewServer(s.Handler())
	defer srv.Close()

	res, err = http.Post(srv.URL+"/admin/flip", "application/json",
		strings.NewReader(`{"snapshot_path":"","generation":0}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty flip request: status %d, want 400", res.StatusCode)
	}

	body, _ := json.Marshal(FlipRequest{SnapshotPath: snap, Generation: 7})
	res, err = http.Post(srv.URL+"/admin/flip", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var fr FlipResponse
	if err := json.NewDecoder(res.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || fr.Generation != 7 {
		t.Fatalf("flip: status=%d generation=%d, want 200/7", res.StatusCode, fr.Generation)
	}
	if got := s.Snapshot().Gen; got != 7 {
		t.Fatalf("live generation %d, want 7", got)
	}
}

// TestFollowerMode: a follower acks feedback without queueing it (the
// router tees training signal to the trainer), never retrains locally, and
// exposes /admin/flip implicitly so the coordinator can move its model.
func TestFollowerMode(t *testing.T) {
	s := newTestServer(t, Options{Follower: true, UpdateBatch: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		res, err := http.Post(srv.URL+"/feedback", "application/json",
			strings.NewReader(`{"app":"WordCount","size_mb":512,"cluster":"C"}`))
		if err != nil {
			t.Fatal(err)
		}
		var fb FeedbackResponse
		if err := json.NewDecoder(res.Body).Decode(&fb); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("follower feedback status %d", res.StatusCode)
		}
		if fb.Queued {
			t.Fatal("follower queued feedback for local retraining")
		}
	}
	// UpdateBatch=1 would have retrained after the first feedback were the
	// update loop running; in follower mode the generation only moves via
	// flips.
	if got := s.Snapshot().Gen; got != 0 {
		t.Fatalf("follower retrained to generation %d, want 0", got)
	}

	snap := saveTestSnapshot(t)
	body, _ := json.Marshal(FlipRequest{SnapshotPath: snap, Generation: 2})
	res, err := http.Post(srv.URL+"/admin/flip", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("follower /admin/flip status %d, want 200 (Follower implies EnableAdmin)", res.StatusCode)
	}
	if got := s.Snapshot().Gen; got != 2 {
		t.Fatalf("follower generation %d after flip, want 2", got)
	}
}

// TestHealthzRichFields: /healthz carries the observability fields the
// fleet health checker keys on.
func TestHealthzRichFields(t *testing.T) {
	s := newTestServer(t, Options{Follower: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	res, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if h.Status != "ok" || !h.Follower {
		t.Fatalf("healthz = %+v, want ok follower", h)
	}
	if h.SnapshotAgeSeconds != -1 {
		t.Fatalf("snapshot age %g without persistence, want -1 (never persisted)", h.SnapshotAgeSeconds)
	}
	if h.WALUnfolded != 0 || h.Inflight != 0 {
		t.Fatalf("idle server reports wal_unfolded=%d inflight=%d, want 0/0", h.WALUnfolded, h.Inflight)
	}
}
