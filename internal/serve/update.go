package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"lite/internal/core"
	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/wal"
	"lite/internal/workload"
	"lite/pkg/api"
)

// FeedbackRequest reports the outcome of executing a recommendation in
// production (online Step 4). The server executes the run on the simulated
// cluster to recover stage-level instances — the stand-in for the paper's
// instrumented production system. The wire shape lives in pkg/api.
type FeedbackRequest = api.FeedbackRequest

// FeedbackResponse acknowledges queued feedback (see api.FeedbackResponse).
type FeedbackResponse = api.FeedbackResponse

// ErrQueueFull is reported when the feedback queue cannot absorb another
// item; the client should retry later.
var ErrQueueFull = fmt.Errorf("serve: feedback queue full")

// Feedback validates and enqueues one feedback run for the background
// adaptive-update loop. It never blocks on training.
func (s *Server) Feedback(req FeedbackRequest) (FeedbackResponse, error) {
	return s.FeedbackCtx(context.Background(), req)
}

// FeedbackCtx is Feedback under a caller-supplied context. Enqueueing is
// already non-blocking (a full queue fails fast with ErrQueueFull), so the
// context only gates entry: a request whose deadline already passed is not
// admitted.
//
// With a WAL configured (Options.WALDir), accepted feedback is appended to
// the log before it is enqueued, so a crash replays it on the next boot.
// Durability is at-least-once: feedback the WAL accepted but the queue
// rejected (ErrQueueFull) is not lost — it is replayed on restart.
func (s *Server) FeedbackCtx(ctx context.Context, req FeedbackRequest) (FeedbackResponse, error) {
	if err := ctx.Err(); err != nil {
		return FeedbackResponse{}, err
	}
	app, env, err := s.resolve(req.App, req.Cluster)
	if err != nil {
		return FeedbackResponse{}, err
	}
	if req.SizeMB <= 0 {
		req.SizeMB = app.Sizes.Test
	}
	cfg, err := ConfigFromMap(req.Config)
	if err != nil {
		return FeedbackResponse{}, err
	}
	cfg = core.ForceFeasible(cfg, env)
	item := feedbackItem{app: app, req: req, cfg: cfg, env: env}
	if s.wal != nil {
		// Append before enqueue: once the WAL fsyncs, this feedback cannot
		// be lost to a crash. An append failure degrades durability, never
		// availability — the item still flows through the in-memory loop.
		payload, merr := json.Marshal(req)
		if merr == nil {
			seq, werr := s.wal.Append(payload)
			if werr != nil {
				s.reg.Counter("lite_wal_append_errors_total").Inc()
				s.walErrOnce.Do(func() {
					fmt.Fprintf(os.Stderr, "serve: wal append: %v (counting further failures in lite_wal_append_errors_total)\n", werr)
				})
			} else {
				item.seq = seq
				s.reg.Counter("lite_wal_records_total").Inc()
			}
		}
	}
	if s.opts.Follower {
		// Followers never retrain locally: the feedback is durable in the
		// WAL when one is configured, and the fleet router tees every
		// feedback to the trainer shard, whose retrain reaches this shard
		// through the flip protocol (DESIGN.md §10). Acknowledged but not
		// queued — there is no local update loop to consume it.
		s.reg.Counter("lite_feedback_total").Inc()
		return FeedbackResponse{Queued: false, Generation: s.snap.Load().Gen, Seq: item.seq}, nil
	}
	select {
	case s.feedbackCh <- item:
		s.reg.Counter("lite_feedback_total").Inc()
		s.reg.Gauge("lite_feedback_queue_depth").Set(float64(len(s.feedbackCh)))
		return FeedbackResponse{Queued: true, Pending: len(s.feedbackCh), Generation: s.snap.Load().Gen, Seq: item.seq}, nil
	default:
		s.reg.Counter("lite_feedback_dropped_total").Inc()
		return FeedbackResponse{}, ErrQueueFull
	}
}

// pendingRun is one executed feedback awaiting its retrain batch: the
// instrumented run plus the raw request (for quarantine) and its WAL seq
// (for folding).
type pendingRun struct {
	run instrument.AppInstance
	req FeedbackRequest
	seq uint64
}

// superviseUpdateLoop keeps the adaptive-update loop alive: a panicking
// loop is restarted with exponential backoff instead of silently dying and
// letting the feedback queue fill while the model goes stale. Restarts are
// counted in lite_update_loop_restarts_total. The in-memory pending batch
// of a crashed loop is lost to this process but not to the system — its
// fsynced records are still unfolded in the WAL and replay on next boot.
func (s *Server) superviseUpdateLoop() {
	defer s.wg.Done()
	restarts := 0
	for {
		if clean := s.runUpdateLoop(); clean {
			return
		}
		restarts++
		s.reg.Counter("lite_update_loop_restarts_total").Inc()
		d := expBackoff(s.opts.RetrainBackoffMin, s.opts.RetrainBackoffMax, restarts)
		select {
		case <-s.stopCh:
			return
		case <-time.After(d):
		}
	}
}

// runUpdateLoop consumes the feedback queue, executes the reported runs to
// collect stage-level instances, and every UpdateBatch runs retrains a
// clone of the current model and (validation permitting) hot-swaps the
// published snapshot. The hot path never blocks: readers keep serving the
// old snapshot until the atomic store. Returns true on a clean stop, false
// on a recovered panic (the supervisor restarts it).
func (s *Server) runUpdateLoop() (clean bool) {
	clean = true
	defer func() {
		if r := recover(); r != nil {
			clean = false
			fmt.Fprintf(os.Stderr, "serve: update loop panic (restarting with backoff): %v\n", r)
		}
	}()

	var pending []pendingRun
	var backoffTimer *time.Timer
	defer func() {
		if backoffTimer != nil {
			backoffTimer.Stop()
		}
	}()

	// Replay WAL-recovered feedback first: it was accepted before the
	// crash and must reach the model before new traffic's feedback.
	for _, item := range s.takeRecovered() {
		select {
		case <-s.stopCh:
			return true
		default:
		}
		pending = s.absorb(pending, item)
		pending = s.maybeRetrain(pending, &backoffTimer)
	}

	for {
		var timerC <-chan time.Time
		if backoffTimer != nil {
			timerC = backoffTimer.C
		}
		select {
		case item := <-s.feedbackCh:
			pending = s.absorb(pending, item)
			s.reg.Gauge("lite_feedback_queue_depth").Set(float64(len(s.feedbackCh)))
			pending = s.maybeRetrain(pending, &backoffTimer)
		case <-timerC:
			backoffTimer = nil
			pending = s.maybeRetrain(pending, &backoffTimer)
		case <-s.stopCh:
			// Fold what arrived before shutdown into one final update so
			// accepted feedback is not silently discarded — but bound the
			// work so shutdown stays prompt: at most 2×UpdateBatch runs are
			// folded, the rest count as dropped in this process (their WAL
			// records stay unfolded and replay on the next boot).
			limit := 2 * s.opts.UpdateBatch
			dropped := 0
			for {
				select {
				case item := <-s.feedbackCh:
					if len(pending) >= limit {
						dropped++
						continue
					}
					pending = s.absorb(pending, item)
					continue
				default:
				}
				break
			}
			if dropped > 0 {
				s.reg.Counter("lite_feedback_dropped_total").Add(uint64(dropped))
			}
			if len(pending) > 0 {
				s.retrain(pending)
			}
			return true
		}
	}
}

// absorb executes one feedback run and appends it to the pending batch.
// Successful runs also grow the retrieval cold-start store, so live
// feedback sharpens unseen-app answers without waiting for a retrain.
func (s *Server) absorb(pending []pendingRun, item feedbackItem) []pendingRun {
	run := instrument.Run(item.app.Spec, item.app.Spec.MakeData(item.req.SizeMB), item.env, item.cfg)
	if s.retrieval != nil && !run.Result.Failed {
		s.retrieval.AddRun(run)
		s.reg.Counter("lite_retrieval_adds_total").Inc()
	}
	return append(pending, pendingRun{run: run, req: item.req, seq: item.seq})
}

// maybeRetrain retrains when the batch is full and no rejection backoff is
// in force; during backoff it arms a timer for the retry instead.
func (s *Server) maybeRetrain(pending []pendingRun, timer **time.Timer) []pendingRun {
	if len(pending) < s.opts.UpdateBatch {
		return pending
	}
	if wait := s.backoffUntil.Sub(s.opts.Now()); wait > 0 {
		if *timer == nil {
			*timer = time.NewTimer(wait)
		}
		return pending // keep accumulating; retry fires on the timer
	}
	s.retrain(pending)
	return nil
}

// retrain clones the published tuner, folds the feedback runs into the
// clone with Adaptive Model Update (adversarial fine-tuning, paper §IV-B),
// scores the clone on the held-out validation set, and either publishes it
// as the next generation or rejects it: on rejection the live generation
// keeps serving, the feedback batch is quarantined, and further retrain
// attempts back off exponentially. Readers are never blocked; the cache is
// flushed on publish so no stale recommendation outlives the swap.
func (s *Server) retrain(batch []pendingRun) {
	start := s.opts.Now()
	s.retrainAttempts++
	if n := s.opts.ChaosPanicEveryN; n > 0 && s.retrainAttempts%uint64(n) == 0 {
		panic(fmt.Sprintf("chaos: injected retrain panic (attempt %d)", s.retrainAttempts))
	}

	cur := s.snap.Load()
	clone := cur.Tuner.CloneForUpdate(s.opts.Seed + int64(cur.Gen) + 1)
	// Data-parallel fine-tuning: the update runs off the hot path on a
	// clone, so extra replicas cost memory, not serving latency.
	clone.AMU.Workers = s.opts.FitWorkers

	var target []*core.Encoded
	for i := range batch {
		target = append(target, clone.EncodeRun(batch[i].run)...)
	}
	rng := rand.New(rand.NewSource(s.opts.Seed + 7919*int64(cur.Gen+1)))
	core.AdaptiveModelUpdate(clone.Model, s.opts.SourceSample, target, clone.AMU, rng)

	if n := s.opts.ChaosCorruptEveryN; n > 0 && s.retrainAttempts%uint64(n) == 0 {
		chaosCorrupt(clone)
	}

	maxSeq := uint64(0)
	for _, p := range batch {
		if p.seq > maxSeq {
			maxSeq = p.seq
		}
	}

	// Validation gate: the candidate must not regress ranking quality on
	// the held-out set beyond the configured slack.
	if s.validator != nil {
		if s.liveValGen != cur.Gen || !s.liveValSet {
			s.liveVal = s.validator.score(cur.Tuner)
			s.liveValGen, s.liveValSet = cur.Gen, true
		}
		candScore := s.validator.score(clone)
		if reason := s.validator.judge(candScore, s.liveVal); reason != "" {
			s.rejectSwap(batch, cur.Gen, maxSeq, reason)
			return
		}
		s.liveVal, s.liveValGen = candScore, cur.Gen+1
		s.reg.Gauge("lite_validation_ndcg").Set(candScore.NDCG)
		s.reg.Gauge("lite_validation_regret").Set(candScore.Regret)
	}

	// Persist before publishing: a generation that readers can observe is
	// always durable on disk (restart serves exactly what crashed).
	// Persistence sees float64 weights only; the float32 plan below is a
	// serving-side compilation, never written to disk.
	persisted := s.persistSnapshot(clone)

	// Compile the float32 serving plan only after the candidate passed the
	// (float64) validation gate: a rejected clone is never compiled, and a
	// published one always serves the exact weights that were validated.
	if s.opts.Float32 {
		clone.EnableF32Serving()
	}

	// Publication is serialized with FlipTo; the generation is recomputed
	// under the lock so a fleet flip landing mid-retrain is never regressed
	// by a snapshot numbered off a stale read.
	s.publishMu.Lock()
	latest := s.snap.Load()
	next := &Snapshot{
		Tuner:     clone,
		Gen:       latest.Gen + 1,
		CreatedAt: s.opts.Now(),
		Feedbacks: latest.Feedbacks + len(batch),
	}
	s.snap.Store(next)
	s.publishMu.Unlock()
	s.cache.flush(next.Gen)
	s.markFolded(maxSeq, persisted)
	s.retrainFailures = 0
	s.backoffUntil = time.Time{}
	s.reg.Gauge("lite_retrain_backoff_seconds").Set(0)
	s.reg.Counter("lite_hotswap_accepted_total").Inc()
	s.reg.Counter("lite_feedback_folded_total").Add(uint64(len(batch)))
	s.reg.Counter("lite_model_updates_total").Inc()
	s.reg.Gauge("lite_snapshot_generation").Set(float64(next.Gen))
	s.reg.Histogram("lite_update_seconds", nil).Observe(s.opts.Now().Sub(start).Seconds())
}

// rejectSwap handles a candidate the validation gate refused: keep serving
// the live generation, quarantine the feedback batch to the sidecar file,
// advance the WAL cursor past it (quarantined feedback must not replay into
// the model on restart) and arm exponential retrain backoff.
func (s *Server) rejectSwap(batch []pendingRun, liveGen, maxSeq uint64, reason string) {
	s.quarantine(batch, liveGen, reason)
	s.markFolded(maxSeq, true)
	s.retrainFailures++
	backoff := expBackoff(s.opts.RetrainBackoffMin, s.opts.RetrainBackoffMax, s.retrainFailures)
	s.backoffUntil = s.opts.Now().Add(backoff)
	s.reg.Counter("lite_hotswap_rejected_total").Inc()
	s.reg.Counter("lite_feedback_quarantined_total").Add(uint64(len(batch)))
	s.reg.Gauge("lite_retrain_backoff_seconds").Set(backoff.Seconds())
	fmt.Fprintf(os.Stderr, "serve: hot-swap rejected (generation %d keeps serving, %d feedbacks quarantined, next retrain in %v): %s\n",
		liveGen, len(batch), backoff, reason)
}

// markFolded advances the WAL's folded cursor. Feedback only counts as
// folded once the model absorbing it is durable: if the snapshot persist
// failed, the records stay unfolded and replay on next boot (the published
// in-memory generation already contains them; replay rebuilds that state).
func (s *Server) markFolded(maxSeq uint64, persisted bool) {
	if s.wal == nil || maxSeq == 0 || !persisted {
		return
	}
	if err := s.wal.MarkFolded(maxSeq); err != nil {
		s.reg.Counter("lite_wal_fold_errors_total").Inc()
	}
}

// quarantineEntry is one line of the quarantine sidecar file (JSON lines):
// the rejected batch's raw feedback requests with enough context to triage
// and, if judged innocent, re-post.
type quarantineEntry struct {
	Time       string            `json:"time"`
	Generation uint64            `json:"generation"`
	Reason     string            `json:"reason"`
	Seqs       []uint64          `json:"seqs"`
	Records    []FeedbackRequest `json:"records"`
}

func (s *Server) quarantine(batch []pendingRun, liveGen uint64, reason string) {
	path := s.quarantinePath()
	if path == "" {
		return
	}
	e := quarantineEntry{
		Time:       s.opts.Now().UTC().Format(time.RFC3339Nano),
		Generation: liveGen,
		Reason:     reason,
	}
	for _, p := range batch {
		e.Seqs = append(e.Seqs, p.seq)
		e.Records = append(e.Records, p.req)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	f, err := snapshotFS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.reg.Counter("lite_quarantine_write_errors_total").Inc()
		return
	}
	_, werr := f.Write(append(line, '\n'))
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		s.reg.Counter("lite_quarantine_write_errors_total").Inc()
	}
}

func (s *Server) quarantinePath() string {
	switch {
	case s.opts.QuarantinePath != "":
		return s.opts.QuarantinePath
	case s.opts.WALDir != "":
		return filepath.Join(s.opts.WALDir, "quarantine.jsonl")
	case s.opts.SnapshotPath != "":
		return s.opts.SnapshotPath + ".quarantine.jsonl"
	}
	return ""
}

// persistSnapshot writes the tuner to Options.SnapshotPath with bounded
// retries and exponential backoff, so one transient disk hiccup does not
// strand the serving state in memory. Returns whether a write succeeded
// (vacuously true when persistence is not configured — there is no durable
// state to fall behind).
func (s *Server) persistSnapshot(t *core.Tuner) bool {
	if s.opts.SnapshotPath == "" {
		return true
	}
	var err error
	for attempt := 0; attempt <= s.opts.PersistRetries; attempt++ {
		if attempt > 0 {
			s.reg.Counter("lite_snapshot_persist_retries_total").Inc()
			time.Sleep(expBackoff(s.opts.PersistRetryBackoff, s.opts.RetrainBackoffMax, attempt))
		}
		if err = saveTunerAtomic(t, s.opts.SnapshotPath); err == nil {
			s.lastPersistNanos.Store(s.opts.Now().UnixNano())
			return true
		}
		s.reg.Counter("lite_snapshot_persist_errors_total").Inc()
	}
	fmt.Fprintf(os.Stderr, "serve: persisting snapshot (gave up after %d retries; feedback stays in the WAL for replay): %v\n",
		s.opts.PersistRetries, err)
	return false
}

// takeRecovered hands the WAL-replayed feedback to the loop exactly once:
// a panic-restarted loop must not double-apply records an earlier retrain
// already folded.
func (s *Server) takeRecovered() []feedbackItem {
	items := s.recovered
	s.recovered = nil
	return items
}

// expBackoff is min·2^(n−1) clamped to max (n ≥ 1).
func expBackoff(min, max time.Duration, n int) time.Duration {
	if min <= 0 {
		min = time.Second
	}
	if max < min {
		max = min
	}
	d := min
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// chaosCorrupt poisons a candidate's weights with NaNs — the failpoint the
// chaos harness uses to prove the validation gate rejects a model that a
// bad feedback batch (or a training bug) has broken.
func chaosCorrupt(t *core.Tuner) {
	for _, p := range t.Model.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] = math.NaN()
		}
	}
}

// snapshotFS seams the snapshot/quarantine file operations so persistence
// fault tests can inject failing and short writes; production uses the real
// filesystem.
var snapshotFS wal.FS = wal.OSFS{}

// saveTunerAtomic persists the tuner crash-safely: write to a temp file,
// fsync it, rename over the target, fsync the parent directory. A crash at
// any point leaves either the old snapshot or the new one — never a torn
// or empty file — and the rename is not considered durable until the
// directory entry itself is synced.
func saveTunerAtomic(t *core.Tuner, path string) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := snapshotFS.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		snapshotFS.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		snapshotFS.Remove(tmp)
		return fmt.Errorf("serve: fsync snapshot temp: %w", err)
	}
	if err := f.Close(); err != nil {
		snapshotFS.Remove(tmp)
		return err
	}
	if err := snapshotFS.Rename(tmp, path); err != nil {
		snapshotFS.Remove(tmp)
		return err
	}
	if err := snapshotFS.SyncDir(dir); err != nil {
		return fmt.Errorf("serve: fsync snapshot dir: %w", err)
	}
	return nil
}

// SimulateOnce executes one run with the given configuration on the named
// cluster — the "production execution" clients of the demo server use to
// generate honest feedback (cmd/liteload, examples).
func SimulateOnce(appName string, sizeMB float64, cluster string, cfg sparksim.Config) (sparksim.Result, error) {
	app := workload.ByName(appName)
	if app == nil {
		return sparksim.Result{}, badRequest("unknown application %q", appName)
	}
	env, ok := ClusterByName(cluster)
	if !ok {
		return sparksim.Result{}, badRequest("unknown cluster %q", cluster)
	}
	if sizeMB <= 0 {
		sizeMB = app.Sizes.Test
	}
	return sparksim.Simulate(app.Spec, app.Spec.MakeData(sizeMB), env, cfg), nil
}
