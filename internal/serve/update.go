package serve

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"lite/internal/core"
	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// FeedbackRequest reports the outcome of executing a recommendation in
// production (online Step 4). The configuration is given by knob name;
// unspecified knobs default. The server executes the run on the simulated
// cluster to recover stage-level instances — the stand-in for the paper's
// instrumented production system.
type FeedbackRequest struct {
	App     string             `json:"app"`
	SizeMB  float64            `json:"size_mb"`
	Cluster string             `json:"cluster"`
	Config  map[string]float64 `json:"config,omitempty"`
}

// FeedbackResponse acknowledges queued feedback.
type FeedbackResponse struct {
	Queued bool `json:"queued"`
	// Pending is the queue depth after this item.
	Pending int `json:"pending"`
	// Generation is the model generation that will absorb this feedback
	// (at the earliest).
	Generation uint64 `json:"generation"`
}

// ErrQueueFull is reported when the feedback queue cannot absorb another
// item; the client should retry later.
var ErrQueueFull = fmt.Errorf("serve: feedback queue full")

// Feedback validates and enqueues one feedback run for the background
// adaptive-update loop. It never blocks on training.
func (s *Server) Feedback(req FeedbackRequest) (FeedbackResponse, error) {
	return s.FeedbackCtx(context.Background(), req)
}

// FeedbackCtx is Feedback under a caller-supplied context. Enqueueing is
// already non-blocking (a full queue fails fast with ErrQueueFull), so the
// context only gates entry: a request whose deadline already passed is not
// admitted.
func (s *Server) FeedbackCtx(ctx context.Context, req FeedbackRequest) (FeedbackResponse, error) {
	if err := ctx.Err(); err != nil {
		return FeedbackResponse{}, err
	}
	app, env, err := s.resolve(req.App, req.Cluster)
	if err != nil {
		return FeedbackResponse{}, err
	}
	if req.SizeMB <= 0 {
		req.SizeMB = app.Sizes.Test
	}
	cfg, err := ConfigFromMap(req.Config)
	if err != nil {
		return FeedbackResponse{}, err
	}
	cfg = core.ForceFeasible(cfg, env)
	item := feedbackItem{app: app, req: req, cfg: cfg, env: env}
	select {
	case s.feedbackCh <- item:
		s.reg.Counter("lite_feedback_total").Inc()
		s.reg.Gauge("lite_feedback_queue_depth").Set(float64(len(s.feedbackCh)))
		return FeedbackResponse{Queued: true, Pending: len(s.feedbackCh), Generation: s.snap.Load().Gen}, nil
	default:
		s.reg.Counter("lite_feedback_dropped_total").Inc()
		return FeedbackResponse{}, ErrQueueFull
	}
}

// updateLoop consumes the feedback queue, executes the reported runs to
// collect stage-level instances, and every UpdateBatch runs retrains a
// clone of the current model and hot-swaps the published snapshot. The
// hot path never blocks: readers keep serving the old snapshot until the
// atomic store.
func (s *Server) updateLoop() {
	defer s.wg.Done()
	var pending []instrument.AppInstance
	for {
		select {
		case item := <-s.feedbackCh:
			run := instrument.Run(item.app.Spec, item.app.Spec.MakeData(item.req.SizeMB), item.env, item.cfg)
			pending = append(pending, run)
			s.reg.Gauge("lite_feedback_queue_depth").Set(float64(len(s.feedbackCh)))
			if len(pending) >= s.opts.UpdateBatch {
				s.retrain(pending)
				pending = nil
			}
		case <-s.stopCh:
			// Fold what arrived before shutdown into one final update so
			// accepted feedback is not silently discarded — but bound the
			// work so shutdown stays prompt: at most 2×UpdateBatch runs are
			// folded, the rest count as dropped.
			limit := 2 * s.opts.UpdateBatch
			dropped := 0
			for {
				select {
				case item := <-s.feedbackCh:
					if len(pending) >= limit {
						dropped++
						continue
					}
					run := instrument.Run(item.app.Spec, item.app.Spec.MakeData(item.req.SizeMB), item.env, item.cfg)
					pending = append(pending, run)
					continue
				default:
				}
				break
			}
			if dropped > 0 {
				s.reg.Counter("lite_feedback_dropped_total").Add(uint64(dropped))
			}
			if len(pending) > 0 {
				s.retrain(pending)
			}
			return
		}
	}
}

// retrain clones the published tuner, folds the feedback runs into the
// clone with Adaptive Model Update (adversarial fine-tuning, paper §IV-B),
// and publishes the clone as the next generation. Readers are never
// blocked; the cache is flushed so no stale recommendation outlives the
// swap.
func (s *Server) retrain(runs []instrument.AppInstance) {
	start := s.opts.Now()
	cur := s.snap.Load()
	clone := cur.Tuner.CloneForUpdate(s.opts.Seed + int64(cur.Gen) + 1)
	// Data-parallel fine-tuning: the update runs off the hot path on a
	// clone, so extra replicas cost memory, not serving latency.
	clone.AMU.Workers = s.opts.FitWorkers

	var target []*core.Encoded
	for i := range runs {
		target = append(target, clone.EncodeRun(runs[i])...)
	}
	rng := rand.New(rand.NewSource(s.opts.Seed + 7919*int64(cur.Gen+1)))
	core.AdaptiveModelUpdate(clone.Model, s.opts.SourceSample, target, clone.AMU, rng)

	// Persist before publishing: a generation that readers can observe is
	// always durable on disk (restart serves exactly what crashed).
	if s.opts.SnapshotPath != "" {
		if err := saveTunerAtomic(clone, s.opts.SnapshotPath); err != nil {
			s.reg.Counter("lite_snapshot_persist_errors_total").Inc()
			fmt.Fprintf(os.Stderr, "serve: persisting snapshot: %v\n", err)
		}
	}

	next := &Snapshot{
		Tuner:     clone,
		Gen:       cur.Gen + 1,
		CreatedAt: s.opts.Now(),
		Feedbacks: cur.Feedbacks + len(runs),
	}
	s.snap.Store(next)
	s.cache.flush(next.Gen)
	s.reg.Counter("lite_model_updates_total").Inc()
	s.reg.Gauge("lite_snapshot_generation").Set(float64(next.Gen))
	s.reg.Histogram("lite_update_seconds", nil).Observe(s.opts.Now().Sub(start).Seconds())
}

// saveTunerAtomic persists the tuner via write-to-temp + rename so a
// crashed write never leaves a torn snapshot file behind.
func saveTunerAtomic(t *core.Tuner, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".lite-snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := t.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SimulateOnce executes one run with the given configuration on the named
// cluster — the "production execution" clients of the demo server use to
// generate honest feedback (cmd/liteload, examples).
func SimulateOnce(appName string, sizeMB float64, cluster string, cfg sparksim.Config) (sparksim.Result, error) {
	app := workload.ByName(appName)
	if app == nil {
		return sparksim.Result{}, badRequest("unknown application %q", appName)
	}
	env, ok := ClusterByName(cluster)
	if !ok {
		return sparksim.Result{}, badRequest("unknown cluster %q", cluster)
	}
	if sizeMB <= 0 {
		sizeMB = app.Sizes.Test
	}
	return sparksim.Simulate(app.Spec, app.Spec.MakeData(sizeMB), env, cfg), nil
}
