package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"lite/internal/core"
)

// TestPoolGaugesExposed: the server registers scoring-pool gauges that show
// up in /metrics exposition with live values.
func TestPoolGaugesExposed(t *testing.T) {
	t.Cleanup(func() { core.SetScoreWorkers(0) })
	s := newTestServer(t, Options{ScoreWorkers: 3})

	if got := core.ScoreWorkers(); got != 3 {
		t.Fatalf("Options.ScoreWorkers not applied: pool width %d", got)
	}
	if _, err := s.Recommend(RecommendRequest{App: "WordCount", SizeMB: 64, Cluster: "C"}); err != nil {
		t.Fatalf("recommend: %v", err)
	}

	var buf bytes.Buffer
	if err := s.Metrics().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, name := range []string{
		"lite_score_pool_workers 3",
		"lite_score_pool_busy ",
		"lite_score_pool_utilization ",
		"lite_score_pool_items_total ",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("exposition missing %q:\n%s", name, out)
		}
	}
	// At least one recommendation's candidates went through the pool.
	if strings.Contains(out, "lite_score_pool_items_total 0\n") {
		t.Fatal("pool items gauge never advanced")
	}
}

// TestServeParallelScoringRace overlaps pooled batch scoring with
// data-parallel adaptive updates and a hot-swap. Run with -race: the batcher
// fans keys across the same pool each recommendation fans candidates
// across, while retrains run FitWorkers=2 replicas concurrently.
func TestServeParallelScoringRace(t *testing.T) {
	t.Cleanup(func() { core.SetScoreWorkers(0) })
	s := newTestServer(t, Options{
		ScoreWorkers:  4,
		FitWorkers:    2,
		DisableCache:  true,
		UpdateBatch:   2,
		BatchWindow:   time.Millisecond,
		FeedbackQueue: 8,
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := s.Feedback(FeedbackRequest{App: "KMeans", SizeMB: 64, Cluster: "C"})
			if err != nil && err != ErrQueueFull {
				t.Errorf("feedback: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var rwg sync.WaitGroup
	sizes := []float64{64, 512, 4096}
	for g := 0; g < 8; g++ {
		rwg.Add(1)
		go func(g int) {
			defer rwg.Done()
			for i := 0; i < 6; i++ {
				resp, err := s.Recommend(RecommendRequest{
					App:     "WordCount",
					SizeMB:  sizes[(g+i)%len(sizes)],
					Cluster: "C",
				})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if resp.Tier == "" {
					t.Errorf("goroutine %d: empty tier", g)
				}
			}
		}(g)
	}
	rwg.Wait()

	deadline := time.Now().Add(120 * time.Second)
	for s.Snapshot().Gen < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no data-parallel retrain landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
