package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the server's HTTP API:
//
//	POST /recommend  {"app":"PageRank","size_mb":4096,"cluster":"C"}
//	POST /feedback   {"app":"PageRank","size_mb":4096,"cluster":"C","config":{...}}
//	GET  /healthz
//	GET  /metrics
//
// Every endpoint is instrumented with request counters (by status code)
// and latency histograms.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/recommend", s.instrument("recommend", http.HandlerFunc(s.handleRecommend)))
	mux.Handle("/feedback", s.instrument("feedback", http.HandlerFunc(s.handleFeedback)))
	mux.Handle("/healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(endpoint string, next http.Handler) http.Handler {
	hist := s.reg.Histogram(fmt.Sprintf("lite_http_request_seconds{endpoint=%q}", endpoint), nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		hist.Observe(time.Since(start).Seconds())
		s.reg.Counter(fmt.Sprintf("lite_http_requests_total{endpoint=%q,code=\"%d\"}", endpoint, rec.code)).Inc()
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeError maps errors to status codes: client errors (unknown
// app/cluster/knob) are 400, a full feedback queue is 429, everything else
// is 500.
func writeError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST with a JSON body"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Recommend(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Feedback(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type healthResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Feedbacks  int    `json:"feedbacks"`
	SnapshotAt string `json:"snapshot_at"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Generation: snap.Gen,
		Feedbacks:  snap.Feedbacks,
		SnapshotAt: snap.CreatedAt.Format(time.RFC3339Nano),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteText(w)
}
