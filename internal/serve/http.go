package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"
)

// Handler returns the server's HTTP API:
//
//	POST /recommend  {"app":"PageRank","size_mb":4096,"cluster":"C"}
//	POST /feedback   {"app":"PageRank","size_mb":4096,"cluster":"C","config":{...}}
//	GET  /healthz
//	GET  /metrics
//
// Every endpoint is instrumented with request counters (by status code)
// and latency histograms. /recommend and /feedback run under the caller's
// request context plus Options.RequestTimeout (when set); see writeError
// for how deadline, cancellation and overload map to status codes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/recommend", s.instrument("recommend", http.HandlerFunc(s.handleRecommend)))
	mux.Handle("/feedback", s.instrument("feedback", http.HandlerFunc(s.handleFeedback)))
	mux.Handle("/healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.opts.EnableAdmin {
		mux.Handle("/admin/flip", s.instrument("admin_flip", http.HandlerFunc(s.handleFlip)))
	}
	return mux
}

// StatusClientClosedRequest is the (nginx-convention) status recorded when
// the client cancelled its request before the answer was ready; no client
// sees it, but it keeps abandoned requests distinguishable in the
// per-status metrics.
const StatusClientClosedRequest = 499

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer so http.ResponseController (and
// anything else that probes for optional interfaces through rw unwrapping,
// e.g. Flush and SetWriteDeadline) keeps working on instrumented
// endpoints.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (s *Server) instrument(endpoint string, next http.Handler) http.Handler {
	hist := s.reg.Histogram(fmt.Sprintf("lite_http_request_seconds{endpoint=%q}", endpoint), nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		hist.Observe(time.Since(start).Seconds())
		s.reg.Counter(fmt.Sprintf("lite_http_requests_total{endpoint=%q,code=\"%d\"}", endpoint, rec.code)).Inc()
	})
}

// encodeErrLogOnce gates the stderr warning for response-encode failures:
// the counter tracks every occurrence, the log line fires once per process
// so a flapping client cannot flood the logs.
var encodeErrLogOnce sync.Once

// writeJSON writes v with the given status. The status is already
// committed when Encode runs, so an encode error cannot be reported to the
// client — but it must not vanish either: a truncated 200 body is counted
// in lite_http_encode_errors_total and logged once.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.reg.Counter("lite_http_encode_errors_total").Inc()
		encodeErrLogOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "serve: encoding response body: %v (counting further occurrences in lite_http_encode_errors_total)\n", err)
		})
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeError maps errors to status codes: client errors (unknown
// app/cluster/knob) are 400, a full feedback queue is 429, a shed request
// is 503 with a Retry-After hint, a blown deadline is 504, a client that
// went away is 499, everything else is 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrQueueFull):
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		s.writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled):
		// The client is gone; nobody reads this body, but the recorded
		// status keeps cancellations visible in the endpoint metrics.
		s.writeJSON(w, StatusClientClosedRequest, errorResponse{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST with a JSON body"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// requestContext derives the pipeline context for one HTTP request: the
// client's context (cancelled when the connection drops) bounded by the
// configured per-request timeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return r.Context(), func() {}
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := s.RecommendCtx(ctx, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := s.FeedbackCtx(ctx, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the JSON body of GET /healthz: always 200 with
// status "ok" while the process serves (existing probes key on the status
// code alone), plus the signals a fleet health checker and flip
// coordinator act on — which model generation is live, how stale the
// durable snapshot is, how loaded the pipeline is, and how much accepted
// feedback has not yet been folded into a durable model.
type HealthResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Feedbacks  int    `json:"feedbacks"`
	SnapshotAt string `json:"snapshot_at"`
	// SnapshotAgeSeconds is the age of the last successfully persisted
	// snapshot; −1 when persistence is off or nothing has persisted yet.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// Inflight is the number of requests currently inside the pipeline
	// (0 when admission control is disabled).
	Inflight int `json:"inflight"`
	// WALUnfolded is the depth of accepted-but-not-yet-folded feedback in
	// the write-ahead log (0 when the WAL is off).
	WALUnfolded uint64 `json:"wal_unfolded"`
	// Follower reports fleet-follower mode: no local retraining, model
	// advances via /admin/flip.
	Follower bool `json:"follower"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	resp := HealthResponse{
		Status:             "ok",
		Generation:         snap.Gen,
		Feedbacks:          snap.Feedbacks,
		SnapshotAt:         snap.CreatedAt.Format(time.RFC3339Nano),
		SnapshotAgeSeconds: -1,
		Inflight:           len(s.inflight),
		Follower:           s.opts.Follower,
	}
	if last := s.lastPersistNanos.Load(); last != 0 {
		resp.SnapshotAgeSeconds = time.Duration(s.opts.Now().UnixNano() - last).Seconds()
	}
	if s.wal != nil {
		if st := s.wal.Stats(); st.LastSeq > st.Folded {
			resp.WALUnfolded = st.LastSeq - st.Folded
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// FlipRequest asks a shard to hot-swap to an already-published snapshot
// file (POST /admin/flip) as the given generation — the flip half of the
// fleet's publish-then-flip protocol.
type FlipRequest struct {
	SnapshotPath string `json:"snapshot_path"`
	Generation   uint64 `json:"generation"`
}

// FlipResponse reports the shard's live generation after the flip (which
// may exceed the requested one if a newer flip already landed).
type FlipResponse struct {
	Generation uint64 `json:"generation"`
}

func (s *Server) handleFlip(w http.ResponseWriter, r *http.Request) {
	var req FlipRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.SnapshotPath == "" || req.Generation == 0 {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "snapshot_path and generation are required"})
		return
	}
	gen, err := s.FlipTo(req.SnapshotPath, req.Generation)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, FlipResponse{Generation: gen})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteText(w)
}
