package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"lite/internal/session"
	"lite/pkg/api"
)

// Handler returns the server's HTTP API, version 1 (documented in API.md):
//
//	POST   /v1/recommend
//	POST   /v1/feedback
//	GET    /v1/healthz
//	POST   /v1/tuning/sessions
//	GET    /v1/tuning/sessions
//	GET    /v1/tuning/sessions/{id}
//	DELETE /v1/tuning/sessions/{id}
//	POST   /v1/tuning/sessions/{id}/proposal
//	POST   /v1/tuning/sessions/{id}/result
//	POST   /v1/admin/flip            (when Options.EnableAdmin)
//	GET    /metrics                  (unversioned: Prometheus scrape path)
//
// Every /v1 endpoint is instrumented with request counters (by status
// code) and latency histograms, and every failure — including 404s for
// unknown /v1 paths and 405s for wrong methods — returns the unified
// error envelope {"error": {"code", "message", "retry_after_ms?"}}.
//
// The original unversioned routes (/recommend, /feedback, /healthz,
// /admin/flip) remain as thin deprecation shims: same handlers, plus a
// `Deprecation` header, a successor-version Link, and a
// lite_http_legacy_requests_total counter. New tooling must keep that
// counter at zero.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/recommend", s.instrument("recommend", http.HandlerFunc(s.handleRecommend)))
	mux.Handle("/v1/feedback", s.instrument("feedback", http.HandlerFunc(s.handleFeedback)))
	mux.Handle("/v1/healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("/v1/tuning/sessions", s.instrument("sessions", http.HandlerFunc(s.handleSessions)))
	mux.Handle("/v1/tuning/sessions/{id}", s.instrument("session", http.HandlerFunc(s.handleSessionByID)))
	mux.Handle("/v1/tuning/sessions/{id}/proposal", s.instrument("session_proposal", http.HandlerFunc(s.handleSessionProposal)))
	mux.Handle("/v1/tuning/sessions/{id}/result", s.instrument("session_result", http.HandlerFunc(s.handleSessionResult)))
	if s.opts.EnableAdmin {
		mux.Handle("/v1/admin/flip", s.instrument("admin_flip", http.HandlerFunc(s.handleFlip)))
	}
	// Unknown /v1 paths answer with the envelope, not the mux's plain-text
	// 404 — /v1 clients should never have to parse two error shapes.
	mux.Handle("/v1/", s.instrument("v1_unknown", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.writeAPIError(w, http.StatusNotFound, api.CodeNotFound, "no such endpoint: "+r.URL.Path, 0)
	})))
	mux.HandleFunc("/metrics", s.handleMetrics)

	// Legacy deprecation shims.
	mux.Handle("/recommend", s.legacy("recommend", http.HandlerFunc(s.handleRecommend)))
	mux.Handle("/feedback", s.legacy("feedback", http.HandlerFunc(s.handleFeedback)))
	mux.Handle("/healthz", s.legacy("healthz", http.HandlerFunc(s.handleHealthz)))
	if s.opts.EnableAdmin {
		mux.Handle("/admin/flip", s.legacy("admin_flip", http.HandlerFunc(s.handleFlip)))
	}
	return mux
}

// legacy wraps a /v1 handler as an unversioned deprecation shim: identical
// behaviour (the handler is literally the same), plus the deprecation
// signals. The per-endpoint counter is the fleet-wide "who still calls the
// old paths" signal; smoke tooling asserts it stays 0 for new clients.
func (s *Server) legacy(endpoint string, next http.Handler) http.Handler {
	inst := s.instrument(endpoint, next)
	ctr := s.reg.Counter(fmt.Sprintf("lite_http_legacy_requests_total{endpoint=%q}", endpoint))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctr.Inc()
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s%s>; rel=\"successor-version\"", api.Version, r.URL.Path))
		inst.ServeHTTP(w, r)
	})
}

// StatusClientClosedRequest is the (nginx-convention) status recorded when
// the client cancelled its request before the answer was ready; no client
// sees it, but it keeps abandoned requests distinguishable in the
// per-status metrics.
const StatusClientClosedRequest = 499

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer so http.ResponseController (and
// anything else that probes for optional interfaces through rw unwrapping,
// e.g. Flush and SetWriteDeadline) keeps working on instrumented
// endpoints.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (s *Server) instrument(endpoint string, next http.Handler) http.Handler {
	hist := s.reg.Histogram(fmt.Sprintf("lite_http_request_seconds{endpoint=%q}", endpoint), nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		hist.Observe(time.Since(start).Seconds())
		s.reg.Counter(fmt.Sprintf("lite_http_requests_total{endpoint=%q,code=\"%d\"}", endpoint, rec.code)).Inc()
	})
}

// encodeErrLogOnce gates the stderr warning for response-encode failures:
// the counter tracks every occurrence, the log line fires once per process
// so a flapping client cannot flood the logs.
var encodeErrLogOnce sync.Once

// writeJSON writes v with the given status. The status is already
// committed when Encode runs, so an encode error cannot be reported to the
// client — but it must not vanish either: a truncated 200 body is counted
// in lite_http_encode_errors_total and logged once.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.reg.Counter("lite_http_encode_errors_total").Inc()
		encodeErrLogOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "serve: encoding response body: %v (counting further occurrences in lite_http_encode_errors_total)\n", err)
		})
	}
}

// writeAPIError writes the unified /v1 error envelope. A non-zero retryMS
// also sets the Retry-After header (whole seconds, rounded up), so plain
// HTTP clients and envelope-aware ones read the same hint.
func (s *Server) writeAPIError(w http.ResponseWriter, status int, code, message string, retryMS int64) {
	if retryMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((retryMS+999)/1000, 10))
	}
	s.writeJSON(w, status, api.ErrorResponse{Error: api.Error{Code: code, Message: message, RetryAfterMS: retryMS}})
}

// writeError maps pipeline errors to (status, api code): client errors
// (unknown app/cluster/knob, bad session arguments) are 400
// invalid_argument, session lookups 404 not_found, session-state conflicts
// 409 with a disambiguating code, a full feedback queue 429 queue_full, a
// shed request 503 overloaded with a retry hint, a blown deadline 504, a
// client that went away 499, everything else 500 internal.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr), session.IsInvalid(err):
		s.writeAPIError(w, http.StatusBadRequest, api.CodeInvalidArgument, err.Error(), 0)
	case errors.Is(err, session.ErrNotFound):
		s.writeAPIError(w, http.StatusNotFound, api.CodeNotFound, err.Error(), 0)
	case errors.Is(err, session.ErrClosed):
		s.writeAPIError(w, http.StatusConflict, api.CodeSessionClosed, err.Error(), 0)
	case errors.Is(err, session.ErrBudgetExhausted):
		s.writeAPIError(w, http.StatusConflict, api.CodeBudgetExhausted, err.Error(), 0)
	case errors.Is(err, session.ErrTrialAlreadyReported):
		s.writeAPIError(w, http.StatusConflict, api.CodeTrialAlreadyReported, err.Error(), 0)
	case errors.Is(err, session.ErrUnknownTrial):
		s.writeAPIError(w, http.StatusBadRequest, api.CodeUnknownTrial, err.Error(), 0)
	case errors.Is(err, ErrQueueFull):
		s.writeAPIError(w, http.StatusTooManyRequests, api.CodeQueueFull, err.Error(), 1000)
	case errors.Is(err, ErrOverloaded):
		s.writeAPIError(w, http.StatusServiceUnavailable, api.CodeOverloaded, err.Error(), 1000)
	case errors.Is(err, context.DeadlineExceeded):
		s.writeAPIError(w, http.StatusGatewayTimeout, api.CodeDeadlineExceeded, err.Error(), 0)
	case errors.Is(err, context.Canceled):
		// The client is gone; nobody reads this body, but the recorded
		// status keeps cancellations visible in the endpoint metrics.
		s.writeAPIError(w, StatusClientClosedRequest, api.CodeClientClosedRequest, err.Error(), 0)
	default:
		s.writeAPIError(w, http.StatusInternalServerError, api.CodeInternal, err.Error(), 0)
	}
}

// requireMethod enforces the route's method with an envelope 405 (the
// ServeMux's built-in 405 writes plain text, which /v1 clients must never
// see).
func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	allow := ""
	for i, m := range methods {
		if i > 0 {
			allow += ", "
		}
		allow += m
	}
	w.Header().Set("Allow", allow)
	s.writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
		fmt.Sprintf("method %s not allowed (use %s)", r.Method, allow), 0)
	return false
}

// decodeBody enforces POST and decodes a bounded, strict JSON body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if !s.requireMethod(w, r, http.MethodPost) {
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeAPIError(w, http.StatusBadRequest, api.CodeInvalidArgument, "bad request body: "+err.Error(), 0)
		return false
	}
	return true
}

// requestContext derives the pipeline context for one HTTP request: the
// client's context (cancelled when the connection drops) bounded by the
// configured per-request timeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return r.Context(), func() {}
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := s.RecommendCtx(ctx, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := s.FeedbackCtx(ctx, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the JSON body of GET /v1/healthz (see
// api.HealthResponse; aliased so existing callers keep their name).
type HealthResponse = api.HealthResponse

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	snap := s.snap.Load()
	resp := HealthResponse{
		Status:             "ok",
		Generation:         snap.Gen,
		Feedbacks:          snap.Feedbacks,
		SnapshotAt:         snap.CreatedAt.Format(time.RFC3339Nano),
		SnapshotAgeSeconds: -1,
		Inflight:           len(s.inflight),
		Follower:           s.opts.Follower,
	}
	if last := s.lastPersistNanos.Load(); last != 0 {
		resp.SnapshotAgeSeconds = time.Duration(s.opts.Now().UnixNano() - last).Seconds()
	}
	if s.wal != nil {
		if st := s.wal.Stats(); st.LastSeq > st.Folded {
			resp.WALUnfolded = st.LastSeq - st.Folded
		}
	}
	if st := s.sessionStore(); st != nil {
		resp.Sessions = st.Active()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// FlipRequest / FlipResponse are the /v1/admin/flip wire types (see
// pkg/api).
type (
	FlipRequest  = api.FlipRequest
	FlipResponse = api.FlipResponse
)

func (s *Server) handleFlip(w http.ResponseWriter, r *http.Request) {
	var req FlipRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.SnapshotPath == "" || req.Generation == 0 {
		s.writeAPIError(w, http.StatusBadRequest, api.CodeInvalidArgument, "snapshot_path and generation are required", 0)
		return
	}
	gen, err := s.FlipTo(req.SnapshotPath, req.Generation)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, FlipResponse{Generation: gen})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteText(w)
}
