package serve

import (
	"context"
	"sync"
	"time"

	"lite/internal/core"
	"lite/internal/metrics"
)

// batcher implements micro-batched inference: requests arriving within a
// short window (or until the batch is full) are collected, grouped by
// request key, and each unique key is scored exactly once — one NECS
// candidate-scoring pass serves every concurrent request for that key.
// Batches are processed on their own goroutine so the collector keeps
// accepting requests while a previous batch is still scoring.
type batcher struct {
	max    int
	window time.Duration

	reqCh    chan *batchReq
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	sizes  *metrics.Histogram
	keys   *metrics.Histogram
	total  *metrics.Counter
	shared *metrics.Counter
}

type batchReq struct {
	ctx     context.Context
	key     string
	compute func(context.Context) (RecommendResponse, error)
	done    chan batchResult
}

type batchResult struct {
	resp      RecommendResponse
	err       error
	batchSize int
	coalesced bool
}

func newBatcher(max int, window time.Duration, reg *metrics.Registry) *batcher {
	return &batcher{
		max:    max,
		window: window,
		reqCh:  make(chan *batchReq),
		stopCh: make(chan struct{}),
		sizes:  reg.Histogram("lite_batch_size", []float64{1, 2, 4, 8, 16, 32, 64}),
		keys:   reg.Histogram("lite_batch_unique_keys", []float64{1, 2, 4, 8, 16, 32, 64}),
		total:  reg.Counter("lite_batches_total"),
		shared: reg.Counter("lite_batched_coalesced_total"),
	}
}

func (b *batcher) start() {
	b.wg.Add(1)
	go b.loop()
}

// stop shuts the collector down; submits after stop fall back to direct
// computation so nothing ever hangs on a stopped batcher.
func (b *batcher) stop() {
	b.stopOnce.Do(func() { close(b.stopCh) })
	b.wg.Wait()
}

// submit enqueues a request and blocks until its batch is processed. If
// the batcher is stopped (or was never started), the request computes
// directly.
//
// Deadline/cancellation contract: a request whose remaining budget cannot
// survive even the collection window is rejected up front with
// context.DeadlineExceeded instead of queueing doomed work; a request
// cancelled while enqueueing or while waiting for its batch detaches with
// ctx.Err() (the batch still computes for the requests that stayed —
// req.done is buffered, so the abandoned result is simply dropped).
func (b *batcher) submit(ctx context.Context, key string, compute func(context.Context) (RecommendResponse, error)) (RecommendResponse, error) {
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= b.window {
		return RecommendResponse{}, context.DeadlineExceeded
	}
	req := &batchReq{ctx: ctx, key: key, compute: compute, done: make(chan batchResult, 1)}
	select {
	case b.reqCh <- req:
	case <-b.stopCh:
		return compute(ctx)
	case <-ctx.Done():
		return RecommendResponse{}, ctx.Err()
	}
	select {
	case res := <-req.done:
		res.resp.BatchSize = res.batchSize
		res.resp.Coalesced = res.resp.Coalesced || res.coalesced
		return res.resp, res.err
	case <-ctx.Done():
		return RecommendResponse{}, ctx.Err()
	}
}

// loop collects requests into batches bounded by size and latency.
func (b *batcher) loop() {
	defer b.wg.Done()
	var timer *time.Timer
	var timerCh <-chan time.Time
	var pending []*batchReq

	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		if timer != nil {
			timer.Stop()
			timer, timerCh = nil, nil
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.process(batch)
		}()
	}

	for {
		select {
		case req := <-b.reqCh:
			pending = append(pending, req)
			if len(pending) >= b.max {
				flush()
				continue
			}
			if timer == nil {
				timer = time.NewTimer(b.window)
				timerCh = timer.C
			}
		case <-timerCh:
			timer, timerCh = nil, nil
			flush()
		case <-b.stopCh:
			// Drain: everything already collected is processed; new
			// submits short-circuit to direct computation.
			flush()
			return
		}
	}
}

// groupContext derives the context a key group's single compute runs
// under: it is cancelled only when *every* request sharing the key has
// been cancelled — one impatient caller must not kill the answer for the
// rest — and a member that cannot be cancelled (Background) pins the
// compute alive. The returned release func must be called once the
// compute finishes; it stops the watcher goroutine and frees the context.
func groupContext(reqs []*batchReq) (context.Context, func()) {
	for _, r := range reqs {
		if r.ctx.Done() == nil {
			return context.Background(), func() {}
		}
	}
	if len(reqs) == 1 {
		return reqs[0].ctx, func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	stop := make(chan struct{})
	go func() {
		for _, r := range reqs {
			select {
			case <-r.ctx.Done():
			case <-stop:
				return
			}
		}
		cancel() // every sharer gave up: stop the scoring pass
	}()
	return ctx, func() { close(stop); cancel() }
}

// process scores one batch: unique keys are computed once, results fan out
// to every request that shares the key.
func (b *batcher) process(batch []*batchReq) {
	b.total.Inc()
	b.sizes.Observe(float64(len(batch)))

	byKey := map[string][]*batchReq{}
	order := make([]string, 0, len(batch))
	for _, r := range batch {
		if _, ok := byKey[r.key]; !ok {
			order = append(order, r.key)
		}
		byKey[r.key] = append(byKey[r.key], r)
	}
	b.keys.Observe(float64(len(order)))

	// Score distinct keys concurrently on the shared scoring pool. Each
	// compute() itself fans its candidates out on the same pool; ParallelDo
	// degrades to inline execution when no worker slot is free, so the
	// nesting cannot deadlock. Results land in key order, then fan out.
	type keyed struct {
		resp RecommendResponse
		err  error
	}
	results := make([]keyed, len(order))
	core.ParallelDo(len(order), func(i int) {
		group := byKey[order[i]]
		gctx, release := groupContext(group)
		resp, err := group[0].compute(gctx)
		release()
		results[i] = keyed{resp: resp, err: err}
	})

	for i, key := range order {
		for j, r := range byKey[key] {
			if j > 0 {
				b.shared.Inc()
			}
			r.done <- batchResult{resp: results[i].resp, err: results[i].err, batchSize: len(batch), coalesced: j > 0}
		}
	}
}
