package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lite/pkg/api"
)

// TestEndToEndShedAndCancel exercises the full admission-control story on a
// real server: with MaxInFlight=1 and an hour-long batch window, the first
// request parks inside the batcher holding the only pipeline slot, so
//
//   - a second HTTP request is shed with 503 + Retry-After while
//     lite_requests_shed_total increments, and
//   - cancelling the parked request's context makes it return
//     context.Canceled promptly (it would otherwise sit for the full hour),
//     releasing the slot.
func TestEndToEndShedAndCancel(t *testing.T) {
	s := newTestServer(t, Options{
		MaxInFlight:  1,
		BatchWindow:  time.Hour,
		BatchMax:     64,
		DisableCache: true,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Park request 1: it acquires the in-flight slot, enters the batcher and
	// waits out the collection window until cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parked := make(chan error, 1)
	go func() {
		_, err := s.RecommendCtx(ctx, RecommendRequest{App: "WordCount", SizeMB: 512, Cluster: "C"})
		parked <- err
	}()
	waitFor(t, func() bool { return len(s.inflight) == 1 })

	// Request 2 (different key) must be shed immediately: 503, Retry-After,
	// and the shed counter moves.
	body, _ := json.Marshal(RecommendRequest{App: "KMeans", SizeMB: 1024, Cluster: "C"})
	res, err := http.Post(srv.URL+"/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	var e api.ErrorResponse
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil || e.Error.Code != api.CodeOverloaded {
		t.Fatalf("shed response body: %+v err=%v", e, err)
	}
	if c := s.reg.Counter("lite_requests_shed_total").Value(); c != 1 {
		t.Fatalf("lite_requests_shed_total = %d, want 1", c)
	}
	// The in-process API sheds with the typed error.
	if _, err := s.RecommendCtx(context.Background(),
		RecommendRequest{App: "KMeans", SizeMB: 1024, Cluster: "C"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("in-process shed err = %v, want ErrOverloaded", err)
	}

	// Cancel the parked request: it must return promptly with
	// context.Canceled — not after the hour-long window — and free the slot.
	cancel()
	select {
	case err := <-parked:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parked request err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request still stuck in the pipeline")
	}
	if c := s.reg.Counter("lite_requests_cancelled_total").Value(); c != 1 {
		t.Fatalf("lite_requests_cancelled_total = %d, want 1", c)
	}
	waitFor(t, func() bool { return len(s.inflight) == 0 })
}

// TestEndToEndCancelWhileOthersComplete: one request is cancelled while
// queued for scoring and returns context.Canceled promptly; concurrent
// requests on other keys in the same batch complete normally. The batch
// flushes on size (window is an hour), so the sequencing is deterministic:
// the cancelled request detaches before the batch even forms.
func TestEndToEndCancelWhileOthersComplete(t *testing.T) {
	const others = 4
	s := newTestServer(t, Options{
		BatchWindow:  time.Hour,
		BatchMax:     others + 1, // flushes only once the late requests arrive
		DisableCache: true,
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := s.RecommendCtx(ctx, RecommendRequest{App: "WordCount", SizeMB: 256, Cluster: "C"})
		cancelled <- err
	}()
	time.Sleep(50 * time.Millisecond) // request is pending in the batcher
	cancel()
	select {
	case err := <-cancelled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request did not detach")
	}

	// The other keys arrive, fill the batch (the abandoned slot still counts
	// toward BatchMax) and score normally.
	sizes := []float64{512, 1024, 2048, 4096}
	var wg sync.WaitGroup
	resps := make([]RecommendResponse, others)
	errs := make([]error, others)
	for i := 0; i < others; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.RecommendCtx(context.Background(),
				RecommendRequest{App: "KMeans", SizeMB: sizes[i], Cluster: "C"})
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent requests on other keys did not complete")
	}
	for i := 0; i < others; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d err = %v", i, errs[i])
		}
		if resps[i].Tier == "" || resps[i].BatchSize != others+1 {
			t.Fatalf("request %d: tier=%q batch=%d, want a scored answer from the %d-slot batch",
				i, resps[i].Tier, resps[i].BatchSize, others+1)
		}
	}
}

// TestEndToEndRequestTimeout: with a server-imposed RequestTimeout already
// expired on arrival, the HTTP handler answers 504 and the deadline counter
// moves — the client's own context never fired.
func TestEndToEndRequestTimeout(t *testing.T) {
	s := newTestServer(t, Options{RequestTimeout: time.Nanosecond, DisableBatcher: true, DisableCache: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(RecommendRequest{App: "WordCount", SizeMB: 512, Cluster: "C"})
	res, err := http.Post(srv.URL+"/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", res.StatusCode)
	}
	if c := s.reg.Counter("lite_requests_deadline_exceeded_total").Value(); c != 1 {
		t.Fatalf("lite_requests_deadline_exceeded_total = %d, want 1", c)
	}
	if c := s.reg.Counter(`lite_http_requests_total{endpoint="recommend",code="504"}`).Value(); c != 1 {
		t.Fatalf("504 status counter = %d, want 1", c)
	}
}
