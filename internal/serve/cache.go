package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"lite/internal/core"
)

// degradedCacheTTL caps how long a non-NECS answer may be served from
// cache. A transient model failure demotes one compute down the
// degradation chain; pinning that demoted answer for the full CacheTTL
// would keep serving it long after the model recovered, so degraded tiers
// expire on their own fast clock.
const degradedCacheTTL = 2 * time.Second

// ttlCache is the recommendation cache: key → response with a TTL, plus
// singleflight deduplication so a stampede of concurrent misses on one key
// computes exactly once while the rest wait for the leader's result.
type ttlCache struct {
	ttl time.Duration
	now func() time.Time

	mu       sync.Mutex
	minGen   uint64 // entries from generations below this are never cached
	entries  map[string]cacheEntry
	inflight map[string]*flightCall
}

type cacheEntry struct {
	resp    RecommendResponse
	expires time.Time
}

type flightCall struct {
	done chan struct{}
	resp RecommendResponse
	err  error
}

func newTTLCache(ttl time.Duration, now func() time.Time) *ttlCache {
	return &ttlCache{
		ttl:      ttl,
		now:      now,
		entries:  map[string]cacheEntry{},
		inflight: map[string]*flightCall{},
	}
}

// isCtxErr reports whether err is a context cancellation or deadline error
// (possibly wrapped).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// getOrDo returns the cached response for key if fresh; otherwise the first
// caller runs fn and everyone else arriving before it finishes shares the
// result. hit reports a cache hit, shared reports that this caller waited
// on another caller's computation. Errors are not cached.
//
// Cancellation contract: a waiter whose ctx is cancelled detaches
// immediately with ctx.Err() — the leader keeps computing for the
// remaining waiters. Conversely, a waiter that receives a context error
// produced by the *leader's* cancellation (its own ctx still live) does
// not inherit the leader's fate: it loops and recomputes, becoming the new
// leader if nobody else already has.
func (c *ttlCache) getOrDo(ctx context.Context, key string, fn func() (RecommendResponse, error)) (resp RecommendResponse, hit, shared bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok && c.now().Before(e.expires) {
			c.mu.Unlock()
			return e.resp, true, false, nil
		}
		call, ok := c.inflight[key]
		if !ok {
			call = &flightCall{done: make(chan struct{})}
			c.inflight[key] = call
			c.mu.Unlock()

			call.resp, call.err = fn()
			c.mu.Lock()
			delete(c.inflight, key)
			// A compute that was in flight across a hot-swap carries the
			// previous snapshot's generation; flush already raised minGen, so
			// the stale result is handed to its waiters but never cached.
			if call.err == nil && call.resp.Generation >= c.minGen {
				ttl := c.ttl
				if call.resp.Tier != string(core.TierNECS) && ttl > degradedCacheTTL {
					ttl = degradedCacheTTL
				}
				c.entries[key] = cacheEntry{resp: call.resp, expires: c.now().Add(ttl)}
			}
			c.mu.Unlock()
			close(call.done)
			return call.resp, false, false, call.err
		}
		c.mu.Unlock()

		select {
		case <-call.done:
		case <-ctx.Done():
			// Detach without killing the leader: its result still serves
			// every waiter that stayed.
			return RecommendResponse{}, false, false, ctx.Err()
		}
		if isCtxErr(call.err) && ctx.Err() == nil {
			// The leader gave up, we did not: retry the lookup/compute.
			continue
		}
		return call.resp, false, true, call.err
	}
}

// flush drops every cached entry and bars entries from generations older
// than minGen from ever being inserted (called on model hot-swap with the
// new snapshot's generation: a compute that straddled the swap must not
// park a previous-generation recommendation in the cache for a full TTL).
func (c *ttlCache) flush(minGen uint64) {
	c.mu.Lock()
	if minGen > c.minGen {
		c.minGen = minGen
	}
	c.entries = map[string]cacheEntry{}
	c.mu.Unlock()
}

// len reports the current number of cached entries (expired included).
func (c *ttlCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
