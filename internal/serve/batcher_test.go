package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lite/internal/metrics"
)

func TestBatcherCoalescesSameKey(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBatcher(16, 20*time.Millisecond, reg)
	b.start()
	defer b.stop()

	var computes atomic.Int32
	const n = 8
	var wg sync.WaitGroup
	results := make([]RecommendResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := b.submit(context.Background(), "same", func(context.Context) (RecommendResponse, error) {
				computes.Add(1)
				return RecommendResponse{Tier: "necs"}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = resp
		}(i)
	}
	wg.Wait()

	// All 8 arrive well inside one 20ms window, so they coalesce into very
	// few batches; at least one batch must have scored the key once for
	// multiple requests.
	if got := computes.Load(); got >= n {
		t.Fatalf("computed %d times for %d same-key requests; expected coalescing", got, n)
	}
	maxBatch := 0
	for _, r := range results {
		if r.BatchSize > maxBatch {
			maxBatch = r.BatchSize
		}
	}
	if maxBatch < 2 {
		t.Fatalf("max batch size %d, want >= 2", maxBatch)
	}
	if reg.Histogram("lite_batch_size", nil).Count() == 0 {
		t.Fatal("batch size histogram empty")
	}
}

func TestBatcherDistinctKeysAllComputed(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBatcher(16, 10*time.Millisecond, reg)
	b.start()
	defer b.stop()

	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			_, err := b.submit(context.Background(), k, func(context.Context) (RecommendResponse, error) {
				mu.Lock()
				seen[k]++
				mu.Unlock()
				return RecommendResponse{}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(k)
	}
	wg.Wait()
	for _, k := range keys {
		if seen[k] != 1 {
			t.Fatalf("key %q computed %d times, want 1", k, seen[k])
		}
	}
}

func TestBatcherRespectsMax(t *testing.T) {
	reg := metrics.NewRegistry()
	// A long window forces the size cutoff to be what flushes the batch.
	b := newBatcher(4, time.Hour, reg)
	b.start()
	defer b.stop()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := b.submit(context.Background(), "k", func(context.Context) (RecommendResponse, error) {
				return RecommendResponse{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			if resp.BatchSize > 4 {
				t.Errorf("batch size %d exceeds max 4", resp.BatchSize)
			}
		}(i)
	}
	// If the size cutoff failed, the hour-long window would hang this test.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batch never flushed at max size")
	}
}

func TestBatcherStoppedFallsBackToDirect(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBatcher(4, time.Millisecond, reg)
	b.start()
	b.stop()
	resp, err := b.submit(context.Background(), "k", func(context.Context) (RecommendResponse, error) {
		return RecommendResponse{Tier: "necs"}, nil
	})
	if err != nil || resp.Tier != "necs" {
		t.Fatalf("stopped batcher submit = (%+v, %v)", resp, err)
	}
}
