package serve

import (
	"testing"
	"time"
)

// TestFloat32ServingAcrossHotSwap pins the serve-layer half of the
// train-f64/serve-f32 contract (DESIGN.md §12): with Options.Float32 the
// boot tuner serves through the packed float32 plan, and every retrained
// generation the update loop publishes is recompiled to float32 after
// passing the (float64) validation gate — the plan follows the model
// through hot swaps, never the other way around.
func TestFloat32ServingAcrossHotSwap(t *testing.T) {
	s := newTestServer(t, Options{
		UpdateBatch: 2,
		Float32:     true,
		Seed:        13,
	})

	if !s.Snapshot().Tuner.F32ServingEnabled() {
		t.Fatal("boot snapshot is not serving float32")
	}
	rec, err := s.Recommend(RecommendRequest{App: "WordCount", SizeMB: 512, Cluster: "C"})
	if err != nil {
		t.Fatalf("f32 recommend: %v", err)
	}
	if rec.Tier != "necs" {
		t.Fatalf("f32 recommend degraded to tier %q", rec.Tier)
	}

	for i := 0; i < 2; i++ {
		if _, err := s.Feedback(FeedbackRequest{App: "KMeans", SizeMB: 64, Cluster: "C"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for s.Snapshot().Gen == 0 {
		if time.Now().After(deadline) {
			t.Fatal("update loop never published generation 1")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if !s.Snapshot().Tuner.F32ServingEnabled() {
		t.Fatal("retrained snapshot lost float32 serving across the hot swap")
	}
	rec2, err := s.Recommend(RecommendRequest{App: "WordCount", SizeMB: 512, Cluster: "C"})
	if err != nil {
		t.Fatalf("post-swap f32 recommend: %v", err)
	}
	if rec2.Tier != "necs" {
		t.Fatalf("post-swap f32 recommend degraded to tier %q", rec2.Tier)
	}
}
