package serve

// Persistence fault tests: snapshot saves through an injected failing /
// short-writing filesystem (wal.FaultFS behind the snapshotFS seam). The
// invariants under test: a failed persist never leaves a torn or missing
// snapshot where a good one stood, publish proceeds in memory, and the WAL
// holds the batch unfolded until a persist finally lands.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lite/internal/core"
	"lite/internal/wal"
)

// swapSnapshotFS installs a FaultFS behind the snapshot/quarantine seam for
// the duration of one test. Tests in this package run sequentially, so the
// package-level swap is safe.
func swapSnapshotFS(t *testing.T) *wal.FaultFS {
	t.Helper()
	ffs := wal.NewFaultFS(nil)
	old := snapshotFS
	snapshotFS = ffs
	t.Cleanup(func() { snapshotFS = old })
	return ffs
}

func TestSaveTunerAtomicFsyncFailureLeavesNoTarget(t *testing.T) {
	tuner, _ := testTuner(t)
	ffs := swapSnapshotFS(t)
	path := filepath.Join(t.TempDir(), "model.json")

	ffs.FailSync(true)
	err := saveTunerAtomic(tuner, path)
	if err == nil || !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("save with failing fsync: err = %v, want injected fault", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatal("target file exists after failed persist; crash would load a non-durable snapshot")
	}
	if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatal("temp file leaked after failed persist")
	}

	ffs.Heal()
	if err := saveTunerAtomic(tuner, path); err != nil {
		t.Fatalf("save after heal: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := core.LoadTuner(f, 1); err != nil {
		t.Fatalf("persisted snapshot not loadable: %v", err)
	}
}

func TestSaveTunerAtomicShortWriteLeavesOldSnapshot(t *testing.T) {
	tuner, _ := testTuner(t)
	ffs := swapSnapshotFS(t)
	path := filepath.Join(t.TempDir(), "model.json")

	// Establish a good snapshot, then tear the next save's first write.
	if err := saveTunerAtomic(tuner, path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ffs.ShortWriteAt(1)
	if err := saveTunerAtomic(tuner, path); err == nil {
		t.Fatal("save with torn write reported success")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("old snapshot gone after failed save: %v", err)
	}
	if !bytes.Equal(good, after) {
		t.Fatal("failed save modified the existing snapshot")
	}
	if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatal("temp file leaked after torn write")
	}
}

// TestPersistFaultsRetryPublishAndHoldWALFold: while the snapshot disk is
// broken, retrains still publish in memory (availability) but their feedback
// stays unfolded in the WAL (durability); once the disk heals, the next
// persist lands and the log folds.
func TestPersistFaultsRetryPublishAndHoldWALFold(t *testing.T) {
	tuner, source := testTuner(t)
	ffs := swapSnapshotFS(t)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "model.json")

	ffs.FailSync(true)
	s := New(tuner.CloneForUpdate(1), Options{
		SourceSample: source,
		WALDir:       filepath.Join(dir, "wal"),
		SnapshotPath: snapPath,
		WALSyncEvery: 1, WALSyncInterval: -1,
		UpdateBatch:         2,
		PersistRetries:      1,
		PersistRetryBackoff: time.Millisecond,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	// The gen-0 persist at Start already failed: initial attempt + 1 retry.
	if got := s.Metrics().Counter("lite_snapshot_persist_errors_total").Value(); got != 2 {
		t.Fatalf("persist errors after Start = %d, want 2", got)
	}
	if got := s.Metrics().Counter("lite_snapshot_persist_retries_total").Value(); got != 1 {
		t.Fatalf("persist retries after Start = %d, want 1", got)
	}
	var buf bytes.Buffer
	if err := s.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lite_snapshot_age_seconds -1") {
		t.Fatal("snapshot age gauge should report -1 while nothing ever persisted")
	}

	feedbackN(t, s, 2)
	waitUntil(t, 60*time.Second, "publish despite persist failure", func() bool {
		return s.Snapshot().Gen >= 1
	})
	// Readers got the new generation, but its feedback must not fold: the
	// only durable copy is the WAL.
	if folded := s.wal.Stats().Folded; folded != 0 {
		t.Fatalf("WAL folded through seq %d while snapshot persist failing, want 0", folded)
	}

	ffs.Heal()
	feedbackN(t, s, 2)
	waitUntil(t, 60*time.Second, "persist and fold after heal", func() bool {
		return s.wal.Stats().Folded >= 4
	})
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot missing after heal: %v", err)
	}
	buf.Reset()
	if err := s.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "lite_snapshot_age_seconds -1") {
		t.Fatal("snapshot age gauge still -1 after successful persist")
	}
	shutdownServer(t, s)

	// Everything durable and folded: a restart replays nothing.
	w, recs, _, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("%d records would replay after heal+fold, want 0", len(recs))
	}
}
