package nn

import (
	"math"

	"lite/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored on the
	// parameters, then leaves the gradients untouched (call ZeroGrad).
	Step()
	// ZeroGrad clears all parameter gradients.
	ZeroGrad()
}

// ZeroGrads clears the gradient buffers of the given parameters.
func ZeroGrads(params []*Node) {
	for _, p := range params {
		if p.Grad != nil {
			p.Grad.Zero()
		}
	}
}

// ClipGrads scales gradients down so their global L2 norm is at most c.
func ClipGrads(params []*Node, c float64) {
	var total float64
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= c || norm == 0 {
		return
	}
	s := c / norm
	for _, p := range params {
		if p.Grad != nil {
			p.Grad.ScaleInPlace(s)
		}
	}
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	Params   []*Node
	LR       float64
	Momentum float64
	vel      []*tensor.Tensor
}

// NewSGD constructs the optimizer.
func NewSGD(params []*Node, lr, momentum float64) *SGD {
	s := &SGD{Params: params, LR: lr, Momentum: momentum}
	s.vel = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		s.vel[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return s
}

// Step applies one SGD update.
func (s *SGD) Step() {
	for i, p := range s.Params {
		if p.Grad == nil {
			continue
		}
		v := s.vel[i]
		for j := range v.Data {
			v.Data[j] = s.Momentum*v.Data[j] - s.LR*p.Grad.Data[j]
			p.Value.Data[j] += v.Data[j]
		}
	}
}

// ZeroGrad clears all parameter gradients.
func (s *SGD) ZeroGrad() { ZeroGrads(s.Params) }

// Adam implements the Adam optimizer (Kingma & Ba, 2015), the default for
// training NECS and all neural baselines.
type Adam struct {
	Params []*Node
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	// WeightDecay applies decoupled L2 regularization (AdamW style).
	WeightDecay float64

	m, v []*tensor.Tensor
	t    int
}

// NewAdam constructs Adam with standard hyperparameters.
func NewAdam(params []*Node, lr float64) *Adam {
	a := &Adam{Params: params, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Rows, p.Value.Cols)
		a.v[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return a
}

// Step applies one Adam update.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.Params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mHat := m.Data[j] / bc1
			vHat := v.Data[j] / bc2
			p.Value.Data[j] -= a.LR * (mHat/(math.Sqrt(vHat)+a.Eps) + a.WeightDecay*p.Value.Data[j])
		}
	}
}

// ZeroGrad clears all parameter gradients.
func (a *Adam) ZeroGrad() { ZeroGrads(a.Params) }
