package nn

import (
	"math"

	"lite/internal/tensor"
)

// MSELoss returns the scalar squared error (pred − target)² for a 1×1
// prediction node against a constant target (Equation 4 of the paper sums
// this across the training set).
func MSELoss(pred *Node, target float64) *Node {
	t := NewConst(tensor.FromRow([]float64{target}))
	d := Sub(pred, t)
	return Mul(d, d)
}

// BCELoss returns the scalar binary cross-entropy −y·log(p) − (1−y)·log(1−p)
// for a 1×1 probability node p against the label y ∈ {0,1}. It is the
// discriminator loss L_D in Adaptive Model Update (paper §IV-B).
func BCELoss(p *Node, y float64) *Node {
	const eps = 1e-9
	pv := p.Value.Data[0]
	clamped := math.Min(math.Max(pv, eps), 1-eps)
	v := tensor.FromRow([]float64{-y*math.Log(clamped) - (1-y)*math.Log(1-clamped)})
	back := func(g *tensor.Tensor) {
		if !p.requiresGrad {
			return
		}
		// d/dp of BCE, using the clamped probability for stability.
		grad := (clamped - y) / (clamped * (1 - clamped))
		p.accumGrad(tensor.FromRow([]float64{g.Data[0] * grad}))
	}
	return newNode(v, back, p)
}

// HuberLoss returns the scalar Huber (smooth-L1) loss with threshold delta,
// used by the DDPG critic for stability.
func HuberLoss(pred *Node, target, delta float64) *Node {
	d := pred.Value.Data[0] - target
	var v float64
	if math.Abs(d) <= delta {
		v = 0.5 * d * d
	} else {
		v = delta * (math.Abs(d) - 0.5*delta)
	}
	out := tensor.FromRow([]float64{v})
	back := func(g *tensor.Tensor) {
		if !pred.requiresGrad {
			return
		}
		var grad float64
		if math.Abs(d) <= delta {
			grad = d
		} else if d > 0 {
			grad = delta
		} else {
			grad = -delta
		}
		pred.accumGrad(tensor.FromRow([]float64{g.Data[0] * grad}))
	}
	return newNode(out, back, pred)
}
