package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lite/internal/tensor"
)

func TestSlicePanicsOnBadBounds(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{1, 2, 3}), "x")
	for _, bounds := range [][2]int{{-1, 2}, {0, 4}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for bounds %v", bounds)
				}
			}()
			Slice(x, bounds[0], bounds[1])
		}()
	}
}

func TestConcatPanicsOnMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-row-vector input")
		}
	}()
	Concat(NewConst(tensor.New(2, 2)))
}

func TestEmbeddingLookupAllPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	table := NewParam(tensor.Randn(4, 3, 1, rng), "e")
	out := EmbeddingLookup(table, []int{-1, -1})
	if out.Value.Norm() != 0 {
		t.Fatal("padding-only lookup should be all zeros")
	}
	// Backward through it must not touch the table.
	Backward(Sum(Square(out)))
	if table.Grad != nil && table.Grad.Norm() != 0 {
		t.Fatal("padding should not receive gradient")
	}
}

func TestNormalizeAdjacencyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		var edges [][2]int
		for i := 0; i+1 < n; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		if n > 3 {
			edges = append(edges, [2]int{0, n - 1})
		}
		a := NormalizeAdjacency(n, edges)
		// Symmetric, nonnegative, with positive diagonal (self loops).
		for i := 0; i < n; i++ {
			if a.At(i, i) <= 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if a.At(i, j) < 0 || math.Abs(a.At(i, j)-a.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAdjacencySingleNode(t *testing.T) {
	a := NormalizeAdjacency(1, nil)
	if a.Rows != 1 || math.Abs(a.At(0, 0)-1) > 1e-12 {
		t.Fatalf("single node normalization wrong: %v", a.At(0, 0))
	}
}

func TestLSTMTruncatesToMaxLen(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := NewLSTMEncoder(6, 3, 4, 5, rng)
	long := make([]int, 50)
	for i := range long {
		long[i] = i % 6
	}
	short := long[:5]
	a := enc.Forward(long)
	b := enc.Forward(short)
	for i := range a.Value.Data {
		if a.Value.Data[i] != b.Value.Data[i] {
			t.Fatal("truncation should make long and short inputs identical")
		}
	}
}

func TestLSTMEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := NewLSTMEncoder(6, 3, 4, 8, rng)
	out := enc.Forward([]int{-1, -1, -1})
	if out.Value.Cols != 4 {
		t.Fatalf("empty-input output width %d", out.Value.Cols)
	}
	for _, v := range out.Value.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in empty-input LSTM output")
		}
	}
}

func TestTransformerHandlesPaddingAndTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	enc := NewTransformerEncoder(8, 4, 2, 6, 6, rng)
	out := enc.Forward([]int{-1, 1, -1, 2, 3, 4, 5, 6, 7, 1, 2, 3})
	if out.Value.Cols != 4 {
		t.Fatalf("output width %d", out.Value.Cols)
	}
	for _, v := range out.Value.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite transformer output")
		}
	}
}

func TestTransformerRejectsIndivisibleHeads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim % heads != 0")
		}
	}()
	NewTransformerEncoder(8, 5, 2, 6, 6, rand.New(rand.NewSource(5)))
}

func TestConv1DShorterThanKernelPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	input := NewConst(tensor.Randn(3, 2, 1, rng))
	filt := NewParam(tensor.Randn(3, 4, 1, rng), "f")
	bias := NewParam(tensor.New(1, 1), "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for input shorter than kernel")
		}
	}()
	Conv1DMaxPool(input, []*Node{filt}, bias)
}

func TestCNNEncoderDeterministicForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	enc := NewCNNEncoder(12, 4, []int{2, 3}, 3, 5, rng)
	ids := []int{1, 2, 3, 4, 5, 6}
	a := enc.Forward(ids)
	b := enc.Forward(ids)
	for i := range a.Value.Data {
		if a.Value.Data[i] != b.Value.Data[i] {
			t.Fatal("forward pass not deterministic")
		}
	}
}

func TestMLPPanicsOnTooFewWidths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP([]int{4}, rand.New(rand.NewSource(8)), "m")
}

func TestStackRowsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StackRows(nil)
}

func TestScalarPanicsOnMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConst(tensor.New(2, 2)).Scalar()
}

// TestNoGradientLeaksBetweenBackwardCalls: running Backward twice through
// independent graphs sharing a parameter must accumulate exactly twice the
// single-pass gradient (no stale intermediate grads).
func TestNoGradientLeaksBetweenBackwardCalls(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{3}), "x")
	Backward(Sum(Square(x)))
	once := x.Grad.Data[0]
	ZeroGrads([]*Node{x})
	Backward(Sum(Square(x)))
	Backward(Sum(Square(x)))
	if math.Abs(x.Grad.Data[0]-2*once) > 1e-12 {
		t.Fatalf("double backward grad %v, want %v", x.Grad.Data[0], 2*once)
	}
}

// TestGradCheckRandomCompositeGraphs fuzzes small composite graphs against
// finite differences.
func TestGradCheckRandomCompositeGraphs(t *testing.T) {
	builders := []func(a, b *Node) *Node{
		func(a, b *Node) *Node { return Sum(Mul(Sigmoid(a), Tanh(b))) },
		func(a, b *Node) *Node { return Mean(Square(Add(a, Scale(b, 0.5)))) },
		func(a, b *Node) *Node { return Sum(Mul(SoftmaxRows(a), Square(b))) },
	}
	for bi, build := range builders {
		rng := rand.New(rand.NewSource(int64(100 + bi)))
		a := NewParam(tensor.Randn(2, 3, 0.8, rng), "a")
		b := NewParam(tensor.Randn(2, 3, 0.8, rng), "b")
		checkGrad(t, []*Node{a, b}, func() *Node { return build(a, b) })
	}
}
