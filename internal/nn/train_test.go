package nn

import (
	"math"
	"math/rand"
	"testing"

	"lite/internal/tensor"
)

// TestAdamConvergesOnQuadratic verifies the optimizer minimizes a simple
// convex objective.
func TestAdamConvergesOnQuadratic(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{5, -3}), "x")
	opt := NewAdam([]*Node{x}, 0.1)
	for i := 0; i < 400; i++ {
		opt.ZeroGrad()
		loss := Sum(Square(x))
		Backward(loss)
		opt.Step()
	}
	if x.Value.Norm() > 1e-2 {
		t.Fatalf("Adam did not converge: x = %v", x.Value.Data)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{4}), "x")
	opt := NewSGD([]*Node{x}, 0.05, 0.9)
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		Backward(Sum(Square(x)))
		opt.Step()
	}
	if math.Abs(x.Value.Data[0]) > 1e-2 {
		t.Fatalf("SGD did not converge: x = %v", x.Value.Data[0])
	}
}

// TestMLPLearnsXOR is a classic non-linear sanity check for the full
// stack: graph construction, backward, and Adam.
func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mlp := NewMLP([]int{2, 8, 1}, rng, "xor")
	opt := NewAdam(mlp.Params(), 0.05)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 800; epoch++ {
		opt.ZeroGrad()
		var loss *Node
		for i, in := range inputs {
			l := MSELoss(Sigmoid(mlp.Forward(NewConst(tensor.FromRow(in)))), targets[i])
			if loss == nil {
				loss = l
			} else {
				loss = Add(loss, l)
			}
		}
		Backward(loss)
		opt.Step()
	}
	for i, in := range inputs {
		pred := Sigmoid(mlp.Forward(NewConst(tensor.FromRow(in)))).Scalar()
		if math.Abs(pred-targets[i]) > 0.2 {
			t.Fatalf("XOR(%v) = %v, want %v", in, pred, targets[i])
		}
	}
}

// TestCNNEncoderLearnsTokenPattern checks the text-CNN can separate
// sequences by which token they contain — the property NECS relies on to
// map operations like sortByKey to cost.
func TestCNNEncoderLearnsTokenPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	enc := NewCNNEncoder(20, 6, []int{2, 3}, 4, 6, rng)
	head := NewDense(6, 1, rng, "head")
	params := append(enc.Params(), head.Params()...)
	opt := NewAdam(params, 0.02)

	mkSeq := func(special int) []int {
		ids := make([]int, 12)
		for i := range ids {
			ids[i] = 1 + rng.Intn(5)
		}
		if special >= 0 {
			ids[rng.Intn(len(ids))] = special
		}
		return ids
	}
	type sample struct {
		ids []int
		y   float64
	}
	var data []sample
	for i := 0; i < 30; i++ {
		data = append(data, sample{mkSeq(15), 2.0}) // token 15 → slow
		data = append(data, sample{mkSeq(-1), 0.5}) // no special token → fast
	}
	for epoch := 0; epoch < 60; epoch++ {
		for _, s := range data {
			opt.ZeroGrad()
			Backward(MSELoss(head.Forward(enc.Forward(s.ids)), s.y))
			opt.Step()
		}
	}
	slow := head.Forward(enc.Forward(mkSeq(15))).Scalar()
	fast := head.Forward(enc.Forward(mkSeq(-1))).Scalar()
	if slow-fast < 0.5 {
		t.Fatalf("CNN failed to separate token classes: slow=%v fast=%v", slow, fast)
	}
}

func TestTowerWidths(t *testing.T) {
	got := TowerWidths(58, 64, 16)
	want := []int{58, 64, 32, 16, 1}
	if len(got) != len(want) {
		t.Fatalf("TowerWidths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TowerWidths = %v, want %v", got, want)
		}
	}
}

func TestForwardHiddenReturnsAllHiddenLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mlp := NewMLP([]int{4, 8, 4, 1}, rng, "m")
	out, hidden := mlp.ForwardHidden(NewConst(tensor.Randn(1, 4, 1, rng)))
	if out.Value.Cols != 1 {
		t.Fatalf("output width %d", out.Value.Cols)
	}
	if len(hidden) != 2 || hidden[0].Value.Cols != 8 || hidden[1].Value.Cols != 4 {
		t.Fatalf("hidden shapes wrong: %d layers", len(hidden))
	}
}

func TestClipGrads(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{3, 4}), "x") // grad will be (6,8), norm 10
	Backward(Sum(Square(x)))
	ClipGrads([]*Node{x}, 5)
	norm := x.Grad.Norm()
	if math.Abs(norm-5) > 1e-9 {
		t.Fatalf("clipped norm = %v, want 5", norm)
	}
	// Clipping below the threshold is a no-op.
	ZeroGrads([]*Node{x})
	Backward(Sum(Square(x)))
	ClipGrads([]*Node{x}, 1e6)
	if math.Abs(x.Grad.Norm()-10) > 1e-9 {
		t.Fatalf("no-op clip changed gradient")
	}
}

func TestZeroGrads(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{2}), "x")
	Backward(Sum(Square(x)))
	if x.Grad.Data[0] == 0 {
		t.Fatal("expected nonzero grad before zeroing")
	}
	ZeroGrads([]*Node{x})
	if x.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrads did not clear")
	}
}

// TestGradientAccumulationAcrossSamples ensures grads sum when Backward is
// called repeatedly without zeroing (mini-batch accumulation).
func TestGradientAccumulationAcrossSamples(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{1}), "x")
	Backward(Sum(Square(x))) // grad 2
	Backward(Sum(Square(x))) // grad 2 more
	if math.Abs(x.Grad.Data[0]-4) > 1e-9 {
		t.Fatalf("accumulated grad = %v, want 4", x.Grad.Data[0])
	}
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar root")
		}
	}()
	x := NewParam(tensor.FromRow([]float64{1, 2}), "x")
	Backward(Square(x))
}

// TestAdversarialMinimaxDirection verifies GradReverse produces opposite
// update directions for the feature extractor vs the discriminator — the
// mechanism behind Adaptive Model Update.
func TestAdversarialMinimaxDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	feat := NewDense(2, 2, rng, "feat")
	disc := NewDense(2, 1, rng, "disc")
	x := NewConst(tensor.FromRow([]float64{1, -1}))

	// Discriminator path WITHOUT reversal.
	lossD := BCELoss(Sigmoid(disc.Forward(feat.Forward(x))), 1)
	Backward(lossD)
	gradDirect := feat.W.Grad.Clone()
	ZeroGrads(append(feat.Params(), disc.Params()...))

	// Same path WITH reversal before the discriminator.
	lossR := BCELoss(Sigmoid(disc.Forward(GradReverse(feat.Forward(x), 1))), 1)
	Backward(lossR)
	gradReversed := feat.W.Grad

	for i := range gradDirect.Data {
		if math.Abs(gradDirect.Data[i]+gradReversed.Data[i]) > 1e-9 {
			t.Fatalf("reversed grad[%d] = %v, want %v", i, gradReversed.Data[i], -gradDirect.Data[i])
		}
	}
}
