package nn

import (
	"fmt"
	"math"
	"math/rand"

	"lite/internal/tensor"
)

// Dense is a fully-connected layer y = xW + b.
type Dense struct {
	W, B *Node
}

// NewDense constructs a Dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand, name string) *Dense {
	return &Dense{
		W: NewParam(tensor.XavierUniform(in, out, rng), name+".W"),
		B: NewParam(tensor.New(1, out), name+".B"),
	}
}

// Forward applies the layer to an m×in node, producing m×out.
func (d *Dense) Forward(x *Node) *Node {
	return AddRowBroadcast(MatMul(x, d.W), d.B)
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Node { return []*Node{d.W, d.B} }

// MLP is a multi-layer perceptron with ReLU activations between layers.
// NECS uses a "tower" MLP whose widths halve per layer (paper §III-F).
type MLP struct {
	Layers []*Dense
	// FinalActivation, if non-nil, is applied after the last layer
	// (e.g. Sigmoid for the domain discriminator).
	FinalActivation func(*Node) *Node
}

// NewMLP builds an MLP with the given layer widths, e.g. [58, 64, 32, 16, 1].
func NewMLP(widths []int, rng *rand.Rand, name string) *MLP {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		m.Layers = append(m.Layers, NewDense(widths[i], widths[i+1], rng, fmt.Sprintf("%s.l%d", name, i)))
	}
	return m
}

// TowerWidths returns the width schedule of the NECS tower MLP: each hidden
// layer is half the width of the previous one, from `first` down to
// (exclusive) `minWidth`, ending in a single output unit.
func TowerWidths(in, first, minWidth int) []int {
	widths := []int{in}
	for w := first; w >= minWidth; w /= 2 {
		widths = append(widths, w)
	}
	widths = append(widths, 1)
	return widths
}

// Forward applies the MLP, returning only the final output.
func (m *MLP) Forward(x *Node) *Node {
	out, _ := m.ForwardHidden(x)
	return out
}

// ForwardHidden applies the MLP and additionally returns every hidden-layer
// activation (post-ReLU). Adaptive Model Update concatenates these hidden
// embeddings h_i = f¹(x)‖…‖f^L as the discriminator input (paper §IV-B).
func (m *MLP) ForwardHidden(x *Node) (*Node, []*Node) {
	var hidden []*Node
	h := x
	for i, l := range m.Layers {
		h = l.Forward(h)
		if i+1 < len(m.Layers) {
			h = ReLU(h)
			hidden = append(hidden, h)
		}
	}
	if m.FinalActivation != nil {
		h = m.FinalActivation(h)
	}
	return h, hidden
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Node {
	var ps []*Node
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// CNNEncoder is NECS's code-feature encoder (paper §III-D): token
// embeddings → parallel Conv1D banks with several kernel sizes → global
// max-pool → flatten → ReLU(W^CNN · Q) projection (Equation 1).
type CNNEncoder struct {
	Embedding *Node // vocab × D token embedding table
	// One filter bank per kernel size; bank[i][j] is the j-th D×k_i filter.
	banks   [][]*Node
	biases  []*Node
	Proj    *Dense
	OutDim  int
	kernels []int
}

// NewCNNEncoder builds the encoder. vocab is the token-vocabulary size
// (including the oov id), embDim the token-embedding width D, kernels the
// convolution widths (e.g. [2,3,4]), filtersPer the number of filters per
// kernel size, and outDim the width of the projected code representation.
func NewCNNEncoder(vocab, embDim int, kernels []int, filtersPer, outDim int, rng *rand.Rand) *CNNEncoder {
	enc := &CNNEncoder{
		Embedding: NewParam(tensor.Randn(vocab, embDim, 0.1, rng), "code.embed"),
		OutDim:    outDim,
		kernels:   kernels,
	}
	for ki, k := range kernels {
		bank := make([]*Node, filtersPer)
		for j := range bank {
			bank[j] = NewParam(tensor.XavierUniform(embDim, k, rng), fmt.Sprintf("code.conv%d.%d", ki, j))
		}
		enc.banks = append(enc.banks, bank)
		enc.biases = append(enc.biases, NewParam(tensor.New(1, filtersPer), fmt.Sprintf("code.convb%d", ki)))
	}
	enc.Proj = NewDense(len(kernels)*filtersPer, outDim, rng, "code.proj")
	return enc
}

// MinLen returns the minimum token-sequence length the encoder accepts
// (the largest kernel width); shorter sequences must be padded by the
// caller, mirroring the paper's zero-padding of short stage codes.
func (c *CNNEncoder) MinLen() int {
	max := 0
	for _, k := range c.kernels {
		if k > max {
			max = k
		}
	}
	return max
}

// Forward encodes a token-id sequence into the 1×OutDim code representation
// h_code (Equation 1). ids may contain −1 entries for padding.
func (c *CNNEncoder) Forward(ids []int) *Node {
	emb := EmbeddingLookup(c.Embedding, ids)
	var pooled []*Node
	for i, bank := range c.banks {
		pooled = append(pooled, Conv1DMaxPool(emb, bank, c.biases[i]))
	}
	q := Concat(pooled...)
	return ReLU(c.Proj.Forward(q))
}

// Params returns all trainable parameters.
func (c *CNNEncoder) Params() []*Node {
	ps := []*Node{c.Embedding}
	for _, bank := range c.banks {
		ps = append(ps, bank...)
	}
	ps = append(ps, c.biases...)
	ps = append(ps, c.Proj.Params()...)
	return ps
}

// GCNLayer implements one graph-convolution layer (paper §III-E):
// H^{l+1} = ReLU(D̂^{-1/2}(A+I)D̂^{-1/2} H^l W^l). The normalized adjacency
// is precomputed per graph and passed as a constant node.
type GCNLayer struct {
	W *Node
}

// NewGCNLayer builds a GCN layer mapping in-width node features to out.
func NewGCNLayer(in, out int, rng *rand.Rand, name string) *GCNLayer {
	return &GCNLayer{W: NewParam(tensor.XavierUniform(in, out, rng), name+".W")}
}

// Forward applies the layer given the normalized adjacency aHat (|V|×|V|,
// constant) and node features h (|V|×in).
func (g *GCNLayer) Forward(aHat, h *Node) *Node {
	return ReLU(MatMul(MatMul(aHat, h), g.W))
}

// Params returns the trainable weight.
func (g *GCNLayer) Params() []*Node { return []*Node{g.W} }

// GCNEncoder is NECS's scheduler-DAG encoder: stacked GCN layers over
// one-hot node-operation embeddings, followed by column-wise max-pooling
// (Equation 2) to produce the 1×OutDim representation h_DAG.
type GCNEncoder struct {
	Layers []*GCNLayer
	OutDim int
}

// NewGCNEncoder builds a GCN with the given width schedule, e.g.
// [S+1, 32, 16] for two layers over one-hot node features of width S+1.
func NewGCNEncoder(widths []int, rng *rand.Rand) *GCNEncoder {
	enc := &GCNEncoder{OutDim: widths[len(widths)-1]}
	for i := 0; i+1 < len(widths); i++ {
		enc.Layers = append(enc.Layers, NewGCNLayer(widths[i], widths[i+1], rng, fmt.Sprintf("dag.gcn%d", i)))
	}
	return enc
}

// NormalizeAdjacency computes D̂^{-1/2}(A+I)D̂^{-1/2} for a directed DAG
// adjacency matrix A given as edge pairs over n nodes. The graph is treated
// as undirected for message passing, as is standard for GCNs.
func NormalizeAdjacency(n int, edges [][2]int) *tensor.Tensor {
	a := tensor.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	for _, e := range edges {
		a.Set(e[0], e[1], 1)
		a.Set(e[1], e[0], 1)
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			deg[i] += a.At(i, j)
		}
	}
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.At(i, j) != 0 {
				out.Set(i, j, a.At(i, j)/math.Sqrt(deg[i]*deg[j]))
			}
		}
	}
	return out
}

// Forward encodes a DAG: nodeFeatures is |V|×S+1 (one-hot rows, constant or
// trainable), aHat the normalized adjacency from NormalizeAdjacency.
func (g *GCNEncoder) Forward(aHat, nodeFeatures *Node) *Node {
	h := nodeFeatures
	for _, l := range g.Layers {
		h = l.Forward(aHat, h)
	}
	return ColMaxPool(h)
}

// Params returns all trainable parameters.
func (g *GCNEncoder) Params() []*Node {
	var ps []*Node
	for _, l := range g.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
