// Package nn implements a small reverse-mode automatic-differentiation
// engine and the neural building blocks used by the LITE reproduction:
// dense layers, 1-D convolutions with max-pooling (the NECS code encoder),
// graph convolutions (the NECS scheduler encoder), LSTM and Transformer
// encoders (ablation baselines), Adam/SGD optimizers, and a
// gradient-reversal operation used by Adaptive Model Update's adversarial
// fine-tuning.
//
// The engine is tensor-valued: every Node holds a matrix, and the backward
// pass propagates matrix-shaped gradients. Graphs are built dynamically per
// forward pass and freed by the garbage collector; only parameter nodes
// persist across steps.
package nn

import (
	"fmt"

	"lite/internal/tensor"
)

// Node is a vertex in the dynamically-built computation graph. Value holds
// the forward result; Grad accumulates ∂loss/∂Value during Backward.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requiresGrad bool
	parents      []*Node
	backFn       func(grad *tensor.Tensor)
	name         string
}

// NewParam wraps t as a trainable parameter node.
func NewParam(t *tensor.Tensor, name string) *Node {
	return &Node{Value: t, requiresGrad: true, name: name}
}

// NewConst wraps t as a constant (non-trainable, no gradient) node.
func NewConst(t *tensor.Tensor) *Node {
	return &Node{Value: t}
}

// NewInput is an alias of NewConst for readability at call sites that feed
// model inputs.
func NewInput(t *tensor.Tensor) *Node { return NewConst(t) }

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Name returns the diagnostic name assigned at construction, if any.
func (n *Node) Name() string { return n.name }

// Scalar returns the single element of a 1×1 node.
func (n *Node) Scalar() float64 {
	if n.Value.Size() != 1 {
		panic(fmt.Sprintf("nn: Scalar called on %dx%d node", n.Value.Rows, n.Value.Cols))
	}
	return n.Value.Data[0]
}

// ensureGrad lazily allocates the gradient buffer.
func (n *Node) ensureGrad() *tensor.Tensor {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
	return n.Grad
}

// accumGrad adds g into the node's gradient buffer.
func (n *Node) accumGrad(g *tensor.Tensor) {
	tensor.AddInPlace(n.ensureGrad(), g)
}

// newNode builds an op result node; requiresGrad is inherited from parents.
func newNode(v *tensor.Tensor, back func(grad *tensor.Tensor), parents ...*Node) *Node {
	rg := false
	for _, p := range parents {
		if p.requiresGrad {
			rg = true
			break
		}
	}
	n := &Node{Value: v, parents: parents}
	if rg {
		n.requiresGrad = true
		n.backFn = back
	}
	return n
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar (1×1) node, seeding its gradient with 1. Gradients accumulate into
// every reachable node with requiresGrad set; call ZeroGrad on parameters
// between optimizer steps.
func Backward(root *Node) {
	if root.Value.Size() != 1 {
		panic("nn: Backward root must be scalar")
	}
	order := topoSort(root)
	root.ensureGrad().Data[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backFn != nil && n.Grad != nil {
			n.backFn(n.Grad)
		}
	}
	// Free intermediate gradient buffers so repeated forward passes that
	// share parameter nodes do not read stale gradients.
	for _, n := range order {
		if len(n.parents) > 0 {
			n.Grad = nil
		}
	}
}

// topoSort returns nodes in topological order (parents before children),
// restricted to the subgraph that requires gradients.
func topoSort(root *Node) []*Node {
	var order []*Node
	seen := map[*Node]bool{}
	// Iterative DFS to avoid deep recursion on long chains (LSTM over
	// hundreds of timesteps).
	type frame struct {
		n     *Node
		child int
	}
	stack := []frame{{n: root}}
	seen[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child < len(f.n.parents) {
			p := f.n.parents[f.child]
			f.child++
			if !seen[p] && p.requiresGrad {
				seen[p] = true
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}
	return order
}
