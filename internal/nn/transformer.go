package nn

import (
	"fmt"
	"math"
	"math/rand"

	"lite/internal/tensor"
)

// TransformerEncoder is the "Transformer" ablation baseline in Table VII: a
// multi-head self-attention encoder over stage-level code tokens with a
// mean-pooled read-out. It uses sinusoidal positional encodings, a single
// feed-forward block, and residual connections with layer normalization.
type TransformerEncoder struct {
	Embedding *Node
	heads     int
	dim       int
	headDim   int
	// Per-head projections, each dim×headDim.
	Wq, Wk, Wv []*Node
	Wo         *Dense
	FF1, FF2   *Dense
	LN1, LN2   *LayerNorm
	MaxLen     int
	posEnc     *tensor.Tensor
}

// NewTransformerEncoder builds a single-block encoder. dim must be
// divisible by heads.
func NewTransformerEncoder(vocab, dim, heads, ffDim, maxLen int, rng *rand.Rand) *TransformerEncoder {
	if dim%heads != 0 {
		panic("nn: transformer dim must be divisible by heads")
	}
	enc := &TransformerEncoder{
		Embedding: NewParam(tensor.Randn(vocab, dim, 0.1, rng), "tfm.embed"),
		heads:     heads,
		dim:       dim,
		headDim:   dim / heads,
		Wo:        NewDense(dim, dim, rng, "tfm.Wo"),
		FF1:       NewDense(dim, ffDim, rng, "tfm.ff1"),
		FF2:       NewDense(ffDim, dim, rng, "tfm.ff2"),
		LN1:       NewLayerNorm(dim, "tfm.ln1"),
		LN2:       NewLayerNorm(dim, "tfm.ln2"),
		MaxLen:    maxLen,
		posEnc:    sinusoidalPositions(maxLen, dim),
	}
	for h := 0; h < heads; h++ {
		enc.Wq = append(enc.Wq, NewParam(tensor.XavierUniform(dim, enc.headDim, rng), fmt.Sprintf("tfm.Wq%d", h)))
		enc.Wk = append(enc.Wk, NewParam(tensor.XavierUniform(dim, enc.headDim, rng), fmt.Sprintf("tfm.Wk%d", h)))
		enc.Wv = append(enc.Wv, NewParam(tensor.XavierUniform(dim, enc.headDim, rng), fmt.Sprintf("tfm.Wv%d", h)))
	}
	return enc
}

func sinusoidalPositions(maxLen, dim int) *tensor.Tensor {
	pe := tensor.New(maxLen, dim)
	for pos := 0; pos < maxLen; pos++ {
		for i := 0; i < dim; i++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(i/2))/float64(dim))
			if i%2 == 0 {
				pe.Set(pos, i, math.Sin(angle))
			} else {
				pe.Set(pos, i, math.Cos(angle))
			}
		}
	}
	return pe
}

// Forward encodes ids into a 1×dim representation by mean-pooling the
// block's output rows. Padding ids (−1) are dropped before encoding.
func (t *TransformerEncoder) Forward(ids []int) *Node {
	kept := ids[:0:0]
	for _, id := range ids {
		if id >= 0 {
			kept = append(kept, id)
		}
		if len(kept) == t.MaxLen {
			break
		}
	}
	if len(kept) == 0 {
		kept = []int{0}
	}
	x := EmbeddingLookupRows(t.Embedding, kept)
	pos := tensor.New(len(kept), t.dim)
	for i := range kept {
		copy(pos.RowView(i), t.posEnc.RowView(i))
	}
	x = Add(x, NewConst(pos))

	// Multi-head scaled dot-product self-attention.
	scale := 1 / math.Sqrt(float64(t.headDim))
	var headOuts []*Node
	for h := 0; h < t.heads; h++ {
		q := MatMul(x, t.Wq[h])
		k := MatMul(x, t.Wk[h])
		v := MatMul(x, t.Wv[h])
		att := SoftmaxRows(Scale(MatMulB(q, k), scale))
		headOuts = append(headOuts, MatMul(att, v))
	}
	concat := ConcatCols(headOuts)
	attOut := t.Wo.Forward(concat)
	x = t.LN1.Forward(Add(x, attOut))
	ff := t.FF2.Forward(ReLU(t.FF1.Forward(x)))
	x = t.LN2.Forward(Add(x, ff))
	return RowMeanPool(x)
}

// Params returns all trainable parameters.
func (t *TransformerEncoder) Params() []*Node {
	ps := []*Node{t.Embedding}
	ps = append(ps, t.Wq...)
	ps = append(ps, t.Wk...)
	ps = append(ps, t.Wv...)
	ps = append(ps, t.Wo.Params()...)
	ps = append(ps, t.FF1.Params()...)
	ps = append(ps, t.FF2.Params()...)
	ps = append(ps, t.LN1.Params()...)
	ps = append(ps, t.LN2.Params()...)
	return ps
}

// MatMulB computes a×bᵀ with gradients to both operands (used for QKᵀ).
func MatMulB(a, b *Node) *Node {
	v := tensor.MatMulTransB(a.Value, b.Value)
	back := func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.accumGrad(tensor.MatMul(g, b.Value))
		}
		if b.requiresGrad {
			b.accumGrad(tensor.MatMulTransA(g, a.Value))
		}
	}
	return newNode(v, back, a, b)
}

// ConcatCols concatenates matrices with equal row counts along columns.
func ConcatCols(parts []*Node) *Node {
	rows := parts[0].Value.Rows
	total := 0
	for _, p := range parts {
		if p.Value.Rows != rows {
			panic("nn: ConcatCols row mismatch")
		}
		total += p.Value.Cols
	}
	v := tensor.New(rows, total)
	off := 0
	for _, p := range parts {
		for i := 0; i < rows; i++ {
			copy(v.RowView(i)[off:off+p.Value.Cols], p.Value.RowView(i))
		}
		off += p.Value.Cols
	}
	back := func(g *tensor.Tensor) {
		off := 0
		for _, p := range parts {
			w := p.Value.Cols
			if p.requiresGrad {
				gp := tensor.New(rows, w)
				for i := 0; i < rows; i++ {
					copy(gp.RowView(i), g.RowView(i)[off:off+w])
				}
				p.accumGrad(gp)
			}
			off += w
		}
	}
	return newNode(v, back, parts...)
}

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learned affine transform.
type LayerNorm struct {
	Gamma, Beta *Node
	eps         float64
}

// NewLayerNorm builds a LayerNorm over rows of width dim.
func NewLayerNorm(dim int, name string) *LayerNorm {
	g := tensor.New(1, dim)
	g.Fill(1)
	return &LayerNorm{
		Gamma: NewParam(g, name+".gamma"),
		Beta:  NewParam(tensor.New(1, dim), name+".beta"),
		eps:   1e-5,
	}
}

// Forward applies layer normalization row-wise.
func (l *LayerNorm) Forward(x *Node) *Node {
	rows, cols := x.Value.Rows, x.Value.Cols
	v := tensor.New(rows, cols)
	means := make([]float64, rows)
	invStds := make([]float64, rows)
	for i := 0; i < rows; i++ {
		row := x.Value.RowView(i)
		var m float64
		for _, xv := range row {
			m += xv
		}
		m /= float64(cols)
		var varSum float64
		for _, xv := range row {
			d := xv - m
			varSum += d * d
		}
		inv := 1 / math.Sqrt(varSum/float64(cols)+l.eps)
		means[i], invStds[i] = m, inv
		out := v.RowView(i)
		for j, xv := range row {
			out[j] = (xv-m)*inv*l.Gamma.Value.Data[j] + l.Beta.Value.Data[j]
		}
	}
	back := func(g *tensor.Tensor) {
		if l.Gamma.requiresGrad {
			gg := tensor.New(1, cols)
			for i := 0; i < rows; i++ {
				row := x.Value.RowView(i)
				grow := g.RowView(i)
				for j := range grow {
					gg.Data[j] += grow[j] * (row[j] - means[i]) * invStds[i]
				}
			}
			l.Gamma.accumGrad(gg)
		}
		if l.Beta.requiresGrad {
			gb := tensor.New(1, cols)
			for i := 0; i < rows; i++ {
				for j, gv := range g.RowView(i) {
					gb.Data[j] += gv
				}
			}
			l.Beta.accumGrad(gb)
		}
		if !x.requiresGrad {
			return
		}
		gx := tensor.New(rows, cols)
		n := float64(cols)
		for i := 0; i < rows; i++ {
			row := x.Value.RowView(i)
			grow := g.RowView(i)
			// dy/dxhat scaled by gamma.
			dxhat := make([]float64, cols)
			var sumDx, sumDxXhat float64
			for j := range grow {
				dxhat[j] = grow[j] * l.Gamma.Value.Data[j]
				xhat := (row[j] - means[i]) * invStds[i]
				sumDx += dxhat[j]
				sumDxXhat += dxhat[j] * xhat
			}
			out := gx.RowView(i)
			for j := range out {
				xhat := (row[j] - means[i]) * invStds[i]
				out[j] = invStds[i] / n * (n*dxhat[j] - sumDx - xhat*sumDxXhat)
			}
		}
		x.accumGrad(gx)
	}
	return newNode(v, back, x, l.Gamma, l.Beta)
}

// Params returns the affine parameters.
func (l *LayerNorm) Params() []*Node { return []*Node{l.Gamma, l.Beta} }
