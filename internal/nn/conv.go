package nn

import (
	"math"

	"lite/internal/tensor"
)

// Conv1DMaxPool implements a text-CNN feature extractor over a token
// embedding matrix, matching NECS's code encoder (paper §III-D): for each
// filter W_f ∈ R^{D×k} the op slides over the token axis of the D×N input,
// producing an activation sequence of length N−k+1, then applies global
// max-pooling, yielding one scalar per filter. The result is the flattened
// 1×F feature map Q from Equation (1).
//
// filters holds F parameter nodes, each of shape D×k (all with the same k
// for one instance of the op; use several ops for multiple kernel sizes).
func Conv1DMaxPool(input *Node, filters []*Node, bias *Node) *Node {
	d := input.Value.Rows
	n := input.Value.Cols
	f := len(filters)
	vals := make([]*tensor.Tensor, f)
	for i, filt := range filters {
		vals[i] = filt.Value
	}
	out, argmax := conv1DMaxPoolValue(input.Value, vals, bias.Value)
	k := vals[0].Cols
	parents := make([]*Node, 0, f+2)
	parents = append(parents, input)
	parents = append(parents, filters...)
	parents = append(parents, bias)
	back := func(g *tensor.Tensor) {
		var gin *tensor.Tensor
		if input.requiresGrad {
			gin = tensor.New(d, n)
		}
		gb := tensor.New(1, f)
		for fi, filt := range filters {
			gv := g.Data[fi]
			gb.Data[fi] = gv
			p := argmax[fi]
			if filt.requiresGrad {
				gw := tensor.New(d, k)
				for r := 0; r < d; r++ {
					for c := 0; c < k; c++ {
						gw.Data[r*k+c] = gv * input.Value.Data[r*n+p+c]
					}
				}
				filt.accumGrad(gw)
			}
			if gin != nil {
				w := filt.Value
				for r := 0; r < d; r++ {
					for c := 0; c < k; c++ {
						gin.Data[r*n+p+c] += gv * w.Data[r*k+c]
					}
				}
			}
		}
		if gin != nil {
			input.accumGrad(gin)
		}
		if bias.requiresGrad {
			bias.accumGrad(gb)
		}
	}
	return newNode(out, back, parents...)
}

// conv1DMaxPoolValue is the shared forward kernel of Conv1DMaxPool: it
// computes the 1×F pooled feature map and the argmax position per filter.
// Both the autograd op above and the inference path (infer.go) call it, so
// the two paths are bitwise identical by construction.
func conv1DMaxPoolValue(input *tensor.Tensor, filters []*tensor.Tensor, bias *tensor.Tensor) (*tensor.Tensor, []int) {
	d := input.Rows
	n := input.Cols
	f := len(filters)
	if f == 0 {
		panic("nn: Conv1DMaxPool requires at least one filter")
	}
	k := filters[0].Cols
	if n < k {
		panic("nn: Conv1DMaxPool input shorter than kernel")
	}
	out := tensor.New(1, f)
	argmax := make([]int, f)
	for fi, w := range filters {
		if w.Rows != d || w.Cols != k {
			panic("nn: Conv1DMaxPool filter shape mismatch")
		}
		best, bp := math.Inf(-1), 0
		for p := 0; p+k <= n; p++ {
			var s float64
			for r := 0; r < d; r++ {
				irow := input.Data[r*n:]
				wrow := w.Data[r*k:]
				for c := 0; c < k; c++ {
					s += irow[p+c] * wrow[c]
				}
			}
			if s > best {
				best, bp = s, p
			}
		}
		out.Data[fi] = best + bias.Data[fi]
		argmax[fi] = bp
	}
	return out, argmax
}

// EmbeddingLookup gathers rows of the embedding table for the given ids and
// returns them transposed as a D×N matrix (embedding dim × sequence length),
// the orientation NECS's CNN expects. id < 0 selects the zero padding
// column, which receives no gradient.
func EmbeddingLookup(table *Node, ids []int) *Node {
	d := table.Value.Cols
	n := len(ids)
	v := embeddingLookupValue(table.Value, ids)
	back := func(g *tensor.Tensor) {
		if !table.requiresGrad {
			return
		}
		gt := tensor.New(table.Value.Rows, table.Value.Cols)
		for j, id := range ids {
			if id < 0 {
				continue
			}
			grow := gt.RowView(id)
			for r := 0; r < d; r++ {
				grow[r] += g.Data[r*n+j]
			}
		}
		table.accumGrad(gt)
	}
	return newNode(v, back, table)
}

// embeddingLookupValue is the shared forward kernel of EmbeddingLookup,
// also used by the inference path (infer.go).
func embeddingLookupValue(table *tensor.Tensor, ids []int) *tensor.Tensor {
	d := table.Cols
	n := len(ids)
	v := tensor.New(d, n)
	for j, id := range ids {
		if id < 0 {
			continue
		}
		row := table.RowView(id)
		for r := 0; r < d; r++ {
			v.Data[r*n+j] = row[r]
		}
	}
	return v
}

// EmbeddingLookupRows gathers rows of the embedding table as an N×D matrix
// (sequence length × embedding dim), the orientation the LSTM and
// Transformer encoders expect.
func EmbeddingLookupRows(table *Node, ids []int) *Node {
	d := table.Value.Cols
	v := tensor.New(len(ids), d)
	for i, id := range ids {
		if id < 0 {
			continue
		}
		copy(v.RowView(i), table.Value.RowView(id))
	}
	back := func(g *tensor.Tensor) {
		if !table.requiresGrad {
			return
		}
		gt := tensor.New(table.Value.Rows, table.Value.Cols)
		for i, id := range ids {
			if id < 0 {
				continue
			}
			grow := gt.RowView(id)
			for j, gv := range g.RowView(i) {
				grow[j] += gv
			}
		}
		table.accumGrad(gt)
	}
	return newNode(v, back, table)
}
