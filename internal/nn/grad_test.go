package nn

import (
	"math"
	"math/rand"
	"testing"

	"lite/internal/tensor"
)

// numericalGrad perturbs each element of param and measures the change in
// the scalar produced by forward, giving a finite-difference gradient.
func numericalGrad(t *testing.T, param *Node, forward func() *Node) *tensor.Tensor {
	t.Helper()
	const h = 1e-6
	grad := tensor.New(param.Value.Rows, param.Value.Cols)
	for i := range param.Value.Data {
		orig := param.Value.Data[i]
		param.Value.Data[i] = orig + h
		up := forward().Scalar()
		param.Value.Data[i] = orig - h
		down := forward().Scalar()
		param.Value.Data[i] = orig
		grad.Data[i] = (up - down) / (2 * h)
	}
	return grad
}

// checkGrad runs backward through forward() and compares the analytic
// gradient on each param against the finite-difference estimate.
func checkGrad(t *testing.T, params []*Node, forward func() *Node) {
	t.Helper()
	ZeroGrads(params)
	loss := forward()
	Backward(loss)
	for pi, p := range params {
		num := numericalGrad(t, p, forward)
		if p.Grad == nil {
			t.Fatalf("param %d (%s): no gradient accumulated", pi, p.name)
		}
		for i := range num.Data {
			got := p.Grad.Data[i]
			want := num.Data[i]
			tol := 1e-4 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("param %d (%s) grad[%d] = %v, numerical %v", pi, p.name, i, got, want)
			}
		}
	}
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewParam(tensor.Randn(2, 3, 1, rng), "a")
	b := NewParam(tensor.Randn(3, 2, 1, rng), "b")
	checkGrad(t, []*Node{a, b}, func() *Node { return Sum(MatMul(a, b)) })
}

func TestAddSubMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewParam(tensor.Randn(2, 2, 1, rng), "a")
	b := NewParam(tensor.Randn(2, 2, 1, rng), "b")
	checkGrad(t, []*Node{a, b}, func() *Node { return Sum(Mul(Add(a, b), Sub(a, b))) })
}

func TestActivationGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name string
		f    func(*Node) *Node
	}{
		{"sigmoid", Sigmoid},
		{"tanh", Tanh},
		{"leakyrelu", func(n *Node) *Node { return LeakyReLU(n, 0.1) }},
		{"square", Square},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := NewParam(tensor.Randn(2, 3, 1, rng), "a")
			// Shift away from 0 to avoid kinks in finite differences.
			for i := range a.Value.Data {
				if math.Abs(a.Value.Data[i]) < 0.1 {
					a.Value.Data[i] += 0.2
				}
			}
			checkGrad(t, []*Node{a}, func() *Node { return Sum(c.f(a)) })
		})
	}
}

func TestReLUGradAwayFromKink(t *testing.T) {
	a := NewParam(tensor.FromRow([]float64{1.5, -2.0, 0.7, -0.3}), "a")
	checkGrad(t, []*Node{a}, func() *Node { return Sum(ReLU(a)) })
}

func TestBroadcastAndConcatGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewParam(tensor.Randn(3, 2, 1, rng), "m")
	b := NewParam(tensor.Randn(1, 2, 1, rng), "b")
	checkGrad(t, []*Node{m, b}, func() *Node { return Sum(AddRowBroadcast(m, b)) })

	x := NewParam(tensor.Randn(1, 3, 1, rng), "x")
	y := NewParam(tensor.Randn(1, 2, 1, rng), "y")
	checkGrad(t, []*Node{x, y}, func() *Node { return Sum(Square(Concat(x, y))) })
}

func TestSliceGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := NewParam(tensor.Randn(1, 5, 1, rng), "x")
	checkGrad(t, []*Node{x}, func() *Node { return Sum(Square(Slice(x, 1, 4))) })
}

func TestMeanAndScaleGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := NewParam(tensor.Randn(2, 4, 1, rng), "x")
	checkGrad(t, []*Node{x}, func() *Node { return Mean(Scale(Square(x), 3)) })
}

func TestColMaxPoolGrad(t *testing.T) {
	x := NewParam(tensor.FromSlice(3, 2, []float64{1, 9, 5, 2, 3, 7}), "x")
	checkGrad(t, []*Node{x}, func() *Node { return Sum(Square(ColMaxPool(x))) })
}

func TestRowMeanPoolGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := NewParam(tensor.Randn(3, 4, 1, rng), "x")
	checkGrad(t, []*Node{x}, func() *Node { return Sum(Square(RowMeanPool(x))) })
}

func TestSoftmaxRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := NewParam(tensor.Randn(2, 4, 1, rng), "x")
	w := NewConst(tensor.Randn(2, 4, 1, rng))
	checkGrad(t, []*Node{x}, func() *Node { return Sum(Mul(SoftmaxRows(x), w)) })
}

func TestGradReverseNegatesGradient(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{2}), "x")
	loss := Sum(GradReverse(Square(x), 0.5))
	Backward(loss)
	// d/dx x² = 4 at x=2; reversed with λ=0.5 → −2.
	if math.Abs(x.Grad.Data[0]-(-2)) > 1e-9 {
		t.Fatalf("grad-reverse gradient = %v, want -2", x.Grad.Data[0])
	}
	// Forward must be identity.
	if loss.Scalar() != 4 {
		t.Fatalf("grad-reverse forward = %v, want 4", loss.Scalar())
	}
}

func TestConv1DMaxPoolGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	input := NewParam(tensor.Randn(3, 6, 1, rng), "input")
	f1 := NewParam(tensor.Randn(3, 2, 1, rng), "f1")
	f2 := NewParam(tensor.Randn(3, 2, 1, rng), "f2")
	bias := NewParam(tensor.Randn(1, 2, 1, rng), "bias")
	checkGrad(t, []*Node{input, f1, f2, bias}, func() *Node {
		return Sum(Square(Conv1DMaxPool(input, []*Node{f1, f2}, bias)))
	})
}

func TestEmbeddingLookupGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	table := NewParam(tensor.Randn(5, 3, 1, rng), "embed")
	ids := []int{0, 2, 2, -1, 4}
	checkGrad(t, []*Node{table}, func() *Node {
		return Sum(Square(EmbeddingLookup(table, ids)))
	})
	checkGrad(t, []*Node{table}, func() *Node {
		return Sum(Square(EmbeddingLookupRows(table, ids)))
	})
}

func TestDenseAndMLPGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mlp := NewMLP([]int{4, 6, 3, 1}, rng, "mlp")
	x := NewConst(tensor.Randn(1, 4, 1, rng))
	checkGrad(t, mlp.Params(), func() *Node { return MSELoss(mlp.Forward(x), 2.5) })
}

func TestGCNEncoderGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	enc := NewGCNEncoder([]int{4, 5, 3}, rng)
	aHat := NewConst(NormalizeAdjacency(3, [][2]int{{0, 1}, {1, 2}}))
	feats := tensor.New(3, 4)
	feats.Set(0, 0, 1)
	feats.Set(1, 2, 1)
	feats.Set(2, 3, 1)
	nodeF := NewConst(feats)
	checkGrad(t, enc.Params(), func() *Node { return Sum(Square(enc.Forward(aHat, nodeF))) })
}

func TestCNNEncoderGradAndShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	enc := NewCNNEncoder(10, 4, []int{2, 3}, 2, 5, rng)
	ids := []int{1, 3, 5, 7, 2, -1, -1, 4}
	out := enc.Forward(ids)
	if out.Value.Rows != 1 || out.Value.Cols != 5 {
		t.Fatalf("CNN encoder output shape %dx%d, want 1x5", out.Value.Rows, out.Value.Cols)
	}
	if enc.MinLen() != 3 {
		t.Fatalf("MinLen = %d, want 3", enc.MinLen())
	}
	checkGrad(t, enc.Params(), func() *Node { return Sum(Square(enc.Forward(ids))) })
}

func TestLSTMEncoderGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	enc := NewLSTMEncoder(8, 3, 4, 16, rng)
	ids := []int{1, 4, 2, -1, 6}
	out := enc.Forward(ids)
	if out.Value.Cols != 4 {
		t.Fatalf("LSTM output width %d, want 4", out.Value.Cols)
	}
	checkGrad(t, enc.Params(), func() *Node { return Sum(Square(enc.Forward(ids))) })
}

func TestTransformerEncoderGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	enc := NewTransformerEncoder(8, 4, 2, 6, 10, rng)
	ids := []int{1, 4, 2, 6}
	out := enc.Forward(ids)
	if out.Value.Cols != 4 {
		t.Fatalf("Transformer output width %d, want 4", out.Value.Cols)
	}
	checkGrad(t, enc.Params(), func() *Node { return Sum(Square(enc.Forward(ids))) })
}

func TestLayerNormGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ln := NewLayerNorm(4, "ln")
	x := NewParam(tensor.Randn(2, 4, 1, rng), "x")
	params := append([]*Node{x}, ln.Params()...)
	checkGrad(t, params, func() *Node { return Sum(Square(ln.Forward(x))) })
}

func TestBCELossGrad(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{0.3}), "x")
	checkGrad(t, []*Node{x}, func() *Node { return BCELoss(Sigmoid(x), 1) })
	checkGrad(t, []*Node{x}, func() *Node { return BCELoss(Sigmoid(x), 0) })
}

func TestHuberLossGrad(t *testing.T) {
	x := NewParam(tensor.FromRow([]float64{0.4}), "x")
	checkGrad(t, []*Node{x}, func() *Node { return HuberLoss(x, 0.1, 1.0) })
	y := NewParam(tensor.FromRow([]float64{5.0}), "y")
	checkGrad(t, []*Node{y}, func() *Node { return HuberLoss(y, 0.1, 1.0) })
}

func TestStackRowsAndPickRowGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := NewParam(tensor.Randn(1, 3, 1, rng), "a")
	b := NewParam(tensor.Randn(1, 3, 1, rng), "b")
	checkGrad(t, []*Node{a, b}, func() *Node {
		s := StackRows([]*Node{a, b})
		return Sum(Square(PickRow(s, 1)))
	})
}

func TestMatMulBGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := NewParam(tensor.Randn(2, 3, 1, rng), "a")
	b := NewParam(tensor.Randn(4, 3, 1, rng), "b")
	checkGrad(t, []*Node{a, b}, func() *Node { return Sum(Square(MatMulB(a, b))) })
}

func TestConcatColsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := NewParam(tensor.Randn(2, 2, 1, rng), "a")
	b := NewParam(tensor.Randn(2, 3, 1, rng), "b")
	checkGrad(t, []*Node{a, b}, func() *Node { return Sum(Square(ConcatCols([]*Node{a, b}))) })
}
