package nn

// This file is the forward-only inference path of the NECS building
// blocks (DESIGN.md §12). The autograd graph in ops.go/conv.go allocates
// one Node per operation so gradients can flow; serving never needs
// gradients, so the hot path below computes the same values with plain
// tensor arithmetic — no graph nodes, no backward closures — and batches
// the tower MLP so each layer is a single GEMM over all candidates
// instead of one small matmul per candidate.
//
// Bitwise contract: every Infer* function must produce values bit-identical
// to its graph counterpart (CNNEncoder.Forward, GCNEncoder.Forward,
// MLP.ForwardHidden applied row by row). That holds because both paths
// share the exact same value kernels — conv1DMaxPoolValue,
// embeddingLookupValue, tensor.MatMulInto's per-row k-ascending
// accumulation — and the elementwise ops (bias add, ReLU) are order-free.
// TestScoreBatchBitwiseGolden in internal/core enforces the contract.

import (
	"lite/internal/tensor"
)

// Arena is a request-scoped bump allocator for inference activations.
// Alloc hands out tensors backed by one reusable slab, so a scoring pass
// performs no per-layer heap allocation after warm-up.
//
// Ownership and aliasing rules (DESIGN.md §12):
//
//   - An Arena is single-goroutine: exactly one scoring pass may use it at
//     a time. Concurrent passes take distinct arenas from a pool.
//   - Tensors returned by Alloc alias the arena's slab and are valid only
//     until the next Reset. Results that outlive the pass must be copied
//     out (the scoring kernels copy plain float64s, never arena tensors).
//   - Alloc returns UNINITIALIZED memory: callers must fully overwrite the
//     tensor (MatMulInto zeroes its output; row-fill loops write every
//     element) before reading it.
//   - Reset recycles the slab without zeroing. Alloc never returns
//     overlapping tensors between two Resets, so distinct activations
//     within one pass never alias each other.
type Arena struct {
	slab []float64
	off  int
}

// Alloc returns an uninitialized rows×cols tensor backed by the arena.
// The tensor is valid until the next Reset; see the aliasing rules above.
func (a *Arena) Alloc(rows, cols int) *tensor.Tensor {
	n := rows * cols
	if a.off+n > len(a.slab) {
		// Grow to at least double so a steady-state request shape settles
		// into zero allocations. Tensors handed out before the growth keep
		// referencing the old slab and stay valid for this pass.
		grow := 2 * len(a.slab)
		if grow < a.off+n {
			grow = a.off + n
		}
		a.slab = make([]float64, grow)
		a.off = 0
	}
	t := tensor.FromSlice(rows, cols, a.slab[a.off:a.off+n])
	a.off += n
	return t
}

// Reset recycles the arena for the next scoring pass. Every tensor handed
// out since the previous Reset becomes invalid.
func (a *Arena) Reset() { a.off = 0 }

// Cap reports the arena's current slab capacity in float64s (diagnostics
// and tests).
func (a *Arena) Cap() int { return len(a.slab) }

// reluInPlace applies ReLU elementwise in place with the exact predicate
// the graph path uses (`x > 0 ? x : 0`), so −0.0 and NaN inputs map to
// the same bits on both paths.
func reluInPlace(t *tensor.Tensor) {
	for i, v := range t.Data {
		if !(v > 0) {
			t.Data[i] = 0
		}
	}
}

// addRowBroadcastInPlace adds the 1×cols row v to every row of m in place.
func addRowBroadcastInPlace(m, v *tensor.Tensor) {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic("nn: broadcast shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, b := range v.Data {
			row[j] += b
		}
	}
}

// Infer encodes a token-id sequence into the 1×OutDim code representation
// without building an autograd graph — bitwise identical to Forward.
func (c *CNNEncoder) Infer(ids []int) *tensor.Tensor {
	emb := embeddingLookupValue(c.Embedding.Value, ids)
	pooled := make([]*tensor.Tensor, len(c.banks))
	ws := make([]*tensor.Tensor, 0, 8)
	for i, bank := range c.banks {
		ws = ws[:0]
		for _, f := range bank {
			ws = append(ws, f.Value)
		}
		v, _ := conv1DMaxPoolValue(emb, ws, c.biases[i].Value)
		pooled[i] = v
	}
	q := tensor.Concat(pooled...)
	h := tensor.AddRowBroadcast(tensor.MatMul(q, c.Proj.W.Value), c.Proj.B.Value)
	reluInPlace(h)
	return h
}

// Infer encodes a DAG into the 1×OutDim representation without building an
// autograd graph — bitwise identical to Forward.
func (g *GCNEncoder) Infer(aHat, nodeFeatures *tensor.Tensor) *tensor.Tensor {
	h := nodeFeatures
	for _, l := range g.Layers {
		h = tensor.MatMul(tensor.MatMul(aHat, h), l.W.Value)
		reluInPlace(h)
	}
	out, _ := h.ColMax()
	return out
}

// InferBatch runs the MLP forward over an n×in batch with ONE GEMM per
// layer: y_l = ReLU(X_l W_l + b_l) where X_l stacks every batch row. Row i
// of the result is bitwise identical to Forward applied to row i alone,
// because tensor.MatMulInto accumulates each output row independently over
// the shared dimension in ascending order — batching changes which rows
// share a call, never the arithmetic within a row.
//
// All activations are allocated from ar and become invalid at its next
// Reset; callers must copy the outputs they keep. InferBatch does not
// support FinalActivation (only the AMU discriminator sets it, and it
// never serves).
func (m *MLP) InferBatch(ar *Arena, x *tensor.Tensor) *tensor.Tensor {
	if m.FinalActivation != nil {
		panic("nn: InferBatch does not support FinalActivation")
	}
	h := x
	for i, l := range m.Layers {
		out := ar.Alloc(h.Rows, l.W.Value.Cols)
		tensor.MatMulInto(out, h, l.W.Value)
		addRowBroadcastInPlace(out, l.B.Value)
		if i+1 < len(m.Layers) {
			reluInPlace(out)
		}
		h = out
	}
	return h
}
