package nn

import (
	"math/rand"

	"lite/internal/tensor"
)

// LSTMEncoder encodes a token sequence with a single-layer LSTM and returns
// the final hidden state. It is the "LSTM" ablation baseline in Table VII:
// a sequence model over stage-level code tokens instead of NECS's CNN.
type LSTMEncoder struct {
	Embedding *Node
	// Gate parameters: input, forget, cell, output. Each Wx is D×H,
	// each Wh is H×H, each b is 1×H.
	Wxi, Whi, Bi *Node
	Wxf, Whf, Bf *Node
	Wxc, Whc, Bc *Node
	Wxo, Who, Bo *Node
	Hidden       int
	// MaxLen truncates input sequences to bound the unrolled graph size.
	MaxLen int
}

// NewLSTMEncoder builds the encoder with embedding width embDim and hidden
// width hidden. Sequences longer than maxLen are truncated.
func NewLSTMEncoder(vocab, embDim, hidden, maxLen int, rng *rand.Rand) *LSTMEncoder {
	p := func(r, c int, name string) *Node {
		return NewParam(tensor.XavierUniform(r, c, rng), "lstm."+name)
	}
	b := func(name string) *Node { return NewParam(tensor.New(1, hidden), "lstm."+name) }
	enc := &LSTMEncoder{
		Embedding: NewParam(tensor.Randn(vocab, embDim, 0.1, rng), "lstm.embed"),
		Wxi:       p(embDim, hidden, "Wxi"), Whi: p(hidden, hidden, "Whi"), Bi: b("Bi"),
		Wxf: p(embDim, hidden, "Wxf"), Whf: p(hidden, hidden, "Whf"), Bf: b("Bf"),
		Wxc: p(embDim, hidden, "Wxc"), Whc: p(hidden, hidden, "Whc"), Bc: b("Bc"),
		Wxo: p(embDim, hidden, "Wxo"), Who: p(hidden, hidden, "Who"), Bo: b("Bo"),
		Hidden: hidden,
		MaxLen: maxLen,
	}
	// Forget-gate bias initialized to 1, the standard trick for gradient
	// flow through long sequences.
	enc.Bf.Value.Fill(1)
	return enc
}

// Forward encodes ids (−1 entries are treated as padding and skipped) into
// the final 1×Hidden state.
func (l *LSTMEncoder) Forward(ids []int) *Node {
	if len(ids) > l.MaxLen {
		ids = ids[:l.MaxLen]
	}
	kept := ids[:0:0]
	for _, id := range ids {
		if id >= 0 {
			kept = append(kept, id)
		}
	}
	if len(kept) == 0 {
		kept = []int{0}
	}
	emb := EmbeddingLookupRows(l.Embedding, kept)
	h := NewConst(tensor.New(1, l.Hidden))
	c := NewConst(tensor.New(1, l.Hidden))
	for t := 0; t < len(kept); t++ {
		x := PickRow(emb, t)
		i := Sigmoid(gate(x, h, l.Wxi, l.Whi, l.Bi))
		f := Sigmoid(gate(x, h, l.Wxf, l.Whf, l.Bf))
		g := Tanh(gate(x, h, l.Wxc, l.Whc, l.Bc))
		o := Sigmoid(gate(x, h, l.Wxo, l.Who, l.Bo))
		c = Add(Mul(f, c), Mul(i, g))
		h = Mul(o, Tanh(c))
	}
	return h
}

func gate(x, h, wx, wh, b *Node) *Node {
	return AddRowBroadcast(Add(MatMul(x, wx), MatMul(h, wh)), b)
}

// Params returns all trainable parameters.
func (l *LSTMEncoder) Params() []*Node {
	return []*Node{
		l.Embedding,
		l.Wxi, l.Whi, l.Bi,
		l.Wxf, l.Whf, l.Bf,
		l.Wxc, l.Whc, l.Bc,
		l.Wxo, l.Who, l.Bo,
	}
}
