package nn

import (
	"fmt"
	"math"

	"lite/internal/tensor"
)

// MatMul returns a×b with gradient flow to both operands.
func MatMul(a, b *Node) *Node {
	v := tensor.MatMul(a.Value, b.Value)
	back := func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.accumGrad(tensor.MatMulTransB(g, b.Value))
		}
		if b.requiresGrad {
			b.accumGrad(tensor.MatMulTransA(a.Value, g))
		}
	}
	return newNode(v, back, a, b)
}

// Add returns a+b elementwise.
func Add(a, b *Node) *Node {
	v := tensor.Add(a.Value, b.Value)
	back := func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.accumGrad(g)
		}
		if b.requiresGrad {
			b.accumGrad(g)
		}
	}
	return newNode(v, back, a, b)
}

// Sub returns a−b elementwise.
func Sub(a, b *Node) *Node {
	v := tensor.Sub(a.Value, b.Value)
	back := func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.accumGrad(g)
		}
		if b.requiresGrad {
			b.accumGrad(tensor.Scale(g, -1))
		}
	}
	return newNode(v, back, a, b)
}

// Mul returns a⊙b (Hadamard product).
func Mul(a, b *Node) *Node {
	v := tensor.Mul(a.Value, b.Value)
	back := func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.accumGrad(tensor.Mul(g, b.Value))
		}
		if b.requiresGrad {
			b.accumGrad(tensor.Mul(g, a.Value))
		}
	}
	return newNode(v, back, a, b)
}

// Scale returns s·a.
func Scale(a *Node, s float64) *Node {
	v := tensor.Scale(a.Value, s)
	back := func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.accumGrad(tensor.Scale(g, s))
		}
	}
	return newNode(v, back, a)
}

// AddRowBroadcast adds the 1×n bias row b to every row of m.
func AddRowBroadcast(m, b *Node) *Node {
	v := tensor.AddRowBroadcast(m.Value, b.Value)
	back := func(g *tensor.Tensor) {
		if m.requiresGrad {
			m.accumGrad(g)
		}
		if b.requiresGrad {
			gb := tensor.New(1, g.Cols)
			for i := 0; i < g.Rows; i++ {
				row := g.RowView(i)
				for j, gv := range row {
					gb.Data[j] += gv
				}
			}
			b.accumGrad(gb)
		}
	}
	return newNode(v, back, m, b)
}

// ReLU applies max(0,x) elementwise.
func ReLU(a *Node) *Node {
	v := tensor.Apply(a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(g.Rows, g.Cols)
		for i, x := range a.Value.Data {
			if x > 0 {
				gi.Data[i] = g.Data[i]
			}
		}
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// LeakyReLU applies max(αx, x) elementwise.
func LeakyReLU(a *Node, alpha float64) *Node {
	v := tensor.Apply(a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return alpha * x
	})
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(g.Rows, g.Cols)
		for i, x := range a.Value.Data {
			if x > 0 {
				gi.Data[i] = g.Data[i]
			} else {
				gi.Data[i] = alpha * g.Data[i]
			}
		}
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Node) *Node {
	v := tensor.Apply(a.Value, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(g.Rows, g.Cols)
		for i, s := range v.Data {
			gi.Data[i] = g.Data[i] * s * (1 - s)
		}
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// Tanh applies tanh elementwise.
func Tanh(a *Node) *Node {
	v := tensor.Apply(a.Value, math.Tanh)
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(g.Rows, g.Cols)
		for i, t := range v.Data {
			gi.Data[i] = g.Data[i] * (1 - t*t)
		}
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// Concat concatenates 1×n row-vector nodes into a single 1×Σn row vector.
func Concat(parts ...*Node) *Node {
	vals := make([]*tensor.Tensor, len(parts))
	for i, p := range parts {
		if p.Value.Rows != 1 {
			panic("nn: Concat expects 1×n row vectors")
		}
		vals[i] = p.Value
	}
	v := tensor.Concat(vals...)
	back := func(g *tensor.Tensor) {
		off := 0
		for _, p := range parts {
			w := p.Value.Cols
			if p.requiresGrad {
				gp := tensor.New(1, w)
				copy(gp.Data, g.Data[off:off+w])
				p.accumGrad(gp)
			}
			off += w
		}
	}
	return newNode(v, back, parts...)
}

// Slice returns columns [lo,hi) of a 1×n row vector as a 1×(hi−lo) node.
func Slice(a *Node, lo, hi int) *Node {
	if a.Value.Rows != 1 {
		panic("nn: Slice expects a 1×n row vector")
	}
	if lo < 0 || hi > a.Value.Cols || lo >= hi {
		panic(fmt.Sprintf("nn: Slice bounds [%d,%d) out of range for width %d", lo, hi, a.Value.Cols))
	}
	v := tensor.New(1, hi-lo)
	copy(v.Data, a.Value.Data[lo:hi])
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(1, a.Value.Cols)
		copy(gi.Data[lo:hi], g.Data)
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// Sum reduces all elements to a 1×1 scalar.
func Sum(a *Node) *Node {
	v := tensor.New(1, 1)
	v.Data[0] = a.Value.Sum()
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(a.Value.Rows, a.Value.Cols)
		gi.Fill(g.Data[0])
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// Mean reduces all elements to their mean as a 1×1 scalar.
func Mean(a *Node) *Node {
	n := float64(a.Value.Size())
	v := tensor.New(1, 1)
	v.Data[0] = a.Value.Sum() / n
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(a.Value.Rows, a.Value.Cols)
		gi.Fill(g.Data[0] / n)
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// Square squares elementwise.
func Square(a *Node) *Node {
	v := tensor.Apply(a.Value, func(x float64) float64 { return x * x })
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(g.Rows, g.Cols)
		for i, x := range a.Value.Data {
			gi.Data[i] = 2 * x * g.Data[i]
		}
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// ColMaxPool reduces an m×n node to a 1×n row of per-column maxima (used
// as the GCN read-out in NECS).
func ColMaxPool(a *Node) *Node {
	v, arg := a.Value.ColMax()
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(a.Value.Rows, a.Value.Cols)
		for j := 0; j < a.Value.Cols; j++ {
			gi.Set(arg[j], j, g.Data[j])
		}
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// RowMeanPool reduces an m×n node to the 1×n mean over rows.
func RowMeanPool(a *Node) *Node {
	m := float64(a.Value.Rows)
	v := tensor.New(1, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.RowView(i)
		for j, x := range row {
			v.Data[j] += x / m
		}
	}
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(a.Value.Rows, a.Value.Cols)
		for i := 0; i < a.Value.Rows; i++ {
			row := gi.RowView(i)
			for j := range row {
				row[j] = g.Data[j] / m
			}
		}
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// GradReverse is the gradient-reversal operation from adversarial domain
// adaptation: identity on the forward pass, −λ·grad on the backward pass.
// Adaptive Model Update uses it to train NECS to *fool* the domain
// discriminator while the discriminator itself is trained normally.
func GradReverse(a *Node, lambda float64) *Node {
	v := a.Value.Clone()
	back := func(g *tensor.Tensor) {
		if a.requiresGrad {
			a.accumGrad(tensor.Scale(g, -lambda))
		}
	}
	return newNode(v, back, a)
}

// SoftmaxRows applies a numerically-stable softmax independently to each row.
func SoftmaxRows(a *Node) *Node {
	v := tensor.New(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		in := a.Value.RowView(i)
		out := v.RowView(i)
		max := math.Inf(-1)
		for _, x := range in {
			if x > max {
				max = x
			}
		}
		var sum float64
		for j, x := range in {
			e := math.Exp(x - max)
			out[j] = e
			sum += e
		}
		for j := range out {
			out[j] /= sum
		}
	}
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(g.Rows, g.Cols)
		for i := 0; i < g.Rows; i++ {
			s := v.RowView(i)
			gr := g.RowView(i)
			var dot float64
			for j := range s {
				dot += s[j] * gr[j]
			}
			out := gi.RowView(i)
			for j := range s {
				out[j] = s[j] * (gr[j] - dot)
			}
		}
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}

// StackRows stacks k 1×n row-vector nodes into a k×n node.
func StackRows(rows []*Node) *Node {
	if len(rows) == 0 {
		panic("nn: StackRows on empty slice")
	}
	n := rows[0].Value.Cols
	v := tensor.New(len(rows), n)
	for i, r := range rows {
		if r.Value.Rows != 1 || r.Value.Cols != n {
			panic("nn: StackRows shape mismatch")
		}
		copy(v.RowView(i), r.Value.Data)
	}
	back := func(g *tensor.Tensor) {
		for i, r := range rows {
			if !r.requiresGrad {
				continue
			}
			gr := tensor.New(1, n)
			copy(gr.Data, g.RowView(i))
			r.accumGrad(gr)
		}
	}
	return newNode(v, back, rows...)
}

// PickRow extracts row i of a matrix node as a 1×n node.
func PickRow(a *Node, i int) *Node {
	v := tensor.New(1, a.Value.Cols)
	copy(v.Data, a.Value.RowView(i))
	back := func(g *tensor.Tensor) {
		if !a.requiresGrad {
			return
		}
		gi := tensor.New(a.Value.Rows, a.Value.Cols)
		copy(gi.RowView(i), g.Data)
		a.accumGrad(gi)
	}
	return newNode(v, back, a)
}
