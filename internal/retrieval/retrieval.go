// Package retrieval implements the zero-execution cold-start store: an
// in-memory index of historical tuples
//
//	(code-token embedding, stage-DAG signature, datasize bucket,
//	 environment fingerprint)  →  best-known config and measured seconds
//
// populated from the offline training dataset and from live promoted
// feedback, with an approximate-nearest-neighbour index in pure Go.
// Serving an application the model has never trained on then costs one
// embedding plus one sub-millisecond Lookup — retrieve the most similar
// historical application and adapt its best-known configuration — instead
// of a simulator execution or a 400 (see PAPERS.md, "Zero-Execution
// Retrieval-Augmented Configuration Tuning of Spark Applications").
//
// Index structure: embeddings are L2-normalized hashed bags of code tokens
// and DAG-operation labels, clustered into k ≈ √n centroids; a Lookup
// scores the query against the centroids and scans only the nearest
// clusters (inverted-list probing), so cost is O(k·D + n/k·D), not O(n·D).
// The index lives behind an atomic pointer: Lookup is lock-free, Add
// performs a copy-on-write insertion into the nearest cluster, and a full
// recluster+compaction rebuild is published as a hot-swap once enough
// entries accumulate — concurrent Lookups keep reading the previous index.
//
// The package sits below internal/core in the import graph (it depends
// only on sparksim, feature and instrument), so core can wire the store in
// as the degradation tier between "necs" and "acg-region".
package retrieval

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"lite/internal/feature"
	"lite/internal/instrument"
	"lite/internal/sparksim"
)

// Embedding layout: code tokens hash into the first codeDim slots, DAG
// operation labels into the remaining opDim slots. Ops get their own block
// (and a weight boost, below) because the op multiset is the stage-DAG
// signature — two apps sharing reduceByKey/treeAggregate structure should
// be neighbours even when their identifier spellings differ.
const (
	codeDim = 96
	opDim   = 32

	// Dim is the embedding dimensionality every entry and query must use.
	Dim = codeDim + opDim

	// opWeight scales DAG-op counts relative to code-token counts before
	// normalization (ops are few but structurally decisive).
	opWeight = 2.0
)

// DefaultMinSimilarity is the cosine floor below which a Lookup reports a
// miss: a neighbour less similar than this is more likely to mislead than
// the safe default is to disappoint.
const DefaultMinSimilarity = 0.30

// Embed builds the L2-normalized embedding of an application from its code
// tokens and DAG operation labels. Counts are square-root damped so one
// hot token (a common loop variable, a repeated stage) cannot dominate the
// direction of the vector.
func Embed(codeTokens, ops []string) []float64 {
	v := make([]float64, Dim)
	for _, t := range codeTokens {
		v[hashSlot(t, codeDim)]++
	}
	for _, op := range ops {
		v[codeDim+hashSlot(op, opDim)] += opWeight
	}
	var norm float64
	for i, x := range v {
		x = math.Sqrt(x)
		v[i] = x
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// EmbedCode is Embed over raw source code: the code is tokenized with the
// same tokenizer the NECS vocabulary uses (identifiers and literals,
// case-preserved). This is the entry point for wire requests that carry a
// never-seen application's stage code.
func EmbedCode(code string, ops []string) []float64 {
	return Embed(feature.Tokenize(code), ops)
}

// EmbedApp embeds a full application specification: the concatenation of
// every stage's expanded code and every stage's DAG operations.
func EmbedApp(spec *sparksim.AppSpec) []float64 {
	var toks, ops []string
	for i := range spec.Stages {
		st := &spec.Stages[i]
		toks = append(toks, feature.Tokenize(st.Code)...)
		ops = append(ops, st.Ops...)
	}
	return Embed(toks, ops)
}

// hashSlot maps a string into [0, mod) with FNV-1a.
func hashSlot(s string, mod int) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int(h.Sum32() % uint32(mod))
}

// EnvFingerprint identifies an environment for retrieval keying: the full
// hardware profile plus every fault-profile knob. Fingerprinting the
// actual fault parameters (not a bare "faults" flag) keeps entries
// measured under different fault intensities from aliasing.
func EnvFingerprint(env sparksim.Environment) string {
	fp := fmt.Sprintf("%s|%dx%d|%.1fGHz|%.0fGB|%.0fMTs|%.0fGbps",
		env.Name, env.Nodes, env.Cores, env.FreqGHz, env.MemGB, env.MemSpeedMTs, env.NetGbps)
	if f := env.Faults; f.Active() {
		fp += fmt.Sprintf("|faults:%g/%g/%g/%g/%g/%d/%d/%d",
			f.TaskFailureProb, f.ExecutorLossRate, f.FetchFailureRate,
			f.StragglerProb, f.StragglerMult, f.MaxTaskFailures, f.MaxStageAttempts, f.Seed)
	}
	return fp
}

// SizeBucket quantizes a datasize into its power-of-two megabyte bucket,
// the same quantization the serving cache uses: entries measured at 900 MB
// and 1000 MB share a bucket, 1 GB and 100 GB do not.
func SizeBucket(sizeMB float64) int {
	if sizeMB <= 1 {
		return 0
	}
	b := 0
	for v := sizeMB; v > 1; v /= 2 {
		b++
	}
	return b
}

// Entry is one historical tuple. Embedding must be produced by Embed (or
// left nil to be computed by AddRun); Seconds is the measured application
// execution time under Config.
type Entry struct {
	// App is the application the tuple was measured on (display only; the
	// embedding, not the name, drives matching).
	App string
	// Embedding is the L2-normalized Dim-dimensional vector from Embed.
	Embedding []float64
	// SizeMB is the datasize the config was measured at.
	SizeMB float64
	// EnvFP is the environment fingerprint from EnvFingerprint.
	EnvFP string
	// Config is the best-known configuration for this key.
	Config sparksim.Config
	// Seconds is the measured execution time of Config.
	Seconds float64
}

// key is the dedup identity: one best-known entry per (app, datasize
// bucket, environment).
func (e *Entry) key() string {
	return fmt.Sprintf("%s|b%d|%s", e.App, SizeBucket(e.SizeMB), e.EnvFP)
}

// Result is a Lookup answer: the winning entry plus its cosine similarity
// to the query.
type Result struct {
	Entry
	// Similarity is the cosine similarity in [−1, 1] (embeddings are
	// non-negative, so effectively [0, 1]).
	Similarity float64
}

// Query is one Lookup request.
type Query struct {
	// Embedding is the query vector from Embed/EmbedApp/EmbedCode.
	Embedding []float64
	// SizeMB is the caller's datasize; nearer buckets rank higher among
	// equally similar neighbours.
	SizeMB float64
	// EnvFP is the caller's environment fingerprint; same-environment
	// neighbours rank higher among equally similar ones.
	EnvFP string
	// MinSimilarity overrides DefaultMinSimilarity when positive.
	MinSimilarity float64
}

// Store is the concurrent retrieval store. Lookup is lock-free (it reads
// an immutable index snapshot through an atomic pointer) and safe to call
// from any number of goroutines concurrently with Add; Add and rebuilds
// serialize on an internal mutex.
type Store struct {
	mu sync.Mutex
	// entries is append-only under mu; stale (superseded) entries are
	// pruned at the next full rebuild.
	entries []*Entry
	// best maps entry key → index of the current best entry in entries.
	best map[string]int
	// sinceRebuild counts copy-on-write insertions since the last full
	// recluster; rebuilds compact and recluster once it exceeds a fraction
	// of the index size.
	sinceRebuild int

	idx atomic.Pointer[index]
}

// index is one immutable published snapshot: the entry set with inverted
// cluster lists. Readers never mutate it; writers publish a replacement.
type index struct {
	entries   []*Entry
	centroids [][]float64
	clusters  [][]int32
}

// New returns an empty store.
func New() *Store {
	s := &Store{best: map[string]int{}}
	s.idx.Store(&index{})
	return s
}

// FromEntries bulk-loads a store: entries are deduplicated to the best
// (lowest Seconds) per (app, size bucket, env) key and clustered once.
// Entries with missing or mis-sized embeddings are dropped.
func FromEntries(entries []Entry) *Store {
	s := New()
	s.mu.Lock()
	for i := range entries {
		e := entries[i]
		if len(e.Embedding) != Dim {
			continue
		}
		s.insertLocked(&e)
	}
	s.rebuildLocked()
	s.mu.Unlock()
	return s
}

// BuildFromRuns builds a store from instrumented application runs (the
// offline training dataset): failed runs are skipped, and each (app, size
// bucket, env) keeps the configuration with the lowest measured seconds.
func BuildFromRuns(runs []instrument.AppInstance) *Store {
	embCache := map[string][]float64{}
	entries := make([]Entry, 0, len(runs))
	for i := range runs {
		run := &runs[i]
		if run.Result.Failed || len(run.Stages) == 0 {
			continue
		}
		emb, ok := embCache[run.AppName]
		if !ok {
			emb = embedStages(run.Stages)
			embCache[run.AppName] = emb
		}
		entries = append(entries, Entry{
			App:       run.AppName,
			Embedding: emb,
			SizeMB:    run.Data.SizeMB,
			EnvFP:     EnvFingerprint(run.Env),
			Config:    run.Config,
			Seconds:   run.Result.Seconds,
		})
	}
	return FromEntries(entries)
}

// embedStages embeds the stage set of one run (stage codes + DAG ops).
// Stages repeated by loop expansion (iterative apps run the same stage N
// times) are counted once, so a run's embedding matches EmbedApp over the
// static specification and live-feedback entries stay comparable to
// spec-embedded queries.
func embedStages(stages []instrument.StageInstance) []float64 {
	var toks, ops []string
	seen := map[int]bool{}
	for i := range stages {
		st := &stages[i]
		if seen[st.StageIndex] {
			continue
		}
		seen[st.StageIndex] = true
		toks = append(toks, feature.Tokenize(st.Code)...)
		ops = append(ops, st.Ops...)
	}
	return Embed(toks, ops)
}

// AddRun folds one executed run into the store (the live promoted-feedback
// path): failed runs are ignored, and a run slower than the current
// best-known entry for its key is a no-op.
func (s *Store) AddRun(run instrument.AppInstance) {
	if run.Result.Failed || len(run.Stages) == 0 {
		return
	}
	s.Add(Entry{
		App:       run.AppName,
		Embedding: embedStages(run.Stages),
		SizeMB:    run.Data.SizeMB,
		EnvFP:     EnvFingerprint(run.Env),
		Config:    run.Config,
		Seconds:   run.Result.Seconds,
	})
}

// Add inserts one entry, keeping only the best (lowest Seconds) per (app,
// size bucket, env) key. The published index is updated copy-on-write so
// concurrent Lookups never block; a full recluster is published once
// enough insertions accumulate.
func (s *Store) Add(e Entry) {
	if len(e.Embedding) != Dim {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.insertLocked(&e) {
		return
	}
	s.sinceRebuild++
	cur := s.idx.Load()
	if s.sinceRebuild >= rebuildThreshold(len(cur.entries)) {
		s.rebuildLocked()
		return
	}
	s.publishInsertLocked(cur, &e)
}

// rebuildThreshold is how many copy-on-write insertions are tolerated
// before a full compaction+recluster: a quarter of the index (so rebuild
// work amortizes to O(1) per insert), floored at 64.
func rebuildThreshold(n int) int {
	if n < 256 {
		return 64
	}
	return n / 4
}

// insertLocked records e as the best entry for its key. Returns false when
// the existing best is at least as good (the store is unchanged).
func (s *Store) insertLocked(e *Entry) bool {
	k := e.key()
	if i, ok := s.best[k]; ok && s.entries[i].Seconds <= e.Seconds {
		return false
	}
	s.entries = append(s.entries, e)
	s.best[k] = len(s.entries) - 1
	return true
}

// publishInsertLocked publishes a copy-on-write index with e appended to
// its nearest cluster. Only the touched cluster's list and the cluster
// table are copied; centroids and all other lists are shared with the
// previous snapshot, which concurrent Lookups may still be reading.
func (s *Store) publishInsertLocked(cur *index, e *Entry) {
	next := &index{
		entries:   append(cur.entries[:len(cur.entries):len(cur.entries)], e),
		centroids: cur.centroids,
	}
	if len(cur.centroids) == 0 {
		// Pre-clustering regime: a single implicit cluster would be scanned
		// anyway; leave clusters nil and let Lookup fall back to a full scan.
		s.idx.Store(next)
		return
	}
	ci := nearestCentroid(cur.centroids, e.Embedding)
	next.clusters = make([][]int32, len(cur.clusters))
	copy(next.clusters, cur.clusters)
	old := cur.clusters[ci]
	next.clusters[ci] = append(old[:len(old):len(old)], int32(len(next.entries)-1))
	s.idx.Store(next)
}

// rebuildLocked compacts the entry set to the current best per key,
// reclusters it, and atomically publishes the new index.
func (s *Store) rebuildLocked() {
	compact := make([]*Entry, 0, len(s.best))
	for _, i := range s.best {
		compact = append(compact, s.entries[i])
	}
	// Re-anchor the canonical state on the compacted set so entries does
	// not grow without bound across rebuild cycles.
	s.entries = compact
	s.best = make(map[string]int, len(compact))
	for i, e := range compact {
		s.best[e.key()] = i
	}
	s.sinceRebuild = 0
	s.idx.Store(buildIndex(compact))
}

// Rebuild forces a compaction and recluster immediately (tests and bulk
// loaders; Add triggers rebuilds automatically otherwise).
func (s *Store) Rebuild() {
	s.mu.Lock()
	s.rebuildLocked()
	s.mu.Unlock()
}

// Len reports the number of live (best-per-key) entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.best)
}

// clusterCount picks k ≈ √n, bounded to keep both the centroid scan and
// the per-cluster scans small.
func clusterCount(n int) int {
	k := int(math.Sqrt(float64(n)))
	if k < 1 {
		k = 1
	}
	if k > 64 {
		k = 64
	}
	return k
}

// buildIndex clusters the entries with a few deterministic k-means rounds
// (evenly spaced seeds, 3 Lloyd iterations — the index is approximate by
// contract, so cheap clustering beats converged clustering).
func buildIndex(entries []*Entry) *index {
	ix := &index{entries: entries}
	n := len(entries)
	if n == 0 {
		return ix
	}
	k := clusterCount(n)
	centroids := make([][]float64, k)
	for c := 0; c < k; c++ {
		centroids[c] = append([]float64(nil), entries[c*n/k].Embedding...)
	}
	assign := make([]int, n)
	for iter := 0; iter < 3; iter++ {
		for i, e := range entries {
			assign[i] = nearestCentroid(centroids, e.Embedding)
		}
		counts := make([]int, k)
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, e := range entries {
			c := assign[i]
			counts[c]++
			for j, x := range e.Embedding {
				centroids[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an emptied centroid on a spread-out entry so k
				// stays effective.
				copy(centroids[c], entries[(c*7+1)%n].Embedding)
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	ix.centroids = centroids
	ix.clusters = make([][]int32, k)
	for i := range entries {
		c := assign[i]
		ix.clusters[c] = append(ix.clusters[c], int32(i))
	}
	return ix
}

func nearestCentroid(centroids [][]float64, v []float64) int {
	best, bestDot := 0, math.Inf(-1)
	for c, cent := range centroids {
		if d := dot(cent, v); d > bestDot {
			best, bestDot = c, d
		}
	}
	return best
}

func dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// probeClusters is how many nearest clusters a Lookup scans. Two probes
// recover the overwhelming share of true neighbours at roughly 2n/k
// scanned entries.
const probeClusters = 2

// Ranking bonuses: among comparably similar neighbours, prefer one
// measured on the same environment and at a nearby datasize. The bonuses
// are small so they order candidates, never outvote real similarity.
const (
	sameEnvBonus     = 0.02
	sizeBucketPenaly = 0.005
)

// Lookup returns the most similar entry above the similarity floor.
// It is lock-free and safe to call concurrently with Add and rebuilds.
func (s *Store) Lookup(q Query) (Result, bool) {
	if len(q.Embedding) != Dim {
		return Result{}, false
	}
	ix := s.idx.Load()
	if len(ix.entries) == 0 {
		return Result{}, false
	}
	minSim := q.MinSimilarity
	if minSim <= 0 {
		minSim = DefaultMinSimilarity
	}
	qBucket := SizeBucket(q.SizeMB)

	var best *Entry
	bestSim, bestScore := 0.0, math.Inf(-1)
	scan := func(e *Entry) {
		sim := dot(e.Embedding, q.Embedding)
		score := sim
		if e.EnvFP == q.EnvFP {
			score += sameEnvBonus
		}
		score -= sizeBucketPenaly * math.Abs(float64(SizeBucket(e.SizeMB)-qBucket))
		// Deterministic tie-break: among equal scores prefer the faster
		// measured entry (duplicate keys between rebuilds resolve to the
		// best-known config).
		if score > bestScore || (score == bestScore && best != nil && e.Seconds < best.Seconds) {
			best, bestSim, bestScore = e, sim, score
		}
	}

	if len(ix.centroids) == 0 {
		for _, e := range ix.entries {
			scan(e)
		}
	} else {
		for _, c := range topCentroids(ix.centroids, q.Embedding, probeClusters) {
			for _, i := range ix.clusters[c] {
				scan(ix.entries[i])
			}
		}
	}
	if best == nil || bestSim < minSim {
		return Result{}, false
	}
	return Result{Entry: *best, Similarity: bestSim}, true
}

// topCentroids returns the indices of the p centroids most similar to v.
func topCentroids(centroids [][]float64, v []float64, p int) []int {
	if p > len(centroids) {
		p = len(centroids)
	}
	type cd struct {
		c int
		d float64
	}
	top := make([]cd, 0, p)
	for c, cent := range centroids {
		d := dot(cent, v)
		if len(top) < p {
			top = append(top, cd{c, d})
		} else {
			// Replace the current worst if this one is better.
			worst := 0
			for i := 1; i < len(top); i++ {
				if top[i].d < top[worst].d {
					worst = i
				}
			}
			if d > top[worst].d {
				top[worst] = cd{c, d}
			}
		}
	}
	out := make([]int, len(top))
	for i, t := range top {
		out[i] = t.c
	}
	return out
}

// Adapt rescales a neighbour's configuration from the datasize it was
// measured at to the caller's datasize: the throughput-bearing knobs
// (partitions, executors, partition bytes) scale sub-linearly with the
// data ratio, everything else transfers as-is, and the result is clamped
// back into the legal knob domains. Callers should additionally force the
// result feasible for their environment (core.ForceFeasible).
func Adapt(cfg sparksim.Config, fromMB, toMB float64) sparksim.Config {
	if fromMB <= 0 || toMB <= 0 {
		return cfg.Clamp()
	}
	ratio := toMB / fromMB
	s := math.Sqrt(ratio)
	cfg[sparksim.KnobDefaultParallelism] *= s
	cfg[sparksim.KnobExecutorInstances] *= s
	cfg[sparksim.KnobFilesMaxPartitionBytes] *= math.Sqrt(s)
	return cfg.Clamp()
}
