package retrieval

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// testEntry fabricates an entry whose embedding comes from a synthetic
// token vocabulary seeded by family, so same-family entries are similar
// and cross-family entries are not.
func testEntry(family string, variant int, sizeMB float64, envFP string, seconds float64) Entry {
	toks := make([]string, 0, 40)
	for i := 0; i < 30; i++ {
		toks = append(toks, fmt.Sprintf("%s_tok%d", family, i))
	}
	for i := 0; i < 10; i++ {
		toks = append(toks, fmt.Sprintf("%s_v%d_%d", family, variant, i))
	}
	ops := []string{family + "_map", family + "_reduce"}
	cfg := sparksim.DefaultConfig()
	return Entry{
		App:       fmt.Sprintf("%s-%d", family, variant),
		Embedding: Embed(toks, ops),
		SizeMB:    sizeMB,
		EnvFP:     envFP,
		Config:    cfg,
		Seconds:   seconds,
	}
}

func TestEmbedNormalized(t *testing.T) {
	v := Embed([]string{"a", "b", "c", "a"}, []string{"map", "reduce"})
	if len(v) != Dim {
		t.Fatalf("Embed dim = %d, want %d", len(v), Dim)
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("Embed norm² = %g, want 1", norm)
	}
	if len(Embed(nil, nil)) != Dim {
		t.Fatalf("empty Embed should still have dim %d", Dim)
	}
}

func TestLookupFindsNearestFamily(t *testing.T) {
	var entries []Entry
	for _, fam := range []string{"wordcount", "kmeans", "pagerank", "join"} {
		for v := 0; v < 5; v++ {
			entries = append(entries, testEntry(fam, v, 1024, "envA", 100+float64(v)))
		}
	}
	s := FromEntries(entries)
	q := testEntry("kmeans", 99, 1024, "envA", 0)
	res, ok := s.Lookup(Query{Embedding: q.Embedding, SizeMB: 1024, EnvFP: "envA"})
	if !ok {
		t.Fatal("Lookup missed on a store containing the same family")
	}
	if got := res.App; len(got) < 6 || got[:6] != "kmeans" {
		t.Fatalf("Lookup returned %q (sim %.3f), want a kmeans entry", got, res.Similarity)
	}
	if res.Similarity <= DefaultMinSimilarity {
		t.Fatalf("same-family similarity %.3f should clear the floor", res.Similarity)
	}
}

func TestLookupEmptyStoreMisses(t *testing.T) {
	s := New()
	q := testEntry("wordcount", 0, 512, "envA", 0)
	if _, ok := s.Lookup(Query{Embedding: q.Embedding, SizeMB: 512, EnvFP: "envA"}); ok {
		t.Fatal("empty store must report a miss")
	}
	// Mis-sized embeddings must miss, not panic.
	if _, ok := s.Lookup(Query{Embedding: []float64{1, 2, 3}}); ok {
		t.Fatal("mis-sized embedding must report a miss")
	}
}

func TestLookupHonoursSimilarityFloor(t *testing.T) {
	s := FromEntries([]Entry{testEntry("wordcount", 0, 512, "envA", 50)})
	// A disjoint vocabulary yields near-zero cosine: below any sane floor.
	q := testEntry("totallydifferent", 0, 512, "envA", 0)
	if res, ok := s.Lookup(Query{Embedding: q.Embedding, SizeMB: 512, EnvFP: "envA"}); ok {
		t.Fatalf("dissimilar query should miss, got %q sim %.3f", res.App, res.Similarity)
	}
}

func TestBestPerKeyDedup(t *testing.T) {
	e1 := testEntry("wordcount", 0, 1024, "envA", 200)
	e2 := e1
	e2.Seconds = 80 // same key, faster config
	e3 := e1
	e3.Seconds = 300 // same key, slower — must lose
	s := FromEntries([]Entry{e1, e2, e3})
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after best-per-key dedup", s.Len())
	}
	res, ok := s.Lookup(Query{Embedding: e1.Embedding, SizeMB: 1024, EnvFP: "envA"})
	if !ok || res.Seconds != 80 {
		t.Fatalf("Lookup = (%v, %v), want the 80s entry", res.Seconds, ok)
	}

	// Add follows the same rule: a slower duplicate is a no-op, a faster
	// one replaces, even through copy-on-write inserts.
	slower := e1
	slower.Seconds = 500
	s.Add(slower)
	if res, _ := s.Lookup(Query{Embedding: e1.Embedding, SizeMB: 1024, EnvFP: "envA"}); res.Seconds != 80 {
		t.Fatalf("slower Add replaced the best entry (now %vs)", res.Seconds)
	}
	faster := e1
	faster.Seconds = 40
	s.Add(faster)
	if res, _ := s.Lookup(Query{Embedding: e1.Embedding, SizeMB: 1024, EnvFP: "envA"}); res.Seconds != 40 {
		t.Fatalf("faster Add did not replace the best entry (still %vs)", res.Seconds)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replacement", s.Len())
	}
}

func TestSameEnvPreferredAmongEqualEmbeddings(t *testing.T) {
	a := testEntry("wordcount", 0, 1024, "envA", 100)
	b := a
	b.App = "wordcount-b" // distinct key so both survive dedup
	b.EnvFP = "envB"
	s := FromEntries([]Entry{a, b})
	res, ok := s.Lookup(Query{Embedding: a.Embedding, SizeMB: 1024, EnvFP: "envB"})
	if !ok || res.EnvFP != "envB" {
		t.Fatalf("Lookup preferred %q, want the same-env entry", res.EnvFP)
	}
}

func TestBuildFromRunsSkipsFailed(t *testing.T) {
	apps := workload.All()
	app := apps[0].Spec
	env := sparksim.ClusterC
	data := app.MakeData(512)
	good := instrument.Run(app, data, env, sparksim.DefaultConfig())
	if good.Result.Failed {
		t.Skip("default config unexpectedly failed in the simulator")
	}
	bad := good
	bad.Result.Failed = true
	s := BuildFromRuns([]instrument.AppInstance{bad})
	if s.Len() != 0 {
		t.Fatalf("failed run was indexed (Len=%d)", s.Len())
	}
	s = BuildFromRuns([]instrument.AppInstance{good})
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	res, ok := s.Lookup(Query{Embedding: EmbedApp(app), SizeMB: 512, EnvFP: EnvFingerprint(env)})
	if !ok {
		t.Fatal("self-lookup missed")
	}
	if res.Similarity < 0.999 {
		t.Fatalf("self-similarity %.4f, want ≈1 (EmbedApp vs embedStages drift)", res.Similarity)
	}
}

func TestAdaptScalesSizeKnobs(t *testing.T) {
	cfg := sparksim.DefaultConfig()
	before := cfg
	out := Adapt(cfg, 1024, 4096) // 4× data → 2× parallelism knobs
	if out[sparksim.KnobDefaultParallelism] <= before[sparksim.KnobDefaultParallelism] {
		t.Fatalf("parallelism did not scale up: %g → %g",
			before[sparksim.KnobDefaultParallelism], out[sparksim.KnobDefaultParallelism])
	}
	if out[sparksim.KnobExecutorInstances] <= before[sparksim.KnobExecutorInstances] {
		t.Fatalf("executors did not scale up: %g → %g",
			before[sparksim.KnobExecutorInstances], out[sparksim.KnobExecutorInstances])
	}
	// Non-size knobs transfer untouched.
	for i := range out {
		if i == sparksim.KnobDefaultParallelism || i == sparksim.KnobExecutorInstances ||
			i == sparksim.KnobFilesMaxPartitionBytes {
			continue
		}
		if out[i] != before[i] {
			t.Fatalf("knob %d changed %g → %g; Adapt must only touch size knobs", i, before[i], out[i])
		}
	}
	// Extreme ratios stay inside the legal knob domains.
	huge := Adapt(cfg, 1, 1<<30)
	for i, k := range sparksim.Knobs {
		if huge[i] < k.Min || huge[i] > k.Max {
			t.Fatalf("knob %s out of range after extreme Adapt: %g ∉ [%g, %g]", k.Name, huge[i], k.Min, k.Max)
		}
	}
	// Degenerate sizes are a clamp-only no-op, not a NaN factory.
	same := Adapt(cfg, 0, 1024)
	for i := range same {
		if math.IsNaN(same[i]) || math.IsInf(same[i], 0) {
			t.Fatalf("Adapt with zero fromMB produced non-finite knob %d", i)
		}
	}
}

func TestEnvFingerprintDistinguishesFaultProfiles(t *testing.T) {
	env := sparksim.ClusterC
	p1 := &sparksim.FaultProfile{TaskFailureProb: 0.01, StragglerProb: 0.05, StragglerMult: 3, MaxTaskFailures: 4, MaxStageAttempts: 2, Seed: 1}
	p2 := &sparksim.FaultProfile{TaskFailureProb: 0.20, StragglerProb: 0.05, StragglerMult: 3, MaxTaskFailures: 4, MaxStageAttempts: 2, Seed: 1}
	fp0 := EnvFingerprint(env)
	fp1 := EnvFingerprint(env.WithFaults(p1))
	fp2 := EnvFingerprint(env.WithFaults(p2))
	if fp0 == fp1 || fp1 == fp2 || fp0 == fp2 {
		t.Fatalf("fingerprints collapsed: %q / %q / %q", fp0, fp1, fp2)
	}
}

func TestSizeBucketPowersOfTwo(t *testing.T) {
	cases := map[float64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 1000: 10, 1024: 10, 1025: 11}
	for size, want := range cases {
		if got := SizeBucket(size); got != want {
			t.Fatalf("SizeBucket(%g) = %d, want %d", size, got, want)
		}
	}
}

// TestConcurrentLookupDuringRebuild hammers lock-free Lookups while Adds
// force copy-on-write inserts and full recluster hot-swaps. Run under
// -race this is the index hot-swap safety test.
func TestConcurrentLookupDuringRebuild(t *testing.T) {
	families := []string{"wordcount", "kmeans", "pagerank", "join", "sort"}
	var seedEntries []Entry
	for _, fam := range families {
		for v := 0; v < 20; v++ {
			seedEntries = append(seedEntries, testEntry(fam, v, 1024, "envA", 100+float64(v)))
		}
	}
	s := FromEntries(seedEntries)

	queries := make([][]float64, len(families))
	for i, fam := range families {
		queries[i] = testEntry(fam, 0, 1024, "envA", 0).Embedding
	}

	const writers, readers, iters = 2, 4, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Enough inserts to cross the rebuild threshold repeatedly.
			for i := 0; i < iters; i++ {
				fam := families[rng.Intn(len(families))]
				s.Add(testEntry(fam, 1000+w*1000+i, 1024, "envA", 50+rng.Float64()*100))
				if i%100 == 99 {
					s.Rebuild()
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 4*iters; i++ {
				q := queries[(r+i)%len(queries)]
				res, ok := s.Lookup(Query{Embedding: q, SizeMB: 1024, EnvFP: "envA"})
				if ok && len(res.Embedding) != Dim {
					t.Errorf("torn result: embedding dim %d", len(res.Embedding))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got := s.Len(); got < len(seedEntries) {
		t.Fatalf("Len = %d after concurrent adds, want ≥ %d", got, len(seedEntries))
	}
}
