// Package instrument implements Stage-based Code Organization (paper
// §III-B): it runs an application instance and segments it into stage-level
// training instances, each pairing the stage's expanded code and scheduler
// DAG with the knob values, data features, environment and the stage's
// execution time.
//
// In the paper this is a JVM byte-code instrumentation agent that hooks the
// org/apache/spark/{rdd,api,mllib,graphx} packages and parses event logs;
// here it walks the simulator's stage plan and per-stage results, which
// yields the same (code, DAG, knobs, data, env, stage time) tuples. The
// data-augmentation effect is identical: one application run produces as
// many training instances as it has stage executions.
package instrument

import (
	"bytes"

	"lite/internal/sparksim"
)

// StageInstance is one training instance x_i of the paper's §III-C
// six-tuple ⟨o_i, C_i, G_i, d_i, e_i, y_i⟩, before feature encoding.
// AppName/AppRun identify the application instance w(x_i) the stage was
// extracted from.
type StageInstance struct {
	AppName    string
	AppFamily  string
	StageIndex int
	StageName  string

	// Code is the expanded stage-level source code (C_i is derived from
	// it by token embedding in internal/feature).
	Code string
	// Ops and Edges are the stage-level DAG scheduler (G_i): node labels
	// are atomic operations, edges are RDD dependencies.
	Ops   []string
	Edges [][2]int

	Config sparksim.Config
	Data   sparksim.DataSpec
	Env    sparksim.Environment

	// Seconds is the stage-level execution time y_i.
	Seconds float64
	// AppSeconds is the total execution time of the application instance.
	AppSeconds float64
	// Failed marks instances synthesized from failed runs (time FailCap).
	Failed bool

	// Stage-level data statistics from the "Spark monitor UI": used only
	// by the S/SC feature baselines of Table VII, never by NECS (they are
	// unavailable before actually running on the target data).
	InputMB   float64
	ShuffleMB float64
	Tasks     int
}

// AppInstance groups the stage instances of one application run together
// with the run outcome.
type AppInstance struct {
	AppName string
	Config  sparksim.Config
	Data    sparksim.DataSpec
	Env     sparksim.Environment
	Result  sparksim.Result
	Stages  []StageInstance
}

// Run executes the application under the given configuration and segments
// it into stage-level instances (instrumentation Step 1). Failed runs still
// yield one instance per planned stage with the failure cap spread across
// them, so learned models observe catastrophic knob regions.
func Run(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment, cfg sparksim.Config) AppInstance {
	res := sparksim.Simulate(app, data, env, cfg)
	inst := AppInstance{
		AppName: app.Name,
		Config:  cfg,
		Data:    data,
		Env:     env,
		Result:  res,
	}
	if res.Failed {
		plan := app.ExpandedStages(data)
		per := res.Seconds / float64(len(plan))
		for _, si := range plan {
			st := &app.Stages[si]
			inst.Stages = append(inst.Stages, StageInstance{
				AppName:    app.Name,
				AppFamily:  app.Family,
				StageIndex: si,
				StageName:  st.Name,
				Code:       st.Code,
				Ops:        st.Ops,
				Edges:      st.Edges,
				Config:     cfg,
				Data:       data,
				Env:        env,
				Seconds:    per,
				AppSeconds: res.Seconds,
				Failed:     true,
			})
		}
		return inst
	}
	for _, sr := range res.Stages {
		st := &app.Stages[sr.StageIndex]
		inst.Stages = append(inst.Stages, StageInstance{
			AppName:    app.Name,
			AppFamily:  app.Family,
			StageIndex: sr.StageIndex,
			StageName:  st.Name,
			Code:       st.Code,
			Ops:        st.Ops,
			Edges:      st.Edges,
			Config:     cfg,
			Data:       data,
			Env:        env,
			Seconds:    sr.Seconds,
			AppSeconds: res.Seconds,
			InputMB:    sr.InputMB,
			ShuffleMB:  sr.ShuffleMB,
			Tasks:      sr.Tasks,
		})
	}
	return inst
}

// RunViaEventLog executes the application and recovers the stage-level
// instances by writing and re-parsing a Spark-style event log, exercising
// the same path the paper's agent uses ("after the application is
// finished, we parse the application logs to extract stage-level codes …
// we also extract stage-level scheduler DAGs by parsing the event log
// files"). It produces the same instances as Run for successful runs.
func RunViaEventLog(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment, cfg sparksim.Config) (AppInstance, error) {
	res := sparksim.Simulate(app, data, env, cfg)
	var buf bytes.Buffer
	if err := sparksim.WriteEventLog(&buf, app, data, env, cfg, res); err != nil {
		return AppInstance{}, err
	}
	parsed, err := sparksim.ParseEventLog(&buf)
	if err != nil {
		return AppInstance{}, err
	}
	inst := AppInstance{
		AppName: parsed.AppName,
		Config:  cfg,
		Data:    data,
		Env:     env,
		Result:  res,
	}
	for _, ps := range parsed.Stages {
		st := &app.Stages[ps.StageIndex]
		inst.Stages = append(inst.Stages, StageInstance{
			AppName:    app.Name,
			AppFamily:  app.Family,
			StageIndex: ps.StageIndex,
			StageName:  ps.Name,
			Code:       st.Code,
			Ops:        ps.Ops,
			Edges:      ps.Edges,
			Config:     cfg,
			Data:       data,
			Env:        env,
			Seconds:    ps.Seconds,
			AppSeconds: parsed.Total,
			InputMB:    ps.InputMB,
			ShuffleMB:  ps.ShuffleMB,
			Tasks:      ps.Tasks,
		})
	}
	return inst, nil
}

// Stats summarizes the augmentation effect of Stage-based Code Organization
// for Figure 9 of the paper: instance counts and token counts before/after.
type Stats struct {
	AppName string
	// AppInstances is the number of application-level instances.
	AppInstances int
	// StageInstances is the number after stage segmentation.
	StageInstances int
	// MainTokens is the token count of the main-body code.
	MainTokens int
	// MeanStageTokens is the average token count per stage-level instance.
	MeanStageTokens float64
}

// Augmentation computes Figure-9 statistics for a set of application runs.
// tokenize is the code tokenizer (internal/feature.Tokenize).
func Augmentation(instances []AppInstance, mainCode map[string]string, tokenize func(string) []string) map[string]*Stats {
	out := map[string]*Stats{}
	for i := range instances {
		ai := &instances[i]
		s, ok := out[ai.AppName]
		if !ok {
			s = &Stats{AppName: ai.AppName, MainTokens: len(tokenize(mainCode[ai.AppName]))}
			out[ai.AppName] = s
		}
		s.AppInstances++
		s.StageInstances += len(ai.Stages)
		for _, st := range ai.Stages {
			s.MeanStageTokens += float64(len(tokenize(st.Code)))
		}
	}
	for _, s := range out {
		if s.StageInstances > 0 {
			s.MeanStageTokens /= float64(s.StageInstances)
		}
	}
	return out
}
