package instrument

import (
	"math"
	"strings"
	"testing"

	"lite/internal/sparksim"
	"lite/internal/workload"
)

func TestRunSegmentsIntoStageInstances(t *testing.T) {
	app := workload.ByName("PageRank").Spec
	d := app.MakeData(100)
	inst := Run(app, d, sparksim.ClusterA, sparksim.DefaultConfig())
	if inst.Result.Failed {
		t.Fatalf("run failed: %s", inst.Result.FailReason)
	}
	// PageRank: 2 fixed + 2 iterated × iterations stages.
	want := 2 + 2*d.Iterations
	if len(inst.Stages) != want {
		t.Fatalf("got %d stage instances, want %d", len(inst.Stages), want)
	}
}

func TestStageInstancesShareAppFeatures(t *testing.T) {
	// Paper §III-C: instances from the same application instance share
	// knob, data and environment features; only code/DAG/label differ.
	app := workload.ByName("KMeans").Spec
	d := app.MakeData(140)
	cfg := sparksim.DefaultConfig()
	inst := Run(app, d, sparksim.ClusterB, cfg)
	for i := range inst.Stages {
		s := &inst.Stages[i]
		if s.Config != cfg {
			t.Fatal("stage instance has different config")
		}
		if s.Data != d {
			t.Fatal("stage instance has different data spec")
		}
		if s.Env != sparksim.ClusterB {
			t.Fatal("stage instance has different environment")
		}
		if s.AppName != "KMeans" {
			t.Fatalf("wrong app name %q", s.AppName)
		}
	}
}

func TestStageLabelsSumToAppTime(t *testing.T) {
	app := workload.ByName("Terasort").Spec
	d := app.MakeData(160)
	inst := Run(app, d, sparksim.ClusterA, sparksim.DefaultConfig())
	var sum float64
	for _, s := range inst.Stages {
		sum += s.Seconds
	}
	if math.Abs(sum-inst.Result.Seconds) > 1e-6 {
		t.Fatalf("stage label sum %v != app time %v", sum, inst.Result.Seconds)
	}
}

func TestFailedRunsYieldCappedInstances(t *testing.T) {
	app := workload.ByName("WordCount").Spec
	cfg := sparksim.DefaultConfig()
	cfg[sparksim.KnobExecutorMemory] = 32 // does not fit on cluster C
	inst := Run(app, app.MakeData(100), sparksim.ClusterC, cfg)
	if !inst.Result.Failed {
		t.Fatal("expected failure")
	}
	if len(inst.Stages) == 0 {
		t.Fatal("failed runs must still yield training instances")
	}
	var sum float64
	for _, s := range inst.Stages {
		if !s.Failed {
			t.Fatal("instances of failed run must be marked Failed")
		}
		sum += s.Seconds
	}
	if math.Abs(sum-sparksim.FailCap) > 1e-6 {
		t.Fatalf("failed instance labels should sum to FailCap, got %v", sum)
	}
}

func TestStageInstanceCarriesCodeAndDAG(t *testing.T) {
	app := workload.ByName("Terasort").Spec
	inst := Run(app, app.MakeData(100), sparksim.ClusterA, sparksim.DefaultConfig())
	for _, s := range inst.Stages {
		if s.Code == "" {
			t.Fatalf("stage %s lacks code", s.StageName)
		}
		if len(s.Ops) == 0 {
			t.Fatalf("stage %s lacks DAG ops", s.StageName)
		}
	}
	// The shuffleSort stage's expanded code must contain instrumented RDD
	// calls that the main body lacks (paper Fig. 5).
	var sortStage *StageInstance
	for i := range inst.Stages {
		if inst.Stages[i].StageName == "shuffleSort" {
			sortStage = &inst.Stages[i]
		}
	}
	if sortStage == nil {
		t.Fatal("missing shuffleSort stage")
	}
	if !strings.Contains(sortStage.Code, "mapPartitions") {
		t.Fatal("expanded stage code should expose internal mapPartitions call")
	}
}

func TestAugmentationStats(t *testing.T) {
	tokenize := strings.Fields
	var instances []AppInstance
	mainCode := map[string]string{}
	for _, name := range []string{"Terasort", "PageRank"} {
		app := workload.ByName(name)
		mainCode[name] = app.Spec.MainCode
		for _, size := range app.Sizes.Train {
			instances = append(instances, Run(app.Spec, app.Spec.MakeData(size), sparksim.ClusterA, sparksim.DefaultConfig()))
		}
	}
	stats := Augmentation(instances, mainCode, tokenize)
	for name, s := range stats {
		if s.AppInstances != 4 {
			t.Fatalf("%s: %d app instances, want 4", name, s.AppInstances)
		}
		if s.StageInstances <= s.AppInstances {
			t.Fatalf("%s: augmentation did not increase instances (%d vs %d)", name, s.StageInstances, s.AppInstances)
		}
		if s.MeanStageTokens <= 0 {
			t.Fatalf("%s: no stage tokens", name)
		}
	}
	// PageRank (iterative) must expand much more than Terasort.
	if stats["PageRank"].StageInstances <= stats["Terasort"].StageInstances {
		t.Fatal("iterative app should produce more stage instances")
	}
}

func TestDeterministicInstrumentation(t *testing.T) {
	app := workload.ByName("SVM").Spec
	d := app.MakeData(120)
	a := Run(app, d, sparksim.ClusterC, sparksim.DefaultConfig())
	b := Run(app, d, sparksim.ClusterC, sparksim.DefaultConfig())
	if len(a.Stages) != len(b.Stages) {
		t.Fatal("instance counts differ across identical runs")
	}
	for i := range a.Stages {
		if a.Stages[i].Seconds != b.Stages[i].Seconds {
			t.Fatal("stage labels differ across identical runs")
		}
	}
}

func TestRunViaEventLogMatchesRun(t *testing.T) {
	app := workload.ByName("KMeans").Spec
	d := app.MakeData(120)
	cfg := sparksim.DefaultConfig()
	direct := Run(app, d, sparksim.ClusterB, cfg)
	viaLog, err := RunViaEventLog(app, d, sparksim.ClusterB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Stages) != len(viaLog.Stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(direct.Stages), len(viaLog.Stages))
	}
	for i := range direct.Stages {
		a, b := &direct.Stages[i], &viaLog.Stages[i]
		if math.Abs(a.Seconds-b.Seconds) > 1e-9 {
			t.Fatalf("stage %d label differs: %v vs %v", i, a.Seconds, b.Seconds)
		}
		if a.Code != b.Code || a.StageName != b.StageName {
			t.Fatalf("stage %d code/name differ", i)
		}
		if len(a.Ops) != len(b.Ops) {
			t.Fatalf("stage %d DAG differs", i)
		}
	}
}
