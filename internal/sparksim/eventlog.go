package sparksim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The paper's instrumentation pipeline recovers stage-level codes and DAG
// schedulers by parsing Spark event-log files (§III-B Steps 1 and 3). The
// simulator emits an equivalent event log — one JSON event per line, in
// the spirit of the Spark history-server format — and ParseEventLog
// reconstructs the per-stage view from it, so the instrumentation path can
// be driven from logs exactly as the paper's agent is.

// Event is one line of a simulated Spark event log.
type Event struct {
	Type string `json:"Event"`

	// SparkListenerApplicationStart / End.
	AppName   string  `json:"App Name,omitempty"`
	Timestamp float64 `json:"Timestamp,omitempty"`

	// SparkListenerStageSubmitted / StageCompleted.
	StageID     int      `json:"Stage ID,omitempty"`
	StageName   string   `json:"Stage Name,omitempty"`
	StageIndex  int      `json:"Stage Index,omitempty"` // index into the app's stage plan
	RDDOps      []string `json:"RDD Ops,omitempty"`
	RDDEdges    [][2]int `json:"RDD Edges,omitempty"`
	NumTasks    int      `json:"Number of Tasks,omitempty"`
	InputMB     float64  `json:"Input MB,omitempty"`
	ShuffleMB   float64  `json:"Shuffle Write MB,omitempty"`
	DurationSec float64  `json:"Duration Sec,omitempty"`

	// Recovery counters on StageCompleted (faulty runs only; all zero —
	// and omitted from the JSON — on fault-free runs, so fault-free logs
	// are byte-identical to logs written before fault injection existed).
	// Attempts counts stage attempts; 1 (the fault-free value) is encoded
	// as an omitted field and restored by ParseEventLog.
	Attempts     int `json:"Stage Attempts,omitempty"`
	TasksRetried int `json:"Tasks Retried,omitempty"`
	Speculative  int `json:"Speculative Tasks,omitempty"`

	// SparkListenerExecutorRemoved (EventExecutorLost).
	ExecutorReason string `json:"Removed Reason,omitempty"`

	// SparkListenerEnvironmentUpdate.
	Config map[string]string `json:"Spark Properties,omitempty"`

	// SparkListenerApplicationEnd.
	Failed     bool    `json:"Failed,omitempty"`
	FailReason string  `json:"Fail Reason,omitempty"`
	TotalSec   float64 `json:"Total Sec,omitempty"`
}

// Event type names, following the Spark listener-bus vocabulary.
const (
	EventApplicationStart  = "SparkListenerApplicationStart"
	EventEnvironmentUpdate = "SparkListenerEnvironmentUpdate"
	EventStageSubmitted    = "SparkListenerStageSubmitted"
	EventStageCompleted    = "SparkListenerStageCompleted"
	EventApplicationEnd    = "SparkListenerApplicationEnd"
	// EventExecutorLost is emitted once per executor lost to fault
	// injection while a stage ran (Spark's listener-bus name).
	EventExecutorLost = "SparkListenerExecutorRemoved"
)

// WriteEventLog renders a simulated run as an event log: application
// start, environment update (the knob values), one submitted/completed
// pair per stage execution, and the application end.
func WriteEventLog(w io.Writer, app *AppSpec, data DataSpec, env Environment, cfg Config, res Result) error {
	bw := bufio.NewWriter(w)
	emit := func(e Event) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	if err := emit(Event{Type: EventApplicationStart, AppName: app.Name}); err != nil {
		return err
	}
	props := make(map[string]string, NumKnobs)
	for i, k := range Knobs {
		props[k.Name] = fmt.Sprintf("%g", cfg[i])
	}
	if err := emit(Event{Type: EventEnvironmentUpdate, Config: props}); err != nil {
		return err
	}
	clock := 0.0
	for sid, sr := range res.Stages {
		st := &app.Stages[sr.StageIndex]
		if err := emit(Event{
			Type: EventStageSubmitted, StageID: sid, StageName: st.Name,
			StageIndex: sr.StageIndex, RDDOps: st.Ops, RDDEdges: st.Edges,
			NumTasks: sr.Tasks, Timestamp: clock,
		}); err != nil {
			return err
		}
		// Executors lost while the stage ran surface as removal events
		// between its submission and completion, as on a real listener bus.
		for x := 0; x < sr.ExecutorsLost; x++ {
			if err := emit(Event{
				Type: EventExecutorLost, StageID: sid,
				ExecutorReason: "fault injection: executor lost",
				Timestamp:      clock + sr.Seconds/2,
			}); err != nil {
				return err
			}
		}
		clock += sr.Seconds
		// Attempts encodes only the faulty case: 1 (fault-free) is omitted
		// from the JSON so fault-free logs stay byte-identical to logs
		// written before fault injection existed.
		attempts := sr.Attempts
		if attempts <= 1 {
			attempts = 0
		}
		if err := emit(Event{
			Type: EventStageCompleted, StageID: sid, StageName: st.Name,
			StageIndex: sr.StageIndex, NumTasks: sr.Tasks,
			InputMB: sr.InputMB, ShuffleMB: sr.ShuffleMB,
			DurationSec: sr.Seconds, Timestamp: clock,
			Attempts: attempts, TasksRetried: sr.TasksRetried,
			Speculative: sr.Speculative,
		}); err != nil {
			return err
		}
	}
	if err := emit(Event{
		Type: EventApplicationEnd, Failed: res.Failed,
		FailReason: res.FailReason, TotalSec: res.Seconds, Timestamp: clock,
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// ParsedLog is the per-stage view reconstructed from an event log.
type ParsedLog struct {
	AppName string
	Config  map[string]string
	Stages  []ParsedStage
	Failed  bool
	Reason  string
	Total   float64
	// Counters reconstructs the run's recovery totals from the per-stage
	// counters and the executor-removal events.
	Counters FaultCounters
}

// ParsedStage is one completed stage from the log.
type ParsedStage struct {
	StageID    int
	StageIndex int
	Name       string
	Ops        []string
	Edges      [][2]int
	Tasks      int
	InputMB    float64
	ShuffleMB  float64
	Seconds    float64
	// Recovery counters (Attempts is 1 for fault-free stages).
	Attempts     int
	TasksRetried int
	Speculative  int
}

// ParseEventLog reconstructs the stage-level view from an event log.
// Submitted stages without a completion event (failed runs) are dropped,
// matching how the history server treats incomplete stages.
func ParseEventLog(r io.Reader) (*ParsedLog, error) {
	out := &ParsedLog{}
	pending := map[int]*ParsedStage{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("sparksim: event log line %d: %w", line, err)
		}
		switch e.Type {
		case EventApplicationStart:
			out.AppName = e.AppName
		case EventEnvironmentUpdate:
			out.Config = e.Config
		case EventStageSubmitted:
			pending[e.StageID] = &ParsedStage{
				StageID: e.StageID, StageIndex: e.StageIndex, Name: e.StageName,
				Ops: e.RDDOps, Edges: e.RDDEdges, Tasks: e.NumTasks,
			}
		case EventStageCompleted:
			ps := pending[e.StageID]
			if ps == nil {
				ps = &ParsedStage{StageID: e.StageID, StageIndex: e.StageIndex, Name: e.StageName}
			}
			ps.InputMB = e.InputMB
			ps.ShuffleMB = e.ShuffleMB
			ps.Seconds = e.DurationSec
			if ps.Tasks == 0 {
				ps.Tasks = e.NumTasks
			}
			ps.Attempts = e.Attempts
			if ps.Attempts == 0 {
				ps.Attempts = 1 // omitted in fault-free logs
			}
			ps.TasksRetried = e.TasksRetried
			ps.Speculative = e.Speculative
			out.Counters.TasksRetried += e.TasksRetried
			out.Counters.StagesReattempted += ps.Attempts - 1
			out.Counters.SpeculativeLaunched += e.Speculative
			out.Stages = append(out.Stages, *ps)
			delete(pending, e.StageID)
		case EventExecutorLost:
			out.Counters.ExecutorsLost++
		case EventApplicationEnd:
			out.Failed = e.Failed
			out.Reason = e.FailReason
			out.Total = e.TotalSec
		default:
			return nil, fmt.Errorf("sparksim: event log line %d: unknown event %q", line, e.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
