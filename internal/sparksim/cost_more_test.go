package sparksim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// These tests pin down the qualitative mechanisms of the cost model that
// the paper's experiments depend on — the simulator is the testbed, so its
// response-surface *shapes* are part of the reproduction contract.

func TestParallelismSweetSpot(t *testing.T) {
	// Too few partitions → underutilized slots; too many → scheduling
	// overhead. The optimum must be interior.
	app := testApp()
	app.Stages[1].ShuffleReadFrac = 0.8
	d := app.MakeData(4000)
	cfg := DefaultConfig()
	cfg[KnobExecutorInstances] = 16
	cfg[KnobExecutorCores] = 4
	cfg[KnobExecutorMemory] = 8

	times := map[float64]float64{}
	for _, p := range []float64{8, 64, 512} {
		c := cfg
		c[KnobDefaultParallelism] = p
		times[p] = Simulate(app, d, ClusterB, c).Seconds
	}
	if times[64] >= times[8] {
		t.Fatalf("64 partitions should beat 8 on big data: %v vs %v", times[64], times[8])
	}
	if times[512] <= times[64] {
		t.Fatalf("512 tiny partitions should pay scheduling overhead: %v vs %v", times[512], times[64])
	}
}

func TestFasterCPUHelps(t *testing.T) {
	app := testApp()
	d := app.MakeData(500)
	slow := Environment{Name: "slow", Nodes: 3, Cores: 16, FreqGHz: 2.0, MemGB: 64, MemSpeedMTs: 2400, NetGbps: 10}
	fast := slow
	fast.Name = "fast"
	fast.FreqGHz = 3.6
	cfg := DefaultConfig()
	if Simulate(app, d, fast, cfg).Seconds >= Simulate(app, d, slow, cfg).Seconds {
		t.Fatal("faster CPU should reduce execution time")
	}
}

func TestSlowNetworkHurtsShuffle(t *testing.T) {
	app := testApp()
	app.Stages[1].ShuffleReadFrac = 1.0
	d := app.MakeData(4000)
	fastNet := Environment{Name: "f", Nodes: 8, Cores: 16, FreqGHz: 2.9, MemGB: 64, MemSpeedMTs: 2666, NetGbps: 10}
	slowNet := fastNet
	slowNet.Name = "s"
	slowNet.NetGbps = 1
	cfg := DefaultConfig()
	cfg[KnobExecutorInstances] = 16
	cfg[KnobExecutorMemory] = 8
	if Simulate(app, d, slowNet, cfg).Seconds <= Simulate(app, d, fastNet, cfg).Seconds {
		t.Fatal("slower interconnect should hurt a shuffle-heavy app")
	}
}

func TestSingleNodeHasNoNetworkShuffleCost(t *testing.T) {
	// On cluster A (1 node) shuffle reads stay local: compression should
	// cost CPU without buying network savings, so enabling it should not
	// help much (and never catastrophically hurt).
	app := testApp()
	app.Stages[1].ShuffleReadFrac = 1.0
	d := app.MakeData(1000)
	on := DefaultConfig()
	on[KnobExecutorInstances] = 8
	on[KnobExecutorMemory] = 6
	off := on
	off[KnobShuffleCompress] = 0
	tOn := Simulate(app, d, ClusterA, on).Seconds
	tOff := Simulate(app, d, ClusterA, off).Seconds
	// Compression still reduces disk IO, so allow either order — but the
	// difference must be far smaller than on the 1 Gbps cluster C.
	diffA := math.Abs(tOn-tOff) / tOff
	onC := Simulate(app, d, ClusterC, on).Seconds
	offC := Simulate(app, d, ClusterC, off).Seconds
	diffC := (offC - onC) / offC
	if diffC <= 0 {
		t.Fatalf("compression must win on cluster C: on=%v off=%v", onC, offC)
	}
	if diffA > diffC {
		t.Fatalf("compression effect should be larger on the slow network: A=%v C=%v", diffA, diffC)
	}
}

func TestMaxPartitionBytesControlsInputStage(t *testing.T) {
	app := testApp()
	d := app.MakeData(2048)
	small := DefaultConfig()
	small[KnobFilesMaxPartitionBytes] = 16
	big := DefaultConfig()
	big[KnobFilesMaxPartitionBytes] = 512
	rs := Simulate(app, d, ClusterB, small)
	rb := Simulate(app, d, ClusterB, big)
	if rs.Stages[0].Tasks <= rb.Stages[0].Tasks {
		t.Fatalf("smaller split size must create more input tasks: %d vs %d", rs.Stages[0].Tasks, rb.Stages[0].Tasks)
	}
}

func TestFeasibleMatchesSimulate(t *testing.T) {
	app := testApp()
	d := app.MakeData(50)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := RandomConfig(rng)
		for _, env := range AllClusters {
			feasible := Feasible(cfg, env)
			res := Simulate(app, d, env, cfg)
			allocFailed := res.Failed && !feasible
			// If Feasible says no, Simulate must fail; if Feasible says
			// yes, any failure must be dynamic (OOM/result size), which
			// this tiny app with tiny data cannot trigger... except memory
			// pressure; so only assert one direction.
			if !feasible && !res.Failed {
				return false
			}
			_ = allocFailed
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReducerMaxSizeInFlightRounds(t *testing.T) {
	app := testApp()
	app.Stages[1].ShuffleReadFrac = 1.0
	d := app.MakeData(4000)
	cfg := DefaultConfig()
	cfg[KnobExecutorInstances] = 8
	cfg[KnobExecutorMemory] = 8
	cfg[KnobDefaultParallelism] = 16 // few reducers → large per-task fetch
	smallFlight := cfg
	smallFlight[KnobReducerMaxSizeInFlight] = 8
	bigFlight := cfg
	bigFlight[KnobReducerMaxSizeInFlight] = 128
	if Simulate(app, d, ClusterB, smallFlight).Seconds <= Simulate(app, d, ClusterB, bigFlight).Seconds {
		t.Fatal("tiny maxSizeInFlight should add fetch rounds")
	}
}

func TestDriverCoresSpeedSchedulingOfManyTasks(t *testing.T) {
	app := testApp()
	d := app.MakeData(2000)
	cfg := DefaultConfig()
	cfg[KnobDefaultParallelism] = 512
	cfg[KnobExecutorInstances] = 16
	cfg[KnobExecutorMemory] = 8
	one := cfg
	one[KnobDriverCores] = 1
	eight := cfg
	eight[KnobDriverCores] = 8
	if Simulate(app, d, ClusterB, eight).Seconds >= Simulate(app, d, ClusterB, one).Seconds {
		t.Fatal("more driver cores should reduce scheduling time with many tasks")
	}
}

func TestGraphAppSkewInflatesShuffleStages(t *testing.T) {
	skewed := testApp()
	skewed.SkewFactor = 2.0
	skewed.Stages[1].ShuffleReadFrac = 0.8
	uniform := testApp()
	uniform.SkewFactor = 1.0
	uniform.Stages[1].ShuffleReadFrac = 0.8
	// Give the apps different names so jitter differs deterministically but
	// the comparison is dominated by skew.
	skewed.Name = "SkewedApp"
	uniform.Name = "SkewedApp" // same name → identical jitter
	d := skewed.MakeData(2000)
	cfg := DefaultConfig()
	cfg[KnobDefaultParallelism] = 16 // few partitions → skew bites
	cfg[KnobExecutorInstances] = 8
	cfg[KnobExecutorMemory] = 8
	ts := Simulate(skewed, d, ClusterB, cfg).Seconds
	tu := Simulate(uniform, d, ClusterB, cfg).Seconds
	if ts <= tu {
		t.Fatalf("key skew should inflate shuffle stages: %v vs %v", ts, tu)
	}
}

func TestFailCapIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		app := iterApp()
		d := app.MakeData(float64(1000 + rng.Intn(30000)))
		res := Simulate(app, d, ClusterC, RandomConfig(rng))
		return res.Seconds <= FailCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
