package sparksim

// Environment describes a compute cluster (one row of Table III plus the
// entries of the paper's six-dimensional environment feature, Table II).
type Environment struct {
	Name        string
	Nodes       int     // #nodes (computers) in the cluster
	Cores       int     // #cores per node
	FreqGHz     float64 // CPU frequency
	MemGB       float64 // memory size per node
	MemSpeedMTs float64 // memory speed (MT/s)
	NetGbps     float64 // network bandwidth connecting the cluster

	// Faults optionally injects transient failures (executor loss, task
	// failures, fetch failures, stragglers) into every run on this
	// environment. nil — and any profile whose rates are all zero — leaves
	// the simulator bit-for-bit identical to the fault-free cost model.
	// Faults are an operational property of the cluster, not part of the
	// six-dimensional environment feature e_i, so Features() ignores it.
	Faults *FaultProfile
}

// WithFaults returns a copy of the environment with the fault profile
// attached (nil detaches it).
func (e Environment) WithFaults(p *FaultProfile) Environment {
	e.Faults = p
	return e
}

// The three evaluation clusters of Table III.
var (
	// ClusterA is the single-node development box.
	ClusterA = Environment{Name: "A", Nodes: 1, Cores: 16, FreqGHz: 3.2, MemGB: 64, MemSpeedMTs: 2400, NetGbps: 10}
	// ClusterB is the small three-node cluster.
	ClusterB = Environment{Name: "B", Nodes: 3, Cores: 16, FreqGHz: 3.2, MemGB: 64, MemSpeedMTs: 2400, NetGbps: 10}
	// ClusterC is the eight-node production-like cluster with less memory
	// per node and a slower interconnect.
	ClusterC = Environment{Name: "C", Nodes: 8, Cores: 16, FreqGHz: 2.9, MemGB: 16, MemSpeedMTs: 2666, NetGbps: 1}
)

// AllClusters lists the evaluation environments in Table III order.
var AllClusters = []Environment{ClusterA, ClusterB, ClusterC}

// Features returns the six-dimensional environment feature vector e_i
// (Table II), normalized to comparable magnitudes for model input.
func (e Environment) Features() []float64 {
	return []float64{
		float64(e.Nodes) / 8,
		float64(e.Cores) / 16,
		e.FreqGHz / 4,
		e.MemGB / 64,
		e.MemSpeedMTs / 3200,
		e.NetGbps / 10,
	}
}

// TotalCores returns the cluster-wide core count.
func (e Environment) TotalCores() int { return e.Nodes * e.Cores }
