package sparksim

import "math"

// StageSpec describes one scheduler stage of an application: the atomic
// operations it performs (DAG nodes and edges), the expanded stage-level
// source code the instrumentation agent recovers, and scaling factors that
// tie the stage's cost to the application input.
type StageSpec struct {
	Name string
	// Ops are the DAG node labels (atomic operations), in topological
	// order; Edges are directed edges between op indices.
	Ops   []string
	Edges [][2]int
	// Code is the expanded stage-level source code (paper Fig. 5) from
	// which code tokens are extracted.
	Code string
	// InputFrac scales the application input size to this stage's input.
	InputFrac float64
	// ShuffleReadFrac is the fraction of stage input arriving over the
	// network from a previous stage's shuffle.
	ShuffleReadFrac float64
	// OutputFrac is the fraction of stage input returned to the driver.
	OutputFrac float64
	// Iterated marks stages that repeat once per algorithm iteration.
	Iterated bool
	// ReadsCache marks stages that re-read a persisted RDD (iterative
	// algorithms); their cost depends on the cache hit ratio.
	ReadsCache bool
}

// profile is the aggregated cost signature of a stage derived from its ops.
type profile struct {
	cpu          float64
	shuffleWrite float64
	memExpand    float64
	caches       bool
	collects     bool
}

func (s *StageSpec) profile() profile {
	var p profile
	for _, name := range s.Ops {
		op, ok := OpCatalog[name]
		if !ok {
			// Unknown operations behave like a generic map; this mirrors
			// the paper's oov token for unseen atomic operations.
			op = Op{CPU: 0.6, MemExpand: 0.4}
		}
		p.cpu += op.CPU
		p.shuffleWrite += op.ShuffleWrite
		p.memExpand += op.MemExpand
		p.caches = p.caches || op.Caches
		p.collects = p.collects || op.Collects
	}
	if p.shuffleWrite > 1.2 {
		p.shuffleWrite = 1.2
	}
	return p
}

// AppSpec describes an analytical application: its main-body code, its
// stage plan, and its data-shape parameters. Concrete applications live in
// internal/workload.
type AppSpec struct {
	Name   string
	Abbrev string
	// Family is "ml", "graph" or "mapreduce" (Table V covers all three).
	Family string
	// MainCode is the brief main-body program (paper Fig. 4).
	MainCode string
	// Stages is the stage plan in scheduling order. Stages with Iterated
	// set are executed once per iteration.
	Stages []StageSpec
	// DefaultIterations is used when the DataSpec does not specify one.
	DefaultIterations int
	// RowBytes approximates bytes per input row, to derive #rows from MB.
	RowBytes float64
	// Columns is the input column count (data feature #columns).
	Columns int
	// GraphData marks applications whose input is measured in #vertices
	// rather than MB (LabelPropagation in Table V).
	GraphData bool
	// SkewFactor models key-skew sensitivity: heavier tails make shuffle
	// stages more imbalanced (1 = uniform keys).
	SkewFactor float64
}

// DataSpec describes one dataset an application runs on (the data feature
// d_i of Table I is derived from it).
type DataSpec struct {
	SizeMB     float64
	Rows       float64
	Columns    int
	Iterations int
	Partitions int
}

// MakeData builds a DataSpec of the given size for the application,
// deriving rows from the app's row width and filling in iteration counts.
func (a *AppSpec) MakeData(sizeMB float64) DataSpec {
	rows := sizeMB * 1024 * 1024 / a.RowBytes
	return DataSpec{
		SizeMB:     sizeMB,
		Rows:       rows,
		Columns:    a.Columns,
		Iterations: a.DefaultIterations,
		Partitions: 0,
	}
}

// Features returns the four-dimensional data feature vector d_i (Table I),
// log-scaled so small and large datasets remain comparable.
func (d DataSpec) Features() []float64 {
	return []float64{
		log1p(d.Rows) / 25,
		float64(d.Columns) / 64,
		float64(d.Iterations) / 32,
		float64(d.Partitions) / 512,
	}
}

func log1p(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log1p(x)
}

// ExpandedStages returns the stage execution sequence with iterated stages
// repeated data.Iterations times, matching how the DAG scheduler would
// submit jobs for an iterative algorithm.
func (a *AppSpec) ExpandedStages(data DataSpec) []int {
	iters := data.Iterations
	if iters <= 0 {
		iters = 1
	}
	var seq []int
	i := 0
	for i < len(a.Stages) {
		if !a.Stages[i].Iterated {
			seq = append(seq, i)
			i++
			continue
		}
		// Collect the contiguous iterated block and repeat it.
		j := i
		for j < len(a.Stages) && a.Stages[j].Iterated {
			j++
		}
		for it := 0; it < iters; it++ {
			for k := i; k < j; k++ {
				seq = append(seq, k)
			}
		}
		i = j
	}
	return seq
}
