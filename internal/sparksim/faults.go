package sparksim

import (
	"fmt"
	"hash/fnv"
	"math"
)

// FaultProfile injects transient faults into simulated runs, modeling the
// failure modes a physical Spark cluster exhibits (the paper's testbed is
// three real clusters, where executor loss, fetch failures and stragglers
// shape the execution times LITE learns from). All injection is driven by
// seeded hashing of the run identity, so a given (profile, app, env, config,
// data) tuple always produces the same faults: the simulator stays fully
// reproducible, faults included.
//
// Spark's own recovery machinery is modeled alongside the faults:
//
//   - transient task failures are retried up to MaxTaskFailures
//     (spark.task.maxFailures, default 4); a task that exhausts its
//     attempts aborts the whole run;
//   - shuffle fetch failures trigger stage reattempts (map-output
//     regeneration plus a partial re-run), up to MaxStageAttempts
//     (spark.stage.maxConsecutiveAttempts, default 4);
//   - a lost executor forces recomputation of the task wave it was running
//     and a replacement-acquisition delay;
//   - stragglers are mitigated by speculative execution
//     (spark.speculation): a backup copy caps the tail latency the slow
//     task would otherwise impose.
type FaultProfile struct {
	// TaskFailureProb is the per-task probability of a transient failure
	// (e.g. a flaky disk read or an OOM-killed JVM that recovers on retry).
	TaskFailureProb float64
	// ExecutorLossRate scales the probability of losing one executor during
	// a stage (preemption, hardware fault); exposure grows with stage
	// duration and executor count.
	ExecutorLossRate float64
	// FetchFailureRate is the per-attempt probability that a shuffle-read
	// stage hits a fetch failure and must be reattempted.
	FetchFailureRate float64
	// StragglerProb is the per-stage probability that one task straggles.
	StragglerProb float64
	// StragglerMult is how many times slower a straggling task runs
	// (values below 1 are treated as 1: no slowdown).
	StragglerMult float64

	// MaxTaskFailures mirrors spark.task.maxFailures (0 means 4).
	MaxTaskFailures int
	// MaxStageAttempts mirrors spark.stage.maxConsecutiveAttempts
	// (0 means 4).
	MaxStageAttempts int

	// Seed decorrelates fault draws between otherwise identical runs:
	// two profiles with different seeds fail in different places, two with
	// the same seed fail identically.
	Seed int64
}

// ScaledFaults returns a profile whose rates grow linearly with intensity
// (the knob the fault experiments sweep). Intensity 0 returns nil: no
// profile, and Simulate takes the exact code path it took before fault
// injection existed.
func ScaledFaults(intensity float64, seed int64) *FaultProfile {
	if intensity <= 0 {
		return nil
	}
	return &FaultProfile{
		TaskFailureProb:  0.02 * intensity,
		ExecutorLossRate: 0.05 * intensity,
		FetchFailureRate: 0.08 * intensity,
		StragglerProb:    0.25 * intensity,
		StragglerMult:    4 + 2*intensity,
		MaxTaskFailures:  4,
		MaxStageAttempts: 4,
		Seed:             seed,
	}
}

// Active reports whether the profile injects anything. A nil or all-zero
// profile is inactive and leaves Simulate's behavior bit-for-bit identical
// to a run without one.
func (p *FaultProfile) Active() bool {
	if p == nil {
		return false
	}
	return p.TaskFailureProb > 0 || p.ExecutorLossRate > 0 ||
		p.FetchFailureRate > 0 || p.StragglerProb > 0
}

// Reseeded returns a copy with the seed shifted by delta (nil stays nil).
// Robust data collection uses it to make repeat runs of a flaky instance
// fail in different places while staying deterministic overall.
func (p *FaultProfile) Reseeded(delta int64) *FaultProfile {
	if p == nil {
		return nil
	}
	q := *p
	q.Seed += delta
	return &q
}

func (p *FaultProfile) maxTaskFailures() int {
	if p.MaxTaskFailures <= 0 {
		return 4
	}
	return p.MaxTaskFailures
}

func (p *FaultProfile) maxStageAttempts() int {
	if p.MaxStageAttempts <= 0 {
		return 4
	}
	return p.MaxStageAttempts
}

// uniform returns a deterministic pseudo-random value in [0,1) keyed on the
// profile seed, the run identity and a draw label, in the same quantized
// style as the cost model's jitter (nearby float knob values share draws,
// keeping response surfaces smooth under faults too).
func (p *FaultProfile) uniform(kind string, appName, envName string, seqIdx, attempt int, cfg Config, sizeMB float64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d|%d|%.0f", p.Seed, kind, appName, envName, seqIdx, attempt, sizeMB)
	for _, v := range cfg {
		fmt.Fprintf(h, "|%.2f", v)
	}
	return float64(h.Sum64()%1000000) / 1000000
}

// stageExposure carries the cost-model quantities the fault model needs to
// translate an injected fault into recovery work.
type stageExposure struct {
	App    *AppSpec
	Env    Environment
	Cfg    Config
	SizeMB float64

	StageIndex int // index into App.Stages
	SeqIdx     int // position in the expanded plan
	// BaseSec is the fault-free stage time; TaskSec the per-task(-wave)
	// compute time including skew.
	BaseSec float64
	TaskSec float64

	Parts     float64
	Slots     float64
	Executors float64
	// ShuffleRead marks stages that fetch map outputs over the network.
	ShuffleRead bool
	// LaunchSec is the scheduler's per-task launch overhead.
	LaunchSec float64
}

// stageFaults is what fault injection did to one stage: the extra seconds
// Spark's recovery machinery spent, the per-stage counters, and — when
// recovery was exhausted — a fatal abort reason.
type stageFaults struct {
	ExtraSec      float64
	TasksRetried  int
	Reattempts    int
	Speculative   int
	ExecutorsLost int
	// Fatal aborts the run (task or stage retry budget exhausted).
	Fatal       bool
	FatalReason string
}

// injectStage applies the fault model to one stage execution. It is a pure
// function of the profile and the exposure: calling it twice returns the
// same outcome.
func (p *FaultProfile) injectStage(e stageExposure) stageFaults {
	var out stageFaults
	if !p.Active() {
		return out
	}
	st := &e.App.Stages[e.StageIndex]
	appName, envName := e.App.Name, e.Env.Name
	signed := func(kind string) float64 { // in [-1, 1)
		return 2*p.uniform(kind, appName, envName, e.SeqIdx, 0, e.Cfg, e.SizeMB) - 1
	}

	// --- Transient task failures, retried up to spark.task.maxFailures ---
	if q := p.TaskFailureProb; q > 0 && q < 1 {
		// Each task retries geometrically: q/(1-q) expected extra attempts.
		expected := e.Parts * q / (1 - q)
		retried := int(math.Round(expected * (1 + 0.25*signed("task-retry"))))
		if retried < 0 {
			retried = 0
		}
		if retried > 0 {
			out.TasksRetried += retried
			// Re-executions fill free slots and pay the launch overhead again.
			out.ExtraSec += float64(retried)/e.Slots*e.TaskSec + float64(retried)*e.LaunchSec
		}
		// Probability some task exhausts all attempts and aborts the run.
		pAbort := e.Parts * math.Pow(q, float64(p.maxTaskFailures()))
		if pAbort > 0.95 {
			pAbort = 0.95
		}
		if p.uniform("task-abort", appName, envName, e.SeqIdx, 0, e.Cfg, e.SizeMB) < pAbort {
			out.Fatal = true
			out.FatalReason = fmt.Sprintf("stage %q: task failed %d times (spark.task.maxFailures exceeded)",
				st.Name, p.maxTaskFailures())
			return out
		}
	}

	// --- Shuffle fetch failures: stage reattempts ---
	if e.ShuffleRead && p.FetchFailureRate > 0 {
		attempts := 0
		for attempts < p.maxStageAttempts() {
			if p.uniform("fetch", appName, envName, e.SeqIdx, attempts, e.Cfg, e.SizeMB) >= p.FetchFailureRate {
				break
			}
			attempts++
		}
		if attempts >= p.maxStageAttempts() {
			out.Fatal = true
			out.FatalReason = fmt.Sprintf("stage %q aborted: fetch failure persisted across %d stage attempts",
				st.Name, p.maxStageAttempts())
			return out
		}
		if attempts > 0 {
			out.Reattempts = attempts
			// Each reattempt re-runs the reduce side after regenerating the
			// lost map outputs: a 60–80% partial re-execution.
			frac := 0.6 + 0.2*p.uniform("fetch-cost", appName, envName, e.SeqIdx, attempts, e.Cfg, e.SizeMB)
			out.ExtraSec += float64(attempts) * frac * e.BaseSec
		}
	}

	// --- Executor loss: wave recomputation + replacement delay ---
	if p.ExecutorLossRate > 0 && e.Executors > 0 {
		// Exposure grows with executor count and stage duration
		// (executor-minutes at risk), saturating via 1-exp(-x).
		x := p.ExecutorLossRate * e.Executors * e.BaseSec / 600
		pLoss := 1 - math.Exp(-x)
		if p.uniform("exec-loss", appName, envName, e.SeqIdx, 0, e.Cfg, e.SizeMB) < pLoss {
			out.ExecutorsLost = 1
			// The lost executor's share of the running wave is recomputed,
			// its shuffle outputs regenerated, and a replacement acquired.
			share := e.Parts / e.Executors
			out.ExtraSec += share/e.Slots*e.TaskSec + 0.15*e.BaseSec + 2.0
		}
	}

	// --- Stragglers, mitigated by speculative execution ---
	if p.StragglerProb > 0 {
		if p.uniform("straggler", appName, envName, e.SeqIdx, 0, e.Cfg, e.SizeMB) < p.StragglerProb {
			mult := p.StragglerMult
			if mult < 1 {
				mult = 1
			}
			// Without speculation the stage tail would stretch by
			// (mult-1)×task time; the speculative copy caps the tail at one
			// extra task time plus its launch cost.
			tail := (mult - 1) * e.TaskSec
			capped := e.TaskSec + 0.1
			if tail > capped {
				tail = capped
				out.Speculative = 1
			}
			out.ExtraSec += tail
		}
	}

	return out
}

// FaultCounters aggregates the recovery work a run performed. It is the
// machine-readable companion of Result's counter fields, used by the event
// log round-trip and the fault experiments.
type FaultCounters struct {
	TasksRetried        int
	StagesReattempted   int
	SpeculativeLaunched int
	ExecutorsLost       int
}

// FaultCounters returns the run's recovery counters.
func (r *Result) FaultCounters() FaultCounters {
	return FaultCounters{
		TasksRetried:        r.TasksRetried,
		StagesReattempted:   r.StagesReattempted,
		SpeculativeLaunched: r.SpeculativeLaunched,
		ExecutorsLost:       r.ExecutorsLost,
	}
}
