// Package sparksim is the testbed substrate of this reproduction: a
// deterministic simulator of a Spark cluster executing staged analytical
// applications under a configuration of the 16 performance-critical knobs
// from Table IV of the paper.
//
// The simulator replaces the paper's three physical clusters. Its
// analytical cost model encodes the mechanisms that make Spark knob tuning
// hard and that the paper's experiments rely on: executor packing
// (cores×memory vs node capacity), task waves and scheduling overhead,
// shuffle write/fetch with optional compression, unified-memory spills and
// out-of-memory failures, storage-fraction cache hit ratios for iterative
// jobs, driver result-size limits, and GC pressure. Response surfaces are
// therefore non-convex with interactions and cliffs, like Figure 1 of the
// paper, while remaining fully deterministic given a seed.
package sparksim

import (
	"fmt"
	"math"
	"math/rand"
)

// KnobType describes the value domain of a configuration knob.
type KnobType int

// Knob value domains.
const (
	KnobInt KnobType = iota
	KnobFloat
	KnobBool
)

// Knob describes one configuration parameter (one row of Table IV).
type Knob struct {
	Name    string
	Brief   string
	Type    KnobType
	Min     float64
	Max     float64
	Default float64
	// Unit is a human-readable unit suffix (MB, GB, KB, "").
	Unit string
}

// Indices of the 16 knobs within a Config, mirroring Table IV.
const (
	KnobDefaultParallelism = iota
	KnobDriverCores
	KnobDriverMaxResultSize
	KnobDriverMemory
	KnobExecutorCores
	KnobExecutorMemory
	KnobExecutorMemoryOverhead
	KnobExecutorInstances
	KnobFilesMaxPartitionBytes
	KnobMemoryFraction
	KnobMemoryStorageFraction
	KnobReducerMaxSizeInFlight
	KnobShuffleCompress
	KnobShuffleFileBuffer
	KnobShuffleSpillCompress
	KnobRDDCompress

	// NumKnobs is the dimensionality of the configuration space (D in the
	// paper's notation for knob vectors).
	NumKnobs = 16
)

// Knobs is the knob catalog, indexed by the Knob* constants.
var Knobs = [NumKnobs]Knob{
	{Name: "spark.default.parallelism", Brief: "Number of RDD partitions", Type: KnobInt, Min: 8, Max: 512, Default: 24},
	{Name: "spark.driver.cores", Brief: "Number of cores for the driver process", Type: KnobInt, Min: 1, Max: 8, Default: 1},
	{Name: "spark.driver.maxResultSize", Brief: "Size limit of serialized results per action", Type: KnobInt, Min: 256, Max: 4096, Default: 1024, Unit: "MB"},
	{Name: "spark.driver.memory", Brief: "Memory size for the driver process", Type: KnobInt, Min: 1, Max: 16, Default: 2, Unit: "GB"},
	{Name: "spark.executor.cores", Brief: "Number of cores per executor", Type: KnobInt, Min: 1, Max: 16, Default: 2},
	{Name: "spark.executor.memory", Brief: "Memory size per executor process", Type: KnobInt, Min: 1, Max: 32, Default: 2, Unit: "GB"},
	{Name: "spark.executor.memoryOverhead", Brief: "Off-heap memory size per executor", Type: KnobInt, Min: 384, Max: 4096, Default: 512, Unit: "MB"},
	{Name: "spark.executor.instances", Brief: "Initial number of executors", Type: KnobInt, Min: 1, Max: 64, Default: 2},
	{Name: "spark.files.maxPartitionBytes", Brief: "Max size per partition during file reading", Type: KnobInt, Min: 16, Max: 512, Default: 128, Unit: "MB"},
	{Name: "spark.memory.fraction", Brief: "Fraction of heap for execution and storage memory", Type: KnobFloat, Min: 0.3, Max: 0.9, Default: 0.6},
	{Name: "spark.memory.storageFraction", Brief: "Storage memory fraction exempt from eviction", Type: KnobFloat, Min: 0.1, Max: 0.9, Default: 0.5},
	{Name: "spark.reducer.maxSizeInFlight", Brief: "Max map outputs fetched concurrently per reduce task", Type: KnobInt, Min: 8, Max: 128, Default: 48, Unit: "MB"},
	{Name: "spark.shuffle.compress", Brief: "Compress map output files (boolean)", Type: KnobBool, Min: 0, Max: 1, Default: 1},
	{Name: "spark.shuffle.file.buffer", Brief: "In-memory buffer size per shuffle output stream", Type: KnobInt, Min: 16, Max: 128, Default: 32, Unit: "KB"},
	{Name: "spark.shuffle.spill.compress", Brief: "Compress data spilled during shuffles (boolean)", Type: KnobBool, Min: 0, Max: 1, Default: 1},
	{Name: "spark.rdd.compress", Brief: "Compress serialized cached RDD partitions (boolean)", Type: KnobBool, Min: 0, Max: 1, Default: 0},
}

// Config is one point in the 16-dimensional knob space: the array of knob
// values o_i in the paper's notation.
type Config [NumKnobs]float64

// DefaultConfig returns Spark's out-of-the-box configuration, the "Default"
// competitor of Table VI.
func DefaultConfig() Config {
	var c Config
	for i, k := range Knobs {
		c[i] = k.Default
	}
	return c
}

// Clamp snaps every knob value into its legal domain, rounding integer and
// boolean knobs.
func (c Config) Clamp() Config {
	for i, k := range Knobs {
		v := c[i]
		switch k.Type {
		case KnobInt:
			v = math.Round(v)
		case KnobBool:
			if v >= 0.5 {
				v = 1
			} else {
				v = 0
			}
		}
		if v < k.Min {
			v = k.Min
		}
		if v > k.Max {
			v = k.Max
		}
		c[i] = v
	}
	return c
}

// Normalized returns the configuration mapped into [0,1]^16, the feature
// encoding fed to learned models.
func (c Config) Normalized() []float64 {
	out := make([]float64, NumKnobs)
	for i, k := range Knobs {
		out[i] = (c[i] - k.Min) / (k.Max - k.Min)
	}
	return out
}

// FromNormalized maps a point in [0,1]^16 back into a legal Config.
func FromNormalized(u []float64) Config {
	var c Config
	for i, k := range Knobs {
		c[i] = k.Min + u[i]*(k.Max-k.Min)
	}
	return c.Clamp()
}

// RandomConfig samples a configuration uniformly from the knob domains.
func RandomConfig(rng *rand.Rand) Config {
	var c Config
	for i, k := range Knobs {
		c[i] = k.Min + rng.Float64()*(k.Max-k.Min)
	}
	return c.Clamp()
}

// Bool reports the boolean knob at index i.
func (c Config) Bool(i int) bool { return c[i] >= 0.5 }

// String renders the configuration as key=value pairs.
func (c Config) String() string {
	s := ""
	for i, k := range Knobs {
		if i > 0 {
			s += " "
		}
		switch k.Type {
		case KnobFloat:
			s += fmt.Sprintf("%s=%.2f", shortName(k.Name), c[i])
		default:
			s += fmt.Sprintf("%s=%d", shortName(k.Name), int(c[i]))
		}
	}
	return s
}

func shortName(full string) string {
	const prefix = "spark."
	if len(full) > len(prefix) && full[:len(prefix)] == prefix {
		return full[len(prefix):]
	}
	return full
}
