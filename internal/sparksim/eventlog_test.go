package sparksim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEventLogRoundTrip(t *testing.T) {
	app := testApp()
	data := app.MakeData(100)
	cfg := DefaultConfig()
	res := Simulate(app, data, ClusterB, cfg)

	var buf bytes.Buffer
	if err := WriteEventLog(&buf, app, data, ClusterB, cfg, res); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.AppName != app.Name {
		t.Fatalf("app name %q", parsed.AppName)
	}
	if len(parsed.Stages) != len(res.Stages) {
		t.Fatalf("parsed %d stages, want %d", len(parsed.Stages), len(res.Stages))
	}
	for i, ps := range parsed.Stages {
		sr := res.Stages[i]
		if math.Abs(ps.Seconds-sr.Seconds) > 1e-9 {
			t.Fatalf("stage %d duration %v, want %v", i, ps.Seconds, sr.Seconds)
		}
		if ps.StageIndex != sr.StageIndex || ps.Tasks != sr.Tasks {
			t.Fatalf("stage %d metadata mismatch", i)
		}
		if len(ps.Ops) == 0 {
			t.Fatalf("stage %d lost DAG ops", i)
		}
	}
	if math.Abs(parsed.Total-res.Seconds) > 1e-9 {
		t.Fatalf("total %v, want %v", parsed.Total, res.Seconds)
	}
	if parsed.Failed != res.Failed {
		t.Fatal("failure flag lost")
	}
	// Environment update must carry every knob.
	if len(parsed.Config) != NumKnobs {
		t.Fatalf("parsed %d knobs, want %d", len(parsed.Config), NumKnobs)
	}
	if _, ok := parsed.Config["spark.executor.memory"]; !ok {
		t.Fatal("knob names lost")
	}
}

func TestEventLogFailedRun(t *testing.T) {
	app := testApp()
	cfg := DefaultConfig()
	cfg[KnobExecutorMemory] = 32 // cannot fit on cluster C
	res := Simulate(app, app.MakeData(100), ClusterC, cfg)
	if !res.Failed {
		t.Fatal("setup: expected failure")
	}
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, app, app.MakeData(100), ClusterC, cfg, res); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Failed || parsed.Reason == "" {
		t.Fatal("failure information lost")
	}
	if len(parsed.Stages) != 0 {
		t.Fatal("failed allocation should have no completed stages")
	}
}

func TestParseEventLogRejectsGarbage(t *testing.T) {
	if _, err := ParseEventLog(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ParseEventLog(strings.NewReader(`{"Event":"Bogus"}` + "\n")); err == nil {
		t.Fatal("expected unknown-event error")
	}
}

func TestParseEventLogEmpty(t *testing.T) {
	parsed, err := ParseEventLog(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Stages) != 0 {
		t.Fatal("empty log should have no stages")
	}
}

func TestEventLogIsLineDelimitedJSON(t *testing.T) {
	app := testApp()
	data := app.MakeData(50)
	res := Simulate(app, data, ClusterA, DefaultConfig())
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, app, data, ClusterA, DefaultConfig(), res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// start + env + 2 per stage + end.
	want := 2 + 2*len(res.Stages) + 1
	if len(lines) != want {
		t.Fatalf("log has %d lines, want %d", len(lines), want)
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, `{"Event":"SparkListener`) {
			t.Fatalf("line %d does not look like a Spark event: %s", i, l)
		}
	}
}
