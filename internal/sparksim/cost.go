package sparksim

import (
	"fmt"
	"hash/fnv"
	"math"
)

// FailCap is the execution time recorded for failed or over-long runs,
// following §V-B of the paper ("if the actual execution time was longer
// than two hours, or if the application failed, we record 7200 s").
const FailCap = 7200.0

// StageResult captures the simulated execution of one stage instance.
type StageResult struct {
	// StageIndex refers into AppSpec.Stages (iterated stages appear once
	// per iteration in Result.Stages).
	StageIndex int
	Seconds    float64
	InputMB    float64
	ShuffleMB  float64
	// SpillRatio is task memory demand over available execution memory;
	// values above 1 indicate spilling.
	SpillRatio float64
	Waves      int
	Tasks      int

	// Recovery counters, nonzero only under an active FaultProfile:
	// Attempts counts stage attempts (1 = no fetch-failure reattempt),
	// TasksRetried the transiently failed and re-run tasks, Speculative
	// the speculative backup copies launched, ExecutorsLost the executors
	// lost while the stage ran.
	Attempts      int
	TasksRetried  int
	Speculative   int
	ExecutorsLost int
}

// Result is the outcome of one simulated application run.
type Result struct {
	Seconds    float64
	Failed     bool
	FailReason string
	Stages     []StageResult
	// CacheHitRatio is the fraction of persisted partitions served from
	// storage memory across iterations.
	CacheHitRatio float64
	Executors     int
	Slots         int

	// Run-level recovery totals (sums of the per-stage counters); all zero
	// when the environment injects no faults.
	TasksRetried        int
	StagesReattempted   int
	SpeculativeLaunched int
	ExecutorsLost       int
}

// Metrics summarizes the run as the "inner status of Spark" vector the
// DDPG baselines observe (QTune-style state): resource allocation, memory
// pressure, shuffle volume and parallelism utilization.
//
// The vector is frozen at MetricsLen entries: the fault-recovery counters
// are deliberately NOT part of it, because its width determines the DDPG
// networks' shapes and changing it would silently alter every RL baseline's
// weight initialization (breaking reproducibility of the seed experiments).
// Consumers that want the recovery picture use FaultCounters(), and the
// event-log round-trip carries the counters faithfully.
func (r *Result) Metrics() []float64 {
	var spill, shuffle, waves float64
	for _, s := range r.Stages {
		spill += s.SpillRatio
		shuffle += s.ShuffleMB
		waves += float64(s.Waves)
	}
	n := float64(len(r.Stages))
	if n == 0 {
		n = 1
	}
	failed := 0.0
	if r.Failed {
		failed = 1
	}
	return []float64{
		float64(r.Executors) / 64,
		float64(r.Slots) / 256,
		spill / n,
		math.Log1p(shuffle) / 15,
		waves / n / 16,
		r.CacheHitRatio,
		failed,
	}
}

// MetricsLen is the width of the Metrics vector.
const MetricsLen = 7

// Feasible reports whether the configuration can allocate at least one
// executor on the environment — the check Spark's resource manager performs
// at submission time, before any task runs. Tuners may use it to discard
// statically impossible candidates; dynamic failures (OOM, result-size
// overflow) are only discovered by running.
func Feasible(cfg Config, env Environment) bool {
	cfg = cfg.Clamp()
	perNodeByCores := math.Floor(float64(env.Cores) / cfg[KnobExecutorCores])
	perNodeByMem := math.Floor((env.MemGB - 1) / (cfg[KnobExecutorMemory] + cfg[KnobExecutorMemoryOverhead]/1024))
	return math.Min(perNodeByCores, perNodeByMem) >= 1
}

// Simulate executes the application on the given data, environment and
// configuration, returning per-stage and total execution times. It is
// deterministic: the same inputs always produce the same result.
func Simulate(app *AppSpec, data DataSpec, env Environment, cfg Config) Result {
	cfg = cfg.Clamp()

	execCores := cfg[KnobExecutorCores]
	execMemGB := cfg[KnobExecutorMemory]
	overheadGB := cfg[KnobExecutorMemoryOverhead] / 1024

	perNodeByCores := math.Floor(float64(env.Cores) / execCores)
	perNodeByMem := math.Floor((env.MemGB - 1) / (execMemGB + overheadGB))
	perNode := math.Min(perNodeByCores, perNodeByMem)
	if perNode < 1 {
		return failResult(app, "executor does not fit on any node (cores or memory)")
	}
	executors := math.Min(cfg[KnobExecutorInstances], perNode*float64(env.Nodes))
	slots := executors * execCores

	// Core speed relative to a 3.0 GHz baseline, with a small memory-speed
	// term (Table II lists memory speed as an environment feature).
	speed := env.FreqGHz / 3.0 * (0.92 + 0.08*env.MemSpeedMTs/2666)

	// Unified memory model (spark.memory.fraction / storageFraction).
	heapMB := execMemGB * 1024
	unifiedMB := heapMB * cfg[KnobMemoryFraction]
	storageMB := unifiedMB * cfg[KnobMemoryStorageFraction]

	appCaches := false
	for i := range app.Stages {
		if app.Stages[i].profile().caches {
			appCaches = true
			break
		}
	}
	executionMB := unifiedMB
	if appCaches {
		// Storage-protected region is unavailable to execution.
		executionMB = unifiedMB - storageMB
	}
	execPerTaskMB := executionMB / execCores
	if execPerTaskMB < 8 {
		execPerTaskMB = 8
	}

	// Cache capacity vs need determines the hit ratio iterative stages see.
	cacheHit := 0.0
	if appCaches {
		cacheNeedMB := data.SizeMB * 1.4
		if cfg.Bool(KnobRDDCompress) {
			cacheNeedMB *= 0.55
		}
		cacheAvailMB := storageMB * executors
		if cacheNeedMB > 0 {
			cacheHit = math.Min(1, cacheAvailMB/cacheNeedMB)
		}
	}

	seq := app.ExpandedStages(data)
	res := Result{
		Executors:     int(executors),
		Slots:         int(slots),
		CacheHitRatio: cacheHit,
		Stages:        make([]StageResult, 0, len(seq)),
	}

	skew := app.SkewFactor
	if skew < 1 {
		skew = 1
	}

	for seqIdx, si := range seq {
		st := &app.Stages[si]
		prof := st.profile()
		inMB := data.SizeMB * st.InputFrac
		if inMB < 1 {
			inMB = 1
		}

		// Partitioning: input stages follow maxPartitionBytes; shuffle
		// stages follow default.parallelism (or an explicit override).
		var parts float64
		if st.ShuffleReadFrac == 0 && seqIdx == 0 {
			parts = math.Ceil(inMB / cfg[KnobFilesMaxPartitionBytes])
			if parts < 2 {
				parts = 2
			}
		} else {
			parts = cfg[KnobDefaultParallelism]
			if data.Partitions > 0 {
				parts = float64(data.Partitions)
			}
		}

		perPartMB := inMB / parts

		// --- CPU ---
		const baseCPUPerMB = 0.030 // seconds of single-core work per MB per unit op-cost
		cpuSec := perPartMB * prof.cpu * baseCPUPerMB / speed

		// Cache misses force recomputation and disk re-reads.
		if st.ReadsCache && appCaches {
			miss := 1 - cacheHit
			cpuSec *= 1 + 1.6*miss
			cpuSec += miss * perPartMB * 0.004 // re-read from disk
			if cfg.Bool(KnobRDDCompress) {
				// Decompression of cached blocks costs CPU.
				cpuSec += cacheHit * perPartMB * 0.0012 / speed
			}
		}

		// GC pressure: squeezing the user heap (high memory.fraction)
		// hurts allocation-heavy (high memExpand) stages.
		gc := 1 + 0.6*math.Max(0, cfg[KnobMemoryFraction]-0.6)*prof.memExpand
		cpuSec *= gc

		// --- Memory / spill ---
		taskNeedMB := perPartMB * prof.memExpand
		spillRatio := 0.0
		if taskNeedMB > 0 {
			spillRatio = taskNeedMB / execPerTaskMB
		}
		if spillRatio > 6 {
			return failResult(app, fmt.Sprintf("stage %q OOM: task needs %.0f MB, execution memory %.0f MB", st.Name, taskNeedMB, execPerTaskMB))
		}
		if spillRatio > 1 {
			spillMB := taskNeedMB - execPerTaskMB
			ioPerMB := 0.004 // ~250 MB/s local disk
			if cfg.Bool(KnobShuffleSpillCompress) {
				cpuSec += spillMB * 0.0010 / speed
				spillMB *= 0.5
			}
			cpuSec += 2 * spillMB * ioPerMB // write + read back
		}

		// --- Shuffle write ---
		swMB := inMB * prof.shuffleWrite
		if swMB > 0 {
			perTaskSW := swMB / parts
			ioPerMB := 0.004
			bytes := perTaskSW
			if cfg.Bool(KnobShuffleCompress) {
				cpuSec += perTaskSW * 0.0011 / speed
				bytes *= 0.45
			}
			// Small shuffle buffers flush more often.
			flushFactor := 1 + 0.30*(32/cfg[KnobShuffleFileBuffer])
			cpuSec += bytes * ioPerMB * flushFactor
		}

		// --- Shuffle read ---
		srMB := inMB * st.ShuffleReadFrac
		if srMB > 0 {
			if cfg.Bool(KnobShuffleCompress) {
				// Decompression cost, but fewer bytes on the wire.
				cpuSec += (srMB / parts) * 0.0009 / speed
				srMB *= 0.45
			}
			perTaskSR := srMB / parts
			crossNode := float64(env.Nodes-1) / float64(env.Nodes)
			if crossNode > 0 {
				nodeMBps := env.NetGbps * 125
				concurrentPerNode := math.Max(1, slots/float64(env.Nodes))
				perTaskBW := nodeMBps / concurrentPerNode
				cpuSec += perTaskSR * crossNode / perTaskBW
			}
			// Fetch rounds limited by reducer.maxSizeInFlight.
			rounds := math.Ceil(perTaskSR / cfg[KnobReducerMaxSizeInFlight])
			cpuSec += rounds * 0.015
		}

		// --- Stage assembly: waves, skew, scheduling ---
		waves := math.Ceil(parts / slots)
		// Straggler inflation: shuffle stages with few partitions suffer
		// more from key skew; very many partitions smooth it out.
		skewFactor := 1.0
		if prof.shuffleWrite > 0 || st.ShuffleReadFrac > 0 {
			skewFactor = 1 + (skew-1)*math.Min(1, 24/parts)
		}
		launchPerTask := 0.004
		schedSec := parts * launchPerTask / math.Sqrt(cfg[KnobDriverCores])
		stageSec := waves*cpuSec*skewFactor + schedSec + 0.05 // stage submit latency

		// --- Driver collection ---
		if prof.collects && st.OutputFrac > 0 {
			resultMB := inMB * st.OutputFrac
			if resultMB > cfg[KnobDriverMaxResultSize] {
				return failResult(app, fmt.Sprintf("stage %q result %.0f MB exceeds spark.driver.maxResultSize", st.Name, resultMB))
			}
			if resultMB > cfg[KnobDriverMemory]*1024*0.6 {
				return failResult(app, fmt.Sprintf("stage %q driver OOM collecting %.0f MB", st.Name, resultMB))
			}
			stageSec += resultMB * 0.003 / math.Pow(cfg[KnobDriverCores], 0.7)
		}

		// Deterministic per-stage jitter (±3%) stands in for run-to-run
		// variance without breaking reproducibility.
		stageSec *= 1 + 0.03*jitter(app.Name, env.Name, si, seqIdx, cfg, data.SizeMB)

		sr := StageResult{
			StageIndex: si,
			Seconds:    stageSec,
			InputMB:    inMB,
			ShuffleMB:  swMB,
			SpillRatio: spillRatio,
			Waves:      int(waves),
			Tasks:      int(parts),
			Attempts:   1,
		}

		// Transient-fault injection with Spark's recovery semantics; inert
		// (and skipped entirely) unless the environment carries an active
		// FaultProfile, so fault-free runs are bit-for-bit unchanged.
		if env.Faults.Active() {
			fi := env.Faults.injectStage(stageExposure{
				App:         app,
				Env:         env,
				Cfg:         cfg,
				SizeMB:      data.SizeMB,
				StageIndex:  si,
				SeqIdx:      seqIdx,
				BaseSec:     stageSec,
				TaskSec:     cpuSec * skewFactor,
				Parts:       parts,
				Slots:       slots,
				Executors:   executors,
				ShuffleRead: srMB > 0,
				LaunchSec:   launchPerTask,
			})
			res.TasksRetried += fi.TasksRetried
			res.StagesReattempted += fi.Reattempts
			res.SpeculativeLaunched += fi.Speculative
			res.ExecutorsLost += fi.ExecutorsLost
			if fi.Fatal {
				// Same shape as every other failed run (failResult), with
				// the recovery work done so far preserved in the counters.
				fr := failResult(app, fi.FatalReason)
				fr.TasksRetried = res.TasksRetried
				fr.StagesReattempted = res.StagesReattempted
				fr.SpeculativeLaunched = res.SpeculativeLaunched
				fr.ExecutorsLost = res.ExecutorsLost
				return fr
			}
			stageSec += fi.ExtraSec
			sr.Seconds = stageSec
			sr.Attempts = 1 + fi.Reattempts
			sr.TasksRetried = fi.TasksRetried
			sr.Speculative = fi.Speculative
			sr.ExecutorsLost = fi.ExecutorsLost
		}

		res.Stages = append(res.Stages, sr)
		res.Seconds += stageSec
		if res.Seconds > FailCap {
			res.Seconds = FailCap
			res.Failed = true
			res.FailReason = "exceeded two-hour cap"
			return res
		}
	}
	return res
}

func failResult(app *AppSpec, reason string) Result {
	return Result{Seconds: FailCap, Failed: true, FailReason: reason}
}

// jitter returns a deterministic pseudo-random value in [−1,1] keyed on the
// run identity. Configurations are quantized so that nearby float knob
// values share jitter, keeping response surfaces smooth.
func jitter(appName, envName string, stage, seqIdx int, cfg Config, sizeMB float64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%.0f", appName, envName, stage, seqIdx, sizeMB)
	for _, v := range cfg {
		fmt.Fprintf(h, "|%.2f", v)
	}
	u := h.Sum64()
	return float64(u%20001)/10000 - 1
}
