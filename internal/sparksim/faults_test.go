package sparksim

import (
	"bytes"
	"reflect"
	"testing"
)

func faultyEnv(intensity float64, seed int64) Environment {
	return ClusterB.WithFaults(ScaledFaults(intensity, seed))
}

func TestScaledFaultsZeroIntensityIsNil(t *testing.T) {
	if ScaledFaults(0, 1) != nil || ScaledFaults(-1, 1) != nil {
		t.Fatal("non-positive intensity must return no profile")
	}
	if !ScaledFaults(0.5, 1).Active() {
		t.Fatal("positive intensity must be active")
	}
}

func TestFaultProfileActive(t *testing.T) {
	var p *FaultProfile
	if p.Active() {
		t.Fatal("nil profile must be inactive")
	}
	if (&FaultProfile{Seed: 42, MaxTaskFailures: 4}).Active() {
		t.Fatal("all-zero rates must be inactive")
	}
	if !(&FaultProfile{StragglerProb: 0.1}).Active() {
		t.Fatal("any positive rate must be active")
	}
}

// Same seed → bit-for-bit identical Result, including the recovery counters.
func TestFaultInjectionDeterministic(t *testing.T) {
	for _, app := range []*AppSpec{testApp(), iterApp()} {
		env := faultyEnv(1.0, 7)
		data := DataSpec{SizeMB: 4096, Iterations: app.DefaultIterations}
		cfg := DefaultConfig()
		a := Simulate(app, data, env, cfg)
		b := Simulate(app, data, env, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different results:\n%+v\n%+v", app.Name, a, b)
		}
	}
}

func TestFaultSeedDecorrelates(t *testing.T) {
	app := iterApp()
	data := DataSpec{SizeMB: 8192, Iterations: app.DefaultIterations}
	cfg := DefaultConfig()
	diff := false
	for seed := int64(0); seed < 8 && !diff; seed++ {
		a := Simulate(app, data, faultyEnv(1.0, seed), cfg)
		b := Simulate(app, data, faultyEnv(1.0, seed+100), cfg)
		diff = !reflect.DeepEqual(a, b)
	}
	if !diff {
		t.Fatal("different seeds never changed the outcome across 8 seed pairs")
	}
}

// An attached profile whose rates are all zero must leave every result
// bit-for-bit identical to a run with no profile at all.
func TestZeroProfileBitForBitIdentical(t *testing.T) {
	zero := &FaultProfile{Seed: 99, MaxTaskFailures: 4, MaxStageAttempts: 4}
	for _, app := range []*AppSpec{testApp(), iterApp()} {
		for _, base := range AllClusters {
			data := DataSpec{SizeMB: 2048, Iterations: app.DefaultIterations}
			for _, cfg := range []Config{DefaultConfig()} {
				plain := Simulate(app, data, base, cfg)
				faulted := Simulate(app, data, base.WithFaults(zero), cfg)
				if !reflect.DeepEqual(plain, faulted) {
					t.Fatalf("%s on %s: zero-rate profile changed the result", app.Name, base.Name)
				}
			}
		}
	}
}

func TestFaultsIncreaseTimeMonotonically(t *testing.T) {
	app := iterApp()
	data := DataSpec{SizeMB: 4096, Iterations: app.DefaultIterations}
	cfg := DefaultConfig()
	base := Simulate(app, data, ClusterB, cfg)
	hot := Simulate(app, data, faultyEnv(1.0, 3), cfg)
	if hot.Failed {
		t.Skip("run aborted under faults; time comparison not meaningful")
	}
	if hot.Seconds < base.Seconds {
		t.Fatalf("full fault intensity should not speed the run up: %v < %v", hot.Seconds, base.Seconds)
	}
}

// Fault-free event logs must not contain any of the new recovery fields, so
// logs written today are byte-identical to logs written before fault
// injection existed.
func TestFaultFreeEventLogHasNoRecoveryFields(t *testing.T) {
	app := testApp()
	data := DataSpec{SizeMB: 1024, Iterations: 1}
	res := Simulate(app, data, ClusterB, DefaultConfig())
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, app, data, ClusterB, DefaultConfig(), res); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Stage Attempts", "Tasks Retried", "Speculative Tasks", "Removed Reason", EventExecutorLost} {
		if bytes.Contains(buf.Bytes(), []byte(field)) {
			t.Fatalf("fault-free log leaks recovery field %q:\n%s", field, buf.String())
		}
	}
}

// The recovery counters must survive the event-log round trip.
func TestEventLogRoundTripFaultCounters(t *testing.T) {
	app := iterApp()
	data := DataSpec{SizeMB: 8192, Iterations: app.DefaultIterations}
	cfg := DefaultConfig()
	var res Result
	env := Environment{}
	found := false
	for seed := int64(0); seed < 20; seed++ {
		env = faultyEnv(1.0, seed)
		res = Simulate(app, data, env, cfg)
		c := res.FaultCounters()
		if !res.Failed && c != (FaultCounters{}) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed produced a successful faulty run with non-zero counters")
	}

	var buf bytes.Buffer
	if err := WriteEventLog(&buf, app, data, env, cfg, res); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Counters != res.FaultCounters() {
		t.Fatalf("round trip lost counters: wrote %+v, read %+v", res.FaultCounters(), parsed.Counters)
	}
}

func TestFatalFaultProducesFailedRunWithCounters(t *testing.T) {
	app := iterApp()
	data := DataSpec{SizeMB: 8192, Iterations: app.DefaultIterations}
	// Brutal profile: every shuffle attempt fails, so the first shuffle-read
	// stage must exhaust its attempts and abort the run.
	p := &FaultProfile{FetchFailureRate: 1.0, MaxStageAttempts: 4, Seed: 1}
	res := Simulate(app, data, ClusterB.WithFaults(p), DefaultConfig())
	if !res.Failed {
		t.Fatal("certain fetch failure must abort the run")
	}
	if res.Seconds != FailCap {
		t.Fatalf("aborted run should report the failure cap, got %v", res.Seconds)
	}
	if res.FailReason == "" {
		t.Fatal("aborted run must explain itself")
	}
}

func TestReseededShiftsOnlySeed(t *testing.T) {
	p := ScaledFaults(0.5, 10)
	q := p.Reseeded(3)
	if q.Seed != 13 {
		t.Fatalf("seed = %d, want 13", q.Seed)
	}
	q.Seed = p.Seed
	if !reflect.DeepEqual(p, q) {
		t.Fatal("Reseeded changed more than the seed")
	}
	var nilP *FaultProfile
	if nilP.Reseeded(5) != nil {
		t.Fatal("nil must stay nil")
	}
}
