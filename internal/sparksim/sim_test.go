package sparksim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testApp returns a small two-stage application for simulator tests.
func testApp() *AppSpec {
	return &AppSpec{
		Name:   "TestApp",
		Abbrev: "TA",
		Family: "mapreduce",
		MainCode: `val x = sc.textFile(in).map(f).reduceByKey(_+_)
x.saveAsTextFile(out)`,
		Stages: []StageSpec{
			{
				Name: "read", Ops: []string{"textFile", "map"},
				Edges: [][2]int{{0, 1}}, Code: "val x = sc.textFile(in).map(f)",
				InputFrac: 1.0,
			},
			{
				Name: "reduce", Ops: []string{"reduceByKey", "saveAsTextFile"},
				Edges: [][2]int{{0, 1}}, Code: "x.reduceByKey(_+_).saveAsTextFile(out)",
				InputFrac: 0.8, ShuffleReadFrac: 0.5,
			},
		},
		DefaultIterations: 1,
		RowBytes:          100,
		Columns:           2,
		SkewFactor:        1.2,
	}
}

func iterApp() *AppSpec {
	a := testApp()
	a.Stages = append(a.Stages, StageSpec{
		Name: "iter", Ops: []string{"map", "treeAggregate"},
		Edges: [][2]int{{0, 1}}, Code: "data.map(g).treeAggregate(z)(s, c)",
		InputFrac: 0.9, Iterated: true, ReadsCache: true, OutputFrac: 0.0001,
	})
	a.Stages[0].Ops = append(a.Stages[0].Ops, "cache")
	a.DefaultIterations = 5
	return a
}

func TestDefaultConfigWithinBounds(t *testing.T) {
	c := DefaultConfig()
	for i, k := range Knobs {
		if c[i] < k.Min || c[i] > k.Max {
			t.Fatalf("default %s = %v outside [%v,%v]", k.Name, c[i], k.Min, k.Max)
		}
	}
}

func TestClampRoundsAndBounds(t *testing.T) {
	var c Config
	for i := range c {
		c[i] = 1e9
	}
	c = c.Clamp()
	for i, k := range Knobs {
		if c[i] != k.Max {
			t.Fatalf("clamp high failed for %s: %v", k.Name, c[i])
		}
	}
	for i := range c {
		c[i] = -1e9
	}
	c = c.Clamp()
	for i, k := range Knobs {
		if c[i] != k.Min {
			t.Fatalf("clamp low failed for %s: %v", k.Name, c[i])
		}
	}
	c[KnobExecutorCores] = 3.7
	c = c.Clamp()
	if c[KnobExecutorCores] != 4 {
		t.Fatalf("int knob not rounded: %v", c[KnobExecutorCores])
	}
	c[KnobShuffleCompress] = 0.7
	c = c.Clamp()
	if c[KnobShuffleCompress] != 1 {
		t.Fatalf("bool knob not snapped: %v", c[KnobShuffleCompress])
	}
}

func TestNormalizedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomConfig(rng)
		back := FromNormalized(c.Normalized())
		for i := range c {
			if math.Abs(back[i]-c[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConfigAlwaysLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		c := RandomConfig(rng)
		for j, k := range Knobs {
			if c[j] < k.Min || c[j] > k.Max {
				t.Fatalf("random config knob %s out of bounds: %v", k.Name, c[j])
			}
			if k.Type != KnobFloat && c[j] != math.Round(c[j]) {
				t.Fatalf("discrete knob %s not integral: %v", k.Name, c[j])
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	app := testApp()
	d := app.MakeData(100)
	cfg := DefaultConfig()
	r1 := Simulate(app, d, ClusterA, cfg)
	r2 := Simulate(app, d, ClusterA, cfg)
	if r1.Seconds != r2.Seconds {
		t.Fatalf("simulation not deterministic: %v vs %v", r1.Seconds, r2.Seconds)
	}
	if len(r1.Stages) != len(r2.Stages) {
		t.Fatal("stage counts differ")
	}
}

func TestStageTimesSumToTotal(t *testing.T) {
	app := iterApp()
	d := app.MakeData(100)
	r := Simulate(app, d, ClusterB, DefaultConfig())
	var sum float64
	for _, s := range r.Stages {
		sum += s.Seconds
	}
	if math.Abs(sum-r.Seconds) > 1e-9 {
		t.Fatalf("stage sum %v != total %v", sum, r.Seconds)
	}
}

func TestIteratedStagesRepeat(t *testing.T) {
	app := iterApp()
	d := app.MakeData(100)
	d.Iterations = 7
	r := Simulate(app, d, ClusterA, DefaultConfig())
	// 2 non-iterated + 7 iterated instances.
	if len(r.Stages) != 2+7 {
		t.Fatalf("expected 9 stage instances, got %d", len(r.Stages))
	}
}

func TestMoreDataTakesLonger(t *testing.T) {
	app := testApp()
	cfg := DefaultConfig()
	small := Simulate(app, app.MakeData(50), ClusterA, cfg)
	big := Simulate(app, app.MakeData(500), ClusterA, cfg)
	if big.Seconds <= small.Seconds {
		t.Fatalf("10x data not slower: %v vs %v", big.Seconds, small.Seconds)
	}
}

func TestMoreExecutorsHelpOnBigData(t *testing.T) {
	app := testApp()
	d := app.MakeData(2000)
	few := DefaultConfig()
	few[KnobExecutorInstances] = 1
	many := DefaultConfig()
	many[KnobExecutorInstances] = 16
	many[KnobDefaultParallelism] = 128
	rFew := Simulate(app, d, ClusterB, few)
	rMany := Simulate(app, d, ClusterB, many)
	if rMany.Seconds >= rFew.Seconds {
		t.Fatalf("scaling out did not help: %v vs %v", rMany.Seconds, rFew.Seconds)
	}
}

func TestOversizedExecutorFails(t *testing.T) {
	app := testApp()
	cfg := DefaultConfig()
	cfg[KnobExecutorMemory] = 32 // cluster C nodes have 16 GB
	r := Simulate(app, app.MakeData(100), ClusterC, cfg)
	if !r.Failed {
		t.Fatal("expected allocation failure for 32GB executor on 16GB node")
	}
	if r.Seconds != FailCap {
		t.Fatalf("failed run should record FailCap, got %v", r.Seconds)
	}
}

func TestTinyMemoryOOMsOnBigData(t *testing.T) {
	app := testApp()
	cfg := DefaultConfig()
	cfg[KnobExecutorMemory] = 1
	cfg[KnobExecutorCores] = 16 // 16 tasks sharing 1GB heap
	cfg[KnobDefaultParallelism] = 8
	cfg[KnobExecutorInstances] = 1
	r := Simulate(app, app.MakeData(20000), ClusterA, cfg)
	if !r.Failed {
		t.Fatalf("expected OOM, got %v s", r.Seconds)
	}
}

func TestDriverResultSizeLimit(t *testing.T) {
	app := testApp()
	app.Stages[1].Ops = append(app.Stages[1].Ops, "collect")
	app.Stages[1].OutputFrac = 0.8
	cfg := DefaultConfig()
	cfg[KnobDriverMaxResultSize] = 256
	r := Simulate(app, app.MakeData(5000), ClusterB, cfg)
	if !r.Failed {
		t.Fatal("expected maxResultSize failure")
	}
}

func TestCacheHitImprovesIterativeApp(t *testing.T) {
	app := iterApp()
	d := app.MakeData(4000)
	d.Iterations = 10
	noCache := DefaultConfig()
	noCache[KnobExecutorMemory] = 2
	noCache[KnobExecutorInstances] = 2
	noCache[KnobMemoryStorageFraction] = 0.1
	withCache := noCache
	withCache[KnobMemoryStorageFraction] = 0.6
	rNo := Simulate(app, d, ClusterB, noCache)
	rYes := Simulate(app, d, ClusterB, withCache)
	if rYes.CacheHitRatio <= rNo.CacheHitRatio {
		t.Fatalf("larger storage fraction should raise hit ratio: %v vs %v", rYes.CacheHitRatio, rNo.CacheHitRatio)
	}
	if rYes.Seconds >= rNo.Seconds {
		t.Fatalf("better caching should speed up iterative app: %v vs %v", rYes.Seconds, rNo.Seconds)
	}
}

func TestShuffleCompressionTradeoff(t *testing.T) {
	// On a slow network (cluster C), compression should help a
	// shuffle-heavy stage.
	app := testApp()
	app.Stages[1].ShuffleReadFrac = 1.0
	d := app.MakeData(4000)
	on := DefaultConfig()
	on[KnobExecutorInstances] = 16
	on[KnobExecutorMemory] = 4
	on[KnobShuffleCompress] = 1
	off := on
	off[KnobShuffleCompress] = 0
	rOn := Simulate(app, d, ClusterC, on)
	rOff := Simulate(app, d, ClusterC, off)
	if rOn.Seconds >= rOff.Seconds {
		t.Fatalf("compression should win on 1Gbps network: %v vs %v", rOn.Seconds, rOff.Seconds)
	}
}

func TestMetricsShape(t *testing.T) {
	app := testApp()
	r := Simulate(app, app.MakeData(100), ClusterA, DefaultConfig())
	m := r.Metrics()
	if len(m) != MetricsLen {
		t.Fatalf("metrics length %d, want %d", len(m), MetricsLen)
	}
	for i, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("metric %d is %v", i, v)
		}
	}
}

func TestExpandedStagesOrder(t *testing.T) {
	app := iterApp()
	d := app.MakeData(10)
	d.Iterations = 3
	seq := app.ExpandedStages(d)
	want := []int{0, 1, 2, 2, 2}
	if len(seq) != len(want) {
		t.Fatalf("sequence %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence %v, want %v", seq, want)
		}
	}
}

func TestEnvironmentFeatures(t *testing.T) {
	for _, e := range AllClusters {
		f := e.Features()
		if len(f) != 6 {
			t.Fatalf("cluster %s: %d env features, want 6", e.Name, len(f))
		}
		for i, v := range f {
			if v <= 0 || v > 1.5 {
				t.Fatalf("cluster %s feature %d out of range: %v", e.Name, i, v)
			}
		}
	}
	if ClusterC.TotalCores() != 128 {
		t.Fatalf("cluster C cores = %d", ClusterC.TotalCores())
	}
}

func TestDataFeatures(t *testing.T) {
	app := testApp()
	d := app.MakeData(100)
	f := d.Features()
	if len(f) != 4 {
		t.Fatalf("data features len %d", len(f))
	}
	// Optional entries are zero when absent (paper Table I).
	d2 := d
	d2.Iterations = 0
	d2.Partitions = 0
	f2 := d2.Features()
	if f2[2] != 0 || f2[3] != 0 {
		t.Fatalf("optional entries should be zero: %v", f2)
	}
}

func TestOpCatalogConsistency(t *testing.T) {
	names := OpNames()
	if len(names) != len(OpCatalog) {
		t.Fatalf("OpNames length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("OpNames not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	for name, op := range OpCatalog {
		if op.Name != name {
			t.Fatalf("op %q has mismatched Name %q", name, op.Name)
		}
		if op.CPU < 0 || op.ShuffleWrite < 0 || op.MemExpand < 0 {
			t.Fatalf("op %q has negative cost", name)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		v := jitter("app", "A", i, i, RandomConfig(rng), 100)
		if v < -1 || v > 1 {
			t.Fatalf("jitter out of range: %v", v)
		}
	}
}

func TestConfigString(t *testing.T) {
	s := DefaultConfig().String()
	if len(s) == 0 {
		t.Fatal("empty config string")
	}
}

// TestSimulationTotalsPositiveProperty: any legal configuration yields a
// positive finite time or an explicit failure at FailCap.
func TestSimulationTotalsPositiveProperty(t *testing.T) {
	app := iterApp()
	d := app.MakeData(200)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := RandomConfig(rng)
		r := Simulate(app, d, ClusterC, cfg)
		if r.Failed {
			return r.Seconds == FailCap && r.FailReason != ""
		}
		return r.Seconds > 0 && !math.IsNaN(r.Seconds) && !math.IsInf(r.Seconds, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
