package sparksim

// Op describes an atomic RDD operation — the label on a node of the
// stage-level DAG scheduler (paper §III-B Step 3). Each operation carries a
// cost signature the simulator aggregates into the stage cost profile, so
// that the same signal NECS learns from (tokens and DAG node labels)
// actually drives execution time.
type Op struct {
	Name string
	// CPU is the relative compute cost per MB processed.
	CPU float64
	// ShuffleWrite is the fraction of stage input written as map output.
	ShuffleWrite float64
	// MemExpand is the in-memory expansion factor contribution (records
	// deserialized, hash tables built, ...).
	MemExpand float64
	// Caches marks operations that persist an RDD into storage memory.
	Caches bool
	// Collects marks operations that return data to the driver.
	Collects bool
}

// OpCatalog maps operation names to their cost signatures. The set covers
// the org/apache/spark/rdd, mllib and graphx operations the paper's
// instrumentation agent monitors.
var OpCatalog = map[string]Op{
	"textFile":               {Name: "textFile", CPU: 0.4, MemExpand: 0.3},
	"hadoopRDD":              {Name: "hadoopRDD", CPU: 0.4, MemExpand: 0.3},
	"parallelize":            {Name: "parallelize", CPU: 0.2, MemExpand: 0.2},
	"map":                    {Name: "map", CPU: 0.6, MemExpand: 0.4},
	"mapValues":              {Name: "mapValues", CPU: 0.5, MemExpand: 0.3},
	"mapPartitions":          {Name: "mapPartitions", CPU: 0.7, MemExpand: 0.5},
	"flatMap":                {Name: "flatMap", CPU: 0.8, MemExpand: 0.9},
	"filter":                 {Name: "filter", CPU: 0.3, MemExpand: 0.1},
	"distinct":               {Name: "distinct", CPU: 0.9, ShuffleWrite: 0.7, MemExpand: 0.8},
	"sample":                 {Name: "sample", CPU: 0.25, MemExpand: 0.1},
	"union":                  {Name: "union", CPU: 0.15, MemExpand: 0.2},
	"zipPartitions":          {Name: "zipPartitions", CPU: 0.5, MemExpand: 0.6},
	"zipWithIndex":           {Name: "zipWithIndex", CPU: 0.3, MemExpand: 0.2},
	"reduceByKey":            {Name: "reduceByKey", CPU: 1.0, ShuffleWrite: 0.5, MemExpand: 0.9},
	"aggregateByKey":         {Name: "aggregateByKey", CPU: 1.0, ShuffleWrite: 0.5, MemExpand: 0.9},
	"groupByKey":             {Name: "groupByKey", CPU: 0.8, ShuffleWrite: 1.0, MemExpand: 1.6},
	"sortByKey":              {Name: "sortByKey", CPU: 1.3, ShuffleWrite: 1.0, MemExpand: 1.2},
	"repartition":            {Name: "repartition", CPU: 0.3, ShuffleWrite: 1.0, MemExpand: 0.5},
	"partitionBy":            {Name: "partitionBy", CPU: 0.3, ShuffleWrite: 1.0, MemExpand: 0.5},
	"coalesce":               {Name: "coalesce", CPU: 0.2, MemExpand: 0.2},
	"join":                   {Name: "join", CPU: 1.1, ShuffleWrite: 0.8, MemExpand: 1.4},
	"leftOuterJoin":          {Name: "leftOuterJoin", CPU: 1.1, ShuffleWrite: 0.8, MemExpand: 1.4},
	"cogroup":                {Name: "cogroup", CPU: 1.2, ShuffleWrite: 0.9, MemExpand: 1.7},
	"aggregate":              {Name: "aggregate", CPU: 0.9, MemExpand: 0.6, Collects: true},
	"treeAggregate":          {Name: "treeAggregate", CPU: 0.9, ShuffleWrite: 0.15, MemExpand: 0.6, Collects: true},
	"reduce":                 {Name: "reduce", CPU: 0.7, MemExpand: 0.3, Collects: true},
	"count":                  {Name: "count", CPU: 0.3, Collects: true},
	"collect":                {Name: "collect", CPU: 0.4, MemExpand: 0.3, Collects: true},
	"take":                   {Name: "take", CPU: 0.1, Collects: true},
	"saveAsTextFile":         {Name: "saveAsTextFile", CPU: 0.5, MemExpand: 0.2},
	"cache":                  {Name: "cache", CPU: 0.15, MemExpand: 0.8, Caches: true},
	"persist":                {Name: "persist", CPU: 0.15, MemExpand: 0.8, Caches: true},
	"broadcast":              {Name: "broadcast", CPU: 0.2, MemExpand: 0.3},
	"mapPartitionsWithIndex": {Name: "mapPartitionsWithIndex", CPU: 0.7, MemExpand: 0.5},
	"foreachPartition":       {Name: "foreachPartition", CPU: 0.5, MemExpand: 0.2},
	"keyBy":                  {Name: "keyBy", CPU: 0.3, MemExpand: 0.3},
	"lookup":                 {Name: "lookup", CPU: 0.4, Collects: true},
	"glom":                   {Name: "glom", CPU: 0.2, MemExpand: 0.6},
	"checkpoint":             {Name: "checkpoint", CPU: 0.3, MemExpand: 0.1},
	"mapToPair":              {Name: "mapToPair", CPU: 0.6, MemExpand: 0.4},
}

// OpNames returns the catalog keys in sorted order; the feature package
// uses this as the DAG node-label vocabulary (S atomic operations).
func OpNames() []string {
	names := make([]string, 0, len(OpCatalog))
	for n := range OpCatalog {
		names = append(names, n)
	}
	// Deterministic order without importing sort in callers.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
