package core

import (
	"math"
	"math/rand"
	"testing"

	"lite/internal/sparksim"
	"lite/internal/workload"
)

func TestCloneIsIndependent(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount")}
	ds := smallDataset(t, apps, 2, 41)
	cfg := fastConfig()
	cfg.Epochs = 1
	rng := rand.New(rand.NewSource(42))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	clone := model.Clone()

	// Same predictions initially.
	encoded := EncodeAll(enc, ds.Instances)
	before := model.Predict(encoded[0])
	if got := clone.Predict(encoded[0]); math.Abs(got-before) > 1e-12 {
		t.Fatalf("clone predicts differently: %v vs %v", got, before)
	}
	// Mutating the clone must not affect the original.
	clone.Params()[0].Value.Fill(9)
	if got := model.Predict(encoded[0]); math.Abs(got-before) > 1e-12 {
		t.Fatal("mutating clone changed original")
	}
	// The encoder is intentionally shared.
	if clone.Encoder != model.Encoder {
		t.Fatal("clone should share the encoder")
	}
}

func TestRecommendFromSingleCandidate(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount")}
	opts := DefaultTrainOptions()
	opts.NECS = fastConfig()
	opts.NECS.Epochs = 1
	opts.Collect.ConfigsPerInstance = 2
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterA}
	opts.Collect.Sizes = []int{0}
	tuner, _ := Train(apps, opts)

	app := apps[0]
	data := app.Spec.MakeData(100)
	only := sparksim.DefaultConfig()
	rec := tuner.RecommendFrom(app.Spec, data, sparksim.ClusterA, []sparksim.Config{only})
	if rec.Config != only {
		t.Fatal("single candidate must be recommended")
	}
	if len(rec.Ranked) != 1 {
		t.Fatalf("ranked length %d", len(rec.Ranked))
	}
}

func TestDomainAccuracyBounds(t *testing.T) {
	apps := []*workload.App{workload.ByName("SVM")}
	ds := smallDataset(t, apps, 3, 43)
	cfg := fastConfig()
	cfg.Epochs = 1
	rng := rand.New(rand.NewSource(44))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	encoded := EncodeAll(enc, ds.Instances)
	half := len(encoded) / 2
	acc := DomainAccuracy(model, encoded[:half], encoded[half:], DefaultAMUConfig(), rng)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of [0,1]", acc)
	}
	// Degenerate call.
	if got := DomainAccuracy(model, nil, nil, DefaultAMUConfig(), rng); got != 0.5 {
		t.Fatalf("empty-domain accuracy %v, want 0.5", got)
	}
}

func TestAMUNoTargetIsStable(t *testing.T) {
	apps := []*workload.App{workload.ByName("Terasort")}
	ds := smallDataset(t, apps, 3, 45)
	cfg := fastConfig()
	cfg.Epochs = 2
	rng := rand.New(rand.NewSource(46))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	source := EncodeAll(enc, ds.Instances)
	model.Fit(source, rng)

	// Updating with source only (no target) is just continued training;
	// the loss must not blow up.
	amu := DefaultAMUConfig()
	amu.Epochs = 1
	loss := AdaptiveModelUpdate(model, source, nil, amu, rng)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("AMU loss %v", loss)
	}
	if AdaptiveModelUpdate(model, nil, nil, amu, rng) != 0 {
		t.Fatal("empty AMU should be a no-op returning 0")
	}
}

func TestDisableOOVChangesEncoding(t *testing.T) {
	apps := []*workload.App{workload.ByName("KMeans")}
	ds := smallDataset(t, apps, 2, 47)
	normal := fastConfig()
	unk := normal
	unk.DisableOOV = true
	encN := NewEncoder(ds.Instances, normal)
	encU := NewEncoder(ds.Instances, unk)

	// A never-seen token maps to OOVID under the normal encoder and is
	// dropped under Cold-UNK.
	idsN := encN.Vocab.Encode("zebraUnknownToken map", 2)
	idsU := encU.Vocab.Encode("zebraUnknownToken map", 2)
	if idsN[0] != 0 {
		t.Fatalf("normal encoder should map unknown token to oov, got %d", idsN[0])
	}
	if idsU[0] == 0 && idsU[1] == 0 {
		t.Fatal("Cold-UNK encoder should drop unknown tokens, not map them to oov")
	}
}

func TestCollectRespectsOptions(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount")}
	opts := CollectOptions{
		ConfigsPerInstance: 3,
		Clusters:           []sparksim.Environment{sparksim.ClusterB},
		IncludeDefault:     true,
		Sizes:              []int{1},
	}
	ds := Collect(apps, opts, rand.New(rand.NewSource(48)))
	if len(ds.Runs) != 3 {
		t.Fatalf("runs %d, want 3", len(ds.Runs))
	}
	// First config must be the default when IncludeDefault is set.
	if ds.Runs[0].Config != sparksim.DefaultConfig() {
		t.Fatal("first run should use the default configuration")
	}
	for _, run := range ds.Runs {
		if run.Env.Name != "B" {
			t.Fatal("collection should respect the cluster filter")
		}
		if run.Data.SizeMB != apps[0].Sizes.Train[1] {
			t.Fatal("collection should respect the size filter")
		}
	}
}

func TestACGTopFortyPercentSelection(t *testing.T) {
	// All runs from one app with controlled times: ACG's σ must come from
	// the fast runs only. We verify indirectly: a knob set identically in
	// the fast runs but randomly in slow ones gets a tight region.
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("SVM")}
	ds := smallDataset(t, apps, 8, 49)
	g := NewCandidateGenerator(ds.Runs, rand.New(rand.NewSource(50)))
	lo, hi := g.Region("WordCount", apps[0].Spec.MakeData(1024))
	for d := 0; d < sparksim.NumKnobs; d++ {
		if lo[d] > hi[d] {
			t.Fatalf("inverted region for knob %d", d)
		}
	}
}
