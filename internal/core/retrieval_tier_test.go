package core

import (
	"context"
	"testing"

	"lite/internal/instrument"
	"lite/internal/retrieval"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// degradedTunerWithStore builds a tuner whose NECS tier cannot answer
// (Model nil) but which carries a retrieval store seeded with one measured
// run of each listed app.
func degradedTunerWithStore(t *testing.T, apps ...string) (*Tuner, sparksim.Environment) {
	t.Helper()
	env := sparksim.ClusterC
	var runs []instrument.AppInstance
	for _, name := range apps {
		app := workload.ByName(name)
		if app == nil {
			t.Fatalf("unknown workload %q", name)
		}
		run := instrument.Run(app.Spec, app.Spec.MakeData(512), env, sparksim.DefaultConfig())
		if run.Result.Failed {
			t.Fatalf("seed run for %s failed", name)
		}
		runs = append(runs, run)
	}
	return &Tuner{Retrieval: retrieval.BuildFromRuns(runs)}, env
}

func TestRetrievalTierServesAfterNECSFailure(t *testing.T) {
	tuner, env := degradedTunerWithStore(t, "WordCount", "Terasort")
	app := workload.ByName("WordCount").Spec
	sr, err := tuner.RecommendSafe(app, app.MakeData(2048), env)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Tier != TierRetrieval {
		t.Fatalf("tier = %q (notes %v), want %q", sr.Tier, sr.Notes, TierRetrieval)
	}
	if !sparksim.Feasible(sr.Config, env) {
		t.Fatal("retrieval-tier config infeasible")
	}
	if len(sr.Notes) != 1 {
		t.Fatalf("want exactly the necs note, got %v", sr.Notes)
	}
}

func TestRetrievalMissFallsThroughToACG(t *testing.T) {
	// Store holds only WordCount-family entries; force a miss by raising
	// the similarity floor out of reach via a store that is empty instead:
	// an empty store is the cleanest guaranteed miss.
	tuner, env := degradedTunerWithStore(t, "WordCount")
	tuner.Retrieval = retrieval.New() // empty: boot before any data
	app := workload.ByName("WordCount").Spec
	data := app.MakeData(512)

	// Without an ACG the chain must land on the safe default with one note
	// per skipped tier, in chain order.
	sr, err := tuner.RecommendSafe(app, data, env)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Tier != TierSafeDefault {
		t.Fatalf("tier = %q, want %q", sr.Tier, TierSafeDefault)
	}
	if len(sr.Notes) != 3 {
		t.Fatalf("want notes for necs, retrieval, acg — got %v", sr.Notes)
	}
	for i, prefix := range []string{"necs: ", "retrieval: ", "acg: "} {
		if len(sr.Notes[i]) < len(prefix) || sr.Notes[i][:len(prefix)] != prefix {
			t.Fatalf("note %d = %q, want prefix %q", i, sr.Notes[i], prefix)
		}
	}
}

func TestRetrievalTierSkippedWithoutStore(t *testing.T) {
	tuner := &Tuner{} // no model, no ACG, no store
	app := workload.ByName("WordCount").Spec
	env := sparksim.ClusterC
	sr, err := tuner.RecommendSafe(app, app.MakeData(512), env)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Tier != TierSafeDefault {
		t.Fatalf("tier = %q, want safe-default", sr.Tier)
	}
	if sr.Notes[1] != "retrieval: no store attached" {
		t.Fatalf("retrieval note = %q", sr.Notes[1])
	}
}

func TestCancelledCtxAbortsBeforeRetrieval(t *testing.T) {
	// A cancelled context must abort the chain at the NECS tier with the
	// ctx error — never demote into the retrieval tier.
	tuner, env := degradedTunerWithStore(t, "WordCount")
	app := workload.ByName("WordCount").Spec
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tuner.RecommendSafeCtx(ctx, app, app.MakeData(512), env)
	if err == nil {
		t.Fatal("cancelled ctx must surface an error, not a demoted recommendation")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRecommendColdCtxServesUnseenApp(t *testing.T) {
	tuner, env := degradedTunerWithStore(t, "WordCount", "Terasort")
	// An "unseen" app that shares WordCount's code/DAG vocabulary: embed
	// the spec directly, as serve does for wire features.
	emb := retrieval.EmbedApp(workload.ByName("WordCount").Spec)
	sr, err := tuner.RecommendColdCtx(context.Background(), emb, 4096, env)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Tier != TierRetrieval {
		t.Fatalf("tier = %q (notes %v), want retrieval", sr.Tier, sr.Notes)
	}
	if !sparksim.Feasible(sr.Config, env) {
		t.Fatal("cold recommendation infeasible")
	}

	// A dissimilar embedding degrades to the safe default, still 200-able.
	far := retrieval.Embed([]string{"completely", "unrelated", "vocabulary"}, []string{"noop"})
	sr, err = tuner.RecommendColdCtx(context.Background(), far, 4096, env)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Tier != TierSafeDefault {
		t.Fatalf("dissimilar embedding: tier = %q, want safe-default", sr.Tier)
	}

	// Cancellation aborts before any store work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tuner.RecommendColdCtx(ctx, emb, 4096, env); err != context.Canceled {
		t.Fatalf("cancelled cold ctx: err = %v, want context.Canceled", err)
	}
}

func TestRetrievalAnchor(t *testing.T) {
	tuner, env := degradedTunerWithStore(t, "WordCount")
	app := workload.ByName("WordCount").Spec
	cfg, ok := tuner.RetrievalAnchor(app, app.MakeData(1024), env)
	if !ok {
		t.Fatal("anchor miss on a store containing the app itself")
	}
	if !sparksim.Feasible(cfg, env) {
		t.Fatal("anchor config infeasible")
	}
	tuner.Retrieval = nil
	if _, ok := tuner.RetrievalAnchor(app, app.MakeData(1024), env); ok {
		t.Fatal("anchor must miss without a store")
	}
}

func TestCloneForUpdateSharesRetrievalStore(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount")}
	opts := DefaultTrainOptions()
	opts.NECS = fastConfig()
	opts.Collect.ConfigsPerInstance = 2
	opts.Collect.Sizes = []int{0}
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterC}
	tuner, ds := Train(apps, opts)
	tuner.Retrieval = retrieval.BuildFromRuns(ds.Runs)
	clone := tuner.CloneForUpdate(7)
	if clone.Retrieval != tuner.Retrieval {
		t.Fatal("CloneForUpdate must share the retrieval store pointer")
	}
}
