package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"lite/internal/forest"
	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/stats"
)

// CandidateGenerator implements Adaptive Candidate Generation (paper
// §IV-A): per knob d, a Random Forest Regression model maps (input
// datasize, application) to a promising "mean value" RFR^d(a_w, d_w); the
// search region is [RFR−σ^d, RFR+σ^d] where σ^d is the standard deviation
// of that knob over the top-40% fastest training application instances.
type CandidateGenerator struct {
	models  [sparksim.NumKnobs]*forest.Forest
	sigma   [sparksim.NumKnobs]float64
	appIdx  map[string]int
	numApps int

	// SigmaScale multiplies the span σ^d of every knob's search region
	// (1 = the paper's setting; the ablation benches sweep it).
	SigmaScale float64
}

// acgFeatures builds the RFR input: log-scaled datasize, iteration count
// and a one-hot application indicator.
func (g *CandidateGenerator) acgFeatures(appName string, data sparksim.DataSpec) []float64 {
	f := make([]float64, 2+g.numApps)
	df := data.Features()
	f[0] = df[0] // log rows
	f[1] = df[2] // iterations
	if i, ok := g.appIdx[appName]; ok {
		f[2+i] = 1
	}
	return f
}

// NewCandidateGenerator trains the per-knob RFR models from application
// runs. Only the top 40% of runs by execution time (per application) are
// used, so the models regress toward knob values that worked well.
func NewCandidateGenerator(runs []instrument.AppInstance, rng *rand.Rand) *CandidateGenerator {
	g := &CandidateGenerator{appIdx: map[string]int{}}
	for i := range runs {
		if _, ok := g.appIdx[runs[i].AppName]; !ok {
			g.appIdx[runs[i].AppName] = g.numApps
			g.numApps++
		}
	}

	// Select the top-40% fastest runs per application.
	byApp := map[string][]int{}
	for i := range runs {
		byApp[runs[i].AppName] = append(byApp[runs[i].AppName], i)
	}
	// Iterate apps in sorted order: the row order of the training matrix
	// feeds the forest's bootstrap sampling, so map-order iteration here
	// would make the fitted models (and every downstream recommendation)
	// vary run-to-run despite the fixed seed.
	appNames := make([]string, 0, len(byApp))
	for name := range byApp {
		appNames = append(appNames, name)
	}
	sort.Strings(appNames)
	var good []int
	for _, name := range appNames {
		idxs := byApp[name]
		sort.Slice(idxs, func(a, b int) bool {
			sa, sb := runs[idxs[a]].Result.Seconds, runs[idxs[b]].Result.Seconds
			if sa != sb {
				return sa < sb
			}
			return idxs[a] < idxs[b] // stable under timing ties (failure sentinels)
		})
		cut := (len(idxs)*2 + 4) / 5 // 40%, at least 1
		if cut < 1 {
			cut = 1
		}
		good = append(good, idxs[:cut]...)
	}

	x := make([][]float64, len(good))
	for j, i := range good {
		x[j] = g.acgFeatures(runs[i].AppName, runs[i].Data)
	}
	params := forest.ForestParams{NumTrees: 30, Tree: forest.TreeParams{MaxDepth: 8, MinSamplesLeaf: 2}}
	for d := 0; d < sparksim.NumKnobs; d++ {
		y := make([]float64, len(good))
		vals := make([]float64, len(good))
		for j, i := range good {
			y[j] = runs[i].Config[d]
			vals[j] = runs[i].Config[d]
		}
		g.models[d] = forest.FitForest(x, y, params, rng)
		g.sigma[d] = stats.StdDev(vals)
		if g.sigma[d] == 0 {
			// Degenerate: fall back to a tenth of the knob range.
			g.sigma[d] = (sparksim.Knobs[d].Max - sparksim.Knobs[d].Min) / 10
		}
	}
	return g
}

// Region returns the per-knob search interval [lo, hi] for the application
// on the given data (Equation 7).
func (g *CandidateGenerator) Region(appName string, data sparksim.DataSpec) (lo, hi sparksim.Config) {
	f := g.acgFeatures(appName, data)
	scale := g.SigmaScale
	if scale <= 0 {
		scale = 1
	}
	for d := 0; d < sparksim.NumKnobs; d++ {
		center := g.models[d].Predict(f)
		k := sparksim.Knobs[d]
		l := center - scale*g.sigma[d]
		h := center + scale*g.sigma[d]
		if l < k.Min {
			l = k.Min
		}
		if h > k.Max {
			h = k.Max
		}
		if l > h {
			l, h = h, l
		}
		lo[d] = l
		hi[d] = h
	}
	return lo, hi
}

// Sample draws n candidate configurations uniformly from the region of
// interest (paper: "we randomly sample a small number of candidates in the
// search space").
func (g *CandidateGenerator) Sample(appName string, data sparksim.DataSpec, n int, rng *rand.Rand) []sparksim.Config {
	lo, hi := g.Region(appName, data)
	out := make([]sparksim.Config, n)
	for i := 0; i < n; i++ {
		var c sparksim.Config
		for d := 0; d < sparksim.NumKnobs; d++ {
			c[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
		}
		out[i] = c.Clamp()
	}
	return out
}

// SampleFeasible is Sample restricted to configurations that pass the
// environment's static allocation check (what the cluster manager rejects
// at submit time anyway); it retries rejected draws a bounded number of
// times and falls back to clamping executor memory/cores into capacity.
func (g *CandidateGenerator) SampleFeasible(appName string, data sparksim.DataSpec, env sparksim.Environment, n int, rng *rand.Rand) []sparksim.Config {
	lo, hi := g.Region(appName, data)
	out := make([]sparksim.Config, 0, n)
	for len(out) < n {
		var c sparksim.Config
		for attempt := 0; ; attempt++ {
			for d := 0; d < sparksim.NumKnobs; d++ {
				c[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
			}
			c = c.Clamp()
			if sparksim.Feasible(c, env) {
				break
			}
			if attempt >= 16 {
				c = ForceFeasible(c, env)
				break
			}
		}
		out = append(out, c)
	}
	return out
}

// ForceFeasible shrinks executor memory, overhead and cores until the
// configuration can be allocated on the environment.
func ForceFeasible(c sparksim.Config, env sparksim.Environment) sparksim.Config {
	c = c.Clamp()
	if c[sparksim.KnobExecutorCores] > float64(env.Cores) {
		c[sparksim.KnobExecutorCores] = float64(env.Cores)
	}
	for !sparksim.Feasible(c, env) && c[sparksim.KnobExecutorMemory] > sparksim.Knobs[sparksim.KnobExecutorMemory].Min {
		c[sparksim.KnobExecutorMemory]--
		if c[sparksim.KnobExecutorMemoryOverhead] > 1024 {
			c[sparksim.KnobExecutorMemoryOverhead] = 1024
		}
	}
	return c.Clamp()
}

// acgJSON is the serialized form of the candidate generator.
type acgJSON struct {
	Models     []*forest.Forest `json:"models"`
	Sigma      []float64        `json:"sigma"`
	AppIdx     map[string]int   `json:"app_idx"`
	NumApps    int              `json:"num_apps"`
	SigmaScale float64          `json:"sigma_scale"`
}

// MarshalJSON serializes the ACG state (per-knob forests, spans, app map).
func (g *CandidateGenerator) MarshalJSON() ([]byte, error) {
	out := acgJSON{AppIdx: g.appIdx, NumApps: g.numApps, SigmaScale: g.SigmaScale}
	for d := 0; d < sparksim.NumKnobs; d++ {
		out.Models = append(out.Models, g.models[d])
		out.Sigma = append(out.Sigma, g.sigma[d])
	}
	return json.Marshal(&out)
}

// UnmarshalJSON restores the ACG state.
func (g *CandidateGenerator) UnmarshalJSON(b []byte) error {
	var in acgJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	if len(in.Models) != sparksim.NumKnobs || len(in.Sigma) != sparksim.NumKnobs {
		return fmt.Errorf("core: serialized ACG has %d models and %d sigmas, want %d",
			len(in.Models), len(in.Sigma), sparksim.NumKnobs)
	}
	for d := 0; d < sparksim.NumKnobs; d++ {
		g.models[d] = in.Models[d]
		g.sigma[d] = in.Sigma[d]
	}
	g.appIdx = in.AppIdx
	g.numApps = in.NumApps
	g.SigmaScale = in.SigmaScale
	return nil
}

// PointPrediction returns the raw RFR point estimate per knob — the "RFR"
// competitor of Table VIII(a), which recommends exactly this configuration.
func (g *CandidateGenerator) PointPrediction(appName string, data sparksim.DataSpec) sparksim.Config {
	f := g.acgFeatures(appName, data)
	var c sparksim.Config
	for d := 0; d < sparksim.NumKnobs; d++ {
		c[d] = g.models[d].Predict(f)
	}
	return c.Clamp()
}
