package core

import (
	"bytes"
	"errors"
	"testing"

	"lite/internal/sparksim"
	"lite/internal/workload"
)

// faultWriter fails (optionally after a short write) once n bytes have been
// accepted — the io.Writer analogue of a disk filling up mid-save.
type faultWriter struct {
	limit   int
	written int
}

var errWriterFault = errors.New("injected writer fault")

func (w *faultWriter) Write(p []byte) (int, error) {
	if w.written >= w.limit {
		return 0, errWriterFault
	}
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		w.written = w.limit
		return n, errWriterFault
	}
	w.written += len(p)
	return len(p), nil
}

func persistFaultTuner(t *testing.T) *Tuner {
	t.Helper()
	apps := []*workload.App{workload.ByName("WordCount")}
	opts := DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = 2
	opts.Collect.Sizes = []int{0}
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterC}
	opts.NECS.Epochs = 1
	tuner, _ := Train(apps, opts)
	return tuner
}

// TestTunerSaveSurfacesWriterErrors: Save must report the underlying write
// failure, not silently truncate — a caller that treats a nil error as "the
// snapshot is on disk" (the serve layer's crash-safe persister) depends on
// it.
func TestTunerSaveSurfacesWriterErrors(t *testing.T) {
	tuner := persistFaultTuner(t)

	var full bytes.Buffer
	if err := tuner.Save(&full); err != nil {
		t.Fatalf("baseline save: %v", err)
	}
	if full.Len() == 0 {
		t.Fatal("baseline save wrote nothing")
	}

	// Fail at several points through the stream, including a short write
	// mid-payload and a failure on the very first byte.
	for _, limit := range []int{0, 1, full.Len() / 2, full.Len() - 1} {
		if err := tuner.Save(&faultWriter{limit: limit}); !errors.Is(err, errWriterFault) {
			t.Errorf("save with writer failing at %d bytes: err = %v, want injected fault", limit, err)
		}
	}
}

// TestLoadTunerRejectsTruncatedSnapshot: every truncation of a valid
// snapshot must fail to load — never yield a quietly half-initialized tuner.
func TestLoadTunerRejectsTruncatedSnapshot(t *testing.T) {
	tuner := persistFaultTuner(t)
	var full bytes.Buffer
	if err := tuner.Save(&full); err != nil {
		t.Fatal(err)
	}
	data := full.Bytes()
	for _, frac := range []float64{0, 0.25, 0.5, 0.99} {
		cut := int(float64(len(data)) * frac)
		if _, err := LoadTuner(bytes.NewReader(data[:cut]), 1); err == nil {
			t.Errorf("loading snapshot truncated to %d/%d bytes succeeded", cut, len(data))
		}
	}
	if _, err := LoadTuner(bytes.NewReader(data), 1); err != nil {
		t.Fatalf("loading the untruncated snapshot failed: %v", err)
	}
}
