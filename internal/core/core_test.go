package core

import (
	"math"
	"math/rand"
	"testing"

	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/stats"
	"lite/internal/workload"
)

// smallDataset collects a cheap dataset for unit tests.
func smallDataset(t *testing.T, apps []*workload.App, configsPer int, seed int64) *Dataset {
	t.Helper()
	opts := CollectOptions{
		ConfigsPerInstance: configsPer,
		Clusters:           []sparksim.Environment{sparksim.ClusterA, sparksim.ClusterC},
		IncludeDefault:     true,
		Sizes:              []int{0, 2},
	}
	return Collect(apps, opts, rand.New(rand.NewSource(seed)))
}

func fastConfig() NECSConfig {
	cfg := DefaultNECSConfig()
	cfg.Epochs = 4
	cfg.TokenLen = 64
	return cfg
}

func TestLabelRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.5, 60, 7200} {
		if got := SecondsOf(LabelOf(s)); math.Abs(got-s) > 1e-6*(1+s) {
			t.Fatalf("label round trip %v -> %v", s, got)
		}
	}
}

func TestCollectShape(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("PageRank")}
	ds := smallDataset(t, apps, 3, 1)
	// 2 apps × 2 sizes × 2 clusters × 3 configs.
	if len(ds.Runs) != 24 {
		t.Fatalf("got %d runs, want 24", len(ds.Runs))
	}
	if len(ds.Instances) <= len(ds.Runs) {
		t.Fatal("stage segmentation should produce more instances than runs")
	}
}

func TestEncodeAllDeduplicatesIteratedStages(t *testing.T) {
	apps := []*workload.App{workload.ByName("PageRank")}
	ds := smallDataset(t, apps, 2, 2)
	enc := NewEncoder(ds.Instances, fastConfig())
	encoded := EncodeAll(enc, ds.Instances)
	if len(encoded) >= len(ds.Instances) {
		t.Fatalf("dedup failed: %d encoded vs %d raw", len(encoded), len(ds.Instances))
	}
	// Weights must sum to the raw instance count.
	var wsum float64
	for _, e := range encoded {
		wsum += e.Weight
		if e.Weight < 1 {
			t.Fatalf("weight %v < 1", e.Weight)
		}
	}
	if int(wsum) != len(ds.Instances) {
		t.Fatalf("weights sum to %v, want %d", wsum, len(ds.Instances))
	}
}

func TestEncoderCachesAndEncodes(t *testing.T) {
	apps := []*workload.App{workload.ByName("Terasort")}
	ds := smallDataset(t, apps, 2, 3)
	enc := NewEncoder(ds.Instances, fastConfig())
	e1 := enc.Encode(&ds.Instances[0])
	e2 := enc.Encode(&ds.Instances[0])
	if &e1.TokenIDs[0] != &e2.TokenIDs[0] {
		t.Fatal("token encoding not cached")
	}
	if len(e1.TokenIDs) != fastConfig().TokenLen {
		t.Fatalf("token length %d", len(e1.TokenIDs))
	}
	if e1.NodeFeats.Rows != len(ds.Instances[0].Ops) {
		t.Fatal("node features row count mismatch")
	}
	if e1.AHat.Rows != e1.NodeFeats.Rows || e1.AHat.Cols != e1.AHat.Rows {
		t.Fatal("adjacency shape mismatch")
	}
}

func TestNECSLearnsToRankConfigs(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("Terasort")}
	ds := smallDataset(t, apps, 6, 4)
	cfg := fastConfig()
	cfg.Epochs = 10
	rng := rand.New(rand.NewSource(5))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	loss := model.Fit(EncodeAll(enc, ds.Instances), rng)
	if math.IsNaN(loss) || loss > 6 {
		t.Fatalf("training loss too high: %v", loss)
	}
	// Spearman between predicted and actual app times on held-out configs
	// must be clearly positive.
	app := workload.ByName("Terasort")
	d := app.Spec.MakeData(app.Sizes.Valid)
	var preds, actuals []float64
	for i := 0; i < 25; i++ {
		c := sparksim.RandomConfig(rng)
		preds = append(preds, model.PredictApp(app.Spec, d, sparksim.ClusterC, c))
		actuals = append(actuals, sparksim.Simulate(app.Spec, d, sparksim.ClusterC, c).Seconds)
	}
	if rho := stats.Spearman(preds, actuals); rho < 0.3 {
		t.Fatalf("NECS ranking correlation too weak: %v", rho)
	}
}

func TestPredictAppAggregatesStages(t *testing.T) {
	apps := []*workload.App{workload.ByName("KMeans")}
	ds := smallDataset(t, apps, 3, 6)
	cfg := fastConfig()
	cfg.Epochs = 1
	rng := rand.New(rand.NewSource(7))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	app := workload.ByName("KMeans").Spec
	d := app.MakeData(100)
	pred := model.PredictApp(app, d, sparksim.ClusterA, sparksim.DefaultConfig())
	if pred <= 0 || math.IsNaN(pred) {
		t.Fatalf("aggregate prediction %v", pred)
	}
	// The aggregate must equal the sum of clamped per-stage predictions
	// over the expanded stage plan (Equation 5's aggregation).
	plan := app.ExpandedStages(d)
	perStage := map[int]float64{}
	var manual float64
	for _, si := range plan {
		sec, ok := perStage[si]
		if !ok {
			st := &app.Stages[si]
			inst := instrument.StageInstance{
				AppName: app.Name, AppFamily: app.Family, StageIndex: si, StageName: st.Name,
				Code: st.Code, Ops: st.Ops, Edges: st.Edges,
				Config: sparksim.DefaultConfig(), Data: d, Env: sparksim.ClusterA,
			}
			sec = model.PredictSeconds(model.Encoder.Encode(&inst))
			perStage[si] = sec
		}
		manual += sec
	}
	if math.Abs(manual-pred) > 1e-9 {
		t.Fatalf("PredictApp %v != manual aggregation %v", pred, manual)
	}
}

func TestACGRegionInsideKnobDomains(t *testing.T) {
	apps := []*workload.App{workload.ByName("PageRank"), workload.ByName("SVM")}
	ds := smallDataset(t, apps, 6, 8)
	g := NewCandidateGenerator(ds.Runs, rand.New(rand.NewSource(9)))
	lo, hi := g.Region("PageRank", apps[0].Spec.MakeData(1024))
	for d := 0; d < sparksim.NumKnobs; d++ {
		k := sparksim.Knobs[d]
		if lo[d] < k.Min || hi[d] > k.Max || lo[d] > hi[d] {
			t.Fatalf("knob %s region [%v,%v] outside domain [%v,%v]", k.Name, lo[d], hi[d], k.Min, k.Max)
		}
	}
}

func TestACGShrinksSearchSpace(t *testing.T) {
	apps := []*workload.App{workload.ByName("PageRank"), workload.ByName("SVM")}
	ds := smallDataset(t, apps, 8, 10)
	g := NewCandidateGenerator(ds.Runs, rand.New(rand.NewSource(11)))
	lo, hi := g.Region("PageRank", apps[0].Spec.MakeData(1024))
	var shrunk int
	for d := 0; d < sparksim.NumKnobs; d++ {
		k := sparksim.Knobs[d]
		if hi[d]-lo[d] < (k.Max-k.Min)*0.95 {
			shrunk++
		}
	}
	if shrunk < sparksim.NumKnobs/2 {
		t.Fatalf("ACG barely shrinks the space: only %d knobs narrowed", shrunk)
	}
}

func TestACGSampleFeasible(t *testing.T) {
	apps := []*workload.App{workload.ByName("KMeans"), workload.ByName("WordCount")}
	ds := smallDataset(t, apps, 6, 12)
	g := NewCandidateGenerator(ds.Runs, rand.New(rand.NewSource(13)))
	d := apps[0].Spec.MakeData(1024)
	cands := g.SampleFeasible("KMeans", d, sparksim.ClusterC, 32, rand.New(rand.NewSource(14)))
	if len(cands) != 32 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for _, c := range cands {
		if !sparksim.Feasible(c, sparksim.ClusterC) {
			t.Fatalf("infeasible candidate sampled: %v", c)
		}
	}
}

func TestForceFeasible(t *testing.T) {
	var c sparksim.Config
	for i, k := range sparksim.Knobs {
		c[i] = k.Max
	}
	fixed := ForceFeasible(c, sparksim.ClusterC)
	if !sparksim.Feasible(fixed, sparksim.ClusterC) {
		t.Fatal("ForceFeasible produced infeasible config")
	}
}

func TestACGPointPredictionLegal(t *testing.T) {
	apps := []*workload.App{workload.ByName("ALS"), workload.ByName("DecisionTree")}
	ds := smallDataset(t, apps, 6, 15)
	g := NewCandidateGenerator(ds.Runs, rand.New(rand.NewSource(16)))
	c := g.PointPrediction("ALS", apps[0].Spec.MakeData(512))
	for d, k := range sparksim.Knobs {
		if c[d] < k.Min || c[d] > k.Max {
			t.Fatalf("point prediction knob %s out of range: %v", k.Name, c[d])
		}
	}
}

func TestAdaptiveModelUpdateImprovesTargetFit(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("Terasort")}
	ds := smallDataset(t, apps, 5, 17)
	cfg := fastConfig()
	rng := rand.New(rand.NewSource(18))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	source := EncodeAll(enc, ds.Instances)
	model.Fit(source, rng)

	// Target domain: large-data runs on cluster C.
	var target []*Encoded
	var targetRaw []instrument.StageInstance
	for _, app := range apps {
		d := app.Spec.MakeData(app.Sizes.Test)
		for i := 0; i < 4; i++ {
			c := ForceFeasible(sparksim.RandomConfig(rng), sparksim.ClusterC)
			run := instrument.Run(app.Spec, d, sparksim.ClusterC, c)
			targetRaw = append(targetRaw, run.Stages...)
		}
	}
	target = EncodeAll(enc, targetRaw)

	mseBefore := meanSquaredError(model, target)
	amu := DefaultAMUConfig()
	amu.Epochs = 3
	AdaptiveModelUpdate(model, sample(source, 60, rng), target, amu, rng)
	mseAfter := meanSquaredError(model, target)
	if mseAfter >= mseBefore {
		t.Fatalf("AMU did not improve target fit: %v -> %v", mseBefore, mseAfter)
	}
}

func meanSquaredError(m *NECS, data []*Encoded) float64 {
	var s float64
	for _, x := range data {
		d := m.Predict(x) - x.Y
		s += d * d
	}
	return s / float64(len(data))
}

func sample(data []*Encoded, n int, rng *rand.Rand) []*Encoded {
	if n >= len(data) {
		return data
	}
	out := make([]*Encoded, n)
	perm := rng.Perm(len(data))
	for i := 0; i < n; i++ {
		out[i] = data[perm[i]]
	}
	return out
}

func TestDiscriminatorOutputsProbability(t *testing.T) {
	apps := []*workload.App{workload.ByName("SVM")}
	ds := smallDataset(t, apps, 2, 19)
	cfg := fastConfig()
	cfg.Epochs = 1
	rng := rand.New(rand.NewSource(20))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	disc := NewDiscriminator(model, DefaultAMUConfig(), rng)
	encoded := EncodeAll(enc, ds.Instances)
	_, hidden := model.Forward(encoded[0])
	p := disc.Forward(hidden).Scalar()
	if p < 0 || p > 1 {
		t.Fatalf("discriminator output %v not a probability", p)
	}
}

func TestTunerEndToEnd(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("PageRank")}
	opts := DefaultTrainOptions()
	opts.NECS = fastConfig()
	opts.Collect.ConfigsPerInstance = 5
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterA, sparksim.ClusterC}
	opts.Collect.Sizes = []int{0, 3}
	tuner, ds := Train(apps, opts)
	if tuner.Model == nil || tuner.ACG == nil {
		t.Fatal("incomplete tuner")
	}
	app := workload.ByName("PageRank")
	data := app.Spec.MakeData(app.Sizes.Test)
	rec := tuner.Recommend(app.Spec, data, sparksim.ClusterC)
	if len(rec.Ranked) != tuner.NumCandidates {
		t.Fatalf("ranked %d candidates, want %d", len(rec.Ranked), tuner.NumCandidates)
	}
	// Candidates must be ranked by predicted time.
	for i := 1; i < len(rec.Ranked); i++ {
		if rec.Ranked[i].Predicted < rec.Ranked[i-1].Predicted {
			t.Fatal("ranking not sorted")
		}
	}
	// The recommendation must beat the default configuration.
	def := sparksim.Simulate(app.Spec, data, sparksim.ClusterC, sparksim.DefaultConfig()).Seconds
	got := sparksim.Simulate(app.Spec, data, sparksim.ClusterC, rec.Config).Seconds
	if got >= def {
		t.Fatalf("recommendation (%v s) no better than default (%v s)", got, def)
	}
	// Overhead must be far under the paper's 2-second budget.
	if rec.Overhead.Seconds() > 2 {
		t.Fatalf("recommendation overhead %v exceeds 2 s", rec.Overhead)
	}
	_ = ds
}

func TestCollectFeedbackTriggersUpdate(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount")}
	opts := DefaultTrainOptions()
	opts.NECS = fastConfig()
	opts.NECS.Epochs = 2
	opts.Collect.ConfigsPerInstance = 3
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterA}
	opts.Collect.Sizes = []int{0}
	tuner, ds := Train(apps, opts)
	tuner.UpdateBatch = 4
	tuner.AMU.Epochs = 1
	source := EncodeAll(tuner.Model.Encoder, ds.Instances)

	app := workload.ByName("WordCount")
	data := app.Spec.MakeData(app.Sizes.Valid)
	srcN := len(source)
	if srcN > 20 {
		srcN = 20
	}
	updated := false
	for i := 0; i < 3; i++ {
		run := instrument.Run(app.Spec, data, sparksim.ClusterA, sparksim.DefaultConfig())
		updated = tuner.CollectFeedback(run, source[:srcN]) || updated
	}
	if !updated {
		t.Fatal("feedback batch should have triggered an update")
	}
	if len(tuner.Feedback) >= tuner.UpdateBatch {
		t.Fatal("feedback buffer should be drained below the batch size after update")
	}
}

func TestColdStartInstrument(t *testing.T) {
	app := workload.ByName("TriangleCount")
	run, overhead := ColdStartInstrument(app, sparksim.ClusterC)
	if overhead <= 0 {
		t.Fatalf("overhead %v", overhead)
	}
	if len(run.Stages) == 0 {
		t.Fatal("cold-start instrumentation yielded no stages")
	}
	// Cold-start instrumentation runs on the smallest dataset: overhead
	// must be minutes, not hours.
	if overhead > 600 {
		t.Fatalf("cold-start overhead too large: %v s", overhead)
	}
}

func TestSplitByApp(t *testing.T) {
	data := []*Encoded{{AppName: "A"}, {AppName: "B"}, {AppName: "A"}}
	kept, removed := SplitByApp(data, map[string]bool{"A": true})
	if len(kept) != 1 || len(removed) != 2 {
		t.Fatalf("split %d/%d", len(kept), len(removed))
	}
}
