package core

// This file implements the data-parallel training engine behind NECS.Fit
// (and, through the same helpers, AdaptiveModelUpdate): K model replicas
// each process one mini-batch of a K-batch group concurrently, and the
// element-wise mean of the surviving replicas' gradients is applied to the
// primary model with the usual clipping and Adam step.
//
// Semantics relative to the serial loop:
//
//   - The batch schedule (epoch shuffles, batch boundaries, LR decay) is
//     identical — the same rng draws happen in the same order.
//   - K = 1 is bit-identical to serial: a group is one batch, computed on
//     the primary itself, and averaging one gradient divides by 1.0
//     (exact). The golden test in fitpar_test.go enforces this.
//   - K > 1 takes one optimizer step per K batches (at the group's common
//     starting weights) instead of one per batch — the standard
//     synchronous data-parallel trade, statistically equivalent for these
//     batch sizes but not bit-identical.
//   - Robustness semantics carry over per shard: a replica whose batch
//     goes non-finite (loss or gradients) is dropped from the average; if
//     every replica in a group is dropped, the step is skipped, exactly
//     like the serial NaN-batch skip. Best-epoch snapshot/rollback runs on
//     the primary unchanged.

import (
	"math"
	"math/rand"

	"lite/internal/nn"
	"lite/internal/tensor"
)

// instLoss is one instance's contribution to the epoch loss bookkeeping,
// recorded per shard and replayed in deterministic (shard, instance)
// order so the K=1 accumulation order matches serial bit for bit.
type instLoss struct {
	dl float64 // lv * batchWeight, the serial loop's epochLoss increment
	w  float64 // the instance's train weight, the epochWeight increment
}

// shardResult is what one replica reports for its batch of a group.
type shardResult struct {
	// ok marks the shard's gradients as finite and usable for averaging.
	ok bool
	// records replays the epoch-loss accounting, including the finite
	// prefix of a batch that later went non-finite (matching serial).
	records []instLoss
}

// syncParams copies src's parameter values into dst (same architecture).
func syncParams(dst, src []*nn.Node) {
	for i := range dst {
		copy(dst[i].Value.Data, src[i].Value.Data)
	}
}

// averageGradsInto writes the element-wise mean of the contributing
// replicas' gradients into primary's gradient buffers. replicaParams[r]
// may alias primary (the primary computes shard 0 itself); the read-all-
// then-write order per element makes that safe. A replica parameter with
// a nil gradient counts as zero. With one contributor the "average" is a
// multiplication by 1.0, which is exact — the K=1 bit-compatibility
// guarantee rests on this.
func averageGradsInto(primary []*nn.Node, replicaParams [][]*nn.Node, contrib []int) {
	inv := 1 / float64(len(contrib))
	for j, p := range primary {
		if p.Grad == nil {
			p.Grad = tensor.New(p.Value.Rows, p.Value.Cols)
		}
		out := p.Grad.Data
		for d := range out {
			var acc float64
			for _, r := range contrib {
				if g := replicaParams[r][j].Grad; g != nil {
					acc += g.Data[d]
				}
			}
			out[d] = acc * inv
		}
	}
}

// shardBatch runs one replica's mini-batch: forward/backward per instance
// with the weighted MSE of Equation 4, recording per-instance loss
// contributions and reporting whether the accumulated gradients are
// usable. Mirrors one iteration of the serial Fit batch loop exactly.
func (m *NECS) shardBatch(data []*Encoded, batch []int) shardResult {
	var batchWeight float64
	for _, i := range batch {
		batchWeight += m.trainWeight(data[i])
	}
	if batchWeight <= 0 {
		return shardResult{} // every instance censored away: skip, no records
	}
	res := shardResult{ok: true}
	for _, i := range batch {
		x := data[i]
		w := m.trainWeight(x)
		out, _ := m.Forward(x)
		loss := nn.Scale(nn.MSELoss(out, x.Y), w/batchWeight)
		lv := loss.Scalar()
		if math.IsNaN(lv) || math.IsInf(lv, 0) {
			res.ok = false // poisoned batch: drop gradients, keep the finite prefix's records
			break
		}
		nn.Backward(loss)
		res.records = append(res.records, instLoss{dl: lv * batchWeight, w: w})
	}
	return res
}

// fitDataParallel is the FitWorkers >= 1 training path: same schedule and
// robustness semantics as fitSerial, with each K-batch group sharded
// across K replicas and the averaged gradients stepping the primary.
func (m *NECS) fitDataParallel(data []*Encoded, rng *rand.Rand, k int) float64 {
	params := m.Params()
	opt := nn.NewAdam(params, m.Cfg.LR)

	// Replica 0 is the primary itself; replicas 1..K-1 are weight clones
	// sharing the (read-only here) encoder. Clones are reused across
	// groups and re-synced to the primary before each one.
	replicas := make([]*NECS, k)
	replicaParams := make([][]*nn.Node, k)
	replicas[0], replicaParams[0] = m, params
	for r := 1; r < k; r++ {
		replicas[r] = m.Clone()
		replicaParams[r] = replicas[r].Params()
	}

	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	bestLoss := math.Inf(1)
	var bestSnap [][]float64
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		// Step learning-rate decay: ÷2 at 60% and 85% of the schedule.
		switch {
		case epoch == m.Cfg.Epochs*85/100:
			opt.LR = m.Cfg.LR / 4
		case epoch == m.Cfg.Epochs*60/100:
			opt.LR = m.Cfg.LR / 2
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var batches [][]int
		for start := 0; start < len(idx); start += m.Cfg.BatchSize {
			end := start + m.Cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batches = append(batches, idx[start:end])
		}
		var epochLoss, epochWeight float64
		for g := 0; g < len(batches); g += k {
			group := batches[g:min(g+k, len(batches))]
			for r := 1; r < len(group); r++ {
				syncParams(replicaParams[r], params)
			}
			results := make([]shardResult, len(group))
			ParallelDo(len(group), func(r int) {
				nn.ZeroGrads(replicaParams[r])
				res := replicas[r].shardBatch(data, group[r])
				if res.ok && !gradsFinite(replicaParams[r]) {
					res.ok = false
				}
				results[r] = res
			})
			// Deterministic reduction: shard order, then instance order —
			// for K=1 this replays the serial accumulation exactly.
			var contrib []int
			for r := range results {
				for _, rec := range results[r].records {
					epochLoss += rec.dl
					epochWeight += rec.w
				}
				if results[r].ok {
					contrib = append(contrib, r)
				}
			}
			if len(contrib) == 0 {
				nn.ZeroGrads(params) // every shard poisoned: skip the step
				continue
			}
			averageGradsInto(params, replicaParams, contrib)
			nn.ClipGrads(params, 5)
			opt.Step()
		}
		if epochWeight > 0 {
			lastLoss = epochLoss / epochWeight
		}
		finite := !math.IsNaN(lastLoss) && !math.IsInf(lastLoss, 0) && m.paramsFinite()
		if finite && lastLoss < bestLoss {
			bestLoss = lastLoss
			bestSnap = m.snapshotParams()
		} else if !finite && bestSnap != nil {
			m.restoreParams(bestSnap)
			lastLoss = bestLoss
		}
	}
	if !m.paramsFinite() && bestSnap != nil {
		m.restoreParams(bestSnap)
		lastLoss = bestLoss
	}
	return lastLoss
}
