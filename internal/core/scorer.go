package core

// This file implements AppScorer, the per-recommendation scoring context.
// One online recommendation scores NumCandidates (64 by default)
// configurations for a single fixed (application, datasize, environment)
// triple; every per-stage input except the knob-dependent features is
// identical across those candidates. AppScorer encodes the shared parts
// exactly once — stage token ids, DAG matrices, data features, environment
// features — so candidate scoring only computes the candidate-specific
// dense features and the forward passes, and so parallel workers scoring
// different candidates never contend on the encoder's memoization mutex.

import (
	"lite/internal/feature"
	"lite/internal/sparksim"
)

// scorerStage is the candidate-invariant encoding of one unique stage of
// the expanded plan: token ids and DAG matrices out of the encoder cache.
type scorerStage struct {
	index int
	toks  []int
	dag   *dagEnc
}

// AppScorer scores candidate configurations for one fixed (application,
// datasize, environment) request. It is built once per recommendation and
// is safe for concurrent use by any number of goroutines: after
// construction it only reads its own precomputed encodings and the
// (read-only during scoring) model weights. Score(cfg) returns bitwise
// the same value NECS.PredictApp returns for the same inputs.
type AppScorer struct {
	model *NECS
	// plan is the expanded stage sequence; stages lists each unique stage
	// in first-appearance order with its static encoding.
	plan   []int
	stages []scorerStage
	// shared is data.Features() ++ env.Features(), the candidate-invariant
	// middle section of every stage's dense feature vector.
	shared []float64
	data   sparksim.DataSpec
	env    sparksim.Environment
}

// NewAppScorer precomputes the candidate-invariant encodings for scoring
// app on data in env. The returned scorer is immutable and safe for
// concurrent Score calls.
func (m *NECS) NewAppScorer(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) *AppScorer {
	plan := app.ExpandedStages(data)
	s := &AppScorer{model: m, plan: plan, data: data, env: env}
	s.shared = append(append([]float64{}, data.Features()...), env.Features()...)
	seen := make(map[int]bool, len(app.Stages))
	for _, si := range plan {
		if seen[si] {
			continue
		}
		seen[si] = true
		st := &app.Stages[si]
		toks, dag := m.Encoder.stageStatic(st.Code, st.Ops, st.Edges)
		s.stages = append(s.stages, scorerStage{index: si, toks: toks, dag: dag})
	}
	return s
}

// Score estimates the application's total execution time (seconds) under
// cfg by summing per-stage NECS predictions over the expanded plan
// (Equation 5's aggregation), identically to NECS.PredictApp. Safe for
// concurrent use.
func (s *AppScorer) Score(cfg sparksim.Config) float64 {
	total, _ := s.ScoreChecked(cfg)
	return total
}

// ScoreChecked is Score plus a finiteness report: ok is false when any
// stage's raw (pre-clamp) prediction was non-finite. The returned score is
// still the clamped, always-finite aggregate — callers that must tell a
// genuinely slow candidate from a model that cannot rank at all (the serve
// layer's hot-swap validation gate) branch on ok.
func (s *AppScorer) ScoreChecked(cfg sparksim.Config) (float64, bool) {
	// The candidate-dependent dense sections are shared by every stage of
	// this candidate: compute them once, not once per stage.
	knobs := cfg.Normalized()
	derived := feature.DerivedResourceFeatures(cfg, s.data, s.env)
	perStage := make(map[int]float64, len(s.stages))
	ok := true
	for _, st := range s.stages {
		dense := make([]float64, 0, feature.DenseWidth)
		dense = append(dense, knobs...)
		dense = append(dense, s.shared...)
		dense = append(dense, derived...)
		sec, fin := s.model.PredictSecondsChecked(&Encoded{
			StageIndex: st.index,
			TokenIDs:   st.toks,
			NodeFeats:  st.dag.nodes,
			AHat:       st.dag.aHat,
			Dense:      dense,
			Weight:     1,
		})
		perStage[st.index] = sec
		ok = ok && fin
	}
	// Sum in plan order, exactly as PredictApp always has, so the
	// aggregate is bit-identical to the serial path.
	var total float64
	for _, si := range s.plan {
		total += perStage[si]
	}
	return total, ok
}
