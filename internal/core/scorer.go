package core

// This file implements AppScorer, the per-recommendation scoring context.
// One online recommendation scores NumCandidates (64 by default)
// configurations for a single fixed (application, datasize, environment)
// triple; every per-stage input except the knob-dependent features is
// identical across those candidates. AppScorer therefore encodes AND
// forward-passes the shared parts exactly once — stage token ids, DAG
// matrices, the CNN code representation h_code, the GCN representation
// h_DAG, data features, environment features — so per-candidate work is
// reduced to the candidate's dense features plus the tower MLP. The tower
// itself runs batched: all candidates' rows go through one GEMM per layer
// (batch.go). See DESIGN.md §12 for the kernel and its cost model.

import (
	"lite/internal/feature"
	"lite/internal/sparksim"
)

// scorerStage is the candidate-invariant encoding of one unique stage of
// the expanded plan: token ids and DAG matrices out of the encoder cache,
// plus the precomputed tower-input tail h_code ‖ h_DAG.
type scorerStage struct {
	index int
	toks  []int
	dag   *dagEnc
	// rep is h_code ‖ h_DAG, the candidate-invariant suffix of this
	// stage's tower input row, computed once at scorer construction via
	// the forward-only inference path (bitwise identical to the graph).
	rep []float64
}

// AppScorer scores candidate configurations for one fixed (application,
// datasize, environment) request. It is built once per recommendation and
// is safe for concurrent use by any number of goroutines: after
// construction it only reads its own precomputed encodings and the
// (read-only during scoring) model weights. Score(cfg) returns bitwise
// the same value NECS.PredictApp has always returned for the same inputs;
// TestScoreBatchBitwiseGolden pins that contract against the historical
// autograd path.
type AppScorer struct {
	model *NECS
	// plan is the expanded stage sequence; stages lists each unique stage
	// in first-appearance order with its static encoding.
	plan   []int
	stages []scorerStage
	// slot maps a stage index to its position in stages (= its row group
	// in the batched tower input).
	slot map[int]int
	// shared is data.Features() ++ env.Features(), the candidate-invariant
	// middle section of every stage's dense feature vector.
	shared []float64
	data   sparksim.DataSpec
	env    sparksim.Environment
	// f32 is the packed float32 serving plan, nil unless the owning tuner
	// enabled float32 serving (f32.go). When set, Score/ScoreBatch run the
	// tower in float32; the float64 path is the default everywhere else.
	f32 *F32Plan
	// rep32/shared32 are the float32 projections of the per-stage reps and
	// the shared dense section, materialized by UseF32.
	rep32    [][]float32
	shared32 []float32
}

// NewAppScorer precomputes the candidate-invariant encodings for scoring
// app on data in env, including each unique stage's CNN and GCN forward
// pass (run once here instead of once per candidate). The returned scorer
// is immutable and safe for concurrent Score / ScoreBatch calls.
func (m *NECS) NewAppScorer(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) *AppScorer {
	plan := app.ExpandedStages(data)
	s := &AppScorer{model: m, plan: plan, data: data, env: env, slot: make(map[int]int, len(app.Stages))}
	s.shared = append(append([]float64{}, data.Features()...), env.Features()...)
	seen := make(map[int]bool, len(app.Stages))
	for _, si := range plan {
		if seen[si] {
			continue
		}
		seen[si] = true
		st := &app.Stages[si]
		toks, dag := m.Encoder.stageStatic(st.Code, st.Ops, st.Edges)
		hCode := m.Code.Infer(toks)
		hDAG := m.DAG.Infer(dag.aHat, dag.nodes)
		rep := make([]float64, 0, hCode.Cols+hDAG.Cols)
		rep = append(rep, hCode.Data...)
		rep = append(rep, hDAG.Data...)
		s.slot[si] = len(s.stages)
		s.stages = append(s.stages, scorerStage{index: si, toks: toks, dag: dag, rep: rep})
	}
	return s
}

// Score estimates the application's total execution time (seconds) under
// cfg by summing per-stage NECS predictions over the expanded plan
// (Equation 5's aggregation), identically to NECS.PredictApp. Safe for
// concurrent use.
func (s *AppScorer) Score(cfg sparksim.Config) float64 {
	total, _ := s.ScoreChecked(cfg)
	return total
}

// ScoreChecked is Score plus a finiteness report: ok is false when any
// stage's raw (pre-clamp) prediction was non-finite. The returned score is
// still the clamped, always-finite aggregate — callers that must tell a
// genuinely slow candidate from a model that cannot rank at all (the serve
// layer's hot-swap validation gate) branch on ok. It is a batch of one
// through the batched kernel (batch.go), so single scoring and batched
// scoring cannot drift apart.
func (s *AppScorer) ScoreChecked(cfg sparksim.Config) (float64, bool) {
	var pred [1]float64
	var ok [1]bool
	s.ScoreBatch([]sparksim.Config{cfg}, pred[:], ok[:])
	return pred[0], ok[0]
}

// scoreGraph is the historical per-candidate scoring path through the
// autograd graph (one full CNN+GCN+tower forward per stage per call). It
// is retained as the bitwise golden reference the batched inference kernel
// is tested against, and is not used on any serving path.
func (s *AppScorer) scoreGraph(cfg sparksim.Config) (float64, bool) {
	// The candidate-dependent dense sections are shared by every stage of
	// this candidate: compute them once, not once per stage.
	knobs := cfg.Normalized()
	derived := feature.DerivedResourceFeatures(cfg, s.data, s.env)
	perStage := make(map[int]float64, len(s.stages))
	ok := true
	for _, st := range s.stages {
		dense := make([]float64, 0, feature.DenseWidth)
		dense = append(dense, knobs...)
		dense = append(dense, s.shared...)
		dense = append(dense, derived...)
		sec, fin := s.model.PredictSecondsChecked(&Encoded{
			StageIndex: st.index,
			TokenIDs:   st.toks,
			NodeFeats:  st.dag.nodes,
			AHat:       st.dag.aHat,
			Dense:      dense,
			Weight:     1,
		})
		perStage[st.index] = sec
		ok = ok && fin
	}
	// Sum in plan order, exactly as PredictApp always has, so the
	// aggregate is bit-identical to the batched path.
	var total float64
	for _, si := range s.plan {
		total += perStage[si]
	}
	return total, ok
}
