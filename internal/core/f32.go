package core

// This file is the float32 serving path (DESIGN.md §12): models train in
// float64, and at publish time the serving layer compiles the tower MLP —
// the only per-candidate computation left after scorer.go hoists the CNN
// and GCN forwards — into a packed float32 plan. Serving with the plan
// halves the tower's memory traffic; the per-stage encoders deliberately
// stay float64 (they run once per request, so their cost is amortized over
// all candidates and keeping them double-precision removes one source of
// ranking drift).
//
// Contract (train-f64 / serve-f32): the float32 path is a pure serving
// projection. It is NEVER used for training, for the hot-swap validation
// gate (validate.go scores the float64 model), or for persistence (Save
// writes float64 weights; plans are recompiled after load). Correctness is
// guarded by the golden ranking-equivalence test
// (TestF32RankingEquivalence): across seeded workloads the float32 path
// must produce the same top-K candidate ordering as float64. Compilation
// is deterministic — plain float64→float32 rounding of each weight — so
// two replicas compiling the same snapshot serve identical plans.

import (
	"math"
	"sync"

	"lite/internal/feature"
	"lite/internal/sparksim"
)

// F32Plan is a packed float32 compilation of a NECS tower: per layer the
// row-major in×out weight matrix and the bias row, plus the layer widths.
// A plan is immutable after CompileF32 and safe for concurrent use.
type F32Plan struct {
	weights [][]float32 // layer l: in_l × out_l, row-major
	biases  [][]float32 // layer l: out_l
	widths  []int       // in_0, out_0, out_1, …, 1
}

// CompileF32 packs the model's tower into a float32 serving plan by
// rounding every weight to float32. The model must not be mutated while
// CompileF32 reads it (same contract as every prediction method).
func (m *NECS) CompileF32() *F32Plan {
	p := &F32Plan{}
	for li, l := range m.Tower.Layers {
		w := l.W.Value
		if li == 0 {
			p.widths = append(p.widths, w.Rows)
		}
		p.widths = append(p.widths, w.Cols)
		ws := make([]float32, len(w.Data))
		for i, v := range w.Data {
			ws[i] = float32(v)
		}
		bs := make([]float32, len(l.B.Value.Data))
		for i, v := range l.B.Value.Data {
			bs[i] = float32(v)
		}
		p.weights = append(p.weights, ws)
		p.biases = append(p.biases, bs)
	}
	return p
}

// InputWidth returns the tower input width the plan was compiled for.
func (p *F32Plan) InputWidth() int { return p.widths[0] }

// f32Arena is the float32 counterpart of nn.Arena: a request-scoped bump
// allocator for the f32 kernel's input and activation buffers, recycled
// through f32ArenaPool. Same ownership rules: one goroutine per pass,
// buffers invalid after reset, contents uninitialized on alloc.
type f32Arena struct {
	slab []float32
	off  int
}

func (a *f32Arena) alloc(n int) []float32 {
	if a.off+n > len(a.slab) {
		grow := 2 * len(a.slab)
		if grow < a.off+n {
			grow = a.off + n
		}
		a.slab = make([]float32, grow)
		a.off = 0
	}
	out := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

func (a *f32Arena) reset() { a.off = 0 }

var f32ArenaPool = sync.Pool{New: func() any { return new(f32Arena) }}

// UseF32 attaches a packed float32 plan to the scorer and materializes the
// float32 projections of its candidate-invariant sections. Must be called
// before the scorer is shared across goroutines (the tuner attaches the
// plan at scorer construction).
func (s *AppScorer) UseF32(p *F32Plan) *AppScorer {
	s.f32 = p
	s.shared32 = make([]float32, len(s.shared))
	for i, v := range s.shared {
		s.shared32[i] = float32(v)
	}
	s.rep32 = make([][]float32, len(s.stages))
	for si, st := range s.stages {
		r := make([]float32, len(st.rep))
		for i, v := range st.rep {
			r[i] = float32(v)
		}
		s.rep32[si] = r
	}
	return s
}

// scoreBatchF32 is the float32 batched kernel: same candidate-major
// [C·S × d] layout and one-GEMM-per-layer structure as scoreBatchF64, with
// float32 storage and arithmetic in the tower. Outputs convert back to
// float64 for the seconds clamp and the plan-order aggregation.
func (s *AppScorer) scoreBatchF32(cfgs []sparksim.Config, preds []float64, oks []bool) {
	ar := f32ArenaPool.Get().(*f32Arena)
	ar.reset()
	defer f32ArenaPool.Put(ar)

	nStages := len(s.stages)
	width := s.f32.InputWidth()
	rows := len(cfgs) * nStages
	x := ar.alloc(rows * width)
	for ci, cfg := range cfgs {
		knobs := cfg.Normalized()
		derived := feature.DerivedResourceFeatures(cfg, s.data, s.env)
		row := x[ci*nStages*width : ci*nStages*width+width]
		off := 0
		for _, v := range knobs {
			row[off] = float32(v)
			off++
		}
		off += copy(row[off:], s.shared32)
		for _, v := range derived {
			row[off] = float32(v)
			off++
		}
		copy(row[off:], s.rep32[0])
		for si := 1; si < nStages; si++ {
			r := x[(ci*nStages+si)*width : (ci*nStages+si+1)*width]
			copy(r, row[:feature.DenseWidth])
			copy(r[feature.DenseWidth:], s.rep32[si])
		}
	}

	// Tower forward: one float32 GEMM per layer over all rows.
	h := x
	in := width
	for li, w := range s.f32.weights {
		out := s.f32.widths[li+1]
		bias := s.f32.biases[li]
		next := ar.alloc(rows * out)
		last := li+1 == len(s.f32.weights)
		for r := 0; r < rows; r++ {
			hrow := h[r*in : (r+1)*in]
			orow := next[r*out : (r+1)*out]
			copy(orow, bias)
			for k, hv := range hrow {
				if hv == 0 {
					continue
				}
				wrow := w[k*out : (k+1)*out]
				for j, wv := range wrow {
					orow[j] += hv * wv
				}
			}
			if !last {
				for j, v := range orow {
					if !(v > 0) {
						orow[j] = 0
					}
				}
			}
		}
		h = next
		in = out
	}

	secs := make([]float64, nStages)
	for ci := range cfgs {
		ok := true
		base := ci * nStages
		for si := 0; si < nStages; si++ {
			raw := float64(h[base+si])
			sec, fin := secondsChecked(raw)
			secs[si] = sec
			ok = ok && fin
		}
		var total float64
		for _, pi := range s.plan {
			total += secs[s.slot[pi]]
		}
		preds[ci] = total
		if oks != nil {
			oks[ci] = ok
		}
	}
}

// f32Finite reports whether every packed weight in the plan is finite —
// a compiled projection of a poisoned model must be detectable without
// scoring (used by tests and defensive publish checks).
func (p *F32Plan) f32Finite() bool {
	for _, layer := range p.weights {
		for _, v := range layer {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
	}
	for _, layer := range p.biases {
		for _, v := range layer {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
	}
	return true
}
