package core

import (
	"math"
	"math/rand"
	"testing"

	"lite/internal/sparksim"
	"lite/internal/workload"
)

// poisonModel overwrites every weight with NaN — the worst corruption a
// serialized or diverged model can present.
func poisonModel(m *NECS) {
	for _, p := range m.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] = math.NaN()
		}
	}
}

// Fit must survive a batch whose label is NaN: the poisoned batch is
// skipped, gradients are clipped, and the model rolls back to its best
// epoch if weights ever go non-finite.
func TestFitSurvivesNaNBatch(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount")}
	ds := smallDataset(t, apps, 3, 5)
	cfg := fastConfig()
	enc := NewEncoder(ds.Instances, cfg)
	encoded := EncodeAll(enc, ds.Instances)
	if len(encoded) < 3 {
		t.Fatalf("dataset too small: %d encoded", len(encoded))
	}
	// Poison a few labels the way a corrupted measurement would.
	encoded[0].Y = math.NaN()
	encoded[1].Y = math.Inf(1)

	rng := rand.New(rand.NewSource(6))
	m := NewNECS(enc, cfg, rng)
	loss := m.Fit(encoded, rng)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("final loss not finite: %v", loss)
	}
	if !m.paramsFinite() {
		t.Fatal("weights went non-finite despite rollback")
	}
	p := m.PredictSeconds(encoded[2])
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
		t.Fatalf("prediction after poisoned training not sane: %v", p)
	}
}

func TestPredictSecondsClampsCorruptedModel(t *testing.T) {
	apps := []*workload.App{workload.ByName("Terasort")}
	ds := smallDataset(t, apps, 2, 8)
	cfg := fastConfig()
	enc := NewEncoder(ds.Instances, cfg)
	encoded := EncodeAll(enc, ds.Instances)
	m := NewNECS(enc, cfg, rand.New(rand.NewSource(9)))
	poisonModel(m)
	p := m.PredictSeconds(encoded[0])
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
		t.Fatalf("corrupted model must still emit a clamped finite prediction, got %v", p)
	}
}

// RecommendSafe must fall through all three tiers as the pipeline degrades,
// never panicking and always returning a feasible configuration.
func TestRecommendSafeTierFallThrough(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("PageRank")}
	opts := DefaultTrainOptions()
	opts.NECS = fastConfig()
	opts.Collect.ConfigsPerInstance = 3
	opts.Collect.Sizes = []int{0, 2}
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterA, sparksim.ClusterC}
	tuner, _ := Train(apps, opts)

	app := apps[0].Spec
	data := app.MakeData(apps[0].Sizes.Valid)
	env := sparksim.ClusterC

	// Healthy pipeline → tier 1.
	rec, err := tuner.RecommendSafe(app, data, env)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tier != TierNECS {
		t.Fatalf("healthy tuner should serve from NECS, got %q (notes: %v)", rec.Tier, rec.Notes)
	}
	if !sparksim.Feasible(rec.Config, env) {
		t.Fatal("tier-1 recommendation infeasible")
	}
	if math.IsNaN(rec.PredictedSeconds) || rec.PredictedSeconds >= sparksim.FailCap {
		t.Fatalf("tier-1 prediction not screened: %v", rec.PredictedSeconds)
	}

	// Corrupted estimator → every prediction screens out → tier 2.
	poisonModel(tuner.Model)
	rec, err = tuner.RecommendSafe(app, data, env)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tier != TierACGRegion {
		t.Fatalf("corrupted model should degrade to the ACG region, got %q (notes: %v)", rec.Tier, rec.Notes)
	}
	if !sparksim.Feasible(rec.Config, env) {
		t.Fatal("tier-2 recommendation infeasible")
	}
	if len(rec.Notes) == 0 {
		t.Fatal("degradation must be explained in Notes")
	}

	// No estimator, no candidate generator → safe default, still no error.
	tuner.Model = nil
	tuner.ACG = nil
	rec, err = tuner.RecommendSafe(app, data, env)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tier != TierSafeDefault {
		t.Fatalf("gutted tuner should serve the safe default, got %q", rec.Tier)
	}
	if !sparksim.Feasible(rec.Config, env) {
		t.Fatal("safe default infeasible")
	}
	if len(rec.Notes) != 3 {
		t.Fatalf("expected one note per skipped tier, got %v", rec.Notes)
	}
}

func TestRecommendSafeSurvivesNilRNG(t *testing.T) {
	apps := []*workload.App{workload.ByName("Terasort")}
	opts := DefaultTrainOptions()
	opts.NECS = fastConfig()
	opts.Collect.ConfigsPerInstance = 2
	opts.Collect.Sizes = []int{0}
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterA}
	trained, _ := Train(apps, opts)

	// A hand-assembled tuner (e.g. loaded from a partial snapshot) has no rng.
	bare := &Tuner{Model: trained.Model, ACG: trained.ACG, NumCandidates: 8}
	app := apps[0].Spec
	rec, err := bare.RecommendSafe(app, app.MakeData(apps[0].Sizes.Valid), sparksim.ClusterA)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tier == "" {
		t.Fatal("tier must be set on success")
	}
}

// Robust collection on a fault-injecting cluster must be deterministic and
// must account for its extra work in Stats.
func TestRobustCollectDeterministicWithStats(t *testing.T) {
	apps := []*workload.App{workload.ByName("PageRank")}
	faulty := sparksim.ClusterB.WithFaults(sparksim.ScaledFaults(1.0, 3))
	opts := CollectOptions{
		ConfigsPerInstance: 3,
		Clusters:           []sparksim.Environment{faulty},
		IncludeDefault:     true,
		Sizes:              []int{0, 1},
		Repeats:            3,
		FlakyRetries:       2,
	}
	a := Collect(apps, opts, rand.New(rand.NewSource(4)))
	b := Collect(apps, opts, rand.New(rand.NewSource(4)))
	if a.Stats != b.Stats {
		t.Fatalf("collection stats not deterministic: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.Runs {
		if a.Runs[i].Result.Seconds != b.Runs[i].Result.Seconds {
			t.Fatalf("run %d seconds differ between identical collections", i)
		}
	}
	if a.Stats.Runs != len(a.Runs) {
		t.Fatalf("Stats.Runs=%d but %d runs kept", a.Stats.Runs, len(a.Runs))
	}
	if a.Stats.RepeatRuns != a.Stats.Runs*2 {
		t.Fatalf("3 repeats should record 2 extra runs per instance: %+v", a.Stats)
	}
}

// With faults off and Repeats/FlakyRetries unset, collection must take the
// original single-run path: no repeats, no retries, no censoring surprises.
func TestCollectFaultFreePathUnchanged(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount")}
	ds := smallDataset(t, apps, 3, 5)
	if ds.Stats.RepeatRuns != 0 || ds.Stats.Retries != 0 || ds.Stats.RetrySeconds != 0 {
		t.Fatalf("fault-free collection did robustness work: %+v", ds.Stats)
	}
}
