package core

import (
	"math/rand"

	"lite/internal/nn"
)

// AMUConfig controls Adaptive Model Update (paper §IV-B).
type AMUConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// Lambda scales the reversed gradient flowing from the discriminator
	// into NECS (the strength of the domain-confusion pressure).
	Lambda float64
	// DiscHidden is the discriminator MLP hidden width.
	DiscHidden int
	// Workers selects data-parallel fine-tuning, exactly like
	// NECSConfig.FitWorkers: 0 keeps the historical serial loop, 1 routes
	// through the parallel engine bit-identically, K > 1 shards each
	// K-batch group across K (model, discriminator) replicas and steps on
	// averaged gradients — statistically equivalent, not bit-identical.
	Workers int
}

// DefaultAMUConfig returns the settings used by the experiments.
func DefaultAMUConfig() AMUConfig {
	return AMUConfig{Epochs: 4, BatchSize: 16, LR: 5e-4, Lambda: 0.3, DiscHidden: 32}
}

// Discriminator is the adversarial domain classifier: an MLP over the
// concatenated tower hidden embeddings h_i = f¹(x)‖…‖f^L, ending in a
// sigmoid probability of the instance being from the source domain.
type Discriminator struct {
	mlp *nn.MLP
}

// NewDiscriminator builds the discriminator for a NECS model.
func NewDiscriminator(m *NECS, cfg AMUConfig, rng *rand.Rand) *Discriminator {
	hiddenWidth := 0
	widths := nn.TowerWidths(towerInputWidth(m), m.Cfg.TowerFirst, m.Cfg.TowerMin)
	for _, w := range widths[1 : len(widths)-1] {
		hiddenWidth += w
	}
	d := &Discriminator{mlp: nn.NewMLP([]int{hiddenWidth, cfg.DiscHidden, 1}, rng, "disc")}
	d.mlp.FinalActivation = nn.Sigmoid
	return d
}

func towerInputWidth(m *NECS) int {
	return m.Tower.Layers[0].W.Value.Rows
}

// Forward returns P(source domain | hidden embeddings).
func (d *Discriminator) Forward(hidden []*nn.Node) *nn.Node {
	return d.mlp.Forward(nn.Concat(hidden...))
}

// Params returns the discriminator's trainable parameters.
func (d *Discriminator) Params() []*nn.Node { return d.mlp.Params() }

// AdaptiveModelUpdate fine-tunes NECS on source (small-data training
// instances, DS) plus target (large-data feedback, DT) using the minimax
// objective of Equation 8:
//
//	min_Θ max_Ω  L_p + L_D
//
// implemented with a gradient-reversal layer: one backward pass trains the
// discriminator to separate domains while pushing NECS toward
// domain-invariant hidden representations, and the prediction loss on
// DS ∪ DT keeps the estimator accurate. Returns the final epoch's mean
// prediction loss.
//
// cfg.Workers >= 1 runs the mini-batch loop data-parallel across replica
// (model, discriminator) pairs with averaged gradients (Workers = 1 is
// bit-identical to serial). The function mutates m's weights in place and
// must not run concurrently with readers of the same model — serving
// layers fine-tune a clone and hot-swap (see internal/serve).
func AdaptiveModelUpdate(m *NECS, source, target []*Encoded, cfg AMUConfig, rng *rand.Rand) float64 {
	data := make([]domainSample, 0, len(source)+len(target))
	for _, x := range source {
		data = append(data, domainSample{x, 1})
	}
	for _, x := range target {
		data = append(data, domainSample{x, 0})
	}
	if len(data) == 0 {
		return 0
	}

	disc := NewDiscriminator(m, cfg, rng)
	if cfg.Workers >= 1 {
		return amuDataParallel(m, disc, data, cfg, rng)
	}
	params := append(m.Params(), disc.Params()...)
	opt := nn.NewAdam(params, cfg.LR)

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
		var epochLoss float64
		var count float64
		for start := 0; start < len(data); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(data) {
				end = len(data)
			}
			opt.ZeroGrad()
			for _, s := range data[start:end] {
				lv, w := amuSampleStep(m, disc, s, cfg, end-start)
				epochLoss += lv * w
				count += w
			}
			nn.ClipGrads(params, 5)
			opt.Step()
		}
		if count > 0 {
			lastLoss = epochLoss / count
		}
	}
	return lastLoss
}

// domainSample pairs an encoded instance with its domain label
// (1 = source, 0 = target).
type domainSample struct {
	x      *Encoded
	domain float64
}

// amuSampleStep runs one instance's forward/backward of the minimax
// objective against the given model and discriminator, accumulating
// gradients in place. It returns the prediction-loss value and the
// instance weight for the epoch-loss bookkeeping.
func amuSampleStep(m *NECS, disc *Discriminator, s domainSample, cfg AMUConfig, batchLen int) (lv, w float64) {
	out, hidden := m.Forward(s.x)
	// L_p: prediction loss on both domains.
	lp := nn.MSELoss(out, s.x.Y)
	// L_D: discriminator BCE over reversed hidden features.
	rev := make([]*nn.Node, len(hidden))
	for i, h := range hidden {
		rev[i] = nn.GradReverse(h, cfg.Lambda)
	}
	ld := nn.BCELoss(disc.Forward(rev), s.domain)
	loss := nn.Scale(nn.Add(lp, ld), s.x.Weight/float64(batchLen))
	nn.Backward(loss)
	return lp.Scalar(), s.x.Weight
}

// amuDataParallel is the Workers >= 1 fine-tuning path: the same batch
// schedule as the serial loop, with each K-batch group sharded across K
// replica (model, discriminator) pairs and the averaged gradients applied
// to the primary pair. Mirrors fitDataParallel's structure; AMU has no
// NaN-batch skip in the serial loop, so every shard contributes.
func amuDataParallel(m *NECS, disc *Discriminator, data []domainSample, cfg AMUConfig, rng *rand.Rand) float64 {
	k := cfg.Workers
	params := append(m.Params(), disc.Params()...)
	opt := nn.NewAdam(params, cfg.LR)

	type replica struct {
		m      *NECS
		disc   *Discriminator
		params []*nn.Node
	}
	replicas := make([]replica, k)
	replicaParams := make([][]*nn.Node, k)
	replicas[0] = replica{m: m, disc: disc, params: params}
	replicaParams[0] = params
	for r := 1; r < k; r++ {
		rm := m.Clone()
		rd := NewDiscriminator(rm, cfg, rand.New(rand.NewSource(0)))
		replicas[r] = replica{m: rm, disc: rd, params: append(rm.Params(), rd.Params()...)}
		replicaParams[r] = replicas[r].params
	}

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
		var batches [][]domainSample
		for start := 0; start < len(data); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(data) {
				end = len(data)
			}
			batches = append(batches, data[start:end])
		}
		var epochLoss, count float64
		for g := 0; g < len(batches); g += k {
			group := batches[g:min(g+k, len(batches))]
			for r := 1; r < len(group); r++ {
				syncParams(replicaParams[r], params)
			}
			results := make([][]instLoss, len(group))
			ParallelDo(len(group), func(r int) {
				rep := replicas[r]
				nn.ZeroGrads(rep.params)
				recs := make([]instLoss, 0, len(group[r]))
				for _, s := range group[r] {
					lv, w := amuSampleStep(rep.m, rep.disc, s, cfg, len(group[r]))
					recs = append(recs, instLoss{dl: lv * w, w: w})
				}
				results[r] = recs
			})
			contrib := make([]int, len(group))
			for r := range results {
				for _, rec := range results[r] {
					epochLoss += rec.dl
					count += rec.w
				}
				contrib[r] = r
			}
			averageGradsInto(params, replicaParams, contrib)
			nn.ClipGrads(params, 5)
			opt.Step()
		}
		if count > 0 {
			lastLoss = epochLoss / count
		}
	}
	return lastLoss
}

// DomainAccuracy measures how well a freshly trained discriminator can
// separate the two domains given the (frozen) NECS hidden representations —
// a diagnostic for how domain-invariant the features are (0.5 ≈
// indistinguishable, the adversarial equilibrium the paper aims for).
// Accuracy is measured on a held-out 30% split so memorization does not
// masquerade as separability.
func DomainAccuracy(m *NECS, source, target []*Encoded, cfg AMUConfig, rng *rand.Rand) float64 {
	disc := NewDiscriminator(m, cfg, rng)
	opt := nn.NewAdam(disc.Params(), 2e-3)
	type sample struct {
		hidden []*nn.Node
		domain float64
	}
	var data []sample
	for _, x := range source {
		_, h := m.Forward(x)
		data = append(data, sample{h, 1})
	}
	for _, x := range target {
		_, h := m.Forward(x)
		data = append(data, sample{h, 0})
	}
	if len(data) < 4 {
		return 0.5
	}
	rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	cut := len(data) * 7 / 10
	train, eval := data[:cut], data[cut:]
	for epoch := 0; epoch < 6; epoch++ {
		rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
		for _, s := range train {
			opt.ZeroGrad()
			nn.Backward(nn.BCELoss(disc.Forward(s.hidden), s.domain))
			opt.Step()
		}
	}
	correct := 0
	for _, s := range eval {
		p := disc.Forward(s.hidden).Scalar()
		if (p >= 0.5) == (s.domain == 1) {
			correct++
		}
	}
	return float64(correct) / float64(len(eval))
}
