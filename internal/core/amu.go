package core

import (
	"math/rand"

	"lite/internal/nn"
)

// AMUConfig controls Adaptive Model Update (paper §IV-B).
type AMUConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// Lambda scales the reversed gradient flowing from the discriminator
	// into NECS (the strength of the domain-confusion pressure).
	Lambda float64
	// DiscHidden is the discriminator MLP hidden width.
	DiscHidden int
}

// DefaultAMUConfig returns the settings used by the experiments.
func DefaultAMUConfig() AMUConfig {
	return AMUConfig{Epochs: 4, BatchSize: 16, LR: 5e-4, Lambda: 0.3, DiscHidden: 32}
}

// Discriminator is the adversarial domain classifier: an MLP over the
// concatenated tower hidden embeddings h_i = f¹(x)‖…‖f^L, ending in a
// sigmoid probability of the instance being from the source domain.
type Discriminator struct {
	mlp *nn.MLP
}

// NewDiscriminator builds the discriminator for a NECS model.
func NewDiscriminator(m *NECS, cfg AMUConfig, rng *rand.Rand) *Discriminator {
	hiddenWidth := 0
	widths := nn.TowerWidths(towerInputWidth(m), m.Cfg.TowerFirst, m.Cfg.TowerMin)
	for _, w := range widths[1 : len(widths)-1] {
		hiddenWidth += w
	}
	d := &Discriminator{mlp: nn.NewMLP([]int{hiddenWidth, cfg.DiscHidden, 1}, rng, "disc")}
	d.mlp.FinalActivation = nn.Sigmoid
	return d
}

func towerInputWidth(m *NECS) int {
	return m.Tower.Layers[0].W.Value.Rows
}

// Forward returns P(source domain | hidden embeddings).
func (d *Discriminator) Forward(hidden []*nn.Node) *nn.Node {
	return d.mlp.Forward(nn.Concat(hidden...))
}

// Params returns the discriminator's trainable parameters.
func (d *Discriminator) Params() []*nn.Node { return d.mlp.Params() }

// AdaptiveModelUpdate fine-tunes NECS on source (small-data training
// instances, DS) plus target (large-data feedback, DT) using the minimax
// objective of Equation 8:
//
//	min_Θ max_Ω  L_p + L_D
//
// implemented with a gradient-reversal layer: one backward pass trains the
// discriminator to separate domains while pushing NECS toward
// domain-invariant hidden representations, and the prediction loss on
// DS ∪ DT keeps the estimator accurate. Returns the final epoch's mean
// prediction loss.
func AdaptiveModelUpdate(m *NECS, source, target []*Encoded, cfg AMUConfig, rng *rand.Rand) float64 {
	type sample struct {
		x      *Encoded
		domain float64 // 1 = source, 0 = target
	}
	data := make([]sample, 0, len(source)+len(target))
	for _, x := range source {
		data = append(data, sample{x, 1})
	}
	for _, x := range target {
		data = append(data, sample{x, 0})
	}
	if len(data) == 0 {
		return 0
	}

	disc := NewDiscriminator(m, cfg, rng)
	params := append(m.Params(), disc.Params()...)
	opt := nn.NewAdam(params, cfg.LR)

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
		var epochLoss float64
		var count float64
		for start := 0; start < len(data); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(data) {
				end = len(data)
			}
			opt.ZeroGrad()
			for _, s := range data[start:end] {
				out, hidden := m.Forward(s.x)
				// L_p: prediction loss on both domains.
				lp := nn.MSELoss(out, s.x.Y)
				// L_D: discriminator BCE over reversed hidden features.
				rev := make([]*nn.Node, len(hidden))
				for i, h := range hidden {
					rev[i] = nn.GradReverse(h, cfg.Lambda)
				}
				ld := nn.BCELoss(disc.Forward(rev), s.domain)
				loss := nn.Scale(nn.Add(lp, ld), s.x.Weight/float64(end-start))
				nn.Backward(loss)
				epochLoss += lp.Scalar() * s.x.Weight
				count += s.x.Weight
			}
			nn.ClipGrads(params, 5)
			opt.Step()
		}
		if count > 0 {
			lastLoss = epochLoss / count
		}
	}
	return lastLoss
}

// DomainAccuracy measures how well a freshly trained discriminator can
// separate the two domains given the (frozen) NECS hidden representations —
// a diagnostic for how domain-invariant the features are (0.5 ≈
// indistinguishable, the adversarial equilibrium the paper aims for).
// Accuracy is measured on a held-out 30% split so memorization does not
// masquerade as separability.
func DomainAccuracy(m *NECS, source, target []*Encoded, cfg AMUConfig, rng *rand.Rand) float64 {
	disc := NewDiscriminator(m, cfg, rng)
	opt := nn.NewAdam(disc.Params(), 2e-3)
	type sample struct {
		hidden []*nn.Node
		domain float64
	}
	var data []sample
	for _, x := range source {
		_, h := m.Forward(x)
		data = append(data, sample{h, 1})
	}
	for _, x := range target {
		_, h := m.Forward(x)
		data = append(data, sample{h, 0})
	}
	if len(data) < 4 {
		return 0.5
	}
	rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	cut := len(data) * 7 / 10
	train, eval := data[:cut], data[cut:]
	for epoch := 0; epoch < 6; epoch++ {
		rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
		for _, s := range train {
			opt.ZeroGrad()
			nn.Backward(nn.BCELoss(disc.Forward(s.hidden), s.domain))
			opt.Step()
		}
	}
	correct := 0
	for _, s := range eval {
		p := disc.Forward(s.hidden).Scalar()
		if (p >= 0.5) == (s.domain == 1) {
			correct++
		}
	}
	return float64(correct) / float64(len(eval))
}
