package core

// Tests for the batched one-GEMM scoring kernel (batch.go) and the float32
// serving path (f32.go). The contracts under test are the ones DESIGN.md
// §12 promises:
//
//   - float64 batched scoring is BITWISE identical to the historical
//     per-candidate autograd path (scoreGraph), at any batch size and any
//     scoring-pool width;
//   - per-request arenas never leak state across concurrent passes
//     (scribble-and-check under -race);
//   - the float32 path preserves candidate RANKING (top-K order) even
//     though individual predictions may differ in low-order bits.

import (
	"context"
	"math"
	"sync"
	"testing"

	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// batchTestTuner trains a tiny tuner for kernel-equivalence tests.
func batchTestTuner(t *testing.T) *Tuner {
	t.Helper()
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("PageRank")}
	opts := DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = 2
	opts.Collect.Sizes = []int{0}
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterC}
	opts.NECS.Epochs = 2
	tuner, _ := Train(apps, opts)
	return tuner
}

// batchTestCandidates samples a deterministic candidate set.
func batchTestCandidates(t *testing.T, tuner *Tuner, app *workload.App, data sparksim.DataSpec, env sparksim.Environment, n int) []sparksim.Config {
	t.Helper()
	cands := tuner.sampleFeasible(app.Spec.Name, data, env, n)
	if len(cands) != n {
		t.Fatalf("sampled %d candidates, want %d", len(cands), n)
	}
	return cands
}

// TestScoreBatchBitwiseGolden pins the central kernel contract: the batched
// float64 path returns BITWISE the same aggregate prediction as the
// historical autograd graph path, for every candidate, across apps and
// environments. Any numeric drift here is a kernel bug, not tolerance noise.
func TestScoreBatchBitwiseGolden(t *testing.T) {
	tuner := batchTestTuner(t)
	for _, name := range []string{"WordCount", "PageRank"} {
		app := workload.ByName(name)
		for _, env := range []sparksim.Environment{sparksim.ClusterC, sparksim.ClusterA} {
			data := app.Spec.MakeData(app.Sizes.Test)
			cands := batchTestCandidates(t, tuner, app, data, env, 32)
			scorer := tuner.Model.NewAppScorer(app.Spec, data, env)

			preds := make([]float64, len(cands))
			oks := make([]bool, len(cands))
			scorer.ScoreBatch(cands, preds, oks)

			for i, c := range cands {
				want, wantOK := scorer.scoreGraph(c)
				if math.Float64bits(preds[i]) != math.Float64bits(want) {
					t.Fatalf("%s/%s cand %d: batched %v != graph %v (bitwise)", name, env.Name, i, preds[i], want)
				}
				if oks[i] != wantOK {
					t.Fatalf("%s/%s cand %d: batched ok=%v, graph ok=%v", name, env.Name, i, oks[i], wantOK)
				}
				// The batch-of-one path (ScoreChecked) must agree too.
				got, gotOK := scorer.ScoreChecked(c)
				if math.Float64bits(got) != math.Float64bits(want) || gotOK != wantOK {
					t.Fatalf("%s/%s cand %d: ScoreChecked %v/%v != graph %v/%v", name, env.Name, i, got, gotOK, want, wantOK)
				}
				// And PredictApp, the historical public entry point.
				pa := tuner.Model.PredictApp(app.Spec, data, env, c)
				if math.Float64bits(pa) != math.Float64bits(want) {
					t.Fatalf("%s/%s cand %d: PredictApp %v != graph %v", name, env.Name, i, pa, want)
				}
			}
		}
	}
}

// TestScoreBatchCtxWidthInvariant verifies chunked pool fan-out is a pure
// scheduling decision: ScoreBatchCtx returns bitwise-identical results at
// every pool width, including widths that do not divide the batch size.
func TestScoreBatchCtxWidthInvariant(t *testing.T) {
	defer SetScoreWorkers(0)
	tuner := batchTestTuner(t)
	app := workload.ByName("WordCount")
	env := sparksim.ClusterC
	data := app.Spec.MakeData(app.Sizes.Test)
	cands := batchTestCandidates(t, tuner, app, data, env, 17)
	scorer := tuner.Model.NewAppScorer(app.Spec, data, env)

	SetScoreWorkers(1)
	want := make([]float64, len(cands))
	wantOK := make([]bool, len(cands))
	if err := scorer.ScoreBatchCtx(context.Background(), cands, want, wantOK); err != nil {
		t.Fatalf("serial ScoreBatchCtx: %v", err)
	}
	for _, w := range []int{2, 3, 8, 64} {
		SetScoreWorkers(w)
		got := make([]float64, len(cands))
		gotOK := make([]bool, len(cands))
		if err := scorer.ScoreBatchCtx(context.Background(), cands, got, gotOK); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		for i := range cands {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) || gotOK[i] != wantOK[i] {
				t.Fatalf("width %d cand %d: %v/%v != serial %v/%v", w, i, got[i], gotOK[i], want[i], wantOK[i])
			}
		}
	}
}

// TestScoreBatchArenaRace is the scribble-and-check test for the pooled
// arenas: many goroutines run batched passes on shared scorers at once, and
// every pass's output is compared bitwise to the precomputed serial answer.
// If a recycled arena ever leaked state between concurrent passes — an
// aliasing bug in Alloc/Reset or a pool misuse — some pass would read
// another's activations and the comparison (or -race) would catch it.
func TestScoreBatchArenaRace(t *testing.T) {
	tuner := batchTestTuner(t)
	env := sparksim.ClusterC
	type workItem struct {
		scorer *AppScorer
		cands  []sparksim.Config
		want   []float64
	}
	var work []workItem
	for _, name := range []string{"WordCount", "PageRank"} {
		app := workload.ByName(name)
		data := app.Spec.MakeData(app.Sizes.Test)
		cands := batchTestCandidates(t, tuner, app, data, env, 16)
		scorer := tuner.Model.NewAppScorer(app.Spec, data, env)
		want := make([]float64, len(cands))
		scorer.ScoreBatch(cands, want, nil)
		work = append(work, workItem{scorer, cands, want})
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := work[g%len(work)]
			preds := make([]float64, len(w.cands))
			for it := 0; it < 8; it++ {
				w.scorer.ScoreBatch(w.cands, preds, nil)
				for i := range preds {
					if math.Float64bits(preds[i]) != math.Float64bits(w.want[i]) {
						t.Errorf("goroutine %d iter %d cand %d: %v != %v (arena contamination?)", g, it, i, preds[i], w.want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// rankOrder returns candidate indices best-first with index tie-breaking,
// mirroring the stable sort recommendFrom uses.
func rankOrder(preds []float64) []int {
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && preds[order[j]] < preds[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// TestF32RankingEquivalence is the golden guard on the train-f64/serve-f32
// contract: across seeded workloads the float32 path must reproduce the
// float64 top-K candidate ordering exactly, and every float32 prediction
// must sit within float32 rounding distance of its float64 counterpart.
func TestF32RankingEquivalence(t *testing.T) {
	const topK = 10
	tuner := batchTestTuner(t)
	plan := tuner.Model.CompileF32()
	if !plan.f32Finite() {
		t.Fatal("compiled plan has non-finite weights")
	}
	for _, name := range []string{"WordCount", "PageRank"} {
		app := workload.ByName(name)
		for _, env := range []sparksim.Environment{sparksim.ClusterC, sparksim.ClusterA} {
			data := app.Spec.MakeData(app.Sizes.Test)
			cands := batchTestCandidates(t, tuner, app, data, env, 64)

			f64Scorer := tuner.Model.NewAppScorer(app.Spec, data, env)
			f64Preds := make([]float64, len(cands))
			f64Scorer.ScoreBatch(cands, f64Preds, nil)

			f32Scorer := tuner.Model.NewAppScorer(app.Spec, data, env).UseF32(plan)
			f32Preds := make([]float64, len(cands))
			f32Scorer.ScoreBatch(cands, f32Preds, nil)

			for i := range cands {
				rel := math.Abs(f32Preds[i]-f64Preds[i]) / math.Max(1, math.Abs(f64Preds[i]))
				if rel > 1e-3 {
					t.Fatalf("%s/%s cand %d: f32 %v vs f64 %v (rel %v)", name, env.Name, i, f32Preds[i], f64Preds[i], rel)
				}
			}
			o64 := rankOrder(f64Preds)
			o32 := rankOrder(f32Preds)
			for k := 0; k < topK; k++ {
				if o64[k] != o32[k] {
					t.Fatalf("%s/%s: top-%d rank %d differs: f64 cand %d (%v) vs f32 cand %d (%v)",
						name, env.Name, topK, k, o64[k], f64Preds[o64[k]], o32[k], f32Preds[o32[k]])
				}
			}
		}
	}
}

// TestF32TunerLifecycle covers the tuner-level wiring: enabling compiles a
// plan that serves, an in-place adaptive update recompiles it (never serves
// stale weights), and CloneForUpdate clones come up float64.
func TestF32TunerLifecycle(t *testing.T) {
	tuner := batchTestTuner(t)
	app := workload.ByName("WordCount")
	env := sparksim.ClusterC
	data := app.Spec.MakeData(app.Sizes.Test)

	tuner.EnableF32Serving()
	if !tuner.F32ServingEnabled() {
		t.Fatal("f32 serving not enabled")
	}
	rec := tuner.Recommend(app.Spec, data, env)
	if len(rec.Ranked) != tuner.NumCandidates {
		t.Fatalf("f32 recommend ranked %d, want %d", len(rec.Ranked), tuner.NumCandidates)
	}
	if !sparksim.Feasible(rec.Config, env) {
		t.Fatal("f32 recommendation infeasible")
	}

	if tuner.CloneForUpdate(3).F32ServingEnabled() {
		t.Fatal("clone must serve float64 until explicitly re-enabled")
	}

	planBefore := tuner.f32
	tuner.UpdateBatch = 1
	run := instrument.Run(app.Spec, data, env, rec.Config)
	if !tuner.CollectFeedback(run, nil) {
		t.Fatal("feedback did not trigger an update")
	}
	if tuner.f32 == planBefore {
		t.Fatal("in-place update did not recompile the f32 plan")
	}
	rec2 := tuner.Recommend(app.Spec, data, env)
	if len(rec2.Ranked) != tuner.NumCandidates {
		t.Fatalf("post-update f32 recommend ranked %d", len(rec2.Ranked))
	}

	tuner.DisableF32Serving()
	if tuner.F32ServingEnabled() {
		t.Fatal("f32 serving still enabled after disable")
	}
}
