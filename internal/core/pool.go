package core

// This file implements the scoring worker pool: a process-wide, bounded
// set of helper goroutines that candidate scoring (and any other
// embarrassingly parallel read-only work, e.g. the serving batcher's
// per-key fan-out) is spread across. Candidates are independent and the
// model is read-only during scoring, so the only coordination the pool
// needs is a bound on how many goroutines run at once.
//
// Design:
//
//   - One global pool sized to GOMAXPROCS by default (SetScoreWorkers
//     overrides it). The bound is process-wide, not per-call: sixteen
//     concurrent recommendations do not spawn 16×GOMAXPROCS goroutines.
//   - ParallelDo never blocks waiting for a worker. The calling goroutine
//     always works through items itself and only *recruits* helpers when
//     free slots exist; under saturation a call simply degrades to serial
//     execution on the caller. No queuing, no deadlock — a helper that
//     itself calls ParallelDo (nested fan-out) just finds fewer slots.
//   - Determinism: fn(i) receives the item index, so callers write results
//     into pre-sized slices by index. Which goroutine scores an item never
//     affects where the result lands.
//   - Panics in fn are captured and re-raised on the calling goroutine, so
//     callers' recover guards (Tuner.tryNECSTier) keep working when the
//     panicking item happened to run on a helper.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// scorePool is one immutable pool configuration. SetScoreWorkers swaps the
// whole struct through an atomic pointer, so a resize never races with
// in-flight acquires: goroutines that hold a slot of the old pool return
// it to the old pool's channel, which is then garbage collected.
type scorePool struct {
	// workers is the configured parallelism width (callers + helpers).
	workers int
	// slots holds workers-1 tokens; recruiting a helper takes one,
	// helper exit returns it. nil when workers <= 1 (serial).
	slots chan struct{}
	// busy counts currently running helper goroutines.
	busy atomic.Int64
	// items counts every item ever dispatched through ParallelDo.
	items atomic.Uint64
}

var activePool atomic.Pointer[scorePool]

func init() { SetScoreWorkers(0) }

// SetScoreWorkers resizes the global scoring pool to n-way parallelism
// (one caller plus n-1 helper goroutines per ParallelDo, bounded across
// the whole process). n <= 0 restores the default, GOMAXPROCS. n == 1
// forces serial scoring. Safe to call at any time, including while
// scoring is in flight: running work finishes under the old bound.
func SetScoreWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &scorePool{workers: n}
	if n > 1 {
		p.slots = make(chan struct{}, n-1)
		for i := 0; i < n-1; i++ {
			p.slots <- struct{}{}
		}
	}
	activePool.Store(p)
}

// ScoreWorkers returns the configured parallelism width of the global
// scoring pool.
func ScoreWorkers() int { return activePool.Load().workers }

// PoolStats is a snapshot of the scoring pool's state, exported so the
// serving layer can publish pool depth and utilization as metrics.
type PoolStats struct {
	// Workers is the configured parallelism width (SetScoreWorkers).
	Workers int
	// Busy is the number of helper goroutines running right now.
	Busy int
	// Utilization is Busy over the helper capacity (Workers-1), in [0,1];
	// 0 when the pool is serial.
	Utilization float64
	// Items is the cumulative number of work items dispatched through
	// ParallelDo since the pool was (re)configured.
	Items uint64
}

// ScorePoolStats returns a snapshot of the global pool. Safe for
// concurrent use.
func ScorePoolStats() PoolStats {
	p := activePool.Load()
	s := PoolStats{
		Workers: p.workers,
		Busy:    int(p.busy.Load()),
		Items:   p.items.Load(),
	}
	if p.workers > 1 {
		s.Utilization = float64(s.Busy) / float64(p.workers-1)
	}
	return s
}

// ParallelDo runs fn(i) for every i in [0, n), fanning the items across
// the calling goroutine plus up to ScoreWorkers()-1 recruited helpers.
// It returns when every item has been processed. fn must be safe to call
// from multiple goroutines; results should be written into index i of a
// caller-owned slice, which keeps output ordering deterministic no matter
// how items are scheduled. If fn panics, the first panic value is
// re-raised on the calling goroutine after the remaining workers drain.
func ParallelDo(n int, fn func(int)) {
	parallelDo(nil, n, fn)
}

// ParallelDoCtx is ParallelDo with cooperative cancellation: every worker
// (the caller included) checks ctx between items, so an abandoned fan-out
// stops recruiting pool capacity as soon as its context is cancelled.
// It returns ctx.Err() when the run was cut short — items already started
// finish (fn is never interrupted mid-call), remaining items are skipped
// and the caller must treat its result slots as unwritten.
func ParallelDoCtx(ctx context.Context, n int, fn func(int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	parallelDo(ctx.Done(), n, fn)
	return ctx.Err()
}

func parallelDo(done <-chan struct{}, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	p := activePool.Load()
	p.items.Add(uint64(n))
	if n == 1 || p.slots == nil {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		aborted  atomic.Bool
		panicMu  sync.Mutex
		panicVal any
	)
	work := func() {
		for !aborted.Load() {
			if done != nil {
				select {
				case <-done:
					aborted.Store(true)
					return
				default:
				}
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicVal == nil {
							panicVal = r
						}
						panicMu.Unlock()
						aborted.Store(true)
					}
				}()
				fn(i)
			}()
		}
	}

	var wg sync.WaitGroup
	// Recruit at most n-1 helpers (the caller handles the rest), and only
	// as many as the pool has free slots for — never block to get one.
recruit:
	for h := 0; h < n-1 && h < p.workers-1; h++ {
		select {
		case <-p.slots:
			p.busy.Add(1)
			wg.Add(1)
			go func() {
				defer func() {
					p.busy.Add(-1)
					p.slots <- struct{}{}
					wg.Done()
				}()
				work()
			}()
		default:
			break recruit
		}
	}
	work()
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
