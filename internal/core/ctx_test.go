package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"lite/internal/sparksim"
	"lite/internal/workload"
)

func TestParallelDoCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ParallelDoCtx(ctx, 8, func(int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn ran despite a context cancelled before the call")
	}
}

// TestParallelDoCtxStopsBetweenItems cancels from inside the first item:
// every worker checks ctx between items, so the remaining items must be
// skipped instead of burning the pool — the "abandoned 64-candidate pass"
// scenario.
func TestParallelDoCtxStopsBetweenItems(t *testing.T) {
	for _, workers := range []int{1, 4} {
		SetScoreWorkers(workers)
		ctx, cancel := context.WithCancel(context.Background())
		var processed atomic.Int64
		const n = 256
		err := ParallelDoCtx(ctx, n, func(i int) {
			processed.Add(1)
			cancel()
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Items already started finish (≤ one per worker after the cancel),
		// but the bulk of the pass must be skipped.
		if got := processed.Load(); got >= n/2 {
			t.Fatalf("workers=%d: %d of %d items processed after cancellation", workers, got, n)
		}
	}
	SetScoreWorkers(0)
}

func TestParallelDoCtxUncancelledMatchesParallelDo(t *testing.T) {
	hits := make([]int, 32)
	if err := ParallelDoCtx(context.Background(), len(hits), func(i int) { hits[i]++ }); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d processed %d times", i, h)
		}
	}
}

// ctxTestTuner trains the smallest useful tuner for cancellation tests.
func ctxTestTuner(t *testing.T) *Tuner {
	t.Helper()
	apps := []*workload.App{workload.ByName("WordCount")}
	opts := DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = 2
	opts.Collect.Sizes = []int{0}
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterC}
	opts.NECS.Epochs = 1
	tuner, _ := Train(apps, opts)
	tuner.NumCandidates = 8
	return tuner
}

// TestRecommendSafeCtxCancelled: a cancelled context aborts the request
// with ctx.Err() instead of degrading down the tier chain — cancellation
// is a caller decision, not a model failure.
func TestRecommendSafeCtxCancelled(t *testing.T) {
	tuner := ctxTestTuner(t)
	app := workload.ByName("WordCount")
	data := app.Spec.MakeData(256)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sr, err := tuner.RecommendSafeCtx(ctx, app.Spec, data, sparksim.ClusterC)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sr.Tier != "" {
		t.Fatalf("cancelled request produced tier %q, want none", sr.Tier)
	}

	// The same request under a live context still answers normally.
	sr, err = tuner.RecommendSafeCtx(context.Background(), app.Spec, data, sparksim.ClusterC)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Tier != TierNECS {
		t.Fatalf("tier = %q, want %q", sr.Tier, TierNECS)
	}
}

func TestRecommendCtxCancelled(t *testing.T) {
	tuner := ctxTestTuner(t)
	app := workload.ByName("WordCount")
	data := app.Spec.MakeData(256)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tuner.RecommendCtx(ctx, app.Spec, data, sparksim.ClusterC); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecommendCtx err = %v, want context.Canceled", err)
	}
	if _, err := tuner.RecommendFromCtx(ctx, app.Spec, data, sparksim.ClusterC,
		[]sparksim.Config{sparksim.DefaultConfig()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecommendFromCtx err = %v, want context.Canceled", err)
	}

	// The context-free wrappers stay equivalent to a Background context.
	rec := tuner.Recommend(app.Spec, data, sparksim.ClusterC)
	if len(rec.Ranked) == 0 {
		t.Fatal("Recommend returned an empty ranking")
	}
}
