package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"lite/internal/sparksim"
	"lite/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("PageRank")}
	ds := smallDataset(t, apps, 3, 31)
	cfg := fastConfig()
	rng := rand.New(rand.NewSource(32))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	model.Fit(EncodeAll(enc, ds.Instances), rng)

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNECS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Predictions must be bit-identical across the round trip.
	app := workload.ByName("PageRank").Spec
	d := app.MakeData(512)
	for i := 0; i < 10; i++ {
		c := sparksim.RandomConfig(rng)
		a := model.PredictApp(app, d, sparksim.ClusterC, c)
		b := loaded.PredictApp(app, d, sparksim.ClusterC, c)
		if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
			t.Fatalf("prediction mismatch after load: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsWrongFormat(t *testing.T) {
	if _, err := LoadNECS(strings.NewReader(`{"format":"other"}`)); err == nil {
		t.Fatal("expected format error")
	}
	if _, err := LoadNECS(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadRejectsCorruptedParams(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount")}
	ds := smallDataset(t, apps, 2, 33)
	cfg := fastConfig()
	cfg.Epochs = 1
	rng := rand.New(rand.NewSource(34))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate the parameter list.
	s := buf.String()
	s = strings.Replace(s, `"params":[[`, `"params":[[999999],[`, 1)
	if _, err := LoadNECS(strings.NewReader(s)); err == nil {
		t.Fatal("expected corruption error")
	}
}

func TestSavePreservesVocabularies(t *testing.T) {
	apps := []*workload.App{workload.ByName("Terasort")}
	ds := smallDataset(t, apps, 2, 35)
	cfg := fastConfig()
	cfg.Epochs = 1
	rng := rand.New(rand.NewSource(36))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNECS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range []string{"sortByKey", "partitionBy", "TeraSortPartitioner"} {
		if loaded.Encoder.Vocab.ID(tok) != enc.Vocab.ID(tok) {
			t.Fatalf("token %q id changed across save/load", tok)
		}
	}
	if loaded.Encoder.OpVocab.Width() != enc.OpVocab.Width() {
		t.Fatal("op vocabulary width changed")
	}
}

func TestTunerSaveLoadRoundTrip(t *testing.T) {
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("Terasort")}
	opts := DefaultTrainOptions()
	opts.NECS = fastConfig()
	opts.NECS.Epochs = 2
	opts.Collect.ConfigsPerInstance = 4
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterA, sparksim.ClusterC}
	opts.Collect.Sizes = []int{0, 3}
	tuner, _ := Train(apps, opts)

	var buf bytes.Buffer
	if err := tuner.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTuner(bytes.NewReader(buf.Bytes()), 99)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCandidates != tuner.NumCandidates {
		t.Fatal("NumCandidates lost")
	}

	app := workload.ByName("Terasort")
	data := app.Spec.MakeData(app.Sizes.Test)

	// NECS predictions identical.
	cfg := sparksim.DefaultConfig()
	a := tuner.Model.PredictApp(app.Spec, data, sparksim.ClusterC, cfg)
	b := loaded.Model.PredictApp(app.Spec, data, sparksim.ClusterC, cfg)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("prediction differs after tuner load: %v vs %v", a, b)
	}
	// ACG regions identical.
	lo1, hi1 := tuner.ACG.Region("Terasort", data)
	lo2, hi2 := loaded.ACG.Region("Terasort", data)
	for d := 0; d < sparksim.NumKnobs; d++ {
		if math.Abs(lo1[d]-lo2[d]) > 1e-9 || math.Abs(hi1[d]-hi2[d]) > 1e-9 {
			t.Fatalf("ACG region differs for knob %d after load", d)
		}
	}
	// The loaded tuner must actually work.
	rec := loaded.Recommend(app.Spec, data, sparksim.ClusterC)
	if len(rec.Ranked) != loaded.NumCandidates {
		t.Fatal("loaded tuner cannot recommend")
	}
}

func TestLoadTunerRejectsBadInput(t *testing.T) {
	if _, err := LoadTuner(strings.NewReader("{}"), 1); err == nil {
		t.Fatal("expected format error")
	}
	if _, err := LoadTuner(strings.NewReader("garbage"), 1); err == nil {
		t.Fatal("expected decode error")
	}
}
