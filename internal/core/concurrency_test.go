package core

import (
	"math/rand"
	"sync"
	"testing"

	"lite/internal/instrument"
	"lite/internal/metrics"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// concurrencyTuner trains a deliberately tiny tuner so the -race hammer
// tests stay fast (the race detector slows execution ~10x).
func concurrencyTuner(t *testing.T) (*Tuner, *Dataset) {
	t.Helper()
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("KMeans")}
	opts := DefaultTrainOptions()
	opts.Collect.ConfigsPerInstance = 2
	opts.Collect.Sizes = []int{0}
	opts.Collect.Clusters = []sparksim.Environment{sparksim.ClusterC}
	opts.NECS.Epochs = 2
	tuner, ds := Train(apps, opts)
	tuner.NumCandidates = 6
	return tuner, ds
}

// TestRecommendConcurrentRace hammers every read path from 16 goroutines.
// Run with -race: the point is that concurrent recommendation shares no
// mutable state (encoder caches and the candidate RNG are the only shared
// writes, and both are guarded).
func TestRecommendConcurrentRace(t *testing.T) {
	tuner, _ := concurrencyTuner(t)
	app := workload.ByName("WordCount")
	env := sparksim.ClusterC

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := app.Spec.MakeData(app.Sizes.Train[0] * float64(1+g%3))
			for i := 0; i < 3; i++ {
				rec := tuner.Recommend(app.Spec, data, env)
				if !sparksim.Feasible(rec.Config, env) {
					t.Errorf("goroutine %d: infeasible recommendation", g)
				}
				sr, err := tuner.RecommendSafe(app.Spec, data, env)
				if err != nil {
					t.Errorf("goroutine %d: RecommendSafe: %v", g, err)
				}
				if sr.Tier == "" {
					t.Errorf("goroutine %d: empty tier", g)
				}
				// Exercise PredictApp and ranking helpers concurrently too.
				scores := []float64{
					tuner.Model.PredictApp(app.Spec, data, env, sparksim.DefaultConfig()),
					tuner.Model.PredictApp(app.Spec, data, env, rec.Config),
				}
				metrics.RankByScore(scores)
			}
		}(g)
	}
	wg.Wait()
}

// TestCollectFeedbackConcurrentWithRecommend overlaps the mutating feedback
// path (including an in-place adaptive update) with concurrent readers.
func TestCollectFeedbackConcurrentWithRecommend(t *testing.T) {
	tuner, ds := concurrencyTuner(t)
	tuner.UpdateBatch = 4
	tuner.AMU.Epochs = 1
	app := workload.ByName("WordCount")
	env := sparksim.ClusterC
	data := app.Spec.MakeData(app.Sizes.Train[0])
	source := EncodeAll(tuner.Model.Encoder, ds.Instances[:20])

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := tuner.RecommendSafe(app.Spec, data, env); err != nil {
					t.Errorf("RecommendSafe: %v", err)
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(9))
	updated := false
	for i := 0; i < 6; i++ {
		cfg := ForceFeasible(sparksim.RandomConfig(rng), env)
		run := instrument.Run(app.Spec, data, env, cfg)
		if tuner.CollectFeedback(run, source) {
			updated = true
		}
	}
	wg.Wait()
	if !updated {
		t.Fatal("expected at least one adaptive update to trigger")
	}
	if !tuner.Model.paramsFinite() {
		t.Fatal("model weights went non-finite during concurrent update")
	}
}
