package core

// This file is the batched candidate-scoring kernel (DESIGN.md §12): the
// serving hot path that turns "64 candidates × S stages × one autograd
// forward each" into "one [64·S × d] matrix and one GEMM per tower layer".
//
// Data layout: for C candidates over the scorer's S unique stages, the
// tower input X is a (C·S)×d matrix, candidate-major — row c·S+s is
//
//	[ dense_c (feature.DenseWidth) | h_code_s ‖ h_DAG_s ]
//
// where dense_c = knobs(c) ++ shared(data,env) ++ derived(c,data,env) is
// candidate-dependent but stage-invariant, and the suffix is the stage's
// precomputed representation (scorer.go). Each tower layer then runs as a
// single MatMul over all rows. Because tensor.MatMulInto accumulates every
// output row independently (k ascending), row c·S+s is bitwise identical
// to scoring candidate c's stage s alone — batching is a pure layout
// transformation, which is what lets ScoreChecked route through a batch of
// one and the golden test pin batch-vs-graph equality.
//
// Activations live in per-pass tensor arenas (nn.Arena) recycled through a
// sync.Pool, so steady-state scoring allocates no tower intermediates.
// Arena ownership: one goroutine per arena per pass; arena tensors never
// escape this file — per-candidate seconds are plain float64s copied into
// caller-owned slices.

import (
	"context"
	"sync"

	"lite/internal/feature"
	"lite/internal/nn"
	"lite/internal/sparksim"
)

// arenaPool recycles inference arenas across scoring passes. Arenas are
// taken per (goroutine, pass) and reset before reuse, so no two concurrent
// passes ever share a slab.
var arenaPool = sync.Pool{New: func() any { return new(nn.Arena) }}

// ScoreBatch scores every candidate in cfgs in one batched pass, writing
// the clamped aggregate prediction for cfgs[i] into preds[i] and its
// finiteness into oks[i] (false when any stage's raw prediction was NaN or
// ±Inf — see ScoreChecked). preds and oks must be at least len(cfgs) long;
// oks may be nil when the caller does not need the report. preds[i] is
// bitwise identical to Score(cfgs[i]). Safe for concurrent use.
func (s *AppScorer) ScoreBatch(cfgs []sparksim.Config, preds []float64, oks []bool) {
	if len(cfgs) == 0 {
		return
	}
	if s.f32 != nil {
		s.scoreBatchF32(cfgs, preds, oks)
		return
	}
	ar := arenaPool.Get().(*nn.Arena)
	ar.Reset()
	defer arenaPool.Put(ar)
	s.scoreBatchF64(ar, cfgs, preds, oks)
}

// scoreBatchF64 is the float64 batched kernel. It fills the (C·S)×d tower
// input in arena memory, runs the tower with one GEMM per layer, and folds
// the per-stage outputs into per-candidate totals in plan order.
func (s *AppScorer) scoreBatchF64(ar *nn.Arena, cfgs []sparksim.Config, preds []float64, oks []bool) {
	nStages := len(s.stages)
	repW := len(s.stages[0].rep)
	width := feature.DenseWidth + repW
	x := ar.Alloc(len(cfgs)*nStages, width)
	for ci, cfg := range cfgs {
		knobs := cfg.Normalized()
		derived := feature.DerivedResourceFeatures(cfg, s.data, s.env)
		// Fill the candidate's first row: dense prefix + stage-0 rep …
		row := x.RowView(ci * nStages)
		off := copy(row, knobs)
		off += copy(row[off:], s.shared)
		off += copy(row[off:], derived)
		copy(row[off:], s.stages[0].rep)
		// … then copy the dense prefix into the candidate's other rows and
		// append each stage's own rep.
		for si := 1; si < nStages; si++ {
			r := x.RowView(ci*nStages + si)
			copy(r, row[:feature.DenseWidth])
			copy(r[feature.DenseWidth:], s.stages[si].rep)
		}
	}
	out := s.model.Tower.InferBatch(ar, x)
	// Fold per-stage predictions into per-candidate plan-order totals.
	secs := make([]float64, nStages)
	for ci := range cfgs {
		ok := true
		base := ci * nStages
		for si := 0; si < nStages; si++ {
			sec, fin := secondsChecked(out.Data[base+si])
			secs[si] = sec
			ok = ok && fin
		}
		var total float64
		for _, pi := range s.plan {
			total += secs[s.slot[pi]]
		}
		preds[ci] = total
		if oks != nil {
			oks[ci] = ok
		}
	}
}

// scoreChunkSize balances GEMM batch size against pool parallelism: with W
// pool workers a candidate set splits into at most W contiguous chunks,
// each scored as one batched pass on its own arena. Chunking never changes
// results (rows are independent — see the layout note above), only which
// GEMM call a row rides in.
func scoreChunkSize(n int) int {
	w := ScoreWorkers()
	if w <= 1 || n <= 1 {
		return n
	}
	return (n + w - 1) / w
}

// ScoreBatchCtx is ScoreBatch with cooperative cancellation and pool
// fan-out: the candidate set is split into one contiguous chunk per
// scoring-pool worker and chunks are scored concurrently (ParallelDoCtx),
// each as a single batched GEMM pass. Results are written by candidate
// index, so the output is deterministic — and bitwise identical to serial
// Score — at any pool width. On a cancelled context the remaining chunks
// are skipped, ctx.Err() is returned, and the caller must treat preds/oks
// as unwritten.
func (s *AppScorer) ScoreBatchCtx(ctx context.Context, cfgs []sparksim.Config, preds []float64, oks []bool) error {
	n := len(cfgs)
	if n == 0 {
		return ctx.Err()
	}
	chunk := scoreChunkSize(n)
	nChunks := (n + chunk - 1) / chunk
	if nChunks == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.ScoreBatch(cfgs, preds, oks)
		return ctx.Err()
	}
	return ParallelDoCtx(ctx, nChunks, func(i int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		var okSlice []bool
		if oks != nil {
			okSlice = oks[lo:hi]
		}
		s.ScoreBatch(cfgs[lo:hi], preds[lo:hi], okSlice)
	})
}
