package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"lite/internal/feature"
)

// modelFile is the on-disk representation of a trained NECS model: the
// hyperparameters, both vocabularies, and every parameter tensor in
// Params() order (which is deterministic for a given configuration).
type modelFile struct {
	Format  string         `json:"format"`
	Config  NECSConfig     `json:"config"`
	Vocab   map[string]int `json:"vocab"`
	OpVocab map[string]int `json:"op_vocab"`
	UseOOV  bool           `json:"use_oov"`
	Shapes  [][2]int       `json:"shapes"`
	Params  [][]float64    `json:"params"`
}

const modelFormat = "lite-necs-v1"

// Save serializes the model (weights + vocabularies + hyperparameters) as
// JSON. The encoder's caches are not persisted; they rebuild lazily.
func (m *NECS) Save(w io.Writer) error {
	mf := modelFile{
		Format:  modelFormat,
		Config:  m.Cfg,
		Vocab:   m.Encoder.Vocab.Export(),
		OpVocab: m.Encoder.OpVocab.Export(),
		UseOOV:  m.Encoder.Vocab.UseOOV,
	}
	for _, p := range m.Params() {
		mf.Shapes = append(mf.Shapes, [2]int{p.Value.Rows, p.Value.Cols})
		mf.Params = append(mf.Params, append([]float64(nil), p.Value.Data...))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// LoadNECS reconstructs a model previously written by Save.
func LoadNECS(r io.Reader) (*NECS, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if mf.Format != modelFormat {
		return nil, fmt.Errorf("core: unsupported model format %q", mf.Format)
	}
	enc := NewEncoderFromVocabs(
		feature.NewVocabFromMap(mf.Vocab, mf.UseOOV),
		feature.NewOpVocabFromMap(mf.OpVocab, mf.UseOOV),
		mf.Config,
	)
	m := NewNECS(enc, mf.Config, rand.New(rand.NewSource(0)))
	params := m.Params()
	if len(params) != len(mf.Params) {
		return nil, fmt.Errorf("core: model has %d parameter tensors, file has %d", len(params), len(mf.Params))
	}
	for i, p := range params {
		if p.Value.Rows != mf.Shapes[i][0] || p.Value.Cols != mf.Shapes[i][1] {
			return nil, fmt.Errorf("core: parameter %d shape %dx%d, file has %dx%d",
				i, p.Value.Rows, p.Value.Cols, mf.Shapes[i][0], mf.Shapes[i][1])
		}
		if len(mf.Params[i]) != p.Value.Size() {
			return nil, fmt.Errorf("core: parameter %d has %d values, want %d", i, len(mf.Params[i]), p.Value.Size())
		}
		copy(p.Value.Data, mf.Params[i])
	}
	return m, nil
}

// tunerFile is the on-disk representation of a full LITE tuner: the NECS
// model plus the Adaptive Candidate Generation state.
type tunerFile struct {
	Format        string          `json:"format"`
	Model         json.RawMessage `json:"model"`
	ACG           json.RawMessage `json:"acg"`
	NumCandidates int             `json:"num_candidates"`
	UpdateBatch   int             `json:"update_batch"`
}

const tunerFormat = "lite-tuner-v1"

// Save serializes the whole tuner (NECS + ACG) as JSON.
func (t *Tuner) Save(w io.Writer) error {
	var model bytes.Buffer
	if err := t.Model.Save(&model); err != nil {
		return err
	}
	acg, err := json.Marshal(t.ACG)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(&tunerFile{
		Format:        tunerFormat,
		Model:         model.Bytes(),
		ACG:           acg,
		NumCandidates: t.NumCandidates,
		UpdateBatch:   t.UpdateBatch,
	})
}

// LoadTuner reconstructs a tuner previously written by Save. The returned
// tuner is ready to Recommend; its RNG is seeded with the given seed.
func LoadTuner(r io.Reader, seed int64) (*Tuner, error) {
	var tf tunerFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, fmt.Errorf("core: decoding tuner: %w", err)
	}
	if tf.Format != tunerFormat {
		return nil, fmt.Errorf("core: unsupported tuner format %q", tf.Format)
	}
	model, err := LoadNECS(bytes.NewReader(tf.Model))
	if err != nil {
		return nil, err
	}
	acg := &CandidateGenerator{}
	if err := json.Unmarshal(tf.ACG, acg); err != nil {
		return nil, fmt.Errorf("core: decoding ACG: %w", err)
	}
	return &Tuner{
		Model:         model,
		ACG:           acg,
		NumCandidates: tf.NumCandidates,
		UpdateBatch:   tf.UpdateBatch,
		AMU:           DefaultAMUConfig(),
		rng:           rand.New(rand.NewSource(seed)),
	}, nil
}

// NewEncoderFromVocabs builds an encoder around existing vocabularies
// (used when loading a persisted model; no training corpus needed).
func NewEncoderFromVocabs(vocab *feature.Vocab, opVocab *feature.OpVocab, cfg NECSConfig) *Encoder {
	e := &Encoder{
		Vocab:    vocab,
		OpVocab:  opVocab,
		cfg:      cfg,
		tokCache: map[string][]int{},
		dagCache: map[string]*dagEnc{},
	}
	e.dagByKey = func(ops []string, edges [][2]int) string {
		key := ""
		for _, o := range ops {
			key += o + "|"
		}
		for _, ed := range edges {
			key += string(rune('0'+ed[0])) + string(rune('0'+ed[1]))
		}
		return key
	}
	return e
}
