package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"lite/internal/instrument"
	"lite/internal/retrieval"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// Tuner is the LITE system (paper Figure 2): an offline-trained NECS
// estimator, the Adaptive Candidate Generation model, and the online
// recommendation loop with Adaptive Model Update on collected feedback.
//
// Concurrency: the read paths (Recommend, RecommendFrom, RecommendSafe,
// Model.PredictApp via them) may be called from any number of goroutines;
// they share mu as readers and serialize only on the candidate RNG.
// CollectFeedback takes mu exclusively, so an in-place adaptive update
// blocks readers for its duration — a serving layer that cannot afford
// that should retrain on CloneForUpdate and hot-swap the whole tuner
// (see internal/serve).
type Tuner struct {
	Model *NECS
	ACG   *CandidateGenerator

	// Retrieval is the optional zero-execution cold-start store
	// (internal/retrieval): when set, RecommendSafeCtx degrades through a
	// "retrieval" tier (nearest historical neighbour's best-known config,
	// adapted) before falling back to the ACG region center, and
	// RecommendColdCtx can serve applications absent from the workload
	// registry. The store is internally synchronized and shared across
	// clones; it is not serialized with the tuner (Save/LoadTuner), so
	// serving layers reattach it after loading a snapshot.
	Retrieval *retrieval.Store

	// NumCandidates is how many knob candidates Step 2 samples from the
	// region of interest.
	NumCandidates int

	// Feedback accumulates target-domain instances for Adaptive Model
	// Update; UpdateBatch triggers an update when this many new
	// application feedbacks have been collected.
	Feedback    []*Encoded
	UpdateBatch int
	AMU         AMUConfig

	rng *rand.Rand

	// f32 is the packed float32 serving plan (f32.go), nil unless
	// EnableF32Serving was called. Guarded by mu: read paths attach it to
	// their per-request scorer under RLock; CollectFeedback recompiles it
	// under the write lock after an in-place Adaptive Model Update so the
	// plan can never serve stale weights.
	f32 *F32Plan

	// mu is held shared by the read paths and exclusively by
	// CollectFeedback (which appends feedback and may mutate the model
	// weights in place via AdaptiveModelUpdate).
	mu sync.RWMutex
	// rngMu guards rng: math/rand.Rand is not safe for concurrent use,
	// even by otherwise read-only callers. Lock order: mu before rngMu.
	rngMu sync.Mutex
}

// ensureRNG lazily installs a deterministic RNG on hand-assembled tuners.
func (t *Tuner) ensureRNG() {
	t.rngMu.Lock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(1))
	}
	t.rngMu.Unlock()
}

// EnableF32Serving compiles the current model into a packed float32 plan
// and routes all subsequent recommendations through the float32 tower
// kernel (train-f64/serve-f32 contract, DESIGN.md §12). The plan tracks
// in-place Adaptive Model Updates automatically (CollectFeedback
// recompiles it); CloneForUpdate clones serve float64 until re-enabled.
func (t *Tuner) EnableF32Serving() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.f32 = t.Model.CompileF32()
}

// DisableF32Serving drops the float32 plan; recommendations return to the
// float64 tower kernel.
func (t *Tuner) DisableF32Serving() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.f32 = nil
}

// F32ServingEnabled reports whether recommendations currently run the
// float32 tower kernel.
func (t *Tuner) F32ServingEnabled() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.f32 != nil
}

// newScorer builds the per-request scorer, attaching the float32 plan when
// float32 serving is enabled. Callers must hold t.mu (read).
func (t *Tuner) newScorer(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) *AppScorer {
	s := t.Model.NewAppScorer(app, data, env)
	if t.f32 != nil {
		s.UseF32(t.f32)
	}
	return s
}

// sampleFeasible draws candidates from the ACG region under the RNG lock.
func (t *Tuner) sampleFeasible(appName string, data sparksim.DataSpec, env sparksim.Environment, n int) []sparksim.Config {
	t.ensureRNG()
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.ACG.SampleFeasible(appName, data, env, n, t.rng)
}

// TrainOptions bundles everything needed to train LITE offline.
type TrainOptions struct {
	NECS    NECSConfig
	Collect CollectOptions
	Seed    int64
}

// DefaultTrainOptions returns the standard offline-training settings.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		NECS:    DefaultNECSConfig(),
		Collect: DefaultCollectOptions(),
		Seed:    1,
	}
}

// Train runs the full offline phase on the given applications: collect
// small-data training runs, build the encoder, train NECS (Equation 4) and
// fit the ACG models. It returns the tuner and the dataset (for reuse by
// experiments).
func Train(apps []*workload.App, opts TrainOptions) (*Tuner, *Dataset) {
	rng := rand.New(rand.NewSource(opts.Seed))
	ds := Collect(apps, opts.Collect, rng)
	return TrainOn(ds, opts), ds
}

// TrainOn trains a tuner from an already-collected dataset.
func TrainOn(ds *Dataset, opts TrainOptions) *Tuner {
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	enc := NewEncoder(ds.Instances, opts.NECS)
	model := NewNECS(enc, opts.NECS, rng)
	model.Fit(EncodeAll(enc, ds.Instances), rng)
	return &Tuner{
		Model:         model,
		ACG:           NewCandidateGenerator(ds.Runs, rng),
		NumCandidates: 64,
		UpdateBatch:   10,
		AMU:           DefaultAMUConfig(),
		rng:           rng,
	}
}

// Recommendation is the outcome of one online tuning request.
type Recommendation struct {
	Config sparksim.Config
	// PredictedSeconds is NECS's aggregated estimate for the winner.
	PredictedSeconds float64
	// Ranked lists every candidate best-first with its prediction.
	Ranked []ScoredConfig
	// Overhead is the wall-clock time LITE spent deciding.
	Overhead time.Duration
}

// ScoredConfig pairs a candidate with its predicted execution time.
type ScoredConfig struct {
	Config    sparksim.Config
	Predicted float64
}

// Recommend executes online Steps 1–3 (paper §IV): sample candidates from
// the ACG region of interest, estimate each with NECS by aggregating
// stage-level predictions, and return the configuration with the least
// estimated time (Equation 5).
func (t *Tuner) Recommend(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) Recommendation {
	rec, _ := t.RecommendCtx(context.Background(), app, data, env)
	return rec
}

// RecommendCtx is Recommend with cooperative cancellation: scoring checks
// ctx between candidates (ParallelDoCtx), so an abandoned request stops
// burning pool workers mid-pass. A non-nil error is always ctx.Err().
func (t *Tuner) RecommendCtx(ctx context.Context, app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) (Recommendation, error) {
	start := time.Now()
	t.mu.RLock()
	defer t.mu.RUnlock()
	cands := t.sampleFeasible(app.Name, data, env, t.NumCandidates)
	return t.recommendFrom(ctx, app, data, env, cands, start)
}

// RecommendFrom ranks a caller-supplied candidate set (used by experiments
// that compare sampling strategies).
func (t *Tuner) RecommendFrom(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment, cands []sparksim.Config) Recommendation {
	rec, _ := t.RecommendFromCtx(context.Background(), app, data, env, cands)
	return rec
}

// RecommendFromCtx is RecommendFrom with cooperative cancellation; a
// non-nil error is always ctx.Err().
func (t *Tuner) RecommendFromCtx(ctx context.Context, app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment, cands []sparksim.Config) (Recommendation, error) {
	start := time.Now()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.recommendFrom(ctx, app, data, env, cands, start)
}

// recommendFrom scores a candidate set and ranks it best-first. Scoring
// fans out across the scoring pool (see pool.go): each worker writes its
// result into the candidate's index slot, and the final stable sort
// breaks prediction ties by candidate index — the ranking is therefore
// deterministic for a given model and candidate order, independent of
// goroutine scheduling and of the pool width. Cancelling ctx aborts the
// pass between candidates and returns ctx.Err(); partially scored slots
// are discarded. Callers must hold t.mu (read); start is when the caller
// began the request, so Overhead covers sampling plus scoring.
func (t *Tuner) recommendFrom(ctx context.Context, app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment, cands []sparksim.Config, start time.Time) (Recommendation, error) {
	if len(cands) == 0 {
		// Degenerate candidate set: fall back to the safe default rather
		// than indexing into an empty ranking.
		cfg := ForceFeasible(sparksim.DefaultConfig(), env)
		return Recommendation{
			Config:           cfg,
			PredictedSeconds: t.Model.PredictApp(app, data, env, cfg),
			Overhead:         time.Since(start),
		}, nil
	}
	// One scorer per recommendation: the shared (app, data, env) stage
	// features are encoded AND forward-passed once, not once per candidate.
	// Scoring runs through the batched one-GEMM kernel (batch.go), chunked
	// across the scoring pool.
	scorer := t.newScorer(app, data, env)
	preds := make([]float64, len(cands))
	if err := scorer.ScoreBatchCtx(ctx, cands, preds, nil); err != nil {
		return Recommendation{}, err
	}
	scored := make([]ScoredConfig, len(cands))
	for i, c := range cands {
		scored[i] = ScoredConfig{Config: c, Predicted: preds[i]}
	}
	sort.SliceStable(scored, func(a, b int) bool { return scored[a].Predicted < scored[b].Predicted })
	return Recommendation{
		Config:           scored[0].Config,
		PredictedSeconds: scored[0].Predicted,
		Ranked:           scored,
		Overhead:         time.Since(start),
	}, nil
}

// Tier identifies which degradation level produced a safe recommendation.
type Tier string

// The graceful-degradation chain, best first.
const (
	// TierNECS is the full pipeline: NECS ranking over ACG candidates.
	TierNECS Tier = "necs"
	// TierRetrieval serves the nearest historical application's best-known
	// configuration, adapted to the caller's datasize and forced feasible
	// for its environment — zero model forwards, zero simulator executions.
	TierRetrieval Tier = "retrieval"
	// TierACGRegion skips the estimator and recommends the center of the
	// ACG region of interest (the RFR point prediction).
	TierACGRegion Tier = "acg-region"
	// TierSafeDefault is Spark's default configuration forced feasible.
	TierSafeDefault Tier = "safe-default"
)

// ErrNoFeasibleConfig is returned when even the default configuration
// cannot be allocated on the environment.
var ErrNoFeasibleConfig = errors.New("core: no feasible configuration for environment")

// SafeRecommendation is a Recommendation annotated with the degradation
// tier that produced it and the reasons higher tiers were skipped.
type SafeRecommendation struct {
	Recommendation
	// Tier is always non-empty on a nil-error return.
	Tier Tier
	// Notes records, in order, why each higher tier was bypassed.
	Notes []string
}

// RecommendSafe is Recommend with a graceful-degradation chain for serving:
//
//	NECS ranking  →  retrieval neighbour  →  ACG region best  →  feasible safe default
//
// It never panics (each tier recovers internally and demotes), screens out
// candidates the static Feasible check or the estimator's predicted-failure
// screening rejects, and reports which tier produced the answer. An error
// is returned only when not even the default configuration fits the
// environment.
func (t *Tuner) RecommendSafe(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) (SafeRecommendation, error) {
	return t.RecommendSafeCtx(context.Background(), app, data, env)
}

// RecommendSafeCtx is RecommendSafe with cooperative cancellation. A
// cancelled context aborts the NECS scoring pass between candidates and
// returns ctx.Err() immediately — cancellation is a caller decision, not a
// model failure, so it never demotes the request down the degradation
// chain. A pass that completes before the cancellation lands still returns
// its recommendation.
func (t *Tuner) RecommendSafeCtx(ctx context.Context, app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) (SafeRecommendation, error) {
	start := time.Now()
	sr := SafeRecommendation{}
	// A hand-assembled or deserialized tuner may lack an RNG; serving must
	// not crash over it (ensureRNG is race-safe).
	t.ensureRNG()
	t.mu.RLock()
	defer t.mu.RUnlock()

	if rec, note := t.tryNECSTier(ctx, app, data, env, start); note == "" {
		sr.Recommendation = rec
		sr.Tier = TierNECS
		return sr, nil
	} else {
		// An aborted scoring pass surfaces as a failed tier; distinguish
		// "the model could not answer" (degrade) from "the caller gave up"
		// (abort the whole chain).
		if err := ctx.Err(); err != nil {
			return sr, err
		}
		sr.Notes = append(sr.Notes, "necs: "+note)
	}

	if cfg, note := t.tryRetrievalTierApp(app, data, env); note == "" {
		sr.Config = cfg
		sr.PredictedSeconds = math.NaN() // neighbour's seconds are not this app's
		sr.Tier = TierRetrieval
		sr.Overhead = time.Since(start)
		return sr, nil
	} else {
		sr.Notes = append(sr.Notes, "retrieval: "+note)
	}

	if cfg, note := t.tryACGTier(app, data, env); note == "" {
		sr.Config = cfg
		sr.PredictedSeconds = math.NaN() // no trusted estimate at this tier
		sr.Tier = TierACGRegion
		sr.Overhead = time.Since(start)
		return sr, nil
	} else {
		sr.Notes = append(sr.Notes, "acg: "+note)
	}

	cfg := ForceFeasible(sparksim.DefaultConfig(), env)
	if !sparksim.Feasible(cfg, env) {
		return sr, ErrNoFeasibleConfig
	}
	sr.Config = cfg
	sr.PredictedSeconds = math.NaN()
	sr.Tier = TierSafeDefault
	sr.Overhead = time.Since(start)
	return sr, nil
}

// tryNECSTier runs the full pipeline under a recover guard with
// predicted-failure screening. An empty note means success; on a cancelled
// ctx the pass aborts between candidates and the note reports it (the
// caller checks ctx.Err() to tell cancellation from model failure).
func (t *Tuner) tryNECSTier(ctx context.Context, app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment, start time.Time) (rec Recommendation, note string) {
	defer func() {
		if r := recover(); r != nil {
			rec, note = Recommendation{}, fmt.Sprintf("panic: %v", r)
		}
	}()
	if t.Model == nil || t.ACG == nil {
		return rec, "model or candidate generator missing"
	}
	cands := t.sampleFeasible(app.Name, data, env, t.NumCandidates)
	scorer := t.newScorer(app, data, env)
	// Batched scoring writes into index slots; a worker panic re-raises
	// on this goroutine and is absorbed by the recover guard above, so
	// the degradation chain behaves exactly as it did serially.
	preds := make([]float64, len(cands))
	oks := make([]bool, len(cands))
	if err := scorer.ScoreBatchCtx(ctx, cands, preds, oks); err != nil {
		return rec, fmt.Sprintf("scoring aborted: %v", err)
	}
	// Filter in candidate-index order so the ranking below tie-breaks on
	// the original index, never on goroutine completion order.
	// Predicted-failure screening: a candidate that is statically
	// infeasible, that the estimator expects to hit the failure cap, or
	// that it cannot score finitely is not served.
	scored := make([]ScoredConfig, 0, len(cands))
	for i, c := range cands {
		p := preds[i]
		if !oks[i] || !sparksim.Feasible(c, env) || math.IsNaN(p) || math.IsInf(p, 0) || p >= sparksim.FailCap {
			continue
		}
		scored = append(scored, ScoredConfig{Config: c, Predicted: p})
	}
	if len(scored) == 0 {
		return rec, "no candidate survived feasibility and predicted-failure screening"
	}
	sort.SliceStable(scored, func(a, b int) bool { return scored[a].Predicted < scored[b].Predicted })
	return Recommendation{
		Config:           scored[0].Config,
		PredictedSeconds: scored[0].Predicted,
		Ranked:           scored,
		Overhead:         time.Since(start),
	}, ""
}

// tryACGTier returns the ACG region center forced feasible, guarded against
// panics from a corrupted generator. An empty note means success.
func (t *Tuner) tryACGTier(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) (cfg sparksim.Config, note string) {
	defer func() {
		if r := recover(); r != nil {
			note = fmt.Sprintf("panic: %v", r)
		}
	}()
	if t.ACG == nil {
		return cfg, "candidate generator missing"
	}
	cfg = ForceFeasible(t.ACG.PointPrediction(app.Name, data), env)
	for _, v := range cfg {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return cfg, "region center is not finite"
		}
	}
	if !sparksim.Feasible(cfg, env) {
		return cfg, "region center infeasible even after forcing"
	}
	return cfg, ""
}

// tryRetrievalTierApp embeds the application specification and delegates to
// tryRetrievalTier. The embedding is only computed when a store is attached
// — the common degraded path on a store-less tuner stays embedding-free.
func (t *Tuner) tryRetrievalTierApp(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) (cfg sparksim.Config, note string) {
	if t.Retrieval == nil {
		return cfg, "no store attached"
	}
	return t.tryRetrievalTier(retrieval.EmbedApp(app), data.SizeMB, env)
}

// tryRetrievalTier answers from the nearest historical neighbour: look up
// the most similar (embedding, size bucket, env) tuple, rescale its
// best-known config to the caller's datasize, and force it feasible for
// the caller's environment. An empty note means success. Guarded against
// panics from a corrupted store like the other tiers.
func (t *Tuner) tryRetrievalTier(emb []float64, sizeMB float64, env sparksim.Environment) (cfg sparksim.Config, note string) {
	defer func() {
		if r := recover(); r != nil {
			note = fmt.Sprintf("panic: %v", r)
		}
	}()
	if t.Retrieval == nil {
		return cfg, "no store attached"
	}
	if t.Retrieval.Len() == 0 {
		return cfg, "store empty"
	}
	res, ok := t.Retrieval.Lookup(retrieval.Query{
		Embedding: emb,
		SizeMB:    sizeMB,
		EnvFP:     retrieval.EnvFingerprint(env),
	})
	if !ok {
		return cfg, "no neighbour above similarity floor"
	}
	cfg = ForceFeasible(retrieval.Adapt(res.Config, res.SizeMB, sizeMB), env)
	for _, v := range cfg {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return cfg, "adapted neighbour config is not finite"
		}
	}
	if !sparksim.Feasible(cfg, env) {
		return cfg, "adapted neighbour config infeasible even after forcing"
	}
	return cfg, ""
}

// RecommendColdCtx serves an application absent from the workload registry
// with zero simulator executions: the caller supplies a pre-computed
// embedding (retrieval.EmbedCode over the request's code tokens and DAG
// ops) and the chain degrades retrieval → safe default — there is no NECS
// tier because the estimator has no stage features to encode for an app it
// has never instrumented.
func (t *Tuner) RecommendColdCtx(ctx context.Context, emb []float64, sizeMB float64, env sparksim.Environment) (SafeRecommendation, error) {
	start := time.Now()
	sr := SafeRecommendation{}
	if err := ctx.Err(); err != nil {
		return sr, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	if cfg, note := t.tryRetrievalTier(emb, sizeMB, env); note == "" {
		sr.Config = cfg
		sr.PredictedSeconds = math.NaN()
		sr.Tier = TierRetrieval
		sr.Overhead = time.Since(start)
		return sr, nil
	} else {
		sr.Notes = append(sr.Notes, "retrieval: "+note)
	}

	cfg := ForceFeasible(sparksim.DefaultConfig(), env)
	if !sparksim.Feasible(cfg, env) {
		return sr, ErrNoFeasibleConfig
	}
	sr.Config = cfg
	sr.PredictedSeconds = math.NaN()
	sr.Tier = TierSafeDefault
	sr.Overhead = time.Since(start)
	return sr, nil
}

// RetrievalAnchor returns the nearest historical neighbour's configuration
// adapted and forced feasible for (app, data, env) — a warm-start anchor
// for online tuning sessions — and whether one was found. It never panics
// and never degrades; a miss simply reports false.
func (t *Tuner) RetrievalAnchor(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment) (sparksim.Config, bool) {
	cfg, note := t.tryRetrievalTierApp(app, data, env)
	return cfg, note == ""
}

// CollectFeedback records the outcome of executing a recommendation in the
// "real production system" (online Step 4). When UpdateBatch feedbacks have
// accumulated, it runs Adaptive Model Update against a sample of the source
// domain and clears the feedback buffer. sourceSample should be drawn from
// the training instances. Returns true if an update was performed.
func (t *Tuner) CollectFeedback(run instrument.AppInstance, sourceSample []*Encoded) bool {
	t.ensureRNG()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range run.Stages {
		t.Feedback = append(t.Feedback, t.Model.Encoder.Encode(&run.Stages[i]))
	}
	if t.UpdateBatch <= 0 || len(t.Feedback) < t.UpdateBatch {
		return false
	}
	t.rngMu.Lock()
	AdaptiveModelUpdate(t.Model, sourceSample, t.Feedback, t.AMU, t.rng)
	t.rngMu.Unlock()
	if t.f32 != nil {
		// The update mutated the weights in place; recompile the serving
		// plan under the same write lock so no reader sees a stale plan.
		t.f32 = t.Model.CompileF32()
	}
	t.Feedback = t.Feedback[:0]
	return true
}

// EncodeRun encodes the stage instances of one executed run with the
// tuner's encoder without touching the feedback buffer — the serving layer
// queues feedback itself and folds it into a clone off the hot path.
func (t *Tuner) EncodeRun(run instrument.AppInstance) []*Encoded {
	out := make([]*Encoded, 0, len(run.Stages))
	for i := range run.Stages {
		out = append(out, t.Model.Encoder.Encode(&run.Stages[i]))
	}
	return out
}

// CloneForUpdate returns a tuner that shares the read-only ACG and encoder
// with the receiver but owns a deep copy of the NECS weights and of the
// accumulated feedback, so a background trainer can fine-tune the clone
// (AdaptiveModelUpdate mutates weights in place) while the original keeps
// serving reads, then atomically publish the clone as the new serving
// snapshot.
func (t *Tuner) CloneForUpdate(seed int64) *Tuner {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return &Tuner{
		Model:         t.Model.Clone(),
		ACG:           t.ACG,
		Retrieval:     t.Retrieval,
		NumCandidates: t.NumCandidates,
		Feedback:      append([]*Encoded(nil), t.Feedback...),
		UpdateBatch:   t.UpdateBatch,
		AMU:           t.AMU,
		rng:           rand.New(rand.NewSource(seed)),
	}
}

// ColdStartInstrument implements online Step 1 for a never-seen
// application: run it once on the smallest dataset to recover stage-level
// codes and DAGs (paper §IV Step 1 / §V-I). It returns the instrumented run
// and the instrumentation overhead in simulated seconds.
func ColdStartInstrument(app *workload.App, env sparksim.Environment) (instrument.AppInstance, float64) {
	data := app.Spec.MakeData(app.Sizes.Train[0])
	run := instrument.Run(app.Spec, data, env, sparksim.DefaultConfig())
	return run, run.Result.Seconds
}
