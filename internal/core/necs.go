// Package core implements the paper's contribution: the NECS performance
// estimator (Neural Estimator via Code and Scheduler representation,
// §III), Adaptive Candidate Generation (§IV-A), Adaptive Model Update via
// adversarial learning (§IV-B), and the LITE online recommender that ties
// them together (§IV).
package core

import (
	"math"
	"math/rand"
	"sync"

	"lite/internal/feature"
	"lite/internal/instrument"
	"lite/internal/nn"
	"lite/internal/sparksim"
	"lite/internal/tensor"
)

// NECSConfig sets the model hyperparameters. Defaults are tuned so a full
// training run completes in seconds on the simulator datasets while keeping
// the architecture of Figure 3: token embeddings → CNN banks → max-pool;
// one-hot DAG nodes → GCN → max-pool; concat with o_i, d_i, e_i → tower MLP.
type NECSConfig struct {
	// TokenLen is N, the maximal number of tokens per stage (padded).
	TokenLen int
	// EmbDim is D, the token-embedding width.
	EmbDim int
	// Kernels are the CNN kernel widths; FiltersPerKernel the bank size.
	Kernels          []int
	FiltersPerKernel int
	// CodeDim is the width of the projected code representation h_code.
	CodeDim int
	// GCNHidden are the GCN layer widths after the one-hot input layer.
	GCNHidden []int
	// TowerFirst is the first tower-MLP hidden width; widths halve down to
	// TowerMin, then a single output unit (paper §III-F).
	TowerFirst int
	TowerMin   int

	// Epochs / BatchSize / LR control offline training (Equation 4).
	Epochs    int
	BatchSize int
	LR        float64

	// DisableOOV removes the out-of-vocabulary token from both the code
	// vocabulary and the DAG node vocabulary — the "Cold-UNK" ablation of
	// Table XI. Unseen code tokens are dropped and unseen operations
	// collapse onto an arbitrary known column.
	DisableOOV bool

	// FitWorkers selects data-parallel training: Fit shards each group of
	// K consecutive mini-batches across K model replicas and applies the
	// averaged gradients to the primary. 0 keeps the historical serial
	// loop; 1 routes through the parallel engine with a single replica,
	// which is bit-identical to serial (see TestFitParallelK1Golden);
	// K > 1 is statistically equivalent but not bit-identical (one
	// optimizer step per K batches instead of per batch).
	FitWorkers int

	// CensoredWeight multiplies the training weight of FailCap-censored
	// instances (runs that failed or exceeded the two-hour cap, whose
	// label is the cap rather than a true measurement). 0 or 1 leaves them at
	// full weight — the pre-robustness behavior; fault experiments use
	// values below 1 so censored labels cannot dominate the regression.
	CensoredWeight float64
}

// DefaultNECSConfig returns the configuration used by the experiments.
func DefaultNECSConfig() NECSConfig {
	return NECSConfig{
		TokenLen:         96,
		EmbDim:           16,
		Kernels:          []int{2, 3, 4},
		FiltersPerKernel: 8,
		CodeDim:          16,
		GCNHidden:        []int{32, 16},
		TowerFirst:       64,
		TowerMin:         16,
		Epochs:           8,
		BatchSize:        16,
		LR:               1e-3,
	}
}

// Encoded is a feature-encoded stage instance ready for NECS: the paper's
// six-tuple with C_i as token ids, G_i as (node features, normalized
// adjacency), and o_i/d_i/e_i flattened into Dense.
type Encoded struct {
	AppName    string
	StageIndex int
	TokenIDs   []int
	NodeFeats  *tensor.Tensor
	AHat       *tensor.Tensor
	Dense      []float64
	// Y is the training label in log space: log1p(stage seconds).
	Y float64
	// Weight counts how many raw stage instances this encoded instance
	// represents (iterated stages of one run share identical features, so
	// the dataset builder deduplicates them into one weighted instance).
	Weight float64
	// Censored marks instances whose label is the FailCap ceiling (the
	// source run failed); Fit can down-weight them via CensoredWeight.
	Censored bool
}

// LabelOf converts stage seconds to the regression label. Non-finite or
// negative inputs (which a faulty measurement pipeline can produce) are
// coerced to the failure cap so one bad sample cannot inject NaN into the
// training objective; finite non-negative seconds map exactly as before.
func LabelOf(seconds float64) float64 {
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		seconds = sparksim.FailCap
	} else if seconds < 0 {
		seconds = 0
	}
	return math.Log1p(seconds)
}

// SecondsOf inverts LabelOf. A NaN label yields NaN — callers that must be
// NaN-safe (PredictSeconds) clamp the result.
func SecondsOf(label float64) float64 { return math.Expm1(label) }

// Encoder caches per-stage encodings (token ids, DAG matrices) so repeated
// instances of the same stage are cheap. Encode is safe for concurrent use:
// the caches are guarded by a mutex, and the cached tensors themselves are
// only ever read after insertion.
type Encoder struct {
	Vocab   *feature.Vocab
	OpVocab *feature.OpVocab
	cfg     NECSConfig

	mu        sync.Mutex
	tokCache  map[string][]int
	dagCache  map[string]*dagEnc
	dagByKey  func(ops []string, edges [][2]int) string
	denseOnly bool
}

type dagEnc struct {
	nodes *tensor.Tensor
	aHat  *tensor.Tensor
}

// NewEncoder builds an encoder over the training corpus: the vocabulary is
// learned from the training instances' stage codes, the op vocabulary from
// their DAG node labels (paper: S = number of atomic operations in the
// training set, plus the oov token).
func NewEncoder(train []instrument.StageInstance, cfg NECSConfig) *Encoder {
	corpus := make([]string, 0, len(train))
	for i := range train {
		corpus = append(corpus, train[i].Code)
	}
	vocab := feature.BuildVocab(corpus, 1)
	opVocab := feature.BuildOpVocab(train)
	if cfg.DisableOOV {
		vocab.UseOOV = false
		opVocab.UseOOV = false
	}
	return NewEncoderFromVocabs(vocab, opVocab, cfg)
}

// stageStatic returns the cached candidate-invariant encoding of a stage
// — its token ids and DAG matrices — computing and memoizing them on
// first sight. Safe for concurrent use; the returned slices and tensors
// are only ever read after insertion.
func (e *Encoder) stageStatic(code string, ops []string, edges [][2]int) ([]int, *dagEnc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	toks, ok := e.tokCache[code]
	if !ok {
		toks = e.Vocab.Encode(code, e.cfg.TokenLen)
		e.tokCache[code] = toks
	}
	key := e.dagByKey(ops, edges)
	dag, ok := e.dagCache[key]
	if !ok {
		dag = &dagEnc{
			nodes: e.OpVocab.NodeFeatures(ops),
			aHat:  nn.NormalizeAdjacency(len(ops), edges),
		}
		e.dagCache[key] = dag
	}
	return toks, dag
}

// Encode converts a stage instance into model input. It is safe to call
// from concurrent goroutines (the serving hot path encodes while a
// background update loop encodes feedback against the same encoder).
func (e *Encoder) Encode(inst *instrument.StageInstance) *Encoded {
	toks, dag := e.stageStatic(inst.Code, inst.Ops, inst.Edges)
	return &Encoded{
		AppName:    inst.AppName,
		StageIndex: inst.StageIndex,
		TokenIDs:   toks,
		NodeFeats:  dag.nodes,
		AHat:       dag.aHat,
		Dense:      feature.DenseFeatures(inst),
		Y:          LabelOf(inst.Seconds),
		Weight:     1,
		Censored:   inst.Failed,
	}
}

// NECS is the neural estimator of Figure 3. Prediction methods
// (PredictSeconds, PredictApp, NewAppScorer) only read the weights and are
// safe for concurrent use with each other; Fit and AdaptiveModelUpdate
// mutate the weights in place and must not overlap with readers — serving
// layers train on a Clone and hot-swap (see internal/serve).
type NECS struct {
	Cfg     NECSConfig
	Encoder *Encoder

	Code  *nn.CNNEncoder
	DAG   *nn.GCNEncoder
	Tower *nn.MLP
}

// NewNECS constructs the model for the given encoder.
func NewNECS(enc *Encoder, cfg NECSConfig, rng *rand.Rand) *NECS {
	gcnWidths := append([]int{enc.OpVocab.Width()}, cfg.GCNHidden...)
	towerIn := feature.DenseWidth + cfg.CodeDim + cfg.GCNHidden[len(cfg.GCNHidden)-1]
	return &NECS{
		Cfg:     cfg,
		Encoder: enc,
		Code:    nn.NewCNNEncoder(enc.Vocab.Size(), cfg.EmbDim, cfg.Kernels, cfg.FiltersPerKernel, cfg.CodeDim, rng),
		DAG:     nn.NewGCNEncoder(gcnWidths, rng),
		Tower:   nn.NewMLP(nn.TowerWidths(towerIn, cfg.TowerFirst, cfg.TowerMin), rng, "tower"),
	}
}

// Clone returns a deep copy of the model (shared encoder, copied weights),
// so experiments can fine-tune a snapshot without disturbing the original.
func (m *NECS) Clone() *NECS {
	// Reconstruct with a throwaway RNG, then overwrite every weight.
	c := NewNECS(m.Encoder, m.Cfg, rand.New(rand.NewSource(0)))
	src := m.Params()
	dst := c.Params()
	for i := range src {
		copy(dst[i].Value.Data, src[i].Value.Data)
	}
	return c
}

// Params returns all trainable parameters.
func (m *NECS) Params() []*nn.Node {
	ps := m.Code.Params()
	ps = append(ps, m.DAG.Params()...)
	ps = append(ps, m.Tower.Params()...)
	return ps
}

// Forward computes the prediction node for one encoded instance, returning
// the output and the tower's hidden activations (used by Adaptive Model
// Update's discriminator).
func (m *NECS) Forward(x *Encoded) (*nn.Node, []*nn.Node) {
	hCode := m.Code.Forward(x.TokenIDs)
	hDAG := m.DAG.Forward(nn.NewConst(x.AHat), nn.NewConst(x.NodeFeats))
	in := nn.Concat(nn.NewConst(tensor.FromRow(x.Dense)), hCode, hDAG)
	return m.Tower.ForwardHidden(in)
}

// Predict returns the predicted stage label (log space).
func (m *NECS) Predict(x *Encoded) float64 {
	out, _ := m.Forward(x)
	return out.Scalar()
}

// maxPredictSeconds caps what the regressor may claim: far beyond any real
// execution time, but finite, so downstream ranking arithmetic (sums,
// sorts, ETR) never sees ±Inf or NaN.
const maxPredictSeconds = 1e12

// PredictSeconds returns the predicted stage time in seconds, clamped into
// [0, maxPredictSeconds]. A NaN prediction (a corrupted or diverged model)
// maps to the upper clamp: an un-rankable candidate is treated as the worst
// possible one instead of poisoning every comparison it appears in.
func (m *NECS) PredictSeconds(x *Encoded) float64 {
	s, _ := m.PredictSecondsChecked(x)
	return s
}

// PredictSecondsChecked is PredictSeconds plus a finiteness report: ok is
// false when the raw (pre-clamp) prediction was NaN or ±Inf. The clamp
// keeps ranking arithmetic safe, but it also makes a corrupted model look
// healthy — every candidate pinned to the same ceiling; guards that must
// distinguish "worst-ranked" from "cannot rank at all" (the serve layer's
// hot-swap validation gate) check ok instead of the clamped value.
func (m *NECS) PredictSecondsChecked(x *Encoded) (float64, bool) {
	return secondsChecked(m.Predict(x))
}

// secondsChecked converts a raw log-space prediction into clamped seconds
// plus the pre-clamp finiteness report. It is the single conversion both
// the autograd path (PredictSecondsChecked) and the batched inference
// kernel (batch.go) share, so the two cannot drift.
func secondsChecked(raw float64) (float64, bool) {
	s := SecondsOf(raw)
	ok := !math.IsNaN(raw) && !math.IsInf(raw, 0) && !math.IsNaN(s) && !math.IsInf(s, 0)
	switch {
	case math.IsNaN(s):
		return maxPredictSeconds, ok
	case s < 0:
		return 0, ok
	case s > maxPredictSeconds:
		return maxPredictSeconds, ok
	}
	return s, ok
}

// trainWeight is the instance's effective weight under censoring: FailCap-
// censored labels can be down-weighted via CensoredWeight (0 and 1 both
// mean "no down-weighting", preserving the pre-robustness arithmetic).
func (m *NECS) trainWeight(x *Encoded) float64 {
	if x.Censored && m.Cfg.CensoredWeight > 0 {
		return x.Weight * m.Cfg.CensoredWeight
	}
	return x.Weight
}

// snapshotParams copies every parameter tensor (rollback support).
func (m *NECS) snapshotParams() [][]float64 {
	ps := m.Params()
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.Value.Data...)
	}
	return out
}

// restoreParams writes a snapshot back into the model.
func (m *NECS) restoreParams(snap [][]float64) {
	for i, p := range m.Params() {
		copy(p.Value.Data, snap[i])
	}
}

// paramsFinite reports whether every weight is a finite number.
func (m *NECS) paramsFinite() bool {
	for _, p := range m.Params() {
		for _, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// gradsFinite reports whether every accumulated gradient is finite.
func gradsFinite(params []*nn.Node) bool {
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				return false
			}
		}
	}
	return true
}

// Fit trains the model with Adam on the weighted squared error of
// Equation 4. It reports the mean training loss of the final epoch.
//
// Training is poisoning-resistant: a batch whose loss or gradients are
// non-finite (a NaN label, a diverged forward pass) is skipped instead of
// stepped, and the weights roll back to the best finite epoch snapshot
// whenever an epoch ends non-finite — a single poisoned sample can never
// destroy the model. On clean data the arithmetic is unchanged.
//
// With Cfg.FitWorkers = K >= 1 the mini-batch loop runs data-parallel:
// K replicas each process one batch of every K-batch group concurrently
// and the averaged gradients step the primary (see fitpar.go). K = 1 is
// bit-identical to the serial loop; K > 1 is statistically equivalent.
// Fit itself must not be called concurrently with anything that reads or
// writes this model's weights.
func (m *NECS) Fit(data []*Encoded, rng *rand.Rand) float64 {
	if m.Cfg.FitWorkers >= 1 {
		return m.fitDataParallel(data, rng, m.Cfg.FitWorkers)
	}
	return m.fitSerial(data, rng)
}

// fitSerial is the historical single-goroutine training loop, kept
// verbatim as the FitWorkers = 0 path and as the golden reference the
// K = 1 parallel path is tested against.
func (m *NECS) fitSerial(data []*Encoded, rng *rand.Rand) float64 {
	params := m.Params()
	opt := nn.NewAdam(params, m.Cfg.LR)
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	bestLoss := math.Inf(1)
	var bestSnap [][]float64
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		// Step learning-rate decay: ÷2 at 60% and 85% of the schedule.
		switch {
		case epoch == m.Cfg.Epochs*85/100:
			opt.LR = m.Cfg.LR / 4
		case epoch == m.Cfg.Epochs*60/100:
			opt.LR = m.Cfg.LR / 2
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss, epochWeight float64
		for start := 0; start < len(idx); start += m.Cfg.BatchSize {
			end := start + m.Cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			opt.ZeroGrad()
			var batchWeight float64
			for _, i := range idx[start:end] {
				batchWeight += m.trainWeight(data[i])
			}
			if batchWeight <= 0 {
				continue // every instance censored away
			}
			batchOK := true
			for _, i := range idx[start:end] {
				x := data[i]
				w := m.trainWeight(x)
				out, _ := m.Forward(x)
				loss := nn.Scale(nn.MSELoss(out, x.Y), w/batchWeight)
				lv := loss.Scalar()
				if math.IsNaN(lv) || math.IsInf(lv, 0) {
					batchOK = false
					break
				}
				nn.Backward(loss)
				epochLoss += lv * batchWeight
				epochWeight += w
			}
			if !batchOK || !gradsFinite(params) {
				// Poisoned batch: drop its gradients, keep the weights.
				opt.ZeroGrad()
				continue
			}
			nn.ClipGrads(params, 5)
			opt.Step()
		}
		if epochWeight > 0 {
			lastLoss = epochLoss / epochWeight
		}
		finite := !math.IsNaN(lastLoss) && !math.IsInf(lastLoss, 0) && m.paramsFinite()
		if finite && lastLoss < bestLoss {
			bestLoss = lastLoss
			bestSnap = m.snapshotParams()
		} else if !finite && bestSnap != nil {
			// The epoch diverged anyway (e.g. weights went non-finite
			// between checks): roll back to the best known state.
			m.restoreParams(bestSnap)
			lastLoss = bestLoss
		}
	}
	if !m.paramsFinite() && bestSnap != nil {
		m.restoreParams(bestSnap)
		lastLoss = bestLoss
	}
	return lastLoss
}

// PredictApp estimates the total execution time (seconds) of an application
// under cfg on the given data and environment by summing stage-level
// predictions over the expanded stage plan (Equation 5's aggregation).
// Safe for concurrent use while no goroutine mutates the weights; callers
// scoring many configurations for one (app, data, env) should build one
// NewAppScorer and share it instead.
func (m *NECS) PredictApp(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment, cfg sparksim.Config) float64 {
	return m.NewAppScorer(app, data, env).Score(cfg)
}
