package core

import (
	"fmt"
	"math/rand"

	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// Dataset bundles raw application runs with their stage-level instances.
type Dataset struct {
	Apps      []*workload.App
	Runs      []instrument.AppInstance
	Instances []instrument.StageInstance
}

// CollectOptions controls offline training-data collection (paper §II:
// "repeatedly sampling knob values and running applications ... on small
// datasets").
type CollectOptions struct {
	// ConfigsPerInstance is how many sampled configurations each
	// (application, datasize, cluster) instance is executed with.
	ConfigsPerInstance int
	// Clusters to collect on (default: all three).
	Clusters []sparksim.Environment
	// IncludeDefault adds the default configuration to every sample set.
	IncludeDefault bool
	// Sizes selects which of the four training sizes to use (nil = all).
	Sizes []int
}

// DefaultCollectOptions matches the experiments' standard collection.
func DefaultCollectOptions() CollectOptions {
	return CollectOptions{
		ConfigsPerInstance: 8,
		Clusters:           sparksim.AllClusters,
		IncludeDefault:     true,
	}
}

// Collect gathers the offline training set for the given applications by
// running each on its small training datasizes under sampled
// configurations, then segmenting runs into stage-level instances.
func Collect(apps []*workload.App, opts CollectOptions, rng *rand.Rand) *Dataset {
	ds := &Dataset{Apps: apps}
	sizeIdx := opts.Sizes
	for _, app := range apps {
		if sizeIdx == nil {
			sizeIdx = []int{0, 1, 2, 3}
		}
		for _, si := range sizeIdx {
			size := app.Sizes.Train[si]
			data := app.Spec.MakeData(size)
			for _, env := range opts.Clusters {
				cfgs := make([]sparksim.Config, 0, opts.ConfigsPerInstance+1)
				if opts.IncludeDefault {
					cfgs = append(cfgs, sparksim.DefaultConfig())
				}
				for len(cfgs) < opts.ConfigsPerInstance {
					cfgs = append(cfgs, sparksim.RandomConfig(rng))
				}
				for _, cfg := range cfgs {
					run := instrument.Run(app.Spec, data, env, cfg)
					ds.Runs = append(ds.Runs, run)
					ds.Instances = append(ds.Instances, run.Stages...)
				}
			}
		}
	}
	return ds
}

// EncodeAll deduplicates and encodes the dataset's stage instances.
// Iterated stages within one run share identical inputs and nearly
// identical labels, so they collapse into one weighted instance with the
// mean label — the training objective is unchanged but epochs are ~4–10×
// cheaper. The raw (pre-dedup) counts remain available via the Dataset for
// the Figure 9 augmentation statistics.
func EncodeAll(enc *Encoder, instances []instrument.StageInstance) []*Encoded {
	type agg struct {
		enc   *Encoded
		sumY  float64
		count float64
	}
	byKey := map[string]*agg{}
	var order []string
	for i := range instances {
		inst := &instances[i]
		key := fmt.Sprintf("%s|%d|%s|%.0f|%d|%d", inst.AppName, inst.StageIndex, inst.Env.Name,
			inst.Data.SizeMB, inst.Data.Iterations, cfgKey(inst.Config))
		a, ok := byKey[key]
		if !ok {
			a = &agg{enc: enc.Encode(inst)}
			byKey[key] = a
			order = append(order, key)
		}
		a.sumY += LabelOf(inst.Seconds)
		a.count++
	}
	out := make([]*Encoded, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		a.enc.Y = a.sumY / a.count
		a.enc.Weight = a.count
		out = append(out, a.enc)
	}
	return out
}

// cfgKey quantizes a configuration into a hashable identity.
func cfgKey(c sparksim.Config) int {
	h := 0
	for i, v := range c {
		h = h*31 + int(v*100) + i
	}
	return h
}

// SplitByApp partitions encoded instances into those belonging to the named
// applications and the rest — used by the cold-start experiments
// (leave-one-application-out, §V-G).
func SplitByApp(data []*Encoded, exclude map[string]bool) (kept, removed []*Encoded) {
	for _, d := range data {
		if exclude[d.AppName] {
			removed = append(removed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, removed
}
