package core

import (
	"fmt"
	"math/rand"
	"sort"

	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// Dataset bundles raw application runs with their stage-level instances.
type Dataset struct {
	Apps      []*workload.App
	Runs      []instrument.AppInstance
	Instances []instrument.StageInstance
	// Stats accounts for the robustness machinery's extra work (repeat
	// runs on flaky environments, retries of failed runs, censored labels).
	Stats CollectStats
}

// CollectStats summarizes what robust collection did beyond the happy path.
type CollectStats struct {
	// Runs is the number of (app, size, cluster, config) instances kept.
	Runs int
	// RepeatRuns counts the extra executions performed because the
	// environment injects faults and Repeats > 1.
	RepeatRuns int
	// Retries counts re-executions of failed runs (FlakyRetries).
	Retries int
	// RetrySeconds is the simulated time burned by failed attempts that
	// were retried — the backoff-equivalent cost the collection paid.
	RetrySeconds float64
	// Censored counts kept runs whose label is the FailCap ceiling (the
	// run failed or exceeded two hours even after retries); their stage
	// instances carry Failed=true so NECS.Fit can down-weight them.
	Censored int
}

// CollectOptions controls offline training-data collection (paper §II:
// "repeatedly sampling knob values and running applications ... on small
// datasets").
type CollectOptions struct {
	// ConfigsPerInstance is how many sampled configurations each
	// (application, datasize, cluster) instance is executed with.
	ConfigsPerInstance int
	// Clusters to collect on (default: all three).
	Clusters []sparksim.Environment
	// IncludeDefault adds the default configuration to every sample set.
	IncludeDefault bool
	// Sizes selects which of the four training sizes to use (nil = all).
	Sizes []int

	// Repeats executes each (app, size, cluster, config) instance this many
	// times when the cluster injects faults, keeping the run with the
	// median execution time as the label (repeat runs draw decorrelated
	// fault seeds deterministically). Values below 2 — and fault-free
	// environments — collect exactly one run, the pre-robustness behavior.
	Repeats int
	// FlakyRetries re-executes a failed run up to this many extra times
	// with fresh fault seeds before accepting the failure as the label.
	// The failed attempts' simulated seconds accumulate in
	// Dataset.Stats.RetrySeconds (deterministic backoff-equivalent cost
	// accounting). Zero disables retrying.
	FlakyRetries int
}

// DefaultCollectOptions matches the experiments' standard collection.
func DefaultCollectOptions() CollectOptions {
	return CollectOptions{
		ConfigsPerInstance: 8,
		Clusters:           sparksim.AllClusters,
		IncludeDefault:     true,
	}
}

// Collect gathers the offline training set for the given applications by
// running each on its small training datasizes under sampled
// configurations, then segmenting runs into stage-level instances.
func Collect(apps []*workload.App, opts CollectOptions, rng *rand.Rand) *Dataset {
	ds := &Dataset{Apps: apps}
	sizeIdx := opts.Sizes
	for _, app := range apps {
		if sizeIdx == nil {
			sizeIdx = []int{0, 1, 2, 3}
		}
		for _, si := range sizeIdx {
			size := app.Sizes.Train[si]
			data := app.Spec.MakeData(size)
			for _, env := range opts.Clusters {
				cfgs := make([]sparksim.Config, 0, opts.ConfigsPerInstance+1)
				if opts.IncludeDefault {
					cfgs = append(cfgs, sparksim.DefaultConfig())
				}
				for len(cfgs) < opts.ConfigsPerInstance {
					cfgs = append(cfgs, sparksim.RandomConfig(rng))
				}
				for _, cfg := range cfgs {
					run := collectRun(app.Spec, data, env, cfg, opts, &ds.Stats)
					ds.Runs = append(ds.Runs, run)
					ds.Instances = append(ds.Instances, run.Stages...)
				}
			}
		}
	}
	return ds
}

// collectRun executes one training instance robustly. On fault-free
// environments (or with Repeats/FlakyRetries unset) it is exactly one
// Simulate call — the original collection path. On fault-injecting
// environments it retries failed runs with fresh fault seeds (capped,
// cost-accounted) and repeats flaky instances, labeling with the median-time
// run so one unlucky straggler cannot poison the label.
func collectRun(app *sparksim.AppSpec, data sparksim.DataSpec, env sparksim.Environment, cfg sparksim.Config, opts CollectOptions, stats *CollectStats) instrument.AppInstance {
	stats.Runs++
	if !env.Faults.Active() || (opts.Repeats < 2 && opts.FlakyRetries < 1) {
		run := instrument.Run(app, data, env, cfg)
		if run.Result.Failed {
			stats.Censored++
		}
		return run
	}

	repeats := opts.Repeats
	if repeats < 1 {
		repeats = 1
	}
	runs := make([]instrument.AppInstance, 0, repeats)
	for r := 0; r < repeats; r++ {
		// Decorrelate the repeat's faults deterministically; large odd
		// strides keep repeat and retry seed streams disjoint.
		e := env.WithFaults(env.Faults.Reseeded(int64(r) * 1_000_003))
		run := instrument.Run(app, data, e, cfg)
		for a := 1; run.Result.Failed && a <= opts.FlakyRetries; a++ {
			stats.Retries++
			stats.RetrySeconds += run.Result.Seconds
			e = env.WithFaults(env.Faults.Reseeded(int64(r)*1_000_003 + int64(a)*7919))
			run = instrument.Run(app, data, e, cfg)
		}
		runs = append(runs, run)
		stats.RepeatRuns++
	}
	stats.RepeatRuns-- // the kept run is not "extra"

	// Keep the run with the median total time (ties break toward the
	// earlier repeat, so selection is deterministic).
	order := make([]int, len(runs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return runs[order[a]].Result.Seconds < runs[order[b]].Result.Seconds
	})
	kept := runs[order[len(order)/2]]
	if kept.Result.Failed {
		stats.Censored++
	}
	return kept
}

// EncodeAll deduplicates and encodes the dataset's stage instances.
// Iterated stages within one run share identical inputs and nearly
// identical labels, so they collapse into one weighted instance with the
// mean label — the training objective is unchanged but epochs are ~4–10×
// cheaper. The raw (pre-dedup) counts remain available via the Dataset for
// the Figure 9 augmentation statistics.
func EncodeAll(enc *Encoder, instances []instrument.StageInstance) []*Encoded {
	type agg struct {
		enc      *Encoded
		sumY     float64
		count    float64
		censored bool
	}
	byKey := map[string]*agg{}
	var order []string
	for i := range instances {
		inst := &instances[i]
		key := fmt.Sprintf("%s|%d|%s|%.0f|%d|%d", inst.AppName, inst.StageIndex, inst.Env.Name,
			inst.Data.SizeMB, inst.Data.Iterations, cfgKey(inst.Config))
		a, ok := byKey[key]
		if !ok {
			a = &agg{enc: enc.Encode(inst)}
			byKey[key] = a
			order = append(order, key)
		}
		a.sumY += LabelOf(inst.Seconds)
		a.count++
		a.censored = a.censored || inst.Failed
	}
	out := make([]*Encoded, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		a.enc.Y = a.sumY / a.count
		a.enc.Weight = a.count
		a.enc.Censored = a.censored
		out = append(out, a.enc)
	}
	return out
}

// cfgKey quantizes a configuration into a hashable identity.
func cfgKey(c sparksim.Config) int {
	h := 0
	for i, v := range c {
		h = h*31 + int(v*100) + i
	}
	return h
}

// SplitByApp partitions encoded instances into those belonging to the named
// applications and the rest — used by the cold-start experiments
// (leave-one-application-out, §V-G).
func SplitByApp(data []*Encoded, exclude map[string]bool) (kept, removed []*Encoded) {
	for _, d := range data {
		if exclude[d.AppName] {
			removed = append(removed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, removed
}
