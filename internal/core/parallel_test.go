package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// --- pool primitives -------------------------------------------------------

func TestSetScoreWorkersAndStats(t *testing.T) {
	defer SetScoreWorkers(0)

	SetScoreWorkers(4)
	if got := ScoreWorkers(); got != 4 {
		t.Fatalf("ScoreWorkers() = %d, want 4", got)
	}
	st := ScorePoolStats()
	if st.Workers != 4 || st.Busy != 0 {
		t.Fatalf("idle stats = %+v", st)
	}

	SetScoreWorkers(1)
	st = ScorePoolStats()
	if st.Workers != 1 || st.Utilization != 0 {
		t.Fatalf("serial stats = %+v", st)
	}

	SetScoreWorkers(0)
	if ScoreWorkers() < 1 {
		t.Fatalf("default pool width %d < 1", ScoreWorkers())
	}
}

func TestParallelDoCoversEveryIndexOnce(t *testing.T) {
	defer SetScoreWorkers(0)
	for _, workers := range []int{1, 2, 8} {
		SetScoreWorkers(workers)
		const n = 257
		hits := make([]int, n)
		ParallelDo(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestParallelDoCountsItems(t *testing.T) {
	defer SetScoreWorkers(0)
	SetScoreWorkers(3)
	before := ScorePoolStats().Items
	ParallelDo(10, func(int) {})
	ParallelDo(7, func(int) {})
	if got := ScorePoolStats().Items - before; got != 17 {
		t.Fatalf("Items advanced by %d, want 17", got)
	}
}

// Nested fan-out must not deadlock: inner calls degrade to inline execution
// when no helper slot is free. This mirrors the serving shape — the batcher
// fans out over keys, and each key's recommendation fans out over candidates.
func TestParallelDoNestedDoesNotDeadlock(t *testing.T) {
	defer SetScoreWorkers(0)
	SetScoreWorkers(2)
	var mu sync.Mutex
	total := 0
	ParallelDo(4, func(int) {
		ParallelDo(8, func(int) {
			mu.Lock()
			total++
			mu.Unlock()
		})
	})
	if total != 32 {
		t.Fatalf("nested work executed %d times, want 32", total)
	}
}

// A panic inside a worker must surface on the calling goroutine so callers'
// recover guards (tryNECSTier's degradation chain) keep working.
func TestParallelDoPropagatesPanic(t *testing.T) {
	defer SetScoreWorkers(0)
	SetScoreWorkers(4)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic from worker was swallowed")
		}
	}()
	ParallelDo(16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

// --- deterministic parallel ranking ---------------------------------------

func parallelTestModel(t *testing.T) (*NECS, *Dataset) {
	t.Helper()
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("KMeans")}
	ds := smallDataset(t, apps, 2, 11)
	cfg := fastConfig()
	cfg.Epochs = 2
	rng := rand.New(rand.NewSource(11))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	model.Fit(EncodeAll(enc, ds.Instances), rng)
	return model, ds
}

// TestRecommendFromParallelMatchesSerial is the regression test for ranking
// determinism: the pool width must not change Ranked — neither the scores
// nor the order, even with duplicate candidates whose predictions tie
// exactly (the stable index tie-break, not goroutine completion order,
// decides).
func TestRecommendFromParallelMatchesSerial(t *testing.T) {
	defer SetScoreWorkers(0)
	model, _ := parallelTestModel(t)
	// RecommendFrom ranks caller-supplied candidates, so no ACG is needed.
	tuner := &Tuner{Model: model, NumCandidates: 16, AMU: DefaultAMUConfig()}
	app := workload.ByName("WordCount")
	data := app.Spec.MakeData(app.Sizes.Train[0])
	env := sparksim.ClusterC

	// 20 candidates with deliberate exact duplicates to force score ties.
	rng := rand.New(rand.NewSource(3))
	var cands []sparksim.Config
	for i := 0; i < 10; i++ {
		c := ForceFeasible(sparksim.RandomConfig(rng), env)
		cands = append(cands, c, c)
	}

	SetScoreWorkers(1)
	serial := tuner.RecommendFrom(app.Spec, data, env, cands)

	for _, workers := range []int{2, 8} {
		SetScoreWorkers(workers)
		for rep := 0; rep < 3; rep++ {
			par := tuner.RecommendFrom(app.Spec, data, env, cands)
			if len(par.Ranked) != len(serial.Ranked) {
				t.Fatalf("workers=%d: ranked %d vs %d", workers, len(par.Ranked), len(serial.Ranked))
			}
			for i := range serial.Ranked {
				if par.Ranked[i].Predicted != serial.Ranked[i].Predicted {
					t.Fatalf("workers=%d rep=%d: rank %d predicted %v != serial %v",
						workers, rep, i, par.Ranked[i].Predicted, serial.Ranked[i].Predicted)
				}
				if fmt.Sprint(par.Ranked[i].Config) != fmt.Sprint(serial.Ranked[i].Config) {
					t.Fatalf("workers=%d rep=%d: rank %d config order diverged", workers, rep, i)
				}
			}
			if par.PredictedSeconds != serial.PredictedSeconds {
				t.Fatalf("workers=%d: winner %v != %v", workers, par.PredictedSeconds, serial.PredictedSeconds)
			}
		}
	}
}

// The AppScorer fast path must agree bit-for-bit with the historical
// stage-by-stage PredictApp contract at any pool width.
func TestAppScorerMatchesPredictApp(t *testing.T) {
	defer SetScoreWorkers(0)
	model, _ := parallelTestModel(t)
	app := workload.ByName("KMeans")
	data := app.Spec.MakeData(app.Sizes.Valid)
	env := sparksim.ClusterA
	rng := rand.New(rand.NewSource(17))
	scorer := model.NewAppScorer(app.Spec, data, env)
	for i := 0; i < 8; i++ {
		cfg := sparksim.RandomConfig(rng)
		if got, want := scorer.Score(cfg), model.PredictApp(app.Spec, data, env, cfg); got != want {
			t.Fatalf("Score %v != PredictApp %v", got, want)
		}
	}
}

// --- data-parallel training ----------------------------------------------

func trainTwin(t *testing.T, fitWorkers int) (*NECS, float64) {
	t.Helper()
	apps := []*workload.App{workload.ByName("WordCount"), workload.ByName("Terasort")}
	ds := smallDataset(t, apps, 3, 21)
	cfg := fastConfig()
	cfg.Epochs = 5
	cfg.FitWorkers = fitWorkers
	rng := rand.New(rand.NewSource(21))
	enc := NewEncoder(ds.Instances, cfg)
	model := NewNECS(enc, cfg, rng)
	loss := model.Fit(EncodeAll(enc, ds.Instances), rng)
	return model, loss
}

func assertParamsEqual(t *testing.T, a, b *NECS, context string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: %d vs %d params", context, len(pa), len(pb))
	}
	for i := range pa {
		for d := range pa[i].Value.Data {
			if pa[i].Value.Data[d] != pb[i].Value.Data[d] {
				t.Fatalf("%s: param %d element %d: %v != %v",
					context, i, d, pa[i].Value.Data[d], pb[i].Value.Data[d])
			}
		}
	}
}

// TestFitParallelK1Golden proves the Fit refactor changes no numbers: the
// parallel engine at K=1 must reproduce the serial path bit for bit —
// identical final loss and identical weights.
func TestFitParallelK1Golden(t *testing.T) {
	defer SetScoreWorkers(0)
	SetScoreWorkers(4) // make sure the pool being active doesn't leak in
	serial, serialLoss := trainTwin(t, 0)
	par, parLoss := trainTwin(t, 1)
	if serialLoss != parLoss {
		t.Fatalf("K=1 loss %v != serial loss %v", parLoss, serialLoss)
	}
	assertParamsEqual(t, serial, par, "K=1 vs serial")
}

// TestFitParallelK3Learns checks the statistically-equivalent regime: K=3
// must still converge to a usable model (finite loss, finite weights, loss
// in the same ballpark as serial).
func TestFitParallelK3Learns(t *testing.T) {
	defer SetScoreWorkers(0)
	SetScoreWorkers(3)
	_, serialLoss := trainTwin(t, 0)
	model, loss := trainTwin(t, 3)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("K=3 loss not finite: %v", loss)
	}
	if !model.paramsFinite() {
		t.Fatal("K=3 weights went non-finite")
	}
	if loss > 4*serialLoss+1 {
		t.Fatalf("K=3 loss %v far above serial %v", loss, serialLoss)
	}
}

// TestAMUWorkers1Golden: AdaptiveModelUpdate through the parallel engine at
// Workers=1 is bit-identical to the serial fine-tuning loop.
func TestAMUWorkers1Golden(t *testing.T) {
	defer SetScoreWorkers(0)
	SetScoreWorkers(4)
	base, _ := trainTwin(t, 0)
	enc := base.Encoder

	apps := []*workload.App{workload.ByName("PageRank")}
	ds := smallDataset(t, apps, 2, 31)
	encoded := EncodeAll(enc, ds.Instances)
	mid := len(encoded) / 2
	source, target := encoded[:mid], encoded[mid:]

	cfg := DefaultAMUConfig()
	cfg.Epochs = 2

	serial := base.Clone()
	cfgSerial := cfg
	cfgSerial.Workers = 0
	lossSerial := AdaptiveModelUpdate(serial, source, target, cfgSerial, rand.New(rand.NewSource(41)))

	par := base.Clone()
	cfgPar := cfg
	cfgPar.Workers = 1
	lossPar := AdaptiveModelUpdate(par, source, target, cfgPar, rand.New(rand.NewSource(41)))

	if lossSerial != lossPar {
		t.Fatalf("AMU Workers=1 loss %v != serial %v", lossPar, lossSerial)
	}
	assertParamsEqual(t, serial, par, "AMU Workers=1 vs serial")
}

// TestAMUWorkersParallelStable: Workers=2 fine-tuning stays finite.
func TestAMUWorkersParallelStable(t *testing.T) {
	defer SetScoreWorkers(0)
	SetScoreWorkers(2)
	base, _ := trainTwin(t, 0)
	apps := []*workload.App{workload.ByName("PageRank")}
	ds := smallDataset(t, apps, 2, 31)
	encoded := EncodeAll(base.Encoder, ds.Instances)
	mid := len(encoded) / 2

	cfg := DefaultAMUConfig()
	cfg.Epochs = 2
	cfg.Workers = 2
	m := base.Clone()
	loss := AdaptiveModelUpdate(m, encoded[:mid], encoded[mid:], cfg, rand.New(rand.NewSource(43)))
	if math.IsNaN(loss) || math.IsInf(loss, 0) || !m.paramsFinite() {
		t.Fatalf("Workers=2 AMU unstable: loss=%v finite=%v", loss, m.paramsFinite())
	}
}

// --- race coverage under the pool -----------------------------------------

// TestPoolConcurrentRecommendAndUpdateRace overlaps pooled recommendations,
// a pool resize, and a data-parallel adaptive update. Run with -race.
func TestPoolConcurrentRecommendAndUpdateRace(t *testing.T) {
	defer SetScoreWorkers(0)
	SetScoreWorkers(4)
	tuner, ds := concurrencyTuner(t)
	tuner.UpdateBatch = 3
	tuner.AMU.Epochs = 1
	tuner.AMU.Workers = 2
	app := workload.ByName("WordCount")
	env := sparksim.ClusterC
	data := app.Spec.MakeData(app.Sizes.Train[0])
	source := EncodeAll(tuner.Model.Encoder, ds.Instances[:16])

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if g == 0 && i == 1 {
					SetScoreWorkers(2 + g%3) // resize mid-flight
				}
				if _, err := tuner.RecommendSafe(app.Spec, data, env); err != nil {
					t.Errorf("RecommendSafe: %v", err)
				}
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(5))
	updated := false
	for i := 0; i < 4; i++ {
		cfg := ForceFeasible(sparksim.RandomConfig(rng), env)
		run := instrument.Run(app.Spec, data, env, cfg)
		if tuner.CollectFeedback(run, source) {
			updated = true
		}
	}
	wg.Wait()
	if !updated {
		t.Fatal("expected a data-parallel adaptive update to trigger")
	}
	if !tuner.Model.paramsFinite() {
		t.Fatal("weights went non-finite")
	}
}
