// Package feature turns stage-level instances into model inputs: code
// token sequences over a learned vocabulary (paper §III-B Step 2), DAG
// scheduler node/adjacency matrices with an out-of-vocabulary token
// (Step 3), and the dense data / environment / configuration features of
// Tables I, II and IV.
package feature

import (
	"math"
	"sort"
	"strings"

	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/tensor"
)

// OOVID is the token id reserved for out-of-vocabulary code tokens; the
// paper adds an oov token "to increase generalizability ... to handle
// unseen atomic operations in the test application".
const OOVID = 0

// Tokenize splits source code into tokens: identifiers and literals, with
// punctuation discarded. Case is preserved because Spark API names
// (sortByKey, treeAggregate) are the discriminative vocabulary.
func Tokenize(code string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range code {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return toks
}

// Vocab maps code tokens to embedding ids. Id 0 is the oov token.
type Vocab struct {
	ids map[string]int
	// UseOOV controls whether unknown tokens map to OOVID or are dropped;
	// the Cold-UNK ablation of Table XI disables it.
	UseOOV bool
}

// BuildVocab constructs a vocabulary from a corpus of code strings,
// keeping tokens that occur at least minCount times.
func BuildVocab(corpus []string, minCount int) *Vocab {
	counts := map[string]int{}
	for _, code := range corpus {
		for _, t := range Tokenize(code) {
			counts[t]++
		}
	}
	kept := make([]string, 0, len(counts))
	for t, c := range counts {
		if c >= minCount {
			kept = append(kept, t)
		}
	}
	sort.Strings(kept)
	v := &Vocab{ids: make(map[string]int, len(kept)), UseOOV: true}
	for i, t := range kept {
		v.ids[t] = i + 1 // 0 reserved for oov
	}
	return v
}

// Size returns the number of embedding rows (vocabulary + oov).
func (v *Vocab) Size() int { return len(v.ids) + 1 }

// Encode maps code to a fixed-length id sequence of length maxLen, padding
// with −1 (zero embedding columns, matching the paper's zero padding).
func (v *Vocab) Encode(code string, maxLen int) []int {
	out := make([]int, 0, maxLen)
	for _, t := range Tokenize(code) {
		if len(out) == maxLen {
			break
		}
		id, ok := v.ids[t]
		if !ok {
			if !v.UseOOV {
				continue // Cold-UNK ablation: unseen tokens vanish
			}
			id = OOVID
		}
		out = append(out, id)
	}
	for len(out) < maxLen {
		out = append(out, -1)
	}
	return out
}

// ID returns the id of a token (OOVID when unknown).
func (v *Vocab) ID(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	return OOVID
}

// Export returns a copy of the token→id table (for model persistence).
func (v *Vocab) Export() map[string]int {
	out := make(map[string]int, len(v.ids))
	for t, id := range v.ids {
		out[t] = id
	}
	return out
}

// NewVocabFromMap reconstructs a vocabulary from an exported table.
func NewVocabFromMap(ids map[string]int, useOOV bool) *Vocab {
	cp := make(map[string]int, len(ids))
	for t, id := range ids {
		cp[t] = id
	}
	return &Vocab{ids: cp, UseOOV: useOOV}
}

// OpVocab maps DAG node labels (atomic operations) to one-hot columns.
// Column S (the last) is the oov operation, mirroring §III-B Step 3.
type OpVocab struct {
	ids map[string]int
	// UseOOV disables the oov column when false (Cold-UNK ablation:
	// unseen ops map onto column 0 arbitrarily, degrading cold-start).
	UseOOV bool
}

// BuildOpVocab constructs the node-label vocabulary from training DAGs.
func BuildOpVocab(instances []instrument.StageInstance) *OpVocab {
	set := map[string]bool{}
	for i := range instances {
		for _, op := range instances[i].Ops {
			set[op] = true
		}
	}
	names := make([]string, 0, len(set))
	for op := range set {
		names = append(names, op)
	}
	sort.Strings(names)
	v := &OpVocab{ids: make(map[string]int, len(names)), UseOOV: true}
	for i, op := range names {
		v.ids[op] = i
	}
	return v
}

// Width returns S+1: one column per known operation plus the oov column.
func (v *OpVocab) Width() int { return len(v.ids) + 1 }

// Export returns a copy of the op→column table (for model persistence).
func (v *OpVocab) Export() map[string]int {
	out := make(map[string]int, len(v.ids))
	for t, id := range v.ids {
		out[t] = id
	}
	return out
}

// NewOpVocabFromMap reconstructs an op vocabulary from an exported table.
func NewOpVocabFromMap(ids map[string]int, useOOV bool) *OpVocab {
	cp := make(map[string]int, len(ids))
	for t, id := range ids {
		cp[t] = id
	}
	return &OpVocab{ids: cp, UseOOV: useOOV}
}

// NodeFeatures builds the |V|×(S+1) one-hot node embedding matrix V_i.
func (v *OpVocab) NodeFeatures(ops []string) *tensor.Tensor {
	m := tensor.New(len(ops), v.Width())
	oov := len(v.ids)
	for i, op := range ops {
		id, ok := v.ids[op]
		if !ok {
			if v.UseOOV {
				id = oov
			} else {
				id = 0
			}
		}
		m.Set(i, id, 1)
	}
	return m
}

// DenseFeatures assembles the non-neural inputs of a stage instance: the
// normalized knob vector o_i (16), data features d_i (4), environment
// features e_i (6), and derived resource features (8) — quantities any
// practitioner computes from the submitted configuration and the cluster
// spec before running anything (allocatable executors, task slots, memory
// per task, partitions per slot, ...). They encode the o_i×e_i×d_i
// interactions that drive Spark performance and are equally available to
// every learned model in the evaluation.
func DenseFeatures(inst *instrument.StageInstance) []float64 {
	out := make([]float64, 0, DenseWidth)
	out = append(out, inst.Config.Normalized()...)
	out = append(out, inst.Data.Features()...)
	out = append(out, inst.Env.Features()...)
	out = append(out, DerivedResourceFeatures(inst.Config, inst.Data, inst.Env)...)
	return out
}

// DerivedResourceFeatures computes the 8 interaction features described at
// DenseFeatures. All inputs are knob values, the data size and the cluster
// spec — nothing observed from execution.
func DerivedResourceFeatures(cfg sparksim.Config, data sparksim.DataSpec, env sparksim.Environment) []float64 {
	cfg = cfg.Clamp()
	cores := cfg[sparksim.KnobExecutorCores]
	memGB := cfg[sparksim.KnobExecutorMemory]
	overheadGB := cfg[sparksim.KnobExecutorMemoryOverhead] / 1024
	perNodeByCores := math.Floor(float64(env.Cores) / cores)
	perNodeByMem := math.Floor((env.MemGB - 1) / (memGB + overheadGB))
	perNode := math.Min(perNodeByCores, perNodeByMem)
	executors := 0.0
	if perNode >= 1 {
		executors = math.Min(cfg[sparksim.KnobExecutorInstances], perNode*float64(env.Nodes))
	}
	slots := executors * cores
	heapMB := memGB * 1024
	unified := heapMB * cfg[sparksim.KnobMemoryFraction]
	storage := unified * cfg[sparksim.KnobMemoryStorageFraction]
	execPerTask := (unified - storage) / cores
	parallelism := cfg[sparksim.KnobDefaultParallelism]
	mbPerPartition := data.SizeMB / parallelism
	feasible := 0.0
	if perNode >= 1 {
		feasible = 1
	}
	return []float64{
		feasible,
		slots / 256,
		logScale(executors, 64),
		logScale(execPerTask, 32*1024),
		logScale(storage*executors/(data.SizeMB+1), 64),
		logScale(parallelism/math.Max(slots, 1), 64),
		logScale(mbPerPartition, 4096),
		logScale(data.SizeMB/math.Max(slots, 1), 1<<20),
	}
}

// DenseWidth is the width of DenseFeatures' output.
const DenseWidth = sparksim.NumKnobs + 4 + 6 + 8

// StageStats returns the stage-level "Spark monitor UI" statistics used by
// the S/SC baselines of Table VII (input MB, shuffle MB, task count),
// log-scaled. NECS must not consume these (paper §V-C: "they are only
// accessible when the application has been actually executed").
func StageStats(inst *instrument.StageInstance) []float64 {
	return []float64{
		logScale(inst.InputMB, 1<<20),
		logScale(inst.ShuffleMB, 1<<20),
		logScale(float64(inst.Tasks), 4096),
	}
}

// StageStatsWidth is the width of StageStats' output.
const StageStatsWidth = 3

func logScale(v, max float64) float64 {
	if v <= 0 {
		return 0
	}
	return log2(1+v) / log2(1+max)
}

func log2(x float64) float64 {
	// Thin wrapper to keep math import out of the public surface.
	return math.Log2(x)
}

// BagOfWords builds the L2-normalized bag-of-words vector over the vocab
// for the WC/SC baselines ("BOW representation of program codes").
func (v *Vocab) BagOfWords(code string) []float64 {
	out := make([]float64, v.Size())
	for _, t := range Tokenize(code) {
		out[v.ID(t)]++
	}
	var norm float64
	for _, x := range out {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range out {
			out[i] /= norm
		}
	}
	return out
}
