package feature

import (
	"math"
	"testing"

	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize(`val x = rdd.sortByKey(ascending = false)`)
	want := []string{"val", "x", "rdd", "sortByKey", "ascending", "false"}
	if len(toks) != len(want) {
		t.Fatalf("tokens %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens %v, want %v", toks, want)
		}
	}
}

func TestTokenizePreservesCase(t *testing.T) {
	toks := Tokenize("TeraSortPartitioner")
	if len(toks) != 1 || toks[0] != "TeraSortPartitioner" {
		t.Fatalf("case not preserved: %v", toks)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if len(Tokenize("  \n\t.;()")) != 0 {
		t.Fatal("punctuation-only input should yield no tokens")
	}
}

func TestVocabEncodeRoundTrip(t *testing.T) {
	v := BuildVocab([]string{"map filter map reduceByKey", "map sortByKey"}, 1)
	ids := v.Encode("map sortByKey", 4)
	if len(ids) != 4 {
		t.Fatalf("length %d", len(ids))
	}
	if ids[0] == OOVID || ids[1] == OOVID {
		t.Fatalf("known tokens mapped to oov: %v", ids)
	}
	if ids[2] != -1 || ids[3] != -1 {
		t.Fatalf("padding wrong: %v", ids)
	}
	if ids[0] != v.ID("map") || ids[1] != v.ID("sortByKey") {
		t.Fatal("Encode and ID disagree")
	}
}

func TestVocabOOVHandling(t *testing.T) {
	v := BuildVocab([]string{"map filter"}, 1)
	ids := v.Encode("map unknownToken", 2)
	if ids[1] != OOVID {
		t.Fatalf("unknown token should map to oov, got %d", ids[1])
	}
	v.UseOOV = false
	ids = v.Encode("map unknownToken", 2)
	if ids[1] != -1 {
		t.Fatalf("Cold-UNK should drop unknown tokens, got %v", ids)
	}
}

func TestVocabMinCount(t *testing.T) {
	v := BuildVocab([]string{"rare common common common"}, 2)
	if v.ID("rare") != OOVID {
		t.Fatal("rare token should be excluded at minCount=2")
	}
	if v.ID("common") == OOVID {
		t.Fatal("common token should be in vocab")
	}
}

func TestVocabEncodeTruncates(t *testing.T) {
	v := BuildVocab([]string{"a b c d e"}, 1)
	ids := v.Encode("a b c d e", 3)
	if len(ids) != 3 {
		t.Fatalf("truncation failed: %v", ids)
	}
}

func TestOpVocabOneHot(t *testing.T) {
	insts := []instrument.StageInstance{
		{Ops: []string{"map", "reduceByKey"}},
		{Ops: []string{"map", "sortByKey"}},
	}
	v := BuildOpVocab(insts)
	if v.Width() != 4 { // 3 ops + oov
		t.Fatalf("width %d, want 4", v.Width())
	}
	m := v.NodeFeatures([]string{"map", "neverSeen"})
	if m.Rows != 2 || m.Cols != 4 {
		t.Fatalf("node features shape %dx%d", m.Rows, m.Cols)
	}
	// Each row is one-hot.
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for j := 0; j < m.Cols; j++ {
			sum += m.At(i, j)
		}
		if sum != 1 {
			t.Fatalf("row %d not one-hot", i)
		}
	}
	// Unknown op hits the oov column (last).
	if m.At(1, 3) != 1 {
		t.Fatal("unseen op should use the oov column")
	}
}

func TestOpVocabColdUNK(t *testing.T) {
	v := BuildOpVocab([]instrument.StageInstance{{Ops: []string{"map"}}})
	v.UseOOV = false
	m := v.NodeFeatures([]string{"neverSeen"})
	if m.At(0, 0) != 1 {
		t.Fatal("Cold-UNK maps unseen ops to column 0")
	}
}

func TestDenseFeaturesWidthAndRange(t *testing.T) {
	app := workload.ByName("WordCount").Spec
	d := app.MakeData(100)
	inst := instrument.Run(app, d, sparksim.ClusterB, sparksim.DefaultConfig())
	if len(inst.Stages) == 0 {
		t.Fatal("no stage instances")
	}
	f := DenseFeatures(&inst.Stages[0])
	if len(f) != DenseWidth {
		t.Fatalf("dense width %d, want %d", len(f), DenseWidth)
	}
	for i, v := range f {
		if math.IsNaN(v) || v < -0.01 || v > 1.6 {
			t.Fatalf("dense feature %d out of range: %v", i, v)
		}
	}
}

func TestStageStatsOnlyForExecutedRuns(t *testing.T) {
	app := workload.ByName("WordCount").Spec
	d := app.MakeData(100)
	inst := instrument.Run(app, d, sparksim.ClusterB, sparksim.DefaultConfig())
	s := StageStats(&inst.Stages[0])
	if len(s) != StageStatsWidth {
		t.Fatalf("stage stats width %d", len(s))
	}
	if s[0] <= 0 {
		t.Fatal("input MB stat should be positive for the first stage")
	}
	for _, v := range s {
		if v < 0 || v > 1 {
			t.Fatalf("stage stat out of [0,1]: %v", v)
		}
	}
}

func TestBagOfWordsNormalized(t *testing.T) {
	v := BuildVocab([]string{"map filter reduceByKey"}, 1)
	bow := v.BagOfWords("map map filter")
	var norm float64
	for _, x := range bow {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("BOW not L2-normalized: %v", norm)
	}
	if len(bow) != v.Size() {
		t.Fatalf("BOW width %d, want %d", len(bow), v.Size())
	}
}

func TestBagOfWordsEmptyCode(t *testing.T) {
	v := BuildVocab([]string{"map"}, 1)
	bow := v.BagOfWords("")
	for _, x := range bow {
		if x != 0 {
			t.Fatal("empty code should give zero BOW")
		}
	}
}

func TestRealCorpusVocabulary(t *testing.T) {
	var corpus []string
	for _, a := range workload.All() {
		for _, st := range a.Spec.Stages {
			corpus = append(corpus, st.Code)
		}
	}
	v := BuildVocab(corpus, 1)
	if v.Size() < 200 {
		t.Fatalf("workload corpus vocabulary suspiciously small: %d", v.Size())
	}
	// Discriminative Spark API tokens must be present.
	for _, tok := range []string{"sortByKey", "reduceByKey", "treeAggregate", "aggregateMessages", "TeraSortPartitioner"} {
		if v.ID(tok) == OOVID {
			t.Fatalf("token %q missing from corpus vocabulary", tok)
		}
	}
}
