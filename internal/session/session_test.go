package session

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"lite/internal/sparksim"
	"lite/internal/wal"
)

// stubScorer is a deterministic model stand-in.
type stubScorer struct {
	score    func(sparksim.Config) float64
	feasible func(sparksim.Config) bool
}

func (s stubScorer) Score(cfg sparksim.Config) float64 {
	if s.score == nil {
		return 50
	}
	return s.score(cfg)
}

func (s stubScorer) Feasible(cfg sparksim.Config) bool {
	if s.feasible == nil {
		return true
	}
	return s.feasible(cfg)
}

// testStore opens an in-memory store with a fixed seed and a ticking fake
// clock, so IDs, proposals and timestamps are reproducible.
func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Now == nil {
		base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
		n := 0
		opts.Now = func() time.Time {
			n++
			return base.Add(time.Duration(n) * time.Second)
		}
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestIDRoundTrip(t *testing.T) {
	cases := []struct {
		app     string
		sizeMB  float64
		cluster string
	}{
		{"WordCount", 512, "C"},
		{"PageRank", 0.5, "A"},          // dotted size must survive
		{"TeraSort", 1536.25, "edge-B"}, // dashes in cluster names
	}
	for _, c := range cases {
		id := FormatID(c.app, c.sizeMB, c.cluster, 0xdeadbeef)
		app, size, cluster, err := ParseID(id)
		if err != nil {
			t.Fatalf("ParseID(%q): %v", id, err)
		}
		if app != c.app || size != c.sizeMB || cluster != c.cluster {
			t.Fatalf("ParseID(%q) = (%q, %g, %q), want (%q, %g, %q)",
				id, app, size, cluster, c.app, c.sizeMB, c.cluster)
		}
	}
	for _, bad := range []string{"", "a.b.c", "app.notasize.C.00000000", "x"} {
		if _, _, _, err := ParseID(bad); err == nil {
			t.Fatalf("ParseID(%q) succeeded, want error", bad)
		}
	}
}

func TestCreateValidation(t *testing.T) {
	st := testStore(t, Options{})
	base := sparksim.DefaultConfig()

	if _, err := st.Create("A", 100, "C", "yolo", 0, 0, base, 100); err == nil || !IsInvalid(err) {
		t.Fatalf("unknown strategy: err = %v, want invalid", err)
	}
	if _, err := st.Create("A", 100, "C", Moderate, -1, 0, base, 100); err == nil || !IsInvalid(err) {
		t.Fatalf("negative max_trials: err = %v, want invalid", err)
	}
	if _, err := st.Create("A", 100, "C", Moderate, 0, 0.9, base, 100); err == nil || !IsInvalid(err) {
		t.Fatalf("bound <= 1: err = %v, want invalid", err)
	}

	// Zero values pick up the defaults: strategy moderate, preset trial
	// budget, DefaultSafetyBound.
	v, err := st.Create("A", 100, "C", "", 0, 0, base, 100)
	if err != nil {
		t.Fatalf("Create defaults: %v", err)
	}
	params, _ := ParamsFor(Moderate)
	if v.Strategy != string(Moderate) || v.MaxTrials != params.MaxTrials || v.SafetyBound != DefaultSafetyBound {
		t.Fatalf("defaults = (%s, %d, %g), want (moderate, %d, %g)",
			v.Strategy, v.MaxTrials, v.SafetyBound, params.MaxTrials, DefaultSafetyBound)
	}
	if app, size, cluster, err := ParseID(v.ID); err != nil || app != "A" || size != 100 || cluster != "C" {
		t.Fatalf("ID %q does not embed routing fields: (%q, %g, %q, %v)", v.ID, app, size, cluster, err)
	}
}

func TestProposalLifecycleAndBudget(t *testing.T) {
	st := testStore(t, Options{})
	base := sparksim.DefaultConfig()
	v, err := st.Create("A", 100, "C", Moderate, 3, 1.5, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	sc := stubScorer{}

	// Trial 0 is always the measured baseline.
	p0, err := st.NextProposal(v.ID, sc)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Trial != 0 || p0.Source != SourceBaseline || p0.Config != base {
		t.Fatalf("trial 0 = (%d, %s), want baseline at index 0", p0.Trial, p0.Source)
	}
	if p0.AbortAfterSeconds != 0 {
		t.Fatalf("baseline AbortAfterSeconds = %g, want 0 (nothing measured yet)", p0.AbortAfterSeconds)
	}

	// Re-requesting an unreported proposal is idempotent: same trial, no
	// budget spent.
	p0b, err := st.NextProposal(v.ID, sc)
	if err != nil {
		t.Fatal(err)
	}
	if p0b.Trial != 0 || p0b.Config != p0.Config || p0b.BudgetRemaining != p0.BudgetRemaining {
		t.Fatalf("re-proposal spent budget: %+v vs %+v", p0b, p0)
	}

	if _, err := st.Report(v.ID, 0, 100, false); err != nil {
		t.Fatal(err)
	}

	// Budget accounting is monotone: remaining decreases by exactly one per
	// issued trial, and the guard-rail is bound × the measured baseline.
	remaining := p0.BudgetRemaining
	for trial := 1; trial < 3; trial++ {
		p, err := st.NextProposal(v.ID, sc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if p.Trial != trial {
			t.Fatalf("trial index = %d, want %d", p.Trial, trial)
		}
		if p.BudgetRemaining != remaining-1 {
			t.Fatalf("budget after trial %d = %d, want %d", trial, p.BudgetRemaining, remaining-1)
		}
		remaining = p.BudgetRemaining
		if want := 1.5 * 100; p.AbortAfterSeconds != want {
			t.Fatalf("AbortAfterSeconds = %g, want %g", p.AbortAfterSeconds, want)
		}
		if _, err := st.Report(v.ID, p.Trial, 99, false); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := st.NextProposal(v.ID, sc); err != ErrBudgetExhausted {
		t.Fatalf("past budget: err = %v, want ErrBudgetExhausted", err)
	}
}

func TestScreeningFallsBackToAnchor(t *testing.T) {
	st := testStore(t, Options{})
	base := sparksim.DefaultConfig()
	v, err := st.Create("A", 100, "C", Aggressive, 4, 1.5, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Every candidate except the anchor itself is predicted catastrophic, so
	// screening must reject them all and re-propose the anchor (source
	// "best") instead of issuing an unsafe guess.
	sc := stubScorer{score: func(cfg sparksim.Config) float64 {
		if cfg == base {
			return 100
		}
		return 1e9
	}}
	if _, err := st.NextProposal(v.ID, sc); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Report(v.ID, 0, 100, false); err != nil {
		t.Fatal(err)
	}
	p, err := st.NextProposal(v.ID, sc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != SourceBest || p.Config != base {
		t.Fatalf("screened-out pass proposed (%s, %v), want the anchor as source best", p.Source, p.Config)
	}
}

func TestViolationSemantics(t *testing.T) {
	st := testStore(t, Options{})
	base := sparksim.DefaultConfig()
	v, err := st.Create("A", 100, "C", Moderate, 8, 1.5, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	sc := stubScorer{}
	mustPropose := func() Proposal {
		t.Helper()
		p, err := st.NextProposal(v.ID, sc)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	mustPropose()
	if _, err := st.Report(v.ID, 0, 100, false); err != nil {
		t.Fatal(err)
	}

	// Strictly past bound × baseline: a violation.
	p := mustPropose()
	out, err := st.Report(v.ID, p.Trial, 151, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Violation {
		t.Fatal("151s vs bound 150s not flagged as violation")
	}

	// Exactly at the bound — what an abort-capped report looks like — is a
	// bound-hit, not a violation.
	p = mustPropose()
	out, err = st.Report(v.ID, p.Trial, 150, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation {
		t.Fatal("abort-capped report (exactly at the bound) counted as violation")
	}

	// A failure below the bound is recorded but never a violation.
	p = mustPropose()
	out, err = st.Report(v.ID, p.Trial, 30, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation {
		t.Fatal("fast failure counted as violation")
	}

	sess, err := st.Get(v.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Violations != 1 {
		t.Fatalf("Violations = %d, want exactly the one overshoot", sess.Violations)
	}
}

func TestReportValidation(t *testing.T) {
	st := testStore(t, Options{})
	base := sparksim.DefaultConfig()
	v, err := st.Create("A", 100, "C", Moderate, 4, 1.5, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	sc := stubScorer{}

	if _, err := st.Report("nope", 0, 1, false); err != ErrNotFound {
		t.Fatalf("unknown id: %v, want ErrNotFound", err)
	}
	if _, err := st.Report(v.ID, 0, 1, false); err != ErrUnknownTrial {
		t.Fatalf("unissued trial: %v, want ErrUnknownTrial", err)
	}
	if _, err := st.NextProposal(v.ID, sc); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := st.Report(v.ID, 0, bad, false); err == nil || !IsInvalid(err) {
			t.Fatalf("seconds=%v: err = %v, want invalid", bad, err)
		}
	}
	if _, err := st.Report(v.ID, 0, 100, false); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Report(v.ID, 0, 100, false); err != ErrTrialAlreadyReported {
		t.Fatalf("double report: %v, want ErrTrialAlreadyReported", err)
	}

	// Close is idempotent and freezes the session.
	if _, err := st.CloseSession(v.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CloseSession(v.ID); err != nil {
		t.Fatalf("second close: %v, want idempotent success", err)
	}
	if _, err := st.NextProposal(v.ID, sc); err != ErrClosed {
		t.Fatalf("proposal after close: %v, want ErrClosed", err)
	}
	if _, err := st.Report(v.ID, 0, 1, false); err != ErrClosed {
		t.Fatalf("report after close: %v, want ErrClosed", err)
	}
	if _, err := st.Get(v.ID, true); err != nil {
		t.Fatalf("closed session must stay readable: %v", err)
	}
}

func TestTrustRegionAdaptation(t *testing.T) {
	st := testStore(t, Options{})
	base := sparksim.DefaultConfig()
	v, err := st.Create("A", 100, "C", Moderate, 32, 1.5, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	sc := stubScorer{}
	sess := st.sessions[v.ID]
	params, _ := ParamsFor(Moderate)

	if sess.Radius != math.Min(TrustStart, params.Radius) {
		t.Fatalf("initial radius = %g, want min(TrustStart, strategy) = %g",
			sess.Radius, math.Min(TrustStart, params.Radius))
	}

	report := func(seconds float64, failed bool) {
		t.Helper()
		p, err := st.NextProposal(v.ID, sc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Report(v.ID, p.Trial, seconds, failed); err != nil {
			t.Fatal(err)
		}
	}

	report(100, false) // baseline: no trust-region update
	if sess.Radius != TrustStart {
		t.Fatalf("radius moved on baseline report: %g", sess.Radius)
	}

	// A trial at or below the baseline grows the step.
	report(90, false)
	if want := TrustStart * TrustGrow; sess.Radius != want {
		t.Fatalf("radius after safe trial = %g, want %g", sess.Radius, want)
	}

	// A failure halves it.
	report(50, true)
	if want := TrustStart * TrustGrow * TrustShrink; sess.Radius != want {
		t.Fatalf("radius after failed trial = %g, want %g", sess.Radius, want)
	}

	// Crossing the early-warning threshold (halfway to the bound: 125s)
	// also shrinks, down to the floor at worst.
	for i := 0; i < 8; i++ {
		report(130, false)
	}
	if sess.Radius != TrustFloor {
		t.Fatalf("radius after repeated near-bound trials = %g, want floor %g", sess.Radius, TrustFloor)
	}

	// Growth is capped by the strategy ceiling.
	for i := 0; i < 20; i++ {
		report(80-float64(i), false) // strictly improving, always <= baseline
	}
	if sess.Radius != params.Radius {
		t.Fatalf("radius after sustained wins = %g, want strategy ceiling %g", sess.Radius, params.Radius)
	}
}

func TestPromotionExactlyOnce(t *testing.T) {
	st := testStore(t, Options{})
	base := sparksim.DefaultConfig()
	v, err := st.Create("A", 100, "C", Moderate, 8, 1.5, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	sc := stubScorer{}
	propose := func() Proposal {
		t.Helper()
		p, err := st.NextProposal(v.ID, sc)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	propose()
	out, err := st.Report(v.ID, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Promote {
		t.Fatal("baseline report promoted")
	}

	// A genuine win promotes exactly once; the double report is rejected
	// before it can promote again.
	p := propose()
	out, err = st.Report(v.ID, p.Trial, 90, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Improved || !out.Promote {
		t.Fatalf("win not promoted: %+v", out)
	}
	if _, err := st.Report(v.ID, p.Trial, 90, false); err != ErrTrialAlreadyReported {
		t.Fatalf("double report: %v", err)
	}

	// A non-improving trial does not promote.
	p = propose()
	out, err = st.Report(v.ID, p.Trial, 95, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Improved || out.Promote {
		t.Fatalf("non-improving trial promoted: %+v", out)
	}

	sess, err := st.Get(v.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", sess.Promotions)
	}
	promoted := 0
	for _, tr := range sess.Trials {
		if tr.Promoted {
			promoted++
		}
	}
	if promoted != 1 {
		t.Fatalf("%d trials marked promoted, want 1", promoted)
	}
}

func TestFirstSuccessAfterFailedBaselineDoesNotPromote(t *testing.T) {
	st := testStore(t, Options{})
	base := sparksim.DefaultConfig()
	v, err := st.Create("A", 100, "C", Moderate, 8, 1.5, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	sc := stubScorer{}
	if _, err := st.NextProposal(v.ID, sc); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Report(v.ID, 0, 0, true); err != nil { // baseline itself failed
		t.Fatal(err)
	}
	p, err := st.NextProposal(v.ID, sc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.Report(v.ID, p.Trial, 80, false)
	if err != nil {
		t.Fatal(err)
	}
	// First success only seeds the best; it beat nothing measured, so it is
	// not a model-worthy signal.
	if out.Promote {
		t.Fatal("incidental first success promoted")
	}
}

// TestCrashReplay drives the store through mutations, blocks the final
// snapshot (so only the WAL survives, as after a crash), and verifies the
// reopened store replays to bit-identical API state — including the trust
// radius, so a recovered session continues the same exploration schedule.
func TestCrashReplay(t *testing.T) {
	dir := t.TempDir()
	fs := wal.NewFaultFS(nil)
	clock := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	now := func() time.Time {
		clock = clock.Add(time.Second)
		return clock
	}
	st, err := Open(Options{Dir: dir, FS: fs, Seed: 7, Now: now, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	base := sparksim.DefaultConfig()
	sc := stubScorer{}

	v1, err := st.Create("A", 100, "C", Moderate, 8, 1.5, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := st.Create("B", 0.5, "edge", Conservative, 4, 2, base, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, seconds := range []float64{100, 90, 151, 85} {
		p, err := st.NextProposal(v1.ID, sc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Report(v1.ID, p.Trial, seconds, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.NextProposal(v2.ID, sc); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CloseSession(v2.ID); err != nil {
		t.Fatal(err)
	}

	before1, _ := st.Get(v1.ID, true)
	before2, _ := st.Get(v2.ID, true)
	radius := st.sessions[v1.ID].Radius

	// "Crash": the snapshot rename fails, so Close leaves only the WAL.
	fs.FailRename(true)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fs.Heal()

	re, err := Open(Options{Dir: dir, FS: fs, Seed: 7, Now: now})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.RecoveredSessions != 2 || re.RecoveredEvents == 0 {
		t.Fatalf("recovered (%d sessions, %d events), want 2 sessions from WAL replay",
			re.RecoveredSessions, re.RecoveredEvents)
	}
	after1, err := re.Get(v1.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	after2, err := re.Get(v2.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct{ before, after any }{{before1, after1}, {before2, after2}} {
		b, _ := json.Marshal(pair.before)
		a, _ := json.Marshal(pair.after)
		if string(b) != string(a) {
			t.Fatalf("replayed view differs:\n before: %s\n after:  %s", b, a)
		}
	}
	if got := re.sessions[v1.ID].Radius; got != radius {
		t.Fatalf("replayed trust radius = %g, want %g", got, radius)
	}
	if after1.Violations != 1 {
		t.Fatalf("replayed Violations = %d, want 1", after1.Violations)
	}

	// Replay is idempotent end-to-end: the boot fold wrote a snapshot, and a
	// third open (snapshot + folded WAL) must land on the same state again.
	re.Close()
	re2, err := Open(Options{Dir: dir, FS: fs, Seed: 7, Now: now})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer re2.Close()
	again, err := re2.Get(v1.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(after1)
	g, _ := json.Marshal(again)
	if string(a) != string(g) {
		t.Fatalf("snapshot round-trip differs:\n %s\n %s", a, g)
	}
}
