package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"lite/internal/sparksim"
	"lite/internal/wal"
	"lite/pkg/api"
)

// Options configures a Store. The zero value of every field gets a sane
// default.
type Options struct {
	// Dir persists sessions (a WAL of mutation events plus an atomic
	// sessions.json snapshot). Empty = in-memory only; sessions die with
	// the process.
	Dir string
	// FS overrides the filesystem for both the WAL and the snapshot
	// (fault-injection tests). Default wal.OSFS.
	FS wal.FS
	// SyncEvery / SyncInterval tune the session WAL's fsync batching
	// (defaults follow wal.Options).
	SyncEvery    int
	SyncInterval time.Duration
	// SnapshotEvery folds the WAL into sessions.json after this many
	// events (default 64).
	SnapshotEvery int
	// DefaultBound is the safety bound applied when a create request does
	// not set one (default DefaultSafetyBound).
	DefaultBound float64
	// Seed makes proposal randomness and ID nonces deterministic; 0 uses
	// a time-derived seed.
	Seed int64
	// Now overrides the clock (tests).
	Now func() time.Time
	// Logf, when set, receives replay/persistence diagnostics.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = wal.OSFS{}
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 64
	}
	if o.DefaultBound <= 1 {
		o.DefaultBound = DefaultSafetyBound
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

const snapshotFile = "sessions.json"

// Store owns every tuning session on one instance. All methods are safe
// for concurrent use; mutations are WAL-appended before they are applied,
// and the table is periodically folded into an atomic snapshot, so a
// crash-restart recovers every acknowledged mutation (the same durability
// contract as the model's feedback WAL, DESIGN.md §9).
type Store struct {
	opts Options

	mu        sync.Mutex
	sessions  map[string]*Session
	rng       *rand.Rand
	w         *wal.WAL
	unsnapped int
	lastSeq   uint64

	// RecoveredSessions / RecoveredEvents report what Open replayed, for
	// boot logs and tests.
	RecoveredSessions int
	RecoveredEvents   int
}

// Persistence shapes. NaN never reaches JSON: unknown predictions are
// pointers, omitted when absent.

type trialJSON struct {
	Trial     int             `json:"trial"`
	Config    sparksim.Config `json:"config"`
	Predicted *float64        `json:"predicted,omitempty"`
	Source    string          `json:"source"`
	Reported  bool            `json:"reported,omitempty"`
	Seconds   float64         `json:"seconds,omitempty"`
	Failed    bool            `json:"failed,omitempty"`
	Improved  bool            `json:"improved,omitempty"`
	Promoted  bool            `json:"promoted,omitempty"`
}

func (t *Trial) toJSON() trialJSON {
	j := trialJSON{
		Trial:    t.Trial,
		Config:   t.Config,
		Source:   t.Source,
		Reported: t.Reported,
		Seconds:  t.Seconds,
		Failed:   t.Failed,
		Improved: t.Improved,
		Promoted: t.Promoted,
	}
	if !math.IsNaN(t.Predicted) && !math.IsInf(t.Predicted, 0) {
		p := t.Predicted
		j.Predicted = &p
	}
	return j
}

func (j *trialJSON) toTrial() Trial {
	t := Trial{
		Trial:     j.Trial,
		Config:    j.Config,
		Predicted: math.NaN(),
		Source:    j.Source,
		Reported:  j.Reported,
		Seconds:   j.Seconds,
		Failed:    j.Failed,
		Improved:  j.Improved,
		Promoted:  j.Promoted,
	}
	if j.Predicted != nil {
		t.Predicted = *j.Predicted
	}
	return t
}

type sessionJSON struct {
	ID                string          `json:"id"`
	App               string          `json:"app"`
	SizeMB            float64         `json:"size_mb"`
	Cluster           string          `json:"cluster"`
	Strategy          Strategy        `json:"strategy"`
	Params            Params          `json:"params"`
	SafetyBound       float64         `json:"safety_bound"`
	MaxTrials         int             `json:"max_trials"`
	Radius            float64         `json:"radius,omitempty"`
	BaselineConfig    sparksim.Config `json:"baseline_config"`
	BaselinePredicted *float64        `json:"baseline_predicted,omitempty"`
	BaselineSeconds   float64         `json:"baseline_seconds,omitempty"`
	BestConfig        sparksim.Config `json:"best_config"`
	BestSeconds       float64         `json:"best_seconds,omitempty"`
	BestTrial         int             `json:"best_trial,omitempty"`
	HasBest           bool            `json:"has_best,omitempty"`
	Trials            []trialJSON     `json:"trials,omitempty"`
	Violations        int             `json:"violations,omitempty"`
	Promotions        int             `json:"promotions,omitempty"`
	Closed            bool            `json:"closed,omitempty"`
	CreatedAt         time.Time       `json:"created_at"`
	ClosedAt          time.Time       `json:"closed_at,omitempty"`
}

func (s *Session) toJSON() sessionJSON {
	j := sessionJSON{
		ID:              s.ID,
		App:             s.App,
		SizeMB:          s.SizeMB,
		Cluster:         s.Cluster,
		Strategy:        s.Strategy,
		Params:          s.Params,
		SafetyBound:     s.SafetyBound,
		MaxTrials:       s.MaxTrials,
		Radius:          s.Radius,
		BaselineConfig:  s.BaselineConfig,
		BaselineSeconds: s.BaselineSeconds,
		BestConfig:      s.BestConfig,
		BestSeconds:     s.BestSeconds,
		BestTrial:       s.BestTrial,
		HasBest:         s.HasBest,
		Violations:      s.Violations,
		Promotions:      s.Promotions,
		Closed:          s.Closed,
		CreatedAt:       s.CreatedAt,
		ClosedAt:        s.ClosedAt,
	}
	if !math.IsNaN(s.BaselinePredicted) {
		p := s.BaselinePredicted
		j.BaselinePredicted = &p
	}
	j.Trials = make([]trialJSON, 0, len(s.Trials))
	for i := range s.Trials {
		j.Trials = append(j.Trials, s.Trials[i].toJSON())
	}
	return j
}

func (j *sessionJSON) toSession() *Session {
	s := &Session{
		ID:                j.ID,
		App:               j.App,
		SizeMB:            j.SizeMB,
		Cluster:           j.Cluster,
		Strategy:          j.Strategy,
		Params:            j.Params,
		SafetyBound:       j.SafetyBound,
		MaxTrials:         j.MaxTrials,
		Radius:            j.Radius,
		BaselineConfig:    j.BaselineConfig,
		BaselinePredicted: math.NaN(),
		BaselineSeconds:   j.BaselineSeconds,
		BestConfig:        j.BestConfig,
		BestSeconds:       j.BestSeconds,
		BestTrial:         j.BestTrial,
		HasBest:           j.HasBest,
		Violations:        j.Violations,
		Promotions:        j.Promotions,
		Closed:            j.Closed,
		CreatedAt:         j.CreatedAt,
		ClosedAt:          j.ClosedAt,
	}
	if j.BaselinePredicted != nil {
		s.BaselinePredicted = *j.BaselinePredicted
	}
	if s.Radius <= 0 {
		s.Radius = math.Min(TrustStart, s.Params.Radius)
	}
	s.Trials = make([]Trial, 0, len(j.Trials))
	for i := range j.Trials {
		s.Trials = append(s.Trials, j.Trials[i].toTrial())
	}
	return s
}

// event is one WAL record. Replay is idempotent: a create for an existing
// ID, a propose at an already-present trial index, a report of an
// already-reported trial and a close of a closed session are all no-ops,
// so at-least-once replay (WAL folded after the snapshot persists) cannot
// double-apply. Promotions never re-fire on replay — the promoted feedback
// went through the feedback WAL, which made it durable on its own.
type event struct {
	Op      string       `json:"op"` // create | propose | report | close
	ID      string       `json:"id"`
	Session *sessionJSON `json:"session,omitempty"`
	Trial   *trialJSON   `json:"trial,omitempty"`
	Report  *reportJSON  `json:"report,omitempty"`
	At      time.Time    `json:"at,omitempty"`
}

type reportJSON struct {
	Trial   int     `json:"trial"`
	Seconds float64 `json:"seconds"`
	Failed  bool    `json:"failed,omitempty"`
}

type storeSnapshot struct {
	Sessions []sessionJSON `json:"sessions"`
}

// Open loads (or creates) a session store. With a Dir it reads
// sessions.json, replays every unfolded WAL event on top and is then ready
// for traffic; without one it is purely in-memory.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	st := &Store{
		opts:     opts,
		sessions: make(map[string]*Session),
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	if opts.Dir == "" {
		return st, nil
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: mkdir %s: %w", opts.Dir, err)
	}
	if err := st.loadSnapshot(); err != nil {
		return nil, err
	}
	w, recs, stats, err := wal.Open(wal.Options{
		Dir:          opts.Dir,
		SyncEvery:    opts.SyncEvery,
		SyncInterval: opts.SyncInterval,
		FS:           opts.FS,
	})
	if err != nil {
		return nil, fmt.Errorf("session: open wal: %w", err)
	}
	st.w = w
	for _, rec := range recs {
		var ev event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			opts.Logf("session: skipping undecodable wal record seq=%d: %v", rec.Seq, err)
			continue
		}
		st.apply(&ev)
		st.lastSeq = rec.Seq
		st.RecoveredEvents++
	}
	st.RecoveredSessions = len(st.sessions)
	if stats.CorruptTails > 0 {
		opts.Logf("session: wal recovery discarded %d corrupt tail(s)", stats.CorruptTails)
	}
	// Fold what we just replayed so restart loops don't grow the log.
	if st.RecoveredEvents > 0 {
		if err := st.snapshotLocked(); err != nil {
			opts.Logf("session: boot snapshot failed (will retry on next fold): %v", err)
		}
	}
	return st, nil
}

func (st *Store) loadSnapshot() error {
	path := filepath.Join(st.opts.Dir, snapshotFile)
	f, err := st.opts.FS.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("session: open snapshot: %w", err)
	}
	defer f.Close()
	var snap storeSnapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("session: decode snapshot %s: %w", path, err)
	}
	for i := range snap.Sessions {
		s := snap.Sessions[i].toSession()
		st.sessions[s.ID] = s
	}
	return nil
}

// apply replays one event onto the table, idempotently. Called with st.mu
// held (or before the store is shared, during Open).
func (st *Store) apply(ev *event) {
	switch ev.Op {
	case "create":
		if ev.Session == nil {
			return
		}
		if _, ok := st.sessions[ev.Session.ID]; ok {
			return
		}
		st.sessions[ev.Session.ID] = ev.Session.toSession()
	case "propose":
		s := st.sessions[ev.ID]
		if s == nil || ev.Trial == nil || ev.Trial.Trial != len(s.Trials) {
			return
		}
		s.Trials = append(s.Trials, ev.Trial.toTrial())
	case "report":
		s := st.sessions[ev.ID]
		if s == nil || ev.Report == nil {
			return
		}
		t := ev.Report.Trial
		if t < 0 || t >= len(s.Trials) || s.Trials[t].Reported {
			return
		}
		s.applyReport(t, ev.Report.Seconds, ev.Report.Failed)
	case "close":
		s := st.sessions[ev.ID]
		if s == nil || s.Closed {
			return
		}
		s.Closed = true
		s.ClosedAt = ev.At
	}
}

// append persists one event (WAL append, then periodic fold into the
// snapshot). A WAL failure is returned to the caller *before* the mutation
// is applied — an unacknowledged mutation never survives a crash that an
// acknowledged one would lose.
func (st *Store) append(ev *event) error {
	if st.w == nil {
		return nil
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("session: encode event: %w", err)
	}
	seq, err := st.w.Append(data)
	if err != nil {
		return fmt.Errorf("session: wal append: %w", err)
	}
	st.lastSeq = seq
	st.unsnapped++
	if st.unsnapped >= st.opts.SnapshotEvery {
		if err := st.snapshotLocked(); err != nil {
			// The WAL still has everything; fold again later.
			st.opts.Logf("session: snapshot failed (wal retains events): %v", err)
		}
	}
	return nil
}

// snapshotLocked writes sessions.json atomically (tmp → fsync → rename →
// dir fsync) and folds the WAL past everything it captured. Called with
// st.mu held.
func (st *Store) snapshotLocked() error {
	if st.opts.Dir == "" {
		return nil
	}
	snap := storeSnapshot{Sessions: make([]sessionJSON, 0, len(st.sessions))}
	ids := make([]string, 0, len(st.sessions))
	for id := range st.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		snap.Sessions = append(snap.Sessions, st.sessions[id].toJSON())
	}
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return err
	}
	path := filepath.Join(st.opts.Dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := st.opts.FS.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		st.opts.FS.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		st.opts.FS.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		st.opts.FS.Remove(tmp)
		return err
	}
	if err := st.opts.FS.Rename(tmp, path); err != nil {
		st.opts.FS.Remove(tmp)
		return err
	}
	if err := st.opts.FS.SyncDir(st.opts.Dir); err != nil {
		return err
	}
	if st.w != nil && st.lastSeq > 0 {
		if err := st.w.MarkFolded(st.lastSeq); err != nil {
			return err
		}
	}
	st.unsnapped = 0
	return nil
}

// Create opens a session. The caller (the serve layer) resolves the static
// recommendation first and passes it in as the baseline; predicted may be
// NaN when the static tier had no estimate. Returns the session view.
func (st *Store) Create(app string, sizeMB float64, cluster string, strategy Strategy, maxTrials int, bound float64, baseline sparksim.Config, predicted float64) (api.Session, error) {
	if strategy == "" {
		strategy = Moderate
	}
	params, ok := ParamsFor(strategy)
	if !ok {
		return api.Session{}, fmt.Errorf("%w: unknown strategy %q (want conservative, moderate or aggressive)", errInvalid, strategy)
	}
	if maxTrials < 0 {
		return api.Session{}, fmt.Errorf("%w: max_trials must be >= 0", errInvalid)
	}
	if maxTrials == 0 {
		maxTrials = params.MaxTrials
	}
	if bound == 0 {
		bound = st.opts.DefaultBound
	}
	if bound <= 1 {
		return api.Session{}, fmt.Errorf("%w: safety_bound must be > 1 (got %g)", errInvalid, bound)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	var id string
	for {
		id = FormatID(app, sizeMB, cluster, uint64(st.rng.Int63())&0xffffffff)
		if _, taken := st.sessions[id]; !taken {
			break
		}
	}
	s := &Session{
		ID:                id,
		App:               app,
		SizeMB:            sizeMB,
		Cluster:           cluster,
		Strategy:          strategy,
		Params:            params,
		SafetyBound:       bound,
		MaxTrials:         maxTrials,
		Radius:            math.Min(TrustStart, params.Radius),
		BaselineConfig:    baseline,
		BaselinePredicted: predicted,
		CreatedAt:         st.opts.Now(),
	}
	j := s.toJSON()
	if err := st.append(&event{Op: "create", ID: id, Session: &j}); err != nil {
		return api.Session{}, err
	}
	st.sessions[id] = s
	return s.View(false), nil
}

// errInvalid marks argument errors; the HTTP layer maps it to
// api.CodeInvalidArgument.
var errInvalid = fmt.Errorf("session: invalid argument")

// IsInvalid reports whether err is an argument-validation failure.
func IsInvalid(err error) bool { return errors.Is(err, errInvalid) }

// Get returns a session view.
func (st *Store) Get(id string, includeTrials bool) (api.Session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.sessions[id]
	if s == nil {
		return api.Session{}, ErrNotFound
	}
	return s.View(includeTrials), nil
}

// List returns every session's view (no trials), sorted by creation time
// then ID.
func (st *Store) List() []api.Session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]api.Session, 0, len(st.sessions))
	ordered := make([]*Session, 0, len(st.sessions))
	for _, s := range st.sessions {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if !ordered[i].CreatedAt.Equal(ordered[j].CreatedAt) {
			return ordered[i].CreatedAt.Before(ordered[j].CreatedAt)
		}
		return ordered[i].ID < ordered[j].ID
	})
	for _, s := range ordered {
		out = append(out, s.View(false))
	}
	return out
}

// Active counts open sessions (for /healthz).
func (st *Store) Active() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, s := range st.sessions {
		if !s.Closed {
			n++
		}
	}
	return n
}

// Proposal is NextProposal's answer.
type Proposal struct {
	SessionID       string
	Trial           int
	Config          sparksim.Config
	Predicted       float64 // NaN when the model had no estimate
	Source          string
	BudgetRemaining int
	// AbortAfterSeconds is SafetyBound × the measured baseline — the
	// guard-rail the executing client enforces (0 until the baseline is
	// measured). Screening and the trust region keep aborts rare; the
	// guard-rail is what makes the bound a hard invariant.
	AbortAfterSeconds float64
}

// NextProposal returns the configuration the client should execute next.
// While a proposal is unreported, calling again returns the same trial
// without spending budget; once it is reported, the next call spends one
// trial of budget. sc scores candidates against the live model.
func (st *Store) NextProposal(id string, sc Scorer) (Proposal, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.sessions[id]
	if s == nil {
		return Proposal{}, ErrNotFound
	}
	if s.Closed {
		return Proposal{}, ErrClosed
	}
	if p := s.pending(); p != nil {
		return proposalOf(s, p), nil
	}
	if s.trialsUsed() >= s.MaxTrials {
		return Proposal{}, ErrBudgetExhausted
	}
	t := s.propose(sc, st.rng)
	j := t.toJSON()
	if err := st.append(&event{Op: "propose", ID: id, Trial: &j}); err != nil {
		return Proposal{}, err
	}
	s.Trials = append(s.Trials, t)
	return proposalOf(s, &s.Trials[len(s.Trials)-1]), nil
}

func proposalOf(s *Session, t *Trial) Proposal {
	p := Proposal{
		SessionID:       s.ID,
		Trial:           t.Trial,
		Config:          t.Config,
		Predicted:       t.Predicted,
		Source:          t.Source,
		BudgetRemaining: s.MaxTrials - s.trialsUsed(),
	}
	if t.Source != SourceBaseline && s.BaselineSeconds > 0 {
		p.AbortAfterSeconds = s.SafetyBound * s.BaselineSeconds
	}
	return p
}

// applyReport folds one measured result into the session. Pure state
// transition — shared verbatim between the live path and WAL replay, so
// replayed state is bit-identical to what the live path produced. Returns
// the outcome (the live path acts on Promote; replay ignores it).
func (s *Session) applyReport(trial int, seconds float64, failed bool) ReportOutcome {
	t := &s.Trials[trial]
	t.Reported = true
	t.Seconds = seconds
	t.Failed = failed

	if t.Source == SourceBaseline && s.BaselineSeconds == 0 && !failed {
		s.BaselineSeconds = seconds
	}

	// A violation is a reported time strictly past SafetyBound × the
	// measured baseline. A guard-rail abort reports exactly the bound and
	// is therefore not a violation: the trial regressed *to* the bound,
	// never past it. Failures are recorded on the trial (and shrink the
	// trust region below) without being counted here.
	violation := s.BaselineSeconds > 0 && t.Source != SourceBaseline &&
		seconds > s.SafetyBound*s.BaselineSeconds
	if violation {
		s.Violations++
	}

	// Trust-region update, measurements only (part of the pure transition,
	// so replay reproduces the same exploration schedule). A failed or
	// near-bound trial halves the step; a trial at least as fast as the
	// baseline earns a bigger one, capped by the strategy's ceiling.
	if t.Source != SourceBaseline {
		warn := 1 + TrustWarnFrac*(s.SafetyBound-1)
		switch {
		case failed || (s.BaselineSeconds > 0 && seconds > warn*s.BaselineSeconds):
			s.Radius = math.Max(s.Radius*TrustShrink, TrustFloor)
		case !failed && s.BaselineSeconds > 0 && seconds <= s.BaselineSeconds:
			s.Radius = math.Min(s.Radius*TrustGrow, s.Params.Radius)
		}
	}

	improved, promote := false, false
	if !failed {
		if !s.HasBest {
			s.HasBest = true
			s.BestConfig = t.Config
			s.BestSeconds = seconds
			s.BestTrial = trial
		} else if seconds < s.BestSeconds {
			improved = true
			s.BestConfig = t.Config
			s.BestSeconds = seconds
			s.BestTrial = trial
			// Promote only genuine wins over the baseline reference —
			// beating a failed-baseline session's incidental best is not a
			// model-worthy signal until it also beats the safety reference.
			promote = t.Source != SourceBaseline
		}
	}
	t.Improved = improved
	t.Promoted = promote
	if promote {
		s.Promotions++
	}

	return ReportOutcome{
		Improved:        improved,
		Promote:         promote,
		Violation:       violation,
		BestSeconds:     s.BestSeconds,
		BaselineSeconds: s.BaselineSeconds,
		BudgetRemaining: s.MaxTrials - s.trialsUsed(),
		Config:          t.Config,
	}
}

// Report records a trial's measured result, exactly once per trial. The
// caller promotes Outcome.Config through the feedback path when
// Outcome.Promote is true; because the event is WAL-appended before the
// outcome is returned, a crash after promotion replays the report as a
// no-op promote (the feedback WAL already holds the promotion).
func (st *Store) Report(id string, trial int, seconds float64, failed bool) (ReportOutcome, error) {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return ReportOutcome{}, fmt.Errorf("%w: seconds must be a finite value >= 0", errInvalid)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.sessions[id]
	if s == nil {
		return ReportOutcome{}, ErrNotFound
	}
	if s.Closed {
		return ReportOutcome{}, ErrClosed
	}
	if trial < 0 || trial >= len(s.Trials) {
		return ReportOutcome{}, ErrUnknownTrial
	}
	if s.Trials[trial].Reported {
		return ReportOutcome{}, ErrTrialAlreadyReported
	}
	if err := st.append(&event{Op: "report", ID: id, Report: &reportJSON{Trial: trial, Seconds: seconds, Failed: failed}}); err != nil {
		return ReportOutcome{}, err
	}
	return s.applyReport(trial, seconds, failed), nil
}

// CloseSession closes a session (idempotent: closing a closed session
// returns its view unchanged). Closed sessions stay readable.
func (st *Store) CloseSession(id string) (api.Session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.sessions[id]
	if s == nil {
		return api.Session{}, ErrNotFound
	}
	if s.Closed {
		return s.View(true), nil
	}
	at := st.opts.Now()
	if err := st.append(&event{Op: "close", ID: id, At: at}); err != nil {
		return api.Session{}, err
	}
	s.Closed = true
	s.ClosedAt = at
	return s.View(true), nil
}

// Snapshot forces a fold (tests and shutdown).
func (st *Store) Snapshot() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapshotLocked()
}

// Close folds once more and closes the WAL.
func (st *Store) Close() error {
	st.mu.Lock()
	if err := st.snapshotLocked(); err != nil {
		st.opts.Logf("session: final snapshot failed: %v", err)
	}
	w := st.w
	st.w = nil
	st.mu.Unlock()
	if w != nil {
		return w.Close()
	}
	return nil
}
