// Package session implements online tuning sessions with safe exploration
// — the subsystem behind the /v1/tuning/sessions API (DESIGN.md §11).
//
// The adaptive-update loop only *retrains* on whatever feedback arrives;
// it never deliberately explores, so the model cannot escape a locally
// good configuration without a lucky workload shift. A tuning session
// closes that gap for one (app, datasize, cluster): the server proposes
// candidate configurations perturbed around the best known config, the
// client executes them and reports measured times, and winners are
// promoted into the model through the existing feedback → adaptive-update
// path.
//
// Exploration is *safe* by construction:
//
//   - Trial 0 always measures the baseline (the static recommendation), so
//     the safety reference is a measured number, not a model guess.
//   - Every explored candidate is screened by the current model: a
//     proposal whose predicted time exceeds a strategy-scaled fraction of
//     SafetyBound × the baseline is never issued, and neither is anything
//     infeasible or predicted to fail.
//   - Exploration anchors on the best *measured* config, so a mistaken
//     trial cannot drag later proposals with it; a measured violation of
//     the bound is counted and exploration simply continues from the best.
//   - The step size is a measured trust region: every session starts at a
//     small radius, earns larger steps only from trials measured at or
//     below the baseline, and halves its radius on any failed or
//     near-bound trial. The strategy's radius is a ceiling, not the step —
//     the knob cliffs that blow the bound are exactly what the screening
//     model mispredicts, so only measurements govern the step size.
//   - Each session has a hard trial budget; the budget is spent per trial
//     (re-requesting an unreported proposal is idempotent) and accounting
//     is monotone.
//
// The Store persists sessions through the same durability seam as the
// serving model: every mutation is appended to a write-ahead log
// (internal/wal) and the full table is snapshotted atomically, so sessions
// survive a crash-restart (DESIGN.md §9).
package session

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"lite/internal/sparksim"
	"lite/pkg/api"
)

// Strategy names an exploration aggressiveness preset.
type Strategy string

// The three strategies. Conservative barely leaves the baseline's
// neighborhood and only proposes predicted improvements; aggressive roams
// a third of each knob's range and accepts predicted slowdowns up to the
// safety bound's screening margin.
const (
	Conservative Strategy = "conservative"
	Moderate     Strategy = "moderate"
	Aggressive   Strategy = "aggressive"
)

// Params are the knobs a strategy sets.
type Params struct {
	// Radius is the per-knob perturbation radius as a fraction of the
	// knob's legal range, centered on the anchor (best known) config.
	Radius float64
	// MaxTrials is the default trial budget.
	MaxTrials int
	// Candidates is how many perturbations are generated and screened per
	// proposal.
	Candidates int
	// ScreenFrac scales the screening threshold: a candidate is proposed
	// only if its predicted time ≤ ScreenFrac × SafetyBound × baseline.
	// Values well below 1 leave headroom for model error, which is what
	// keeps *measured* trials inside the bound.
	ScreenFrac float64
}

// ParamsFor returns a strategy's preset. Unknown strategies report ok =
// false.
func ParamsFor(s Strategy) (Params, bool) {
	switch s {
	case Conservative:
		return Params{Radius: 0.06, MaxTrials: 8, Candidates: 16, ScreenFrac: 0.67}, true
	case Moderate:
		return Params{Radius: 0.15, MaxTrials: 16, Candidates: 24, ScreenFrac: 0.75}, true
	case Aggressive:
		return Params{Radius: 0.30, MaxTrials: 32, Candidates: 32, ScreenFrac: 0.85}, true
	}
	return Params{}, false
}

// DefaultSafetyBound is the maximum tolerated slowdown versus the measured
// baseline when the caller does not set one: no trial should run more than
// 50% slower than the configuration the session started from.
const DefaultSafetyBound = 1.5

// Trust-region constants. The strategy's Radius is a *ceiling*, not the
// working step size: every session starts at TrustStart (empirically safe
// for every workload family), earns larger steps with measured-safe
// trials, and loses them the moment a measurement drifts toward the
// bound. Model screening alone cannot prevent violations — the knob
// cliffs that blow the bound are exactly the ones the model mispredicts —
// so the radius is governed by measurements, which cannot lie.
const (
	// TrustStart is the initial exploration radius (capped by the
	// strategy's Radius when that is smaller).
	TrustStart = 0.06
	// TrustFloor is the smallest the radius shrinks to.
	TrustFloor = 0.02
	// TrustGrow multiplies the radius after a trial measured at or below
	// the baseline (the step was safe AND useful).
	TrustGrow = 1.25
	// TrustShrink multiplies the radius after a failed trial or one whose
	// slowdown crossed TrustWarnFrac of the way from 1 to the bound.
	TrustShrink = 0.5
	// TrustWarnFrac positions the early-warning threshold: with bound B,
	// shrink once measured/baseline exceeds 1 + TrustWarnFrac×(B-1) —
	// halfway to the bound by default, so the radius backs off before a
	// violation, not after.
	TrustWarnFrac = 0.5
)

// Typed failures; the HTTP layer maps each to a stable api.Code*.
var (
	ErrNotFound             = errors.New("session: not found")
	ErrClosed               = errors.New("session: closed")
	ErrBudgetExhausted      = errors.New("session: trial budget exhausted")
	ErrTrialAlreadyReported = errors.New("session: trial already reported")
	ErrUnknownTrial         = errors.New("session: unknown trial")
)

// Scorer is the model view a proposal pass needs: a predicted execution
// time for a candidate and a feasibility check for the session's
// environment. internal/serve backs it with the live snapshot's NECS
// scorer; experiments back it with a plain tuner.
type Scorer interface {
	// Score returns the predicted execution seconds (NaN when the model
	// cannot score the candidate).
	Score(cfg sparksim.Config) float64
	// Feasible reports whether the candidate can be allocated at all.
	Feasible(cfg sparksim.Config) bool
}

// Trial is one proposed (and possibly reported) trial.
type Trial struct {
	Trial     int             `json:"trial"`
	Config    sparksim.Config `json:"config"`
	Predicted float64         `json:"predicted"` // NaN marshals as a sentinel; see trialJSON
	Source    string          `json:"source"`
	Reported  bool            `json:"reported"`
	Seconds   float64         `json:"seconds"`
	Failed    bool            `json:"failed"`
	Improved  bool            `json:"improved"`
	Promoted  bool            `json:"promoted"`
}

// Proposal sources.
const (
	SourceBaseline = "baseline"
	SourceExplore  = "explore"
	SourceBest     = "best"
)

// Session is the mutable state of one tuning session. It is owned by a
// Store; callers only ever see copies (views).
type Session struct {
	ID       string
	App      string
	SizeMB   float64
	Cluster  string
	Strategy Strategy
	Params   Params

	SafetyBound float64
	MaxTrials   int

	// Radius is the current trust-region step size (fraction of each
	// knob's range). It starts at min(TrustStart, Params.Radius) and is
	// adapted by applyReport from measured outcomes only.
	Radius float64

	BaselineConfig    sparksim.Config
	BaselinePredicted float64 // NaN when the static tier had no estimate
	BaselineSeconds   float64 // 0 until trial 0 reports

	BestConfig  sparksim.Config
	BestSeconds float64
	BestTrial   int
	HasBest     bool

	Trials     []Trial
	Violations int
	Promotions int

	Closed    bool
	CreatedAt time.Time
	ClosedAt  time.Time
}

// trialsUsed is the budget spent: every issued trial counts, reported or
// not.
func (s *Session) trialsUsed() int { return len(s.Trials) }

// pending returns the newest unreported trial, if any — the idempotent
// re-proposal target.
func (s *Session) pending() *Trial {
	if n := len(s.Trials); n > 0 && !s.Trials[n-1].Reported {
		return &s.Trials[n-1]
	}
	return nil
}

// anchor is the config exploration perturbs around: the best measured
// config once one exists, the baseline before that.
func (s *Session) anchor() sparksim.Config {
	if s.HasBest {
		return s.BestConfig
	}
	return s.BaselineConfig
}

// safetyRef is the reference time the bound multiplies: the measured
// baseline once trial 0 reported, the model's baseline estimate before
// that (and +Inf when even that is unknown — screening then only filters
// failures).
func (s *Session) safetyRef() float64 {
	if s.BaselineSeconds > 0 {
		return s.BaselineSeconds
	}
	if !math.IsNaN(s.BaselinePredicted) && s.BaselinePredicted > 0 {
		return s.BaselinePredicted
	}
	return math.Inf(1)
}

// propose picks the next trial's configuration. Trial 0 is always the
// baseline. Later trials generate Params.Candidates perturbations of the
// anchor within the current trust radius, drop anything already tried, infeasible,
// non-finite, predicted to fail, or predicted slower than
// ScreenFrac × SafetyBound × safetyRef, and take the best predicted
// survivor. When nothing survives, the radius is halved once and the pass
// retried; if still nothing, the anchor itself is re-proposed (source
// "best") — a safe no-op trial rather than an unsafe guess.
func (s *Session) propose(sc Scorer, rng *rand.Rand) Trial {
	if len(s.Trials) == 0 {
		return Trial{
			Trial:     0,
			Config:    s.BaselineConfig,
			Predicted: s.BaselinePredicted,
			Source:    SourceBaseline,
		}
	}
	tried := make(map[sparksim.Config]bool, len(s.Trials))
	for i := range s.Trials {
		tried[s.Trials[i].Config] = true
	}
	limit := s.Params.ScreenFrac * s.SafetyBound * s.safetyRef()
	for _, radius := range []float64{s.Radius, s.Radius / 2} {
		best, bestPred, found := sparksim.Config{}, math.Inf(1), false
		for i := 0; i < s.Params.Candidates; i++ {
			cand := perturb(s.anchor(), radius, rng)
			if tried[cand] || !sc.Feasible(cand) {
				continue
			}
			p := sc.Score(cand)
			if math.IsNaN(p) || math.IsInf(p, 0) || p >= sparksim.FailCap || p > limit {
				continue
			}
			if p < bestPred {
				best, bestPred, found = cand, p, true
			}
		}
		if found {
			return Trial{
				Trial:     len(s.Trials),
				Config:    best,
				Predicted: bestPred,
				Source:    SourceExplore,
			}
		}
	}
	anchor := s.anchor()
	return Trial{
		Trial:     len(s.Trials),
		Config:    anchor,
		Predicted: sc.Score(anchor),
		Source:    SourceBest,
	}
}

// perturb draws one candidate around anchor: each knob moves uniformly
// within ±radius × its range, then the whole config is clamped back into
// the legal domain (integer and boolean knobs round).
func perturb(anchor sparksim.Config, radius float64, rng *rand.Rand) sparksim.Config {
	c := anchor
	for i, k := range sparksim.Knobs {
		span := (k.Max - k.Min) * radius
		c[i] += (rng.Float64()*2 - 1) * span
	}
	return c.Clamp()
}

// ReportOutcome is what a reported result changed.
type ReportOutcome struct {
	Improved bool
	// Promote is true when the caller should feed the trial's config into
	// the model's feedback path — exactly once per winning trial.
	Promote bool
	// Violation is true when the measured time exceeded
	// SafetyBound × the measured baseline.
	Violation       bool
	BestSeconds     float64
	BaselineSeconds float64
	BudgetRemaining int
	Config          sparksim.Config
}

// ID format: <app>.<sizeMB>.<cluster>.<nonce>. The identifying fields are
// embedded so a fleet router can derive the consistent-hash routing key
// from the ID alone — every later call on the session lands on the shard
// that owns its (app, datasize, cluster) arc without a lookup table.

// FormatID builds a session ID.
func FormatID(app string, sizeMB float64, cluster string, nonce uint64) string {
	return fmt.Sprintf("%s.%s.%s.%08x", app, strconv.FormatFloat(sizeMB, 'g', -1, 64), cluster, nonce)
}

// ParseID recovers (app, sizeMB, cluster) from a session ID. The size may
// itself contain a dot, so parsing is anchored on the ends: the last
// segment is the nonce, the second-to-last the cluster, the first the app
// (app names must not contain dots — Create enforces it), and whatever
// remains in between is the size.
func ParseID(id string) (app string, sizeMB float64, cluster string, err error) {
	parts := strings.Split(id, ".")
	if len(parts) < 4 {
		return "", 0, "", fmt.Errorf("session: malformed id %q", id)
	}
	app = parts[0]
	cluster = parts[len(parts)-2]
	size := strings.Join(parts[1:len(parts)-2], ".")
	sizeMB, err = strconv.ParseFloat(size, 64)
	if err != nil {
		return "", 0, "", fmt.Errorf("session: malformed size in id %q", id)
	}
	return app, sizeMB, cluster, nil
}

// View renders a session as its API resource representation. The copy is
// deep: callers can hold it across store mutations.
func (s *Session) View(includeTrials bool) api.Session {
	v := api.Session{
		ID:              s.ID,
		App:             s.App,
		SizeMB:          s.SizeMB,
		Cluster:         s.Cluster,
		Strategy:        string(s.Strategy),
		State:           "active",
		SafetyBound:     s.SafetyBound,
		MaxTrials:       s.MaxTrials,
		TrialsUsed:      s.trialsUsed(),
		Violations:      s.Violations,
		Promotions:      s.Promotions,
		BaselineConfig:  ConfigMap(s.BaselineConfig),
		BaselineSeconds: s.BaselineSeconds,
		CreatedAt:       s.CreatedAt.UTC().Format(time.RFC3339Nano),
	}
	if s.Closed {
		v.State = "closed"
		v.ClosedAt = s.ClosedAt.UTC().Format(time.RFC3339Nano)
	}
	if !math.IsNaN(s.BaselinePredicted) {
		p := s.BaselinePredicted
		v.BaselinePredictedSeconds = &p
	}
	if s.HasBest {
		v.BestConfig = ConfigMap(s.BestConfig)
		v.BestSeconds = s.BestSeconds
		v.BestTrial = s.BestTrial
	}
	if includeTrials {
		v.Trials = make([]api.SessionTrial, 0, len(s.Trials))
		for i := range s.Trials {
			v.Trials = append(v.Trials, s.Trials[i].view())
		}
	}
	return v
}

func (t *Trial) view() api.SessionTrial {
	v := api.SessionTrial{
		Trial:    t.Trial,
		Config:   ConfigMap(t.Config),
		Source:   t.Source,
		Reported: t.Reported,
		Seconds:  t.Seconds,
		Failed:   t.Failed,
		Improved: t.Improved,
		Promoted: t.Promoted,
	}
	if !math.IsNaN(t.Predicted) && !math.IsInf(t.Predicted, 0) {
		p := t.Predicted
		v.PredictedSeconds = &p
	}
	return v
}

// ConfigMap renders a Config as the knob-name → value map the wire types
// use.
func ConfigMap(cfg sparksim.Config) map[string]float64 {
	out := make(map[string]float64, sparksim.NumKnobs)
	for i, k := range sparksim.Knobs {
		out[k.Name] = cfg[i]
	}
	return out
}
