package forest

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func makeData(n int, f func([]float64) float64, rng *rand.Rand) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = f(x[i])
	}
	return x, y
}

func TestTreeFitsConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := makeData(50, func([]float64) float64 { return 3.5 }, rng)
	tree := FitTree(x, y, TreeParams{}, rng)
	if got := tree.Predict([]float64{0.5, 0.5, 0.5}); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("constant prediction = %v", got)
	}
	if tree.Depth() != 0 {
		t.Fatalf("constant target should give a stump, depth %d", tree.Depth())
	}
}

func TestTreeFitsStepFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := makeData(200, func(v []float64) float64 {
		if v[0] > 0.5 {
			return 10
		}
		return -10
	}, rng)
	tree := FitTree(x, y, TreeParams{MaxDepth: 3}, rng)
	if p := tree.Predict([]float64{0.9, 0, 0}); math.Abs(p-10) > 0.5 {
		t.Fatalf("right side = %v", p)
	}
	if p := tree.Predict([]float64{0.1, 0, 0}); math.Abs(p+10) > 0.5 {
		t.Fatalf("left side = %v", p)
	}
}

func TestTreeRespectsMinSamplesLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := makeData(40, func(v []float64) float64 { return v[0] }, rng)
	tree := FitTree(x, y, TreeParams{MaxDepth: 20, MinSamplesLeaf: 20}, rng)
	if tree.Depth() > 1 {
		t.Fatalf("min-leaf constraint violated, depth %d", tree.Depth())
	}
}

func TestTreePanicsOnEmptyData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitTree(nil, nil, TreeParams{}, rand.New(rand.NewSource(1)))
}

func TestForestRegressionAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	target := func(v []float64) float64 { return 3*v[0] + v[1]*v[1] - 2*v[2] }
	x, y := makeData(400, target, rng)
	f := FitForest(x, y, ForestParams{NumTrees: 40, Tree: TreeParams{MaxDepth: 10}}, rng)
	var mse float64
	n := 100
	for i := 0; i < n; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		d := f.Predict(p) - target(p)
		mse += d * d
	}
	mse /= float64(n)
	if mse > 0.1 {
		t.Fatalf("forest MSE too high: %v", mse)
	}
}

func TestForestBetterThanSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	target := func(v []float64) float64 { return math.Sin(6*v[0]) + v[1] }
	x := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = target(x[i]) + 0.3*rng.NormFloat64()
	}
	tree := FitTree(x, y, TreeParams{MaxDepth: 14}, rng)
	f := FitForest(x, y, ForestParams{NumTrees: 50, Tree: TreeParams{MaxDepth: 14}}, rng)
	var mseTree, mseForest float64
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		dt := tree.Predict(p) - target(p)
		df := f.Predict(p) - target(p)
		mseTree += dt * dt
		mseForest += df * df
	}
	if mseForest >= mseTree {
		t.Fatalf("bagging should reduce variance: forest %v vs tree %v", mseForest, mseTree)
	}
}

func TestPredictStdReflectsUncertainty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Data only in [0,0.5]; predictions far from data should disagree more.
	x := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = []float64{rng.Float64() * 0.5, rng.Float64(), rng.Float64()}
		y[i] = 5 * x[i][0]
	}
	f := FitForest(x, y, ForestParams{NumTrees: 30, Tree: TreeParams{MaxDepth: 8}}, rng)
	_, stdIn := f.PredictStd([]float64{0.25, 0.5, 0.5})
	mu, _ := f.PredictStd([]float64{0.25, 0.5, 0.5})
	if math.Abs(mu-1.25) > 0.5 {
		t.Fatalf("in-distribution mean = %v, want ≈1.25", mu)
	}
	if stdIn < 0 {
		t.Fatalf("negative std")
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	x, y := makeData(100, func(v []float64) float64 { return v[0] }, rand.New(rand.NewSource(7)))
	f1 := FitForest(x, y, ForestParams{NumTrees: 10}, rand.New(rand.NewSource(42)))
	f2 := FitForest(x, y, ForestParams{NumTrees: 10}, rand.New(rand.NewSource(42)))
	p := []float64{0.3, 0.3, 0.3}
	if f1.Predict(p) != f2.Predict(p) {
		t.Fatal("forest not deterministic under fixed seed")
	}
}

func TestForestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y := makeData(150, func(v []float64) float64 { return 2*v[0] - v[1] + v[2]*v[2] }, rng)
	f := FitForest(x, y, ForestParams{NumTrees: 12, Tree: TreeParams{MaxDepth: 8}}, rng)
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var g Forest
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if f.Predict(p) != g.Predict(p) {
			t.Fatal("prediction changed across JSON round trip")
		}
	}
}

func TestForestUnmarshalRejectsEmpty(t *testing.T) {
	var g Forest
	if err := json.Unmarshal([]byte("[]"), &g); err == nil {
		t.Fatal("expected error for empty forest")
	}
}

func TestTreeUnmarshalRejectsCorrupt(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{"feature":[0],"thresh":[1],"left":[5],"right":[6],"value":[0],"leaf":[false]}`), &tr); err == nil {
		t.Fatal("expected error for out-of-range children")
	}
}
