// Package forest implements CART regression trees and Random Forest
// Regression. LITE's Adaptive Candidate Generation (paper §IV-A) uses an
// RFR per knob to map (datasize, application) to the center of the
// promising search region; the "RFR" competitor of Table VIII uses the same
// model as a point-prediction tuner.
package forest

import (
	"math"
	"math/rand"
	"sort"
)

// TreeParams controls CART growth.
type TreeParams struct {
	MaxDepth       int
	MinSamplesLeaf int
	// MaxFeatures is the number of features examined per split; 0 means
	// all features (plain CART), otherwise a random subset (forest mode).
	MaxFeatures int
}

// node is one vertex of a regression tree.
type node struct {
	feature  int
	thresh   float64
	left     *node
	right    *node
	value    float64
	leaf     bool
	nSamples int
}

// Tree is a CART regression tree.
type Tree struct {
	root   *node
	params TreeParams
}

// FitTree grows a regression tree on X (rows of features) and y.
func FitTree(x [][]float64, y []float64, params TreeParams, rng *rand.Rand) *Tree {
	if len(x) == 0 || len(x) != len(y) {
		panic("forest: empty or mismatched training data")
	}
	if params.MaxDepth <= 0 {
		params.MaxDepth = 12
	}
	if params.MinSamplesLeaf <= 0 {
		params.MinSamplesLeaf = 1
	}
	t := &Tree{params: params}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(x, y, idx, 0, rng)
	return t
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func (t *Tree) grow(x [][]float64, y []float64, idx []int, depth int, rng *rand.Rand) *node {
	n := &node{value: mean(y, idx), nSamples: len(idx)}
	if depth >= t.params.MaxDepth || len(idx) < 2*t.params.MinSamplesLeaf {
		n.leaf = true
		return n
	}
	parentSSE := sse(y, idx)
	if parentSSE < 1e-12 {
		n.leaf = true
		return n
	}

	nf := len(x[0])
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if t.params.MaxFeatures > 0 && t.params.MaxFeatures < nf {
		rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.params.MaxFeatures]
	}

	bestGain := 0.0
	bestFeat := -1
	bestThresh := 0.0
	sorted := make([]int, len(idx))
	for _, f := range features {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return x[sorted[a]][f] < x[sorted[b]][f] })
		// Prefix sums for O(n) split evaluation.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, i := range sorted {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		for k := 0; k < len(sorted)-1; k++ {
			i := sorted[k]
			sumL += y[i]
			sumSqL += y[i] * y[i]
			sumR -= y[i]
			sumSqR -= y[i] * y[i]
			if x[sorted[k]][f] == x[sorted[k+1]][f] {
				continue
			}
			nL := float64(k + 1)
			nR := float64(len(sorted) - k - 1)
			if int(nL) < t.params.MinSamplesLeaf || int(nR) < t.params.MinSamplesLeaf {
				continue
			}
			sseL := sumSqL - sumL*sumL/nL
			sseR := sumSqR - sumR*sumR/nR
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (x[sorted[k]][f] + x[sorted[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		n.leaf = true
		return n
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		n.leaf = true
		return n
	}
	n.feature = bestFeat
	n.thresh = bestThresh
	n.left = t.grow(x, y, leftIdx, depth+1, rng)
	n.right = t.grow(x, y, rightIdx, depth+1, rng)
	return n
}

// Predict returns the tree's estimate for one feature row.
func (t *Tree) Predict(row []float64) float64 {
	n := t.root
	for !n.leaf {
		if row[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the maximum depth of the tree.
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Forest is a bagged ensemble of regression trees.
type Forest struct {
	Trees []*Tree
}

// ForestParams controls random-forest training.
type ForestParams struct {
	NumTrees int
	Tree     TreeParams
	// SubsampleRatio is the bootstrap fraction per tree (default 1.0 with
	// replacement).
	SubsampleRatio float64
}

// FitForest trains a random forest regressor.
func FitForest(x [][]float64, y []float64, params ForestParams, rng *rand.Rand) *Forest {
	if params.NumTrees <= 0 {
		params.NumTrees = 50
	}
	if params.SubsampleRatio <= 0 {
		params.SubsampleRatio = 1.0
	}
	if params.Tree.MaxFeatures == 0 && len(x) > 0 {
		// Default to the sqrt(features) rule.
		params.Tree.MaxFeatures = int(math.Max(1, math.Sqrt(float64(len(x[0])))))
	}
	f := &Forest{}
	n := len(x)
	m := int(params.SubsampleRatio * float64(n))
	if m < 1 {
		m = 1
	}
	for t := 0; t < params.NumTrees; t++ {
		bx := make([][]float64, m)
		by := make([]float64, m)
		for i := 0; i < m; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		f.Trees = append(f.Trees, FitTree(bx, by, params.Tree, rng))
	}
	return f
}

// Predict averages the trees' estimates.
func (f *Forest) Predict(row []float64) float64 {
	var s float64
	for _, t := range f.Trees {
		s += t.Predict(row)
	}
	return s / float64(len(f.Trees))
}

// PredictStd returns the mean and standard deviation across trees, a
// cheap uncertainty estimate.
func (f *Forest) PredictStd(row []float64) (mu, std float64) {
	preds := make([]float64, len(f.Trees))
	for i, t := range f.Trees {
		preds[i] = t.Predict(row)
		mu += preds[i]
	}
	mu /= float64(len(preds))
	for _, p := range preds {
		d := p - mu
		std += d * d
	}
	std = math.Sqrt(std / float64(len(preds)))
	return mu, std
}
