package forest

import (
	"encoding/json"
	"fmt"
)

// flatTree is the serialized form of a Tree: nodes flattened into parallel
// arrays, children referenced by index (−1 for none).
type flatTree struct {
	Feature []int     `json:"feature"`
	Thresh  []float64 `json:"thresh"`
	Left    []int     `json:"left"`
	Right   []int     `json:"right"`
	Value   []float64 `json:"value"`
	Leaf    []bool    `json:"leaf"`
}

func flatten(t *Tree) *flatTree {
	ft := &flatTree{}
	var walk func(n *node) int
	walk = func(n *node) int {
		id := len(ft.Leaf)
		ft.Feature = append(ft.Feature, n.feature)
		ft.Thresh = append(ft.Thresh, n.thresh)
		ft.Value = append(ft.Value, n.value)
		ft.Leaf = append(ft.Leaf, n.leaf)
		ft.Left = append(ft.Left, -1)
		ft.Right = append(ft.Right, -1)
		if !n.leaf {
			ft.Left[id] = walk(n.left)
			ft.Right[id] = walk(n.right)
		}
		return id
	}
	walk(t.root)
	return ft
}

func unflatten(ft *flatTree) (*Tree, error) {
	n := len(ft.Leaf)
	if n == 0 || len(ft.Feature) != n || len(ft.Thresh) != n || len(ft.Left) != n || len(ft.Right) != n || len(ft.Value) != n {
		return nil, fmt.Errorf("forest: inconsistent serialized tree")
	}
	nodes := make([]node, n)
	for i := 0; i < n; i++ {
		nodes[i] = node{feature: ft.Feature[i], thresh: ft.Thresh[i], value: ft.Value[i], leaf: ft.Leaf[i]}
		if !ft.Leaf[i] {
			l, r := ft.Left[i], ft.Right[i]
			if l < 0 || l >= n || r < 0 || r >= n {
				return nil, fmt.Errorf("forest: child index out of range")
			}
			nodes[i].left = &nodes[l]
			nodes[i].right = &nodes[r]
		}
	}
	return &Tree{root: &nodes[0]}, nil
}

// MarshalJSON serializes the tree.
func (t *Tree) MarshalJSON() ([]byte, error) { return json.Marshal(flatten(t)) }

// UnmarshalJSON deserializes the tree.
func (t *Tree) UnmarshalJSON(b []byte) error {
	var ft flatTree
	if err := json.Unmarshal(b, &ft); err != nil {
		return err
	}
	nt, err := unflatten(&ft)
	if err != nil {
		return err
	}
	t.root = nt.root
	return nil
}

// MarshalJSON serializes the forest as an array of trees.
func (f *Forest) MarshalJSON() ([]byte, error) { return json.Marshal(f.Trees) }

// UnmarshalJSON deserializes the forest.
func (f *Forest) UnmarshalJSON(b []byte) error {
	var trees []*Tree
	if err := json.Unmarshal(b, &trees); err != nil {
		return err
	}
	if len(trees) == 0 {
		return fmt.Errorf("forest: empty serialized forest")
	}
	f.Trees = trees
	return nil
}
