package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lite/internal/serve"
	"lite/internal/session"
	"lite/pkg/api"
)

// fakeShard is an in-process stand-in for a liteserve shard: it serves the
// JSON /healthz contract, echoes /recommend and /feedback, and applies
// /admin/flip by adopting the requested generation.
type fakeShard struct {
	id         string
	createdAt  string // RFC3339 stamp its fake session list advertises
	srv        *httptest.Server
	gen        atomic.Uint64
	healthy    atomic.Bool
	recs       atomic.Int64
	feeds      atomic.Int64
	sessionOps atomic.Int64
	lastFlip   atomic.Value // serve.FlipRequest
}

func newFakeShard(t *testing.T, id string) *fakeShard {
	t.Helper()
	f := &fakeShard{id: id, createdAt: fmt.Sprintf("2026-01-01T00:00:0%cZ", id[len(id)-1])}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(serve.HealthResponse{Status: "ok", Generation: f.gen.Load(), Follower: id != "shard0"})
	})
	mux.HandleFunc("/v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		f.recs.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"served_by": f.id, "generation": f.gen.Load()})
	})
	mux.HandleFunc("/v1/feedback", func(w http.ResponseWriter, r *http.Request) {
		f.feeds.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"queued": true})
	})
	mux.HandleFunc("/v1/admin/flip", func(w http.ResponseWriter, r *http.Request) {
		var req serve.FlipRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.lastFlip.Store(req)
		f.gen.Store(req.Generation)
		json.NewEncoder(w).Encode(serve.FlipResponse{Generation: req.Generation})
	})
	// Session endpoints: enough of the /v1/tuning/sessions contract for the
	// router's placement, fan-out list and promotion-tee paths.
	mux.HandleFunc("POST /v1/tuning/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req api.CreateSessionRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(api.Session{
			ID:  session.FormatID(req.App, req.SizeMB, req.Cluster, 0xabc),
			App: req.App, SizeMB: req.SizeMB, Cluster: req.Cluster, State: "active",
		})
	})
	mux.HandleFunc("GET /v1/tuning/sessions", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.SessionListResponse{Sessions: []api.Session{
			{ID: f.id + "-sess", CreatedAt: f.createdAt},
		}})
	})
	mux.HandleFunc("/v1/tuning/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.sessionOps.Add(1)
		json.NewEncoder(w).Encode(api.Session{ID: r.PathValue("id"), State: "active"})
	})
	mux.HandleFunc("POST /v1/tuning/sessions/{id}/proposal", func(w http.ResponseWriter, r *http.Request) {
		f.sessionOps.Add(1)
		json.NewEncoder(w).Encode(api.ProposalResponse{SessionID: r.PathValue("id"), Trial: 1})
	})
	mux.HandleFunc("POST /v1/tuning/sessions/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		f.sessionOps.Add(1)
		json.NewEncoder(w).Encode(api.ReportResultResponse{
			SessionID: r.PathValue("id"), Trial: 1, Improved: true, Promoted: true,
			Promotion: &api.FeedbackRequest{App: "WordCount", SizeMB: 512, Cluster: "C"},
		})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func recommendBody(app, cluster string, sizeMB float64) []byte {
	b, _ := json.Marshal(map[string]any{"app": app, "size_mb": sizeMB, "cluster": cluster})
	return b
}

// testBodies is a spread of real (app, size, cluster) keys so requests
// land across several shards.
func testBodies() [][]byte {
	apps := []string{"WordCount", "KMeans", "PageRank", "TeraSort"}
	clusters := []string{"A", "B", "C"}
	sizes := []float64{256, 1024, 4096}
	var out [][]byte
	for i, app := range apps {
		for j, cl := range clusters {
			out = append(out, recommendBody(app, cl, sizes[(i+j)%len(sizes)]))
		}
	}
	return out
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// TestRoutingKeyUnknownAppPlacement: an app absent from the workload
// registry must still hash to a proper (app, size bucket, env fingerprint)
// key — not the raw-field fallback — so unseen-app traffic served by the
// retrieval tier keeps one shard's cache hot instead of scattering.
func TestRoutingKeyUnknownAppPlacement(t *testing.T) {
	k1 := routingKey(recommendBody("NeverSeenApp", "C", 900))
	k2 := routingKey(recommendBody("NeverSeenApp", "C", 1000))
	if k1 != k2 {
		t.Fatalf("same-bucket sizes routed apart: %q vs %q", k1, k2)
	}
	want, err := serve.RoutingKey("NeverSeenApp", 900, "C")
	if err != nil {
		t.Fatalf("serve.RoutingKey: %v", err)
	}
	if k1 != want {
		t.Fatalf("router key %q diverges from serve.RoutingKey %q", k1, want)
	}
	// The raw-field fallback remains for bodies with no resolvable cluster.
	if got := routingKey(recommendBody("NeverSeenApp", "Nowhere", 900)); got == k1 {
		t.Fatal("unknown-cluster body must not share the placed key")
	}
}

// TestRouterConsistentPlacement: the same body always lands on the same
// shard, and the key spread uses more than one shard.
func TestRouterConsistentPlacement(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard0"), newFakeShard(t, "shard1"), newFakeShard(t, "shard2")}
	rt := NewRouter(Options{})
	for _, f := range shards {
		rt.AddShard(f.id, f.srv.URL)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	used := map[string]bool{}
	for _, body := range testBodies() {
		var owner string
		for rep := 0; rep < 5; rep++ {
			resp := post(t, front.URL+"/recommend", body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			got := resp.Header.Get("X-Lite-Shard")
			if owner == "" {
				owner = got
			} else if got != owner {
				t.Fatalf("body %s flapped %s -> %s", body, owner, got)
			}
		}
		used[owner] = true
	}
	if len(used) < 2 {
		t.Fatalf("all keys landed on one shard: %v", used)
	}
}

// TestRouterFailoverUnderTraffic kills one shard under concurrent load and
// requires zero client-visible errors: in-window requests re-route to ring
// successors on connection failure, and the health checker ejects the dead
// shard so later requests never try it.
func TestRouterFailoverUnderTraffic(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard0"), newFakeShard(t, "shard1"), newFakeShard(t, "shard2")}
	rt := NewRouter(Options{
		ProbeInterval:     10 * time.Millisecond,
		ProbeTimeout:      200 * time.Millisecond,
		FailAfter:         2,
		RecoverAfter:      2,
		ReadmitBackoffMin: 10 * time.Millisecond,
	})
	for _, f := range shards {
		rt.AddShard(f.id, f.srv.URL)
	}
	rt.Start()
	defer rt.Stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	bodies := testBodies()
	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(front.URL+"/recommend", "application/json",
					bytes.NewReader(bodies[(w+i)%len(bodies)]))
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	victim := shards[1]
	victim.srv.CloseClientConnections()
	victim.srv.Close()

	// Let the health checker notice and traffic continue through it.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client-visible failures across the shard kill, want 0 (successor re-route)", n)
	}
	if got := rt.Metrics().Counter("lite_fleet_ejections_total").Value(); got < 1 {
		t.Fatalf("dead shard never ejected (ejections=%d)", got)
	}

	// After the window the dead shard is out of the ring: its arc belongs
	// to successors and no request touches it.
	preRecs := victim.recs.Load()
	for _, body := range bodies {
		resp := post(t, front.URL+"/recommend", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-window request failed: %d", resp.StatusCode)
		}
		if sh := resp.Header.Get("X-Lite-Shard"); sh == victim.id {
			t.Fatalf("request routed to dead shard %s after ejection", sh)
		}
	}
	if victim.recs.Load() != preRecs {
		t.Fatal("dead shard served requests after ejection")
	}
}

// TestRouterEjectAndReadmit: a shard whose /healthz starts failing is
// ejected after FailAfter probes; once healthy again it is re-admitted
// after its backoff plus RecoverAfter good probes, and its old arc comes
// back to it (ring ownership is a pure function of membership).
func TestRouterEjectAndReadmit(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard0"), newFakeShard(t, "shard1"), newFakeShard(t, "shard2")}
	rt := NewRouter(Options{
		ProbeInterval:     10 * time.Millisecond,
		ProbeTimeout:      200 * time.Millisecond,
		FailAfter:         2,
		RecoverAfter:      2,
		ReadmitBackoffMin: 20 * time.Millisecond,
	})
	for _, f := range shards {
		rt.AddShard(f.id, f.srv.URL)
	}
	rt.Start()
	defer rt.Stop()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}
	upGauge := rt.Metrics().Gauge(fmt.Sprintf("lite_fleet_shard_up{shard=%q}", "shard2"))

	shards[2].healthy.Store(false)
	waitFor("ejection", func() bool { return upGauge.Value() == 0 })
	if rt.ring.Len() != 2 {
		t.Fatalf("ring has %d members after ejection, want 2", rt.ring.Len())
	}

	shards[2].healthy.Store(true)
	waitFor("readmission", func() bool { return upGauge.Value() == 1 })
	if rt.ring.Len() != 3 {
		t.Fatalf("ring has %d members after readmission, want 3", rt.ring.Len())
	}
	if got := rt.Metrics().Counter("lite_fleet_readmissions_total").Value(); got < 1 {
		t.Fatalf("readmissions counter = %d, want >= 1", got)
	}
}

// TestCoordinatorFlipsFleet: when the trainer's generation advances, every
// other live shard is flipped to the trainer's published snapshot at that
// generation, and the fleet /healthz converges to one generation.
func TestCoordinatorFlipsFleet(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard0"), newFakeShard(t, "shard1"), newFakeShard(t, "shard2")}
	rt := NewRouter(Options{
		ProbeInterval:   10 * time.Millisecond,
		TrainerID:       "shard0",
		TrainerSnapshot: "/fleet/shard0/snapshot.json",
	})
	for _, f := range shards {
		rt.AddShard(f.id, f.srv.URL)
	}
	rt.Start()
	defer rt.Stop()

	shards[0].gen.Store(3) // the trainer publishes generation 3

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if shards[1].gen.Load() == 3 && shards[2].gen.Load() == 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if shards[1].gen.Load() != 3 || shards[2].gen.Load() != 3 {
		t.Fatalf("followers at generations %d/%d, want 3/3", shards[1].gen.Load(), shards[2].gen.Load())
	}
	flip, _ := shards[1].lastFlip.Load().(serve.FlipRequest)
	if flip.SnapshotPath != "/fleet/shard0/snapshot.json" || flip.Generation != 3 {
		t.Fatalf("flip request = %+v, want trainer snapshot at generation 3", flip)
	}

	// The fleet /healthz reports one generation across live shards.
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(front.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var fh FleetHealth
		json.NewDecoder(resp.Body).Decode(&fh)
		resp.Body.Close()
		ok := fh.Status == "ok" && fh.Generation == 3 && len(fh.Shards) == 3
		for _, sh := range fh.Shards {
			ok = ok && sh.Up && sh.Generation == 3
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet health never converged to generation 3: %+v", fh)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFeedbackTee: feedback whose key hashes to a non-trainer shard is
// acked by that owner and teed asynchronously to the trainer, so the
// trainer's update loop sees the full feedback stream.
func TestFeedbackTee(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard0"), newFakeShard(t, "shard1"), newFakeShard(t, "shard2")}
	rt := NewRouter(Options{
		ProbeInterval: 10 * time.Millisecond,
		TrainerID:     "shard0",
	})
	for _, f := range shards {
		rt.AddShard(f.id, f.srv.URL)
	}
	rt.Start()
	defer rt.Stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Find a body owned by a non-trainer shard.
	var body []byte
	var owner string
	for _, b := range testBodies() {
		resp := post(t, front.URL+"/feedback", b)
		resp.Body.Close()
		if sh := resp.Header.Get("X-Lite-Shard"); sh != "shard0" {
			body, owner = b, sh
			break
		}
	}
	if body == nil {
		t.Fatal("no test key hashed off the trainer")
	}

	trainerBefore := shards[0].feeds.Load()
	for i := 0; i < 5; i++ {
		resp := post(t, front.URL+"/feedback", body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Lite-Shard"); got != owner {
			t.Fatalf("feedback owner flapped %s -> %s", owner, got)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for shards[0].feeds.Load() < trainerBefore+5 {
		if time.Now().After(deadline) {
			t.Fatalf("trainer received %d teed feedbacks, want %d",
				shards[0].feeds.Load()-trainerBefore, 5)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := rt.Metrics().Counter("lite_fleet_feedback_teed_total").Value(); got < 5 {
		t.Fatalf("teed counter = %d, want >= 5", got)
	}
}

// TestSessionRoutingAndPromotionTee: session sub-resource requests are
// placed by the routing key embedded in the session ID — always on the
// shard that created the session — and a promotion in a follower's result
// response is teed to the trainer's feedback endpoint. The fleet-wide GET
// merges every shard's list in CreatedAt order.
func TestSessionRoutingAndPromotionTee(t *testing.T) {
	shards := []*fakeShard{newFakeShard(t, "shard0"), newFakeShard(t, "shard1"), newFakeShard(t, "shard2")}
	rt := NewRouter(Options{
		ProbeInterval: 10 * time.Millisecond,
		TrainerID:     "shard0",
	})
	for _, f := range shards {
		rt.AddShard(f.id, f.srv.URL)
	}
	rt.Start()
	defer rt.Stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Create sessions until one lands on a follower (the interesting case:
	// its promotions need the tee to reach the trainer).
	var sessID, owner string
	for _, b := range testBodies() {
		resp := post(t, front.URL+"/v1/tuning/sessions", b)
		var sess api.Session
		json.NewDecoder(resp.Body).Decode(&sess)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create status %d", resp.StatusCode)
		}
		if sh := resp.Header.Get("X-Lite-Shard"); sh != "shard0" {
			sessID, owner = sess.ID, sh
			break
		}
	}
	if sessID == "" {
		t.Fatal("no session key hashed off the trainer")
	}

	// Every sub-resource call on that ID must land on the owning shard —
	// the router derives the key from the ID alone, no lookup table.
	for _, sub := range []string{"", "/proposal", "/result"} {
		var resp *http.Response
		if sub == "" {
			var err error
			resp, err = http.Get(front.URL + "/v1/tuning/sessions/" + sessID)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			resp = post(t, front.URL+"/v1/tuning/sessions/"+sessID+sub, []byte(`{"trial":1,"seconds":10}`))
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q status %d", sub, resp.StatusCode)
		}
		if sh := resp.Header.Get("X-Lite-Shard"); sh != owner {
			t.Fatalf("sub-resource %q routed to %s, owner is %s", sub, sh, owner)
		}
	}

	// A malformed ID cannot be routed and must fail with the envelope, not
	// land on an arbitrary shard.
	resp := post(t, front.URL+"/v1/tuning/sessions/garbage/proposal", nil)
	var env api.ErrorResponse
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != api.CodeInvalidArgument {
		t.Fatalf("malformed id = (%d, %q), want (400, invalid_argument)", resp.StatusCode, env.Error.Code)
	}

	// A create without size_mb is rejected: the router would place it by a
	// key the session's ID cannot reproduce.
	resp = post(t, front.URL+"/v1/tuning/sessions", []byte(`{"app":"WordCount","cluster":"C"}`))
	env = api.ErrorResponse{}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != api.CodeInvalidArgument {
		t.Fatalf("sizeless create = (%d, %q), want (400, invalid_argument)", resp.StatusCode, env.Error.Code)
	}

	// The follower's result carried a Promotion; the router tees it to the
	// trainer's /v1/feedback asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for shards[0].feeds.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("promotion never teed to the trainer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := rt.Metrics().Counter("lite_fleet_session_promotions_teed_total").Value(); got < 1 {
		t.Fatalf("promotion tee counter = %d, want >= 1", got)
	}

	// Fleet-wide list: one merged answer with every shard's sessions in
	// CreatedAt order.
	lresp, err := http.Get(front.URL + "/v1/tuning/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list api.SessionListResponse
	json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if len(list.Sessions) != len(shards) {
		t.Fatalf("merged list has %d sessions, want %d (one per shard)", len(list.Sessions), len(shards))
	}
	for i := 1; i < len(list.Sessions); i++ {
		if list.Sessions[i-1].CreatedAt > list.Sessions[i].CreatedAt {
			t.Fatalf("merged list out of CreatedAt order: %+v", list.Sessions)
		}
	}
}
