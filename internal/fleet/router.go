package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lite/internal/metrics"
	"lite/internal/serve"
	"lite/pkg/api"
)

// Options configures the fleet router. The zero value is usable: defaults
// below, no trainer (feedback is only hashed, never teed, and no flip
// coordination runs).
type Options struct {
	// Vnodes per shard on the hash ring (default DefaultVnodes).
	Vnodes int

	// ProbeInterval is how often every shard's /healthz is probed (default
	// 250ms); ProbeTimeout bounds one probe (default 1s) — a shard slower
	// than this is as bad as a dead one and counts a failure.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// FailAfter consecutive failed probes (or proxy transport errors) eject
	// a shard from the ring (default 2). RecoverAfter consecutive good
	// probes re-admit it (default 2), but never before its readmit backoff
	// has elapsed: each ejection doubles the wait from ReadmitBackoffMin up
	// to ReadmitBackoffMax (defaults 500ms and 30s), so a flapping shard
	// cannot churn the ring.
	FailAfter         int
	RecoverAfter      int
	ReadmitBackoffMin time.Duration
	ReadmitBackoffMax time.Duration

	// MaxAttempts bounds how many ring successors one request walks before
	// giving up with 503 (default 3: the owner plus two successors).
	MaxAttempts int

	// TrainerID designates the shard that runs the adaptive-update loop.
	// Feedback whose key hashes elsewhere is teed to it asynchronously, and
	// the flip coordinator watches its generation, fanning each new one out
	// to every other shard via POST /admin/flip with TrainerSnapshot.
	TrainerID       string
	TrainerSnapshot string
	// FlipInterval is the coordinator's cadence (default ProbeInterval).
	FlipInterval time.Duration

	// Registry receives the router's lite_fleet_* metrics (default: a fresh
	// registry, exposed on the router's /metrics).
	Registry *metrics.Registry
	// Client overrides the proxy/probe HTTP client (tests).
	Client *http.Client
	// Now overrides the clock (tests).
	Now func() time.Time
	// Logf overrides the event log sink (default stderr).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.RecoverAfter <= 0 {
		o.RecoverAfter = 2
	}
	if o.ReadmitBackoffMin <= 0 {
		o.ReadmitBackoffMin = 500 * time.Millisecond
	}
	if o.ReadmitBackoffMax <= 0 {
		o.ReadmitBackoffMax = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.FlipInterval <= 0 {
		o.FlipInterval = o.ProbeInterval
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "fleet: "+format+"\n", args...)
		}
	}
	return o
}

// shard is the router's view of one serving instance. All fields are
// guarded by Router.mu except id, which never changes.
type shard struct {
	id  string
	url string
	up  bool

	consecFail int
	consecOK   int
	ejections  int
	// readmitAfter gates re-admission: good probes before it count for
	// nothing (flap damping).
	readmitAfter time.Time
	// health is the shard's last successfully parsed /healthz body;
	// healthKnown is false until the first good probe.
	health      serve.HealthResponse
	healthKnown bool
	lastErr     string
}

// Router is the fleet's front door: it consistent-hashes /recommend and
// /feedback bodies onto live shards, retries ring successors when the
// owner is unreachable, health-checks the fleet in the background, and
// coordinates fleet-wide model flips. Safe for concurrent use.
type Router struct {
	opts   Options
	reg    *metrics.Registry
	ring   *Ring
	client *http.Client

	mu       sync.Mutex
	shards   map[string]*shard
	fleetGen uint64 // highest generation the coordinator has fanned out

	teeCh    chan []byte
	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
	started  atomic.Bool
}

// NewRouter builds a router; add shards with AddShard, then Start it.
func NewRouter(opts Options) *Router {
	opts = opts.withDefaults()
	rt := &Router{
		opts:   opts,
		reg:    opts.Registry,
		ring:   NewRing(opts.Vnodes),
		client: opts.Client,
		shards: map[string]*shard{},
		teeCh:  make(chan []byte, 256),
		stopCh: make(chan struct{}),
	}
	rt.reg.GaugeFunc("lite_fleet_shards", func() float64 {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return float64(len(rt.shards))
	})
	rt.reg.GaugeFunc("lite_fleet_generation", func() float64 {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return float64(rt.fleetGen)
	})
	return rt
}

// Metrics returns the router's metrics registry.
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// AddShard registers (or re-registers, after a supervisor restart moved it
// to a new ephemeral port) a shard and admits it to the ring immediately:
// callers add a shard only once it is listening, and the health checker
// ejects it within FailAfter probes if that turns out to be wrong.
func (rt *Router) AddShard(id, url string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh := rt.shards[id]
	if sh == nil {
		sh = &shard{id: id}
		rt.shards[id] = sh
	}
	sh.url = url
	sh.consecFail, sh.consecOK = 0, 0
	sh.readmitAfter = time.Time{}
	sh.lastErr = ""
	if !sh.up {
		sh.up = true
		if rt.ring.Add(id) {
			rt.reg.Counter("lite_fleet_ring_moves_total").Inc()
		}
	}
	rt.shardUpGauge(id).Set(1)
	rt.opts.Logf("shard %s admitted at %s (%d in ring)", id, url, rt.ring.Len())
}

// MarkDown ejects a shard immediately — the supervisor calls it the moment
// a shard process exits, so the ring reacts faster than the probe cycle.
func (rt *Router) MarkDown(id, reason string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if sh := rt.shards[id]; sh != nil {
		rt.ejectLocked(sh, reason)
	}
}

// ejectLocked removes a shard from the ring and arms its readmit backoff.
// Caller holds rt.mu. Idempotent for already-down shards (the backoff is
// not re-armed by repeat failure reports).
func (rt *Router) ejectLocked(sh *shard, reason string) {
	sh.lastErr = reason
	if !sh.up {
		return
	}
	sh.up = false
	sh.consecOK = 0
	sh.ejections++
	backoff := rt.opts.ReadmitBackoffMin << (sh.ejections - 1)
	if backoff > rt.opts.ReadmitBackoffMax || backoff <= 0 {
		backoff = rt.opts.ReadmitBackoffMax
	}
	sh.readmitAfter = rt.opts.Now().Add(backoff)
	if rt.ring.Remove(sh.id) {
		rt.reg.Counter("lite_fleet_ring_moves_total").Inc()
	}
	rt.reg.Counter("lite_fleet_ejections_total").Inc()
	rt.shardUpGauge(sh.id).Set(0)
	rt.opts.Logf("shard %s ejected (%s); arc re-routed to successors, readmit backoff %v (%d in ring)",
		sh.id, reason, backoff, rt.ring.Len())
}

func (rt *Router) shardUpGauge(id string) *metrics.Gauge {
	return rt.reg.Gauge(fmt.Sprintf("lite_fleet_shard_up{shard=%q}", id))
}

// reportTransportError records a proxy-level connection failure against a
// shard; enough consecutive ones eject it without waiting for the prober.
func (rt *Router) reportTransportError(id string, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh := rt.shards[id]
	if sh == nil {
		return
	}
	sh.consecFail++
	sh.consecOK = 0
	if sh.up && sh.consecFail >= rt.opts.FailAfter {
		rt.ejectLocked(sh, fmt.Sprintf("proxy: %v", err))
	}
}

// Start launches the health checker, the flip coordinator (when a trainer
// is designated) and the feedback tee worker.
func (rt *Router) Start() {
	if rt.started.Swap(true) {
		return
	}
	rt.wg.Add(1)
	go rt.healthLoop()
	if rt.opts.TrainerID != "" {
		rt.wg.Add(1)
		go rt.flipLoop()
	}
	rt.wg.Add(1)
	go rt.teeLoop()
}

// Stop halts the background loops and waits for them.
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	rt.wg.Wait()
}

// Handler returns the router's HTTP surface, mirroring the shard API
// (API.md):
//
//	POST   /v1/recommend, /v1/feedback      — consistent-hash proxy
//	GET    /v1/healthz                      — fleet + per-shard health JSON
//	POST   /v1/tuning/sessions              — placed by the body's key
//	GET    /v1/tuning/sessions              — fan-out list, merged
//	*      /v1/tuning/sessions/{id}[/...]   — placed by the key embedded
//	                                          in the session ID
//	GET    /metrics                         — router metrics (lite_fleet_*)
//
// plus the unversioned legacy routes as deprecation shims (Deprecation
// header + lite_http_legacy_requests_total counter, same semantics).
// Session results answered by a non-trainer shard have their Promotion
// teed to the trainer: the trainer owns promotion fleet-wide.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyBody(w, r, "/v1/recommend")
	})
	mux.HandleFunc("/v1/feedback", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyBody(w, r, "/v1/feedback")
	})
	mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	mux.HandleFunc("/v1/tuning/sessions", rt.handleSessions)
	mux.HandleFunc("/v1/tuning/sessions/{id}", rt.handleSessionItem)
	mux.HandleFunc("/v1/tuning/sessions/{id}/proposal", rt.handleSessionProposal)
	mux.HandleFunc("/v1/tuning/sessions/{id}/result", rt.handleSessionResult)
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeAPIError(w, http.StatusNotFound, api.CodeNotFound, "no such endpoint: "+r.URL.Path, 0)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.reg.WriteText(w)
	})

	// Legacy deprecation shims.
	mux.Handle("/recommend", rt.legacy("recommend", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.proxyBody(w, r, "/v1/recommend")
	})))
	mux.Handle("/feedback", rt.legacy("feedback", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.proxyBody(w, r, "/v1/feedback")
	})))
	mux.Handle("/healthz", rt.legacy("healthz", http.HandlerFunc(rt.handleHealthz)))
	return mux
}

// legacy wraps a handler as an unversioned deprecation shim: identical
// behaviour plus the Deprecation header and the per-endpoint legacy
// counter the fleet smoke asserts stays 0 for new tooling.
func (rt *Router) legacy(endpoint string, next http.Handler) http.Handler {
	ctr := rt.reg.Counter(fmt.Sprintf("lite_http_legacy_requests_total{endpoint=%q}", endpoint))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctr.Inc()
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s%s>; rel=\"successor-version\"", api.Version, r.URL.Path))
		next.ServeHTTP(w, r)
	})
}

// routingBody is the subset of a /recommend or /feedback body the router
// needs to place the request; unknown fields are the shard's business.
type routingBody struct {
	App     string  `json:"app"`
	SizeMB  float64 `json:"size_mb"`
	Cluster string  `json:"cluster"`
}

// routingKey derives the sharding key from a request body. A body the
// serving layer would reject still hashes deterministically (on its raw
// fields) so the 400 comes from a consistently chosen shard.
func routingKey(body []byte) string {
	var b routingBody
	if err := json.Unmarshal(body, &b); err != nil {
		return string(body)
	}
	key, err := serve.RoutingKey(b.App, b.SizeMB, b.Cluster)
	if err != nil {
		return fmt.Sprintf("%s|%g|%s", b.App, b.SizeMB, b.Cluster)
	}
	return key
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeAPIError emits the unified /v1 error envelope (API.md) for
// router-origin failures; shard-origin errors are relayed verbatim and
// already carry it.
func writeAPIError(w http.ResponseWriter, status int, code, msg string, retryMS int64) {
	if retryMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((retryMS+999)/1000, 10))
	}
	writeJSON(w, status, api.ErrorResponse{Error: api.Error{Code: code, Message: msg, RetryAfterMS: retryMS}})
}

// Tee modes for route: what to forward to the trainer shard after a
// non-trainer shard answers 200.
const (
	teeNone = iota
	// teeFeedback re-posts the request body (a FeedbackRequest) — the
	// follower ack'd it locally but only the trainer learns from it.
	teeFeedback
	// teePromotion decodes the shard's ReportResultResponse and, when it
	// carries a Promotion, posts that feedback body to the trainer: a
	// session win discovered on a follower still reaches the model.
	teePromotion
)

// readBody requires POST and reads the (bounded) request body with
// envelope-shaped failures.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"use POST with a JSON body", 0)
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, api.CodeInvalidArgument,
			"reading request body: "+err.Error(), 0)
		return nil, false
	}
	return body, true
}

// proxyBody routes a POST whose JSON body carries the sharding fields
// (/v1/recommend, /v1/feedback).
func (rt *Router) proxyBody(w http.ResponseWriter, r *http.Request, endpoint string) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	tee := teeNone
	if endpoint == "/v1/feedback" {
		tee = teeFeedback
	}
	rt.route(w, r, endpoint, endpoint, routingKey(body), body, tee)
}

// handleSessions is the collection route: POST creates (placed by the
// body's key, same hash as /v1/recommend), GET lists fleet-wide.
func (rt *Router) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		body, ok := rt.readBody(w, r)
		if !ok {
			return
		}
		// The session's shard placement is derived from (app, size_mb,
		// cluster); a single server would default a missing size_mb to the
		// app's test size, but the router cannot know that default, and the
		// ID-derived key of every later call would then hash to a different
		// shard than the create did. Require the size explicitly.
		var rb routingBody
		if err := json.Unmarshal(body, &rb); err == nil && rb.SizeMB <= 0 {
			writeAPIError(w, http.StatusBadRequest, api.CodeInvalidArgument,
				"size_mb must be set when creating a session through a fleet router (shard placement is derived from it)", 0)
			return
		}
		rt.route(w, r, "/v1/tuning/sessions", "/v1/tuning/sessions", routingKey(body), body, teeNone)
	case http.MethodGet:
		rt.listSessions(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed", 0)
	}
}

// sessionKey places a session sub-resource request: the (app, datasize,
// cluster) triple is embedded in the ID, so the owning shard is computed
// locally with no lookup.
func (rt *Router) sessionKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key, err := serve.SessionRoutingKey(r.PathValue("id"))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, api.CodeInvalidArgument, err.Error(), 0)
		return "", false
	}
	return key, true
}

// handleSessionItem proxies GET (read) and DELETE (close) for one session.
func (rt *Router) handleSessionItem(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		w.Header().Set("Allow", "GET, DELETE")
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed", 0)
		return
	}
	key, ok := rt.sessionKey(w, r)
	if !ok {
		return
	}
	rt.route(w, r, r.URL.Path, "/v1/tuning/sessions/{id}", key, nil, teeNone)
}

// handleSessionProposal proxies the next-proposal action.
func (rt *Router) handleSessionProposal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"use POST", 0)
		return
	}
	key, ok := rt.sessionKey(w, r)
	if !ok {
		return
	}
	rt.route(w, r, r.URL.Path, "/v1/tuning/sessions/{id}/proposal", key, nil, teeNone)
}

// handleSessionResult proxies a trial result report. When a follower
// answers with a promotion, the router tees that feedback to the trainer
// (teePromotion): promotion is fleet-wide, not per-shard.
func (rt *Router) handleSessionResult(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	key, ok := rt.sessionKey(w, r)
	if !ok {
		return
	}
	rt.route(w, r, r.URL.Path, "/v1/tuning/sessions/{id}/result", key, body, teePromotion)
}

// listSessions fans a GET out to every live shard and merges the results:
// each shard only knows the sessions its arc owns. Answers 200 with the
// merged list when at least one shard responded, 503 otherwise.
func (rt *Router) listSessions(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	type target struct{ id, url string }
	var targets []target
	for _, sh := range rt.shards {
		if sh.up {
			targets = append(targets, target{sh.id, sh.url})
		}
	}
	rt.mu.Unlock()
	merged := []api.Session{}
	answered := 0
	for _, t := range targets {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, t.url+"/v1/tuning/sessions", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.reportTransportError(t.id, err)
			continue
		}
		var list api.SessionListResponse
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&list)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			continue
		}
		answered++
		merged = append(merged, list.Sessions...)
	}
	if answered == 0 && len(targets) > 0 {
		writeAPIError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"fleet: no shard answered the session list", 1000)
		return
	}
	sort.Slice(merged, func(i, j int) bool {
		// CreatedAt is RFC3339, so lexical order is chronological order.
		if merged[i].CreatedAt != merged[j].CreatedAt {
			return merged[i].CreatedAt < merged[j].CreatedAt
		}
		return merged[i].ID < merged[j].ID
	})
	writeJSON(w, http.StatusOK, api.SessionListResponse{Sessions: merged})
}

// route sends one request to its key's owner shard, walking ring
// successors on transport failures — so a freshly dead shard's arc is
// served by its successors even before the health checker ejects it.
// Shard HTTP responses (including 4xx/5xx the shard chose to send) are
// relayed as-is; only connection-level failures re-route. label is the
// bounded metric name for the path (session paths would otherwise explode
// cardinality with the ID).
func (rt *Router) route(w http.ResponseWriter, r *http.Request, shardPath, label, key string, body []byte, tee int) {
	order := rt.ring.Successors(key, rt.opts.MaxAttempts)
	if len(order) == 0 {
		rt.reg.Counter("lite_fleet_no_shard_total").Inc()
		writeAPIError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "fleet: no live shards", 1000)
		return
	}
	var lastErr error
	for i, id := range order {
		url := rt.shardURL(id)
		if url == "" {
			continue
		}
		resp, err := rt.forward(r, url, shardPath, label, body)
		if err != nil {
			if r.Context().Err() != nil {
				// The client's budget ran out mid-walk; no shard is at fault.
				writeAPIError(w, http.StatusGatewayTimeout, api.CodeDeadlineExceeded,
					r.Context().Err().Error(), 0)
				return
			}
			rt.reportTransportError(id, err)
			rt.reg.Counter(fmt.Sprintf("lite_fleet_proxy_errors_total{shard=%q}", id)).Inc()
			lastErr = err
			continue
		}
		if i > 0 {
			rt.reg.Counter("lite_fleet_rerouted_total").Inc()
		}
		fromFollower := rt.opts.TrainerID != "" && id != rt.opts.TrainerID
		if tee == teeFeedback && fromFollower && resp.StatusCode == http.StatusOK {
			rt.tee(body, "lite_fleet_feedback_teed_total")
		}
		if tee == teePromotion && fromFollower && resp.StatusCode == http.StatusOK {
			rt.relayWithPromotionTee(w, resp, id)
			return
		}
		rt.relay(w, resp, id)
		return
	}
	writeAPIError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
		fmt.Sprintf("fleet: no reachable shard for key (last error: %v)", lastErr), 1000)
}

// relayWithPromotionTee buffers a follower's session-result response,
// tees any Promotion it carries to the trainer as feedback, then relays
// the buffered body unchanged.
func (rt *Router) relayWithPromotionTee(w http.ResponseWriter, resp *http.Response, id string) {
	buf, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if readErr == nil {
		var rr api.ReportResultResponse
		if json.Unmarshal(buf, &rr) == nil && rr.Promotion != nil {
			if pb, err := json.Marshal(rr.Promotion); err == nil {
				rt.tee(pb, "lite_fleet_session_promotions_teed_total")
			}
		}
	}
	rt.reg.Counter(fmt.Sprintf("lite_fleet_requests_total{shard=%q,code=\"%d\"}", id, resp.StatusCode)).Inc()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Lite-Shard", id)
	w.WriteHeader(resp.StatusCode)
	if _, err := w.Write(buf); err != nil {
		rt.reg.Counter("lite_fleet_relay_errors_total").Inc()
	}
}

// shardURL resolves a member id to its base URL ("" if it vanished).
func (rt *Router) shardURL(id string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if sh := rt.shards[id]; sh != nil {
		return sh.url
	}
	return ""
}

// forward sends one request (the client's method, an optional JSON body)
// to one shard under the client's context and observes the proxy latency
// histogram under the bounded label.
func (rt *Router) forward(r *http.Request, url, shardPath, label string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url+shardPath, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := rt.opts.Now()
	resp, err := rt.client.Do(req)
	rt.reg.Histogram(fmt.Sprintf("lite_fleet_proxy_seconds{endpoint=%q}", label), nil).
		Observe(rt.opts.Now().Sub(start).Seconds())
	return resp, err
}

// relay copies a shard's response to the client, tagging which shard
// answered so load tools can report per-shard skew.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, id string) {
	defer resp.Body.Close()
	rt.reg.Counter(fmt.Sprintf("lite_fleet_requests_total{shard=%q,code=\"%d\"}", id, resp.StatusCode)).Inc()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Lite-Shard", id)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		rt.reg.Counter("lite_fleet_relay_errors_total").Inc()
	}
}

// tee enqueues a feedback body for async delivery to the trainer shard,
// incrementing counter on success. Feedback is a training signal, not a
// synchronous dependency: a full tee queue drops (counted) rather than
// slowing the serving path.
func (rt *Router) tee(body []byte, counter string) {
	select {
	case rt.teeCh <- body:
		rt.reg.Counter(counter).Inc()
	default:
		rt.reg.Counter("lite_fleet_feedback_tee_dropped_total").Inc()
	}
}

// teeLoop delivers teed feedback to the trainer.
func (rt *Router) teeLoop() {
	defer rt.wg.Done()
	for {
		select {
		case <-rt.stopCh:
			return
		case body := <-rt.teeCh:
			url := rt.shardURL(rt.opts.TrainerID)
			if url == "" {
				continue
			}
			req, err := http.NewRequest(http.MethodPost, url+"/v1/feedback", bytes.NewReader(body))
			if err != nil {
				continue
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.reg.Counter("lite_fleet_feedback_tee_errors_total").Inc()
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				rt.reg.Counter("lite_fleet_feedback_tee_errors_total").Inc()
			}
		}
	}
}

// FleetHealth is the router's GET /healthz body: fleet-wide status plus
// the health checker's last view of every shard.
type FleetHealth struct {
	Status string `json:"status"`
	// Generation is the highest model generation the flip coordinator has
	// fanned out fleet-wide.
	Generation uint64        `json:"generation"`
	Up         int           `json:"up"`
	Shards     []ShardHealth `json:"shards"`
}

// ShardHealth is one shard's entry in FleetHealth.
type ShardHealth struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	Trainer  bool   `json:"trainer"`
	Follower bool   `json:"follower"`
	// Generation, WALUnfolded, SnapshotAgeSeconds and Inflight mirror the
	// shard's own JSON /healthz as of the last successful probe.
	Generation         uint64  `json:"generation"`
	WALUnfolded        uint64  `json:"wal_unfolded"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	Inflight           int     `json:"inflight"`
	Ejections          int     `json:"ejections"`
	LastError          string  `json:"last_error,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	fh := FleetHealth{Generation: rt.fleetGen}
	ids := make([]string, 0, len(rt.shards))
	for id := range rt.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh := rt.shards[id]
		e := ShardHealth{
			ID: sh.id, URL: sh.url, Up: sh.up,
			Trainer:   sh.id == rt.opts.TrainerID,
			Ejections: sh.ejections,
			LastError: sh.lastErr,
		}
		if sh.healthKnown {
			e.Generation = sh.health.Generation
			e.WALUnfolded = sh.health.WALUnfolded
			e.SnapshotAgeSeconds = sh.health.SnapshotAgeSeconds
			e.Inflight = sh.health.Inflight
			e.Follower = sh.health.Follower
		}
		if sh.up {
			fh.Up++
		}
		fh.Shards = append(fh.Shards, e)
	}
	rt.mu.Unlock()
	code := http.StatusOK
	fh.Status = "ok"
	if fh.Up == 0 {
		fh.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, fh)
}
