package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lite/internal/metrics"
	"lite/internal/serve"
)

// Options configures the fleet router. The zero value is usable: defaults
// below, no trainer (feedback is only hashed, never teed, and no flip
// coordination runs).
type Options struct {
	// Vnodes per shard on the hash ring (default DefaultVnodes).
	Vnodes int

	// ProbeInterval is how often every shard's /healthz is probed (default
	// 250ms); ProbeTimeout bounds one probe (default 1s) — a shard slower
	// than this is as bad as a dead one and counts a failure.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// FailAfter consecutive failed probes (or proxy transport errors) eject
	// a shard from the ring (default 2). RecoverAfter consecutive good
	// probes re-admit it (default 2), but never before its readmit backoff
	// has elapsed: each ejection doubles the wait from ReadmitBackoffMin up
	// to ReadmitBackoffMax (defaults 500ms and 30s), so a flapping shard
	// cannot churn the ring.
	FailAfter         int
	RecoverAfter      int
	ReadmitBackoffMin time.Duration
	ReadmitBackoffMax time.Duration

	// MaxAttempts bounds how many ring successors one request walks before
	// giving up with 503 (default 3: the owner plus two successors).
	MaxAttempts int

	// TrainerID designates the shard that runs the adaptive-update loop.
	// Feedback whose key hashes elsewhere is teed to it asynchronously, and
	// the flip coordinator watches its generation, fanning each new one out
	// to every other shard via POST /admin/flip with TrainerSnapshot.
	TrainerID       string
	TrainerSnapshot string
	// FlipInterval is the coordinator's cadence (default ProbeInterval).
	FlipInterval time.Duration

	// Registry receives the router's lite_fleet_* metrics (default: a fresh
	// registry, exposed on the router's /metrics).
	Registry *metrics.Registry
	// Client overrides the proxy/probe HTTP client (tests).
	Client *http.Client
	// Now overrides the clock (tests).
	Now func() time.Time
	// Logf overrides the event log sink (default stderr).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.RecoverAfter <= 0 {
		o.RecoverAfter = 2
	}
	if o.ReadmitBackoffMin <= 0 {
		o.ReadmitBackoffMin = 500 * time.Millisecond
	}
	if o.ReadmitBackoffMax <= 0 {
		o.ReadmitBackoffMax = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.FlipInterval <= 0 {
		o.FlipInterval = o.ProbeInterval
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "fleet: "+format+"\n", args...)
		}
	}
	return o
}

// shard is the router's view of one serving instance. All fields are
// guarded by Router.mu except id, which never changes.
type shard struct {
	id  string
	url string
	up  bool

	consecFail int
	consecOK   int
	ejections  int
	// readmitAfter gates re-admission: good probes before it count for
	// nothing (flap damping).
	readmitAfter time.Time
	// health is the shard's last successfully parsed /healthz body;
	// healthKnown is false until the first good probe.
	health      serve.HealthResponse
	healthKnown bool
	lastErr     string
}

// Router is the fleet's front door: it consistent-hashes /recommend and
// /feedback bodies onto live shards, retries ring successors when the
// owner is unreachable, health-checks the fleet in the background, and
// coordinates fleet-wide model flips. Safe for concurrent use.
type Router struct {
	opts   Options
	reg    *metrics.Registry
	ring   *Ring
	client *http.Client

	mu       sync.Mutex
	shards   map[string]*shard
	fleetGen uint64 // highest generation the coordinator has fanned out

	teeCh    chan []byte
	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
	started  atomic.Bool
}

// NewRouter builds a router; add shards with AddShard, then Start it.
func NewRouter(opts Options) *Router {
	opts = opts.withDefaults()
	rt := &Router{
		opts:   opts,
		reg:    opts.Registry,
		ring:   NewRing(opts.Vnodes),
		client: opts.Client,
		shards: map[string]*shard{},
		teeCh:  make(chan []byte, 256),
		stopCh: make(chan struct{}),
	}
	rt.reg.GaugeFunc("lite_fleet_shards", func() float64 {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return float64(len(rt.shards))
	})
	rt.reg.GaugeFunc("lite_fleet_generation", func() float64 {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return float64(rt.fleetGen)
	})
	return rt
}

// Metrics returns the router's metrics registry.
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// AddShard registers (or re-registers, after a supervisor restart moved it
// to a new ephemeral port) a shard and admits it to the ring immediately:
// callers add a shard only once it is listening, and the health checker
// ejects it within FailAfter probes if that turns out to be wrong.
func (rt *Router) AddShard(id, url string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh := rt.shards[id]
	if sh == nil {
		sh = &shard{id: id}
		rt.shards[id] = sh
	}
	sh.url = url
	sh.consecFail, sh.consecOK = 0, 0
	sh.readmitAfter = time.Time{}
	sh.lastErr = ""
	if !sh.up {
		sh.up = true
		if rt.ring.Add(id) {
			rt.reg.Counter("lite_fleet_ring_moves_total").Inc()
		}
	}
	rt.shardUpGauge(id).Set(1)
	rt.opts.Logf("shard %s admitted at %s (%d in ring)", id, url, rt.ring.Len())
}

// MarkDown ejects a shard immediately — the supervisor calls it the moment
// a shard process exits, so the ring reacts faster than the probe cycle.
func (rt *Router) MarkDown(id, reason string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if sh := rt.shards[id]; sh != nil {
		rt.ejectLocked(sh, reason)
	}
}

// ejectLocked removes a shard from the ring and arms its readmit backoff.
// Caller holds rt.mu. Idempotent for already-down shards (the backoff is
// not re-armed by repeat failure reports).
func (rt *Router) ejectLocked(sh *shard, reason string) {
	sh.lastErr = reason
	if !sh.up {
		return
	}
	sh.up = false
	sh.consecOK = 0
	sh.ejections++
	backoff := rt.opts.ReadmitBackoffMin << (sh.ejections - 1)
	if backoff > rt.opts.ReadmitBackoffMax || backoff <= 0 {
		backoff = rt.opts.ReadmitBackoffMax
	}
	sh.readmitAfter = rt.opts.Now().Add(backoff)
	if rt.ring.Remove(sh.id) {
		rt.reg.Counter("lite_fleet_ring_moves_total").Inc()
	}
	rt.reg.Counter("lite_fleet_ejections_total").Inc()
	rt.shardUpGauge(sh.id).Set(0)
	rt.opts.Logf("shard %s ejected (%s); arc re-routed to successors, readmit backoff %v (%d in ring)",
		sh.id, reason, backoff, rt.ring.Len())
}

func (rt *Router) shardUpGauge(id string) *metrics.Gauge {
	return rt.reg.Gauge(fmt.Sprintf("lite_fleet_shard_up{shard=%q}", id))
}

// reportTransportError records a proxy-level connection failure against a
// shard; enough consecutive ones eject it without waiting for the prober.
func (rt *Router) reportTransportError(id string, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh := rt.shards[id]
	if sh == nil {
		return
	}
	sh.consecFail++
	sh.consecOK = 0
	if sh.up && sh.consecFail >= rt.opts.FailAfter {
		rt.ejectLocked(sh, fmt.Sprintf("proxy: %v", err))
	}
}

// Start launches the health checker, the flip coordinator (when a trainer
// is designated) and the feedback tee worker.
func (rt *Router) Start() {
	if rt.started.Swap(true) {
		return
	}
	rt.wg.Add(1)
	go rt.healthLoop()
	if rt.opts.TrainerID != "" {
		rt.wg.Add(1)
		go rt.flipLoop()
	}
	rt.wg.Add(1)
	go rt.teeLoop()
}

// Stop halts the background loops and waits for them.
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	rt.wg.Wait()
}

// Handler returns the router's HTTP surface:
//
//	POST /recommend, /feedback — consistent-hash proxy onto the fleet
//	GET  /healthz              — fleet + per-shard health JSON
//	GET  /metrics              — router metrics (lite_fleet_*)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, r *http.Request) {
		rt.proxy(w, r, "/recommend")
	})
	mux.HandleFunc("/feedback", func(w http.ResponseWriter, r *http.Request) {
		rt.proxy(w, r, "/feedback")
	})
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.reg.WriteText(w)
	})
	return mux
}

// routingBody is the subset of a /recommend or /feedback body the router
// needs to place the request; unknown fields are the shard's business.
type routingBody struct {
	App     string  `json:"app"`
	SizeMB  float64 `json:"size_mb"`
	Cluster string  `json:"cluster"`
}

// routingKey derives the sharding key from a request body. A body the
// serving layer would reject still hashes deterministically (on its raw
// fields) so the 400 comes from a consistently chosen shard.
func routingKey(body []byte) string {
	var b routingBody
	if err := json.Unmarshal(body, &b); err != nil {
		return string(body)
	}
	key, err := serve.RoutingKey(b.App, b.SizeMB, b.Cluster)
	if err != nil {
		return fmt.Sprintf("%s|%g|%s", b.App, b.SizeMB, b.Cluster)
	}
	return key
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// proxy routes one request to its key's owner shard, walking ring
// successors on transport failures — so a freshly dead shard's arc is
// served by its successors even before the health checker ejects it.
// Shard HTTP responses (including 4xx/5xx the shard chose to send) are
// relayed as-is; only connection-level failures re-route.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, endpoint string) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST with a JSON body"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading request body: " + err.Error()})
		return
	}
	key := routingKey(body)
	order := rt.ring.Successors(key, rt.opts.MaxAttempts)
	if len(order) == 0 {
		rt.reg.Counter("lite_fleet_no_shard_total").Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "fleet: no live shards"})
		return
	}
	var lastErr error
	for i, id := range order {
		url := rt.shardURL(id)
		if url == "" {
			continue
		}
		resp, err := rt.forward(r, url, endpoint, body)
		if err != nil {
			if r.Context().Err() != nil {
				// The client's budget ran out mid-walk; no shard is at fault.
				writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: r.Context().Err().Error()})
				return
			}
			rt.reportTransportError(id, err)
			rt.reg.Counter(fmt.Sprintf("lite_fleet_proxy_errors_total{shard=%q}", id)).Inc()
			lastErr = err
			continue
		}
		if i > 0 {
			rt.reg.Counter("lite_fleet_rerouted_total").Inc()
		}
		if endpoint == "/feedback" && rt.opts.TrainerID != "" && id != rt.opts.TrainerID &&
			resp.StatusCode == http.StatusOK {
			rt.tee(body)
		}
		rt.relay(w, resp, id)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable,
		errorResponse{Error: fmt.Sprintf("fleet: no reachable shard for key (last error: %v)", lastErr)})
}

// shardURL resolves a member id to its base URL ("" if it vanished).
func (rt *Router) shardURL(id string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if sh := rt.shards[id]; sh != nil {
		return sh.url
	}
	return ""
}

// forward posts body to one shard under the client's context and observes
// the per-shard proxy latency histogram.
func (rt *Router) forward(r *http.Request, url, endpoint string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := rt.opts.Now()
	resp, err := rt.client.Do(req)
	rt.reg.Histogram(fmt.Sprintf("lite_fleet_proxy_seconds{endpoint=%q}", endpoint), nil).
		Observe(rt.opts.Now().Sub(start).Seconds())
	return resp, err
}

// relay copies a shard's response to the client, tagging which shard
// answered so load tools can report per-shard skew.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, id string) {
	defer resp.Body.Close()
	rt.reg.Counter(fmt.Sprintf("lite_fleet_requests_total{shard=%q,code=\"%d\"}", id, resp.StatusCode)).Inc()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Lite-Shard", id)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		rt.reg.Counter("lite_fleet_relay_errors_total").Inc()
	}
}

// tee enqueues a feedback body for async delivery to the trainer shard.
// Feedback is a training signal, not a synchronous dependency: a full tee
// queue drops (counted) rather than slowing the serving path.
func (rt *Router) tee(body []byte) {
	select {
	case rt.teeCh <- body:
		rt.reg.Counter("lite_fleet_feedback_teed_total").Inc()
	default:
		rt.reg.Counter("lite_fleet_feedback_tee_dropped_total").Inc()
	}
}

// teeLoop delivers teed feedback to the trainer.
func (rt *Router) teeLoop() {
	defer rt.wg.Done()
	for {
		select {
		case <-rt.stopCh:
			return
		case body := <-rt.teeCh:
			url := rt.shardURL(rt.opts.TrainerID)
			if url == "" {
				continue
			}
			req, err := http.NewRequest(http.MethodPost, url+"/feedback", bytes.NewReader(body))
			if err != nil {
				continue
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.reg.Counter("lite_fleet_feedback_tee_errors_total").Inc()
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				rt.reg.Counter("lite_fleet_feedback_tee_errors_total").Inc()
			}
		}
	}
}

// FleetHealth is the router's GET /healthz body: fleet-wide status plus
// the health checker's last view of every shard.
type FleetHealth struct {
	Status string `json:"status"`
	// Generation is the highest model generation the flip coordinator has
	// fanned out fleet-wide.
	Generation uint64        `json:"generation"`
	Up         int           `json:"up"`
	Shards     []ShardHealth `json:"shards"`
}

// ShardHealth is one shard's entry in FleetHealth.
type ShardHealth struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	Trainer  bool   `json:"trainer"`
	Follower bool   `json:"follower"`
	// Generation, WALUnfolded, SnapshotAgeSeconds and Inflight mirror the
	// shard's own JSON /healthz as of the last successful probe.
	Generation         uint64  `json:"generation"`
	WALUnfolded        uint64  `json:"wal_unfolded"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	Inflight           int     `json:"inflight"`
	Ejections          int     `json:"ejections"`
	LastError          string  `json:"last_error,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	fh := FleetHealth{Generation: rt.fleetGen}
	ids := make([]string, 0, len(rt.shards))
	for id := range rt.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh := rt.shards[id]
		e := ShardHealth{
			ID: sh.id, URL: sh.url, Up: sh.up,
			Trainer:   sh.id == rt.opts.TrainerID,
			Ejections: sh.ejections,
			LastError: sh.lastErr,
		}
		if sh.healthKnown {
			e.Generation = sh.health.Generation
			e.WALUnfolded = sh.health.WALUnfolded
			e.SnapshotAgeSeconds = sh.health.SnapshotAgeSeconds
			e.Inflight = sh.health.Inflight
			e.Follower = sh.health.Follower
		}
		if sh.up {
			fh.Up++
		}
		fh.Shards = append(fh.Shards, e)
	}
	rt.mu.Unlock()
	code := http.StatusOK
	fh.Status = "ok"
	if fh.Up == 0 {
		fh.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, fh)
}
