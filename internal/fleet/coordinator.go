package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"lite/internal/serve"
	"time"
)

// flipLoop is the fleet's hot-swap coordinator (publish-then-flip,
// DESIGN.md §10). The trainer shard retrains and validation-gates models
// exactly as a standalone liteserve does, persisting each accepted
// generation to its snapshot file *before* publishing it (the serving
// layer's persist-then-publish invariant). The coordinator watches the
// trainer's generation through the health checker's probes; when it
// advances, every other live shard is flipped to the already-durable
// snapshot via POST /admin/flip with the same generation number. A shard
// that was down during a flip (or restarted at generation 0) is caught on
// a later tick: any live shard reporting a generation below the fleet
// target is re-flipped until it converges. Mixed generations are therefore
// visible only inside one flip window.
func (rt *Router) flipLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.FlipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-ticker.C:
			rt.coordinate()
		}
	}
}

// coordinate runs one flip pass: raise the fleet target to the trainer's
// live generation, then flip every lagging live shard to it.
func (rt *Router) coordinate() {
	type flipTarget struct{ id, url string }
	var todo []flipTarget

	rt.mu.Lock()
	tr := rt.shards[rt.opts.TrainerID]
	if tr == nil || !tr.healthKnown {
		rt.mu.Unlock()
		return
	}
	if tr.health.Generation > rt.fleetGen {
		rt.fleetGen = tr.health.Generation
		rt.opts.Logf("trainer %s published generation %d; flipping fleet", tr.id, rt.fleetGen)
	}
	target := rt.fleetGen
	if target > 0 {
		// The trainer itself is included: after a crash it resumes its
		// adapted snapshot but restarts generation numbering at 0, and a
		// flip to its own snapshot at the fleet target renumbers it without
		// changing its weights — retraining then continues from target+1.
		for id, sh := range rt.shards {
			if !sh.up || !sh.healthKnown {
				continue
			}
			if sh.health.Generation < target {
				todo = append(todo, flipTarget{id, sh.url})
			}
		}
	}
	rt.mu.Unlock()

	for _, t := range todo {
		gen, err := rt.flipShard(t.url, target)
		if err != nil {
			rt.reg.Counter("lite_fleet_flip_errors_total").Inc()
			rt.opts.Logf("flip shard %s to generation %d: %v (will retry)", t.id, target, err)
			continue
		}
		rt.reg.Counter("lite_fleet_flips_total").Inc()
		rt.mu.Lock()
		if sh := rt.shards[t.id]; sh != nil && sh.healthKnown && gen > sh.health.Generation {
			// Record the flip immediately so the next tick does not re-flip
			// a shard the prober has not re-read yet.
			sh.health.Generation = gen
		}
		rt.mu.Unlock()
		rt.opts.Logf("shard %s flipped to generation %d", t.id, gen)
	}
}

// flipShard asks one shard to load the trainer's published snapshot as
// generation gen and returns the shard's resulting generation.
func (rt *Router) flipShard(url string, gen uint64) (uint64, error) {
	body, err := json.Marshal(serve.FlipRequest{SnapshotPath: rt.opts.TrainerSnapshot, Generation: gen})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/admin/flip", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("flip status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var fr serve.FlipResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return 0, err
	}
	return fr.Generation, nil
}
