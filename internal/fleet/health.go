package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lite/internal/serve"
)

// healthLoop actively probes every registered shard's /healthz on
// ProbeInterval. Policy:
//
//   - FailAfter consecutive bad probes (connection error, non-200, or a
//     probe slower than ProbeTimeout) eject the shard: its vnodes leave
//     the ring and its arc falls to the clockwise successors.
//   - An ejected shard keeps being probed. RecoverAfter consecutive good
//     probes re-admit it — but good probes before the shard's readmit
//     backoff has elapsed count for nothing, so a flapping shard re-enters
//     the ring at a geometrically decreasing rate, not every probe cycle.
//
// Probes run concurrently across shards so one hung shard cannot delay
// detection on the others.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-ticker.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every shard concurrently and applies the results.
func (rt *Router) probeAll() {
	rt.mu.Lock()
	type target struct{ id, url string }
	targets := make([]target, 0, len(rt.shards))
	for id, sh := range rt.shards {
		targets = append(targets, target{id, sh.url})
	}
	rt.mu.Unlock()

	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t target) {
			defer wg.Done()
			h, err := rt.probe(t.url)
			rt.applyProbe(t.id, h, err)
		}(t)
	}
	wg.Wait()
}

// probe fetches and parses one shard's JSON /healthz.
func (rt *Router) probe(url string) (serve.HealthResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		return serve.HealthResponse{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return serve.HealthResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.HealthResponse{}, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return serve.HealthResponse{}, fmt.Errorf("healthz body: %w", err)
	}
	return h, nil
}

// applyProbe folds one probe result into the shard's state, ejecting or
// re-admitting per the policy above.
func (rt *Router) applyProbe(id string, h serve.HealthResponse, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh := rt.shards[id]
	if sh == nil {
		return
	}
	if err != nil {
		rt.reg.Counter(fmt.Sprintf("lite_fleet_probe_failures_total{shard=%q}", id)).Inc()
		sh.consecOK = 0
		sh.consecFail++
		if sh.up && sh.consecFail >= rt.opts.FailAfter {
			rt.ejectLocked(sh, fmt.Sprintf("health: %v", err))
		}
		return
	}
	sh.health = h
	sh.healthKnown = true
	sh.consecFail = 0
	sh.lastErr = ""
	if sh.up {
		return
	}
	if rt.opts.Now().Before(sh.readmitAfter) {
		return // still in backoff: recovery evidence does not count yet
	}
	sh.consecOK++
	if sh.consecOK < rt.opts.RecoverAfter {
		return
	}
	sh.up = true
	sh.consecOK = 0
	if rt.ring.Add(id) {
		rt.reg.Counter("lite_fleet_ring_moves_total").Inc()
	}
	rt.reg.Counter("lite_fleet_readmissions_total").Inc()
	rt.shardUpGauge(id).Set(1)
	rt.opts.Logf("shard %s recovered and re-admitted (generation %d, %d in ring)",
		id, h.Generation, rt.ring.Len())
}
