package fleet

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// SupervisorOptions configures the shard supervisor.
type SupervisorOptions struct {
	// Bin is the liteserve binary to spawn.
	Bin string
	// Dir is the fleet state directory; shard i gets Dir/shard<i>/ for its
	// WAL and snapshot.
	Dir string
	// Shards is how many liteserve processes to run (min 1). Shard 0 is
	// the trainer: it gets the WAL, the snapshot file and the live
	// adaptive-update loop; the rest run as followers.
	Shards int
	// ModelPath is the shared boot model every shard loads (trained once
	// by the caller), so shards come up in milliseconds instead of each
	// re-training at boot.
	ModelPath string
	// UpdateBatch, NoValidation and ValidationCases configure the
	// trainer's adaptive-update loop (liteserve defaults when zero).
	UpdateBatch     int
	NoValidation    bool
	ValidationCases int
	// Seed is forwarded to every shard.
	Seed int64
	// ExtraArgs are appended to every shard's command line.
	ExtraArgs []string

	// SpawnTimeout bounds the wait for a shard's "listening addr=" line
	// (default 3m — covers a cold shard that falls back to boot-training).
	SpawnTimeout time.Duration
	// RestartBackoffMin/Max bound the exponential restart backoff after a
	// shard process dies (defaults 500ms and 15s).
	RestartBackoffMin time.Duration
	RestartBackoffMax time.Duration

	// Logf is the supervisor's event log (default stdout — the parseable
	// `litefleet: shard id=... pid=... addr=...` lines land here).
	Logf func(format string, args ...any)
}

func (o SupervisorOptions) withDefaults() SupervisorOptions {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.SpawnTimeout <= 0 {
		o.SpawnTimeout = 3 * time.Minute
	}
	if o.RestartBackoffMin <= 0 {
		o.RestartBackoffMin = 500 * time.Millisecond
	}
	if o.RestartBackoffMax <= 0 {
		o.RestartBackoffMax = 15 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stdout, format+"\n", args...)
		}
	}
	return o
}

// Supervisor spawns N liteserve shard processes on ephemeral ports,
// registers each with the router once its bound address is known, marks a
// shard down the moment its process exits, and restarts it with
// exponential backoff — the router re-admits it when it is listening
// again. TrainerID / TrainerSnapshot report the designated trainer shard
// for the router's tee and flip coordination.
type Supervisor struct {
	opts   SupervisorOptions
	router *Router

	mu   sync.Mutex
	cmds map[int]*exec.Cmd

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewSupervisor builds a supervisor that feeds shard membership into rt.
func NewSupervisor(rt *Router, opts SupervisorOptions) *Supervisor {
	return &Supervisor{
		opts:   opts.withDefaults(),
		router: rt,
		cmds:   map[int]*exec.Cmd{},
		stopCh: make(chan struct{}),
	}
}

// TrainerID returns the designated trainer shard's id ("shard0").
func (s *Supervisor) TrainerID() string { return shardID(0) }

// TrainerSnapshot returns the path the trainer persists each validated
// generation to — the file the flip coordinator points followers at.
func (s *Supervisor) TrainerSnapshot() string {
	return filepath.Join(s.opts.Dir, shardID(0), "snapshot.json")
}

func shardID(i int) string { return fmt.Sprintf("shard%d", i) }

// Start launches every shard's run loop.
func (s *Supervisor) Start() {
	for i := 0; i < s.opts.Shards; i++ {
		s.wg.Add(1)
		go s.runShard(i)
	}
}

// Stop SIGTERMs every live shard, waits up to grace for clean exits, then
// SIGKILLs the stragglers and waits for the run loops.
func (s *Supervisor) Stop(grace time.Duration) {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.signalAll(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return
	case <-time.After(grace):
	}
	s.signalAll(syscall.SIGKILL)
	<-done
}

func (s *Supervisor) signalAll(sig os.Signal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cmd := range s.cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Signal(sig)
		}
	}
}

// runShard keeps one shard alive: spawn, register with the router, wait
// for the process to die, deregister, back off, respawn. The backoff
// resets once a shard has stayed up long enough to be considered healthy.
func (s *Supervisor) runShard(i int) {
	defer s.wg.Done()
	id := shardID(i)
	failures := 0
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		started := time.Now()
		addr, cmd, err := s.spawn(i)
		if err != nil {
			s.opts.Logf("litefleet: shard id=%s spawn failed: %v", id, err)
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		} else {
			s.setCmd(i, cmd)
			role := "follower"
			if i == 0 {
				role = "trainer"
			}
			s.opts.Logf("litefleet: shard id=%s pid=%d addr=%s role=%s", id, cmd.Process.Pid, addr, role)
			s.router.AddShard(id, "http://"+addr)
			werr := cmd.Wait()
			s.setCmd(i, nil)
			s.router.MarkDown(id, fmt.Sprintf("process exited: %v", werr))
			s.router.Metrics().Counter(fmt.Sprintf("lite_fleet_shard_restarts_total{shard=%q}", id)).Inc()
			select {
			case <-s.stopCh:
				return
			default:
			}
			s.opts.Logf("litefleet: shard id=%s exited (%v after %v); restarting", id, werr, time.Since(started).Round(time.Millisecond))
		}
		if time.Since(started) > 30*time.Second {
			failures = 0 // it ran for a while: treat the next death as fresh
		}
		failures++
		backoff := s.opts.RestartBackoffMin << (failures - 1)
		if backoff > s.opts.RestartBackoffMax || backoff <= 0 {
			backoff = s.opts.RestartBackoffMax
		}
		select {
		case <-s.stopCh:
			return
		case <-time.After(backoff):
		}
	}
}

func (s *Supervisor) setCmd(i int, cmd *exec.Cmd) {
	s.mu.Lock()
	s.cmds[i] = cmd
	s.mu.Unlock()
}

// shardArgs builds shard i's liteserve command line: every shard serves
// the shared boot model on an ephemeral port; the trainer additionally
// gets durable state (WAL + snapshot) and the update loop, while
// followers run with -follower (no local retraining, /admin/flip open).
func (s *Supervisor) shardArgs(i int) []string {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-model", s.opts.ModelPath,
	}
	if s.opts.Seed != 0 {
		args = append(args, "-seed", fmt.Sprint(s.opts.Seed))
	}
	if i == 0 {
		dir := filepath.Join(s.opts.Dir, shardID(0))
		args = append(args,
			"-admin",
			"-snapshot", filepath.Join(dir, "snapshot.json"),
			"-wal-dir", filepath.Join(dir, "wal"),
		)
		if s.opts.UpdateBatch > 0 {
			args = append(args, "-update-batch", fmt.Sprint(s.opts.UpdateBatch))
		}
		if s.opts.NoValidation {
			args = append(args, "-no-validation")
		} else if s.opts.ValidationCases > 0 {
			args = append(args, "-validation-cases", fmt.Sprint(s.opts.ValidationCases))
		}
	} else {
		args = append(args, "-follower")
	}
	return append(args, s.opts.ExtraArgs...)
}

// spawn starts shard i and returns its bound address, parsed from the
// `listening addr=HOST:PORT` line liteserve prints — ephemeral ports with
// no race: the kernel assigns the port, the child reports it.
func (s *Supervisor) spawn(i int) (string, *exec.Cmd, error) {
	id := shardID(i)
	if i == 0 {
		if err := os.MkdirAll(filepath.Join(s.opts.Dir, id, "wal"), 0o755); err != nil {
			return "", nil, err
		}
	}
	cmd := exec.Command(s.opts.Bin, s.shardArgs(i)...)
	pr, pw, err := os.Pipe()
	if err != nil {
		return "", nil, err
	}
	cmd.Stdout, cmd.Stderr = pw, pw
	if err := cmd.Start(); err != nil {
		pr.Close()
		pw.Close()
		return "", nil, err
	}
	pw.Close() // the child holds the write end now; EOF on pr == child exit

	addrCh := make(chan string, 1)
	eof := make(chan struct{})
	go func() {
		defer close(eof)
		defer pr.Close()
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "liteserve: listening addr="); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
			s.opts.Logf("[%s] %s", id, line)
		}
	}()

	select {
	case addr := <-addrCh:
		return addr, cmd, nil
	case <-eof:
		return "", cmd, fmt.Errorf("shard %s exited before reporting its address", id)
	case <-s.stopCh:
		return "", cmd, fmt.Errorf("supervisor stopping")
	case <-time.After(s.opts.SpawnTimeout):
		return "", cmd, fmt.Errorf("shard %s did not report an address within %v", id, s.opts.SpawnTimeout)
	}
}
