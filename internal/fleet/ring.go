// Package fleet implements the sharded multi-instance serving tier
// (DESIGN.md §10): a supervisor that runs N liteserve shards on ephemeral
// ports, a reverse-proxy router that consistent-hashes /recommend and
// /feedback by the same (app, datasize bucket, env fingerprint) key the
// per-shard cache and batcher already use — so each shard stays hot on its
// slice of the keyspace — an active health checker that ejects slow or
// dead shards and re-admits them with backoff, and a flip coordinator that
// fans the trainer shard's validated model generations out to every
// follower (publish-then-flip).
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVnodes is the number of virtual nodes each member contributes to
// the ring. More vnodes smooth the key distribution across members and
// tighten the ~1/N key-movement bound on membership changes, at the cost
// of a larger sorted point list.
const DefaultVnodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys map to the
// first member point at or clockwise after the key's hash, so adding or
// removing one of N members moves only ~1/N of the keyspace and every
// other key keeps its owner. Safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []uint64          // sorted vnode hashes
	owner  map[uint64]string // vnode hash → member id
	member map[string]bool
}

// NewRing builds an empty ring; vnodes ≤ 0 uses DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{
		vnodes: vnodes,
		owner:  map[uint64]string{},
		member: map[string]bool{},
	}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a member's vnodes. Reports whether membership changed
// (adding a present member is a no-op). On the vanishingly rare 64-bit
// point collision between two members the lexicographically smaller id
// wins, so ownership is deterministic regardless of add order.
func (r *Ring) Add(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[id] {
		return false
	}
	r.member[id] = true
	for i := 0; i < r.vnodes; i++ {
		p := hash64(fmt.Sprintf("%s#%d", id, i))
		if cur, ok := r.owner[p]; ok {
			if cur <= id {
				continue
			}
			r.owner[p] = id
			continue
		}
		r.owner[p] = id
		r.points = append(r.points, p)
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a] < r.points[b] })
	return true
}

// Remove deletes a member's vnodes; its arc falls to the clockwise
// successors. Reports whether membership changed.
func (r *Ring) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[id] {
		return false
	}
	delete(r.member, id)
	keep := r.points[:0]
	for _, p := range r.points {
		if r.owner[p] == id {
			delete(r.owner, p)
			// The point may belong to a collided survivor: re-derive it.
			if other, ok := r.reclaim(p); ok {
				r.owner[p] = other
				keep = append(keep, p)
			}
			continue
		}
		keep = append(keep, p)
	}
	r.points = keep
	return true
}

// reclaim finds the smallest surviving member that also hashes one of its
// vnodes to point p (collision bookkeeping for Remove).
func (r *Ring) reclaim(p uint64) (string, bool) {
	best := ""
	for id := range r.member {
		for i := 0; i < r.vnodes; i++ {
			if hash64(fmt.Sprintf("%s#%d", id, i)) == p && (best == "" || id < best) {
				best = id
			}
		}
	}
	return best, best != ""
}

// Len reports the current number of members.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Members returns the member ids, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for id := range r.member {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning key; ok is false on an empty ring.
func (r *Ring) Lookup(key string) (string, bool) {
	ids := r.Successors(key, 1)
	if len(ids) == 0 {
		return "", false
	}
	return ids[0], true
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner — the failover order a router walks when the owner is
// unreachable: the first entry is the owner, the rest are the members its
// arc would fall to.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		id := r.owner[r.points[(start+i)%len(r.points)]]
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
