package fleet

import (
	"fmt"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("App%d|b%d|env%d", i%37, i%11, i%3)
	}
	return keys
}

func owners(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		id, ok := r.Lookup(k)
		if !ok {
			continue
		}
		out[k] = id
	}
	return out
}

// TestRingSameKeySameShard: lookups are deterministic and independent of
// member insertion order — the property that lets any router replica (or a
// restarted one) place keys identically.
func TestRingSameKeySameShard(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	ids := []string{"shard0", "shard1", "shard2", "shard3"}
	for _, id := range ids {
		a.Add(id)
	}
	for i := range ids {
		b.Add(ids[len(ids)-1-i]) // reverse insertion order
	}
	for _, k := range sampleKeys(1000) {
		ai, _ := a.Lookup(k)
		bi, _ := b.Lookup(k)
		if ai != bi {
			t.Fatalf("key %q maps to %s and %s depending on insertion order", k, ai, bi)
		}
		ai2, _ := a.Lookup(k)
		if ai != ai2 {
			t.Fatalf("key %q flapped %s -> %s on repeat lookup", k, ai, ai2)
		}
	}
}

// TestRingBoundedMovementOnRemove: removing one of N members must move
// only that member's keys (~1/N of them, within vnode variance); every key
// owned by a surviving member keeps its owner exactly.
func TestRingBoundedMovementOnRemove(t *testing.T) {
	const n = 8
	r := NewRing(0) // DefaultVnodes
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	keys := sampleKeys(10000)
	before := owners(r, keys)

	const victim = "shard3"
	r.Remove(victim)
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		switch {
		case before[k] != victim && after[k] != before[k]:
			t.Fatalf("key %q owned by surviving %s moved to %s on unrelated removal", k, before[k], after[k])
		case before[k] == victim:
			moved++
			if after[k] == victim {
				t.Fatalf("key %q still maps to removed member", k)
			}
		}
	}
	// The victim's share is ~1/N; allow 2x for vnode placement variance.
	bound := 2 * len(keys) / n
	if moved == 0 || moved > bound {
		t.Fatalf("removal moved %d/%d keys, want (0, %d] (~1/N with slack)", moved, len(keys), bound)
	}
}

// TestRingBoundedMovementOnAdd: adding a member steals only its own arc
// (~1/N of keys); everything else stays put.
func TestRingBoundedMovementOnAdd(t *testing.T) {
	const n = 8
	r := NewRing(0)
	for i := 0; i < n-1; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	keys := sampleKeys(10000)
	before := owners(r, keys)

	const newcomer = "shard7"
	r.Add(newcomer)
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		if after[k] == before[k] {
			continue
		}
		if after[k] != newcomer {
			t.Fatalf("key %q moved %s -> %s, but only the new member may take keys", k, before[k], after[k])
		}
		moved++
	}
	bound := 2 * len(keys) / n
	if moved == 0 || moved > bound {
		t.Fatalf("addition moved %d/%d keys, want (0, %d]", moved, len(keys), bound)
	}
}

// TestRingRemoveAddRestoresOwnership: ownership is a pure function of the
// membership set — a shard that leaves and returns gets exactly its old
// arc back, so caches warmed before an outage are warm again after it.
func TestRingRemoveAddRestoresOwnership(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	keys := sampleKeys(5000)
	before := owners(r, keys)
	r.Remove("shard2")
	r.Add("shard2")
	after := owners(r, keys)
	for _, k := range keys {
		if before[k] != after[k] {
			t.Fatalf("key %q: owner %s before outage, %s after recovery", k, before[k], after[k])
		}
	}
}

// TestRingBalance: with DefaultVnodes the per-member load stays within a
// factor ~2 of fair share.
func TestRingBalance(t *testing.T) {
	const n = 6
	r := NewRing(0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	keys := sampleKeys(12000)
	load := map[string]int{}
	for _, k := range keys {
		id, _ := r.Lookup(k)
		load[id]++
	}
	fair := len(keys) / n
	for id, c := range load {
		if c < fair/2 || c > 2*fair {
			t.Fatalf("member %s owns %d keys, fair share %d (allowed [%d, %d])", id, c, fair, fair/2, 2*fair)
		}
	}
}

// TestRingSuccessors: the failover walk starts at the owner and yields
// distinct live members.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("shard%d", i))
	}
	for _, k := range sampleKeys(200) {
		owner, _ := r.Lookup(k)
		succ := r.Successors(k, 3)
		if len(succ) != 3 || succ[0] != owner {
			t.Fatalf("Successors(%q, 3) = %v, want 3 entries starting at owner %s", k, succ, owner)
		}
		seen := map[string]bool{}
		for _, id := range succ {
			if seen[id] {
				t.Fatalf("Successors(%q) repeats %s: %v", k, id, succ)
			}
			seen[id] = true
		}
	}
	if got := r.Successors("anything", 10); len(got) != 4 {
		t.Fatalf("Successors capped at distinct members: got %d, want 4", len(got))
	}
	empty := NewRing(0)
	if _, ok := empty.Lookup("k"); ok {
		t.Fatal("Lookup on empty ring claimed an owner")
	}
}
