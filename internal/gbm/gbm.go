// Package gbm implements histogram-based gradient-boosted regression trees
// — the "LightGBM" family baseline used in the ranking ablation of
// Table VII. Trees are grown leaf-wise on binned features with L2 loss,
// shrinkage, and optional feature/row subsampling.
package gbm

import (
	"math"
	"math/rand"
	"sort"
)

// Params controls boosting.
type Params struct {
	NumRounds    int
	LearningRate float64
	MaxDepth     int
	MinLeaf      int
	NumBins      int
	// FeatureFraction and RowFraction enable stochastic boosting.
	FeatureFraction float64
	RowFraction     float64
}

// DefaultParams returns sensible defaults for the Table VII baseline.
func DefaultParams() Params {
	return Params{
		NumRounds:       120,
		LearningRate:    0.08,
		MaxDepth:        6,
		MinLeaf:         5,
		NumBins:         32,
		FeatureFraction: 0.9,
		RowFraction:     0.9,
	}
}

// Model is a trained boosted ensemble.
type Model struct {
	base   float64
	trees  []*tree
	lr     float64
	edges  [][]float64 // bin edges per feature
	params Params
}

type tree struct {
	feature []int
	thresh  []float64
	left    []int
	right   []int
	value   []float64
	leaf    []bool
}

func (t *tree) predictBinned(row []float64) float64 {
	n := 0
	for !t.leaf[n] {
		if row[t.feature[n]] <= t.thresh[n] {
			n = t.left[n]
		} else {
			n = t.right[n]
		}
	}
	return t.value[n]
}

// Fit trains the model on X (feature rows) and targets y.
func Fit(x [][]float64, y []float64, params Params, rng *rand.Rand) *Model {
	if len(x) == 0 || len(x) != len(y) {
		panic("gbm: empty or mismatched training data")
	}
	if params.NumRounds <= 0 {
		params = DefaultParams()
	}
	m := &Model{lr: params.LearningRate, params: params}
	m.edges = computeBinEdges(x, params.NumBins)

	// Base prediction: mean target.
	for _, v := range y {
		m.base += v
	}
	m.base /= float64(len(y))

	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = m.base
	}
	residual := make([]float64, len(y))
	for round := 0; round < params.NumRounds; round++ {
		for i := range y {
			residual[i] = y[i] - pred[i]
		}
		rows := sampleRows(len(y), params.RowFraction, rng)
		t := growTree(x, residual, rows, m.edges, params, rng)
		m.trees = append(m.trees, t)
		for i := range y {
			pred[i] += m.lr * t.predictBinned(x[i])
		}
	}
	return m
}

// Predict returns the boosted estimate for one feature row.
func (m *Model) Predict(row []float64) float64 {
	out := m.base
	for _, t := range m.trees {
		out += m.lr * t.predictBinned(row)
	}
	return out
}

// NumTrees reports the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

func computeBinEdges(x [][]float64, bins int) [][]float64 {
	nf := len(x[0])
	edges := make([][]float64, nf)
	vals := make([]float64, len(x))
	for f := 0; f < nf; f++ {
		for i := range x {
			vals[i] = x[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		var e []float64
		for b := 1; b < bins; b++ {
			q := sorted[b*len(sorted)/bins]
			if len(e) == 0 || q > e[len(e)-1] {
				e = append(e, q)
			}
		}
		edges[f] = e
	}
	return edges
}

func sampleRows(n int, frac float64, rng *rand.Rand) []int {
	if frac >= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	return rng.Perm(n)[:k]
}

type growNode struct {
	idx   []int
	depth int
	id    int
}

func growTree(x [][]float64, residual []float64, rows []int, edges [][]float64, params Params, rng *rand.Rand) *tree {
	t := &tree{}
	newNode := func() int {
		t.feature = append(t.feature, -1)
		t.thresh = append(t.thresh, 0)
		t.left = append(t.left, -1)
		t.right = append(t.right, -1)
		t.value = append(t.value, 0)
		t.leaf = append(t.leaf, true)
		return len(t.leaf) - 1
	}
	rootID := newNode()
	queue := []growNode{{idx: rows, depth: 0, id: rootID}}

	nf := len(x[0])
	nFeat := nf
	if params.FeatureFraction < 1 {
		nFeat = int(params.FeatureFraction * float64(nf))
		if nFeat < 1 {
			nFeat = 1
		}
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		sum := 0.0
		for _, i := range cur.idx {
			sum += residual[i]
		}
		t.value[cur.id] = sum / float64(len(cur.idx))
		if cur.depth >= params.MaxDepth || len(cur.idx) < 2*params.MinLeaf {
			continue
		}

		feats := rng.Perm(nf)[:nFeat]
		bestGain := 1e-10
		bestFeat, bestBin := -1, -1
		parentSum := sum
		parentCnt := float64(len(cur.idx))
		for _, f := range feats {
			e := edges[f]
			if len(e) == 0 {
				continue
			}
			// Histogram of residual sums per bin.
			histSum := make([]float64, len(e)+1)
			histCnt := make([]float64, len(e)+1)
			for _, i := range cur.idx {
				b := binOf(x[i][f], e)
				histSum[b] += residual[i]
				histCnt[b]++
			}
			var cumSum, cumCnt float64
			for b := 0; b < len(e); b++ {
				cumSum += histSum[b]
				cumCnt += histCnt[b]
				if cumCnt < float64(params.MinLeaf) || parentCnt-cumCnt < float64(params.MinLeaf) {
					continue
				}
				// Variance-gain proxy: sum²/count improvement.
				gain := cumSum*cumSum/cumCnt + (parentSum-cumSum)*(parentSum-cumSum)/(parentCnt-cumCnt) - parentSum*parentSum/parentCnt
				if gain > bestGain {
					bestGain = gain
					bestFeat = f
					bestBin = b
				}
			}
		}
		if bestFeat < 0 {
			continue
		}
		thresh := edges[bestFeat][bestBin]
		var li, ri []int
		for _, i := range cur.idx {
			if x[i][bestFeat] <= thresh {
				li = append(li, i)
			} else {
				ri = append(ri, i)
			}
		}
		if len(li) == 0 || len(ri) == 0 {
			continue
		}
		lid, rid := newNode(), newNode()
		t.leaf[cur.id] = false
		t.feature[cur.id] = bestFeat
		t.thresh[cur.id] = thresh
		t.left[cur.id] = lid
		t.right[cur.id] = rid
		queue = append(queue, growNode{idx: li, depth: cur.depth + 1, id: lid}, growNode{idx: ri, depth: cur.depth + 1, id: rid})
	}
	return t
}

func binOf(v float64, edges []float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// RMSE computes root-mean-squared error of the model on a dataset.
func (m *Model) RMSE(x [][]float64, y []float64) float64 {
	var s float64
	for i := range x {
		d := m.Predict(x[i]) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}
