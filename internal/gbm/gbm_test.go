package gbm

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = 4*x[i][0] - 2*x[i][1] + 1
	}
	m := Fit(x, y, DefaultParams(), rng)
	if rmse := m.RMSE(x, y); rmse > 0.3 {
		t.Fatalf("training RMSE too high: %v", rmse)
	}
}

func TestFitsNonlinearInteraction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 800
	x := make([][]float64, n)
	y := make([]float64, n)
	target := func(v []float64) float64 { return math.Sin(5*v[0]) * (1 + v[1]) }
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = target(x[i])
	}
	m := Fit(x, y, DefaultParams(), rng)
	var mse float64
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		d := m.Predict(p) - target(p)
		mse += d * d
	}
	mse /= 200
	if mse > 0.05 {
		t.Fatalf("test MSE too high: %v", mse)
	}
}

func TestBoostingImprovesWithRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64()}
		y[i] = x[i][0] * x[i][0] * 10
	}
	few := DefaultParams()
	few.NumRounds = 5
	many := DefaultParams()
	many.NumRounds = 150
	mFew := Fit(x, y, few, rand.New(rand.NewSource(4)))
	mMany := Fit(x, y, many, rand.New(rand.NewSource(4)))
	if mMany.RMSE(x, y) >= mFew.RMSE(x, y) {
		t.Fatalf("more rounds should fit better: %v vs %v", mMany.RMSE(x, y), mFew.RMSE(x, y))
	}
}

func TestNumTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 2, 3}
	p := DefaultParams()
	p.NumRounds = 17
	m := Fit(x, y, p, rng)
	if m.NumTrees() != 17 {
		t.Fatalf("NumTrees = %d", m.NumTrees())
	}
}

func TestConstantTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := [][]float64{{0, 1}, {1, 0}, {0.5, 0.5}, {0.2, 0.8}, {0.9, 0.4}, {0.3, 0.1}}
	y := []float64{7, 7, 7, 7, 7, 7}
	m := Fit(x, y, DefaultParams(), rng)
	if got := m.Predict([]float64{0.4, 0.6}); math.Abs(got-7) > 1e-6 {
		t.Fatalf("constant prediction = %v", got)
	}
}

func TestPanicsOnEmptyData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fit(nil, nil, DefaultParams(), rand.New(rand.NewSource(1)))
}

func TestBinOf(t *testing.T) {
	edges := []float64{1, 2, 3}
	cases := []struct {
		v    float64
		want int
	}{{0.5, 0}, {1, 0}, {1.5, 1}, {2, 1}, {2.5, 2}, {3, 2}, {4, 3}}
	for _, c := range cases {
		if got := binOf(c.v, edges); got != c.want {
			t.Fatalf("binOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	x := [][]float64{{0}, {0.2}, {0.4}, {0.6}, {0.8}, {1}}
	y := []float64{0, 1, 2, 3, 4, 5}
	m1 := Fit(x, y, DefaultParams(), rand.New(rand.NewSource(9)))
	m2 := Fit(x, y, DefaultParams(), rand.New(rand.NewSource(9)))
	if m1.Predict([]float64{0.5}) != m2.Predict([]float64{0.5}) {
		t.Fatal("gbm not deterministic under fixed seed")
	}
}
