package workload

// Graph applications of Table V: PageRank, TriangleCount, Strongly-
// ConnectedComponent, ShortestPath, LabelPropagation and PregelOperation.
// These are shuffle-dominated with long iterative tails — the family where
// parallelism, compression and reducer knobs matter most and where key skew
// (power-law degree distributions) inflates stragglers.

func init() {
	registerPageRank()
	registerTriangleCount()
	registerSCC()
	registerShortestPath()
	registerLabelPropagation()
	registerPregelOperation()
}

func registerPageRank() {
	build("PageRank", "PR", "graph", `
val links = sc.textFile(inputPath).map(parsePair).distinct().groupByKey().cache()
var ranks = links.mapValues(v => 1.0)
for (i <- 1 to iters) {
  val contribs = links.join(ranks).values.flatMap { case (urls, rank) => urls.map(url => (url, rank / urls.size)) }
  ranks = contribs.reduceByKey(_ + _).mapValues(0.15 + 0.85 * _)
}
`, 24, 2, 12, 1.5, true, graphSizes(),
		stage{
			name: "buildAdjacency", ops: []string{"textFile", "map", "distinct", "groupByKey", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val lines = sc.textFile(inputPath)`,
				`val pairs = lines.map { s => val parts = s.split("\\s+"); (parts(0), parts(1)) }`,
				`val links = pairs.distinct().groupByKey().cache()`,
				`var ranks = links.mapValues(v => 1.0)`,
			},
		},
		stage{
			name: "contributions", ops: []string{"join", "flatMap", "mapValues"},
			inputFrac: 0.9, shuffleIn: 0.7, iterated: true, readsCache: true,
			lines: []string{
				`val contribs = links.join(ranks).values.flatMap { case (urls, rank) =>`,
				`  val size = urls.size`,
				`  urls.map(url => (url, rank / size)) }`,
			},
		},
		stage{
			name: "rankUpdate", ops: []string{"reduceByKey", "mapValues"},
			inputFrac: 0.8, shuffleIn: 0.8, iterated: true,
			lines: []string{
				`ranks = contribs.reduceByKey(_ + _).mapValues(sum => 0.15 + 0.85 * sum)`,
			},
		},
		stage{
			name: "topRanks", ops: []string{"map", "sortByKey", "take"},
			inputFrac: 0.5, shuffleIn: 0.5, outputFrac: 0.0005,
			lines: []string{
				`val output = ranks.map { case (url, rank) => (rank, url) }.sortByKey(ascending = false)`,
				`output.take(20).foreach { case (rank, url) => println(s"$url has rank $rank") }`,
			},
		},
	)
}

func registerTriangleCount() {
	build("TriangleCount", "TC", "graph", `
val graph = GraphLoader.edgeListFile(sc, inputPath, canonicalOrientation = true)
  .partitionBy(PartitionStrategy.RandomVertexCut)
val triCounts = graph.triangleCount().vertices
`, 20, 2, 1, 1.7, true, graphSizes(),
		stage{
			name: "loadCanonicalEdges", ops: []string{"textFile", "map", "filter", "distinct", "partitionBy"},
			inputFrac: 1.0,
			lines: []string{
				`val edges = sc.textFile(inputPath).map { line =>`,
				`  val fields = line.split("\\s+")`,
				`  if (fields(0).toLong < fields(1).toLong) Edge(fields(0).toLong, fields(1).toLong, 1)`,
				`  else Edge(fields(1).toLong, fields(0).toLong, 1) }`,
				`val canonical = edges.filter(e => e.srcId != e.dstId).distinct()`,
				`val graph = Graph.fromEdges(canonical, 0).partitionBy(PartitionStrategy.RandomVertexCut)`,
			},
		},
		stage{
			name: "collectNeighborSets", ops: []string{"mapPartitions", "groupByKey", "mapValues", "cache"},
			inputFrac: 0.95, shuffleIn: 0.9,
			lines: []string{
				`val nbrSets: VertexRDD[VertexSet] = graph.aggregateMessages[VertexSet](ctx => {`,
				`  ctx.sendToSrc(openHashSetOf(ctx.dstId)); ctx.sendToDst(openHashSetOf(ctx.srcId))`,
				`}, (a, b) => { b.iterator.foreach(a.add); a })`,
				`val setGraph = graph.outerJoinVertices(nbrSets) { (vid, _, optSet) => optSet.getOrElse(emptySet) }.cache()`,
			},
		},
		stage{
			name: "countIntersections", ops: []string{"zipPartitions", "map", "reduceByKey"},
			inputFrac: 1.2, shuffleIn: 0.8,
			lines: []string{
				`val counters = setGraph.aggregateMessages[Long](ctx => {`,
				`  val (smallSet, largeSet) = if (ctx.srcAttr.size < ctx.dstAttr.size) (ctx.srcAttr, ctx.dstAttr) else (ctx.dstAttr, ctx.srcAttr)`,
				`  var counter = 0L; val iter = smallSet.iterator`,
				`  while (iter.hasNext) { val vid = iter.next(); if (vid != ctx.srcId && vid != ctx.dstId && largeSet.contains(vid)) counter += 1 }`,
				`  ctx.sendToSrc(counter); ctx.sendToDst(counter) }, _ + _)`,
			},
		},
		stage{
			name: "normalizeCounts", ops: []string{"join", "mapValues", "count"},
			inputFrac: 0.3, shuffleIn: 0.3, outputFrac: 0.0001,
			lines: []string{
				`val triCounts = setGraph.outerJoinVertices(counters) { (vid, _, optCounter) =>`,
				`  optCounter.getOrElse(0L) / 2 }`,
				`val totalTriangles = triCounts.vertices.map(_._2).reduce(_ + _) / 3`,
			},
		},
	)
}

func registerSCC() {
	build("StronglyConnectedComponent", "SCC", "graph", `
val graph = GraphLoader.edgeListFile(sc, inputPath)
val sccGraph = graph.stronglyConnectedComponents(numIter)
val componentCounts = sccGraph.vertices.map(_._2).countByValue()
`, 22, 2, 16, 1.4, true, graphSizes(),
		stage{
			name: "loadGraph", ops: []string{"textFile", "map", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val edges = sc.textFile(inputPath).map { line =>`,
				`  val fields = line.split("\\s+"); Edge(fields(0).toLong, fields(1).toLong, ()) }`,
				`var sccGraph = Graph.fromEdges(edges, -1L).mapVertices((vid, _) => vid).cache()`,
			},
		},
		stage{
			name: "trimSinksAndSources", ops: []string{"mapPartitions", "reduceByKey", "join", "filter"},
			inputFrac: 0.7, shuffleIn: 0.5, iterated: true, readsCache: true,
			extraEdges: [][2]int{{0, 2}},
			lines: []string{
				`val outDegrees = workGraph.aggregateMessages[Long](ctx => ctx.sendToSrc(1L), _ + _)`,
				`val inDegrees = workGraph.aggregateMessages[Long](ctx => ctx.sendToDst(1L), _ + _)`,
				`workGraph = workGraph.outerJoinVertices(outDegrees)((vid, vd, deg) => (vd, deg.getOrElse(0L)))`,
				`  .subgraph(vpred = (vid, vd) => vd._2 > 0).mapVertices((vid, vd) => vd._1).cache()`,
			},
		},
		stage{
			name: "forwardReach", ops: []string{"join", "flatMap", "reduceByKey", "mapValues"},
			inputFrac: 0.8, shuffleIn: 0.7, iterated: true, readsCache: true,
			lines: []string{
				`val fwd = Pregel(workGraph.mapVertices((vid, _) => vid), Long.MaxValue)(`,
				`  vprog = (vid, color, msg) => math.min(color, msg),`,
				`  sendMsg = ctx => if (ctx.srcAttr < ctx.dstAttr) Iterator((ctx.dstId, ctx.srcAttr)) else Iterator.empty,`,
				`  mergeMsg = math.min)`,
			},
		},
		stage{
			name: "backwardReach", ops: []string{"join", "flatMap", "reduceByKey", "filter"},
			inputFrac: 0.8, shuffleIn: 0.7, iterated: true, readsCache: true,
			lines: []string{
				`val bwd = Pregel(fwd.reverse, Long.MaxValue)(`,
				`  vprog = (vid, attr, msg) => if (msg == attr._1) (attr._1, true) else attr,`,
				`  sendMsg = ctx => if (ctx.srcAttr._2 && !ctx.dstAttr._2 && ctx.dstAttr._1 == ctx.srcAttr._1)`,
				`    Iterator((ctx.dstId, ctx.srcAttr._1)) else Iterator.empty,`,
				`  mergeMsg = math.min)`,
				`sccGraph = sccGraph.outerJoinVertices(bwd.vertices)((vid, old, scc) => scc.map(_._1).getOrElse(old))`,
			},
		},
		stage{
			name: "componentHistogram", ops: []string{"map", "reduceByKey", "collect"},
			inputFrac: 0.3, shuffleIn: 0.3, outputFrac: 0.0008,
			lines: []string{
				`val componentSizes = sccGraph.vertices.map { case (vid, comp) => (comp, 1L) }.reduceByKey(_ + _)`,
				`val histogram = componentSizes.collect().sortBy(-_._2).take(100)`,
			},
		},
	)
}

func registerShortestPath() {
	build("ShortestPath", "SP", "graph", `
val graph = GraphLoader.edgeListFile(sc, inputPath)
val result = ShortestPaths.run(graph, landmarks)
val distances = result.vertices.mapValues(_.toSeq.sortBy(_._1).mkString(","))
`, 22, 2, 14, 1.3, true, graphSizes(),
		stage{
			name: "initLandmarks", ops: []string{"textFile", "map", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val graph = GraphLoader.edgeListFile(sc, inputPath)`,
				`val spGraph = graph.mapVertices { (vid, _) =>`,
				`  if (landmarks.contains(vid)) makeMap(vid -> 0) else makeMap() }.cache()`,
			},
		},
		stage{
			name: "relaxEdges", ops: []string{"join", "flatMap", "reduceByKey"},
			inputFrac: 0.85, shuffleIn: 0.75, iterated: true, readsCache: true,
			lines: []string{
				`val messages = spGraph.aggregateMessages[SPMap](ctx => {`,
				`  val newAttr = incrementMap(ctx.dstAttr)`,
				`  if (ctx.srcAttr != addMaps(newAttr, ctx.srcAttr)) ctx.sendToSrc(newAttr)`,
				`}, addMaps)`,
			},
		},
		stage{
			name: "updateDistances", ops: []string{"join", "mapValues"},
			inputFrac: 0.6, shuffleIn: 0.5, iterated: true,
			lines: []string{
				`spGraph = spGraph.joinVertices(messages) { (vid, attr, msg) => addMaps(attr, msg) }`,
			},
		},
		stage{
			name: "emitDistances", ops: []string{"mapValues", "saveAsTextFile"},
			inputFrac: 0.4,
			lines: []string{
				`val distances = spGraph.vertices.mapValues(spMap => spMap.toSeq.sortBy(_._1).mkString(","))`,
				`distances.saveAsTextFile(outputPath)`,
			},
		},
	)
}

func registerLabelPropagation() {
	build("LabelPropagation", "LP", "graph", `
val graph = GraphLoader.edgeListFile(sc, inputPath)
val communities = LabelPropagation.run(graph, maxSteps)
val sizes = communities.vertices.map(_._2).countByValue()
`, 22, 2, 10, 1.4, true, graphSizes(),
		stage{
			name: "loadAndLabel", ops: []string{"textFile", "map", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val graph = GraphLoader.edgeListFile(sc, inputPath)`,
				`var lpGraph = graph.mapVertices { case (vid, _) => vid }.cache()`,
			},
		},
		stage{
			name: "sendLabels", ops: []string{"join", "flatMap", "reduceByKey"},
			inputFrac: 0.9, shuffleIn: 0.8, iterated: true, readsCache: true,
			lines: []string{
				`val messages = lpGraph.aggregateMessages[Map[VertexId, Long]](ctx => {`,
				`  ctx.sendToSrc(Map(ctx.dstAttr -> 1L)); ctx.sendToDst(Map(ctx.srcAttr -> 1L))`,
				`}, mergeLabelCounts)`,
			},
		},
		stage{
			name: "adoptMajorityLabel", ops: []string{"join", "mapValues"},
			inputFrac: 0.6, shuffleIn: 0.5, iterated: true,
			lines: []string{
				`lpGraph = lpGraph.joinVertices(messages) { (vid, attr, message) =>`,
				`  if (message.isEmpty) attr else message.maxBy(_._2)._1 }`,
			},
		},
		stage{
			name: "communitySizes", ops: []string{"map", "reduceByKey", "collect"},
			inputFrac: 0.3, shuffleIn: 0.3, outputFrac: 0.0008,
			lines: []string{
				`val communitySizes = lpGraph.vertices.map { case (_, label) => (label, 1L) }.reduceByKey(_ + _)`,
				`communitySizes.collect().sortBy(-_._2).take(50).foreach(println)`,
			},
		},
	)
}

func registerPregelOperation() {
	build("PregelOperation", "PO", "graph", `
val graph = GraphLoader.edgeListFile(sc, inputPath).mapEdges(e => e.attr.toDouble)
val sssp = initialGraph.pregel(Double.PositiveInfinity)(vprog, sendMessage, messageCombiner)
println(sssp.vertices.collect.mkString("\n"))
`, 22, 2, 12, 1.2, true, graphSizes(),
		stage{
			name: "initializeGraph", ops: []string{"textFile", "map", "mapValues", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val graph = GraphLoader.edgeListFile(sc, inputPath).mapEdges(e => e.attr.toDouble)`,
				`val initialGraph = graph.mapVertices((id, _) => if (id == sourceId) 0.0 else Double.PositiveInfinity)`,
				`var g = initialGraph.cache()`,
			},
		},
		stage{
			name: "computeAndSend", ops: []string{"zipPartitions", "flatMap", "reduceByKey"},
			inputFrac: 0.85, shuffleIn: 0.75, iterated: true, readsCache: true,
			lines: []string{
				`val messages = g.aggregateMessages[Double](triplet => {`,
				`  if (triplet.srcAttr + triplet.attr < triplet.dstAttr)`,
				`    triplet.sendToDst(triplet.srcAttr + triplet.attr)`,
				`}, (a, b) => math.min(a, b))`,
				`activeMessages = messages.count()`,
			},
		},
		stage{
			name: "applyVertexProgram", ops: []string{"join", "mapValues", "cache"},
			inputFrac: 0.6, shuffleIn: 0.5, iterated: true,
			lines: []string{
				`g = g.joinVertices(messages)((id, dist, newDist) => math.min(dist, newDist)).cache()`,
				`prevG.unpersistVertices(blocking = false)`,
			},
		},
		stage{
			name: "collectResult", ops: []string{"map", "collect"},
			inputFrac: 0.3, outputFrac: 0.001,
			lines: []string{
				`val shortest = g.vertices.map { case (vid, dist) => s"$vid -> $dist" }`,
				`println(shortest.collect().mkString("\n"))`,
			},
		},
	)
}
