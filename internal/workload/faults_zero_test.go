package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"lite/internal/sparksim"
)

// A zero-intensity fault profile attached to the environment must leave the
// simulation of every one of the 15 workloads bit-for-bit identical to a run
// with no profile: the fault machinery must be provably inert when off.
func TestZeroIntensityFaultsBitForBitOnAllWorkloads(t *testing.T) {
	zero := &sparksim.FaultProfile{Seed: 7, MaxTaskFailures: 4, MaxStageAttempts: 4}
	rng := rand.New(rand.NewSource(11))
	for _, app := range All() {
		data := app.Spec.MakeData(app.Sizes.Train[0])
		cfgs := []sparksim.Config{sparksim.DefaultConfig(), sparksim.RandomConfig(rng)}
		for _, env := range sparksim.AllClusters {
			for ci, cfg := range cfgs {
				plain := sparksim.Simulate(app.Spec, data, env, cfg)
				faulted := sparksim.Simulate(app.Spec, data, env.WithFaults(zero), cfg)
				if !reflect.DeepEqual(plain, faulted) {
					t.Fatalf("%s on cluster %s (config %d): zero-intensity profile changed the result",
						app.Spec.Name, env.Name, ci)
				}
			}
		}
	}
}

func TestByNameCaseInsensitive(t *testing.T) {
	for _, name := range []string{"WordCount", "wordcount", "WORDCOUNT", "wc", "WC"} {
		if got := ByName(name); got == nil || got.Spec.Name != "WordCount" {
			t.Fatalf("ByName(%q) failed to find WordCount", name)
		}
	}
	if ByName("no-such-app") != nil {
		t.Fatal("unknown name must return nil")
	}
}
