package workload

// Machine-learning applications of Table V: LinearRegression, Logistic-
// Regression, SVM, DecisionTree, KMeans, ALS (matrix factorization) and
// SVD++. All are iterative: they cache the training set and run
// gradient/statistics stages once per iteration, which is exactly the
// workload shape that makes memory.fraction / storageFraction tuning
// matter.

func init() {
	registerLinearRegression()
	registerLogisticRegression()
	registerSVM()
	registerDecisionTree()
	registerKMeans()
	registerALS()
	registerSVDPlusPlus()
}

func registerLinearRegression() {
	build("LinearRegression", "LR", "ml", `
val data = sc.textFile(inputPath).map(parsePoint).cache()
val model = LinearRegressionWithSGD.train(data, numIterations, stepSize)
model.save(sc, outputPath)
`, 120, 16, 12, 1.0, false, mlSizes(),
		stage{
			name: "loadAndParse", ops: []string{"textFile", "map", "filter", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val lines = sc.textFile(inputPath, minPartitions)`,
				`val parsed = lines.map { line => val parts = line.split(',')`,
				`  LabeledPoint(parts(0).toDouble, Vectors.dense(parts.tail.map(_.toDouble))) }`,
				`val valid = parsed.filter(p => !p.features.toArray.exists(_.isNaN))`,
				`val data = valid.cache()`,
			},
		},
		stage{
			name: "countSamples", ops: []string{"count"},
			inputFrac: 0.2, outputFrac: 0.0001,
			lines: []string{
				`val numExamples = data.count()`,
				`require(numExamples > 0, "empty training set")`,
			},
		},
		stage{
			name: "gradientDescent", ops: []string{"sample", "map", "treeAggregate"},
			inputFrac: 0.9, outputFrac: 0.0002, iterated: true, readsCache: true,
			lines: []string{
				`val sampled = data.sample(false, miniBatchFraction, 42 + i)`,
				`val (gradientSum, lossSum, batchSize) = sampled.map { point =>`,
				`  val (grad, loss) = gradient.compute(point.features, point.label, weights)`,
				`  (grad, loss, 1L) }.treeAggregate((BDV.zeros[Double](n), 0.0, 0L))(seqOp, combOp)`,
				`weights = updater.compute(weights, gradientSum / batchSize.toDouble, stepSize, i, regParam)._1`,
				`lossHistory += lossSum / batchSize`,
			},
		},
		stage{
			name: "evaluateModel", ops: []string{"map", "reduce"},
			inputFrac: 0.9, outputFrac: 0.0001, readsCache: true,
			lines: []string{
				`val MSE = data.map { point =>`,
				`  val prediction = model.predict(point.features)`,
				`  val err = point.label - prediction; err * err`,
				`}.reduce(_ + _) / numExamples`,
			},
		},
		stage{
			name: "saveModel", ops: []string{"map", "saveAsTextFile"},
			inputFrac: 0.05,
			lines: []string{
				`val modelRDD = sc.parallelize(Seq(model.weights.toArray.mkString(",")))`,
				`modelRDD.map(w => s"weights:$w").saveAsTextFile(outputPath)`,
			},
		},
	)
}

func registerLogisticRegression() {
	build("LogisticRegression", "LGR", "ml", `
val training = sc.textFile(inputPath).map(parseLabeledPoint).cache()
val model = new LogisticRegressionWithLBFGS().setNumClasses(numClasses).run(training)
val metrics = new MulticlassMetrics(predictionAndLabels)
`, 120, 16, 10, 1.0, false, mlSizes(),
		stage{
			name: "loadAndParse", ops: []string{"textFile", "map", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val training = sc.textFile(inputPath).map { line =>`,
				`  val arr = line.split("\\s+")`,
				`  LabeledPoint(arr.head.toDouble, Vectors.sparse(dim, parseIndices(arr.tail), parseValues(arr.tail)))`,
				`}.cache()`,
			},
		},
		stage{
			name: "statistics", ops: []string{"map", "aggregate"},
			inputFrac: 0.6, outputFrac: 0.0001,
			lines: []string{
				`val summarizer = training.map(_.features).aggregate(new MultivariateOnlineSummarizer)(`,
				`  (agg, v) => agg.add(v), (a, b) => a.merge(b))`,
				`val featureStd = summarizer.variance.toArray.map(math.sqrt)`,
			},
		},
		stage{
			name: "lbfgsIteration", ops: []string{"map", "treeAggregate"},
			inputFrac: 0.9, outputFrac: 0.0002, iterated: true, readsCache: true,
			lines: []string{
				`val (gradSum, lossSum) = training.map { case LabeledPoint(label, features) =>`,
				`  val margin = -1.0 * dot(weights, features)`,
				`  val multiplier = (1.0 / (1.0 + math.exp(margin))) - label`,
				`  (scal(multiplier, features), log1pExp(margin))`,
				`}.treeAggregate((Vectors.zeros(dim), 0.0))(seqOp = addInPlace, combOp = mergeInPlace)`,
				`state = lbfgs.step(gradSum, lossSum + regVal(weights))`,
			},
		},
		stage{
			name: "predictAndScore", ops: []string{"map", "mapValues", "count"},
			inputFrac: 0.9, outputFrac: 0.0001, readsCache: true,
			lines: []string{
				`val predictionAndLabels = training.map { case LabeledPoint(label, features) =>`,
				`  (model.predict(features), label) }`,
				`val accuracy = predictionAndLabels.filter(pl => pl._1 == pl._2).count.toDouble / n`,
			},
		},
	)
}

func registerSVM() {
	build("SVM", "SVM", "ml", `
val data = MLUtils.loadLibSVMFile(sc, inputPath).cache()
val model = SVMWithSGD.train(data, numIterations, stepSize, regParam)
model.clearThreshold()
`, 150, 32, 12, 1.0, false, mlSizes(),
		stage{
			name: "loadLibSVM", ops: []string{"textFile", "map", "filter", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val parsed = sc.textFile(path).map(_.trim).filter(line => !(line.isEmpty || line.startsWith("#")))`,
				`val data = parsed.map { line =>`,
				`  val items = line.split(' ')`,
				`  val (indices, values) = items.tail.filter(_.nonEmpty).map { item =>`,
				`    val entry = item.split(':'); (entry(0).toInt - 1, entry(1).toDouble) }.unzip`,
				`  LabeledPoint(items.head.toDouble, Vectors.sparse(numFeatures, indices, values)) }.cache()`,
			},
		},
		stage{
			name: "hingeGradient", ops: []string{"sample", "map", "treeAggregate"},
			inputFrac: 0.9, outputFrac: 0.0002, iterated: true, readsCache: true,
			lines: []string{
				`val batch = data.sample(false, miniBatchFraction, seed + i)`,
				`val (gradientSum, lossSum) = batch.map { p =>`,
				`  val dotProduct = dot(p.features, weights)`,
				`  val labelScaled = 2 * p.label - 1.0`,
				`  if (1.0 > labelScaled * dotProduct) (scal(-labelScaled, p.features), 1.0 - labelScaled * dotProduct)`,
				`  else (Vectors.zeros(dim), 0.0)`,
				`}.treeAggregate((Vectors.zeros(dim), 0.0))(seqOp, combOp)`,
				`weights = svmUpdater.compute(weights, gradientSum, stepSize / math.sqrt(i), i, regParam)._1`,
			},
		},
		stage{
			name: "areaUnderROC", ops: []string{"map", "sortByKey", "zipWithIndex", "reduce"},
			inputFrac: 0.9, shuffleIn: 0.4, outputFrac: 0.0001, readsCache: true,
			lines: []string{
				`val scoreAndLabels = data.map(p => (model.predict(p.features), p.label))`,
				`val ordered = scoreAndLabels.sortByKey(ascending = false).zipWithIndex()`,
				`val auROC = new BinaryClassificationMetrics(scoreAndLabels).areaUnderROC()`,
			},
		},
	)
}

func registerDecisionTree() {
	build("DecisionTree", "DT", "ml", `
val data = sc.textFile(inputPath).map(parsePoint).cache()
val model = DecisionTree.trainClassifier(data, numClasses, categoricalFeaturesInfo,
  impurity = "gini", maxDepth, maxBins)
`, 140, 28, 8, 1.1, false, mlSizes(),
		stage{
			name: "loadPoints", ops: []string{"textFile", "map", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val data = sc.textFile(inputPath).map { line =>`,
				`  val parts = line.split(',').map(_.toDouble)`,
				`  LabeledPoint(parts.head, Vectors.dense(parts.tail)) }.cache()`,
			},
		},
		stage{
			name: "findSplits", ops: []string{"sample", "map", "collect"},
			inputFrac: 0.25, outputFrac: 0.002,
			lines: []string{
				`val sampledInput = data.sample(withReplacement = false, fraction = samplesFractionForFindSplits, seed = 1)`,
				`val splits = sampledInput.map(_.features).collect().transpose.map(findSplitsForFeature)`,
				`val bins = DecisionTreeMetadata.buildBins(splits, maxBins)`,
			},
		},
		stage{
			name: "treePointConversion", ops: []string{"map", "cache"},
			inputFrac: 0.9, readsCache: true,
			lines: []string{
				`val treeInput = data.map(point => TreePoint.labeledPointToTreePoint(point, splits, bins)).cache()`,
				`val baggedInput = BaggedPoint.convertToBaggedRDD(treeInput, subsamplingRate, numTrees = 1)`,
			},
		},
		stage{
			name: "collectNodeStats", ops: []string{"mapPartitions", "aggregateByKey", "collect"},
			inputFrac: 0.9, shuffleIn: 0.25, outputFrac: 0.004, iterated: true, readsCache: true,
			lines: []string{
				`val nodeStats = baggedInput.mapPartitions { points =>`,
				`  val statsAggregator = new DTStatsAggregator(metadata, featuresForNode)`,
				`  points.foreach(p => binSeqOp(statsAggregator, p, nodesForGroup))`,
				`  statsAggregator.iterator`,
				`}.aggregateByKey(zeroStats)(mergeValue = _.merge(_), mergeCombiners = _.merge(_))`,
				`val bestSplits = nodeStats.collect().map { case (nodeId, stats) => binsToBestSplit(stats, splits, featuresForNode) }`,
				`nodeQueue ++= bestSplits.flatMap(split => expandNode(split, maxDepth))`,
			},
		},
		stage{
			name: "predictError", ops: []string{"map", "filter", "count"},
			inputFrac: 0.9, outputFrac: 0.0001, readsCache: true,
			lines: []string{
				`val labelAndPreds = data.map(point => (point.label, model.predict(point.features)))`,
				`val testErr = labelAndPreds.filter(r => r._1 != r._2).count().toDouble / data.count()`,
			},
		},
	)
}

func registerKMeans() {
	build("KMeans", "KM", "ml", `
val points = sc.textFile(inputPath).map(parseVector).cache()
val model = KMeans.train(points, k, maxIterations, initializationMode = "k-means||")
val cost = model.computeCost(points)
`, 100, 20, 14, 1.0, false, mlSizes(),
		stage{
			name: "loadVectors", ops: []string{"textFile", "map", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val points = sc.textFile(inputPath).map { line =>`,
				`  Vectors.dense(line.split(' ').map(_.toDouble)) }.cache()`,
				`val norms = points.map(Vectors.norm(_, 2.0)).cache()`,
			},
		},
		stage{
			name: "initCenters", ops: []string{"sample", "collect", "broadcast"},
			inputFrac: 0.15, outputFrac: 0.003,
			lines: []string{
				`val sample = points.sample(false, math.min(1.0, 5.0 * k / numPoints), seed).collect()`,
				`var centers = sample.take(k).map(_.toDense)`,
				`val bcCenters = sc.broadcast(centers)`,
			},
		},
		stage{
			name: "lloydIteration", ops: []string{"mapPartitions", "reduceByKey", "collect"},
			inputFrac: 0.95, shuffleIn: 0.12, outputFrac: 0.002, iterated: true, readsCache: true,
			lines: []string{
				`val totalContribs = points.mapPartitions { iter =>`,
				`  val sums = Array.fill(k)(Vectors.zeros(dim)); val counts = Array.fill(k)(0L)`,
				`  iter.foreach { point =>`,
				`    val (bestCenter, cost) = KMeans.findClosest(bcCenters.value, point)`,
				`    axpy(1.0, point, sums(bestCenter)); counts(bestCenter) += 1 }`,
				`  sums.indices.filter(counts(_) > 0).map(j => (j, (sums(j), counts(j)))).iterator`,
				`}.reduceByKey { case ((s1, c1), (s2, c2)) => axpy(1.0, s2, s1); (s1, c1 + c2) }.collectAsMap()`,
				`centers = totalContribs.map { case (j, (sum, count)) => scal(1.0 / count, sum); sum.toDense }.toArray`,
			},
		},
		stage{
			name: "computeCost", ops: []string{"map", "reduce"},
			inputFrac: 0.95, outputFrac: 0.0001, readsCache: true,
			lines: []string{
				`val cost = points.map(p => KMeans.pointCost(bcCenters.value, p)).reduce(_ + _)`,
				`logInfo(s"KMeans cost = $cost after $maxIterations iterations")`,
			},
		},
	)
}

func registerALS() {
	build("ALS", "ALS", "ml", `
val ratings = sc.textFile(inputPath).map(parseRating).cache()
val model = ALS.train(ratings, rank, numIterations, lambda)
val predictions = model.predict(usersProducts)
`, 40, 3, 10, 1.2, false, mlSizes(),
		stage{
			name: "loadRatings", ops: []string{"textFile", "map", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val ratings = sc.textFile(inputPath).map { line =>`,
				`  val fields = line.split("::")`,
				`  Rating(fields(0).toInt, fields(1).toInt, fields(2).toDouble) }.cache()`,
			},
		},
		stage{
			name: "makeBlocks", ops: []string{"map", "partitionBy", "mapPartitions", "cache"},
			inputFrac: 0.95, shuffleIn: 0.9,
			lines: []string{
				`val blockRatings = ratings.map(r => (userPartitioner.getPartition(r.user), r))`,
				`  .partitionBy(new HashPartitioner(numUserBlocks))`,
				`val (userInBlocks, userOutBlocks) = makeBlocks("user", blockRatings, userPart, itemPart)`,
				`userInBlocks.cache(); userOutBlocks.cache()`,
			},
		},
		stage{
			name: "updateUserFactors", ops: []string{"join", "flatMap", "groupByKey", "mapValues"},
			inputFrac: 0.85, shuffleIn: 0.7, iterated: true, readsCache: true,
			extraEdges: [][2]int{{0, 2}},
			lines: []string{
				`val merged = userOutBlocks.join(itemFactors).flatMap { case (blockId, (outBlock, factors)) =>`,
				`  outBlock.view.zipWithIndex.map { case (dst, idx) => (dst, (blockId, factors(idx))) } }`,
				`val grouped = merged.groupByKey(new HashPartitioner(numItemBlocks))`,
				`itemFactors = grouped.mapValues(msgs => leastSquaresNE(msgs, rank, lambda))`,
			},
		},
		stage{
			name: "updateItemFactors", ops: []string{"join", "flatMap", "groupByKey", "mapValues"},
			inputFrac: 0.85, shuffleIn: 0.7, iterated: true, readsCache: true,
			extraEdges: [][2]int{{0, 2}},
			lines: []string{
				`val itemMsgs = itemOutBlocks.join(userFactors).flatMap { case (blockId, (outBlock, factors)) =>`,
				`  outBlock.view.zipWithIndex.map { case (dst, idx) => (dst, (blockId, factors(idx))) } }`,
				`userFactors = itemMsgs.groupByKey(new HashPartitioner(numUserBlocks))`,
				`  .mapValues(msgs => leastSquaresNE(msgs, rank, lambda))`,
			},
		},
		stage{
			name: "computeRMSE", ops: []string{"map", "join", "map", "reduce"},
			inputFrac: 0.8, shuffleIn: 0.5, outputFrac: 0.0001,
			extraEdges: [][2]int{{0, 3}},
			lines: []string{
				`val predictions = model.predict(ratings.map(r => (r.user, r.product)))`,
				`val ratesAndPreds = ratings.map(r => ((r.user, r.product), r.rating))`,
				`  .join(predictions.map(p => ((p.user, p.product), p.rating)))`,
				`val MSE = ratesAndPreds.map { case (_, (r1, r2)) => val err = r1 - r2; err * err }.reduce(_ + _) / n`,
			},
		},
	)
}

func registerSVDPlusPlus() {
	build("SVDPlusPlus", "SVD", "ml", `
val edges = sc.textFile(inputPath).map(parseEdge)
val conf = new SVDPlusPlus.Conf(rank, maxIters, minVal, maxVal, gamma1, gamma2, gamma6, gamma7)
val (graph, mean) = SVDPlusPlus.run(edges, conf)
`, 36, 3, 8, 1.3, false, graphSizes(),
		stage{
			name: "loadEdges", ops: []string{"textFile", "map", "cache"},
			inputFrac: 1.0,
			lines: []string{
				`val edges = sc.textFile(inputPath).map { line =>`,
				`  val fields = line.split(' ')`,
				`  Edge(fields(0).toLong, fields(1).toLong, fields(2).toDouble) }.cache()`,
			},
		},
		stage{
			name: "buildGraph", ops: []string{"map", "reduceByKey", "join", "cache"},
			inputFrac: 0.95, shuffleIn: 0.8,
			extraEdges: [][2]int{{0, 2}},
			lines: []string{
				`val ratingMean = edges.map(_.attr).reduce(_ + _) / edges.count()`,
				`var g = Graph.fromEdges(edges, defaultValue = (randomFactor(rank), randomFactor(rank), 0.0, 0.0))`,
				`val degrees = g.aggregateMessages[Long](ctx => { ctx.sendToSrc(1L); ctx.sendToDst(1L) }, _ + _)`,
				`g = g.outerJoinVertices(degrees) { (vid, vd, deg) => (vd._1, vd._2, vd._3, deg.getOrElse(0L).toDouble) }.cache()`,
			},
		},
		stage{
			name: "gradientPhase1", ops: []string{"zipPartitions", "flatMap", "reduceByKey", "join"},
			inputFrac: 0.9, shuffleIn: 0.6, iterated: true, readsCache: true,
			extraEdges: [][2]int{{1, 3}},
			lines: []string{
				`val t0 = g.aggregateMessages[(Array[Double], Int)](ctx =>`,
				`  { ctx.sendToSrc((ctx.dstAttr._2, 1)); ctx.sendToDst((ctx.srcAttr._2, 1)) },`,
				`  (a, b) => (blas.daxpy(rank, 1.0, b._1, 1, a._1, 1), a._2 + b._2))`,
				`g = g.outerJoinVertices(t0) { (vid, vd, msg) => updateImplicitFeedback(vd, msg, gamma7) }`,
			},
		},
		stage{
			name: "gradientPhase2", ops: []string{"zipPartitions", "flatMap", "reduceByKey", "join"},
			inputFrac: 0.9, shuffleIn: 0.6, iterated: true, readsCache: true,
			extraEdges: [][2]int{{1, 3}},
			lines: []string{
				`val t1 = g.aggregateMessages[(Array[Double], Array[Double], Double)](sendMsgTrainF(conf, ratingMean), mergeMsg)`,
				`g = g.outerJoinVertices(t1) { (vid, vd, msg) =>`,
				`  applyGradient(vd, msg, conf.gamma1, conf.gamma2, conf.gamma6) }.cache()`,
			},
		},
		stage{
			name: "computeError", ops: []string{"zipPartitions", "map", "reduce"},
			inputFrac: 0.85, outputFrac: 0.0001, readsCache: true,
			lines: []string{
				`val err = g.aggregateMessages[Double](ctx => {`,
				`  val pred = predictRating(ctx.srcAttr, ctx.dstAttr, ratingMean, conf.minVal, conf.maxVal)`,
				`  ctx.sendToDst((ctx.attr - pred) * (ctx.attr - pred)) }, _ + _)`,
				`val rmse = math.sqrt(err.map(_._2).reduce(_ + _) / edgeCount)`,
			},
		},
	)
}
