// Package workload defines the 15 spark-bench applications of Table V —
// machine-learning, graph, and MapReduce algorithms — as sparksim
// application specifications: main-body source code, per-stage expanded
// (instrumented) code, stage DAG templates, cost-profile operations, and
// the training/validation/testing data-size grids the paper's evaluation
// uses.
//
// Stage code is what NECS's code encoder consumes; DAG node labels are what
// the scheduler encoder consumes; the same operation lists also drive the
// simulator's cost profile, so the correlation the paper exploits (code
// semantics → performance) is present in the synthetic corpus.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"lite/internal/sparksim"
)

// Sizes groups the data-size grids of Table V. Units are MB of input data
// (for GraphData apps, sparksim sizes are still MB; VerticesFor converts).
type Sizes struct {
	// Train lists the four small training sizes per cluster (jobs finish
	// in about a minute).
	Train []float64
	// Valid is the mid-scale validation size.
	Valid float64
	// Test is the large testing size used in cluster C.
	Test float64
}

// App couples a sparksim specification with its evaluation data sizes.
type App struct {
	Spec  *sparksim.AppSpec
	Sizes Sizes
}

// VerticesFor reports the vertex count for a graph dataset of the given
// size ("LabelPropagation" is recorded in #nodes in Table V).
func VerticesFor(sizeMB float64) int { return int(sizeMB * 6000) }

var registry []*App

// All returns every application in stable (registration) order.
func All() []*App { return registry }

// Names returns the application names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Spec.Name
	}
	return out
}

// ByName returns the application with the given name or abbreviation.
// Matching is case-insensitive so CLI lookups accept "wordcount", name,
// or abbreviation spellings interchangeably.
func ByName(name string) *App {
	for _, a := range registry {
		if strings.EqualFold(a.Spec.Name, name) || strings.EqualFold(a.Spec.Abbrev, name) {
			return a
		}
	}
	return nil
}

// stage is the builder used by the per-family files to declare stages.
type stage struct {
	name       string
	ops        []string
	extraEdges [][2]int
	inputFrac  float64
	shuffleIn  float64
	outputFrac float64
	iterated   bool
	readsCache bool
	lines      []string
}

func build(name, abbrev, family, mainCode string, rowBytes float64, cols, iters int, skew float64, graph bool, sizes Sizes, stages ...stage) {
	spec := &sparksim.AppSpec{
		Name:              name,
		Abbrev:            abbrev,
		Family:            family,
		MainCode:          strings.TrimSpace(mainCode),
		DefaultIterations: iters,
		RowBytes:          rowBytes,
		Columns:           cols,
		GraphData:         graph,
		SkewFactor:        skew,
	}
	for _, s := range stages {
		edges := make([][2]int, 0, len(s.ops))
		for i := 0; i+1 < len(s.ops); i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		edges = append(edges, s.extraEdges...)
		code := strings.Join(s.lines, "\n")
		spec.Stages = append(spec.Stages, sparksim.StageSpec{
			Name:            s.name,
			Ops:             s.ops,
			Edges:           edges,
			Code:            code,
			InputFrac:       s.inputFrac,
			ShuffleReadFrac: s.shuffleIn,
			OutputFrac:      s.outputFrac,
			Iterated:        s.iterated,
			ReadsCache:      s.readsCache,
		})
	}
	registry = append(registry, &App{Spec: spec, Sizes: sizes})
}

// mlSizes is the default grid for ML applications: four small training
// sizes, a 1 GB validation size and a 10 GB testing size.
func mlSizes() Sizes {
	return Sizes{Train: []float64{60, 100, 140, 180}, Valid: 1024, Test: 10240}
}

// graphSizes uses smaller inputs: graph algorithms blow up per input byte.
func graphSizes() Sizes {
	return Sizes{Train: []float64{40, 70, 100, 130}, Valid: 512, Test: 4096}
}

// mrSizes covers the MapReduce family (Terasort, WordCount).
func mrSizes() Sizes {
	return Sizes{Train: []float64{100, 160, 220, 280}, Valid: 2048, Test: 20480}
}

// CheckRegistry validates every registered application: ops must exist in
// the simulator catalog, fractions must be sane, and code must be present.
// Tests call it; it returns the first problem found.
func CheckRegistry() error {
	if len(registry) != 15 {
		return fmt.Errorf("expected 15 applications, have %d", len(registry))
	}
	seen := map[string]bool{}
	for _, a := range registry {
		s := a.Spec
		if seen[s.Name] {
			return fmt.Errorf("duplicate application %q", s.Name)
		}
		seen[s.Name] = true
		if s.MainCode == "" {
			return fmt.Errorf("%s: empty main code", s.Name)
		}
		if len(s.Stages) < 2 {
			return fmt.Errorf("%s: fewer than 2 stages", s.Name)
		}
		for _, st := range s.Stages {
			if len(st.Ops) == 0 {
				return fmt.Errorf("%s/%s: no ops", s.Name, st.Name)
			}
			if st.Code == "" {
				return fmt.Errorf("%s/%s: no stage code", s.Name, st.Name)
			}
			if st.InputFrac <= 0 || st.InputFrac > 2 {
				return fmt.Errorf("%s/%s: bad input fraction %f", s.Name, st.Name, st.InputFrac)
			}
			for _, e := range st.Edges {
				if e[0] < 0 || e[0] >= len(st.Ops) || e[1] < 0 || e[1] >= len(st.Ops) {
					return fmt.Errorf("%s/%s: edge %v out of range", s.Name, st.Name, e)
				}
			}
		}
		if len(a.Sizes.Train) != 4 {
			return fmt.Errorf("%s: expected 4 training sizes", s.Name)
		}
	}
	return nil
}

// UnknownOps returns operations referenced by stages but missing from the
// simulator catalog (these behave as oov ops; the list should stay small).
func UnknownOps() []string {
	set := map[string]bool{}
	for _, a := range registry {
		for _, st := range a.Spec.Stages {
			for _, op := range st.Ops {
				if _, ok := sparksim.OpCatalog[op]; !ok {
					set[op] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for op := range set {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}
