package workload

// MapReduce-style applications of Table V: Terasort (the paper's running
// example, Fig. 4/5) and WordCount. Terasort is the canonical
// shuffle-bound, skew-sensitive sort; WordCount is the light aggregation
// baseline whose optimum sits at very different knob values.

func init() {
	registerTerasort()
	registerWordCount()
}

func registerTerasort() {
	// MainCode mirrors Figure 4 of the paper: three functional lines, with
	// line 4 (the partitioner + sortByKey) carrying all the semantics.
	build("Terasort", "TS", "mapreduce", `
val file = sc.textFile(inputPath)
val data = file.map(line => (line.substring(0, 10), line.substring(10)))
val sorted = data.repartitionAndSortWithinPartitions(new TeraSortPartitioner(partitions))
sorted.map { case (k, v) => k + v }.saveAsTextFile(outputPath)
`, 100, 2, 1, 1.6, false, mrSizes(),
		stage{
			// Stage-level code after instrumentation (paper Fig. 5): the
			// brief main body expands into the RDD-internal map/sort calls.
			name: "readAndKey", ops: []string{"textFile", "map", "mapToPair"},
			inputFrac: 1.0,
			lines: []string{
				`val file = sc.newAPIHadoopFile[Text, Text, TeraInputFormat](inputPath)`,
				`val data = file.map { case (key, value) => (key.copyBytes(), value.copyBytes()) }`,
				`val keyed = data.mapToPair(rec => (new TeraKey(rec._1), rec._2))`,
			},
		},
		stage{
			name: "samplePartitionBounds", ops: []string{"sample", "sortByKey", "collect", "broadcast"},
			inputFrac: 0.05, outputFrac: 0.0005,
			lines: []string{
				`val sampled = keyed.sample(withReplacement = false, fraction = sampleFraction, seed = 7)`,
				`val bounds = sampled.map(_._1).sortByKey().collect()`,
				`val partitioner = new TeraSortPartitioner(bounds, numPartitions)`,
				`val bcBounds = sc.broadcast(partitioner.rangeBounds)`,
			},
		},
		stage{
			name: "shuffleSort", ops: []string{"partitionBy", "sortByKey", "mapPartitions"},
			inputFrac: 1.0, shuffleIn: 1.0,
			lines: []string{
				`val sorted = keyed.partitionBy(partitioner)`,
				`  .mapPartitions(iter => iter.toArray.sortBy(_._1)(teraKeyOrdering).iterator, preservesPartitioning = true)`,
				`val merged = sorted.sortByKey(ascending = true, numPartitions)`,
			},
		},
		stage{
			name: "writeOutput", ops: []string{"map", "saveAsTextFile"},
			inputFrac: 1.0, shuffleIn: 0.1,
			lines: []string{
				`merged.map { case (k, v) => k.toString + v.toString }`,
				`  .saveAsTextFile(outputPath, classOf[TeraOutputFormat])`,
			},
		},
	)
}

func registerWordCount() {
	build("WordCount", "WC", "mapreduce", `
val lines = sc.textFile(inputPath)
val counts = lines.flatMap(_.split(" ")).map(word => (word, 1)).reduceByKey(_ + _)
counts.saveAsTextFile(outputPath)
`, 80, 1, 1, 1.2, false, mrSizes(),
		stage{
			name: "tokenize", ops: []string{"textFile", "flatMap", "map"},
			inputFrac: 1.0,
			lines: []string{
				`val lines = sc.textFile(inputPath)`,
				`val words = lines.flatMap(line => line.toLowerCase.split("[^a-z']+"))`,
				`val pairs = words.filter(_.nonEmpty).map(word => (word, 1L))`,
			},
		},
		stage{
			name: "aggregateCounts", ops: []string{"reduceByKey"},
			inputFrac: 0.8, shuffleIn: 0.6,
			lines: []string{
				`val counts = pairs.reduceByKey((a, b) => a + b, numPartitions)`,
			},
		},
		stage{
			name: "saveCounts", ops: []string{"map", "saveAsTextFile"},
			inputFrac: 0.2,
			lines: []string{
				`counts.map { case (word, count) => s"$word\t$count" }.saveAsTextFile(outputPath)`,
			},
		},
	)
}
