package workload

import (
	"strings"
	"testing"

	"lite/internal/sparksim"
)

func TestRegistryIsValid(t *testing.T) {
	if err := CheckRegistry(); err != nil {
		t.Fatal(err)
	}
}

func TestFifteenApplicationsAcrossFamilies(t *testing.T) {
	apps := All()
	if len(apps) != 15 {
		t.Fatalf("got %d apps, want 15", len(apps))
	}
	fam := map[string]int{}
	for _, a := range apps {
		fam[a.Spec.Family]++
	}
	if fam["ml"] < 5 || fam["graph"] < 5 || fam["mapreduce"] < 2 {
		t.Fatalf("family coverage too thin: %v", fam)
	}
}

func TestNoUnknownOps(t *testing.T) {
	if ops := UnknownOps(); len(ops) != 0 {
		t.Fatalf("ops missing from simulator catalog: %v", ops)
	}
}

func TestByNameAndAbbrev(t *testing.T) {
	if ByName("PageRank") == nil {
		t.Fatal("PageRank not found by name")
	}
	if ByName("PR") == nil {
		t.Fatal("PageRank not found by abbreviation")
	}
	if ByName("NoSuchApp") != nil {
		t.Fatal("unknown app should return nil")
	}
	if ByName("TS").Spec.Name != "Terasort" {
		t.Fatal("TS should be Terasort")
	}
}

func TestNamesMatchesAll(t *testing.T) {
	names := Names()
	apps := All()
	if len(names) != len(apps) {
		t.Fatal("Names length mismatch")
	}
	for i, a := range apps {
		if names[i] != a.Spec.Name {
			t.Fatalf("Names[%d] = %q, want %q", i, names[i], a.Spec.Name)
		}
	}
}

func TestStageCodeExpandsMainCode(t *testing.T) {
	// The point of Stage-based Code Organization (paper Fig. 4 vs 5): the
	// per-stage corpus must be larger than the main body for every app.
	for _, a := range All() {
		var stageTokens int
		for _, st := range a.Spec.Stages {
			stageTokens += len(strings.Fields(st.Code))
		}
		mainTokens := len(strings.Fields(a.Spec.MainCode))
		if stageTokens <= mainTokens {
			t.Fatalf("%s: stage code (%d tokens) not larger than main code (%d)", a.Spec.Name, stageTokens, mainTokens)
		}
	}
}

func TestTerasortMirrorsPaperFigure4(t *testing.T) {
	ts := ByName("Terasort")
	if !strings.Contains(ts.Spec.MainCode, "TeraSortPartitioner") {
		t.Fatal("Terasort main code should contain the TeraSortPartitioner token")
	}
	if !strings.Contains(ts.Spec.MainCode, "sortByKey") && !strings.Contains(ts.Spec.MainCode, "repartitionAndSortWithinPartitions") {
		t.Fatal("Terasort main code should contain a sort call")
	}
	// The shuffleSort stage must be shuffle-bound.
	var found bool
	for _, st := range ts.Spec.Stages {
		if st.Name == "shuffleSort" {
			found = true
			if st.ShuffleReadFrac < 0.9 {
				t.Fatalf("shuffleSort should read a full shuffle, got %v", st.ShuffleReadFrac)
			}
		}
	}
	if !found {
		t.Fatal("Terasort lacks shuffleSort stage")
	}
}

func TestIterativeAppsHaveIteratedCachedStages(t *testing.T) {
	for _, name := range []string{"PageRank", "KMeans", "LinearRegression", "ALS", "ShortestPath"} {
		app := ByName(name)
		var hasIter, hasCache bool
		for _, st := range app.Spec.Stages {
			if st.Iterated {
				hasIter = true
			}
			if st.ReadsCache {
				hasCache = true
			}
		}
		if !hasIter || !hasCache {
			t.Fatalf("%s: iterative ML/graph app needs iterated (got %v) and cache-reading (got %v) stages", name, hasIter, hasCache)
		}
	}
}

func TestSizesOrdering(t *testing.T) {
	for _, a := range All() {
		s := a.Sizes
		for i := 1; i < len(s.Train); i++ {
			if s.Train[i] <= s.Train[i-1] {
				t.Fatalf("%s: training sizes not increasing", a.Spec.Name)
			}
		}
		if s.Valid <= s.Train[len(s.Train)-1] {
			t.Fatalf("%s: validation size not larger than training sizes", a.Spec.Name)
		}
		if s.Test <= s.Valid {
			t.Fatalf("%s: testing size not larger than validation size", a.Spec.Name)
		}
	}
}

func TestSmallJobsFinishAboutAMinute(t *testing.T) {
	// Paper: training datasizes are "as small as possible so that each
	// application can be finished in about one minute".
	for _, a := range All() {
		d := a.Spec.MakeData(a.Sizes.Train[0])
		r := sparksim.Simulate(a.Spec, d, sparksim.ClusterA, sparksim.DefaultConfig())
		if r.Failed {
			t.Fatalf("%s: smallest training job failed: %s", a.Spec.Name, r.FailReason)
		}
		if r.Seconds > 300 {
			t.Fatalf("%s: smallest training job takes %.0f s, want ≲ minutes", a.Spec.Name, r.Seconds)
		}
	}
}

func TestLargeJobsHaveTuningHeadroom(t *testing.T) {
	// A well-provisioned configuration must beat the default substantially
	// on large data — otherwise the tuning experiments are meaningless.
	good := sparksim.DefaultConfig()
	good[sparksim.KnobExecutorCores] = 4
	good[sparksim.KnobExecutorMemory] = 8
	good[sparksim.KnobExecutorInstances] = 24
	good[sparksim.KnobDefaultParallelism] = 192
	good[sparksim.KnobMemoryFraction] = 0.6
	for _, name := range []string{"PageRank", "Terasort", "KMeans"} {
		a := ByName(name)
		d := a.Spec.MakeData(a.Sizes.Test)
		env := sparksim.ClusterB // plenty of memory per node
		def := sparksim.Simulate(a.Spec, d, env, sparksim.DefaultConfig())
		tuned := sparksim.Simulate(a.Spec, d, env, good)
		if tuned.Failed {
			t.Fatalf("%s: good config failed: %s", name, tuned.FailReason)
		}
		if tuned.Seconds >= def.Seconds*0.7 {
			t.Fatalf("%s: tuned %v s not much faster than default %v s", name, tuned.Seconds, def.Seconds)
		}
	}
}

func TestVerticesFor(t *testing.T) {
	if VerticesFor(100) != 600000 {
		t.Fatalf("VerticesFor(100) = %d", VerticesFor(100))
	}
}

func TestGraphAppsFlagged(t *testing.T) {
	for _, name := range []string{"PageRank", "TriangleCount", "LabelPropagation"} {
		if !ByName(name).Spec.GraphData {
			t.Fatalf("%s should be GraphData", name)
		}
	}
	if ByName("WordCount").Spec.GraphData {
		t.Fatal("WordCount should not be GraphData")
	}
}

func TestDistinctCodeBetweenApps(t *testing.T) {
	// Code features must discriminate apps: main codes must be unique.
	seen := map[string]string{}
	for _, a := range All() {
		if prev, ok := seen[a.Spec.MainCode]; ok {
			t.Fatalf("%s and %s share identical main code", prev, a.Spec.Name)
		}
		seen[a.Spec.MainCode] = a.Spec.Name
	}
}
