// Package rl implements the Deep Deterministic Policy Gradient baselines of
// Table VI: "DDPG(2h)" (CDBTune-style: state is the inner status summary of
// Spark, action is the knob vector) and "DDPG-C(2h)" (QTune-style: the
// state additionally encodes code features). Both spend a simulated
// two-hour budget repeatedly executing the application.
package rl

import (
	"math/rand"

	"lite/internal/nn"
	"lite/internal/tensor"
)

// Params configures a DDPG agent.
type Params struct {
	StateDim  int
	ActionDim int
	HiddenDim int
	ActorLR   float64
	CriticLR  float64
	Gamma     float64
	Tau       float64 // soft target-update rate
	BatchSize int
	BufferCap int
	// OU noise parameters for exploration.
	NoiseTheta float64
	NoiseSigma float64
}

// DefaultParams returns the agent configuration used by the benchmarks.
func DefaultParams(stateDim, actionDim int) Params {
	return Params{
		StateDim:   stateDim,
		ActionDim:  actionDim,
		HiddenDim:  64,
		ActorLR:    1e-3,
		CriticLR:   2e-3,
		Gamma:      0.9,
		Tau:        0.01,
		BatchSize:  16,
		BufferCap:  4096,
		NoiseTheta: 0.15,
		NoiseSigma: 0.2,
	}
}

// Transition is one replay-buffer entry.
type Transition struct {
	State    []float64
	Action   []float64
	Reward   float64
	Next     []float64
	Terminal bool
}

// Agent is a DDPG actor–critic with target networks and a replay buffer.
type Agent struct {
	p Params

	actor        *nn.MLP
	critic       *nn.MLP
	actorTarget  *nn.MLP
	criticTarget *nn.MLP

	actorOpt  *nn.Adam
	criticOpt *nn.Adam

	buffer []Transition
	pos    int
	full   bool

	noise []float64
	rng   *rand.Rand
}

// NewAgent constructs the agent with Xavier-initialized networks.
func NewAgent(p Params, rng *rand.Rand) *Agent {
	a := &Agent{p: p, rng: rng, noise: make([]float64, p.ActionDim)}
	a.actor = nn.NewMLP([]int{p.StateDim, p.HiddenDim, p.HiddenDim / 2, p.ActionDim}, rng, "actor")
	a.critic = nn.NewMLP([]int{p.StateDim + p.ActionDim, p.HiddenDim, p.HiddenDim / 2, 1}, rng, "critic")
	a.actorTarget = cloneMLP(a.actor)
	a.criticTarget = cloneMLP(a.critic)
	a.actorOpt = nn.NewAdam(a.actor.Params(), p.ActorLR)
	a.criticOpt = nn.NewAdam(a.critic.Params(), p.CriticLR)
	a.buffer = make([]Transition, 0, p.BufferCap)
	return a
}

func cloneMLP(src *nn.MLP) *nn.MLP {
	dst := &nn.MLP{}
	for _, l := range src.Layers {
		dst.Layers = append(dst.Layers, &nn.Dense{
			W: nn.NewParam(l.W.Value.Clone(), l.W.Name()+".target"),
			B: nn.NewParam(l.B.Value.Clone(), l.B.Name()+".target"),
		})
	}
	return dst
}

// policy runs the actor; outputs are squashed into (0,1) per dimension
// because knob vectors are normalized.
func policy(actor *nn.MLP, state []float64) []float64 {
	out := nn.Sigmoid(actor.Forward(nn.NewConst(tensor.FromRow(state))))
	return append([]float64(nil), out.Value.Data...)
}

// Act returns the exploration action for the given state: actor output
// plus Ornstein–Uhlenbeck noise, clipped to [0,1].
func (a *Agent) Act(state []float64) []float64 {
	act := policy(a.actor, state)
	for i := range act {
		a.noise[i] += a.p.NoiseTheta*(0-a.noise[i]) + a.p.NoiseSigma*a.rng.NormFloat64()
		act[i] += a.noise[i]
		if act[i] < 0 {
			act[i] = 0
		}
		if act[i] > 1 {
			act[i] = 1
		}
	}
	return act
}

// ActGreedy returns the deterministic policy action (no exploration).
func (a *Agent) ActGreedy(state []float64) []float64 {
	act := policy(a.actor, state)
	for i := range act {
		if act[i] < 0 {
			act[i] = 0
		}
		if act[i] > 1 {
			act[i] = 1
		}
	}
	return act
}

// Observe stores a transition in the replay buffer.
func (a *Agent) Observe(t Transition) {
	if len(a.buffer) < a.p.BufferCap {
		a.buffer = append(a.buffer, t)
		return
	}
	a.buffer[a.pos] = t
	a.pos = (a.pos + 1) % a.p.BufferCap
	a.full = true
}

// BufferLen reports the number of stored transitions.
func (a *Agent) BufferLen() int { return len(a.buffer) }

// Train runs one mini-batch update of critic and actor plus soft target
// updates. It is a no-op until the buffer holds a full batch.
func (a *Agent) Train() {
	if len(a.buffer) < a.p.BatchSize {
		return
	}
	batch := make([]Transition, a.p.BatchSize)
	for i := range batch {
		batch[i] = a.buffer[a.rng.Intn(len(a.buffer))]
	}

	// --- Critic update: regress Q(s,a) to r + γ·Q'(s', μ'(s')). ---
	a.criticOpt.ZeroGrad()
	var criticLoss *nn.Node
	for _, tr := range batch {
		target := tr.Reward
		if !tr.Terminal {
			nextAct := policy(a.actorTarget, tr.Next)
			qNext := a.criticTarget.Forward(nn.NewConst(tensor.FromRow(concat(tr.Next, nextAct)))).Scalar()
			target += a.p.Gamma * qNext
		}
		q := a.critic.Forward(nn.NewConst(tensor.FromRow(concat(tr.State, tr.Action))))
		l := nn.HuberLoss(q, target, 1.0)
		if criticLoss == nil {
			criticLoss = l
		} else {
			criticLoss = nn.Add(criticLoss, l)
		}
	}
	criticLoss = nn.Scale(criticLoss, 1/float64(a.p.BatchSize))
	nn.Backward(criticLoss)
	nn.ClipGrads(a.critic.Params(), 5)
	a.criticOpt.Step()

	// --- Actor update: ascend Q(s, μ(s)). ---
	a.actorOpt.ZeroGrad()
	a.criticOpt.ZeroGrad() // critic grads from the actor pass are discarded
	var actorLoss *nn.Node
	for _, tr := range batch {
		s := nn.NewConst(tensor.FromRow(tr.State))
		act := nn.Sigmoid(a.actor.Forward(s))
		q := a.critic.Forward(nn.Concat(s, act))
		l := nn.Scale(q, -1)
		if actorLoss == nil {
			actorLoss = l
		} else {
			actorLoss = nn.Add(actorLoss, l)
		}
	}
	actorLoss = nn.Scale(actorLoss, 1/float64(a.p.BatchSize))
	nn.Backward(actorLoss)
	nn.ClipGrads(a.actor.Params(), 5)
	a.actorOpt.Step()
	a.criticOpt.ZeroGrad()

	// --- Soft target updates. ---
	softUpdate(a.actorTarget, a.actor, a.p.Tau)
	softUpdate(a.criticTarget, a.critic, a.p.Tau)
}

func softUpdate(target, src *nn.MLP, tau float64) {
	tp := target.Params()
	sp := src.Params()
	for i := range tp {
		for j := range tp[i].Value.Data {
			tp[i].Value.Data[j] = (1-tau)*tp[i].Value.Data[j] + tau*sp[i].Value.Data[j]
		}
	}
}

func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}
