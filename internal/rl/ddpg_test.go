package rl

import (
	"math/rand"
	"testing"
)

func TestActOutputsBoundedActions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAgent(DefaultParams(4, 3), rng)
	for i := 0; i < 50; i++ {
		act := a.Act([]float64{0.1, 0.2, 0.3, 0.4})
		if len(act) != 3 {
			t.Fatalf("action dim %d", len(act))
		}
		for _, v := range act {
			if v < 0 || v > 1 {
				t.Fatalf("action out of [0,1]: %v", v)
			}
		}
	}
}

func TestActGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAgent(DefaultParams(4, 2), rng)
	s := []float64{0.5, 0.5, 0.5, 0.5}
	x := a.ActGreedy(s)
	y := a.ActGreedy(s)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("greedy policy not deterministic")
		}
	}
}

func TestObserveRingBuffer(t *testing.T) {
	p := DefaultParams(2, 2)
	p.BufferCap = 8
	a := NewAgent(p, rand.New(rand.NewSource(3)))
	for i := 0; i < 20; i++ {
		a.Observe(Transition{State: []float64{0, 0}, Action: []float64{0, 0}, Reward: float64(i), Next: []float64{0, 0}})
	}
	if a.BufferLen() != 8 {
		t.Fatalf("buffer length %d, want 8", a.BufferLen())
	}
}

func TestTrainNoopUntilBatchFull(t *testing.T) {
	p := DefaultParams(2, 2)
	p.BatchSize = 4
	a := NewAgent(p, rand.New(rand.NewSource(4)))
	a.Observe(Transition{State: []float64{0, 0}, Action: []float64{0, 0}, Reward: 1, Next: []float64{0, 0}})
	before := a.actor.Layers[0].W.Value.Clone()
	a.Train()
	after := a.actor.Layers[0].W.Value
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("Train should be a no-op with an underfull buffer")
		}
	}
}

// TestLearnsBanditOptimum checks DDPG moves its policy toward the
// high-reward action on a one-step continuous bandit: reward = 1 − (a−0.8)².
func TestLearnsBanditOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := DefaultParams(1, 1)
	p.BatchSize = 16
	p.NoiseSigma = 0.3
	a := NewAgent(p, rng)
	state := []float64{0.5}
	for step := 0; step < 400; step++ {
		act := a.Act(state)
		r := 1 - (act[0]-0.8)*(act[0]-0.8)
		a.Observe(Transition{State: state, Action: act, Reward: r, Next: state, Terminal: true})
		a.Train()
	}
	final := a.ActGreedy(state)[0]
	if final < 0.55 || final > 1.0 {
		t.Fatalf("policy did not move toward optimum 0.8: %v", final)
	}
}

func TestTargetNetworksTrackSlowly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := DefaultParams(2, 2)
	p.BatchSize = 4
	a := NewAgent(p, rng)
	// Targets start as exact copies.
	w := a.actor.Layers[0].W.Value
	wt := a.actorTarget.Layers[0].W.Value
	for i := range w.Data {
		if w.Data[i] != wt.Data[i] {
			t.Fatal("targets should start equal")
		}
	}
	for i := 0; i < 8; i++ {
		a.Observe(Transition{State: []float64{0.1, 0.2}, Action: []float64{0.5, 0.5}, Reward: 1, Next: []float64{0.1, 0.2}})
	}
	a.Train()
	var diff, tdiff float64
	for i := range w.Data {
		diff += abs(w.Data[i] - wt.Data[i])
	}
	if diff == 0 {
		t.Fatal("actor should have moved away from its target")
	}
	// Target moved toward actor but only by tau.
	a.Train()
	for i := range w.Data {
		tdiff += abs(w.Data[i] - wt.Data[i])
	}
	_ = tdiff // soft updates keep them close but not equal; presence checked above
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
