// Package wal implements the append-only write-ahead log that makes the
// serving layer's feedback queue crash-safe (DESIGN.md §9). Records are
// length+CRC32-framed and carry a monotone sequence number; appends are
// fsynced in configurable batches and on a background interval; segments
// rotate at a size bound and are truncated once every record in them has
// been folded into a persisted model snapshot. Recovery scans the segments
// in order, skips torn or corrupt tails (counting them) and hands every
// unfolded record back to the caller for replay.
//
// Frame layout (little-endian):
//
//	uint32 length   // of body = 8-byte seq + payload
//	uint32 crc      // CRC-32 (IEEE) of body
//	uint64 seq      // monotone record sequence number
//	bytes  payload
//
// A record is valid only if its full frame is present and the CRC matches;
// anything else — a partial header, a length pointing past EOF, a CRC
// mismatch — is treated as a torn tail: the rest of that segment is
// discarded and counted, never half-trusted. Appends after recovery go to
// a fresh segment, so a torn tail is never written after.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func crc32IEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// MaxRecordBytes bounds one record's payload; a decoded length beyond it is
// corruption, not a record (it also stops a garbage length from allocating
// gigabytes during recovery).
const MaxRecordBytes = 1 << 20

const (
	headerBytes = 8 // uint32 length + uint32 crc
	seqBytes    = 8
	segPrefix   = "seg-"
	segSuffix   = ".wal"
	cursorFile  = "FOLDED"
)

// Options configures a log. The zero value of every field gets a sane
// default from withDefaults.
type Options struct {
	// Dir holds the segments and the folded cursor; created if missing.
	Dir string
	// SegmentMaxBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentMaxBytes int64
	// SyncEvery fsyncs after this many appends (default 8; 1 = every
	// append is durable before it is acknowledged).
	SyncEvery int
	// SyncInterval additionally fsyncs dirty appends in the background at
	// this cadence, bounding the unfsynced tail in time as well as count
	// (default 50ms; <0 disables the background syncer).
	SyncInterval time.Duration
	// FS overrides the filesystem (fault-injection tests). Default OSFS.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}

// Record is one recovered log entry.
type Record struct {
	Seq  uint64
	Data []byte
}

// RecoveryStats summarizes one Open scan.
type RecoveryStats struct {
	// Recovered is how many unfolded records were handed back for replay.
	Recovered int
	// Folded is how many records were skipped because the folded cursor
	// already covers them.
	Folded int
	// CorruptTails counts torn/corrupt segment tails that were discarded
	// (at most one per segment: framing cannot resynchronize past a bad
	// frame).
	CorruptTails int
	// Segments is how many segment files were scanned.
	Segments int
}

type segment struct {
	name    string
	lastSeq uint64 // highest decoded seq; 0 when the segment held none
}

// WAL is an open log. All methods are safe for concurrent use.
type WAL struct {
	opts Options
	fs   FS

	mu         sync.Mutex
	active     File
	activeName string
	activeSize int64
	activeLast uint64 // highest seq written to the active segment
	closed     []segment
	nextSeq    uint64
	folded     uint64
	unsynced   int
	lastSeq    uint64
	syncedSeq  uint64
	appends    uint64
	fsyncs     uint64
	rotate     bool // a failed write poisoned the active segment tail
	done       chan struct{}
	stopOnce   sync.Once
	isClosed   bool
}

// Open recovers the log in opts.Dir and returns it ready for appends,
// together with every record not yet covered by the folded cursor (in
// sequence order) and the recovery statistics. Appends go to a fresh
// segment, never after a possibly-torn tail.
func Open(opts Options) (*WAL, []Record, RecoveryStats, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	var stats RecoveryStats
	if err := fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	folded, err := readCursor(fs, opts.Dir)
	if err != nil {
		return nil, nil, stats, err
	}
	names, err := fs.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("wal: listing %s: %w", opts.Dir, err)
	}
	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs) // fixed-width hex names sort in seq order

	w := &WAL{opts: opts, fs: fs, folded: folded, nextSeq: folded + 1, done: make(chan struct{})}
	var recovered []Record
	for _, name := range segs {
		stats.Segments++
		recs, torn, err := scanSegment(fs, filepath.Join(opts.Dir, name))
		if err != nil {
			return nil, nil, stats, err
		}
		if torn {
			stats.CorruptTails++
		}
		last := uint64(0)
		for _, r := range recs {
			if r.Seq > last {
				last = r.Seq
			}
			if r.Seq >= w.nextSeq {
				w.nextSeq = r.Seq + 1
			}
			if r.Seq > folded {
				recovered = append(recovered, r)
				stats.Recovered++
			} else {
				stats.Folded++
			}
		}
		w.closed = append(w.closed, segment{name: name, lastSeq: last})
	}
	sort.Slice(recovered, func(i, j int) bool { return recovered[i].Seq < recovered[j].Seq })
	w.lastSeq = w.nextSeq - 1
	w.syncedSeq = w.lastSeq // everything decoded from disk is durable

	if opts.SyncInterval > 0 {
		go w.backgroundSync()
	}
	return w, recovered, stats, nil
}

// scanSegment decodes every whole, checksummed record in one segment; torn
// reports whether trailing bytes had to be discarded.
func scanSegment(fs FS, path string) ([]Record, bool, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, false, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, false, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	var recs []Record
	off := 0
	for off < len(data) {
		if len(data)-off < headerBytes {
			return recs, true, nil // partial header
		}
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length < seqBytes || length > seqBytes+MaxRecordBytes {
			return recs, true, nil // garbage length
		}
		if len(data)-off-headerBytes < int(length) {
			return recs, true, nil // body truncated
		}
		body := data[off+headerBytes : off+headerBytes+int(length)]
		if crc32IEEE(body) != crc {
			return recs, true, nil // bit rot or torn rewrite
		}
		seq := binary.LittleEndian.Uint64(body)
		payload := append([]byte(nil), body[seqBytes:]...)
		recs = append(recs, Record{Seq: seq, Data: payload})
		off += headerBytes + int(length)
	}
	return recs, false, nil
}

// Append frames data, writes it to the active segment and assigns it the
// next sequence number. Durability is governed by SyncEvery/SyncInterval;
// call Sync to force the tail to disk. Safe for concurrent use.
func (w *WAL) Append(data []byte) (uint64, error) {
	if len(data) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(data))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.isClosed {
		return 0, errors.New("wal: closed")
	}
	if w.active == nil || w.rotate || w.activeSize >= w.opts.SegmentMaxBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	frame := make([]byte, headerBytes+seqBytes+len(data))
	binary.LittleEndian.PutUint32(frame, uint32(seqBytes+len(data)))
	binary.LittleEndian.PutUint64(frame[headerBytes:], seq)
	copy(frame[headerBytes+seqBytes:], data)
	binary.LittleEndian.PutUint32(frame[4:], crc32IEEE(frame[headerBytes:]))
	if _, err := w.active.Write(frame); err != nil {
		// The active tail may now hold a partial frame; recovery would skip
		// it, but never write after it — rotate before the next append. The
		// seq is burned, not reused: the failed write may still have reached
		// the disk in full, and two records must never share a seq.
		w.nextSeq++
		w.rotate = true
		return 0, fmt.Errorf("wal: appending record %d: %w", seq, err)
	}
	w.nextSeq++
	w.lastSeq = seq
	w.activeLast = seq
	w.activeSize += int64(len(frame))
	w.appends++
	w.unsynced++
	if w.unsynced >= w.opts.SyncEvery {
		if err := w.syncLocked(); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// Sync forces every appended record to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.isClosed {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.active == nil || w.unsynced == 0 {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", w.activeName, err)
	}
	w.fsyncs++
	w.unsynced = 0
	w.syncedSeq = w.lastSeq
	return nil
}

// rotateLocked fsyncs and closes the active segment (if any) and opens a
// fresh one named after the next sequence number.
func (w *WAL) rotateLocked() error {
	if w.active != nil {
		if err := w.syncLocked(); err != nil {
			// A tail we cannot fsync is still on its way to disk; the
			// closed-segment bookkeeping keeps it scannable either way.
			w.active.Close()
			w.active = nil
			w.closed = append(w.closed, segment{name: w.activeName, lastSeq: w.activeLast})
			return err
		}
		w.active.Close()
		w.closed = append(w.closed, segment{name: w.activeName, lastSeq: w.activeLast})
		w.active = nil
	}
	name := fmt.Sprintf("%s%016x%s", segPrefix, w.nextSeq, segSuffix)
	f, err := w.fs.OpenFile(filepath.Join(w.opts.Dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment %s: %w", name, err)
	}
	if err := w.fs.SyncDir(w.opts.Dir); err != nil {
		f.Close()
		w.fs.Remove(filepath.Join(w.opts.Dir, name))
		return fmt.Errorf("wal: fsync dir after creating %s: %w", name, err)
	}
	w.active = f
	w.activeName = name
	w.activeSize = 0
	w.activeLast = 0
	w.rotate = false
	return nil
}

// MarkFolded records durably that every record with sequence ≤ seq has been
// folded into a persisted model snapshot, then deletes closed segments made
// entirely of folded records. Recovery never replays a folded record.
func (w *WAL) MarkFolded(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.isClosed {
		return errors.New("wal: closed")
	}
	if seq <= w.folded {
		return nil
	}
	if err := writeCursor(w.fs, w.opts.Dir, seq); err != nil {
		return err
	}
	w.folded = seq
	kept := w.closed[:0]
	for _, s := range w.closed {
		if s.lastSeq <= seq {
			// Best-effort: a segment that refuses to delete costs disk, not
			// correctness (its records are below the cursor).
			w.fs.Remove(filepath.Join(w.opts.Dir, s.name))
			continue
		}
		kept = append(kept, s)
	}
	w.closed = kept
	return nil
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	LastSeq   uint64
	SyncedSeq uint64
	Folded    uint64
	Appends   uint64
	Fsyncs    uint64
	Segments  int // closed segments plus the active one
}

// Stats returns current counters; safe for concurrent use.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.closed)
	if w.active != nil {
		n++
	}
	return Stats{
		LastSeq:   w.lastSeq,
		SyncedSeq: w.syncedSeq,
		Folded:    w.folded,
		Appends:   w.appends,
		Fsyncs:    w.fsyncs,
		Segments:  n,
	}
}

// Close fsyncs and closes the active segment and stops the background
// syncer. Further appends fail.
func (w *WAL) Close() error {
	w.stopOnce.Do(func() { close(w.done) })
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.isClosed {
		return nil
	}
	w.isClosed = true
	if w.active == nil {
		return nil
	}
	err := func() error {
		if w.unsynced == 0 {
			return nil
		}
		if err := w.active.Sync(); err != nil {
			return err
		}
		w.fsyncs++
		w.unsynced = 0
		w.syncedSeq = w.lastSeq
		return nil
	}()
	if cerr := w.active.Close(); err == nil {
		err = cerr
	}
	w.active = nil
	return err
}

func (w *WAL) backgroundSync() {
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			// Interval durability is best-effort; Append surfaces batch-sync
			// errors, and serve counts them.
			w.Sync()
		}
	}
}

func readCursor(fs FS, dir string) (uint64, error) {
	f, err := fs.OpenFile(filepath.Join(dir, cursorFile), os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: opening cursor: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("wal: reading cursor: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		// A torn cursor write means "nothing proven folded": replaying extra
		// records is safe (at-least-once), silently skipping them is not.
		return 0, nil
	}
	return v, nil
}

// writeCursor persists the folded cursor atomically: temp file, write,
// fsync, rename over FOLDED, fsync the directory.
func writeCursor(fs FS, dir string, seq uint64) error {
	tmp := filepath.Join(dir, cursorFile+".tmp")
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating cursor temp: %w", err)
	}
	if _, err := f.Write([]byte(strconv.FormatUint(seq, 10) + "\n")); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("wal: writing cursor: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("wal: fsync cursor: %w", err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("wal: closing cursor: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, cursorFile)); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("wal: publishing cursor: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: fsync dir after cursor: %w", err)
	}
	return nil
}
