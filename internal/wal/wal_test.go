package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// open is the test helper: no background syncer (deterministic fsync
// counts), fsync every append unless overridden.
func open(t *testing.T, dir string, mod ...func(*Options)) (*WAL, []Record, RecoveryStats) {
	t.Helper()
	opts := Options{Dir: dir, SyncEvery: 1, SyncInterval: -1}
	for _, m := range mod {
		m(&opts)
	}
	w, recs, stats, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { w.Close() })
	return w, recs, stats
}

func appendAll(t *testing.T, w *WAL, payloads ...string) []uint64 {
	t.Helper()
	seqs := make([]uint64, len(payloads))
	for i, p := range payloads {
		seq, err := w.Append([]byte(p))
		if err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
		seqs[i] = seq
	}
	return seqs
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, _ := open(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	seqs := appendAll(t, w, "a", "bb", "ccc")
	if seqs[0] != 1 || seqs[2] != 3 {
		t.Fatalf("seqs = %v, want 1..3", seqs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, stats := open(t, dir)
	if stats.CorruptTails != 0 {
		t.Fatalf("clean log reported %d corrupt tails", stats.CorruptTails)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for i, want := range []string{"a", "bb", "ccc"} {
		if string(recs[i].Data) != want || recs[i].Seq != uint64(i+1) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, recs[i].Seq, recs[i].Data, i+1, want)
		}
	}
}

func TestRecoveryWithoutCloseKeepsFsyncedRecords(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := open(t, dir) // SyncEvery=1: every append fsynced
	appendAll(t, w, "one", "two")
	// No Close: the crash case. Records were fsynced, so a new Open (new
	// file handles) must still see them.
	_, recs, _ := open(t, dir)
	if len(recs) != 2 {
		t.Fatalf("recovered %d records after crash, want 2", len(recs))
	}
}

func TestTornTailIsSkippedAndCounted(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := open(t, dir)
	appendAll(t, w, "good-1", "good-2")
	w.Close()

	seg := onlySegment(t, dir)
	// Simulate a torn final write: append half a frame of garbage.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2})
	f.Close()

	_, recs, stats := open(t, dir)
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want the 2 whole ones", len(recs))
	}
	if stats.CorruptTails != 1 {
		t.Fatalf("CorruptTails = %d, want 1", stats.CorruptTails)
	}
}

func TestBitFlipInvalidatesRecord(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := open(t, dir)
	appendAll(t, w, "aaaa", "bbbb")
	w.Close()

	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a bit in the last record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, stats := open(t, dir)
	if len(recs) != 1 || string(recs[0].Data) != "aaaa" {
		t.Fatalf("recovered %v, want only the intact first record", recs)
	}
	if stats.CorruptTails != 1 {
		t.Fatalf("CorruptTails = %d, want 1", stats.CorruptTails)
	}
}

func TestMarkFoldedSkipsReplayAndTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates into its own file.
	w, _, _ := open(t, dir, func(o *Options) { o.SegmentMaxBytes = 1 })
	appendAll(t, w, "r1", "r2", "r3")
	if err := w.MarkFolded(2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, recs, stats := open(t, dir)
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("recovered %v, want only seq 3", recs)
	}
	if stats.Folded != 0 {
		// Segments 1 and 2 were fully folded and must be gone from disk,
		// not rescanned-and-skipped.
		t.Fatalf("stats.Folded = %d: folded segments were not truncated", stats.Folded)
	}
}

func TestSequenceNumbersSurviveRestartAndFold(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := open(t, dir)
	appendAll(t, w, "a", "b")
	w.MarkFolded(2)
	w.Close()

	w2, recs, _ := open(t, dir)
	if len(recs) != 0 {
		t.Fatalf("recovered %d folded records", len(recs))
	}
	seqs := appendAll(t, w2, "c")
	if seqs[0] != 3 {
		t.Fatalf("seq after restart = %d, want 3 (no reuse of folded seqs)", seqs[0])
	}
}

func TestSyncEveryBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := open(t, dir, func(o *Options) { o.SyncEvery = 4 })
	appendAll(t, w, "1", "2", "3")
	st := w.Stats()
	if st.Fsyncs != 0 {
		t.Fatalf("fsyncs = %d before batch boundary, want 0", st.Fsyncs)
	}
	if st.SyncedSeq != 0 {
		t.Fatalf("syncedSeq = %d, want 0 (tail not yet durable)", st.SyncedSeq)
	}
	appendAll(t, w, "4")
	st = w.Stats()
	if st.Fsyncs != 1 || st.SyncedSeq != 4 {
		t.Fatalf("after 4th append: fsyncs=%d syncedSeq=%d, want 1 and 4", st.Fsyncs, st.SyncedSeq)
	}
}

func TestBackgroundSyncBoundsTail(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := open(t, dir, func(o *Options) {
		o.SyncEvery = 1 << 30
		o.SyncInterval = 2 * time.Millisecond
	})
	appendAll(t, w, "x")
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().SyncedSeq != 1 {
		if time.Now().After(deadline) {
			t.Fatal("background syncer never fsynced the tail")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAppendFailureRotatesAwayFromTornTail(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	w, _, _ := open(t, dir, func(o *Options) { o.FS = ffs })
	appendAll(t, w, "before")

	ffs.ShortWriteAt(1) // next write persists half a frame, then fails
	if _, err := w.Append([]byte("torn-record")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append during short write: err = %v, want ErrInjected", err)
	}
	ffs.Heal()
	seqs := appendAll(t, w, "after")
	if seqs[0] != 3 {
		t.Fatalf("post-fault seq = %d, want 3 (2 burned by the torn append)", seqs[0])
	}
	w.Close()

	_, recs, stats := open(t, dir)
	var got []string
	for _, r := range recs {
		got = append(got, string(r.Data))
	}
	if strings.Join(got, ",") != "before,after" {
		t.Fatalf("recovered %v, want [before after]", got)
	}
	if stats.CorruptTails != 1 {
		t.Fatalf("CorruptTails = %d, want 1 (the torn half-frame)", stats.CorruptTails)
	}
}

func TestFailedFsyncSurfacesError(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	w, _, _ := open(t, dir, func(o *Options) { o.FS = ffs })
	appendAll(t, w, "ok")
	ffs.FailSync(true)
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with failing fsync: err = %v, want ErrInjected", err)
	}
	st := w.Stats()
	if st.SyncedSeq != 1 {
		t.Fatalf("syncedSeq = %d after failed fsync, want 1", st.SyncedSeq)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	w, _, _ := open(t, t.TempDir())
	if _, err := w.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize append accepted")
	}
}

func TestCorruptCursorReplaysEverything(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := open(t, dir)
	appendAll(t, w, "a", "b")
	w.MarkFolded(1)
	w.Close()
	if err := os.WriteFile(filepath.Join(dir, cursorFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, _ := open(t, dir)
	// An unreadable cursor must fail open (replay everything), never
	// fail closed (silently drop records).
	if len(recs) != 2 {
		t.Fatalf("recovered %d records with corrupt cursor, want 2", len(recs))
	}
}

func TestConcurrentAppendsAssignUniqueSeqs(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := open(t, dir, func(o *Options) {
		o.SyncEvery = 16
		o.SegmentMaxBytes = 256 // force rotations under load
	})
	const n = 200
	var wg sync.WaitGroup
	seqs := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, err := w.Append([]byte(fmt.Sprintf("rec-%d", i)))
			if err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			seqs[i] = seq
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, s := range seqs {
		if s == 0 || seen[s] {
			t.Fatalf("duplicate or zero seq %d", s)
		}
		seen[s] = true
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, stats := open(t, dir)
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	if stats.Segments < 2 {
		t.Fatalf("expected multiple segments under 256-byte rotation, got %d", stats.Segments)
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := OSFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, segPrefix) {
			segs = append(segs, n)
		}
	}
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want exactly one", segs)
	}
	return filepath.Join(dir, segs[0])
}
