package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the slice of filesystem behaviour the WAL (and the snapshot
// persister in internal/serve) depends on. Production code uses OSFS; tests
// inject FaultFS to exercise torn writes, failed fsyncs and rename crashes
// without touching a real disk fault.
type FS interface {
	// OpenFile opens name with the given flag/perm, like os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir fsyncs a directory so renames/creates inside it survive a
	// crash (POSIX does not persist directory entries on file fsync alone).
	SyncDir(dir string) error
}

// File is the open-file surface the WAL needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FaultFS wraps an FS and injects write-path failures on a countdown — the
// in-process equivalent of yanking the disk mid-write. It is exported
// because both the WAL's own tests and internal/serve's persistence fault
// tests (and any future chaos harness) drive recovery through it. All
// methods are safe for concurrent use.
type FaultFS struct {
	Inner FS

	mu sync.Mutex
	// failWriteAfter: after this many successful Write calls, every Write
	// fails with ErrInjected. <0 disables.
	failWriteAfter int
	// shortWriteAt: the Nth Write call (1-based) persists only half its
	// payload and then reports ErrInjected — a torn record. 0 disables.
	shortWriteAt int
	writes       int
	// failSync / failSyncDir / failRename flip the respective calls to
	// ErrInjected after the countdown reaches zero.
	failSync   bool
	failRename bool
}

// ErrInjected marks every failure FaultFS fabricates.
var ErrInjected = fmt.Errorf("wal: injected fault")

// NewFaultFS wraps inner (OSFS when nil) with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{Inner: inner, failWriteAfter: -1}
}

// FailWritesAfter arms write failure after n more successful writes.
func (f *FaultFS) FailWritesAfter(n int) {
	f.mu.Lock()
	f.failWriteAfter = n
	f.mu.Unlock()
}

// ShortWriteAt arms a torn (half-persisted, then failed) write on the Nth
// Write call from now, 1-based.
func (f *FaultFS) ShortWriteAt(n int) {
	f.mu.Lock()
	f.shortWriteAt = f.writes + n
	f.mu.Unlock()
}

// FailSync makes every subsequent Sync and SyncDir fail.
func (f *FaultFS) FailSync(fail bool) {
	f.mu.Lock()
	f.failSync = fail
	f.mu.Unlock()
}

// FailRename makes every subsequent Rename fail.
func (f *FaultFS) FailRename(fail bool) {
	f.mu.Lock()
	f.failRename = fail
	f.mu.Unlock()
}

// Heal disarms every fault.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	f.failWriteAfter = -1
	f.shortWriteAt = 0
	f.failSync = false
	f.failRename = false
	f.mu.Unlock()
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	fail := f.failRename
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("rename %s: %w", filepath.Base(newname), ErrInjected)
	}
	return f.Inner.Rename(oldname, newname)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.Inner.Remove(name) }

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error { return f.Inner.MkdirAll(dir, perm) }

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	fail := f.failSync
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("syncdir %s: %w", filepath.Base(dir), ErrInjected)
	}
	return f.Inner.SyncDir(dir)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.writes++
	short := f.fs.shortWriteAt > 0 && f.fs.writes == f.fs.shortWriteAt
	var fail bool
	if f.fs.failWriteAfter >= 0 {
		if f.fs.failWriteAfter == 0 {
			fail = true
		} else {
			f.fs.failWriteAfter--
		}
	}
	f.fs.mu.Unlock()
	if short {
		n, _ := f.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("short write: %w", ErrInjected)
	}
	if fail {
		return 0, fmt.Errorf("write: %w", ErrInjected)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	fail := f.fs.failSync
	f.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("sync: %w", ErrInjected)
	}
	return f.inner.Sync()
}
