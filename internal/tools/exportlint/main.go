// Command exportlint enforces the exported-comment rule on selected
// packages without external dependencies: every exported type, function,
// method, constant, and variable must carry a doc comment that starts with
// the symbol's name (revive/stylecheck ST1020-style). It is part of `make
// verify`, so an exported symbol cannot land undocumented.
//
// Usage:
//
//	go run ./internal/tools/exportlint [dirs...]
//
// With no arguments it lints internal/core. Grouped declarations are
// satisfied by either a per-symbol comment or a group comment; a comment
// may also start with "Deprecated:". _test.go files are skipped (test
// helpers are not API).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"internal/core"}
	}
	bad := 0
	for _, dir := range dirs {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "exportlint: %d exported symbol(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "exportlint: %s: %v\n", dir, err)
		os.Exit(2)
	}
	bad := 0
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			bad += lintFile(fset, filepath.ToSlash(path), file)
		}
	}
	return bad
}

func lintFile(fset *token.FileSet, path string, file *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s %s has no doc comment starting with %q\n", path, p.Line, kind, name, name)
		bad++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if !docOK(d.Doc, d.Name.Name) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
	return bad
}

// lintGenDecl checks type/const/var declarations. A group doc on the decl
// covers all its specs; otherwise each exported spec needs its own doc.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	if kind == "" {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			// A grouped `type (...)` block may document its members with one
			// group comment, as long as it actually names this symbol.
			if !docOK(s.Doc, s.Name.Name) && !docOK(d.Doc, s.Name.Name) && !docMentions(d.Doc, s.Name.Name) {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				// A grouped const/var block is fine with one leading group
				// comment (idiomatic for enums and error lists), a per-spec
				// comment, or a trailing line comment on the spec.
				if docAny(s.Doc) || docAny(s.Comment) || docAny(d.Doc) {
					continue
				}
				report(name.Pos(), kind, name.Name)
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not public API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// docOK reports whether the comment group documents name: non-empty and
// starting with the symbol name, a quoted form of it, or "Deprecated:".
func docOK(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	text := strings.TrimSpace(doc.Text())
	if text == "" {
		return false
	}
	return strings.HasPrefix(text, name) ||
		strings.HasPrefix(text, "A "+name) ||
		strings.HasPrefix(text, "An "+name) ||
		strings.HasPrefix(text, "The "+name) ||
		strings.HasPrefix(text, "Deprecated:")
}

// docMentions reports whether the comment group names the symbol at all —
// the looser bar applied to group comments on `type (...)` blocks.
func docMentions(doc *ast.CommentGroup, name string) bool {
	return doc != nil && strings.Contains(doc.Text(), name)
}

// docAny reports whether any non-empty comment is attached.
func docAny(doc *ast.CommentGroup) bool {
	return doc != nil && strings.TrimSpace(doc.Text()) != ""
}
