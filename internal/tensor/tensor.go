// Package tensor provides dense float64 matrices and vectors with the
// linear-algebra primitives required by the neural-network stack in
// internal/nn. Tensors are rank-1 or rank-2, stored row-major.
//
// The package is deliberately small: it implements exactly the operations
// the LITE models need (matmul, broadcast arithmetic, reductions,
// convolution helpers) with no external dependencies.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major matrix. A vector is represented as a 1×n or
// n×1 matrix depending on context; most code in this repository uses
// row-vectors (1×n).
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized tensor with the given shape.
func New(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) in a rows×cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// FromRow returns a 1×n tensor copying the given values.
func FromRow(vals []float64) *Tensor {
	t := New(1, len(vals))
	copy(t.Data, vals)
	return t
}

// Randn returns a tensor with entries drawn from N(0, std²) using rng.
func Randn(rows, cols int, std float64, rng *rand.Rand) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// XavierUniform returns a tensor initialized with the Glorot/Xavier uniform
// scheme, appropriate for layers followed by ReLU or tanh.
func XavierUniform(rows, cols int, rng *rand.Rand) *Tensor {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return t
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return t.Rows * t.Cols }

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool { return t.Rows == o.Rows && t.Cols == o.Cols }

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Row returns row i as a freshly allocated slice.
func (t *Tensor) Row(i int) []float64 {
	out := make([]float64, t.Cols)
	copy(out, t.Data[i*t.Cols:(i+1)*t.Cols])
	return out
}

// RowView returns row i as a view into the underlying data.
func (t *Tensor) RowView(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// MatMul computes a×b into a new tensor. Panics on shape mismatch.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a×b, reusing out's storage. out must already
// have shape a.Rows×b.Cols and must not alias a or b.
func MatMulInto(out, a, b *Tensor) {
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: matmul output shape mismatch")
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes aᵀ×b into a new tensor.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTransA shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB computes a×bᵀ into a new tensor.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTransB shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose returns tᵀ as a new tensor.
func (t *Tensor) Transpose() *Tensor {
	out := New(t.Cols, t.Rows)
	for i := 0; i < t.Rows; i++ {
		for j := 0; j < t.Cols; j++ {
			out.Data[j*out.Cols+i] = t.Data[i*t.Cols+j]
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Tensor) *Tensor {
	mustSameShape("add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace computes a += b elementwise.
func AddInPlace(a, b *Tensor) {
	mustSameShape("add", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddScaledInPlace computes a += s·b elementwise.
func AddScaledInPlace(a *Tensor, s float64, b *Tensor) {
	mustSameShape("addScaled", a, b)
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Sub returns a−b elementwise.
func Sub(a, b *Tensor) *Tensor {
	mustSameShape("sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns a⊙b (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	mustSameShape("mul", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s·t as a new tensor.
func Scale(t *Tensor, s float64) *Tensor {
	out := New(t.Rows, t.Cols)
	for i := range t.Data {
		out.Data[i] = s * t.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddRowBroadcast returns m with the 1×cols row vector v added to every row.
func AddRowBroadcast(m, v *Tensor) *Tensor {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: broadcast shape mismatch %dx%d + %dx%d", m.Rows, m.Cols, v.Rows, v.Cols))
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[i*m.Cols+j] = m.Data[i*m.Cols+j] + v.Data[j]
		}
	}
	return out
}

// Apply returns f applied elementwise.
func Apply(t *Tensor, f func(float64) float64) *Tensor {
	out := New(t.Rows, t.Cols)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Sum returns the sum over all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the mean over all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(t.Size()) }

// Max returns the maximum element and its flat index.
func (t *Tensor) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, v := range t.Data {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// ColMax writes, for each column j, the maximum over rows into a 1×cols
// tensor and returns both the maxima and the argmax row per column.
func (t *Tensor) ColMax() (*Tensor, []int) {
	out := New(1, t.Cols)
	arg := make([]int, t.Cols)
	for j := 0; j < t.Cols; j++ {
		best, bi := math.Inf(-1), 0
		for i := 0; i < t.Rows; i++ {
			if v := t.Data[i*t.Cols+j]; v > best {
				best, bi = v, i
			}
		}
		out.Data[j] = best
		arg[j] = bi
	}
	return out, arg
}

// Norm returns the Frobenius norm.
func (t *Tensor) Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Concat concatenates row vectors (all 1×n_i) into a single 1×Σn row vector.
func Concat(parts ...*Tensor) *Tensor {
	total := 0
	for _, p := range parts {
		if p.Rows != 1 {
			panic("tensor: Concat expects 1×n row vectors")
		}
		total += p.Cols
	}
	out := New(1, total)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:off+p.Cols], p.Data)
		off += p.Cols
	}
	return out
}

// String renders the tensor for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor(%dx%d)[", t.Rows, t.Cols)
	n := t.Size()
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if t.Size() > 8 {
		b.WriteString(", …")
	}
	b.WriteString("]")
	return b.String()
}

func mustSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
