package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || m.Size() != 6 {
		t.Fatalf("unexpected shape %dx%d", m.Rows, m.Cols)
	}
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At after Set = %v", m.At(1, 2))
	}
	if m.Data[5] != 7.5 {
		t.Fatalf("row-major layout violated")
	}
}

func TestNewPanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero rows")
		}
	}()
	New(0, 3)
}

func TestFromSliceValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w) {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(4, 3, 1, rng)
	b := Randn(4, 5, 1, rng)
	got := MatMulTransA(a, b)
	want := MatMul(a.Transpose(), b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatalf("MatMulTransA mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(4, 3, 1, rng)
	b := Randn(5, 3, 1, rng)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.Transpose())
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatalf("MatMulTransB mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		m := Randn(rows, cols, 1, rng)
		tt := m.Transpose().Transpose()
		if !m.SameShape(tt) {
			return false
		}
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubMulInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(3, 3, 1, rng)
		b := Randn(3, 3, 1, rng)
		c := Sub(Add(a, b), b)
		for i := range a.Data {
			if math.Abs(c.Data[i]-a.Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(3, 4, 1, rng)
		b := Randn(4, 2, 1, rng)
		c := Randn(4, 2, 1, rng)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddRowBroadcast(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	v := FromRow([]float64{10, 20})
	out := AddRowBroadcast(m, v)
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("broadcast[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestScaleAndInPlaceOps(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, -2, 3})
	s := Scale(m, 2)
	if s.Data[0] != 2 || s.Data[1] != -4 || s.Data[2] != 6 {
		t.Fatalf("Scale wrong: %v", s.Data)
	}
	m.ScaleInPlace(0)
	if m.Sum() != 0 {
		t.Fatalf("ScaleInPlace(0) should zero")
	}
	a := FromRow([]float64{1, 1})
	AddScaledInPlace(a, 3, FromRow([]float64{2, 4}))
	if a.Data[0] != 7 || a.Data[1] != 13 {
		t.Fatalf("AddScaledInPlace wrong: %v", a.Data)
	}
}

func TestSumMeanMaxNorm(t *testing.T) {
	m := FromSlice(2, 2, []float64{3, -1, 4, 0})
	if m.Sum() != 6 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Mean() != 1.5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	max, idx := m.Max()
	if max != 4 || idx != 2 {
		t.Fatalf("Max = %v @ %d", max, idx)
	}
	if !almostEq(m.Norm(), math.Sqrt(9+1+16)) {
		t.Fatalf("Norm = %v", m.Norm())
	}
}

func TestColMax(t *testing.T) {
	m := FromSlice(3, 2, []float64{1, 9, 5, 2, 3, 7})
	maxes, args := m.ColMax()
	if maxes.Data[0] != 5 || maxes.Data[1] != 9 {
		t.Fatalf("ColMax values wrong: %v", maxes.Data)
	}
	if args[0] != 1 || args[1] != 0 {
		t.Fatalf("ColMax argmax wrong: %v", args)
	}
}

func TestConcat(t *testing.T) {
	a := FromRow([]float64{1, 2})
	b := FromRow([]float64{3})
	c := Concat(a, b)
	if c.Cols != 3 || c.Data[2] != 3 {
		t.Fatalf("Concat wrong: %v", c.Data)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRow([]float64{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRowAndRowView(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Fatal("Row should copy")
	}
	rv := m.RowView(1)
	rv[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("RowView should alias")
	}
}

func TestXavierUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := XavierUniform(10, 10, rng)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier value %v outside ±%v", v, limit)
		}
	}
}

func TestApply(t *testing.T) {
	m := FromRow([]float64{-1, 2})
	out := Apply(m, math.Abs)
	if out.Data[0] != 1 || out.Data[1] != 2 {
		t.Fatalf("Apply wrong: %v", out.Data)
	}
}

func TestMatMulIntoReuse(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 0, 0, 1})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	out := New(2, 2)
	out.Fill(42) // must be overwritten
	MatMulInto(out, a, b)
	for i := range b.Data {
		if out.Data[i] != b.Data[i] {
			t.Fatalf("identity matmul wrong at %d", i)
		}
	}
}

func TestStringTruncates(t *testing.T) {
	m := New(3, 4)
	s := m.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}
