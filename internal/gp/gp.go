// Package gp implements Gaussian-process regression with an Expected
// Improvement acquisition — the OtterTune-inspired Bayesian-optimization
// competitor "BO(2h)" of Table VI. The GP uses an ARD-free squared-
// exponential kernel over normalized knob vectors, a Cholesky solver, and
// warm-starting from the most similar observed instances (as the paper
// describes: "we used 5 most similar instances in the training set to
// initialize Gaussian Process").
package gp

import (
	"errors"
	"math"

	"lite/internal/stats"
)

// GP is a Gaussian-process regressor over fixed-dimension inputs.
type GP struct {
	x         [][]float64
	y         []float64
	meanY     float64
	lengthSq  float64
	signalVar float64
	noiseVar  float64

	chol  [][]float64 // lower-triangular Cholesky factor of K+σ²I
	alpha []float64   // (K+σ²I)⁻¹ (y−μ)
}

// New constructs a GP with the given kernel hyperparameters: length scale,
// signal variance and observation noise variance.
func New(lengthScale, signalVar, noiseVar float64) *GP {
	return &GP{lengthSq: lengthScale * lengthScale, signalVar: signalVar, noiseVar: noiseVar}
}

// kernel is the squared-exponential covariance.
func (g *GP) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return g.signalVar * math.Exp(-d2/(2*g.lengthSq))
}

// Fit conditions the GP on observations. It refits from scratch; call after
// each new observation (datasets in BO stay small).
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) != len(y) || len(x) == 0 {
		return errors.New("gp: empty or mismatched observations")
	}
	g.x = x
	g.y = y
	g.meanY = stats.Mean(y)

	n := len(x)
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := g.kernel(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
		k[i][i] += g.noiseVar
	}
	chol, err := cholesky(k)
	if err != nil {
		return err
	}
	g.chol = chol

	// alpha = K⁻¹(y−μ) via two triangular solves.
	centered := make([]float64, n)
	for i := range y {
		centered[i] = y[i] - g.meanY
	}
	z := forwardSolve(chol, centered)
	g.alpha = backwardSolve(chol, z)
	return nil
}

// Predict returns the posterior mean and variance at point p.
func (g *GP) Predict(p []float64) (mu, variance float64) {
	if g.alpha == nil {
		return g.meanY, g.signalVar
	}
	n := len(g.x)
	kstar := make([]float64, n)
	for i := range g.x {
		kstar[i] = g.kernel(p, g.x[i])
	}
	mu = g.meanY
	for i := range kstar {
		mu += kstar[i] * g.alpha[i]
	}
	v := forwardSolve(g.chol, kstar)
	variance = g.signalVar + g.noiseVar
	for _, vi := range v {
		variance -= vi * vi
	}
	if variance < 1e-12 {
		variance = 1e-12
	}
	return mu, variance
}

// ExpectedImprovement computes EI at p for minimization against the best
// observed value. xi is the exploration margin.
func (g *GP) ExpectedImprovement(p []float64, best, xi float64) float64 {
	mu, variance := g.Predict(p)
	sigma := math.Sqrt(variance)
	if sigma < 1e-12 {
		return 0
	}
	imp := best - mu - xi
	z := imp / sigma
	return imp*stats.NormalCDF(z) + sigma*stats.NormalPDF(z)
}

func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errors.New("gp: matrix not positive definite")
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// forwardSolve solves L z = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * z[k]
		}
		z[i] = sum / l[i][i]
	}
	return z
}

// backwardSolve solves Lᵀ x = z.
func backwardSolve(l [][]float64, z []float64) []float64 {
	n := len(z)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}
