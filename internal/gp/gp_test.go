package gp

import (
	"math"
	"math/rand"
	"testing"
)

func TestInterpolatesObservations(t *testing.T) {
	g := New(0.5, 1.0, 1e-6)
	x := [][]float64{{0}, {0.5}, {1}}
	y := []float64{1, 2, 3}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mu, v := g.Predict(x[i])
		if math.Abs(mu-y[i]) > 1e-2 {
			t.Fatalf("posterior mean at observed point %v = %v, want %v", x[i], mu, y[i])
		}
		if v > 1e-3 {
			t.Fatalf("variance at observed point should be tiny, got %v", v)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	g := New(0.2, 1.0, 1e-4)
	if err := g.Fit([][]float64{{0}, {0.1}}, []float64{0, 0.1}); err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.05})
	_, vFar := g.Predict([]float64{2})
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near %v far %v", vNear, vFar)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	g := New(1, 1, 0.01)
	mu, v := g.Predict([]float64{0})
	if mu != 0 || v <= 0 {
		t.Fatalf("prior predict = (%v, %v)", mu, v)
	}
}

func TestFitErrors(t *testing.T) {
	g := New(1, 1, 0.01)
	if err := g.Fit(nil, nil); err == nil {
		t.Fatal("expected error for empty data")
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched data")
	}
}

func TestExpectedImprovementPrefersPromisingRegions(t *testing.T) {
	g := New(0.3, 1.0, 1e-4)
	// Minimize: observed minimum 1.0 at x=0.5; high value at x=0.
	x := [][]float64{{0}, {0.5}, {1}}
	y := []float64{5, 1, 4}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	best := 1.0
	eiNearMin := g.ExpectedImprovement([]float64{0.45}, best, 0.01)
	eiNearMax := g.ExpectedImprovement([]float64{0.02}, best, 0.01)
	if eiNearMin <= eiNearMax {
		t.Fatalf("EI should prefer the region near the minimum: %v vs %v", eiNearMin, eiNearMax)
	}
	if eiNearMin < 0 || eiNearMax < 0 {
		t.Fatal("EI must be non-negative")
	}
}

func TestGPRegressionAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(0.4, 1.0, 1e-4)
	n := 40
	x := make([][]float64, n)
	y := make([]float64, n)
	f := func(v []float64) float64 { return math.Sin(3*v[0]) + v[1] }
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = f(x[i])
	}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := 0; i < 50; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		mu, _ := g.Predict(p)
		d := mu - f(p)
		mse += d * d
	}
	mse /= 50
	if mse > 0.05 {
		t.Fatalf("GP test MSE too high: %v", mse)
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	// K x = b solved via forward+backward substitution must satisfy K x ≈ b.
	k := [][]float64{
		{4, 2, 0.5},
		{2, 5, 1},
		{0.5, 1, 3},
	}
	l, err := cholesky(k)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	z := forwardSolve(l, b)
	x := backwardSolve(l, z)
	for i := range b {
		var got float64
		for j := range x {
			got += k[i][j] * x[j]
		}
		if math.Abs(got-b[i]) > 1e-9 {
			t.Fatalf("Kx[%d] = %v, want %v", i, got, b[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, err := cholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}
