// Package metrics implements the evaluation metrics the paper reports:
// HR@K and NDCG@K for configuration-ranking quality (§V-C) and Execution
// Time Reduction (ETR) for end-to-end tuning quality (§V-B).
package metrics

import (
	"math"

	"lite/internal/stats"
)

// HRAtK computes Hit Ratio@K between a predicted ranking and a
// gold-standard ranking of the same candidate set. Both arguments are
// candidate indices ordered best-first. The hit ratio is the fraction of
// the gold top-K that also appears in the predicted top-K.
func HRAtK(predicted, gold []int, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(gold) {
		k = len(gold)
	}
	kp := k
	if kp > len(predicted) {
		kp = len(predicted)
	}
	goldTop := make(map[int]bool, k)
	for _, id := range gold[:k] {
		goldTop[id] = true
	}
	hits := 0
	for _, id := range predicted[:kp] {
		if goldTop[id] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// NDCGAtK computes Normalized Discounted Cumulative Gain@K. Relevance of a
// candidate is graded by its position in the gold ranking: the gold-best
// candidate has relevance K, the second K−1, …, candidates outside the gold
// top-K have relevance 0. This matches the graded-relevance NDCG used in IR
// evaluation of top-K configuration ranking.
func NDCGAtK(predicted, gold []int, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(gold) {
		k = len(gold)
	}
	rel := make(map[int]float64, k)
	for pos, id := range gold[:k] {
		rel[id] = float64(k - pos)
	}
	kp := k
	if kp > len(predicted) {
		kp = len(predicted)
	}
	var dcg float64
	for pos, id := range predicted[:kp] {
		if r, ok := rel[id]; ok {
			dcg += (math.Pow(2, r) - 1) / math.Log2(float64(pos)+2)
		}
	}
	var idcg float64
	for pos := 0; pos < k; pos++ {
		r := float64(k - pos)
		idcg += (math.Pow(2, r) - 1) / math.Log2(float64(pos)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// RankByScore returns candidate indices ordered by ascending score
// (execution time: lower is better first). NaN scores rank last — a
// candidate a broken estimator cannot score must never be declared best.
func RankByScore(scores []float64) []int {
	for _, s := range scores {
		if math.IsNaN(s) {
			clean := make([]float64, len(scores))
			for i, v := range scores {
				if math.IsNaN(v) {
					clean[i] = math.Inf(1)
				} else {
					clean[i] = v
				}
			}
			return stats.Argsort(clean)
		}
	}
	return stats.Argsort(scores)
}

// ETR computes Execution Time Reduction as defined in §V-B of the paper:
//
//	ETR = (t_default − t_method) / (t_default − t_min)
//
// where t_min is the minimal execution time achieved by any tuning method
// for the application. ETR = 1 means the method found the best-known
// configuration; ETR = 0 means no improvement over the default. Times
// longer than the cap (7200 s in the paper) should be clamped by the
// caller before calling ETR.
func ETR(tDefault, tMethod, tMin float64) float64 {
	denom := tDefault - tMin
	if denom <= 0 {
		// Default already optimal: any non-regression counts as full credit.
		if tMethod <= tDefault {
			return 1
		}
		return 0
	}
	return (tDefault - tMethod) / denom
}

// SpeedupPercent computes the simpler (t_default − t_method)/t_default
// ratio, which the paper quotes as "execution time reduction" percentages
// in the prose of §V-B.
func SpeedupPercent(tDefault, tMethod float64) float64 {
	if tDefault <= 0 {
		return 0
	}
	return (tDefault - tMethod) / tDefault
}
