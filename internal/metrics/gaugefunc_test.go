package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// GaugeFunc values are computed at exposition time, sorted in with stored
// gauges, and re-registering a name replaces the callback.
func TestGaugeFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b_stored").Set(2)
	v := 1.0
	r.GaugeFunc("a_func", func() float64 { return v })

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := "# TYPE a_func gauge\na_func 1\n# TYPE b_stored gauge\nb_stored 2\n"
	if got := buf.String(); got != want {
		t.Fatalf("exposition = %q, want %q", got, want)
	}

	// Callback is live: a later scrape sees the new value.
	v = 7
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "a_func 7\n") {
		t.Fatalf("callback not re-evaluated: %q", buf.String())
	}

	// Re-registering replaces the callback rather than duplicating the line.
	r.GaugeFunc("a_func", func() float64 { return 42 })
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if got := strings.Count("\n"+buf.String(), "\na_func "); got != 1 {
		t.Fatalf("a_func appears %d times", got)
	}
	if !strings.Contains(buf.String(), "a_func 42\n") {
		t.Fatalf("replacement callback not used: %q", buf.String())
	}
}

// A callback may itself touch the registry: it runs outside the lock, so a
// scrape cannot deadlock even if the func reads other metrics.
func TestGaugeFuncMayReadRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.GaugeFunc("hits_x2", func() float64 { return float64(r.Counter("hits").Value() * 2) })

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for i := 0; i < 50; i++ {
				buf.Reset()
				if err := r.WriteText(&buf); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "hits_x2 6\n") {
		t.Fatalf("derived gauge wrong: %q", buf.String())
	}
}
