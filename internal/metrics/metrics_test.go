package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHRAtKPerfect(t *testing.T) {
	gold := []int{3, 1, 4, 0, 2}
	if HRAtK(gold, gold, 5) != 1 {
		t.Fatal("perfect ranking should give HR=1")
	}
	if HRAtK(gold, gold, 3) != 1 {
		t.Fatal("perfect prefix should give HR=1")
	}
}

func TestHRAtKDisjoint(t *testing.T) {
	pred := []int{5, 6, 7}
	gold := []int{0, 1, 2}
	if HRAtK(pred, gold, 3) != 0 {
		t.Fatal("disjoint top-K should give HR=0")
	}
}

func TestHRAtKPartial(t *testing.T) {
	pred := []int{0, 9, 1}
	gold := []int{0, 1, 2}
	got := HRAtK(pred, gold, 3)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("HR = %v, want 2/3", got)
	}
}

func TestHRAtKOrderInvariantWithinTopK(t *testing.T) {
	gold := []int{0, 1, 2, 3, 4}
	a := HRAtK([]int{2, 0, 1}, gold, 3)
	b := HRAtK([]int{0, 1, 2}, gold, 3)
	if a != b {
		t.Fatal("HR@K should ignore order within top-K")
	}
}

func TestNDCGPerfectIsOne(t *testing.T) {
	gold := []int{3, 1, 4, 0, 2}
	if math.Abs(NDCGAtK(gold, gold, 5)-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", NDCGAtK(gold, gold, 5))
	}
}

func TestNDCGPenalizesSwaps(t *testing.T) {
	gold := []int{0, 1, 2, 3, 4}
	swapped := []int{1, 0, 2, 3, 4}
	perfect := NDCGAtK(gold, gold, 5)
	withSwap := NDCGAtK(swapped, gold, 5)
	if withSwap >= perfect {
		t.Fatalf("swap should reduce NDCG: %v >= %v", withSwap, perfect)
	}
	if withSwap <= 0 {
		t.Fatal("one swap should not zero NDCG")
	}
}

func TestNDCGOrderSensitive(t *testing.T) {
	gold := []int{0, 1, 2}
	// Best item ranked last vs first.
	worst := NDCGAtK([]int{2, 1, 0}, gold, 3)
	best := NDCGAtK([]int{0, 1, 2}, gold, 3)
	if worst >= best {
		t.Fatalf("NDCG must be order sensitive: %v >= %v", worst, best)
	}
}

func TestNDCGBoundedZeroOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		gold := rng.Perm(n)
		pred := rng.Perm(n)
		v := NDCGAtK(pred, gold, 5)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHRBoundedZeroOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		gold := rng.Perm(n)
		pred := rng.Perm(n)
		v := HRAtK(pred, gold, 5)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRankByScoreAscending(t *testing.T) {
	ranked := RankByScore([]float64{30, 10, 20})
	want := []int{1, 2, 0}
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("RankByScore = %v", ranked)
		}
	}
}

func TestETRDefinition(t *testing.T) {
	// Method found the best-known time → ETR = 1.
	if ETR(100, 40, 40) != 1 {
		t.Fatal("best method should have ETR 1")
	}
	// No improvement → ETR = 0.
	if ETR(100, 100, 40) != 0 {
		t.Fatal("no improvement should have ETR 0")
	}
	// Halfway between default and best → 0.5.
	if math.Abs(ETR(100, 70, 40)-0.5) > 1e-12 {
		t.Fatalf("ETR = %v, want 0.5", ETR(100, 70, 40))
	}
	// Degenerate: default already optimal.
	if ETR(40, 40, 40) != 1 {
		t.Fatal("default==min and method==default should be 1")
	}
	if ETR(40, 50, 40) != 0 {
		t.Fatal("regression past optimal default should be 0")
	}
}

func TestSpeedupPercent(t *testing.T) {
	if math.Abs(SpeedupPercent(200, 50)-0.75) > 1e-12 {
		t.Fatalf("speedup = %v", SpeedupPercent(200, 50))
	}
	if SpeedupPercent(0, 10) != 0 {
		t.Fatal("zero default should yield 0")
	}
}

func TestKLargerThanLists(t *testing.T) {
	pred := []int{0, 1}
	gold := []int{1, 0}
	if HRAtK(pred, gold, 10) != 1 {
		t.Fatal("K beyond list length should clamp")
	}
	v := NDCGAtK(pred, gold, 10)
	if v <= 0 || v > 1 {
		t.Fatalf("clamped NDCG out of range: %v", v)
	}
}
