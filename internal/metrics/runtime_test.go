package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("reqs_total").Inc()
				r.Gauge("gen").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("reqs_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if g := r.Gauge("gen").Value(); g < 0 || g > 999 {
		t.Fatalf("gauge = %g out of range", g)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // uniform over [0.5, 7.5]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 5 {
		t.Fatalf("p50 = %g, want within [1,5]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 8 {
		t.Fatalf("p99 = %g, want within [p50,8]", p99)
	}
	if mean := h.Mean(); math.Abs(mean-4) > 0.2 {
		t.Fatalf("mean = %g, want ~4", mean)
	}
	// Over-the-top observations land in the +Inf bucket and clamp quantiles.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 1 {
		t.Fatalf("overflow quantile = %g, want clamp to 1", q)
	}
	h2.Observe(math.NaN()) // ignored
	if h2.Count() != 1 {
		t.Fatalf("NaN observation counted")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if math.Abs(h.Sum()-4.0) > 1e-9 {
		t.Fatalf("sum = %g, want 4.0", h.Sum())
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter(`http_requests_total{endpoint="recommend",code="200"}`).Add(3)
	r.Counter(`http_requests_total{endpoint="recommend",code="400"}`).Add(1)
	r.Gauge("snapshot_generation").Set(2)
	h := r.Histogram(`http_request_seconds{endpoint="recommend"}`, []float64{0.01, 0.1})
	h.Observe(0.05)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		"# TYPE snapshot_generation gauge",
		"# TYPE http_request_seconds histogram",
		`http_requests_total{endpoint="recommend",code="200"} 3`,
		`http_requests_total{endpoint="recommend",code="400"} 1`,
		"snapshot_generation 2",
		`http_request_seconds_bucket{endpoint="recommend",le="0.1"} 1`,
		`http_request_seconds_sum{endpoint="recommend"} 0.05`,
		`http_request_seconds_count{endpoint="recommend"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, not per labeled series.
	if got := strings.Count(out, "# TYPE http_requests_total counter"); got != 1 {
		t.Fatalf("family http_requests_total has %d TYPE lines, want exactly 1:\n%s", got, out)
	}
	// The suffix must land before the label braces, never after.
	if strings.Contains(out, `}_count`) || strings.Contains(out, `}_sum`) {
		t.Fatalf("suffix after label braces is invalid exposition format:\n%s", out)
	}
}

// TestRegistryWriteTextFamiliesConsecutive: under a plain string sort,
// `name{` sorts after `namez` ('{' > 'z'), which would split a labeled
// family around another family's series. Strict parsers require every
// series of a family to sit under its single # TYPE line.
func TestRegistryWriteTextFamiliesConsecutive(t *testing.T) {
	r := NewRegistry()
	r.Counter(`reqs{code="200"}`).Inc()
	r.Counter(`reqs{code="400"}`).Inc()
	r.Counter("reqsz").Inc() // sorts between reqs{...} series on raw strings
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	first := strings.Index(out, `reqs{code="200"}`)
	second := strings.Index(out, `reqs{code="400"}`)
	other := strings.Index(out, "reqsz")
	if first < 0 || second < 0 || other < 0 {
		t.Fatalf("missing series:\n%s", out)
	}
	if other > first && other < second {
		t.Fatalf("family reqs split by reqsz:\n%s", out)
	}
}

// TestRegistryWriteTextConcurrentCreate scrapes the registry while metrics
// are being created lazily — under -race this catches WriteText reading the
// live maps outside the registry lock.
func TestRegistryWriteTextConcurrentCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(names[(g*1000+i)%len(names)]).Inc()
				r.Gauge(names[(g*1000+i+1)%len(names)]).Set(1)
				r.Histogram(names[(g*1000+i+2)%len(names)], nil).Observe(0.01)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

var names = func() []string {
	out := make([]string, 512)
	for i := range out {
		out[i] = "m" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
	}
	return out
}()
