package metrics

// This file adds the *runtime* metrics the serving subsystem exports —
// atomic counters, gauges and histograms with a Prometheus-style text
// exposition — alongside the paper's evaluation metrics (HR@K, NDCG, ETR)
// defined in metrics.go. Everything here is allocation-free on the hot
// path and safe for concurrent use.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down (e.g. the current model
// snapshot generation, the feedback-queue depth).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value stored.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative-style buckets and tracks
// sum and count, like a Prometheus histogram. Observe is lock-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefaultLatencyBuckets covers sub-millisecond cache hits up to multi-second
// cold recommendations (seconds).
var DefaultLatencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// NewHistogram builds a histogram over the given upper bounds (need not be
// sorted; a copy is taken). A nil/empty slice falls back to
// DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket — the same estimate Prometheus's
// histogram_quantile produces. Values beyond the last bound clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // open-ended bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / n
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a named collection of runtime metrics with text exposition.
// Metric names may carry Prometheus-style labels baked into the string,
// e.g. `http_requests_total{endpoint="recommend",code="200"}`. All
// methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]func() float64
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry, ready for concurrent use.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		funcs:  map[string]func() float64{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (e.g. the scoring pool's current utilization). Registering the
// same name again replaces the callback. fn must be safe to call from any
// goroutine; it is invoked outside the registry lock, so it may itself
// read other metrics or locked state.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the histogram with the given name, creating it with the
// given bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// WriteText renders every metric in a Prometheus-compatible exposition
// format, sorted by name for deterministic output. Each metric family gets
// one `# TYPE` line (counter, gauge or histogram) ahead of its series, so
// strict parsers type the series instead of classifying them untyped.
func (r *Registry) WriteText(w io.Writer) error {
	// Copy name → pointer pairs while holding the lock: Counter/Gauge/
	// Histogram insert into these maps lazily on the hot path, so iterating
	// the live maps after unlocking would be a concurrent map read/write.
	r.mu.Lock()
	type counter struct {
		name string
		c    *Counter
	}
	type gauge struct {
		name string
		g    *Gauge
	}
	type hist struct {
		name string
		h    *Histogram
	}
	counters := make([]counter, 0, len(r.counts))
	for n, c := range r.counts {
		counters = append(counters, counter{n, c})
	}
	gauges := make([]gauge, 0, len(r.gauges))
	for n, g := range r.gauges {
		gauges = append(gauges, gauge{n, g})
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for n, fn := range r.funcs {
		funcs[n] = fn
	}
	hists := make([]hist, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, hist{n, h})
	}
	r.mu.Unlock()

	// Gauge callbacks are evaluated here, outside the registry lock, and
	// merged with the stored gauges into one sorted section.
	type gaugeLine struct {
		name  string
		value float64
	}
	lines := make([]gaugeLine, 0, len(gauges)+len(funcs))
	for _, gg := range gauges {
		lines = append(lines, gaugeLine{gg.name, gg.g.Value()})
	}
	for n, fn := range funcs {
		lines = append(lines, gaugeLine{n, fn()})
	}

	// Sort by (family, full name), not the raw string: '{' sorts above
	// letters, so a plain string sort could interleave the labeled series
	// of one family with another family's — and strict parsers require a
	// family's series to be consecutive under its # TYPE line (emitted
	// exactly once per family, not per labeled series).
	familyOrder := func(a, b string) bool {
		fa, _ := splitLabels(a)
		fb, _ := splitLabels(b)
		if fa != fb {
			return fa < fb
		}
		return a < b
	}
	sort.Slice(counters, func(i, j int) bool { return familyOrder(counters[i].name, counters[j].name) })
	sort.Slice(lines, func(i, j int) bool { return familyOrder(lines[i].name, lines[j].name) })
	sort.Slice(hists, func(i, j int) bool { return familyOrder(hists[i].name, hists[j].name) })

	typeLine := func(lastFamily *string, name, kind string) error {
		family, _ := splitLabels(name)
		if family == *lastFamily {
			return nil
		}
		*lastFamily = family
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		return err
	}

	var family string
	for _, cc := range counters {
		if err := typeLine(&family, cc.name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", cc.name, cc.c.Value()); err != nil {
			return err
		}
	}
	family = ""
	for _, gl := range lines {
		if err := typeLine(&family, gl.name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", gl.name, gl.value); err != nil {
			return err
		}
	}
	family = ""
	for _, hh := range hists {
		if err := typeLine(&family, hh.name, "histogram"); err != nil {
			return err
		}
		base, labels := splitLabels(hh.name)
		var cum uint64
		for i, b := range hh.h.bounds {
			cum += hh.h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labels, trimFloat(b), cum); err != nil {
				return err
			}
		}
		cum += hh.h.counts[len(hh.h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, cum); err != nil {
			return err
		}
		// The _sum/_count suffix attaches to the base name, before any
		// labels — `name_sum{a="b"}`, never `name{a="b"}_sum`.
		suffix := ""
		if labels != "" {
			suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", base, suffix, hh.h.Sum(), base, suffix, hh.h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// splitLabels separates `name{a="b"}` into "name" and `a="b",` so bucket
// lines can append the le label; a plain name yields empty labels.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// trimFloat formats a bucket bound compactly.
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
