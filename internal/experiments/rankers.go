package experiments

import (
	"math"
	"math/rand"

	"lite/internal/core"
	"lite/internal/feature"
	"lite/internal/gbm"
	"lite/internal/instrument"
	"lite/internal/nn"
	"lite/internal/tensor"
	"lite/internal/workload"
)

// Ranker scores candidate configurations of a gold case; lower score means
// faster predicted execution. Every Table VII method implements it.
type Ranker interface {
	Name() string
	Fit(ds *core.Dataset, rng *rand.Rand)
	Scores(gc *GoldCase) []float64
}

// ---------------------------------------------------------------------------
// Flat rankers: {LightGBM, MLP} × {W, S, WC, SC, SCG}
// ---------------------------------------------------------------------------

// FlatModel abstracts the regressor behind a flat ranker.
type FlatModel interface {
	Fit(x [][]float64, y []float64, rng *rand.Rand)
	Predict(row []float64) float64
}

// GBMModel adapts internal/gbm.
type GBMModel struct {
	m *gbm.Model
	p gbm.Params
}

// NewGBMModel returns a LightGBM-style regressor with default parameters.
func NewGBMModel() *GBMModel { return &GBMModel{p: gbm.DefaultParams()} }

// Fit trains the boosted ensemble.
func (g *GBMModel) Fit(x [][]float64, y []float64, rng *rand.Rand) {
	g.m = gbm.Fit(x, y, g.p, rng)
}

// Predict scores one row.
func (g *GBMModel) Predict(row []float64) float64 { return g.m.Predict(row) }

// MLPModel is a flat MLP regressor trained with Adam.
type MLPModel struct {
	Hidden []int
	Epochs int
	LR     float64
	mlp    *nn.MLP
}

// NewMLPModel returns the Table VII MLP baseline regressor.
func NewMLPModel() *MLPModel {
	return &MLPModel{Hidden: []int{64, 32}, Epochs: 6, LR: 2e-3}
}

// Fit trains the MLP on flat rows.
func (m *MLPModel) Fit(x [][]float64, y []float64, rng *rand.Rand) {
	widths := append(append([]int{len(x[0])}, m.Hidden...), 1)
	m.mlp = nn.NewMLP(widths, rng, "flat")
	opt := nn.NewAdam(m.mlp.Params(), m.LR)
	idx := rng.Perm(len(x))
	const batch = 16
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < len(idx); s += batch {
			e := s + batch
			if e > len(idx) {
				e = len(idx)
			}
			opt.ZeroGrad()
			for _, i := range idx[s:e] {
				loss := nn.Scale(nn.MSELoss(m.mlp.Forward(nn.NewConst(tensor.FromRow(x[i]))), y[i]), 1/float64(e-s))
				nn.Backward(loss)
			}
			nn.ClipGrads(m.mlp.Params(), 5)
			opt.Step()
		}
	}
}

// Predict scores one row.
func (m *MLPModel) Predict(row []float64) float64 {
	return m.mlp.Forward(nn.NewConst(tensor.FromRow(row))).Scalar()
}

// FlatRanker pairs a featurizer mode with a regressor.
type FlatRanker struct {
	ModelName string
	Mode      FlatMode
	Model     FlatModel
	// MaxTrainRows caps the stage-level training set (uniform subsample);
	// raw stage instances number in the tens of thousands and the flat
	// regressors converge long before that. 0 means no cap.
	MaxTrainRows int
	apps         []*workload.App
	feat         *Featurizer
	mainCode     map[string]string
}

// NewFlatRanker builds one Table VII row, e.g. ("LightGBM", ModeSC).
func NewFlatRanker(modelName string, mode FlatMode, model FlatModel, apps []*workload.App) *FlatRanker {
	mc := map[string]string{}
	for _, a := range apps {
		mc[a.Spec.Name] = a.Spec.MainCode
	}
	return &FlatRanker{ModelName: modelName, Mode: mode, Model: model, MaxTrainRows: 5000, apps: apps, mainCode: mc}
}

// Name returns "Model+Mode" as in Table VII rows.
func (r *FlatRanker) Name() string { return r.ModelName + "+" + r.Mode.String() }

// Fit trains the regressor on the offline dataset at the mode's granularity.
func (r *FlatRanker) Fit(ds *core.Dataset, rng *rand.Rand) {
	r.feat = NewFeaturizer(r.Mode, r.apps, ds.Instances)
	var x [][]float64
	var y []float64
	if r.Mode.StageLevel() {
		idx := rng.Perm(len(ds.Instances))
		if r.MaxTrainRows > 0 && len(idx) > r.MaxTrainRows {
			idx = idx[:r.MaxTrainRows]
		}
		for _, i := range idx {
			st := &ds.Instances[i]
			x = append(x, r.feat.StageRow(st))
			y = append(y, core.LabelOf(st.Seconds))
		}
	} else {
		for i := range ds.Runs {
			run := &ds.Runs[i]
			x = append(x, r.feat.AppRow(run, r.mainCode[run.AppName]))
			y = append(y, core.LabelOf(run.Result.Seconds))
		}
	}
	r.Model.Fit(x, y, rng)
}

// Scores predicts per candidate: app-level modes score the run directly;
// stage-level modes sum stage predictions over the run's actual stages
// (using the monitor-UI statistics, as the paper's S/SC baselines do).
func (r *FlatRanker) Scores(gc *GoldCase) []float64 {
	out := make([]float64, len(gc.Configs))
	for i := range gc.Configs {
		run := &gc.Runs[i]
		if r.Mode.StageLevel() {
			var total float64
			for j := range run.Stages {
				total += clampNonNeg(core.SecondsOf(r.Model.Predict(r.feat.StageRow(&run.Stages[j]))))
			}
			out[i] = total
		} else {
			out[i] = core.SecondsOf(r.Model.Predict(r.feat.AppRow(run, r.mainCode[run.AppName])))
		}
	}
	return out
}

func clampNonNeg(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// ---------------------------------------------------------------------------
// Neural rankers: NECS and its encoder ablations (LSTM, Transformer, GCN)
// ---------------------------------------------------------------------------

// NeuralVariant selects the code encoder of a neural ranker.
type NeuralVariant int

// Table VII neural rows.
const (
	// VariantNECS is the full model: CNN code encoder + GCN DAG encoder.
	VariantNECS NeuralVariant = iota
	// VariantLSTM swaps the CNN for an LSTM over the stage tokens.
	VariantLSTM
	// VariantTransformer swaps the CNN for a Transformer encoder.
	VariantTransformer
	// VariantGCN drops the code encoder entirely (DAG + dense only).
	VariantGCN
)

// String names the variant as in Table VII.
func (v NeuralVariant) String() string {
	switch v {
	case VariantNECS:
		return "NECS"
	case VariantLSTM:
		return "LSTM"
	case VariantTransformer:
		return "Transformer"
	case VariantGCN:
		return "GCN"
	}
	return "?"
}

// NeuralRanker wraps core.NECS (for VariantNECS) or an ablated architecture
// sharing the same encoder, GCN and tower shape.
type NeuralRanker struct {
	Variant NeuralVariant
	Cfg     core.NECSConfig
	// SeqLen truncates token sequences for the sequence-model variants
	// (full N is needlessly slow for LSTM/Transformer on CPU).
	SeqLen int

	necs *core.NECS // VariantNECS

	// Ablation pieces (other variants).
	enc   *core.Encoder
	lstm  *nn.LSTMEncoder
	tfm   *nn.TransformerEncoder
	gcn   *nn.GCNEncoder
	tower *nn.MLP
}

// NewNeuralRanker builds a ranker of the given variant.
func NewNeuralRanker(variant NeuralVariant, cfg core.NECSConfig) *NeuralRanker {
	return &NeuralRanker{Variant: variant, Cfg: cfg, SeqLen: 48}
}

// Name names the ranker.
func (r *NeuralRanker) Name() string { return r.Variant.String() }

// Fit trains the model on the deduplicated encoded instances.
func (r *NeuralRanker) Fit(ds *core.Dataset, rng *rand.Rand) {
	if r.Variant == VariantNECS {
		enc := core.NewEncoder(ds.Instances, r.Cfg)
		r.necs = core.NewNECS(enc, r.Cfg, rng)
		r.necs.Fit(core.EncodeAll(enc, ds.Instances), rng)
		return
	}
	// Sequence encoders cost several times a CNN step on CPU; they get
	// half the epochs (they plateau earlier on this data anyway).
	if r.Variant == VariantLSTM || r.Variant == VariantTransformer {
		if r.Cfg.Epochs > 4 {
			r.Cfg.Epochs = r.Cfg.Epochs / 2
		}
	}
	r.enc = core.NewEncoder(ds.Instances, r.Cfg)
	gcnWidths := append([]int{r.enc.OpVocab.Width()}, r.Cfg.GCNHidden...)
	r.gcn = nn.NewGCNEncoder(gcnWidths, rng)
	codeDim := r.Cfg.CodeDim
	switch r.Variant {
	case VariantLSTM:
		r.lstm = nn.NewLSTMEncoder(r.enc.Vocab.Size(), r.Cfg.EmbDim, codeDim, r.SeqLen, rng)
	case VariantTransformer:
		r.tfm = nn.NewTransformerEncoder(r.enc.Vocab.Size(), codeDim, 2, 2*codeDim, r.SeqLen, rng)
	case VariantGCN:
		codeDim = 0
	}
	towerIn := feature.DenseWidth + codeDim + r.Cfg.GCNHidden[len(r.Cfg.GCNHidden)-1]
	r.tower = nn.NewMLP(nn.TowerWidths(towerIn, r.Cfg.TowerFirst, r.Cfg.TowerMin), rng, "tower")

	data := core.EncodeAll(r.enc, ds.Instances)
	opt := nn.NewAdam(r.params(), r.Cfg.LR)
	idx := rng.Perm(len(data))
	for epoch := 0; epoch < r.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < len(idx); s += r.Cfg.BatchSize {
			e := s + r.Cfg.BatchSize
			if e > len(idx) {
				e = len(idx)
			}
			opt.ZeroGrad()
			var bw float64
			for _, i := range idx[s:e] {
				bw += data[i].Weight
			}
			for _, i := range idx[s:e] {
				x := data[i]
				loss := nn.Scale(nn.MSELoss(r.forward(x), x.Y), x.Weight/bw)
				nn.Backward(loss)
			}
			nn.ClipGrads(r.params(), 5)
			opt.Step()
		}
	}
}

func (r *NeuralRanker) params() []*nn.Node {
	var ps []*nn.Node
	switch r.Variant {
	case VariantLSTM:
		ps = append(ps, r.lstm.Params()...)
	case VariantTransformer:
		ps = append(ps, r.tfm.Params()...)
	}
	ps = append(ps, r.gcn.Params()...)
	ps = append(ps, r.tower.Params()...)
	return ps
}

func (r *NeuralRanker) forward(x *core.Encoded) *nn.Node {
	parts := []*nn.Node{nn.NewConst(tensor.FromRow(x.Dense))}
	switch r.Variant {
	case VariantLSTM:
		parts = append(parts, r.lstm.Forward(x.TokenIDs))
	case VariantTransformer:
		parts = append(parts, r.tfm.Forward(x.TokenIDs))
	}
	parts = append(parts, r.gcn.Forward(nn.NewConst(x.AHat), nn.NewConst(x.NodeFeats)))
	return r.tower.Forward(nn.Concat(parts...))
}

// Scores aggregates stage-level predictions over each candidate.
func (r *NeuralRanker) Scores(gc *GoldCase) []float64 {
	out := make([]float64, len(gc.Configs))
	for i, cfg := range gc.Configs {
		if r.Variant == VariantNECS {
			out[i] = r.necs.PredictApp(gc.App.Spec, gc.Data, gc.Env, cfg)
			continue
		}
		plan := gc.App.Spec.ExpandedStages(gc.Data)
		perStage := map[int]float64{}
		var total float64
		for _, si := range plan {
			sec, ok := perStage[si]
			if !ok {
				st := &gc.App.Spec.Stages[si]
				inst := instrument.StageInstance{
					AppName: gc.App.Spec.Name, AppFamily: gc.App.Spec.Family,
					StageIndex: si, StageName: st.Name,
					Code: st.Code, Ops: st.Ops, Edges: st.Edges,
					Config: cfg, Data: gc.Data, Env: gc.Env,
				}
				sec = clampNonNeg(core.SecondsOf(r.forward(r.enc.Encode(&inst)).Scalar()))
				perStage[si] = sec
			}
			total += sec
		}
		out[i] = total
	}
	return out
}

// NECS exposes the trained model (nil for non-NECS variants).
func (r *NeuralRanker) NECS() *core.NECS { return r.necs }

// EvalScoresForTest exposes evalScores for external probes and examples.
func EvalScoresForTest(scores, actual []float64, k int) RankingScore {
	return evalScores(scores, actual, k)
}
