package experiments

import (
	"math"
	"math/rand"

	"lite/internal/core"
	"lite/internal/gbm"
	"lite/internal/sparksim"
	"lite/internal/stats"
	"lite/internal/workload"
)

// This file implements the cost-based and experimental tuning approaches
// the paper surveys in §VI as additional competitors, used by the
// "extra" (beyond-paper) comparison: Ernest-style analytical cost models,
// AutoTune-style Latin-Hypercube search, and a DAC-style learned model
// with randomized search.

// ---------------------------------------------------------------------------
// Ernest: analytical scaling model fit by least squares
// ---------------------------------------------------------------------------

// ErnestTuner fits the Ernest cost model (Venkataraman et al., NSDI'16)
// per application from the small-data training runs:
//
//	t ≈ θ₀ + θ₁·(size/slots) + θ₂·log(slots) + θ₃·slots
//
// and recommends the candidate with the lowest predicted time. As the
// paper notes, Ernest "only models the interaction between the data scale
// and the inverse of the number of machines and cannot easily support
// other factors" — the other 13 knobs are invisible to it.
type ErnestTuner struct {
	suite      *Suite
	Candidates int
}

// NewErnestTuner builds the tuner against the suite's training data.
func NewErnestTuner(s *Suite) *ErnestTuner {
	return &ErnestTuner{suite: s, Candidates: 64}
}

// Name implements TunerMethod.
func (*ErnestTuner) Name() string { return "Ernest" }

func ernestFeatures(cfg sparksim.Config, data sparksim.DataSpec, env sparksim.Environment) []float64 {
	d := featureSlots(cfg, env)
	slots := math.Max(d, 1)
	return []float64{1, data.SizeMB / slots, math.Log(slots + 1), slots}
}

// featureSlots computes allocatable task slots for a configuration.
func featureSlots(cfg sparksim.Config, env sparksim.Environment) float64 {
	cfg = cfg.Clamp()
	perNodeByCores := math.Floor(float64(env.Cores) / cfg[sparksim.KnobExecutorCores])
	perNodeByMem := math.Floor((env.MemGB - 1) / (cfg[sparksim.KnobExecutorMemory] + cfg[sparksim.KnobExecutorMemoryOverhead]/1024))
	perNode := math.Min(perNodeByCores, perNodeByMem)
	if perNode < 1 {
		return 0
	}
	executors := math.Min(cfg[sparksim.KnobExecutorInstances], perNode*float64(env.Nodes))
	return executors * cfg[sparksim.KnobExecutorCores]
}

// Tune implements TunerMethod.
func (t *ErnestTuner) Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult {
	// Fit θ on this application's training runs (all sizes, all clusters).
	var x [][]float64
	var y []float64
	for i := range t.suite.Dataset().Runs {
		run := &t.suite.Dataset().Runs[i]
		if run.AppName != app.Spec.Name || run.Result.Failed {
			continue
		}
		x = append(x, ernestFeatures(run.Config, run.Data, run.Env))
		y = append(y, run.Result.Seconds)
	}
	theta := leastSquares(x, y, 4)

	best := core.ForceFeasible(sparksim.DefaultConfig(), env)
	bestPred := math.Inf(1)
	for i := 0; i < t.Candidates; i++ {
		cfg := core.ForceFeasible(sparksim.RandomConfig(rng), env)
		f := ernestFeatures(cfg, data, env)
		pred := 0.0
		for j := range theta {
			pred += theta[j] * f[j]
		}
		if pred < bestPred {
			bestPred, best = pred, cfg
		}
	}
	res := TuningResult{Method: "Ernest"}
	var spent float64
	evalTrial(&res, app, data, env, best, &spent)
	return res
}

// leastSquares solves min ‖Xθ−y‖² via the normal equations with Gaussian
// elimination (ridge-stabilized). dim is the feature width.
func leastSquares(x [][]float64, y []float64, dim int) []float64 {
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim+1)
	}
	for r := range x {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				a[i][j] += x[r][i] * x[r][j]
			}
			a[i][dim] += x[r][i] * y[r]
		}
	}
	for i := 0; i < dim; i++ {
		a[i][i] += 1e-6 // ridge
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if a[col][col] == 0 {
			continue
		}
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= dim; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	theta := make([]float64, dim)
	for i := 0; i < dim; i++ {
		if a[i][i] != 0 {
			theta[i] = a[i][dim] / a[i][i]
		}
	}
	return theta
}

// ---------------------------------------------------------------------------
// AutoTune: Latin-Hypercube search within the execution budget
// ---------------------------------------------------------------------------

// AutoTuneTuner is the experimental-approach competitor (§VI): it executes
// a Latin Hypercube Sample of the configuration space, then iteratively
// re-samples a shrunken box around the best configuration so far, spending
// the whole execution budget on trials (AutoTune, Middleware'18 style).
type AutoTuneTuner struct {
	// RoundSize configurations are executed per LHS round.
	RoundSize int
	// Shrink contracts the box around the incumbent each round.
	Shrink float64
}

// NewAutoTuneTuner returns the competitor with standard settings.
func NewAutoTuneTuner() *AutoTuneTuner { return &AutoTuneTuner{RoundSize: 8, Shrink: 0.6} }

// Name implements TunerMethod.
func (*AutoTuneTuner) Name() string { return "AutoTune" }

// Tune implements TunerMethod.
func (t *AutoTuneTuner) Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult {
	res := TuningResult{Method: "AutoTune"}
	var spent float64

	lo := make([]float64, sparksim.NumKnobs)
	hi := make([]float64, sparksim.NumKnobs)
	for i := range hi {
		hi[i] = 1
	}
	var bestU []float64
	for spent < budget {
		pts := stats.LatinHypercube(t.RoundSize, sparksim.NumKnobs, rng)
		for _, u := range pts {
			if spent >= budget {
				break
			}
			scaled := make([]float64, sparksim.NumKnobs)
			for d := range u {
				scaled[d] = lo[d] + u[d]*(hi[d]-lo[d])
			}
			cfg := core.ForceFeasible(sparksim.FromNormalized(scaled), env)
			sec := evalTrial(&res, app, data, env, cfg, &spent)
			if sec == res.BestSeconds {
				bestU = scaled
			}
		}
		if bestU == nil {
			continue
		}
		// Shrink the box around the incumbent.
		for d := range lo {
			half := (hi[d] - lo[d]) * t.Shrink / 2
			c := bestU[d]
			lo[d] = math.Max(0, c-half)
			hi[d] = math.Min(1, c+half)
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// DAC: learned per-app model + randomized search
// ---------------------------------------------------------------------------

// DACTuner approximates DAC (TPDS'19): a boosted-tree model per
// application over (configuration, datasize) trained on the small-data
// runs, searched with random candidates plus hill-climbing mutations of
// the incumbents (standing in for DAC's genetic search).
type DACTuner struct {
	suite      *Suite
	Candidates int
	Mutations  int
}

// NewDACTuner builds the competitor.
func NewDACTuner(s *Suite) *DACTuner {
	return &DACTuner{suite: s, Candidates: 48, Mutations: 24}
}

// Name implements TunerMethod.
func (*DACTuner) Name() string { return "DAC" }

// Tune implements TunerMethod.
func (t *DACTuner) Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult {
	var x [][]float64
	var y []float64
	for i := range t.suite.Dataset().Runs {
		run := &t.suite.Dataset().Runs[i]
		if run.AppName != app.Spec.Name {
			continue
		}
		row := append(run.Config.Normalized(), math.Log1p(run.Data.SizeMB)/15)
		x = append(x, row)
		y = append(y, core.LabelOf(run.Result.Seconds))
	}
	params := gbm.DefaultParams()
	params.NumRounds = 60
	model := gbm.Fit(x, y, params, rng)
	score := func(cfg sparksim.Config) float64 {
		row := append(cfg.Normalized(), math.Log1p(data.SizeMB)/15)
		return model.Predict(row)
	}

	best := core.ForceFeasible(sparksim.DefaultConfig(), env)
	bestScore := score(best)
	consider := func(cfg sparksim.Config) {
		if s := score(cfg); s < bestScore {
			bestScore, best = s, cfg
		}
	}
	for i := 0; i < t.Candidates; i++ {
		consider(core.ForceFeasible(sparksim.RandomConfig(rng), env))
	}
	for i := 0; i < t.Mutations; i++ {
		mut := best
		for d := 0; d < sparksim.NumKnobs; d++ {
			if rng.Float64() < 0.25 {
				k := sparksim.Knobs[d]
				mut[d] += rng.NormFloat64() * (k.Max - k.Min) * 0.1
			}
		}
		consider(core.ForceFeasible(mut.Clamp(), env))
	}

	res := TuningResult{Method: "DAC"}
	var spent float64
	evalTrial(&res, app, data, env, best, &spent)
	return res
}
