// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the sparksim testbed. Each experiment is a function
// returning a structured result plus a formatted text table; cmd/litebench
// and the repository-level benchmarks drive them.
//
// Scale note: the paper's evaluation ran for machine-days on three physical
// clusters. The defaults here are sized for a single-core CI machine
// (smaller candidate sets, fewer repetitions); every knob is exported so
// the full-size run is one option change away. Shapes and orderings are the
// reproduction target, not absolute seconds (see EXPERIMENTS.md).
package experiments

import (
	"math/rand"
	"sync"

	"lite/internal/core"
	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// Options sizes the experiment suite.
type Options struct {
	Seed int64
	// ConfigsPerInstance: sampled configurations per (app, size, cluster)
	// in the offline training set.
	ConfigsPerInstance int
	// NECS hyperparameters for the standard model.
	NECS core.NECSConfig
	// Candidates evaluated when building gold rankings.
	GoldCandidates int
	// CandidatesPerRecommendation for LITE's online step.
	RecommendCandidates int
	// TuningBudgetSeconds is the simulated budget for BO/DDPG ("2h").
	TuningBudgetSeconds float64
}

// DefaultOptions returns the CI-sized configuration.
func DefaultOptions() Options {
	necs := core.DefaultNECSConfig()
	necs.Epochs = 14
	return Options{
		Seed:                1,
		ConfigsPerInstance:  8,
		NECS:                necs,
		GoldCandidates:      20,
		RecommendCandidates: 64,
		TuningBudgetSeconds: 7200,
	}
}

// Suite owns the shared state every experiment reuses: the offline training
// dataset, the standard trained LITE tuner, and the encoded source domain.
type Suite struct {
	Opts Options
	Apps []*workload.App

	dsOnce sync.Once
	ds     *core.Dataset

	tunerOnce sync.Once
	tuner     *core.Tuner
	source    []*core.Encoded
}

// NewSuite constructs a suite over all 15 applications.
func NewSuite(opts Options) *Suite {
	return &Suite{Opts: opts, Apps: workload.All()}
}

// NewSuiteWithApps constructs a suite restricted to the given applications
// (used by fast tests; the paper's evaluation always uses all 15).
func NewSuiteWithApps(opts Options, apps []*workload.App) *Suite {
	return &Suite{Opts: opts, Apps: apps}
}

// Dataset lazily collects the offline training data (15 apps × 4 small
// sizes × 3 clusters × ConfigsPerInstance runs).
func (s *Suite) Dataset() *core.Dataset {
	s.dsOnce.Do(func() {
		rng := rand.New(rand.NewSource(s.Opts.Seed))
		collect := core.DefaultCollectOptions()
		collect.ConfigsPerInstance = s.Opts.ConfigsPerInstance
		s.ds = core.Collect(s.Apps, collect, rng)
	})
	return s.ds
}

// Tuner lazily trains the standard LITE tuner on the shared dataset.
func (s *Suite) Tuner() *core.Tuner {
	s.tunerOnce.Do(func() {
		opts := core.DefaultTrainOptions()
		opts.NECS = s.Opts.NECS
		opts.Seed = s.Opts.Seed
		s.tuner = core.TrainOn(s.Dataset(), opts)
		s.tuner.NumCandidates = s.Opts.RecommendCandidates
		s.source = core.EncodeAll(s.tuner.Model.Encoder, s.Dataset().Instances)
	})
	return s.tuner
}

// Source returns the encoded source-domain training set.
func (s *Suite) Source() []*core.Encoded {
	s.Tuner()
	return s.source
}

// rng derives a deterministic stream for a sub-experiment.
func (s *Suite) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(s.Opts.Seed*1000 + offset))
}

// GoldCase is one ranking-evaluation case: a candidate set with its actual
// (gold) execution times on a given application/data/environment.
type GoldCase struct {
	App     *workload.App
	Data    sparksim.DataSpec
	Env     sparksim.Environment
	Configs []sparksim.Config
	// Actual execution times per candidate, FailCap for failures.
	Actual []float64
	// Runs holds the instrumented runs (for stage-stat features).
	Runs []instrument.AppInstance
}

// GoldRanking builds a candidate set and its ground-truth ordering. All
// candidates pass the static allocation check for the environment so the
// ranking task is about performance, not trivial feasibility.
func (s *Suite) GoldRanking(app *workload.App, sizeMB float64, env sparksim.Environment, n int, rng *rand.Rand) *GoldCase {
	data := app.Spec.MakeData(sizeMB)
	gc := &GoldCase{App: app, Data: data, Env: env}
	for len(gc.Configs) < n {
		cfg := sparksim.RandomConfig(rng)
		if !sparksim.Feasible(cfg, env) {
			cfg = core.ForceFeasible(cfg, env)
		}
		run := instrument.Run(app.Spec, data, env, cfg)
		gc.Configs = append(gc.Configs, cfg)
		gc.Actual = append(gc.Actual, run.Result.Seconds)
		gc.Runs = append(gc.Runs, run)
	}
	return gc
}

// ValidationCases builds one gold case per application on its validation
// size in the given cluster.
func (s *Suite) ValidationCases(env sparksim.Environment, rngOffset int64) []*GoldCase {
	rng := s.rng(rngOffset)
	cases := make([]*GoldCase, 0, len(s.Apps))
	for _, app := range s.Apps {
		cases = append(cases, s.GoldRanking(app, app.Sizes.Valid, env, s.Opts.GoldCandidates, rng))
	}
	return cases
}

// LargeCases builds one gold case per application on its large testing size
// in cluster C ("Large" column of Table VII).
func (s *Suite) LargeCases(rngOffset int64) []*GoldCase {
	rng := s.rng(rngOffset)
	cases := make([]*GoldCase, 0, len(s.Apps))
	for _, app := range s.Apps {
		cases = append(cases, s.GoldRanking(app, app.Sizes.Test, sparksim.ClusterC, s.Opts.GoldCandidates, rng))
	}
	return cases
}
