package experiments

import (
	"fmt"
	"math"
	"sort"

	"lite/internal/core"
	"lite/internal/instrument"
	"lite/internal/metrics"
	"lite/internal/retrieval"
	"lite/internal/sparksim"
)

// coldTuner trains a LITE tuner with every instance of the excluded
// applications removed (leave-n-out, §V-G).
func coldTuner(s *Suite, excluded map[string]bool, seed int64, cfg core.NECSConfig) *core.Tuner {
	full := s.Dataset()
	sub := &core.Dataset{Apps: full.Apps}
	for _, run := range full.Runs {
		if excluded[run.AppName] {
			continue
		}
		sub.Runs = append(sub.Runs, run)
		sub.Instances = append(sub.Instances, run.Stages...)
	}
	opts := core.DefaultTrainOptions()
	opts.NECS = cfg
	opts.Seed = seed
	t := core.TrainOn(sub, opts)
	t.NumCandidates = s.Opts.RecommendCandidates
	return t
}

// bestKnownPool approximates the best-known execution time for an
// application instance with a fixed random pool plus the expert base.
func bestKnownPool(s *Suite, app int, sizeMB float64, env sparksim.Environment, n int, seed int64) float64 {
	a := s.Apps[app]
	data := a.Spec.MakeData(sizeMB)
	rng := s.rng(seed)
	best := sparksim.Simulate(a.Spec, data, env, expertBase(a, data, env)).Seconds
	for i := 0; i < n; i++ {
		cfg := core.ForceFeasible(sparksim.RandomConfig(rng), env)
		if t := sparksim.Simulate(a.Spec, data, env, cfg).Seconds; t < best {
			best = t
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Table X: cold-start tuning ETR per never-seen application
// ---------------------------------------------------------------------------

// Table10Result reports ETR per never-seen application under the cold-start
// protocol: all training instances of the application are excluded; LITE
// instruments it once on the smallest dataset, then recommends for the
// large testing data in cluster C.
type Table10Result struct {
	Apps    []string
	ETR     map[string]float64
	Seconds map[string]float64
	MeanETR float64
}

// Table10 runs the leave-one-out sweep.
func Table10(s *Suite) *Table10Result {
	res := &Table10Result{ETR: map[string]float64{}, Seconds: map[string]float64{}}
	cfg := s.Opts.NECS
	env := sparksim.ClusterC
	var sum float64
	for ai, app := range s.Apps {
		name := app.Spec.Name
		res.Apps = append(res.Apps, name)
		tuner := coldTuner(s, map[string]bool{name: true}, int64(600+ai), cfg)

		// Cold-start Step 1: instrument once on the smallest dataset so
		// stage codes/DAGs are available (they are part of the app spec
		// here, but the run also verifies the app executes).
		_, _ = core.ColdStartInstrument(app, env)

		data := app.Spec.MakeData(app.Sizes.Test)
		rec := tuner.Recommend(app.Spec, data, env)
		actual := sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds
		def := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig()).Seconds
		tMin := bestKnownPool(s, ai, app.Sizes.Test, env, 200, int64(650+ai))
		if actual < tMin {
			tMin = actual
		}
		etr := metrics.ETR(def, capSeconds(actual), tMin)
		res.ETR[name] = etr
		res.Seconds[name] = actual
		sum += etr
	}
	res.MeanETR = sum / float64(len(res.Apps))
	return res
}

// Format renders Table X.
func (r *Table10Result) Format() string {
	t := NewTable("Table X: cold-start ETR per never-seen application (large data, cluster C)",
		"application", "t(s)", "ETR")
	for _, app := range r.Apps {
		t.AddRow(app, fmtSeconds(r.Seconds[app]), fmt.Sprintf("%.2f", r.ETR[app]))
	}
	t.AddRow("MEAN", "", fmt.Sprintf("%.2f", r.MeanETR))
	return t.String()
}

// ---------------------------------------------------------------------------
// Cold-start retrieval: zero-execution serving of held-out applications
// ---------------------------------------------------------------------------

// ColdStartRetrievalResult compares, per held-out application, the
// zero-execution retrieval tier (nearest historical neighbour's best-known
// config, adapted) against the safe default — the answer an unseen app
// would otherwise get from the degradation chain's last tier.
type ColdStartRetrievalResult struct {
	Apps []string
	// RetrSec / DefSec are simulated execution times of the retrieval and
	// safe-default configs on the test datasize in cluster C.
	RetrSec map[string]float64
	DefSec  map[string]float64
	// Neighbour and Similarity describe the retrieved entry ("" / 0 on a
	// miss, where retrieval falls back to the safe default).
	Neighbour  map[string]string
	Similarity map[string]float64
	Hits       int
	// MeanSpeedup is the geometric-mean ratio default/retrieval (>1 means
	// retrieval beats the safe default on held-out apps).
	MeanSpeedup float64
}

// ColdStartRetrieval runs the leave-one-out sweep: for each application,
// the retrieval store is built from every other application's measured
// runs, the held-out app is embedded from its spec (exactly what the serve
// layer does for wire features), and the adapted neighbour config races
// the safe default on the large test datasize. No model training and no
// simulator executions are spent on the decision itself — only on scoring
// the outcome.
func ColdStartRetrieval(s *Suite) *ColdStartRetrievalResult {
	res := &ColdStartRetrievalResult{
		RetrSec:    map[string]float64{},
		DefSec:     map[string]float64{},
		Neighbour:  map[string]string{},
		Similarity: map[string]float64{},
	}
	env := sparksim.ClusterC
	full := s.Dataset()
	logSum, n := 0.0, 0
	for _, app := range s.Apps {
		name := app.Spec.Name
		res.Apps = append(res.Apps, name)

		var held []instrument.AppInstance
		for _, run := range full.Runs {
			if run.AppName != name {
				held = append(held, run)
			}
		}
		store := retrieval.BuildFromRuns(held)

		data := app.Spec.MakeData(app.Sizes.Test)
		def := core.ForceFeasible(sparksim.DefaultConfig(), env)
		cfg := def
		r, ok := store.Lookup(retrieval.Query{
			Embedding: retrieval.EmbedApp(app.Spec),
			SizeMB:    data.SizeMB,
			EnvFP:     retrieval.EnvFingerprint(env),
		})
		if ok {
			res.Hits++
			res.Neighbour[name] = r.App
			res.Similarity[name] = r.Similarity
			adapted := core.ForceFeasible(retrieval.Adapt(r.Config, r.SizeMB, data.SizeMB), env)
			if sparksim.Feasible(adapted, env) {
				cfg = adapted
			}
		}
		retrSec := capSeconds(sparksim.Simulate(app.Spec, data, env, cfg).Seconds)
		defSec := capSeconds(sparksim.Simulate(app.Spec, data, env, def).Seconds)
		res.RetrSec[name] = retrSec
		res.DefSec[name] = defSec
		logSum += math.Log(defSec / retrSec)
		n++
	}
	res.MeanSpeedup = math.Exp(logSum / float64(n))
	return res
}

// Format renders the cold-start retrieval comparison.
func (r *ColdStartRetrievalResult) Format() string {
	t := NewTable("Cold start: zero-execution retrieval vs safe default (held-out apps, test data, cluster C)",
		"application", "neighbour", "sim", "retrieval t(s)", "default t(s)", "speedup")
	for _, app := range r.Apps {
		nb := r.Neighbour[app]
		sim := "-"
		if nb != "" {
			sim = fmt.Sprintf("%.2f", r.Similarity[app])
		} else {
			nb = "(miss)"
		}
		t.AddRow(app, nb, sim,
			fmtSeconds(r.RetrSec[app]), fmtSeconds(r.DefSec[app]),
			fmt.Sprintf("%.2fx", r.DefSec[app]/r.RetrSec[app]))
	}
	t.AddRow("GEO-MEAN", fmt.Sprintf("%d/%d hits", r.Hits, len(r.Apps)), "", "", "",
		fmt.Sprintf("%.2fx", r.MeanSpeedup))
	return t.String()
}

// ---------------------------------------------------------------------------
// Table XI: warm vs cold ranking, NECS vs SCG+LightGBM, Cold-UNK ablation
// ---------------------------------------------------------------------------

// Table11Result compares ranking quality under warm-start and cold-start
// settings for NECS and the best non-neural competitor, plus the Cold-UNK
// ablation (NECS without the out-of-vocabulary token).
type Table11Result struct {
	// Scores keyed by method → setting ("warm"/"cold"/"cold-UNK").
	Scores map[string]map[string]RankingScore
	Folds  int
}

// Table11 evaluates on validation data in cluster C. Cold scores average
// over leave-one-out folds (a subset of applications for CI speed).
func Table11(s *Suite) *Table11Result {
	res := &Table11Result{Scores: map[string]map[string]RankingScore{
		"NECS":         {},
		"SCG+LightGBM": {},
	}, Folds: 5}
	env := sparksim.ClusterC
	cases := s.ValidationCases(env, 700)

	// Warm: standard models evaluated on all applications.
	warmNECS := NewNeuralRanker(VariantNECS, s.Opts.NECS)
	warmNECS.Fit(s.Dataset(), s.rng(701))
	res.Scores["NECS"]["warm"] = evalRanker(warmNECS, cases, 5)

	warmGBM := NewFlatRanker("LightGBM", ModeSCG, NewGBMModel(), s.Apps)
	warmGBM.Fit(s.Dataset(), s.rng(702))
	res.Scores["SCG+LightGBM"]["warm"] = evalRanker(warmGBM, cases, 5)

	// Cold and Cold-UNK: leave-one-out over the first Folds applications
	// (deterministic subset; the full sweep is Table X's job).
	var coldNECS, coldUNK, coldGBM []RankingScore
	unkCfg := s.Opts.NECS
	unkCfg.DisableOOV = true
	for fi := 0; fi < res.Folds && fi < len(s.Apps); fi++ {
		app := s.Apps[fi]
		excl := map[string]bool{app.Spec.Name: true}
		sub := &core.Dataset{Apps: s.Dataset().Apps}
		for _, run := range s.Dataset().Runs {
			if !excl[run.AppName] {
				sub.Runs = append(sub.Runs, run)
				sub.Instances = append(sub.Instances, run.Stages...)
			}
		}
		gc := cases[fi]

		nr := NewNeuralRanker(VariantNECS, s.Opts.NECS)
		nr.Fit(sub, s.rng(int64(710+fi)))
		coldNECS = append(coldNECS, evalScores(nr.Scores(gc), gc.Actual, 5))

		nu := NewNeuralRanker(VariantNECS, unkCfg)
		nu.Fit(sub, s.rng(int64(720+fi)))
		coldUNK = append(coldUNK, evalScores(nu.Scores(gc), gc.Actual, 5))

		gb := NewFlatRanker("LightGBM", ModeSCG, NewGBMModel(), s.Apps)
		gb.Fit(sub, s.rng(int64(730+fi)))
		coldGBM = append(coldGBM, evalScores(gb.Scores(gc), gc.Actual, 5))
	}
	res.Scores["NECS"]["cold"] = meanScore(coldNECS)
	res.Scores["NECS"]["cold-UNK"] = meanScore(coldUNK)
	res.Scores["SCG+LightGBM"]["cold"] = meanScore(coldGBM)
	return res
}

func meanScore(xs []RankingScore) RankingScore {
	var s RankingScore
	for _, x := range xs {
		s.HR += x.HR
		s.NDCG += x.NDCG
	}
	n := float64(len(xs))
	if n == 0 {
		return s
	}
	s.HR /= n
	s.NDCG /= n
	return s
}

// Format renders Table XI.
func (r *Table11Result) Format() string {
	t := NewTable(fmt.Sprintf("Table XI: warm vs cold ranking (cluster C validation, %d cold folds)", r.Folds),
		"method", "setting", "HR@5", "NDCG@5")
	order := []struct{ m, s string }{
		{"NECS", "warm"}, {"NECS", "cold"}, {"NECS", "cold-UNK"},
		{"SCG+LightGBM", "warm"}, {"SCG+LightGBM", "cold"},
	}
	for _, o := range order {
		sc, ok := r.Scores[o.m][o.s]
		if !ok {
			continue
		}
		t.AddRow(o.m, o.s, fmt.Sprintf("%.4f", sc.HR), fmt.Sprintf("%.4f", sc.NDCG))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 10: stability as the fraction of never-seen applications grows
// ---------------------------------------------------------------------------

// Figure10Result tracks HR@5/NDCG@5 as n of 15 applications are excluded
// from training and evaluated as never-seen (§V-H).
type Figure10Result struct {
	// X is n/15 per sweep point.
	X    []float64
	HR   []float64
	NDCG []float64
	Runs int
	// BestWarm / AvgWarm are the Table VII reference lines.
	BestWarm RankingScore
	AvgWarm  RankingScore
}

// Figure10 sweeps the never-seen fraction. ns lists the n values; runs the
// repetitions per point.
func Figure10(s *Suite, ns []int, runs int) *Figure10Result {
	if len(ns) == 0 {
		ns = []int{1, 3, 5, 7, 9, 11}
	}
	if runs <= 0 {
		runs = 2
	}
	res := &Figure10Result{Runs: runs}
	env := sparksim.ClusterC
	cases := s.ValidationCases(env, 800)

	cfg := s.Opts.NECS
	for pi, n := range ns {
		var hr, ndcg float64
		var count float64
		for run := 0; run < runs; run++ {
			rng := s.rng(int64(810 + pi*10 + run))
			perm := rng.Perm(len(s.Apps))
			excl := map[string]bool{}
			for _, i := range perm[:n] {
				excl[s.Apps[i].Spec.Name] = true
			}
			sub := &core.Dataset{Apps: s.Dataset().Apps}
			for _, r := range s.Dataset().Runs {
				if !excl[r.AppName] {
					sub.Runs = append(sub.Runs, r)
					sub.Instances = append(sub.Instances, r.Stages...)
				}
			}
			nr := NewNeuralRanker(VariantNECS, cfg)
			nr.Fit(sub, rng)
			for ci, gc := range cases {
				if !excl[s.Apps[ci].Spec.Name] {
					continue
				}
				sc := evalScores(nr.Scores(gc), gc.Actual, 5)
				hr += sc.HR
				ndcg += sc.NDCG
				count++
			}
		}
		res.X = append(res.X, float64(n)/float64(len(s.Apps)))
		res.HR = append(res.HR, hr/count)
		res.NDCG = append(res.NDCG, ndcg/count)
	}
	return res
}

// SetWarmReferences fills the Table VII reference lines from a computed
// Table VII result (best and average warm competitor on cluster C).
func (r *Figure10Result) SetWarmReferences(t7 *Table7Result) {
	var best RankingScore
	var sumHR, sumNDCG float64
	var n float64
	for _, m := range t7.Rows {
		if m == "NECS" {
			continue
		}
		sc := t7.Scores[m]["C"]
		if sc.NDCG > best.NDCG {
			best = sc
		}
		sumHR += sc.HR
		sumNDCG += sc.NDCG
		n++
	}
	r.BestWarm = best
	r.AvgWarm = RankingScore{HR: sumHR / n, NDCG: sumNDCG / n}
}

// Format renders the sweep.
func (r *Figure10Result) Format() string {
	t := NewTable(fmt.Sprintf("Figure 10: ranking vs fraction of never-seen applications (%d runs/point)", r.Runs),
		"x = n/15", "HR@5", "NDCG@5")
	for i := range r.X {
		t.AddRow(fmt.Sprintf("%.2f", r.X[i]), fmt.Sprintf("%.4f", r.HR[i]), fmt.Sprintf("%.4f", r.NDCG[i]))
	}
	out := t.String()
	if r.BestWarm.NDCG > 0 {
		out += fmt.Sprintf("reference (warm competitors, cluster C): best HR=%.4f NDCG=%.4f, avg HR=%.4f NDCG=%.4f\n",
			r.BestWarm.HR, r.BestWarm.NDCG, r.AvgWarm.HR, r.AvgWarm.NDCG)
	}
	return out
}

// ---------------------------------------------------------------------------
// §V-I: cold-start instrumentation overhead
// ---------------------------------------------------------------------------

// OverheadResult reports the one-off instrumentation overhead LITE pays for
// cold-start applications (one run on the smallest dataset) against the
// payoff (execution time saved on one large run).
type OverheadResult struct {
	Apps              []string
	InstrumentSeconds map[string]float64
	SavedSeconds      map[string]float64
}

// ColdStartOverhead measures the §V-I trade-off.
func ColdStartOverhead(s *Suite) *OverheadResult {
	tuner := s.Tuner()
	res := &OverheadResult{InstrumentSeconds: map[string]float64{}, SavedSeconds: map[string]float64{}}
	env := sparksim.ClusterC
	for _, app := range s.Apps {
		name := app.Spec.Name
		res.Apps = append(res.Apps, name)
		_, overhead := core.ColdStartInstrument(app, env)
		res.InstrumentSeconds[name] = overhead

		data := app.Spec.MakeData(app.Sizes.Test)
		rec := tuner.Recommend(app.Spec, data, env)
		tuned := sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds
		def := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig()).Seconds
		res.SavedSeconds[name] = def - tuned
	}
	return res
}

// Format renders the overhead table sorted by payoff.
func (r *OverheadResult) Format() string {
	apps := append([]string(nil), r.Apps...)
	sort.Slice(apps, func(a, b int) bool { return r.SavedSeconds[apps[a]] > r.SavedSeconds[apps[b]] })
	t := NewTable("Cold-start instrumentation overhead vs one-run payoff (cluster C)",
		"application", "instrument (s)", "saved on one large run (s)")
	for _, app := range apps {
		t.AddRow(app, fmtSeconds(r.InstrumentSeconds[app]), fmtSeconds(r.SavedSeconds[app]))
	}
	return t.String()
}
