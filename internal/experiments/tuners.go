package experiments

import (
	"math"
	"math/rand"
	"sort"

	"lite/internal/core"
	"lite/internal/gp"
	"lite/internal/instrument"
	"lite/internal/rl"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// TracePoint is one step of a tuning session: cumulative tuning overhead
// (simulated seconds spent executing trials) and the best execution time
// observed so far. Figure 8 plots these curves.
type TracePoint struct {
	OverheadSeconds float64
	BestSeconds     float64
}

// TuningResult summarizes one tuning session on one application.
type TuningResult struct {
	Method string
	// BestSeconds is the least actual execution time observed during the
	// tuning period (the paper's t for iterative competitors), or the
	// actual time of the single recommendation (model-based methods).
	BestSeconds float64
	// BestConfig achieved BestSeconds.
	BestConfig sparksim.Config
	// Trials is the number of executions performed.
	Trials int
	// Trace is the best-so-far curve.
	Trace []TracePoint
}

// TunerMethod is a Table VI competitor.
type TunerMethod interface {
	Name() string
	// Tune optimizes the application on the given data/environment within
	// a simulated execution-time budget (seconds).
	Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult
}

// evalTrial executes one configuration and updates the session state.
func evalTrial(res *TuningResult, app *workload.App, data sparksim.DataSpec, env sparksim.Environment, cfg sparksim.Config, spent *float64) float64 {
	r := sparksim.Simulate(app.Spec, data, env, cfg)
	*spent += r.Seconds
	res.Trials++
	if res.BestSeconds == 0 || r.Seconds < res.BestSeconds {
		res.BestSeconds = r.Seconds
		res.BestConfig = cfg
	}
	res.Trace = append(res.Trace, TracePoint{OverheadSeconds: *spent, BestSeconds: res.BestSeconds})
	return r.Seconds
}

// ---------------------------------------------------------------------------
// Default
// ---------------------------------------------------------------------------

// DefaultTuner runs the stock Spark configuration once.
type DefaultTuner struct{}

// Name implements TunerMethod.
func (DefaultTuner) Name() string { return "Default" }

// Tune implements TunerMethod.
func (DefaultTuner) Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult {
	res := TuningResult{Method: "Default"}
	var spent float64
	evalTrial(&res, app, data, env, sparksim.DefaultConfig(), &spent)
	return res
}

// ---------------------------------------------------------------------------
// Manual (expert rules)
// ---------------------------------------------------------------------------

// ManualTuner encodes the expert tuning-guide heuristics (cloudera/
// databricks style): size executors to the node, 2–5 cores each, 2–3×
// parallelism, compression on slow networks, then a handful of hand trials
// around that point — the paper's "Manual" competitor (up to 12 hours of
// expert time).
type ManualTuner struct {
	// HandTrials is how many variations the expert tries (paper: repeated
	// trials within 12 hours).
	HandTrials int
}

// Name implements TunerMethod.
func (ManualTuner) Name() string { return "Manual" }

// expertBase derives the rule-of-thumb configuration from online tuning
// guides. As the paper notes, such guides "separately give hints on single
// aspects of knobs, and cannot consider more complex multiple aspects": the
// rules below are the standard per-knob advice, applied independently,
// with no per-application or per-datasize joint optimization — which is
// exactly why hand tuning lands mid-field.
func expertBase(app *workload.App, data sparksim.DataSpec, env sparksim.Environment) sparksim.Config {
	c := sparksim.DefaultConfig()
	// Guide rule: "5 cores per executor for good HDFS throughput".
	cores := 5.0
	if float64(env.Cores) < cores {
		cores = float64(env.Cores)
	}
	c[sparksim.KnobExecutorCores] = cores
	// Guide rule: a fixed, safe executor size — guides quote 4–8 GB and
	// warn against large heaps; the expert picks 4 GB regardless of the
	// job's actual working set.
	c[sparksim.KnobExecutorMemory] = 4
	if env.MemGB <= 16 {
		c[sparksim.KnobExecutorMemory] = 2
	}
	// Guide rule: 2 executors per node.
	c[sparksim.KnobExecutorInstances] = 2 * float64(env.Nodes)
	// Guide rule: "2–3 tasks per core", computed from the cluster, not the
	// data size (the guides' formula ignores input volume).
	c[sparksim.KnobDefaultParallelism] = 2 * float64(env.TotalCores())
	c[sparksim.KnobExecutorMemoryOverhead] = 1024
	c[sparksim.KnobDriverCores] = 2
	c[sparksim.KnobDriverMemory] = 4
	c[sparksim.KnobDriverMaxResultSize] = 2048
	// Guide rule: leave compression and memory management at defaults
	// ("the defaults are usually fine").
	return core.ForceFeasible(c.Clamp(), env)
}

// Tune implements TunerMethod.
func (m ManualTuner) Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult {
	trials := m.HandTrials
	if trials <= 0 {
		trials = 4
	}
	res := TuningResult{Method: "Manual"}
	var spent float64
	base := expertBase(app, data, env)
	evalTrial(&res, app, data, env, base, &spent)
	// The expert perturbs one knob at a time around the rule-of-thumb.
	tweaks := []func(sparksim.Config) sparksim.Config{
		func(c sparksim.Config) sparksim.Config { c[sparksim.KnobDefaultParallelism] *= 2; return c },
		func(c sparksim.Config) sparksim.Config { c[sparksim.KnobDefaultParallelism] /= 2; return c },
		func(c sparksim.Config) sparksim.Config { c[sparksim.KnobExecutorCores] = 2; return c },
		func(c sparksim.Config) sparksim.Config { c[sparksim.KnobMemoryStorageFraction] += 0.2; return c },
		func(c sparksim.Config) sparksim.Config { c[sparksim.KnobMemoryFraction] += 0.2; return c },
		func(c sparksim.Config) sparksim.Config { c[sparksim.KnobExecutorMemory] /= 2; return c },
	}
	for i := 0; i < trials-1 && i < len(tweaks) && spent < budget; i++ {
		cfg := core.ForceFeasible(tweaks[i](base).Clamp(), env)
		evalTrial(&res, app, data, env, cfg, &spent)
	}
	return res
}

// ---------------------------------------------------------------------------
// MLP (no code features)
// ---------------------------------------------------------------------------

// MLPTuner is the Table VI "MLP" competitor: the same prediction module as
// LITE (an MLP) fed with application name, data, environment and knob
// features — but no code features — trained on the same offline dataset.
// It scores random candidates and executes its single best guess.
type MLPTuner struct {
	ranker     *FlatRanker
	Candidates int
}

// NewMLPTuner trains the baseline on the suite's dataset.
func NewMLPTuner(s *Suite) *MLPTuner {
	r := NewFlatRanker("MLP", ModeW, NewMLPModel(), s.Apps)
	r.Fit(s.Dataset(), s.rng(101))
	return &MLPTuner{ranker: r, Candidates: 64}
}

// Name implements TunerMethod.
func (*MLPTuner) Name() string { return "MLP" }

// Tune implements TunerMethod.
func (t *MLPTuner) Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult {
	best := sparksim.DefaultConfig()
	bestScore := 0.0
	for i := 0; i < t.Candidates; i++ {
		cfg := sparksim.RandomConfig(rng)
		if !sparksim.Feasible(cfg, env) {
			cfg = core.ForceFeasible(cfg, env)
		}
		run := instrumentFree(app, data, env, cfg)
		score := t.ranker.Model.Predict(t.ranker.feat.AppRow(&run, app.Spec.MainCode))
		if i == 0 || score < bestScore {
			best, bestScore = cfg, score
		}
	}
	res := TuningResult{Method: "MLP"}
	var spent float64
	evalTrial(&res, app, data, env, best, &spent)
	return res
}

// instrumentFree builds a pseudo-run for featurization without executing
// (the W featurizer only needs config/data/env and the app name).
func instrumentFree(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, cfg sparksim.Config) instrument.AppInstance {
	return instrument.AppInstance{AppName: app.Spec.Name, Config: cfg, Data: data, Env: env}
}

// ---------------------------------------------------------------------------
// BO (OtterTune-style Gaussian-process Bayesian optimization)
// ---------------------------------------------------------------------------

// BOTuner is the Table VI "BO(2h)" competitor: GP surrogate + Expected
// Improvement, warm-started from the most similar training instances (the
// best configurations this application achieved on the small training
// data), spending the execution-time budget on sequential trials.
type BOTuner struct {
	suite      *Suite
	WarmStarts int
	PoolSize   int
}

// NewBOTuner builds the competitor against the suite's training data.
func NewBOTuner(s *Suite) *BOTuner {
	return &BOTuner{suite: s, WarmStarts: 5, PoolSize: 128}
}

// Name implements TunerMethod.
func (*BOTuner) Name() string { return "BO" }

// warmConfigs returns the application's best training configurations.
func (t *BOTuner) warmConfigs(app *workload.App) []sparksim.Config {
	type pair struct {
		cfg sparksim.Config
		sec float64
	}
	var ps []pair
	for i := range t.suite.Dataset().Runs {
		run := &t.suite.Dataset().Runs[i]
		if run.AppName == app.Spec.Name {
			ps = append(ps, pair{run.Config, run.Result.Seconds})
		}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].sec < ps[b].sec })
	var out []sparksim.Config
	for i := 0; i < len(ps) && i < t.WarmStarts; i++ {
		out = append(out, ps[i].cfg)
	}
	return out
}

// Tune implements TunerMethod.
func (t *BOTuner) Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult {
	res := TuningResult{Method: "BO"}
	var spent float64
	var xs [][]float64
	var ys []float64
	observe := func(cfg sparksim.Config) {
		sec := evalTrial(&res, app, data, env, cfg, &spent)
		xs = append(xs, cfg.Normalized())
		ys = append(ys, core.LabelOf(sec))
	}
	for _, cfg := range t.warmConfigs(app) {
		if spent >= budget {
			break
		}
		observe(core.ForceFeasible(cfg, env))
	}
	if len(xs) == 0 {
		observe(core.ForceFeasible(sparksim.DefaultConfig(), env))
	}
	model := gp.New(0.6, 1.5, 0.05)
	for spent < budget {
		if err := model.Fit(xs, ys); err != nil {
			break
		}
		bestY := ys[0]
		for _, y := range ys {
			if y < bestY {
				bestY = y
			}
		}
		var bestCfg sparksim.Config
		bestEI := -1.0
		for i := 0; i < t.PoolSize; i++ {
			cfg := sparksim.RandomConfig(rng)
			if !sparksim.Feasible(cfg, env) {
				cfg = core.ForceFeasible(cfg, env)
			}
			if ei := model.ExpectedImprovement(cfg.Normalized(), bestY, 0.01); ei > bestEI {
				bestEI, bestCfg = ei, cfg
			}
		}
		observe(bestCfg)
	}
	return res
}

// ---------------------------------------------------------------------------
// DDPG / DDPG-C (reinforcement-learning competitors)
// ---------------------------------------------------------------------------

// DDPGTuner is the Table VI "DDPG(2h)" competitor (CDBTune-style): actions
// are knob vectors, states are Spark's inner status summary, the reward is
// the relative improvement over the default time. WithCode enables the
// QTune-style "DDPG-C" variant whose state also encodes code features.
type DDPGTuner struct {
	WithCode bool
	suite    *Suite
}

// NewDDPGTuner builds the RL competitor.
func NewDDPGTuner(s *Suite, withCode bool) *DDPGTuner {
	return &DDPGTuner{suite: s, WithCode: withCode}
}

// Name implements TunerMethod.
func (t *DDPGTuner) Name() string {
	if t.WithCode {
		return "DDPG-C"
	}
	return "DDPG"
}

// codeVector hashes the main code's bag of tokens into a fixed-width
// embedding for DDPG-C's state.
func codeVector(app *workload.App, width int) []float64 {
	v := make([]float64, width)
	for _, tok := range tokenizeForState(app.Spec.MainCode) {
		h := 0
		for _, r := range tok {
			h = h*131 + int(r)
		}
		if h < 0 {
			h = -h
		}
		v[h%width]++
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// Tune implements TunerMethod.
func (t *DDPGTuner) Tune(app *workload.App, data sparksim.DataSpec, env sparksim.Environment, budget float64, rng *rand.Rand) TuningResult {
	name := t.Name()
	res := TuningResult{Method: name}
	var spent float64

	const codeWidth = 16
	stateDim := 4 + 6 + sparksim.MetricsLen
	var code []float64
	if t.WithCode {
		stateDim += codeWidth
		code = codeVector(app, codeWidth)
	}
	agent := rl.NewAgent(rl.DefaultParams(stateDim, sparksim.NumKnobs), rng)

	mkState := func(metrics []float64) []float64 {
		s := append([]float64(nil), data.Features()...)
		s = append(s, env.Features()...)
		s = append(s, metrics...)
		if t.WithCode {
			s = append(s, code...)
		}
		return s
	}

	// Episode 0: default configuration establishes the reference time.
	defRun := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig())
	spent += defRun.Seconds
	res.Trials++
	res.BestSeconds = defRun.Seconds
	res.BestConfig = sparksim.DefaultConfig()
	res.Trace = append(res.Trace, TracePoint{OverheadSeconds: spent, BestSeconds: res.BestSeconds})
	refTime := defRun.Seconds
	state := mkState(defRun.Metrics())
	prevSec := defRun.Seconds

	for spent < budget {
		action := agent.Act(state)
		cfg := sparksim.FromNormalized(action)
		if !sparksim.Feasible(cfg, env) {
			cfg = core.ForceFeasible(cfg, env)
		}
		run := sparksim.Simulate(app.Spec, data, env, cfg)
		spent += run.Seconds
		res.Trials++
		if run.Seconds < res.BestSeconds {
			res.BestSeconds = run.Seconds
			res.BestConfig = cfg
		}
		res.Trace = append(res.Trace, TracePoint{OverheadSeconds: spent, BestSeconds: res.BestSeconds})
		// CDBTune-style reward: improvement over both the reference and
		// the previous trial.
		reward := (refTime-run.Seconds)/refTime + 0.5*(prevSec-run.Seconds)/refTime
		next := mkState(run.Metrics())
		agent.Observe(rl.Transition{State: state, Action: action, Reward: reward, Next: next})
		agent.Train()
		state = next
		prevSec = run.Seconds
	}
	return res
}

func tokenizeForState(code string) []string {
	var toks []string
	cur := ""
	for _, r := range code {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			cur += string(r)
		} else if cur != "" {
			toks = append(toks, cur)
			cur = ""
		}
	}
	if cur != "" {
		toks = append(toks, cur)
	}
	return toks
}
