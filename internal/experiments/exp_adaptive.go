package experiments

import (
	"fmt"

	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/stats"
)

// Table9Result evaluates Adaptive Model Update (Table IX / RQ2.4): per
// cluster, the static NECS versus NECS_u fine-tuned on one fold of the
// validation applications via adversarial learning, evaluated on the other
// fold, over several runs; significance by Wilcoxon signed-rank test.
type Table9Result struct {
	Clusters []string
	Static   map[string]RankingScore
	Updated  map[string]RankingScore
	// PValues of the per-case paired improvements (HR and NDCG).
	PValueHR   map[string]float64
	PValueNDCG map[string]float64
	Runs       int
}

// Table9 runs the fold experiment on each cluster.
func Table9(s *Suite) *Table9Result {
	res := &Table9Result{
		Clusters:   []string{"A", "B", "C"},
		Static:     map[string]RankingScore{},
		Updated:    map[string]RankingScore{},
		PValueHR:   map[string]float64{},
		PValueNDCG: map[string]float64{},
		Runs:       4,
	}
	envs := map[string]sparksim.Environment{"A": sparksim.ClusterA, "B": sparksim.ClusterB, "C": sparksim.ClusterC}

	// A single base NECS trained on the full training set (its encoder is
	// shared; each run fine-tunes a clone).
	base := NewNeuralRanker(VariantNECS, s.Opts.NECS)
	base.Fit(s.Dataset(), s.rng(500))
	model := base.NECS()
	source := core.EncodeAll(model.Encoder, s.Dataset().Instances)

	for ci, cname := range res.Clusters {
		env := envs[cname]
		cases := s.ValidationCases(env, int64(510+ci))
		var hrS, ndcgS, hrU, ndcgU float64
		var pairedHRStatic, pairedHRUpdated []float64
		var pairedNDCGStatic, pairedNDCGUpdated []float64
		var count float64

		for run := 0; run < res.Runs; run++ {
			rng := s.rng(int64(520 + ci*10 + run))
			perm := rng.Perm(len(cases))
			foldSize := len(cases) / 3
			updateFold := perm[:foldSize]
			evalFold := perm[foldSize:]

			// Target-domain feedback: instrumented validation runs of the
			// update fold (recommended-config executions in production).
			var target []*core.Encoded
			for _, i := range updateFold {
				gc := cases[i]
				for r := range gc.Runs {
					if r >= 4 {
						break
					}
					for st := range gc.Runs[r].Stages {
						target = append(target, model.Encoder.Encode(&gc.Runs[r].Stages[st]))
					}
				}
			}
			clone := model.Clone()
			amu := core.DefaultAMUConfig()
			amu.Epochs = 3
			srcSample := sampleEncoded(source, 200, rng)
			core.AdaptiveModelUpdate(clone, srcSample, target, amu, rng)

			for _, i := range evalFold {
				gc := cases[i]
				sStatic := evalScores(necsScores(model, gc), gc.Actual, 5)
				sUpd := evalScores(necsScores(clone, gc), gc.Actual, 5)
				hrS += sStatic.HR
				ndcgS += sStatic.NDCG
				hrU += sUpd.HR
				ndcgU += sUpd.NDCG
				pairedHRStatic = append(pairedHRStatic, sStatic.HR)
				pairedHRUpdated = append(pairedHRUpdated, sUpd.HR)
				pairedNDCGStatic = append(pairedNDCGStatic, sStatic.NDCG)
				pairedNDCGUpdated = append(pairedNDCGUpdated, sUpd.NDCG)
				count++
			}
		}
		res.Static[cname] = RankingScore{HR: hrS / count, NDCG: ndcgS / count}
		res.Updated[cname] = RankingScore{HR: hrU / count, NDCG: ndcgU / count}
		_, res.PValueHR[cname] = stats.WilcoxonSignedRank(pairedHRStatic, pairedHRUpdated)
		_, res.PValueNDCG[cname] = stats.WilcoxonSignedRank(pairedNDCGStatic, pairedNDCGUpdated)
	}
	return res
}

// necsScores predicts candidate times for a gold case with a NECS model.
func necsScores(m *core.NECS, gc *GoldCase) []float64 {
	out := make([]float64, len(gc.Configs))
	for i, cfg := range gc.Configs {
		out[i] = m.PredictApp(gc.App.Spec, gc.Data, gc.Env, cfg)
	}
	return out
}

func sampleEncoded(data []*core.Encoded, n int, rng interface{ Perm(int) []int }) []*core.Encoded {
	if n >= len(data) {
		return data
	}
	perm := rng.Perm(len(data))
	out := make([]*core.Encoded, n)
	for i := 0; i < n; i++ {
		out[i] = data[perm[i]]
	}
	return out
}

// Format renders Table IX.
func (r *Table9Result) Format() string {
	t := NewTable(fmt.Sprintf("Table IX: NECS vs NECS_u (Adaptive Model Update), %d runs, Wilcoxon p-values", r.Runs),
		"cluster", "HR@5", "HR@5 (u)", "p(HR)", "NDCG@5", "NDCG@5 (u)", "p(NDCG)")
	for _, c := range r.Clusters {
		t.AddRow(c,
			fmt.Sprintf("%.4f", r.Static[c].HR), fmt.Sprintf("%.4f", r.Updated[c].HR), fmt.Sprintf("%.4f", r.PValueHR[c]),
			fmt.Sprintf("%.4f", r.Static[c].NDCG), fmt.Sprintf("%.4f", r.Updated[c].NDCG), fmt.Sprintf("%.4f", r.PValueNDCG[c]))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 9: stage-based code organization statistics
// ---------------------------------------------------------------------------

// Figure9Result quantifies the data augmentation of Stage-based Code
// Organization (RQ2.2): training-instance counts before vs after stage
// segmentation and tokens per instance.
type Figure9Result struct {
	Apps []string
	// AppInstances / StageInstances per application.
	AppInstances   map[string]int
	StageInstances map[string]int
	// Amplification = StageInstances / AppInstances.
	Amplification map[string]float64
	// MainTokens vs MeanStageTokens per instance.
	MainTokens      map[string]int
	MeanStageTokens map[string]float64
}

// Figure9 computes the statistics over the shared training dataset.
func Figure9(s *Suite) *Figure9Result {
	ds := s.Dataset()
	res := &Figure9Result{
		AppInstances:    map[string]int{},
		StageInstances:  map[string]int{},
		Amplification:   map[string]float64{},
		MainTokens:      map[string]int{},
		MeanStageTokens: map[string]float64{},
	}
	mainCode := map[string]string{}
	for _, a := range s.Apps {
		res.Apps = append(res.Apps, a.Spec.Name)
		mainCode[a.Spec.Name] = a.Spec.MainCode
	}
	agg := instrumentAugmentation(ds, mainCode)
	for _, name := range res.Apps {
		st := agg[name]
		if st == nil {
			continue
		}
		res.AppInstances[name] = st.AppInstances
		res.StageInstances[name] = st.StageInstances
		res.Amplification[name] = float64(st.StageInstances) / float64(st.AppInstances)
		res.MainTokens[name] = st.MainTokens
		res.MeanStageTokens[name] = st.MeanStageTokens
	}
	return res
}

// Format renders the Figure 9 statistics.
func (r *Figure9Result) Format() string {
	t := NewTable("Figure 9: training instances and tokens before/after Stage-based Code Organization",
		"application", "|D| app", "|D| stage", "amplification", "main tokens", "mean stage tokens")
	for _, app := range r.Apps {
		t.AddRow(app,
			fmt.Sprintf("%d", r.AppInstances[app]),
			fmt.Sprintf("%d", r.StageInstances[app]),
			fmt.Sprintf("%.0fx", r.Amplification[app]),
			fmt.Sprintf("%d", r.MainTokens[app]),
			fmt.Sprintf("%.0f", r.MeanStageTokens[app]))
	}
	return t.String()
}

func instrumentAugmentation(ds *core.Dataset, mainCode map[string]string) map[string]*augStats {
	out := map[string]*augStats{}
	for i := range ds.Runs {
		run := &ds.Runs[i]
		st, ok := out[run.AppName]
		if !ok {
			st = &augStats{MainTokens: tokenCount(mainCode[run.AppName])}
			out[run.AppName] = st
		}
		st.AppInstances++
		st.StageInstances += len(run.Stages)
		for j := range run.Stages {
			st.MeanStageTokens += float64(tokenCount(run.Stages[j].Code))
		}
	}
	for _, st := range out {
		if st.StageInstances > 0 {
			st.MeanStageTokens /= float64(st.StageInstances)
		}
	}
	return out
}

type augStats struct {
	AppInstances    int
	StageInstances  int
	MainTokens      int
	MeanStageTokens float64
}

func tokenCount(code string) int {
	n := 0
	inTok := false
	for _, r := range code {
		isWord := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_'
		if isWord && !inTok {
			n++
		}
		inTok = isWord
	}
	return n
}
