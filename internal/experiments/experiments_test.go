package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"lite/internal/core"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// tinySuite returns a fast suite over a few applications with reduced
// training settings, for unit testing the experiment machinery.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	opts := DefaultOptions()
	opts.ConfigsPerInstance = 4
	opts.GoldCandidates = 8
	opts.RecommendCandidates = 16
	opts.NECS.Epochs = 3
	opts.TuningBudgetSeconds = 2000
	apps := []*workload.App{
		workload.ByName("WordCount"),
		workload.ByName("Terasort"),
		workload.ByName("PageRank"),
	}
	return NewSuiteWithApps(opts, apps)
}

func TestSuiteCachesDatasetAndTuner(t *testing.T) {
	s := tinySuite(t)
	if s.Dataset() != s.Dataset() {
		t.Fatal("dataset not cached")
	}
	if s.Tuner() != s.Tuner() {
		t.Fatal("tuner not cached")
	}
	if len(s.Source()) == 0 {
		t.Fatal("empty encoded source")
	}
}

func TestGoldRankingFeasibleAndScored(t *testing.T) {
	s := tinySuite(t)
	app := s.Apps[0]
	gc := s.GoldRanking(app, app.Sizes.Valid, sparksim.ClusterC, 6, s.rng(1))
	if len(gc.Configs) != 6 || len(gc.Actual) != 6 || len(gc.Runs) != 6 {
		t.Fatalf("gold case sizes wrong: %d/%d/%d", len(gc.Configs), len(gc.Actual), len(gc.Runs))
	}
	for i, cfg := range gc.Configs {
		if !sparksim.Feasible(cfg, sparksim.ClusterC) {
			t.Fatalf("candidate %d infeasible", i)
		}
		if gc.Actual[i] <= 0 {
			t.Fatalf("candidate %d has nonpositive time", i)
		}
	}
}

func TestFlatModesProperties(t *testing.T) {
	if ModeW.StageLevel() || ModeWC.StageLevel() {
		t.Fatal("W/WC are app-level")
	}
	if !ModeS.StageLevel() || !ModeSC.StageLevel() || !ModeSCG.StageLevel() {
		t.Fatal("S/SC/SCG are stage-level")
	}
	if ModeW.UsesCode() || ModeS.UsesCode() {
		t.Fatal("W/S have no code features")
	}
	if !ModeWC.UsesCode() || !ModeSC.UsesCode() || !ModeSCG.UsesCode() {
		t.Fatal("WC/SC/SCG include code")
	}
	names := []string{ModeW.String(), ModeS.String(), ModeWC.String(), ModeSC.String(), ModeSCG.String()}
	if strings.Join(names, ",") != "W,S,WC,SC,SCG" {
		t.Fatalf("mode names wrong: %v", names)
	}
}

func TestFeaturizerRowWidthsConsistent(t *testing.T) {
	s := tinySuite(t)
	ds := s.Dataset()
	for _, mode := range []FlatMode{ModeS, ModeSC, ModeSCG} {
		f := NewFeaturizer(mode, s.Apps, ds.Instances)
		w := len(f.StageRow(&ds.Instances[0]))
		for i := 1; i < 20 && i < len(ds.Instances); i++ {
			if len(f.StageRow(&ds.Instances[i])) != w {
				t.Fatalf("mode %v: inconsistent row width", mode)
			}
		}
	}
	for _, mode := range []FlatMode{ModeW, ModeWC} {
		f := NewFeaturizer(mode, s.Apps, ds.Instances)
		w := len(f.AppRow(&ds.Runs[0], s.Apps[0].Spec.MainCode))
		for i := 1; i < 10 && i < len(ds.Runs); i++ {
			if len(f.AppRow(&ds.Runs[i], "")) != w {
				t.Fatalf("mode %v: inconsistent app row width", mode)
			}
		}
	}
}

func TestFlatRankerFitAndScore(t *testing.T) {
	s := tinySuite(t)
	r := NewFlatRanker("LightGBM", ModeSC, NewGBMModel(), s.Apps)
	r.Fit(s.Dataset(), s.rng(2))
	gc := s.GoldRanking(s.Apps[0], s.Apps[0].Sizes.Valid, sparksim.ClusterC, 6, s.rng(3))
	scores := r.Scores(gc)
	if len(scores) != 6 {
		t.Fatalf("got %d scores", len(scores))
	}
	for _, sc := range scores {
		if sc < 0 {
			t.Fatalf("negative predicted time %v", sc)
		}
	}
	if r.Name() != "LightGBM+SC" {
		t.Fatalf("ranker name %q", r.Name())
	}
}

func TestNeuralRankerVariants(t *testing.T) {
	s := tinySuite(t)
	cfg := s.Opts.NECS
	cfg.Epochs = 1
	gc := s.GoldRanking(s.Apps[1], s.Apps[1].Sizes.Valid, sparksim.ClusterC, 4, s.rng(4))
	for _, v := range []NeuralVariant{VariantNECS, VariantGCN, VariantLSTM, VariantTransformer} {
		r := NewNeuralRanker(v, cfg)
		r.Fit(s.Dataset(), s.rng(5))
		scores := r.Scores(gc)
		if len(scores) != 4 {
			t.Fatalf("%v: got %d scores", v, len(scores))
		}
		for _, sc := range scores {
			if sc < 0 {
				t.Fatalf("%v: negative score", v)
			}
		}
	}
}

func TestEvalScoresPerfect(t *testing.T) {
	actual := []float64{3, 1, 2}
	sc := evalScores(actual, actual, 3)
	if sc.HR != 1 || sc.NDCG != 1 {
		t.Fatalf("perfect scores should be 1/1, got %v", sc)
	}
}

func TestManualTunerBeatsDefault(t *testing.T) {
	app := workload.ByName("PageRank")
	data := app.Spec.MakeData(app.Sizes.Test)
	env := sparksim.ClusterC
	res := ManualTuner{}.Tune(app, data, env, 20000, rand.New(rand.NewSource(1)))
	def := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig()).Seconds
	if res.BestSeconds >= def {
		t.Fatalf("expert rules should beat the default: %v vs %v", res.BestSeconds, def)
	}
	if res.Trials < 2 {
		t.Fatalf("manual tuner should try several configs, got %d", res.Trials)
	}
}

func TestBOTunerImprovesOverWarmStart(t *testing.T) {
	s := tinySuite(t)
	bo := NewBOTuner(s)
	app := s.Apps[2] // PageRank
	data := app.Spec.MakeData(app.Sizes.Valid)
	res := bo.Tune(app, data, sparksim.ClusterC, 20000, rand.New(rand.NewSource(2)))
	if res.Trials < 3 {
		t.Fatalf("BO should run several trials within budget, got %d", res.Trials)
	}
	// Trace must be monotonically non-increasing in best time.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].BestSeconds > res.Trace[i-1].BestSeconds {
			t.Fatal("best-so-far curve must not increase")
		}
		if res.Trace[i].OverheadSeconds <= res.Trace[i-1].OverheadSeconds {
			t.Fatal("overhead must be strictly increasing")
		}
	}
}

func TestDDPGTunerRunsWithinBudget(t *testing.T) {
	s := tinySuite(t)
	dd := NewDDPGTuner(s, true)
	app := s.Apps[0]
	data := app.Spec.MakeData(app.Sizes.Valid)
	res := dd.Tune(app, data, sparksim.ClusterC, 1000, rand.New(rand.NewSource(3)))
	if res.Trials == 0 {
		t.Fatal("DDPG ran no trials")
	}
	if dd.Name() != "DDPG-C" {
		t.Fatalf("name %q", dd.Name())
	}
}

func TestExpertBaseFeasibleEverywhere(t *testing.T) {
	for _, app := range workload.All() {
		for _, env := range sparksim.AllClusters {
			cfg := expertBase(app, app.Spec.MakeData(1000), env)
			if !sparksim.Feasible(cfg, env) {
				t.Fatalf("expert base infeasible for %s on cluster %s", app.Spec.Name, env.Name)
			}
		}
	}
}

func TestFigure1ShapesHold(t *testing.T) {
	s := tinySuite(t)
	r := Figure1(s)
	for _, app := range r.Apps {
		if len(r.CoresSweep[app]) != 16 {
			t.Fatalf("%s: sweep length %d", app, len(r.CoresSweep[app]))
		}
		// The optimum must be interior (not 1 core, not blindly max).
		if r.BestCores[app] <= 1 || r.BestCores[app] >= 16 {
			t.Fatalf("%s: degenerate optimum at %d cores", app, r.BestCores[app])
		}
	}
	// App-specific optima: the two apps should not share the same best
	// cores (Figure 1's point) — with the seeded simulator this is stable.
	if r.BestCores["PageRank"] == r.BestCores["TriangleCount"] {
		t.Log("warning: both apps share the same optimum; Figure 1 contrast weakened")
	}
	if !strings.Contains(r.Format(), "optimal executor.cores") {
		t.Fatal("Format output incomplete")
	}
}

func TestFigure9AugmentationPositive(t *testing.T) {
	s := tinySuite(t)
	r := Figure9(s)
	for _, app := range r.Apps {
		if r.Amplification[app] <= 1 {
			t.Fatalf("%s: no augmentation (%vx)", app, r.Amplification[app])
		}
	}
	// Iterative PageRank must amplify far more than WordCount.
	if r.Amplification["PageRank"] <= r.Amplification["WordCount"] {
		t.Fatal("iterative app should amplify more")
	}
}

func TestTable8bStrategies(t *testing.T) {
	s := tinySuite(t)
	r := Table8b(s)
	if len(r.Strategies) != 3 {
		t.Fatalf("strategies: %v", r.Strategies)
	}
	for _, strat := range r.Strategies {
		if r.MeanTopSeconds[strat] <= 0 {
			t.Fatalf("%s: nonpositive mean time", strat)
		}
		if r.MeanRegret[strat] < 0 {
			t.Fatalf("%s: negative regret", strat)
		}
	}
	if !strings.Contains(r.Format(), "ACG") {
		t.Fatal("format missing ACG row")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := NewTable("t", "a", "bb")
	tab.AddRow("1", "2")
	tab.AddRowf(3.5, 4)
	out := tab.String()
	if !strings.Contains(out, "t\n") || !strings.Contains(out, "3.5000") {
		t.Fatalf("table output wrong:\n%s", out)
	}
	if fmtSeconds(8000) != "FAIL(7200)" {
		t.Fatal("fail cap formatting wrong")
	}
	if fmtSeconds(42.25) != "42.2" && fmtSeconds(42.25) != "42.3" {
		t.Fatalf("fmtSeconds(42.25) = %s", fmtSeconds(42.25))
	}
}

func TestColdTunerExcludesApp(t *testing.T) {
	s := tinySuite(t)
	excluded := s.Apps[0].Spec.Name
	tuner := coldTuner(s, map[string]bool{excluded: true}, 9, s.Opts.NECS)
	// The encoder's vocabulary must not contain tokens unique to the
	// excluded app... at minimum the tuner must still recommend sanely.
	app := workload.ByName(excluded)
	rec := tuner.Recommend(app.Spec, app.Spec.MakeData(app.Sizes.Valid), sparksim.ClusterC)
	if len(rec.Ranked) == 0 {
		t.Fatal("cold tuner produced no ranking")
	}
}

func TestCodeVectorNormalized(t *testing.T) {
	v := codeVector(workload.ByName("Terasort"), 16)
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm < 0.99 || norm > 1.01 {
		t.Fatalf("code vector norm %v", norm)
	}
}

func TestSampleEncoded(t *testing.T) {
	data := make([]*core.Encoded, 10)
	for i := range data {
		data[i] = &core.Encoded{}
	}
	rng := rand.New(rand.NewSource(1))
	out := sampleEncoded(data, 4, rng)
	if len(out) != 4 {
		t.Fatalf("sampled %d", len(out))
	}
	if len(sampleEncoded(data, 100, rng)) != 10 {
		t.Fatal("oversample should return all")
	}
}

func TestErnestLeastSquares(t *testing.T) {
	// y = 2 + 3a − b exactly recoverable.
	x := [][]float64{{1, 1, 0}, {1, 0, 1}, {1, 2, 1}, {1, 3, 5}, {1, 4, 2}}
	y := make([]float64, len(x))
	for i, r := range x {
		y[i] = 2 + 3*r[1] - r[2]
	}
	theta := leastSquares(x, y, 3)
	want := []float64{2, 3, -1}
	for i := range want {
		if diff := theta[i] - want[i]; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("theta = %v, want %v", theta, want)
		}
	}
}

func TestErnestTunerRecommendsFeasible(t *testing.T) {
	s := tinySuite(t)
	e := NewErnestTuner(s)
	app := s.Apps[0]
	res := e.Tune(app, app.Spec.MakeData(app.Sizes.Valid), sparksim.ClusterC, 7200, rand.New(rand.NewSource(4)))
	if res.Trials != 1 {
		t.Fatalf("Ernest executes its single recommendation, got %d trials", res.Trials)
	}
	if !sparksim.Feasible(res.BestConfig, sparksim.ClusterC) {
		t.Fatal("Ernest recommended an infeasible config")
	}
}

func TestAutoTuneSpendsBudget(t *testing.T) {
	app := workload.ByName("WordCount")
	data := app.Spec.MakeData(app.Sizes.Valid)
	res := NewAutoTuneTuner().Tune(app, data, sparksim.ClusterC, 600, rand.New(rand.NewSource(5)))
	if res.Trials < 2 {
		t.Fatalf("AutoTune should iterate, got %d trials", res.Trials)
	}
	last := res.Trace[len(res.Trace)-1]
	if last.OverheadSeconds < 600 && res.Trials < 8 {
		t.Fatalf("AutoTune stopped early: %v s spent in %d trials", last.OverheadSeconds, res.Trials)
	}
}

func TestDACTunerRecommendsFeasible(t *testing.T) {
	s := tinySuite(t)
	d := NewDACTuner(s)
	app := s.Apps[1]
	res := d.Tune(app, app.Spec.MakeData(app.Sizes.Valid), sparksim.ClusterC, 7200, rand.New(rand.NewSource(6)))
	if !sparksim.Feasible(res.BestConfig, sparksim.ClusterC) {
		t.Fatal("DAC recommended an infeasible config")
	}
}

func TestACGSigmaScaleWidensRegion(t *testing.T) {
	s := tinySuite(t)
	tuner := s.Tuner()
	app := s.Apps[0]
	data := app.Spec.MakeData(app.Sizes.Valid)
	tuner.ACG.SigmaScale = 1
	lo1, hi1 := tuner.ACG.Region(app.Spec.Name, data)
	tuner.ACG.SigmaScale = 2
	lo2, hi2 := tuner.ACG.Region(app.Spec.Name, data)
	tuner.ACG.SigmaScale = 0
	wider := 0
	for d := 0; d < sparksim.NumKnobs; d++ {
		if hi2[d]-lo2[d] >= hi1[d]-lo1[d] {
			wider++
		}
	}
	if wider < sparksim.NumKnobs {
		t.Fatalf("doubling sigma should not shrink any knob region (%d/%d ok)", wider, sparksim.NumKnobs)
	}
}
