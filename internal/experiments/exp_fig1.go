package experiments

import (
	"fmt"
	"strings"

	"lite/internal/sparksim"
	"lite/internal/workload"
)

// Figure1Result reproduces the motivation figure: execution time of
// PageRank and TriangleCount on 160 MB input as a function of (a)
// spark.executor.cores alone and (b) the executor.cores × executor.memory
// grid, showing application-specific optima.
type Figure1Result struct {
	Apps []string
	// CoresSweep[app][i] is the time at executor.cores = i+1.
	CoresSweep map[string][]float64
	// BestCores[app] is the argmin of the sweep.
	BestCores map[string]int
	// Grid[app] is the (cores, memory) → time surface; Cores and MemGB
	// list the axis values.
	Cores []int
	MemGB []int
	Grid  map[string][][]float64
	// BestCombo[app] is the best (cores, memory) pair.
	BestCombo map[string][2]int
}

// baseFig1Config is a reasonable mid-range configuration so the sweeps
// isolate the swept knobs (as the paper's Figure 1 does).
func baseFig1Config() sparksim.Config {
	cfg := sparksim.DefaultConfig()
	cfg[sparksim.KnobExecutorMemory] = 4
	cfg[sparksim.KnobExecutorInstances] = 8
	cfg[sparksim.KnobDefaultParallelism] = 64
	return cfg
}

// Figure1 runs the sweeps on cluster B.
func Figure1(s *Suite) *Figure1Result {
	res := &Figure1Result{
		Apps:       []string{"PageRank", "TriangleCount"},
		CoresSweep: map[string][]float64{},
		BestCores:  map[string]int{},
		Grid:       map[string][][]float64{},
		BestCombo:  map[string][2]int{},
	}
	for c := 1; c <= 16; c++ {
		res.Cores = append(res.Cores, c)
	}
	for m := 1; m <= 8; m++ {
		res.MemGB = append(res.MemGB, m)
	}
	env := sparksim.ClusterB
	for _, name := range res.Apps {
		app := workload.ByName(name)
		data := app.Spec.MakeData(160)

		sweep := make([]float64, 0, 16)
		best, bestC := 0.0, 0
		for _, c := range res.Cores {
			cfg := baseFig1Config()
			cfg[sparksim.KnobExecutorCores] = float64(c)
			t := sparksim.Simulate(app.Spec, data, env, cfg).Seconds
			sweep = append(sweep, t)
			if bestC == 0 || t < best {
				best, bestC = t, c
			}
		}
		res.CoresSweep[name] = sweep
		res.BestCores[name] = bestC

		grid := make([][]float64, len(res.Cores))
		bestT := 0.0
		var bestPair [2]int
		for i, c := range res.Cores {
			grid[i] = make([]float64, len(res.MemGB))
			for j, m := range res.MemGB {
				cfg := baseFig1Config()
				cfg[sparksim.KnobExecutorCores] = float64(c)
				cfg[sparksim.KnobExecutorMemory] = float64(m)
				t := sparksim.Simulate(app.Spec, data, env, cfg).Seconds
				grid[i][j] = t
				if bestT == 0 || t < bestT {
					bestT = t
					bestPair = [2]int{c, m}
				}
			}
		}
		res.Grid[name] = grid
		res.BestCombo[name] = bestPair
	}
	return res
}

// Format renders the figure data as text.
func (r *Figure1Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 1: execution time (s) vs knobs on 160 MB input, cluster B\n\n")
	t := NewTable("(a) spark.executor.cores sweep", append([]string{"app"}, intHeaders(r.Cores)...)...)
	for _, app := range r.Apps {
		row := []string{app}
		for _, v := range r.CoresSweep[app] {
			row = append(row, fmtSeconds(v))
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "optimal executor.cores for %s: %d\n", app, r.BestCores[app])
	}
	b.WriteString("\n(b) best (executor.cores, executor.memory) combination:\n")
	for _, app := range r.Apps {
		c := r.BestCombo[app]
		fmt.Fprintf(&b, "  %s: cores=%d memory=%dGB (%.1f s)\n", app, c[0], c[1],
			r.Grid[app][indexOf(r.Cores, c[0])][indexOf(r.MemGB, c[1])])
	}
	return b.String()
}

func intHeaders(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
