package experiments

import (
	"lite/internal/feature"
	"lite/internal/instrument"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// FlatMode selects the feature set of the non-neural ranking baselines in
// Table VII (§V-C): W and S use no code; WC and SC add bag-of-words code
// features; SCG adds a DAG summary on top of SC.
type FlatMode int

// Feature modes of Table VII.
const (
	// ModeW: application instance features — data + environment + knobs +
	// application name (one-hot), no code.
	ModeW FlatMode = iota
	// ModeS: stage-level features — W plus the stage-level data statistics
	// from the Spark monitor UI (input size, shuffle size, task count).
	ModeS
	// ModeWC: W plus bag-of-words over the application's main code.
	ModeWC
	// ModeSC: S plus bag-of-words over the stage-level (instrumented) code.
	ModeSC
	// ModeSCG: SC plus a scheduler-DAG summary (operation histogram) —
	// standing in for the paper's LSTM-pretrained DAG embedding, which is
	// likewise a fixed (not end-to-end-learned) DAG representation.
	ModeSCG
)

// String names the mode as in Table VII.
func (m FlatMode) String() string {
	switch m {
	case ModeW:
		return "W"
	case ModeS:
		return "S"
	case ModeWC:
		return "WC"
	case ModeSC:
		return "SC"
	case ModeSCG:
		return "SCG"
	}
	return "?"
}

// StageLevel reports whether the mode trains on stage-level instances
// (S/SC/SCG) rather than whole application runs (W/WC).
func (m FlatMode) StageLevel() bool { return m == ModeS || m == ModeSC || m == ModeSCG }

// UsesCode reports whether the mode includes code features.
func (m FlatMode) UsesCode() bool { return m == ModeWC || m == ModeSC || m == ModeSCG }

// Featurizer converts runs or stage instances into flat vectors for the
// GBM/MLP baselines.
type Featurizer struct {
	Mode    FlatMode
	appIdx  map[string]int
	numApps int
	vocab   *feature.Vocab
	opIdx   map[string]int
}

// NewFeaturizer builds the featurizer from the training corpus. Vocabulary
// sources follow the mode: main-body codes for WC, stage codes for SC/SCG.
func NewFeaturizer(mode FlatMode, apps []*workload.App, train []instrument.StageInstance) *Featurizer {
	f := &Featurizer{Mode: mode, appIdx: map[string]int{}, opIdx: map[string]int{}}
	for _, a := range apps {
		f.appIdx[a.Spec.Name] = f.numApps
		f.numApps++
	}
	if mode.UsesCode() {
		var corpus []string
		if mode == ModeWC {
			for _, a := range apps {
				corpus = append(corpus, a.Spec.MainCode)
			}
		} else {
			for i := range train {
				corpus = append(corpus, train[i].Code)
			}
		}
		f.vocab = feature.BuildVocab(corpus, 1)
	}
	if mode == ModeSCG {
		for i, op := range sparksim.OpNames() {
			f.opIdx[op] = i
		}
	}
	return f
}

func (f *Featurizer) appOneHot(name string) []float64 {
	v := make([]float64, f.numApps)
	if i, ok := f.appIdx[name]; ok {
		v[i] = 1
	}
	return v
}

// StageRow featurizes one stage instance (modes S/SC/SCG).
func (f *Featurizer) StageRow(st *instrument.StageInstance) []float64 {
	row := append([]float64(nil), feature.DenseFeatures(st)...)
	row = append(row, f.appOneHot(st.AppName)...)
	row = append(row, feature.StageStats(st)...)
	if f.Mode.UsesCode() {
		row = append(row, f.vocab.BagOfWords(st.Code)...)
	}
	if f.Mode == ModeSCG {
		row = append(row, f.opHistogram(st.Ops)...)
	}
	return row
}

// AppRow featurizes one application run (modes W/WC). mainCode is the
// application's main-body program.
func (f *Featurizer) AppRow(run *instrument.AppInstance, mainCode string) []float64 {
	row := append([]float64(nil), run.Config.Normalized()...)
	row = append(row, run.Data.Features()...)
	row = append(row, run.Env.Features()...)
	row = append(row, f.appOneHot(run.AppName)...)
	if f.Mode.UsesCode() {
		row = append(row, f.vocab.BagOfWords(mainCode)...)
	}
	return row
}

// opHistogram summarizes a stage DAG as a normalized operation histogram.
func (f *Featurizer) opHistogram(ops []string) []float64 {
	h := make([]float64, len(f.opIdx)+1) // +1 for unknown ops
	for _, op := range ops {
		if i, ok := f.opIdx[op]; ok {
			h[i]++
		} else {
			h[len(h)-1]++
		}
	}
	if n := float64(len(ops)); n > 0 {
		for i := range h {
			h[i] /= n
		}
	}
	return h
}
