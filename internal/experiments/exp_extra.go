package experiments

import (
	"fmt"

	"lite/internal/metrics"
	"lite/internal/sparksim"
)

// ExtraResult is a beyond-paper extension: the related-work approaches the
// paper only surveys in §VI (Ernest-style cost models, AutoTune-style LHS
// search, DAC-style learned search) compared against LITE under the same
// protocol as Table VI.
type ExtraResult struct {
	Methods []string
	Apps    []string
	Seconds map[string]map[string]float64
	ETR     map[string]map[string]float64
}

// Extra runs the extended comparison on every application (large data,
// cluster C).
func Extra(s *Suite) *ExtraResult {
	tuner := s.Tuner()
	res := &ExtraResult{
		Methods: []string{"Default", "Ernest", "AutoTune", "DAC", "LITE"},
		Seconds: map[string]map[string]float64{},
		ETR:     map[string]map[string]float64{},
	}
	for _, m := range res.Methods {
		res.Seconds[m] = map[string]float64{}
		res.ETR[m] = map[string]float64{}
	}
	methods := []TunerMethod{
		DefaultTuner{},
		NewErnestTuner(s),
		NewAutoTuneTuner(),
		NewDACTuner(s),
	}
	env := sparksim.ClusterC
	for ai, app := range s.Apps {
		res.Apps = append(res.Apps, app.Spec.Name)
		data := app.Spec.MakeData(app.Sizes.Test)
		for mi, m := range methods {
			tr := m.Tune(app, data, env, s.Opts.TuningBudgetSeconds, s.rng(int64(900+ai*10+mi)))
			res.Seconds[m.Name()][app.Spec.Name] = capSeconds(tr.BestSeconds)
		}
		rec := tuner.Recommend(app.Spec, data, env)
		res.Seconds["LITE"][app.Spec.Name] = capSeconds(sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds)
	}
	for _, app := range res.Apps {
		tDef := res.Seconds["Default"][app]
		tMin := tDef
		for _, m := range res.Methods {
			if tm := res.Seconds[m][app]; tm < tMin {
				tMin = tm
			}
		}
		for _, m := range res.Methods {
			res.ETR[m][app] = metrics.ETR(tDef, res.Seconds[m][app], tMin)
		}
	}
	return res
}

// MeanETR averages a method's ETR.
func (r *ExtraResult) MeanETR(method string) float64 {
	var s float64
	for _, app := range r.Apps {
		s += r.ETR[method][app]
	}
	return s / float64(len(r.Apps))
}

// Format renders the comparison.
func (r *ExtraResult) Format() string {
	t := NewTable("Extension: §VI related-work approaches vs LITE (large data, cluster C)",
		append([]string{"application"}, r.Methods...)...)
	for _, app := range r.Apps {
		row := []string{app}
		for _, m := range r.Methods {
			row = append(row, fmtSeconds(r.Seconds[m][app]))
		}
		t.AddRow(row...)
	}
	mean := []string{"MEAN ETR"}
	for _, m := range r.Methods {
		mean = append(mean, fmt.Sprintf("%.2f", r.MeanETR(m)))
	}
	t.AddRow(mean...)
	return t.String()
}
