package experiments

import (
	"fmt"
	"strings"

	"lite/internal/metrics"
	"lite/internal/sparksim"
	"lite/internal/workload"
)

// Table6Result holds the end-to-end tuning comparison (Table VI / RQ1):
// actual execution time of each method's configuration per application on
// the large testing data in cluster C, plus the derived ETR values
// (Figure 7 plots exactly these ETRs).
type Table6Result struct {
	Methods []string
	Apps    []string
	// Seconds[method][app] is the method's t (see §V-B).
	Seconds map[string]map[string]float64
	// ETR[method][app] per Equation (9), with t_min over all methods.
	ETR map[string]map[string]float64
	// LITEOverheadSeconds is the wall-clock recommendation overhead.
	LITEOverheadSeconds float64
	// Traces for Figure 8 (per method, for the case-study apps).
	Traces map[string]map[string][]TracePoint
}

// Table6 runs all competitors on every application.
func Table6(s *Suite) *Table6Result {
	tuner := s.Tuner()
	res := &Table6Result{
		Methods: []string{"Default", "Manual", "MLP", "BO", "DDPG", "DDPG-C", "LITE"},
		Seconds: map[string]map[string]float64{},
		ETR:     map[string]map[string]float64{},
		Traces:  map[string]map[string][]TracePoint{},
	}
	for _, m := range res.Methods {
		res.Seconds[m] = map[string]float64{}
		res.ETR[m] = map[string]float64{}
		res.Traces[m] = map[string][]TracePoint{}
	}

	methods := []TunerMethod{
		DefaultTuner{},
		ManualTuner{},
		NewMLPTuner(s),
		NewBOTuner(s),
		NewDDPGTuner(s, false),
		NewDDPGTuner(s, true),
	}

	for ai, app := range s.Apps {
		res.Apps = append(res.Apps, app.Spec.Name)
		data := app.Spec.MakeData(app.Sizes.Test)
		env := sparksim.ClusterC

		for mi, m := range methods {
			rng := s.rng(int64(200 + ai*10 + mi))
			tr := m.Tune(app, data, env, s.Opts.TuningBudgetSeconds, rng)
			res.Seconds[m.Name()][app.Spec.Name] = capSeconds(tr.BestSeconds)
			res.Traces[m.Name()][app.Spec.Name] = tr.Trace
		}

		// LITE: the actual execution time of the FIRST recommendation.
		rec := tuner.Recommend(app.Spec, data, env)
		actual := sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds
		res.Seconds["LITE"][app.Spec.Name] = capSeconds(actual)
		res.LITEOverheadSeconds += rec.Overhead.Seconds()
		res.Traces["LITE"][app.Spec.Name] = []TracePoint{{OverheadSeconds: rec.Overhead.Seconds(), BestSeconds: actual}}
	}
	res.LITEOverheadSeconds /= float64(len(s.Apps))

	// ETR per Equation (9): t_min is the least time by any method.
	for _, app := range res.Apps {
		tDef := res.Seconds["Default"][app]
		tMin := tDef
		for _, m := range res.Methods {
			if t := res.Seconds[m][app]; t < tMin {
				tMin = t
			}
		}
		for _, m := range res.Methods {
			res.ETR[m][app] = metrics.ETR(tDef, res.Seconds[m][app], tMin)
		}
	}
	return res
}

func capSeconds(s float64) float64 {
	if s > sparksim.FailCap {
		return sparksim.FailCap
	}
	return s
}

// MeanETR averages a method's ETR over applications.
func (r *Table6Result) MeanETR(method string) float64 {
	var s float64
	for _, app := range r.Apps {
		s += r.ETR[method][app]
	}
	return s / float64(len(r.Apps))
}

// MeanSeconds averages a method's execution time over applications.
func (r *Table6Result) MeanSeconds(method string) float64 {
	var s float64
	for _, app := range r.Apps {
		s += r.Seconds[method][app]
	}
	return s / float64(len(r.Apps))
}

// Format renders Table VI plus the Figure 7 ETR matrix.
func (r *Table6Result) Format() string {
	var b strings.Builder
	t := NewTable("Table VI: execution time (s) of tuned configurations, large data, cluster C",
		append([]string{"application"}, r.Methods...)...)
	for _, app := range r.Apps {
		row := []string{app}
		for _, m := range r.Methods {
			row = append(row, fmtSeconds(r.Seconds[m][app]))
		}
		t.AddRow(row...)
	}
	avg := []string{"MEAN"}
	for _, m := range r.Methods {
		avg = append(avg, fmtSeconds(r.MeanSeconds(m)))
	}
	t.AddRow(avg...)
	b.WriteString(t.String())

	e := NewTable("\nFigure 7: ETR per application (1.0 = best of all methods)",
		append([]string{"application"}, r.Methods...)...)
	for _, app := range r.Apps {
		row := []string{app}
		for _, m := range r.Methods {
			row = append(row, fmt.Sprintf("%.2f", r.ETR[m][app]))
		}
		e.AddRow(row...)
	}
	mrow := []string{"MEAN"}
	for _, m := range r.Methods {
		mrow = append(mrow, fmt.Sprintf("%.2f", r.MeanETR(m)))
	}
	e.AddRow(mrow...)
	b.WriteString(e.String())
	fmt.Fprintf(&b, "\nLITE mean recommendation overhead: %.3f s (paper: < 2 s)\n", r.LITEOverheadSeconds)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 8: tuning-overhead case study
// ---------------------------------------------------------------------------

// Figure8Result is the best-so-far-vs-overhead case study for DecisionTree
// and LinearRegression (Figure 8).
type Figure8Result struct {
	Apps   []string
	Traces map[string]map[string][]TracePoint // method → app → curve
	// LITEPoints marks LITE's (overhead, actual) point per app.
	LITEPoints map[string]TracePoint
}

// Figure8 runs BO and DDPG against LITE on the two case-study applications.
func Figure8(s *Suite) *Figure8Result {
	tuner := s.Tuner()
	res := &Figure8Result{
		Apps:       []string{"DecisionTree", "LinearRegression"},
		Traces:     map[string]map[string][]TracePoint{"BO": {}, "DDPG": {}},
		LITEPoints: map[string]TracePoint{},
	}
	bo := NewBOTuner(s)
	ddpg := NewDDPGTuner(s, false)
	for ai, name := range res.Apps {
		app := workload.ByName(name)
		data := app.Spec.MakeData(app.Sizes.Test)
		env := sparksim.ClusterC
		res.Traces["BO"][name] = bo.Tune(app, data, env, s.Opts.TuningBudgetSeconds, s.rng(int64(300+ai))).Trace
		res.Traces["DDPG"][name] = ddpg.Tune(app, data, env, s.Opts.TuningBudgetSeconds, s.rng(int64(310+ai))).Trace
		rec := tuner.Recommend(app.Spec, data, env)
		actual := sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds
		res.LITEPoints[name] = TracePoint{OverheadSeconds: rec.Overhead.Seconds(), BestSeconds: actual}
	}
	return res
}

// Format renders the curves as text series.
func (r *Figure8Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 8: best-so-far execution time (s) vs tuning overhead (s)\n")
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "\n[%s]\n", app)
		for _, m := range []string{"BO", "DDPG"} {
			fmt.Fprintf(&b, "  %-5s:", m)
			trace := r.Traces[m][app]
			step := 1
			if len(trace) > 12 {
				step = len(trace) / 12
			}
			for i := 0; i < len(trace); i += step {
				p := trace[i]
				fmt.Fprintf(&b, " (%.0f, %.0f)", p.OverheadSeconds, p.BestSeconds)
			}
			b.WriteString("\n")
		}
		p := r.LITEPoints[app]
		fmt.Fprintf(&b, "  LITE : recommended after %.2f s of overhead → %.0f s actual execution\n",
			p.OverheadSeconds, p.BestSeconds)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table VIII(a): RFR point prediction vs LITE
// ---------------------------------------------------------------------------

// Table8aResult compares the RFR point-prediction tuner against LITE
// (Table VIII(a) / RQ2.3 first part).
type Table8aResult struct {
	Apps        []string
	RFRSeconds  map[string]float64
	LITESeconds map[string]float64
	RFRETR      float64
	LITEETR     float64
}

// Table8a runs both on every application's large testing data in cluster C.
func Table8a(s *Suite) *Table8aResult {
	tuner := s.Tuner()
	res := &Table8aResult{RFRSeconds: map[string]float64{}, LITESeconds: map[string]float64{}}
	var etrRFR, etrLITE float64
	for _, app := range s.Apps {
		res.Apps = append(res.Apps, app.Spec.Name)
		data := app.Spec.MakeData(app.Sizes.Test)
		env := sparksim.ClusterC

		rfrCfg := tuner.ACG.PointPrediction(app.Spec.Name, data)
		rfrSec := sparksim.Simulate(app.Spec, data, env, rfrCfg).Seconds

		rec := tuner.Recommend(app.Spec, data, env)
		liteSec := sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds

		res.RFRSeconds[app.Spec.Name] = rfrSec
		res.LITESeconds[app.Spec.Name] = liteSec

		def := sparksim.Simulate(app.Spec, data, env, sparksim.DefaultConfig()).Seconds
		tMin := rfrSec
		if liteSec < tMin {
			tMin = liteSec
		}
		etrRFR += metrics.ETR(def, rfrSec, tMin)
		etrLITE += metrics.ETR(def, liteSec, tMin)
	}
	res.RFRETR = etrRFR / float64(len(res.Apps))
	res.LITEETR = etrLITE / float64(len(res.Apps))
	return res
}

// Format renders Table VIII(a).
func (r *Table8aResult) Format() string {
	t := NewTable("Table VIII(a): RFR point prediction vs LITE (large data, cluster C)",
		"application", "RFR t(s)", "LITE t(s)")
	for _, app := range r.Apps {
		t.AddRow(app, fmtSeconds(r.RFRSeconds[app]), fmtSeconds(r.LITESeconds[app]))
	}
	return t.String() + fmt.Sprintf("\nmean ETR: RFR=%.3f LITE=%.3f\n", r.RFRETR, r.LITEETR)
}
