package experiments

import (
	"fmt"
	"strings"

	"lite/internal/session"
	"lite/internal/sparksim"
)

// SessionsResult quantifies online tuning sessions (internal/session)
// against the static safe recommendation they start from: for each
// (app, strategy) pair, the measured seconds of RecommendSafe's config,
// the session's best measured seconds after its trial budget, and the
// safety record — the worst trial relative to the measured baseline, and
// how many trials violated the session's regression bound.
//
// The claims under test: a session beats the static recommendation on at
// least one workload (online measurement finds wins the offline model
// missed), and no trial on any workload ever exceeds the bound (screened
// exploration is safe to run against production traffic).
type SessionsResult struct {
	Bound float64
	Rows  []SessionRow
}

// SessionRow is one (app, strategy) session run.
type SessionRow struct {
	App        string
	Strategy   string
	StaticSec  float64 // measured seconds of the static safe recommendation
	BestSec    float64 // session's best measured seconds
	GainPct    float64 // (static - best) / static, in percent
	Trials     int
	WorstRatio float64 // worst trial (abort-capped) / measured baseline
	Aborts     int     // trials killed at the bound × baseline guard-rail
	Violations int     // trials whose reported time still exceeded the bound
}

// Sessions runs the study: three apps spanning the workload families, the
// three exploration strategies each, simulator ground truth as the
// "production" measurement a real session would report.
func Sessions(s *Suite) *SessionsResult {
	tuner := s.Tuner()
	apps := faultApps(s)
	env := sparksim.AllClusters[len(sparksim.AllClusters)-1] // cluster C, the constrained one
	res := &SessionsResult{Bound: session.DefaultSafetyBound}

	st, err := session.Open(session.Options{Seed: s.Opts.Seed}) // in-memory: no Dir
	if err != nil {
		panic(fmt.Sprintf("experiments: opening session store: %v", err))
	}
	defer st.Close()

	for _, a := range apps {
		size := a.Sizes.Test
		data := a.Spec.MakeData(size)
		sr, err := tuner.RecommendSafe(a.Spec, data, env)
		if err != nil {
			panic(fmt.Sprintf("experiments: RecommendSafe(%s): %v", a.Spec.Name, err))
		}
		staticSec := sparksim.Simulate(a.Spec, data, env, sr.Config).Seconds
		scorer := simScorer{sc: tuner.Model.NewAppScorer(a.Spec, data, env), env: env}

		for _, strat := range []session.Strategy{session.Conservative, session.Moderate, session.Aggressive} {
			sess, err := st.Create(a.Spec.Name, size, env.Name, strat, 0, 0, sr.Config, sr.PredictedSeconds)
			if err != nil {
				panic(fmt.Sprintf("experiments: creating session: %v", err))
			}
			row := SessionRow{App: a.Spec.Name, Strategy: string(strat), StaticSec: staticSec}
			baselineSec := 0.0
			for {
				prop, err := st.NextProposal(sess.ID, scorer)
				if err != nil {
					break // budget exhausted
				}
				run := sparksim.Simulate(a.Spec, data, env, prop.Config)
				seconds, failed := run.Seconds, run.Failed
				// The guard-rail every real client must honor: a trial is
				// killed at bound × baseline, so its regression is capped
				// there no matter how wrong the screening model was.
				if prop.AbortAfterSeconds > 0 && seconds > prop.AbortAfterSeconds {
					seconds, failed = prop.AbortAfterSeconds, true
					row.Aborts++
				}
				if _, err := st.Report(sess.ID, prop.Trial, seconds, failed); err != nil {
					panic(fmt.Sprintf("experiments: reporting trial: %v", err))
				}
				if prop.Source == session.SourceBaseline && !failed {
					baselineSec = seconds
				}
				if prop.Source != session.SourceBaseline && baselineSec > 0 {
					if r := seconds / baselineSec; r > row.WorstRatio {
						row.WorstRatio = r
					}
				}
			}
			final, err := st.CloseSession(sess.ID)
			if err != nil {
				panic(fmt.Sprintf("experiments: closing session: %v", err))
			}
			row.BestSec = final.BestSeconds
			row.Trials = final.TrialsUsed
			row.Violations = final.Violations
			if staticSec > 0 && final.BestSeconds > 0 {
				row.GainPct = 100 * (staticSec - final.BestSeconds) / staticSec
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// simScorer adapts a model AppScorer to the session subsystem's Scorer
// over a fixed environment — the same adaptation internal/serve performs
// with its live snapshot.
type simScorer struct {
	sc  interface{ Score(sparksim.Config) float64 }
	env sparksim.Environment
}

func (s simScorer) Score(cfg sparksim.Config) float64 { return s.sc.Score(cfg) }
func (s simScorer) Feasible(cfg sparksim.Config) bool { return sparksim.Feasible(cfg, s.env) }

// Format renders the study with its two headline verdicts.
func (r *SessionsResult) Format() string {
	t := NewTable(
		fmt.Sprintf("Online tuning sessions vs static RecommendSafe (cluster C, bound %.2fx)", r.Bound),
		"app", "strategy", "static(s)", "session-best(s)", "gain", "trials", "worst/baseline", "aborts", "violations")
	wins, violations := 0, 0
	worst := 0.0
	for _, row := range r.Rows {
		if row.GainPct > 0 {
			wins++
		}
		violations += row.Violations
		if row.WorstRatio > worst {
			worst = row.WorstRatio
		}
		t.AddRow(row.App, row.Strategy,
			fmt.Sprintf("%.1f", row.StaticSec),
			fmt.Sprintf("%.1f", row.BestSec),
			fmt.Sprintf("%+.1f%%", row.GainPct),
			fmt.Sprintf("%d", row.Trials),
			fmt.Sprintf("%.2fx", row.WorstRatio),
			fmt.Sprintf("%d", row.Aborts),
			fmt.Sprintf("%d", row.Violations))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nsessions beating static: %d/%d; worst trial %.2fx of baseline (bound %.2fx); bound violations: %d\n",
		wins, len(r.Rows), worst, r.Bound, violations)
	if wins > 0 && violations == 0 && worst <= r.Bound {
		b.WriteString("VERDICT: sessions improve on the static recommendation and no trial ever exceeded the bound\n")
	}
	return b.String()
}
