package experiments

import (
	"fmt"

	"lite/internal/sparksim"
)

// AblationResult covers the design-choice ablations DESIGN.md calls out
// beyond the paper's own tables: CNN kernel sizes, the tower-vs-flat MLP
// head, and the width of the ACG search region (σ scale).
type AblationResult struct {
	// Kernel ablation: ranking on cluster C validation per kernel set.
	KernelVariants []string
	KernelScores   map[string]RankingScore
	// Tower ablation: halving tower vs a flat two-layer head.
	TowerScores map[string]RankingScore
	// Sigma ablation: mean top-1 actual seconds per σ scale.
	SigmaScales  []float64
	SigmaSeconds []float64
}

// Ablation runs all three studies.
func Ablation(s *Suite) *AblationResult {
	res := &AblationResult{
		KernelScores: map[string]RankingScore{},
		TowerScores:  map[string]RankingScore{},
	}
	cases := s.ValidationCases(sparksim.ClusterC, 950)

	// --- CNN kernel sizes ---
	kernelSets := map[string][]int{
		"k=[3]":     {3},
		"k=[2,3,4]": {2, 3, 4},
		"k=[4,5,6]": {4, 5, 6},
	}
	res.KernelVariants = []string{"k=[3]", "k=[2,3,4]", "k=[4,5,6]"}
	for i, name := range res.KernelVariants {
		cfg := s.Opts.NECS
		cfg.Kernels = kernelSets[name]
		r := NewNeuralRanker(VariantNECS, cfg)
		r.Fit(s.Dataset(), s.rng(int64(960+i)))
		res.KernelScores[name] = evalRanker(r, cases, 5)
	}

	// --- Tower vs flat head (same parameter budget order) ---
	tower := s.Opts.NECS
	r := NewNeuralRanker(VariantNECS, tower)
	r.Fit(s.Dataset(), s.rng(970))
	res.TowerScores["tower (64→32→16)"] = evalRanker(r, cases, 5)

	flat := s.Opts.NECS
	flat.TowerFirst = 48
	flat.TowerMin = 48 // one hidden layer of 48: no halving
	rf := NewNeuralRanker(VariantNECS, flat)
	rf.Fit(s.Dataset(), s.rng(971))
	res.TowerScores["flat (48)"] = evalRanker(rf, cases, 5)

	// --- ACG σ scale ---
	tuner := s.Tuner()
	res.SigmaScales = []float64{0.5, 1.0, 2.0}
	origScale := tuner.ACG.SigmaScale
	env := sparksim.ClusterC
	for _, scale := range res.SigmaScales {
		tuner.ACG.SigmaScale = scale
		var sum float64
		rng := s.rng(int64(980 + int(scale*10)))
		for _, app := range s.Apps {
			data := app.Spec.MakeData(app.Sizes.Valid)
			cands := tuner.ACG.SampleFeasible(app.Spec.Name, data, env, s.Opts.GoldCandidates, rng)
			rec := tuner.RecommendFrom(app.Spec, data, env, cands)
			sum += sparksim.Simulate(app.Spec, data, env, rec.Config).Seconds
		}
		res.SigmaSeconds = append(res.SigmaSeconds, sum/float64(len(s.Apps)))
	}
	tuner.ACG.SigmaScale = origScale
	return res
}

// Format renders the three ablations.
func (r *AblationResult) Format() string {
	t := NewTable("Ablation 1: CNN kernel sizes (ranking, cluster C validation)",
		"kernels", "HR@5", "NDCG@5")
	for _, v := range r.KernelVariants {
		sc := r.KernelScores[v]
		t.AddRowf(v, sc.HR, sc.NDCG)
	}
	out := t.String()

	t2 := NewTable("\nAblation 2: tower vs flat MLP head", "head", "HR@5", "NDCG@5")
	for _, v := range []string{"tower (64→32→16)", "flat (48)"} {
		sc := r.TowerScores[v]
		t2.AddRowf(v, sc.HR, sc.NDCG)
	}
	out += t2.String()

	t3 := NewTable("\nAblation 3: ACG search-region width (σ scale)", "scale", "mean top-1 time (s)")
	for i, scale := range r.SigmaScales {
		t3.AddRow(fmt.Sprintf("%.1f", scale), fmtSeconds(r.SigmaSeconds[i]))
	}
	return out + t3.String()
}
